// Paramstudy: the traffic assignment's "run a series of parameter study
// cases and take advantage of embarrassingly parallel jobs" variation
// (paper §5), built from two substrates at once: each (density, p) cell of
// the study is an independent task distributed over simulated cluster
// ranks by the dynamic task farm, and each task runs a full
// Nagel-Schreckenberg simulation. The output is the flow surface — the
// fundamental diagram per dawdling probability.
//
//	go run ./examples/paramstudy
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/taskfarm"
	"repro/internal/traffic"
)

func main() {
	densities := []float64{0.05, 0.1, 0.15, 0.2, 0.3, 0.45, 0.6}
	ps := []float64{0.0, 0.13, 0.3, 0.5}
	const roadLen, warm, window = 600, 300, 60

	type cell struct{ di, pi int }
	var cells []cell
	for di := range densities {
		for pi := range ps {
			cells = append(cells, cell{di, pi})
		}
	}

	world := cluster.NewWorld(4)
	var flows []float64
	var report taskfarm.Report
	err := world.Run(func(c *cluster.Comm) {
		res, rep := taskfarm.RunDynamic(c, len(cells), func(task int) float64 {
			cl := cells[task]
			cars := int(densities[cl.di] * roadLen)
			s, err := traffic.New(traffic.Config{
				Cars: cars, RoadLen: roadLen, VMax: 5,
				P: ps[cl.pi], Seed: uint64(task) + 1,
			})
			if err != nil {
				panic(err)
			}
			s.RunSerial(warm)
			flow := 0.0
			for i := 0; i < window; i++ {
				s.RunSerial(1)
				flow += s.Flow() / window
			}
			return flow
		})
		if c.Rank() == 0 {
			flows = res
			report = rep
		}
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("%d study cells over 4 ranks (dynamic farm), worker loads %v\n\n",
		len(cells), report.PerRank)
	fmt.Print("flow (cars/cell/step) by density x dawdling probability:\n\n density")
	for _, p := range ps {
		fmt.Printf("  p=%.2f", p)
	}
	fmt.Println()
	for di, rho := range densities {
		fmt.Printf("   %.2f ", rho)
		for pi := range ps {
			fmt.Printf("  %.3f ", flows[di*len(ps)+pi])
		}
		fmt.Println()
	}
	fmt.Println("\nhigher p shifts the flow peak down and to the left — dawdling")
	fmt.Println("destroys throughput well before geometric gridlock would.")
}
