// Uncertainty: reproduce Figure 4 — a deep ensemble obtained for free from
// hyper-parameter optimisation reports high uncertainty on an ambiguous
// digit and low uncertainty on a clean one, and separates clean from
// corrupted (out-of-distribution) inputs by predictive entropy.
//
//	go run ./examples/uncertainty
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/ensemble"
	"repro/internal/mnistgen"
	"repro/internal/prng"
)

func main() {
	// Train an 8-member HPO grid as independent tasks on 4 simulated
	// ranks (8 tasks on 4 ranks: not evenly divisible with the manager
	// excluded — the assignment's PDC point).
	ds := mnistgen.Generate(1, 2500)
	train, val := ds.Split(2000)
	cfgs := ensemble.Grid([][]int{{24}, {32}}, []float64{0.1, 0.05}, []float64{0.9, 0.5}, 6, 32, 2)
	world := cluster.NewWorld(4)
	ens, report, err := ensemble.TrainDistributed(world, train, val, cfgs, true)
	if err != nil {
		panic(err)
	}
	fmt.Printf("trained %d members on 4 ranks, loads %v\n", len(ens.Members), report.PerRank)
	fmt.Printf("best config: %s (val acc %.3f)\n", ens.Best().Cfg, ens.Best().ValAccuracy)
	fmt.Printf("ensemble val accuracy %.3f\n\n", ens.Evaluate(val))

	// Figure 4's two panels.
	r := prng.New(3)
	ambiguous := mnistgen.Ambiguous(4, 9, r)
	clean := mnistgen.Render(4, r)
	ca, ua := ens.Predict(ambiguous)
	cc, uc := ens.Predict(clean)
	fmt.Printf("A) ambiguous 4/9 blend: predicted %d, uncertainty %.3f nats\n%s\n", ca, ua, mnistgen.Ascii(ambiguous))
	fmt.Printf("B) clean 4: predicted %d, uncertainty %.3f nats\n%s\n", cc, uc, mnistgen.Ascii(clean))

	// The aggregate statistic behind the figure.
	cleanSet := mnistgen.Generate(9, 300)
	oodSet := mnistgen.GenerateOOD(9, 300)
	fmt.Printf("mean predictive entropy: clean %.3f vs corrupted %.3f nats\n",
		ens.MeanUncertainty(cleanSet), ens.MeanUncertainty(oodSet))
}
