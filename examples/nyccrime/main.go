// Nyccrime: reproduce Figure 2's analysis pipeline end to end — generate
// the four synthetic NYC datasets (historic arrests, current arrests, NTA
// boundaries, NTA populations), run the Spark-style pipeline (clean →
// spatial join → aggregate → normalise per 100k → visualise), and write
// the heat map.
//
//	go run ./examples/nyccrime
package main

import (
	"fmt"
	"os"

	"repro/internal/nycgen"
	"repro/internal/pipeline"
	"repro/internal/rdd"
	"repro/internal/viz"
)

func main() {
	dir, err := os.MkdirTemp("", "nyccrime")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// Step 1: the datasets (60 NTAs, ~90k arrest rows, 3% damaged rows).
	city := nycgen.NewCity(7, 10, 6)
	paths, err := city.ExportAll(dir, 8, 60000, 30000, 0.03)
	if err != nil {
		panic(err)
	}
	fmt.Println("datasets:")
	for _, p := range paths {
		fi, _ := os.Stat(p)
		fmt.Printf("  %-40s %7d bytes\n", p, fi.Size())
	}

	// Step 2: the pipeline.
	ctx := rdd.NewContext()
	rep, err := pipeline.CrimePipeline(ctx, dir, 8)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ncleaning funnel: %d rows -> %d clean -> %d located\n",
		rep.TotalRows, rep.CleanRows, rep.LocatedRows)
	fmt.Printf("engine ran %d tasks, %d shuffles (%d records crossed stages)\n",
		ctx.TaskCount(), ctx.ShuffleCount(), ctx.ShuffledRecords())

	// Step 3: the three analyses.
	fmt.Println("\nanalysis 1 — hottest neighborhoods (arrests per 100k):")
	for _, c := range rep.TopNTAs(5) {
		fmt.Printf("  %-8s %6d\n", c.Key, c.N)
	}
	fmt.Println("analysis 2 — offense mix:")
	for _, c := range rep.OffenseCounts[:3] {
		fmt.Printf("  %-10s %6d\n", c.Key, c.N)
	}
	jan, jul := rep.MonthlyCounts["01"], rep.MonthlyCounts["07"]
	fmt.Printf("analysis 3 — monthly trend: january %d vs july %d arrests\n", jan, jul)

	// Step 4: the Figure 2 exhibit.
	img := rep.RenderHeatMap(500, 300)
	if err := viz.SaveRaster("nyccrime_heatmap.ppm", img); err != nil {
		panic(err)
	}
	fmt.Println("\nheat map written to nyccrime_heatmap.ppm")
}
