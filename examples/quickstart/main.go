// Quickstart: a whirlwind tour of the six Peachy assignments in ~60 lines.
// Each block is independent; see the other examples for depth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/dataio"
	"repro/internal/ensemble"
	"repro/internal/heat"
	"repro/internal/kmeans"
	"repro/internal/knn"
	"repro/internal/locale"
	"repro/internal/mnistgen"
	"repro/internal/prng"
	"repro/internal/traffic"
)

func main() {
	// §2 kNN: classify 100 queries against 1000 labelled points.
	ds := dataio.GaussianMixture(1, 1100, 8, 3, 3.0)
	db, queries := ds.Split(1000)
	pred := knn.Parallel(db, queries.Points, 7, 0)
	fmt.Printf("kNN:      accuracy %.3f on %d queries\n",
		knn.Accuracy(pred, queries.Labels), len(pred))

	// §3 K-means: cluster with the race-free reduction strategy.
	km := kmeans.Run(db.Points, kmeans.Options{K: 3, Seed: 2, Strategy: kmeans.Reduction})
	fmt.Printf("K-means:  %d iterations, WCSS %.0f\n", km.Iterations, km.WCSS(db.Points))

	// §5 Traffic: reproducible parallel Nagel-Schreckenberg.
	cfg := traffic.Config{Cars: 200, RoadLen: 1000, VMax: 5, P: 0.13, Seed: 3}
	serial, _ := traffic.New(cfg)
	serial.RunSerial(100)
	parallel, _ := traffic.New(cfg)
	parallel.RunParallel(100, 8, traffic.SharedSequence)
	fmt.Printf("Traffic:  8-worker run identical to serial: %v\n",
		serial.Fingerprint() == parallel.Fingerprint())

	// §6 Heat: persistent-task solver across 4 simulated locales.
	sys := locale.NewSystem(4, 2)
	u, _ := heat.SolveCoforall(heat.Problem{Alpha: 0.25, U0: heat.SinInit(1000), Steps: 100}, sys)
	fmt.Printf("Heat:     peak after 100 steps %.4f (decay from 1.0)\n", u[len(u)/2])

	// §7 Ensembles: train 4 nets as cluster tasks, measure uncertainty.
	digits := mnistgen.Generate(4, 1200)
	train, val := digits.Split(1000)
	cfgs := ensemble.Grid([][]int{{24}}, []float64{0.1, 0.05}, []float64{0.9, 0.5}, 4, 32, 5)
	world := cluster.NewWorld(3)
	ens, report, err := ensemble.TrainDistributed(world, train, val, cfgs, true)
	if err != nil {
		panic(err)
	}
	r := prng.New(6)
	_, uncertain := ens.Predict(mnistgen.Ambiguous(4, 9, r))
	_, confident := ens.Predict(mnistgen.Render(7, r))
	fmt.Printf("Ensemble: val acc %.3f (loads %v); entropy ambiguous %.2f vs clean %.2f\n",
		ens.Evaluate(val), report.PerRank, uncertain, confident)
}
