// Trafficjam: reproduce Figure 3 end to end — the Nagel-Schreckenberg
// space-time diagram with the paper's parameters (200 cars, road length
// 1000, p=0.13, vmax=5), its no-randomness ablation, and the
// reproducibility check that is the assignment's learning goal.
//
//	go run ./examples/trafficjam
//
// Writes trafficjam.pgm and trafficjam_norandom.pgm into the working
// directory and prints an ASCII preview.
package main

import (
	"fmt"
	"math"

	"repro/internal/traffic"
	"repro/internal/viz"
)

func main() {
	cfg := traffic.Config{Cars: 200, RoadLen: 1000, VMax: 5, P: 0.13, Seed: 2023}
	const steps = 500

	for _, v := range []struct {
		mode traffic.RNGMode
		file string
		note string
	}{
		{traffic.SharedSequence, "trafficjam.pgm", "with randomness: jams form and propagate backwards"},
		{traffic.NoRandom, "trafficjam_norandom.pgm", "without randomness: laminar flow, no jams"},
	} {
		rows, err := traffic.SpaceTime(cfg, steps, v.mode)
		if err != nil {
			panic(err)
		}
		img := viz.NewGray(cfg.RoadLen, len(rows))
		for t, row := range rows {
			for x, cell := range row {
				if cell > 0 {
					img.Set(x, t, uint8(40*(cell-1)))
				}
			}
		}
		if err := viz.SaveRaster(v.file, img); err != nil {
			panic(err)
		}
		fmt.Printf("%s -> %s\n", v.note, v.file)
	}

	// ASCII preview: car density per 10-cell bucket over the last rows.
	rows, _ := traffic.SpaceTime(cfg, 60, traffic.SharedSequence)
	grid := make([][]float64, 0, 30)
	for _, row := range rows[30:] {
		buckets := make([]float64, 100)
		for x, cell := range row {
			if cell > 0 && cell <= 3 { // slow cars only: the jams
				buckets[x/10]++
			}
		}
		for i := range buckets {
			buckets[i] = math.Min(buckets[i], 9)
		}
		grid = append(grid, buckets)
	}
	fmt.Println("\nslow-car density, one row per time step (jams are dark bands):")
	fmt.Print(viz.AsciiHeat(grid))

	// The assignment's acceptance test: parallel == serial, always.
	ref, _ := traffic.New(cfg)
	ref.RunSerial(steps)
	for _, w := range []int{2, 5, 13} {
		par, _ := traffic.New(cfg)
		par.RunParallel(steps, w, traffic.SharedSequence)
		fmt.Printf("reproducible with %2d workers: %v\n",
			w, par.Fingerprint() == ref.Fingerprint())
	}
}
