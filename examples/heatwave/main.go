// Heatwave: the 1D heat equation assignment (paper §6) in both styles —
// part 1's Block-distributed forall and part 2's persistent coforall tasks
// with halo cells — verified against the exact analytic decay of the
// half-sine eigenmode and timed against each other.
//
//	go run ./examples/heatwave
package main

import (
	"fmt"
	"math"
	"time"

	"repro/internal/heat"
	"repro/internal/locale"
)

func main() {
	const nx, nt = 4096, 2000
	p := heat.Problem{Alpha: 0.25, U0: heat.SinInit(nx), Steps: nt}
	sys := locale.NewSystem(4, 2)
	fmt.Printf("1D heat equation: nx=%d, nt=%d, alpha=%.2f, %d locales x %d cores\n\n",
		nx, nt, p.Alpha, sys.NumLocales(), 2)

	// The half-sine is an eigenmode: every cell decays by an exact factor
	// per step, so correctness is checkable without a reference run.
	decay := math.Pow(heat.DecayFactor(nx, p.Alpha), nt)

	solvers := []struct {
		name string
		run  func() ([]float64, error)
	}{
		{"serial", func() ([]float64, error) { return heat.SolveSerial(p) }},
		{"forall (part 1: fresh tasks per step)", func() ([]float64, error) { return heat.SolveForall(p, sys) }},
		{"coforall (part 2: persistent tasks + halos)", func() ([]float64, error) { return heat.SolveCoforall(p, sys) }},
	}
	for _, s := range solvers {
		start := time.Now()
		u, err := s.run()
		if err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		maxErr := 0.0
		u0 := heat.SinInit(nx)
		for i, v := range u {
			if e := math.Abs(v - u0[i]*decay); e > maxErr {
				maxErr = e
			}
		}
		fmt.Printf("%-45s %8.3fs  max error vs analytic %.2e\n", s.name, elapsed.Seconds(), maxErr)
	}
	fmt.Printf("\nanalytic: peak amplitude decays to %.6f after %d steps\n", decay, nt)
}
