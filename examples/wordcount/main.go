// Wordcount: the classic MapReduce warm-up exercise the kNN assignment
// hands out before the real task (paper §2), here on the in-process
// MapReduce-MPI-style framework. It counts words across documents sharded
// over 4 simulated ranks, and shows the combiner's effect on traffic.
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/mapreduce"
)

var corpus = []string{
	`It was the best of times it was the worst of times it was the age of
	 wisdom it was the age of foolishness`,
	`it was the epoch of belief it was the epoch of incredulity it was the
	 season of Light it was the season of Darkness`,
	`it was the spring of hope it was the winter of despair we had
	 everything before us we had nothing before us`,
	`we were all going direct to Heaven we were all going direct the other
	 way`,
}

func main() {
	// Count words over 4 ranks.
	world := cluster.NewWorld(4)
	counts, err := mapreduce.WordCount(world, corpus)
	if err != nil {
		panic(err)
	}

	type wc struct {
		word string
		n    int
	}
	var all []wc
	for w, n := range counts {
		all = append(all, wc{w, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].word < all[j].word
	})
	fmt.Println("top words across 4 ranks:")
	for _, e := range all[:10] {
		fmt.Printf("  %-12s %d\n", e.word, e.n)
	}
	fmt.Printf("(%d distinct words, %d messages, %d bytes with combiner)\n\n",
		len(all), world.TotalMessages(), world.TotalBytes())

	// The same job without the local reduction ships far more pairs.
	shards := cluster.SplitEven(corpus, 4)
	naive := cluster.NewWorld(4)
	job := mapreduce.WordCountJob()
	job.Combine = nil
	err = naive.Run(func(c *cluster.Comm) {
		job.RunToRoot(c, shards[c.Rank()])
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("without combiner: %d bytes (%.1fx more traffic)\n",
		naive.TotalBytes(), float64(naive.TotalBytes())/float64(world.TotalBytes()))
}
