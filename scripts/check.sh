#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before it lands.
#   build, stock vet, the full test suite under the race detector,
#   and peachyvet (the repo's own SPMD correctness analyzer).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== peachyvet ./..."
go run ./cmd/peachyvet ./...

echo "== peachyvet self-test (examples/ and cmd/ stay clean)"
go run ./cmd/peachyvet -q ./examples/... ./cmd/...

echo "== peachyvet -json artifact"
mkdir -p out
go run ./cmd/peachyvet -json ./... > out/peachyvet.json
echo "wrote out/peachyvet.json"

echo "== peachyvet -sarif artifact"
go run ./cmd/peachyvet -sarif ./... > out/peachyvet.sarif
echo "wrote out/peachyvet.sarif"

echo "== peachyvet -stats artifact"
go run ./cmd/peachyvet -stats ./... > out/peachyvet-stats.json
echo "wrote out/peachyvet-stats.json"

echo "== observability smoke (trace + metrics + obs-lint)"
mkdir -p out
go run ./cmd/knn -variant mapreduce -ranks 4 -n 2000 -q 500 \
	-trace out/obs_smoke_trace.json -metrics out/obs_smoke_metrics.json >/dev/null
go run ./cmd/peachy obs-lint out/obs_smoke_trace.json out/obs_smoke_metrics.json

echo "== multi-process launch smoke (net device, P=4)"
mkdir -p out
go build -o out/peachy ./cmd/peachy
go build -o out/kmeans ./cmd/kmeans
# canonical() keeps the result line and strips the wall-clock field, the
# only part allowed to differ between an in-process and a launched run.
canonical() { grep '^n=' | sed -E 's/ [0-9.]+s,//'; }
out/kmeans -distributed -ranks 4 -n 5000 -k 4 | canonical >out/launch_inproc.txt
out/peachy launch -np 4 out/kmeans -distributed -ranks 4 -n 5000 -k 4 \
	-trace out/launch_trace.json -metrics out/launch_metrics.json | canonical >out/launch_multi.txt
if ! diff out/launch_inproc.txt out/launch_multi.txt; then
	echo "check.sh: ERROR: launched world diverged from the in-process run" >&2
	exit 1
fi
out/peachy obs-lint \
	out/launch_trace.json.rank0 out/launch_trace.json.rank1 \
	out/launch_trace.json.rank2 out/launch_trace.json.rank3 \
	out/launch_metrics.json.rank0 out/launch_metrics.json.rank1 \
	out/launch_metrics.json.rank2 out/launch_metrics.json.rank3
cat out/launch_multi.txt

echo "== cross-rank artifact merge (obs-merge, byte-identical across runs)"
# Merging the per-rank artifacts (cross-checked by the merged lint) must
# be deterministic: two merges of the same artifacts are byte-identical.
out/peachy obs-merge -o out/launch_trace_merged.json 'out/launch_trace.json.rank*'
out/peachy obs-merge -o out/launch_trace_merged2.json 'out/launch_trace.json.rank*'
if ! cmp -s out/launch_trace_merged.json out/launch_trace_merged2.json; then
	echo "check.sh: ERROR: obs-merge is not deterministic across runs" >&2
	exit 1
fi
rm -f out/launch_trace_merged2.json
out/peachy obs-merge -o out/launch_metrics_merged.json 'out/launch_metrics.json.rank*'
out/peachy obs-lint out/launch_trace_merged.json out/launch_metrics_merged.json

echo "== analyzer micro-benchmark (one pass)"
go test -run '^$' -bench BenchmarkLoadAnalyzeRepo -benchtime 1x ./internal/analysis

echo "== bench harness smoke (short mode)"
scripts/bench.sh --short

echo "check.sh: all gates passed"
