#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before it lands.
#   build, stock vet, the full test suite under the race detector,
#   and peachyvet (the repo's own SPMD correctness analyzer).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== peachyvet ./..."
go run ./cmd/peachyvet ./...

echo "check.sh: all gates passed"
