#!/usr/bin/env bash
# Benchmark harness for the cluster runtime: runs the transport/collective
# microbenchmarks plus the cluster-backed experiment benchmarks and records
# the numbers in BENCH_cluster.json — the tracked baseline to diff against
# when touching the mailbox, the collective algorithms, or the kernels
# under them. Parsing is plain awk: no dependencies beyond the go toolchain.
#
# Usage:
#   scripts/bench.sh            # full run, rewrites BENCH_cluster.json
#   scripts/bench.sh --short    # quick smoke (few iterations, subset),
#                               # writes out/BENCH_cluster.short.json and
#                               # leaves the tracked baseline alone
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-full}"
OUT="BENCH_cluster.json"
NET_OUT="BENCH_net.json"
OBS_OUT="BENCH_obs_metrics.json"

case "$MODE" in
--short | short)
	BENCHTIME=5x
	CLUSTER_RE='BenchmarkPingPong|BenchmarkMessageRate|BenchmarkCollectives/(Barrier|Allreduce)/|BenchmarkObsOverhead/(detached|nil-recorder)'
	NET_RE='BenchmarkNetPingPong/1024B|BenchmarkNetAllreduce/P2'
	ROOT_RE='BenchmarkC8TaskFarm'
	OUT="out/BENCH_cluster.short.json"
	NET_OUT="out/BENCH_net.short.json"
	OBS_OUT="out/BENCH_obs_metrics.short.json"
	;;
full | --full)
	BENCHTIME=1s
	CLUSTER_RE='BenchmarkPingPong|BenchmarkAllreduce|BenchmarkMessageRate|BenchmarkCollectives|BenchmarkObsOverhead'
	NET_RE='BenchmarkNetPingPong|BenchmarkNetAllreduce'
	ROOT_RE='BenchmarkC1KNNMapReduce|BenchmarkC2CombinerEffect|BenchmarkC4KMeansDistributed|BenchmarkC8TaskFarm'
	;;
*)
	echo "usage: scripts/bench.sh [--short]" >&2
	exit 2
	;;
esac

TMP="$(mktemp)"
NET_TMP="$(mktemp)"
trap 'rm -f "$TMP" "$NET_TMP"' EXIT

# bench_json parses `go test -bench` output into the tracked JSON shape.
bench_json() {
	awk -v host="$(uname -sm)" -v gover="$(go version | awk '{print $3}')" \
		-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
	/^Benchmark/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		ns = ""; allocs = ""; simus = ""; shuffle = ""; msgs = ""; bytes = ""
		for (i = 3; i < NF; i += 2) {
			v = $i; u = $(i + 1)
			if (u == "ns/op") ns = v
			else if (u == "allocs/op") allocs = v
			else if (u == "sim-us") simus = v
			else if (u == "shuffle-bytes") shuffle = v
			else if (u == "msgs/op") msgs = v
			else if (u == "bytes/op") bytes = v
		}
		if (ns == "") next
		line = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns)
		if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
		if (simus != "") line = line sprintf(", \"sim_us\": %s", simus)
		if (shuffle != "") line = line sprintf(", \"shuffle_bytes\": %s", shuffle)
		if (msgs != "") line = line sprintf(", \"msgs_per_op\": %s", msgs)
		if (bytes != "") line = line sprintf(", \"bytes_per_op\": %s", bytes)
		rows[n++] = line "}"
	}
	END {
		printf "{\n  \"host\": \"%s\",\n  \"go\": \"%s\",\n  \"date\": \"%s\",\n  \"benchmarks\": [\n", host, gover, date
		for (i = 0; i < n; i++) printf "%s%s\n", rows[i], (i < n - 1 ? "," : "")
		printf "  ]\n}\n"
	}' "$1"
}

echo "== cluster microbenchmarks (benchtime=$BENCHTIME)"
go test -run '^$' -bench "$CLUSTER_RE" -benchmem -benchtime "$BENCHTIME" ./internal/cluster | tee -a "$TMP"

echo "== cluster-backed experiment benchmarks (benchtime=$BENCHTIME)"
go test -run '^$' -bench "$ROOT_RE" -benchmem -benchtime "$BENCHTIME" . | tee -a "$TMP"

echo "== analyzer ownership pass benchmark (benchtime=$BENCHTIME)"
go test -run '^$' -bench BenchmarkAnalyzeOwnership -benchmem -benchtime "$BENCHTIME" ./internal/analysis | tee -a "$TMP"

echo "== analyzer perf/determinism pass benchmark (benchtime=$BENCHTIME)"
go test -run '^$' -bench BenchmarkAnalyzePerf -benchmem -benchtime "$BENCHTIME" ./internal/analysis | tee -a "$TMP"

mkdir -p "$(dirname "$OUT")"
bench_json "$TMP" >"$OUT"

COUNT="$(grep -c '"name"' "$OUT" || true)"
if [ "$COUNT" -eq 0 ]; then
	echo "bench.sh: ERROR: parsed zero benchmark lines out of the go test output" >&2
	echo "bench.sh: the benchmark regexes matched nothing or the output format changed" >&2
	exit 1
fi
echo "bench.sh: wrote $OUT ($COUNT benchmarks)"

# Net-device pass: the same transport shapes over unix sockets, recorded
# separately so the in-process vs over-the-wire cost is a one-file diff.
echo "== net device benchmarks (benchtime=$BENCHTIME)"
go test -run '^$' -bench "$NET_RE" -benchmem -benchtime "$BENCHTIME" ./internal/cluster | tee -a "$NET_TMP"

mkdir -p "$(dirname "$NET_OUT")"
bench_json "$NET_TMP" >"$NET_OUT"

NET_COUNT="$(grep -c '"name"' "$NET_OUT" || true)"
if [ "$NET_COUNT" -eq 0 ]; then
	echo "bench.sh: ERROR: parsed zero net-device benchmark lines" >&2
	exit 1
fi
echo "bench.sh: wrote $NET_OUT ($NET_COUNT benchmarks)"

# Archive the observability metrics for the flagship cluster exhibit next
# to the benchmark baseline, so traffic-matrix drift is tracked alongside
# timing drift.
echo "== obs metrics archive (knn mapreduce, P=4)"
go run ./cmd/knn -variant mapreduce -ranks 4 -n 2000 -q 500 -metrics "$OBS_OUT" >/dev/null
go run ./cmd/peachy obs-lint "$OBS_OUT"
echo "bench.sh: wrote $OBS_OUT"
