// Package heapk implements a bounded max-heap for selecting the k smallest
// items of a stream in Θ(n log k) time — the CLRS heap trick the kNN
// assignment cites (paper §2) to beat the Θ(n log n) full sort.
package heapk

import "math"

// Item is a candidate with a priority (for kNN: squared distance) and an
// opaque payload (for kNN: the class label).
type Item[T any] struct {
	Priority float64
	Value    T
}

// Heap keeps the k items with the smallest priorities seen so far. The
// root is the largest of those k, so each new candidate is compared against
// the root in O(1) and replaces it in O(log k) when smaller. The zero
// value is unusable; use New.
type Heap[T any] struct {
	k     int
	items []Item[T]
}

// New returns a bounded heap that retains the k smallest-priority items.
func New[T any](k int) *Heap[T] {
	if k < 1 {
		panic("heapk: k must be >= 1")
	}
	return &Heap[T]{k: k, items: make([]Item[T], 0, k)}
}

// Len returns the number of retained items (<= k).
func (h *Heap[T]) Len() int { return len(h.items) }

// K returns the bound.
func (h *Heap[T]) K() int { return h.k }

// Max returns the largest retained priority, or +Inf semantics via ok=false
// when fewer than k items have been offered (meaning any candidate will be
// accepted).
func (h *Heap[T]) Max() (float64, bool) {
	if len(h.items) < h.k {
		return 0, false
	}
	return h.items[0].Priority, true
}

// Bound returns the priority a new candidate must beat (be strictly
// below) to be retained: the current maximum once k items are held, +Inf
// before that. Producers that can compute their priority incrementally
// can use it to abandon candidates early (see linalg.SqDistBounded).
func (h *Heap[T]) Bound() float64 {
	if len(h.items) < h.k {
		return math.Inf(1)
	}
	return h.items[0].Priority
}

// Reset empties the heap for reuse, retaining its capacity. Lets hot
// loops (one k-selection per query) amortise the allocation.
func (h *Heap[T]) Reset() { h.items = h.items[:0] }

// Offer considers a candidate. It returns true if the candidate was
// retained.
func (h *Heap[T]) Offer(priority float64, value T) bool {
	if len(h.items) < h.k {
		h.items = append(h.items, Item[T]{priority, value})
		h.siftUp(len(h.items) - 1)
		return true
	}
	if priority >= h.items[0].Priority {
		return false
	}
	h.items[0] = Item[T]{priority, value}
	h.siftDown(0)
	return true
}

// Items returns the retained items in unspecified order. The slice aliases
// the heap's storage; callers must not offer further candidates while
// using it.
func (h *Heap[T]) Items() []Item[T] { return h.items }

// Sorted extracts the retained items ordered by ascending priority,
// leaving the heap empty.
func (h *Heap[T]) Sorted() []Item[T] {
	out := make([]Item[T], len(h.items))
	for i := len(h.items) - 1; i >= 0; i-- {
		out[i] = h.items[0]
		last := len(h.items) - 1
		h.items[0] = h.items[last]
		h.items = h.items[:last]
		if last > 0 {
			h.siftDown(0)
		}
	}
	return out
}

// Merge offers every retained item of other into h. Useful for combining
// per-worker partial k-nearest sets (the MapReduce combiner path).
func (h *Heap[T]) Merge(other *Heap[T]) {
	for _, it := range other.items {
		h.Offer(it.Priority, it.Value)
	}
}

func (h *Heap[T]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Priority >= h.items[i].Priority {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *Heap[T]) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.items[l].Priority > h.items[largest].Priority {
			largest = l
		}
		if r < n && h.items[r].Priority > h.items[largest].Priority {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}
