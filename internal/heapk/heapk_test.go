package heapk

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestKeepsKSmallest(t *testing.T) {
	h := New[int](3)
	for i, p := range []float64{9, 1, 8, 2, 7, 3, 6} {
		h.Offer(p, i)
	}
	got := h.Sorted()
	if len(got) != 3 {
		t.Fatalf("len %d", len(got))
	}
	wantP := []float64{1, 2, 3}
	for i, it := range got {
		if it.Priority != wantP[i] {
			t.Errorf("pos %d priority %v want %v", i, it.Priority, wantP[i])
		}
	}
}

func TestFewerThanK(t *testing.T) {
	h := New[string](10)
	h.Offer(5, "a")
	h.Offer(1, "b")
	got := h.Sorted()
	if len(got) != 2 || got[0].Value != "b" || got[1].Value != "a" {
		t.Errorf("got %v", got)
	}
}

func TestMaxSemantics(t *testing.T) {
	h := New[int](2)
	if _, ok := h.Max(); ok {
		t.Error("Max ok before full")
	}
	h.Offer(3, 0)
	h.Offer(1, 1)
	if m, ok := h.Max(); !ok || m != 3 {
		t.Errorf("Max = %v, %v", m, ok)
	}
	h.Offer(2, 2) // evicts 3
	if m, _ := h.Max(); m != 2 {
		t.Errorf("Max after evict = %v", m)
	}
}

func TestOfferReturnValue(t *testing.T) {
	h := New[int](1)
	if !h.Offer(5, 0) {
		t.Error("first offer rejected")
	}
	if h.Offer(9, 1) {
		t.Error("worse candidate accepted")
	}
	if !h.Offer(1, 2) {
		t.Error("better candidate rejected")
	}
}

func TestMatchesSortProperty(t *testing.T) {
	f := func(seed uint64, n uint8, k uint8) bool {
		kk := int(k%20) + 1
		nn := int(n)
		r := prng.New(seed)
		ps := make([]float64, nn)
		h := New[int](kk)
		for i := range ps {
			ps[i] = r.Float64()
			h.Offer(ps[i], i)
		}
		sort.Float64s(ps)
		want := ps
		if len(want) > kk {
			want = want[:kk]
		}
		got := h.Sorted()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Priority != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeEquivalentToCombinedStream(t *testing.T) {
	r := prng.New(77)
	a, b, all := New[int](5), New[int](5), New[int](5)
	for i := 0; i < 200; i++ {
		p := r.Float64()
		if i%2 == 0 {
			a.Offer(p, i)
		} else {
			b.Offer(p, i)
		}
		all.Offer(p, i)
	}
	a.Merge(b)
	got, want := a.Sorted(), all.Sorted()
	for i := range want {
		if got[i].Priority != want[i].Priority {
			t.Fatalf("merge mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestDuplicatePriorities(t *testing.T) {
	h := New[int](3)
	for i := 0; i < 10; i++ {
		h.Offer(1.0, i)
	}
	if h.Len() != 3 {
		t.Errorf("len %d", h.Len())
	}
}

func TestPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New[int](0)
}

func BenchmarkHeapVsSort(b *testing.B) {
	const n, k = 5000, 15
	r := prng.New(1)
	ps := make([]float64, n)
	for i := range ps {
		ps[i] = r.Float64()
	}
	b.Run("Heap", func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			h := New[int](k)
			for i, p := range ps {
				h.Offer(p, i)
			}
		}
	})
	b.Run("Sort", func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			cp := make([]float64, n)
			copy(cp, ps)
			sort.Float64s(cp)
			_ = cp[:k]
		}
	})
}
