// Package pipeline implements the data-science-pipeline assignment (paper
// §4) on the rdd engine. The flagship workflow reproduces the student
// submission the paper showcases (Figure 2): combine four NYC-style
// datasets — historic arrests, current-year arrests, NTA boundaries and
// NTA populations — to compute arrests per 100,000 residents per
// neighborhood and plot a spatial heat map.
//
// The workflow covers the project's required stages: data aggregation
// (union of two arrest years), cleaning (dropping rows with damaged
// coordinates or dates), analysis (spatial join + aggregation + join with
// population + two further analyses: offense mix and monthly trend), and
// visualisation (the heat map raster).
package pipeline

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/geo"
	"repro/internal/nycgen"
	"repro/internal/obs"
	"repro/internal/rdd"
	"repro/internal/viz"
)

// CrimeReport is the pipeline's output.
type CrimeReport struct {
	// RatePer100k maps NTA id to arrests per 100k residents (Figure 2's
	// plotted quantity).
	RatePer100k map[string]float64
	// ArrestsPerNTA maps NTA id to its absolute arrest count.
	ArrestsPerNTA map[string]int
	// OffenseCounts is analysis #2: arrests per offense type, descending.
	OffenseCounts []Count
	// MonthlyCounts is analysis #3: arrests per calendar month "01".."12".
	MonthlyCounts map[string]int
	// TotalRows, CleanRows and LocatedRows trace the cleaning funnel.
	TotalRows, CleanRows, LocatedRows int
	// Boundaries holds the parsed NTA polygons for rendering.
	Boundaries map[string]geo.Polygon
	// Population maps NTA id to residents.
	Population map[string]int
}

// Count is a labelled tally.
type Count struct {
	Key string
	N   int
}

// CrimePipeline runs the full workflow over the four CSV files that
// nycgen.ExportAll writes into dir, with the given partition count.
func CrimePipeline(ctx *rdd.Context, dir string, parts int) (*CrimeReport, error) {
	if parts < 1 {
		parts = 4
	}
	rec := ctx.Recorder()

	// Stage 1: ingest + aggregate the two arrest datasets.
	ingestWall := rec.Now()
	historic, err := rdd.TextFile(ctx, dir+"/arrests_historic.csv", parts)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	current, err := rdd.TextFile(ctx, dir+"/arrests_current.csv", parts)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	lines := rdd.Union(historic, current)
	rec.WallSpan("pipeline.ingest", ingestWall)

	// Stage 2: parse + clean.
	cleanWall := rec.Now()
	parsed := rdd.FlatMap(lines, func(line string) []nycgen.Arrest {
		if a, ok := nycgen.ParseArrest(line); ok {
			return []nycgen.Arrest{a}
		}
		return nil
	}).Cache()
	total := rdd.Count(parsed)
	clean := rdd.Filter(parsed, nycgen.Arrest.Valid).Cache()
	cleanCount := rdd.Count(clean)
	rec.WallSpan("pipeline.clean", cleanWall,
		obs.KV{K: "rows_in", V: int64(total)}, obs.KV{K: "rows_out", V: int64(cleanCount)})

	// Stage 3: load the small dimension tables (broadcast-style).
	dimWall := rec.Now()
	boundLines, err := rdd.TextFile(ctx, dir+"/nta_boundaries.csv", 1)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	boundaries := map[string]geo.Polygon{}
	var regions []geo.Region
	for _, line := range rdd.Collect(boundLines) {
		if id, poly, ok := nycgen.ParseBoundary(line); ok {
			boundaries[id] = poly
			regions = append(regions, geo.Region{ID: id, Poly: poly})
		}
	}
	index := geo.NewIndex(regions)

	popLines, err := rdd.TextFile(ctx, dir+"/nta_population.csv", 1)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	population := map[string]int{}
	for _, line := range rdd.Collect(popLines) {
		if id, pop, ok := nycgen.ParsePopulation(line); ok {
			population[id] = pop
		}
	}
	rec.WallSpan("pipeline.dimensions", dimWall,
		obs.KV{K: "boundaries", V: int64(len(boundaries))}, obs.KV{K: "populations", V: int64(len(population))})

	// Stage 4 (analysis #1): spatial join + per-NTA aggregation +
	// per-100k normalisation against the population table.
	rateWall := rec.Now()
	located := rdd.FlatMap(clean, func(a nycgen.Arrest) []rdd.Pair[string, int] {
		if id, ok := index.Locate(geo.Point{X: a.X, Y: a.Y}); ok {
			return []rdd.Pair[string, int]{{Key: id, Value: 1}}
		}
		return nil
	})
	perNTA := rdd.ReduceByKey(located, func(a, b int) int { return a + b })
	popPairs := make([]rdd.Pair[string, int], 0, len(population))
	for id, pop := range population {
		popPairs = append(popPairs, rdd.Pair[string, int]{Key: id, Value: pop})
	}
	popDS := rdd.Parallelize(ctx, popPairs, parts)
	joined := rdd.Join(perNTA, popDS)
	rates := rdd.CollectMap(rdd.MapValues(joined, func(j rdd.JoinRow[int, int]) float64 {
		return float64(j.Left) / float64(j.Right) * 100000
	}))
	arrestsPerNTA := rdd.CollectMap(perNTA)
	locatedCount := 0
	for _, n := range arrestsPerNTA {
		locatedCount += n
	}
	rec.WallSpan("pipeline.rates", rateWall, obs.KV{K: "located", V: int64(locatedCount)})

	// Stage 5 (analysis #2): offense mix.
	offenseWall := rec.Now()
	offensePairs := rdd.Map(clean, func(a nycgen.Arrest) rdd.Pair[string, int] {
		return rdd.Pair[string, int]{Key: a.Offense, Value: 1}
	})
	offenseMap := rdd.CollectMap(rdd.ReduceByKey(offensePairs, func(a, b int) int { return a + b }))
	var offenses []Count
	for k, n := range offenseMap {
		offenses = append(offenses, Count{k, n})
	}
	sort.Slice(offenses, func(i, j int) bool {
		if offenses[i].N != offenses[j].N {
			return offenses[i].N > offenses[j].N
		}
		return offenses[i].Key < offenses[j].Key
	})
	rec.WallSpan("pipeline.offenses", offenseWall, obs.KV{K: "offense_types", V: int64(len(offenses))})

	// Stage 6 (analysis #3): monthly trend from the date column.
	monthWall := rec.Now()
	monthPairs := rdd.FlatMap(clean, func(a nycgen.Arrest) []rdd.Pair[string, int] {
		f := strings.Split(a.Date, "-")
		if len(f) != 3 {
			return nil
		}
		return []rdd.Pair[string, int]{{Key: f[1], Value: 1}}
	})
	monthly := rdd.CollectMap(rdd.ReduceByKey(monthPairs, func(a, b int) int { return a + b }))
	rec.WallSpan("pipeline.monthly", monthWall, obs.KV{K: "months", V: int64(len(monthly))})

	return &CrimeReport{
		RatePer100k:   rates,
		ArrestsPerNTA: arrestsPerNTA,
		OffenseCounts: offenses,
		MonthlyCounts: monthly,
		TotalRows:     total,
		CleanRows:     cleanCount,
		LocatedRows:   locatedCount,
		Boundaries:    boundaries,
		Population:    population,
	}, nil
}

// RenderHeatMap rasterises the per-100k rates over the NTA polygons — the
// Figure 2 exhibit. Regions without a rate render gray.
func (r *CrimeReport) RenderHeatMap(w, h int) *viz.RGB {
	img := viz.NewRGB(w, h)
	// City bounds from the union of boundary bboxes.
	minX, minY := 1e300, 1e300
	maxX, maxY := -1e300, -1e300
	for _, poly := range r.Boundaries {
		x0, y0, x1, y1 := poly.BBox()
		if x0 < minX {
			minX = x0
		}
		if y0 < minY {
			minY = y0
		}
		if x1 > maxX {
			maxX = x1
		}
		if y1 > maxY {
			maxY = y1
		}
	}
	if minX >= maxX || minY >= maxY {
		return img
	}
	// Rate normalisation.
	lo, hi := 1e300, -1e300
	for _, v := range r.RatePer100k {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	// Paint pixel centres by containing region.
	ids := make([]string, 0, len(r.Boundaries))
	for id := range r.Boundaries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var regions []geo.Region
	for _, id := range ids {
		regions = append(regions, geo.Region{ID: id, Poly: r.Boundaries[id]})
	}
	index := geo.NewIndex(regions)
	for py := 0; py < h; py++ {
		for px := 0; px < w; px++ {
			x := minX + (float64(px)+0.5)/float64(w)*(maxX-minX)
			y := maxY - (float64(py)+0.5)/float64(h)*(maxY-minY)
			id, ok := index.Locate(geo.Point{X: x, Y: y})
			if !ok {
				continue
			}
			rate, ok := r.RatePer100k[id]
			if !ok {
				img.Set(px, py, 180, 180, 180)
				continue
			}
			cr, cg, cb := viz.HeatColor((rate - lo) / span)
			img.Set(px, py, cr, cg, cb)
		}
	}
	return img
}

// TopNTAs returns the n NTAs with the highest arrest rate per 100k,
// descending (ties by id for determinism).
func (r *CrimeReport) TopNTAs(n int) []Count {
	type kv struct {
		id   string
		rate float64
	}
	all := make([]kv, 0, len(r.RatePer100k))
	for id, rate := range r.RatePer100k {
		all = append(all, kv{id, rate})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].rate != all[j].rate {
			return all[i].rate > all[j].rate
		}
		return all[i].id < all[j].id
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]Count, n)
	for i := 0; i < n; i++ {
		out[i] = Count{all[i].id, int(all[i].rate + 0.5)}
	}
	return out
}
