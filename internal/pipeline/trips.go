package pipeline

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/prng"
	"repro/internal/rdd"
)

// The trips/weather workflow is a second, smaller pipeline of the kind
// student teams build (paper §4: "teams are given a completely free choice
// of topic"): join a taxi-like trip log with a daily weather table and ask
// how weather affects ridership and trip length.

// Trip is one synthetic taxi trip.
type Trip struct {
	Day      int // day of year, 0-364
	Minutes  float64
	Distance float64
}

// Weather is one day's conditions.
type Weather struct {
	Day       int
	Condition string // "sun", "rain", "snow"
}

// GenerateTrips synthesises a year of trips whose volume and duration
// respond to weather: rain shrinks volume and slows trips; snow more so.
func GenerateTrips(seed uint64, perDay int) ([]Trip, []Weather) {
	r := prng.New(seed)
	conditions := []string{"sun", "rain", "snow"}
	weights := []float64{0.6, 0.3, 0.1}
	volumeFactor := map[string]float64{"sun": 1.0, "rain": 0.8, "snow": 0.5}
	slowdown := map[string]float64{"sun": 1.0, "rain": 1.25, "snow": 1.6}

	var weather []Weather
	var trips []Trip
	for day := 0; day < 365; day++ {
		u := r.Float64()
		cond := conditions[0]
		acc := 0.0
		for i, wgt := range weights {
			acc += wgt
			if u < acc {
				cond = conditions[i]
				break
			}
		}
		weather = append(weather, Weather{Day: day, Condition: cond})
		n := int(float64(perDay) * volumeFactor[cond])
		for i := 0; i < n; i++ {
			dist := r.Range(0.5, 12)
			trips = append(trips, Trip{
				Day:      day,
				Distance: dist,
				Minutes:  dist * 3 * slowdown[cond] * r.Range(0.8, 1.2),
			})
		}
	}
	return trips, weather
}

// WeatherStat is the aggregated outcome for one weather condition.
type WeatherStat struct {
	Condition    string
	Days         int
	TripsPerDay  float64
	MeanMinPerKm float64
}

// TripsPipeline joins trips with weather by day and aggregates ridership
// and pace per condition, demonstrating a second rdd workflow (join +
// two-level aggregation).
func TripsPipeline(ctx *rdd.Context, trips []Trip, weather []Weather, parts int) []WeatherStat {
	rec := ctx.Recorder()
	joinWall := rec.Now()
	tripDS := rdd.KeyBy(rdd.Parallelize(ctx, trips, parts), func(t Trip) int { return t.Day })
	weatherDS := rdd.KeyBy(rdd.Parallelize(ctx, weather, parts), func(w Weather) int { return w.Day })
	joined := rdd.Join(tripDS, weatherDS)
	rec.WallSpan("trips.join", joinWall,
		obs.KV{K: "trips", V: int64(len(trips))}, obs.KV{K: "days", V: int64(len(weather))})

	// Per-condition accumulation: trips, minutes, km.
	aggWall := rec.Now()
	type agg struct {
		Trips   int
		Minutes float64
		Km      float64
	}
	byCond := rdd.ReduceByKey(
		rdd.Map(joined, func(p rdd.Pair[int, rdd.JoinRow[Trip, Weather]]) rdd.Pair[string, agg] {
			t := p.Value.Left
			return rdd.Pair[string, agg]{
				Key:   p.Value.Right.Condition,
				Value: agg{Trips: 1, Minutes: t.Minutes, Km: t.Distance},
			}
		}),
		func(a, b agg) agg {
			return agg{a.Trips + b.Trips, a.Minutes + b.Minutes, a.Km + b.Km}
		})

	days := map[string]int{}
	for _, w := range weather {
		days[w.Condition]++
	}
	var out []WeatherStat
	for cond, a := range rdd.CollectMap(byCond) {
		d := days[cond]
		if d == 0 {
			continue
		}
		out = append(out, WeatherStat{
			Condition:    cond,
			Days:         d,
			TripsPerDay:  float64(a.Trips) / float64(d),
			MeanMinPerKm: a.Minutes / a.Km,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Condition < out[j].Condition })
	rec.WallSpan("trips.aggregate", aggWall, obs.KV{K: "conditions", V: int64(len(out))})
	return out
}

// String renders a stat row.
func (s WeatherStat) String() string {
	return fmt.Sprintf("%-5s days=%3d trips/day=%7.1f min/km=%5.2f",
		s.Condition, s.Days, s.TripsPerDay, s.MeanMinPerKm)
}
