package pipeline

import (
	"math"
	"testing"

	"repro/internal/nycgen"
	"repro/internal/rdd"
)

// buildCity exports a deterministic synthetic city into a temp dir.
func buildCity(t *testing.T, corruption float64) (*nycgen.City, string, int) {
	t.Helper()
	dir := t.TempDir()
	city := nycgen.NewCity(77, 8, 5)
	const historic, current = 6000, 4000
	if _, err := city.ExportAll(dir, 300, historic, current, corruption); err != nil {
		t.Fatal(err)
	}
	return city, dir, historic + current
}

func TestCrimePipelineEndToEnd(t *testing.T) {
	city, dir, total := buildCity(t, 0.05)
	ctx := rdd.NewContext()
	rep, err := CrimePipeline(ctx, dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalRows != total {
		t.Errorf("total rows %d want %d", rep.TotalRows, total)
	}
	// Cleaning must drop roughly the corruption fraction.
	dropped := rep.TotalRows - rep.CleanRows
	if dropped < total/40 || dropped > total/10 {
		t.Errorf("dropped %d of %d at corruption 0.05", dropped, total)
	}
	// Nearly all clean rows locate inside some NTA.
	if rep.LocatedRows < rep.CleanRows*95/100 {
		t.Errorf("located %d of %d clean rows", rep.LocatedRows, rep.CleanRows)
	}
	// Every NTA with arrests has a rate; rates positive.
	for id, n := range rep.ArrestsPerNTA {
		if n <= 0 {
			t.Errorf("NTA %s count %d", id, n)
		}
		if rep.RatePer100k[id] <= 0 {
			t.Errorf("NTA %s missing rate", id)
		}
	}
	if len(rep.Boundaries) != len(city.NTAs) || len(rep.Population) != len(city.NTAs) {
		t.Error("dimension tables incomplete")
	}
	// Offense mix covers the six generator offenses, sorted descending.
	if len(rep.OffenseCounts) != 6 {
		t.Errorf("offense kinds %d", len(rep.OffenseCounts))
	}
	for i := 1; i < len(rep.OffenseCounts); i++ {
		if rep.OffenseCounts[i].N > rep.OffenseCounts[i-1].N {
			t.Error("offenses not sorted")
		}
	}
	// All 12 months present.
	if len(rep.MonthlyCounts) != 12 {
		t.Errorf("months %d", len(rep.MonthlyCounts))
	}
}

func TestPipelineRatesTrackGroundTruth(t *testing.T) {
	city, dir, total := buildCity(t, 0)
	ctx := rdd.NewContext()
	rep, err := CrimePipeline(ctx, dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	truth := city.TrueRatePer100k(total)
	// Spearman-ish check: the measured top NTA should be near the top of
	// the truth ranking; use correlation of log rates instead for
	// stability.
	var xs, ys []float64
	for id, want := range truth {
		got, ok := rep.RatePer100k[id]
		if !ok {
			continue // NTA with zero sampled arrests
		}
		xs = append(xs, math.Log(want))
		ys = append(ys, math.Log(got))
	}
	if len(xs) < 20 {
		t.Fatalf("only %d NTAs measured", len(xs))
	}
	if c := corr(xs, ys); c < 0.9 {
		t.Errorf("rate correlation with ground truth %v", c)
	}
}

func corr(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, syy, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		syy += ys[i] * ys[i]
		sxy += xs[i] * ys[i]
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	return cov / math.Sqrt(vx*vy)
}

func TestRenderHeatMap(t *testing.T) {
	_, dir, _ := buildCity(t, 0)
	ctx := rdd.NewContext()
	rep, err := CrimePipeline(ctx, dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	img := rep.RenderHeatMap(120, 72)
	if img.W != 120 || img.H != 72 {
		t.Fatal("raster size")
	}
	// Interior pixels must be colored (non-white).
	cr, cg, cb := img.At(60, 36)
	if cr == 255 && cg == 255 && cb == 255 {
		t.Error("heat map center unpainted")
	}
}

func TestTopNTAs(t *testing.T) {
	rep := &CrimeReport{RatePer100k: map[string]float64{
		"A": 10, "B": 30, "C": 20,
	}}
	top := rep.TopNTAs(2)
	if len(top) != 2 || top[0].Key != "B" || top[1].Key != "C" {
		t.Errorf("top %v", top)
	}
	if len(rep.TopNTAs(10)) != 3 {
		t.Error("over-clamp")
	}
}

func TestCrimePipelineMissingFiles(t *testing.T) {
	ctx := rdd.NewContext()
	if _, err := CrimePipeline(ctx, t.TempDir(), 2); err == nil {
		t.Error("missing files not reported")
	}
}

func TestTripsPipeline(t *testing.T) {
	trips, weather := GenerateTrips(5, 40)
	ctx := rdd.NewContext()
	out := TripsPipeline(ctx, trips, weather, 6)
	if len(out) != 3 {
		t.Fatalf("conditions %d", len(out))
	}
	stats := map[string]WeatherStat{}
	for _, s := range out {
		stats[s.Condition] = s
		if s.String() == "" {
			t.Error("empty stat string")
		}
	}
	// The generator's built-in effects must be recovered by the join:
	// snow < rain < sun in trips/day; snow slowest per km.
	if !(stats["snow"].TripsPerDay < stats["rain"].TripsPerDay &&
		stats["rain"].TripsPerDay < stats["sun"].TripsPerDay) {
		t.Errorf("ridership ordering wrong: %+v", stats)
	}
	if !(stats["snow"].MeanMinPerKm > stats["rain"].MeanMinPerKm &&
		stats["rain"].MeanMinPerKm > stats["sun"].MeanMinPerKm) {
		t.Errorf("pace ordering wrong: %+v", stats)
	}
}

func TestGenerateTripsDeterministic(t *testing.T) {
	a, wa := GenerateTrips(9, 10)
	b, wb := GenerateTrips(9, 10)
	if len(a) != len(b) || len(wa) != len(wb) {
		t.Fatal("same seed, different sizes")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different trips")
		}
	}
}
