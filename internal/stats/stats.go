// Package stats provides the measurement plumbing the experiment harness
// shares: summary statistics, classification metrics (accuracy, confusion
// matrix, predictive entropy), speedup/efficiency series, and a Markdown
// table printer used to regenerate the paper's exhibits.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MinMax returns the extremes of xs; it panics on empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Median returns the median of xs (average of middle two for even length).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Entropy returns the Shannon entropy (nats) of a probability vector.
// Zero probabilities contribute zero. This is the predictive-uncertainty
// measure the ensemble assignment reports (paper §7).
func Entropy(p []float64) float64 {
	h := 0.0
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// Accuracy returns the fraction of positions where pred equals label.
func Accuracy(pred, label []int) float64 {
	if len(pred) != len(label) {
		panic("stats: Accuracy length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	hits := 0
	for i, p := range pred {
		if p == label[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(pred))
}

// ConfusionMatrix counts (actual, predicted) pairs over classes [0, k).
type ConfusionMatrix struct {
	K      int
	Counts [][]int // Counts[actual][predicted]
}

// NewConfusionMatrix builds the matrix from parallel prediction and label
// slices over k classes.
func NewConfusionMatrix(k int, pred, label []int) *ConfusionMatrix {
	cm := &ConfusionMatrix{K: k, Counts: make([][]int, k)}
	for i := range cm.Counts {
		cm.Counts[i] = make([]int, k)
	}
	for i, p := range pred {
		cm.Counts[label[i]][p]++
	}
	return cm
}

// Accuracy returns the trace ratio of the confusion matrix.
func (cm *ConfusionMatrix) Accuracy() float64 {
	diag, total := 0, 0
	for a := 0; a < cm.K; a++ {
		for p := 0; p < cm.K; p++ {
			total += cm.Counts[a][p]
			if a == p {
				diag += cm.Counts[a][p]
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(diag) / float64(total)
}

// Speedup converts a series of times (indexed by a worker-count axis) into
// speedups relative to times[0].
func Speedup(times []float64) []float64 {
	out := make([]float64, len(times))
	for i, t := range times {
		if t > 0 {
			out[i] = times[0] / t
		}
	}
	return out
}

// Efficiency converts times plus their worker counts into parallel
// efficiency: speedup/workers.
func Efficiency(times []float64, workers []int) []float64 {
	sp := Speedup(times)
	out := make([]float64, len(sp))
	for i := range sp {
		if workers[i] > 0 {
			out[i] = sp[i] / float64(workers[i])
		}
	}
	return out
}

// Table accumulates rows and renders a GitHub-flavoured Markdown table;
// every regenerated exhibit is emitted through it so outputs diff cleanly.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000 || math.Abs(v) < 0.001:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Rows returns the formatted rows added so far.
func (t *Table) Rows() [][]string { return t.rows }

// String renders the table as Markdown.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := range t.Headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2) + "|")
	}
	b.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Silhouette returns the mean silhouette coefficient of a clustering: for
// each point, (b-a)/max(a,b) where a is the mean distance to its own
// cluster and b the smallest mean distance to another cluster. Values
// near 1 mean tight, well-separated clusters. O(n^2) — intended for
// evaluation-sized samples. dist must be a metric over point indices.
func Silhouette(n, k int, assign []int, dist func(i, j int) float64) float64 {
	if n == 0 {
		return 0
	}
	total, counted := 0.0, 0
	for i := 0; i < n; i++ {
		sums := make([]float64, k)
		counts := make([]int, k)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sums[assign[j]] += dist(i, j)
			counts[assign[j]]++
		}
		own := assign[i]
		if counts[own] == 0 {
			continue // singleton cluster: silhouette undefined
		}
		a := sums[own] / float64(counts[own])
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || counts[c] == 0 {
				continue
			}
			if m := sums[c] / float64(counts[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue // only one non-empty cluster
		}
		total += (b - a) / math.Max(a, b)
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
