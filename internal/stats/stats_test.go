package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean %v", m)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("stddev %v", s)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || Median(nil) != 0 {
		t.Error("empty inputs should be 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{5, 1, 3}); m != 3 {
		t.Errorf("odd median %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median %v", m)
	}
}

func TestEntropy(t *testing.T) {
	// Uniform over k has entropy ln(k); a point mass has 0.
	if h := Entropy([]float64{1, 0, 0}); h != 0 {
		t.Errorf("point mass entropy %v", h)
	}
	h := Entropy([]float64{0.25, 0.25, 0.25, 0.25})
	if math.Abs(h-math.Log(4)) > 1e-12 {
		t.Errorf("uniform entropy %v want %v", h, math.Log(4))
	}
}

func TestEntropyMaximisedByUniform(t *testing.T) {
	f := func(a, b, c uint8) bool {
		s := float64(a) + float64(b) + float64(c) + 3
		p := []float64{(float64(a) + 1) / s, (float64(b) + 1) / s, (float64(c) + 1) / s}
		return Entropy(p) <= math.Log(3)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccuracy(t *testing.T) {
	if a := Accuracy([]int{1, 2, 3, 4}, []int{1, 2, 0, 4}); a != 0.75 {
		t.Errorf("accuracy %v", a)
	}
}

func TestConfusionMatrix(t *testing.T) {
	cm := NewConfusionMatrix(3, []int{0, 1, 1, 2}, []int{0, 1, 2, 2})
	if cm.Counts[0][0] != 1 || cm.Counts[1][1] != 1 || cm.Counts[2][1] != 1 || cm.Counts[2][2] != 1 {
		t.Errorf("counts %v", cm.Counts)
	}
	if a := cm.Accuracy(); a != 0.75 {
		t.Errorf("cm accuracy %v", a)
	}
}

func TestSpeedupEfficiency(t *testing.T) {
	times := []float64{8, 4, 2}
	sp := Speedup(times)
	if sp[0] != 1 || sp[1] != 2 || sp[2] != 4 {
		t.Errorf("speedup %v", sp)
	}
	eff := Efficiency(times, []int{1, 2, 4})
	if eff[0] != 1 || eff[1] != 1 || eff[2] != 1 {
		t.Errorf("efficiency %v", eff)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta", 123456.0)
	s := tb.String()
	if !strings.Contains(s, "### Demo") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "1.5") {
		t.Error("missing cells")
	}
	if !strings.Contains(s, "1.235e+05") {
		t.Errorf("large float formatting: %s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// title, blank, header, separator, two rows
	if len(lines) != 6 {
		t.Errorf("unexpected line count %d:\n%s", len(lines), s)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow(1)
	if strings.Contains(tb.String(), "###") {
		t.Error("untitled table rendered a title")
	}
	if len(tb.Rows()) != 1 {
		t.Error("rows not recorded")
	}
}

func TestSilhouettePerfectClusters(t *testing.T) {
	// Two tight, far-apart clusters on a line.
	pts := []float64{0, 0.1, 0.2, 100, 100.1, 100.2}
	assign := []int{0, 0, 0, 1, 1, 1}
	s := Silhouette(6, 2, assign, func(i, j int) float64 {
		return math.Abs(pts[i] - pts[j])
	})
	if s < 0.99 {
		t.Errorf("tight clusters silhouette %v", s)
	}
}

func TestSilhouetteBadClustering(t *testing.T) {
	// Same points, labels scrambled across the gap: silhouette near or
	// below zero.
	pts := []float64{0, 0.1, 0.2, 100, 100.1, 100.2}
	assign := []int{0, 1, 0, 1, 0, 1}
	s := Silhouette(6, 2, assign, func(i, j int) float64 {
		return math.Abs(pts[i] - pts[j])
	})
	if s > 0.1 {
		t.Errorf("scrambled clustering silhouette %v", s)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	if Silhouette(0, 2, nil, nil) != 0 {
		t.Error("empty silhouette")
	}
	// All points in one cluster -> no b -> 0.
	if s := Silhouette(3, 2, []int{0, 0, 0}, func(i, j int) float64 { return 1 }); s != 0 {
		t.Errorf("single-cluster silhouette %v", s)
	}
	// Singletons skipped.
	if s := Silhouette(2, 2, []int{0, 1}, func(i, j int) float64 { return 1 }); s != 0 {
		t.Errorf("all-singleton silhouette %v", s)
	}
}
