// Package integration exercises cross-module flows: the full exhibit
// regeneration, CSV round trips feeding classifiers, raster outputs, and
// the equivalences between independent implementations of the same
// computation.
package integration

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataio"
	"repro/internal/ensemble"
	"repro/internal/heat"
	"repro/internal/kmeans"
	"repro/internal/knn"
	"repro/internal/locale"
	"repro/internal/mapreduce"
	"repro/internal/mnistgen"
	"repro/internal/nn"
	"repro/internal/rdd"
	"repro/internal/spatial"
	"repro/internal/traffic"
)

// TestFullReproQuick regenerates every exhibit at quick scale and checks
// the artifacts exist and the report contains no failure markers.
func TestFullReproQuick(t *testing.T) {
	dir := t.TempDir()
	if err := core.RunAll(dir, true); err != nil {
		t.Fatal(err)
	}
	wantFiles := []string{
		"repro_report.md", "table1_survey.md",
		"fig1_kmeans.ppm", "fig2_nyc_heatmap.ppm",
		"fig3_traffic.pgm", "fig3_traffic_norandom.pgm",
		"fig4_uncertainty.txt",
		"c1_knn.md", "c2_combiner.md", "c3_kmeans_strategies.md",
		"c4_kmeans_distributed.md", "c5_traffic_repro.md",
		"c6_jump_ahead.md", "c7_heat.md", "c8_taskfarm.md", "c9_uncertainty.md",
	}
	for _, f := range wantFiles {
		fi, err := os.Stat(filepath.Join(dir, f))
		if err != nil || fi.Size() == 0 {
			t.Errorf("artifact %s missing or empty", f)
		}
	}
	report, err := os.ReadFile(filepath.Join(dir, "repro_report.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"MISMATCH", "FAILED", "WARNING"} {
		if strings.Contains(string(report), bad) {
			t.Errorf("report contains %q:\n%s", bad, report)
		}
	}
}

// TestRasterHeadersWellFormed validates the PGM/PPM outputs byte-level.
func TestRasterHeadersWellFormed(t *testing.T) {
	dir := t.TempDir()
	if _, err := core.Figure3Traffic(dir, true); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "fig3_traffic.pgm"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	line, _ := r.ReadString('\n')
	if line != "P5\n" {
		t.Errorf("magic %q", line)
	}
	dims, _ := r.ReadString('\n')
	if !strings.HasPrefix(dims, "1000 ") {
		t.Errorf("dims %q (want width 1000)", dims)
	}
}

// TestCSVFeedsClassifiers writes a dataset to CSV, reads it back, and
// confirms every kNN variant classifies the reloaded data identically to
// the in-memory original.
func TestCSVFeedsClassifiers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.csv")
	orig := dataio.GaussianMixture(5, 600, 6, 3, 3.0)
	if err := orig.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := dataio.LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	db1, q1 := orig.Split(500)
	db2, q2 := loaded.Split(500)
	p1 := knn.SequentialHeap(db1, q1.Points, 7)
	p2 := knn.SequentialHeap(db2, q2.Points, 7)
	tree := spatial.NewKDTree(db2.Points, db2.Labels)
	p3 := knn.KDTree(tree, q2.Points, 7, 0)
	world := cluster.NewWorld(3)
	p4, err := knn.MapReduce(world, db2, q2.Points, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] || p2[i] != p3[i] || p3[i] != p4[i] {
			t.Fatalf("query %d: variants disagree after CSV round trip (%d %d %d %d)",
				i, p1[i], p2[i], p3[i], p4[i])
		}
	}
}

// TestKMeansThenKNN clusters unlabelled data with K-means, then uses the
// discovered clusters as kNN training labels — the two data-mining
// assignments composed into one workflow.
func TestKMeansThenKNN(t *testing.T) {
	ds := dataio.GaussianMixture(9, 1200, 4, 3, 1.5)
	train, test := ds.Split(1000)

	res := kmeans.Run(train.Points, kmeans.Options{K: 3, Seed: 4})
	relabelled := &dataio.Dataset{Dim: train.Dim, Classes: 3,
		Points: train.Points, Labels: res.Assign}
	pred := knn.Parallel(relabelled, test.Points, 9, 0)

	// K-means cluster ids are arbitrary; measure agreement via majority
	// mapping from cluster id to true label.
	vote := make(map[int]map[int]int)
	for i, a := range res.Assign {
		if vote[a] == nil {
			vote[a] = map[int]int{}
		}
		vote[a][train.Labels[i]]++
	}
	mapping := map[int]int{}
	for c, counts := range vote {
		best, bestN := -1, -1
		for l, n := range counts {
			if n > bestN {
				best, bestN = l, n
			}
		}
		mapping[c] = best
	}
	hits := 0
	for i, p := range pred {
		if mapping[p] == test.Labels[i] {
			hits++
		}
	}
	if acc := float64(hits) / float64(len(pred)); acc < 0.9 {
		t.Errorf("kmeans->knn pipeline accuracy %v", acc)
	}
}

// TestWordCountOnRDDAndMapReduceAgree runs the same word count on both
// data-parallel substrates and compares results exactly.
func TestWordCountOnRDDAndMapReduceAgree(t *testing.T) {
	docs := []string{
		"to be or not to be", "that is the question",
		"whether tis nobler in the mind", "to suffer the slings",
	}
	world := cluster.NewWorld(3)
	mr, err := mapreduce.WordCount(world, docs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := rdd.NewContext()
	lines := rdd.Parallelize(ctx, docs, 3)
	words := rdd.FlatMap(lines, func(d string) []string { return mapreduce.Tokenize(d) })
	pairs := rdd.Map(words, func(w string) rdd.Pair[string, int] { return rdd.Pair[string, int]{Key: w, Value: 1} })
	viaRDD := rdd.CollectMap(rdd.ReduceByKey(pairs, func(a, b int) int { return a + b }))
	if len(mr) != len(viaRDD) {
		t.Fatalf("vocab sizes differ: %d vs %d", len(mr), len(viaRDD))
	}
	for w, n := range mr {
		if viaRDD[w] != n {
			t.Errorf("%q: mapreduce %d, rdd %d", w, n, viaRDD[w])
		}
	}
}

// TestTrafficRasterMatchesSimulation regenerates a space-time diagram and
// cross-checks row car counts against a fresh simulation's positions.
func TestTrafficRasterMatchesSimulation(t *testing.T) {
	cfg := traffic.Config{Cars: 50, RoadLen: 200, VMax: 5, P: 0.2, Seed: 31}
	rows, err := traffic.SpaceTime(cfg, 40, traffic.SharedSequence)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := traffic.New(cfg)
	for step, row := range rows {
		occupied := map[int]bool{}
		for x, v := range row {
			if v > 0 {
				occupied[x] = true
			}
		}
		for _, p := range s.Positions() {
			if !occupied[p] {
				t.Fatalf("step %d: car at %d missing from raster row", step, p)
			}
		}
		s.RunSerial(1)
	}
}

// TestHeatSolversOnClusterScaleProblem verifies all heat solvers agree on
// a larger joint instance with awkward block sizes.
func TestHeatSolversOnClusterScaleProblem(t *testing.T) {
	p := heat.Problem{Alpha: 0.5, U0: heat.SinInit(1031), Steps: 257}
	want, err := heat.SolveSerial(p)
	if err != nil {
		t.Fatal(err)
	}
	sys := locale.NewSystem(7, 3)
	fa, err := heat.SolveForall(p, sys)
	if err != nil {
		t.Fatal(err)
	}
	co, err := heat.SolveCoforall(p, sys)
	if err != nil {
		t.Fatal(err)
	}
	if heat.MaxAbsDiff(want, fa) != 0 || heat.MaxAbsDiff(want, co) != 0 {
		t.Error("distributed heat solvers diverge on awkward block sizes")
	}
}

// TestEnsembleModelPersistence trains an ensemble distributed over ranks,
// saves the best member, reloads it, and confirms identical predictions —
// the submit-your-model workflow.
func TestEnsembleModelPersistence(t *testing.T) {
	ds := mnistgen.Generate(41, 800)
	train, val := ds.Split(600)
	cfgs := ensemble.Grid([][]int{{16}}, []float64{0.1}, []float64{0.9, 0.5}, 3, 32, 42)
	world := cluster.NewWorld(3)
	ens, _, err := ensemble.TrainDistributed(world, train, val, cfgs, true)
	if err != nil {
		t.Fatal(err)
	}
	best := ens.Best()
	path := filepath.Join(t.TempDir(), "best.nn")
	if err := best.Net.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := nn.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Evaluate(val), best.Net.Evaluate(val); got != want {
		t.Errorf("loaded model accuracy %v, want %v", got, want)
	}
}

// TestParallelIOFeedsMapReduce writes a large CSV, loads it with parallel
// byte-range readers, and classifies through the MapReduce path — the §2
// "multiple ranks perform IO" flow end to end.
func TestParallelIOFeedsMapReduce(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.csv")
	full := dataio.GaussianMixture(51, 1500, 6, 3, 3.0)
	if err := full.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := dataio.LoadCSVParallel(path, 6)
	if err != nil {
		t.Fatal(err)
	}
	db, queries := loaded.Split(1300)
	world := cluster.NewWorld(4)
	pred, err := knn.MapReduce(world, db, queries.Points, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if acc := knn.Accuracy(pred, queries.Labels); acc < 0.95 {
		t.Errorf("accuracy %v through the parallel-IO path", acc)
	}
}

// TestTrafficThreeImplementationsAgree cross-validates the agent-based,
// grid, and distributed implementations on one trajectory.
func TestTrafficThreeImplementationsAgree(t *testing.T) {
	cfg := traffic.Config{Cars: 120, RoadLen: 700, VMax: 5, P: 0.17, Seed: 61}
	agent, _ := traffic.New(cfg)
	agent.RunSerial(150)

	grid, _ := traffic.NewGrid(cfg)
	grid.RunSerial(150)

	dist, _ := traffic.New(cfg)
	if err := dist.RunCluster(cluster.NewWorld(5), 150); err != nil {
		t.Fatal(err)
	}
	if agent.Fingerprint() != grid.Fingerprint() || grid.Fingerprint() != dist.Fingerprint() {
		t.Errorf("fingerprints differ: agent %x grid %x cluster %x",
			agent.Fingerprint(), grid.Fingerprint(), dist.Fingerprint())
	}
}
