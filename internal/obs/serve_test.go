// Tests for the live endpoint: the atomic snapshot must agree with the
// recorder's own counters once the rank goroutine quiesces, the HTTP
// surface must serve valid JSON while recording is still in flight (the
// race detector is the real assertion there), and the nil/disabled
// paths must be safe.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
)

func TestLiveMetricsSnapshot(t *testing.T) {
	tr := NewTrace(2)
	tr.EnableLive()
	for r := 0; r < 2; r++ {
		mergeScript(tr.Rank(r), r, 2)
	}
	lm := tr.LiveMetrics()
	if lm.Ranks != 2 {
		t.Fatalf("Ranks = %d, want 2", lm.Ranks)
	}
	if lm.TotalMsgs != 2 || lm.TotalBytes != 128 {
		t.Errorf("totals = %d msgs / %d bytes, want 2 / 128", lm.TotalMsgs, lm.TotalBytes)
	}
	for r, rm := range lm.PerRank {
		if rm.MsgsSent != 1 || rm.MsgsRecv != 1 {
			t.Errorf("rank %d: live sent/recv = %d/%d, want 1/1", r, rm.MsgsSent, rm.MsgsRecv)
		}
		if rm.LastProgressNs == 0 {
			t.Errorf("rank %d: no live progress mark", r)
		}
		// The per-op live rows mirror the single-writer counters.
		want := tr.Rank(r).Snapshot()
		for _, op := range rm.Ops {
			if op.Count != want.OpCount[op.Op] {
				t.Errorf("rank %d op %s: live count %d, counters %d",
					r, op.Op, op.Count, want.OpCount[op.Op])
			}
		}
	}
	if got := lm.PerRank[1].SimNow; got != 2 {
		t.Errorf("rank 1 sim_now = %g, want 2 (last recorded sim end)", got)
	}
}

// TestServeLiveEndpoints hits /metrics and /healthz over real HTTP while
// a writer goroutine is still recording: under -race this proves the
// lock-free recorder and the snapshot reader never touch unsynchronized
// state.
func TestServeLiveEndpoints(t *testing.T) {
	tr := NewTrace(1)
	srv, err := Serve("127.0.0.1:0", tr, ServerInfo{Rank: 0, World: 4, Device: "net/unix"})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { //peachyvet:allow rawgo — the test IS the concurrent writer racing the HTTP reader
		defer wg.Done()
		rec := tr.Rank(0)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sim := float64(i)
			rec.Send(0, 1, 8, sim, sim+0.1)
			rec.Recv(0, 1, 8, sim+0.1, sim+0.2, rec.Now())
			rec.Collective("Allreduce", -1, sim+0.2, sim+0.3, rec.Now())
			rec.WireSpan("net.tx", 64, 1000)
		}
	}()

	get := func(path string) map[string]any {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		var doc map[string]any
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("GET %s: invalid JSON: %v\n%s", path, err, body)
		}
		return doc
	}

	for i := 0; i < 10; i++ {
		m := get("/metrics")
		if m["ranks"].(float64) != 1 {
			t.Fatalf("/metrics ranks = %v, want 1", m["ranks"])
		}
		h := get("/healthz")
		if h["status"] != "ok" || h["rank"].(float64) != 0 || h["world"].(float64) != 4 {
			t.Fatalf("/healthz = %v", h)
		}
		if h["device"] != "net/unix" {
			t.Fatalf("/healthz device = %v", h["device"])
		}
	}

	close(stop)
	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestServerNilSafe(t *testing.T) {
	var s *Server
	if s.Addr() != "" {
		t.Error("nil Server Addr should be empty")
	}
	if err := s.Close(); err != nil {
		t.Errorf("nil Server Close: %v", err)
	}
}

func TestOffsetAddr(t *testing.T) {
	cases := []struct {
		addr string
		rank int
		want string
	}{
		{":9090", 2, ":9092"},
		{"127.0.0.1:9090", 1, "127.0.0.1:9091"},
		{"127.0.0.1:9090", 0, "127.0.0.1:9090"},
		{"127.0.0.1:9090", -1, "127.0.0.1:9090"},
		{":0", 3, ":0"},           // ephemeral: every rank asks the kernel
		{"garbage", 1, "garbage"}, // unparsable passes through untouched
		{"", 1, ""},
	}
	for _, c := range cases {
		if got := OffsetAddr(c.addr, c.rank); got != c.want {
			t.Errorf("OffsetAddr(%q, %d) = %q, want %q", c.addr, c.rank, got, c.want)
		}
	}
}
