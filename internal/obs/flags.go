package obs

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
)

// CLI is the shared -trace/-metrics/-obs-summary/-obs-listen flag set
// every exhibit binary exposes. Bind it before flag.Parse, Serve before
// the workload runs (a no-op unless listening was requested), run the
// workload with a Trace when Enabled(), then Emit the artifacts.
type CLI struct {
	TracePath   string
	MetricsPath string
	Summary     bool
	// Listen is the -obs-listen address for the live HTTP endpoint
	// (/metrics, /healthz, /debug/pprof). In a launched world each rank
	// is its own process: a non-zero port is offset by the rank so the
	// world's endpoints do not collide, and the PEACHY_OBS_LISTEN
	// environment (set per rank by `peachy launch -obs-listen`) overrides
	// the flag entirely.
	Listen string
}

// BindCLI registers the observability flags on the default flag set.
func BindCLI() *CLI {
	o := &CLI{}
	flag.StringVar(&o.TracePath, "trace", "", "write a Chrome trace_event JSON timeline to this file (open in chrome://tracing or Perfetto)")
	flag.StringVar(&o.MetricsPath, "metrics", "", "write per-rank counters and the traffic matrix as JSON to this file")
	flag.BoolVar(&o.Summary, "obs-summary", false, "print the per-rank imbalance summary after the run")
	flag.StringVar(&o.Listen, "obs-listen", "", "serve live /metrics, /healthz and /debug/pprof on this address while running (host:port; a non-zero port is offset by the rank under peachy launch)")
	return o
}

// Enabled reports whether any observability output was requested.
func (o *CLI) Enabled() bool {
	return o.TracePath != "" || o.MetricsPath != "" || o.Summary || o.listenAddr() != ""
}

// envObsListen is the per-rank live-endpoint address `peachy launch
// -obs-listen` hands each spawned process; like PEACHY_RANK it is read
// directly to keep obs dependency-free.
const envObsListen = "PEACHY_OBS_LISTEN"

// listenAddr resolves where this process should serve its live endpoint:
// the launcher's per-rank address if set, else the -obs-listen flag with
// a non-zero port offset by this rank ("" when listening is off).
func (o *CLI) listenAddr() string {
	if addr := os.Getenv(envObsListen); addr != "" {
		return addr
	}
	if o.Listen == "" {
		return ""
	}
	return OffsetAddr(o.Listen, launchRank())
}

// OffsetAddr shifts a non-zero listen port by rank, so every process of
// a launched world gets its own endpoint from one base address (":9090"
// -> ":9092" on rank 2). Port 0 (ephemeral) and unparsable addresses
// pass through unchanged.
func OffsetAddr(addr string, rank int) string {
	if rank <= 0 {
		return addr
	}
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port == 0 {
		return addr
	}
	return net.JoinHostPort(host, strconv.Itoa(port+rank))
}

// Serve starts the live endpoint when one was requested (-obs-listen or
// the launcher's PEACHY_OBS_LISTEN), attaching live counters to t.
// Returns nil (no error) when listening is off or there is no trace; the
// returned *Server is nil-safe to Close, so callers simply
// `defer o.Serve(...).Close()`-style without guards. The bound address
// is echoed to stderr — useful with port 0.
func (o *CLI) Serve(t *Trace, info ServerInfo) (*Server, error) {
	addr := o.listenAddr()
	if addr == "" || t == nil {
		return nil, nil
	}
	srv, err := Serve(addr, t, info)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "obs: live endpoint on http://%s (/metrics /healthz /debug/pprof)\n", srv.Addr())
	return srv, nil
}

// Emit writes the requested artifacts from t. A nil trace (the workload
// path that was taken records nothing) is a no-op.
//
// In a multi-process world (`peachy launch`) every rank is its own
// process running the same flags, so each writes its own files: output
// paths get a ".rank<r>" suffix from the PEACHY_RANK environment. The
// per-process trace is also where wall-clock spans become meaningful —
// on the in-process device wall time measures goroutine interleaving,
// while per process it measures the rank's real compute and transport
// waits.
func (o *CLI) Emit(t *Trace) error {
	if t == nil || !o.Enabled() {
		return nil
	}
	if o.TracePath != "" {
		path := rankSuffixed(o.TracePath)
		if err := writeFileWith(path, t.WriteChrome); err != nil {
			return fmt.Errorf("obs: writing trace: %w", err)
		}
		fmt.Printf("obs: trace written to %s\n", path)
	}
	if o.MetricsPath != "" {
		path := rankSuffixed(o.MetricsPath)
		if err := writeFileWith(path, t.WriteMetrics); err != nil {
			return fmt.Errorf("obs: writing metrics: %w", err)
		}
		fmt.Printf("obs: metrics written to %s\n", path)
	}
	if o.Summary {
		t.WriteSummary(os.Stdout)
	}
	return nil
}

// rankSuffixed keeps concurrently-launched ranks from clobbering each
// other's artifacts: path -> path.rank<r> when the process runs under
// `peachy launch`. Every rank gets the suffix — rank 0 included, so
// obs-merge sees a uniform .rank0..rankP-1 input set and an in-process
// run's bare path is never shadowed by a launched rank's file. The rank
// is parsed strictly: a malformed PEACHY_RANK must not smuggle arbitrary
// text into a file name. obs stays dependency-free, so the launch
// contract's rank variable is read directly rather than through the
// cluster package.
func rankSuffixed(path string) string {
	if r := launchRank(); r >= 0 {
		return path + ".rank" + strconv.Itoa(r)
	}
	return path
}

// launchRank parses PEACHY_RANK: the process's rank under `peachy
// launch`, or -1 when not launched (or the variable is malformed).
func launchRank() int {
	s := os.Getenv("PEACHY_RANK")
	if s == "" {
		return -1
	}
	r, err := strconv.Atoi(s)
	if err != nil || r < 0 {
		return -1
	}
	return r
}

func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
