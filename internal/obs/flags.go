package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// CLI is the shared -trace/-metrics/-obs-summary flag set every exhibit
// binary exposes. Bind it before flag.Parse, run the workload with a
// Trace when Enabled(), then Emit the artifacts.
type CLI struct {
	TracePath   string
	MetricsPath string
	Summary     bool
}

// BindCLI registers the observability flags on the default flag set.
func BindCLI() *CLI {
	o := &CLI{}
	flag.StringVar(&o.TracePath, "trace", "", "write a Chrome trace_event JSON timeline to this file (open in chrome://tracing or Perfetto)")
	flag.StringVar(&o.MetricsPath, "metrics", "", "write per-rank counters and the traffic matrix as JSON to this file")
	flag.BoolVar(&o.Summary, "obs-summary", false, "print the per-rank imbalance summary after the run")
	return o
}

// Enabled reports whether any observability output was requested.
func (o *CLI) Enabled() bool {
	return o.TracePath != "" || o.MetricsPath != "" || o.Summary
}

// Emit writes the requested artifacts from t. A nil trace (the workload
// path that was taken records nothing) is a no-op.
//
// In a multi-process world (`peachy launch`) every rank is its own
// process running the same flags, so each writes its own files: output
// paths get a ".rank<r>" suffix from the PEACHY_RANK environment. The
// per-process trace is also where wall-clock spans become meaningful —
// on the in-process device wall time measures goroutine interleaving,
// while per process it measures the rank's real compute and transport
// waits.
func (o *CLI) Emit(t *Trace) error {
	if t == nil || !o.Enabled() {
		return nil
	}
	if o.TracePath != "" {
		path := rankSuffixed(o.TracePath)
		if err := writeFileWith(path, t.WriteChrome); err != nil {
			return fmt.Errorf("obs: writing trace: %w", err)
		}
		fmt.Printf("obs: trace written to %s\n", path)
	}
	if o.MetricsPath != "" {
		path := rankSuffixed(o.MetricsPath)
		if err := writeFileWith(path, t.WriteMetrics); err != nil {
			return fmt.Errorf("obs: writing metrics: %w", err)
		}
		fmt.Printf("obs: metrics written to %s\n", path)
	}
	if o.Summary {
		t.WriteSummary(os.Stdout)
	}
	return nil
}

// rankSuffixed keeps concurrently-launched ranks from clobbering each
// other's artifacts: path -> path.rank<r> when PEACHY_RANK is set. obs
// stays dependency-free, so the launch contract's rank variable is read
// directly rather than through the cluster package.
func rankSuffixed(path string) string {
	if r := os.Getenv("PEACHY_RANK"); r != "" {
		return path + ".rank" + r
	}
	return path
}

func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
