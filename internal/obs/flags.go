package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// CLI is the shared -trace/-metrics/-obs-summary flag set every exhibit
// binary exposes. Bind it before flag.Parse, run the workload with a
// Trace when Enabled(), then Emit the artifacts.
type CLI struct {
	TracePath   string
	MetricsPath string
	Summary     bool
}

// BindCLI registers the observability flags on the default flag set.
func BindCLI() *CLI {
	o := &CLI{}
	flag.StringVar(&o.TracePath, "trace", "", "write a Chrome trace_event JSON timeline to this file (open in chrome://tracing or Perfetto)")
	flag.StringVar(&o.MetricsPath, "metrics", "", "write per-rank counters and the traffic matrix as JSON to this file")
	flag.BoolVar(&o.Summary, "obs-summary", false, "print the per-rank imbalance summary after the run")
	return o
}

// Enabled reports whether any observability output was requested.
func (o *CLI) Enabled() bool {
	return o.TracePath != "" || o.MetricsPath != "" || o.Summary
}

// Emit writes the requested artifacts from t. A nil trace (the workload
// path that was taken records nothing) is a no-op.
func (o *CLI) Emit(t *Trace) error {
	if t == nil || !o.Enabled() {
		return nil
	}
	if o.TracePath != "" {
		if err := writeFileWith(o.TracePath, t.WriteChrome); err != nil {
			return fmt.Errorf("obs: writing trace: %w", err)
		}
		fmt.Printf("obs: trace written to %s\n", o.TracePath)
	}
	if o.MetricsPath != "" {
		if err := writeFileWith(o.MetricsPath, t.WriteMetrics); err != nil {
			return fmt.Errorf("obs: writing metrics: %w", err)
		}
		fmt.Printf("obs: metrics written to %s\n", o.MetricsPath)
	}
	if o.Summary {
		t.WriteSummary(os.Stdout)
	}
	return nil
}

func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
