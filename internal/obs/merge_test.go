// Tests for the cross-rank artifact merge: merging per-rank documents
// must reproduce the in-process exporters byte-for-byte (traces) and
// field-for-field up to wall clocks (metrics), and LintMerged must catch
// out-of-order, foreign-rank, and conservation violations.
package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// mergeScript records a fixed, fully deterministic per-rank program:
// every sim value is a literal, so in-process and per-rank runs agree
// bit-for-bit. Each rank sends 64 bytes to the next and receives the
// same from the previous — the conservation matrix is a ring.
func mergeScript(rec *Recorder, r, p int) {
	next := (r + 1) % p
	prev := (r + p - 1) % p
	base := float64(r)
	rec.Collective("Bcast", 0, base, base+0.5, rec.Now())
	rec.Send(next, 7, 64, base+0.5, base+0.6)
	rec.Recv(prev, 7, 64, base+0.6, base+0.7, rec.Now())
	rec.PhaseSpan("phase.work", base+0.7, base+1, rec.Now(), KV{K: "items", V: int64(r)})
	rec.Instant("probe", prev, 7, 0, base+1)
}

// inProcessTrace records all ranks into one trace (the single-process
// shape); perRankTraces records each rank into its own P-rank trace with
// the other recorders untouched (the launched shape).
func inProcessTrace(p int) *Trace {
	t := NewTrace(p)
	for r := 0; r < p; r++ {
		mergeScript(t.Rank(r), r, p)
	}
	return t
}

func perRankTraces(p int) []*Trace {
	out := make([]*Trace, p)
	for r := 0; r < p; r++ {
		out[r] = NewTrace(p)
		mergeScript(out[r].Rank(r), r, p)
	}
	return out
}

func traceDocs(t *testing.T, traces []*Trace) [][]byte {
	t.Helper()
	docs := make([][]byte, len(traces))
	for r, tr := range traces {
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatalf("rank %d WriteChrome: %v", r, err)
		}
		docs[r] = buf.Bytes()
	}
	return docs
}

func metricsDocs(t *testing.T, traces []*Trace) [][]byte {
	t.Helper()
	docs := make([][]byte, len(traces))
	for r, tr := range traces {
		var buf bytes.Buffer
		if err := tr.WriteMetrics(&buf); err != nil {
			t.Fatalf("rank %d WriteMetrics: %v", r, err)
		}
		docs[r] = buf.Bytes()
	}
	return docs
}

func TestMergeTracesMatchesInProcess(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		docs := traceDocs(t, perRankTraces(p))
		var want bytes.Buffer
		if err := inProcessTrace(p).WriteChrome(&want); err != nil {
			t.Fatal(err)
		}
		var got, again bytes.Buffer
		if err := MergeTraces(&got, docs); err != nil {
			t.Fatalf("P=%d MergeTraces: %v", p, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("P=%d: merged trace differs from the in-process trace (%d vs %d bytes)",
				p, got.Len(), want.Len())
		}
		if err := MergeTraces(&again, docs); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), again.Bytes()) {
			t.Errorf("P=%d: two merges of the same documents differ", p)
		}
		if err := LintTrace(got.Bytes()); err != nil {
			t.Errorf("P=%d: merged trace fails lint: %v", p, err)
		}
		if err := LintMerged(docs); err != nil {
			t.Errorf("P=%d: LintMerged on clean documents: %v", p, err)
		}
	}
}

// zeroWall clears every wall-clock-derived field so deterministic (sim)
// content can be compared exactly across independent recordings.
func zeroWall(m *Metrics) {
	zero := func(ops []OpMetrics) {
		for i := range ops {
			ops[i].WallNs = 0
			ops[i].WallP50, ops[i].WallP95 = 0, 0
			ops[i].WallP99, ops[i].WallMax = 0, 0
			ops[i].WallHist = nil
		}
	}
	for i := range m.PerRank {
		m.PerRank[i].RecvWaitWallNs = 0
		zero(m.PerRank[i].Ops)
	}
	zero(m.Ops)
}

func TestMergeMetricsMatchesInProcess(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		docs := metricsDocs(t, perRankTraces(p))
		merged, err := MergeMetrics(docs)
		if err != nil {
			t.Fatalf("P=%d MergeMetrics: %v", p, err)
		}
		want := inProcessTrace(p).Metrics()
		zeroWall(merged)
		zeroWall(want)
		got, _ := json.Marshal(merged)
		exp, _ := json.Marshal(want)
		if !bytes.Equal(got, exp) {
			t.Errorf("P=%d: merged metrics differ from in-process metrics\nmerged: %s\nwant:   %s",
				p, got, exp)
		}
	}
}

// TestMergeDispatch: Merge sniffs the document kind — trace documents
// produce the MergeTraces bytes, metrics documents produce an indented
// JSON document that passes the single-document metrics lint.
func TestMergeDispatch(t *testing.T) {
	traces := perRankTraces(4)
	tdocs := traceDocs(t, traces)
	var direct, dispatched bytes.Buffer
	if err := MergeTraces(&direct, tdocs); err != nil {
		t.Fatal(err)
	}
	if err := Merge(&dispatched, tdocs); err != nil {
		t.Fatalf("Merge(trace docs): %v", err)
	}
	if !bytes.Equal(direct.Bytes(), dispatched.Bytes()) {
		t.Error("Merge dispatched trace output differs from MergeTraces")
	}

	mdocs := metricsDocs(t, traces)
	var merged bytes.Buffer
	if err := Merge(&merged, mdocs); err != nil {
		t.Fatalf("Merge(metrics docs): %v", err)
	}
	if err := LintMetrics(merged.Bytes()); err != nil {
		t.Errorf("merged metrics document fails LintMetrics: %v", err)
	}
}

func TestMergeTracesWorldSizeMismatch(t *testing.T) {
	docs := traceDocs(t, perRankTraces(4))
	var buf bytes.Buffer
	err := MergeTraces(&buf, docs[:2])
	if err == nil || !strings.Contains(err.Error(), "4-rank world but 2 documents") {
		t.Errorf("want world-size mismatch error, got %v", err)
	}
}

func TestLintMergedOutOfOrder(t *testing.T) {
	tdocs := traceDocs(t, perRankTraces(2))
	tdocs[0], tdocs[1] = tdocs[1], tdocs[0]
	if err := LintMerged(tdocs); err == nil ||
		!strings.Contains(err.Error(), "out of rank order") {
		t.Errorf("trace docs out of order: want ownership finding, got %v", err)
	}

	mdocs := metricsDocs(t, perRankTraces(2))
	mdocs[0], mdocs[1] = mdocs[1], mdocs[0]
	if err := LintMerged(mdocs); err == nil ||
		!strings.Contains(err.Error(), "out of rank order") {
		t.Errorf("metrics docs out of order: want ownership finding, got %v", err)
	}
}

// TestLintMergedConservation: rank 0 claims a send that rank 1 never
// received — the cross-file pass must flag the edge in both document
// kinds (a single-file lint cannot see it at all).
func TestLintMergedConservation(t *testing.T) {
	lossy := func() []*Trace {
		p := 2
		out := make([]*Trace, p)
		for r := 0; r < p; r++ {
			out[r] = NewTrace(p)
			rec := out[r].Rank(r)
			rec.Collective("Barrier", -1, 0, 0.1, rec.Now())
			if r == 0 {
				rec.Send(1, 5, 32, 0.1, 0.2)
			}
		}
		return out
	}
	if err := LintMerged(traceDocs(t, lossy())); err == nil ||
		!strings.Contains(err.Error(), "conservation violated") {
		t.Errorf("trace docs: want conservation finding, got %v", err)
	}
	if err := LintMerged(metricsDocs(t, lossy())); err == nil ||
		!strings.Contains(err.Error(), "conservation violated") {
		t.Errorf("metrics docs: want conservation finding, got %v", err)
	}
}

func TestLintMergedMixedKinds(t *testing.T) {
	traces := perRankTraces(2)
	docs := [][]byte{traceDocs(t, traces)[0], metricsDocs(t, traces)[1]}
	if err := LintMerged(docs); err == nil ||
		!strings.Contains(err.Error(), "merge traces and metrics separately") {
		t.Errorf("mixed kinds: want kind mismatch error, got %v", err)
	}
}

// TestLintMergedSingleDoc: one document degrades to the per-file lint.
func TestLintMergedSingleDoc(t *testing.T) {
	docs := traceDocs(t, []*Trace{inProcessTrace(2)})
	if err := LintMerged(docs); err != nil {
		t.Errorf("single clean document: %v", err)
	}
	if err := LintMerged([][]byte{[]byte("{")}); err == nil {
		t.Error("single broken document: want an error")
	}
}
