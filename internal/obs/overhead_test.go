// The disabled path contract: every recording method on a nil Recorder
// is one branch and zero allocations — instrumentation left in shipping
// hot paths must cost ~nothing when observability is off.
package obs

import "testing"

func TestDetachedRecorderZeroAllocs(t *testing.T) {
	var rec *Recorder
	allocs := testing.AllocsPerRun(200, func() {
		rec.Send(1, 1, 64, 0, 1)
		rec.Recv(0, 1, 64, 0, 1, 0)
		rec.Collective("Allreduce", -1, 0, 1, 0)
		rec.PhaseSpan("phase", 0, 1, 0)
		rec.WireSpan("net.tx", 64, 100)
		rec.Span("io", -1, 0, 0, 0, 1, 0, 0)
		rec.Instant("probe", -1, 0, 0, 0)
		_ = rec.Now()
		_ = rec.Enabled()
	})
	if allocs != 0 {
		t.Errorf("detached recorder allocated %.1f times per op sequence, want 0", allocs)
	}

	var h *Hist
	allocs = testing.AllocsPerRun(200, func() {
		_ = h.Quantile(0.99)
		_ = h.Count()
		_ = h.Buckets()
	})
	if allocs != 0 {
		t.Errorf("nil hist reads allocated %.1f times per op sequence, want 0", allocs)
	}
}
