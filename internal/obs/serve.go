package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"sync/atomic"
	"time"
)

// The live endpoint: an opt-in HTTP server (-obs-listen) that exposes a
// running rank's counters and histograms at /metrics, a liveness
// document at /healthz, and net/http/pprof — so a long multi-process
// launch is not a black box until it exits.
//
// Concurrency contract: the Recorder stays single-writer and lock-free.
// When a live endpoint is attached, every recording method additionally
// mirrors its counters into this file's atomics (one extra nil check
// when detached, a handful of atomic adds when attached); the HTTP
// handlers read *only* those atomics, never the recorder's maps or
// event buffer, so snapshot reads are race-free against the hot path
// without any locking. A snapshot taken mid-event may be a few counts
// ahead or behind on individual fields — that is the accepted price of
// lock-freedom, and every exported artifact still comes from the
// post-run exporters, not from here.

// liveHist mirrors a Hist into atomics. Same fixed bucket geometry;
// single writer (the rank goroutine), any number of readers.
type liveHist struct {
	count   atomic.Int64
	maxBits atomic.Uint64 // math.Float64bits of the max; single-writer
	bucket  [histLen]atomic.Int64
}

func (l *liveHist) observe(v float64) {
	l.count.Add(1)
	if v > math.Float64frombits(l.maxBits.Load()) {
		l.maxBits.Store(math.Float64bits(v))
	}
	l.bucket[histIndex(v)].Add(1)
}

// snapshot materializes a plain Hist from the atomics. sum is carried
// by the owning liveOp (the histogram itself only needs count/max/buckets
// for quantiles).
func (l *liveHist) snapshot(sum float64) *Hist {
	h := &Hist{
		count: l.count.Load(),
		sum:   sum,
		max:   math.Float64frombits(l.maxBits.Load()),
	}
	for i := range l.bucket {
		h.bucket[i] = l.bucket[i].Load()
	}
	return h
}

// liveOp is one op's live aggregate. Entries are created by the rank
// goroutine and published copy-on-write through liveRank.ops, so
// readers iterate an immutable slice.
type liveOp struct {
	op       string
	count    atomic.Int64
	simBits  atomic.Uint64 // Float64bits of the sim-seconds sum; single-writer
	wallNs   atomic.Int64
	bytes    atomic.Int64
	simHist  liveHist
	wallHist liveHist
}

func (lo *liveOp) addSim(d float64) {
	lo.simBits.Store(math.Float64bits(math.Float64frombits(lo.simBits.Load()) + d))
}

// liveRank is one rank's live counter mirror.
type liveRank struct {
	msgsSent, bytesSent atomic.Int64
	msgsRecv, bytesRecv atomic.Int64
	events              atomic.Int64
	lastProgress        atomic.Int64  // Recorder.Now() at the last recorded event
	simBits             atomic.Uint64 // Float64bits of the furthest simulated time reached
	ops                 atomic.Pointer[[]*liveOp]
}

// liveMark publishes per-event progress: the event count, the
// last-progress wall stamp /healthz keys off, and the high-water
// simulated time. No-op without a live endpoint.
func (r *Recorder) liveMark(simEnd float64) {
	lv := r.live
	if lv == nil {
		return
	}
	lv.events.Add(1)
	lv.lastProgress.Store(r.Now())
	if simEnd > math.Float64frombits(lv.simBits.Load()) {
		lv.simBits.Store(math.Float64bits(simEnd))
	}
}

// liveFor returns op's live aggregate, creating and publishing it on
// first use. Only the rank goroutine calls this; readers see the new
// entry via the copy-on-write ops slice.
func (r *Recorder) liveFor(op string) *liveOp {
	lo := r.liveOps[op]
	if lo == nil {
		lo = &liveOp{op: op}
		r.liveOps[op] = lo
		var list []*liveOp
		if old := r.live.ops.Load(); old != nil {
			list = append(list, *old...)
		}
		list = append(list, lo)
		r.live.ops.Store(&list)
	}
	return lo
}

// EnableLive attaches the atomic live-counter mirrors to every rank's
// recorder. Serve calls it; call it directly only in tests. Must run
// before the instrumented program starts (ranks must be quiescent).
func (t *Trace) EnableLive() {
	for _, r := range t.recs {
		if r.live == nil {
			r.live = &liveRank{}
			r.liveOps = map[string]*liveOp{}
		}
	}
}

// LiveRankMetrics is one rank's live snapshot in the /metrics document.
type LiveRankMetrics struct {
	Rank           int         `json:"rank"`
	MsgsSent       int64       `json:"msgs_sent"`
	BytesSent      int64       `json:"bytes_sent"`
	MsgsRecv       int64       `json:"msgs_recv"`
	BytesRecv      int64       `json:"bytes_recv"`
	Events         int64       `json:"events"`
	SimNow         float64     `json:"sim_now_s"`
	LastProgressNs int64       `json:"last_progress_ns"`
	Ops            []OpMetrics `json:"ops,omitempty"`
}

// LiveMetrics is the /metrics response: a consistent-enough snapshot of
// the live counters while the instrumented program is still running.
// In a launched world only the local rank's entry has data; in-process
// worlds show every rank.
type LiveMetrics struct {
	Ranks      int               `json:"ranks"`
	Events     int64             `json:"events"`
	TotalMsgs  int64             `json:"total_msgs"`
	TotalBytes int64             `json:"total_bytes"`
	SimNow     float64           `json:"sim_now_s"`
	UptimeS    float64           `json:"uptime_s"`
	PerRank    []LiveRankMetrics `json:"per_rank"`
}

// LiveMetrics snapshots the live counters. Safe to call from any
// goroutine while ranks are recording, but only meaningful after
// EnableLive (all zeros otherwise).
func (t *Trace) LiveMetrics() *LiveMetrics {
	m := &LiveMetrics{Ranks: len(t.recs), UptimeS: time.Since(t.epoch).Seconds()}
	for r, rec := range t.recs {
		rm := LiveRankMetrics{Rank: r}
		if lv := rec.live; lv != nil {
			rm.MsgsSent = lv.msgsSent.Load()
			rm.BytesSent = lv.bytesSent.Load()
			rm.MsgsRecv = lv.msgsRecv.Load()
			rm.BytesRecv = lv.bytesRecv.Load()
			rm.Events = lv.events.Load()
			rm.SimNow = math.Float64frombits(lv.simBits.Load())
			rm.LastProgressNs = lv.lastProgress.Load()
			if ops := lv.ops.Load(); ops != nil {
				list := *ops
				rm.Ops = make([]OpMetrics, 0, len(list))
				for _, lo := range list {
					simS := math.Float64frombits(lo.simBits.Load())
					simH := lo.simHist.snapshot(simS)
					wallH := lo.wallHist.snapshot(float64(lo.wallNs.Load()))
					rm.Ops = append(rm.Ops, newOpMetrics(lo.op,
						lo.count.Load(), simS, lo.wallNs.Load(), lo.bytes.Load(),
						simH, wallH))
				}
				sort.Slice(rm.Ops, func(i, j int) bool { return rm.Ops[i].Op < rm.Ops[j].Op })
			}
		}
		m.Events += rm.Events
		m.TotalMsgs += rm.MsgsSent
		m.TotalBytes += rm.BytesSent
		if rm.SimNow > m.SimNow {
			m.SimNow = rm.SimNow
		}
		m.PerRank = append(m.PerRank, rm)
	}
	return m
}

// ServerInfo identifies the serving process for /healthz. Rank is the
// process's rank in a launched world, or -1 when every rank is
// in-process (cluster.World.LocalRank's convention).
type ServerInfo struct {
	Rank   int    `json:"rank"`
	World  int    `json:"world"`
	Device string `json:"device"`
}

// Server is a running live endpoint. The zero of usefulness — a nil
// *Server — is safe to Close and Addr, so call sites need no guard when
// serving was not requested.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address ("" on a nil server) — useful
// when serving on port 0.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the endpoint down. Nil-safe.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// Serve enables live counters on t and serves them over HTTP on addr:
// GET /metrics returns the LiveMetrics JSON snapshot, GET /healthz the
// liveness document (rank, world, device, last-progress stamp), and
// /debug/pprof/* the standard Go profiles. Call before the instrumented
// program starts; Close when done. Handlers never touch the recorders'
// single-writer state, so serving is race-free against running ranks.
func Serve(addr string, t *Trace, info ServerInfo) (*Server, error) {
	t.EnableLive()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: live endpoint listen %s: %w", addr, err)
	}
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, t.LiveMetrics())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		var lastNs int64
		for _, rec := range t.recs {
			if rec.live != nil {
				if v := rec.live.lastProgress.Load(); v > lastNs {
					lastNs = v
				}
			}
		}
		h := struct {
			Status           string  `json:"status"`
			Rank             int     `json:"rank"`
			World            int     `json:"world"`
			Device           string  `json:"device"`
			Pid              int     `json:"pid"`
			UptimeS          float64 `json:"uptime_s"`
			LastProgressNs   int64   `json:"last_progress_ns"`
			LastProgressAgoS float64 `json:"last_progress_ago_s"`
		}{
			Status: "ok", Rank: info.Rank, World: info.World, Device: info.Device,
			Pid: os.Getpid(), UptimeS: time.Since(start).Seconds(),
			LastProgressNs:   lastNs,
			LastProgressAgoS: -1,
		}
		if lastNs > 0 {
			h.LastProgressAgoS = (time.Since(t.epoch) - time.Duration(lastNs)).Seconds()
		}
		writeJSON(w, h)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	// The endpoint outlives this call by design: it serves until Close
	// tears it down, alongside (not inside) the traced world's ranks.
	go srv.Serve(ln) //peachyvet:allow rawgo — server-lifetime goroutine, reaped by Server.Close
	return &Server{ln: ln, srv: srv}, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
