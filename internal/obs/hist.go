package obs

import "math"

// Log-bucketed duration histograms. Every Hist shares one fixed,
// compile-time bucket geometry — power-of-two boundaries spanning
// 2^-50..2^50 — so histograms recorded independently on different ranks
// (or in different processes of a launched world) merge *exactly*:
// bucket counts add, with no re-binning error. That exactness is what
// lets `peachy obs-merge` reproduce the in-process run's quantiles from
// per-rank artifacts, bit for bit.
//
// The same geometry serves both units the recorder cares about:
// simulated seconds (a 1 µs α lands near bucket 2^-20) and wall
// nanoseconds (a 1 ms decode lands near bucket 2^20), with generous
// headroom on both ends.
const (
	histMinExp = -50 // lowest bucket upper bound: 2^-50
	histMaxExp = 50  // highest bucket upper bound: 2^50
	histLen    = histMaxExp - histMinExp + 1
)

// Hist is a log2-bucketed histogram of non-negative values. Bucket i
// counts values v with 2^(histMinExp+i-1) < v <= 2^(histMinExp+i);
// values at or below the bottom boundary clamp into bucket 0, values
// above the top into the last bucket. Alongside the buckets it tracks
// the exact count, sum and max, so p100 is exact and quantile upper
// bounds never overshoot the largest observation.
//
// The zero value is ready to use. Like the Recorder that owns it, a
// Hist is single-writer: only the rank goroutine Observes.
type Hist struct {
	count  int64
	sum    float64
	max    float64
	bucket [histLen]int64
}

// histIndex maps a value to its bucket.
func histIndex(v float64) int {
	if v <= 0 {
		return 0
	}
	// Frexp: v = frac * 2^exp with frac in [0.5, 1), so the inclusive
	// upper bound is 2^exp — except exactly-on-boundary values
	// (frac == 0.5, v == 2^(exp-1)), which belong to the bucket below.
	frac, exp := math.Frexp(v)
	if frac == 0.5 {
		exp--
	}
	idx := exp - histMinExp
	if idx < 0 {
		return 0
	}
	if idx >= histLen {
		return histLen - 1
	}
	return idx
}

// histBound is the inclusive upper bound of bucket i.
func histBound(i int) float64 { return math.Ldexp(1, histMinExp+i) }

// Observe records one value.
func (h *Hist) Observe(v float64) {
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.bucket[histIndex(v)]++
}

// Count returns the number of observations.
func (h *Hist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observations.
func (h *Hist) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Max returns the largest observation (0 when empty).
func (h *Hist) Max() float64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// inclusive upper boundary of the bucket holding the ceil(q*count)-th
// smallest observation, capped at the exact max. q >= 1 returns the
// exact max; an empty histogram returns 0.
func (h *Hist) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range h.bucket {
		cum += n
		if cum >= rank {
			if b := histBound(i); b < h.max {
				return b
			}
			return h.max
		}
	}
	return h.max
}

// Merge folds o into h. Because every Hist shares the same fixed bucket
// boundaries this is exact: counts add, max takes the larger.
func (h *Hist) Merge(o *Hist) {
	if o == nil {
		return
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
	for i, n := range o.bucket {
		h.bucket[i] += n
	}
}

// Clone returns an independent copy (nil stays nil).
func (h *Hist) Clone() *Hist {
	if h == nil {
		return nil
	}
	c := *h
	return &c
}

// HistBucket is one non-empty bucket in the metrics JSON export: N
// observations with previous-bound < v <= Le. Boundaries are exact
// powers of two, so they round-trip through JSON losslessly and a
// parsed histogram merges as exactly as a live one.
type HistBucket struct {
	Le float64 `json:"le"`
	N  int64   `json:"n"`
}

// Buckets returns the sparse exported form (nil when empty).
func (h *Hist) Buckets() []HistBucket {
	if h == nil || h.count == 0 {
		return nil
	}
	var out []HistBucket
	for i, n := range h.bucket {
		if n > 0 {
			out = append(out, HistBucket{Le: histBound(i), N: n})
		}
	}
	return out
}

// histFromBuckets rebuilds a Hist from its exported sparse form plus
// the exact sum and max the surrounding OpMetrics row carries. The
// inverse of Buckets, up to the (irrecoverable) exact positions of
// individual observations.
func histFromBuckets(bs []HistBucket, sum, max float64) *Hist {
	h := &Hist{sum: sum, max: max}
	for _, b := range bs {
		h.bucket[histIndex(b.Le)] += b.N
		h.count += b.N
	}
	return h
}
