// Tests for the CLI flag plumbing: the .rank<r> artifact suffix under
// peachy launch (rank 0 included — the regression that would shadow an
// in-process run's bare path), strict PEACHY_RANK parsing, and the live
// listen-address resolution order.
package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRankSuffixed(t *testing.T) {
	cases := []struct {
		rank string
		want string
	}{
		{"", "out/trace.json"},        // not launched: bare path
		{"0", "out/trace.json.rank0"}, // rank 0 is suffixed like every rank
		{"7", "out/trace.json.rank7"},
		{"-1", "out/trace.json"}, // malformed ranks must not reach file names
		{"two", "out/trace.json"},
		{"3x", "out/trace.json"},
	}
	for _, c := range cases {
		t.Setenv("PEACHY_RANK", c.rank)
		if got := rankSuffixed("out/trace.json"); got != c.want {
			t.Errorf("PEACHY_RANK=%q: rankSuffixed = %q, want %q", c.rank, got, c.want)
		}
	}
}

// TestEmitRankSuffix: under a launch environment, Emit for rank 0 must
// write trace.json.rank0 and metrics.json.rank0 — never the bare paths,
// which belong to in-process runs.
func TestEmitRankSuffix(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("PEACHY_RANK", "0")
	o := &CLI{
		TracePath:   filepath.Join(dir, "trace.json"),
		MetricsPath: filepath.Join(dir, "metrics.json"),
	}
	if err := o.Emit(inProcessTrace(2)); err != nil {
		t.Fatalf("Emit: %v", err)
	}
	for _, name := range []string{"trace.json.rank0", "metrics.json.rank0"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("expected artifact %s: %v", name, err)
		}
	}
	for _, name := range []string{"trace.json", "metrics.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			t.Errorf("bare %s written under launch — would shadow an in-process artifact", name)
		}
	}
}

func TestEnabledIncludesListen(t *testing.T) {
	t.Setenv(envObsListen, "")
	if (&CLI{}).Enabled() {
		t.Error("empty CLI should be disabled")
	}
	if !(&CLI{Listen: ":0"}).Enabled() {
		t.Error("-obs-listen alone should enable observability")
	}
	t.Setenv(envObsListen, "127.0.0.1:7777")
	if !(&CLI{}).Enabled() {
		t.Error("PEACHY_OBS_LISTEN alone should enable observability")
	}
}

func TestListenAddrResolution(t *testing.T) {
	// The launcher's per-rank address wins over the flag entirely.
	t.Setenv(envObsListen, "127.0.0.1:7777")
	t.Setenv("PEACHY_RANK", "2")
	o := &CLI{Listen: ":9090"}
	if got := o.listenAddr(); got != "127.0.0.1:7777" {
		t.Errorf("env set: listenAddr = %q, want the env address verbatim", got)
	}
	// Without the env, the flag self-offsets by the launch rank.
	t.Setenv(envObsListen, "")
	if got := o.listenAddr(); got != ":9092" {
		t.Errorf("flag under rank 2: listenAddr = %q, want :9092", got)
	}
	t.Setenv("PEACHY_RANK", "")
	if got := o.listenAddr(); got != ":9090" {
		t.Errorf("flag in-process: listenAddr = %q, want :9090", got)
	}
	if got := (&CLI{}).listenAddr(); got != "" {
		t.Errorf("no flag, no env: listenAddr = %q, want empty", got)
	}
}

// TestCLIServeDisabled: Serve is a typed-nil-free no-op when listening
// is off or there is no trace, so `defer srv.Close()` needs no guard.
func TestCLIServeDisabled(t *testing.T) {
	t.Setenv(envObsListen, "")
	srv, err := (&CLI{}).Serve(NewTrace(1), ServerInfo{})
	if srv != nil || err != nil {
		t.Errorf("listening off: got (%v, %v), want (nil, nil)", srv, err)
	}
	srv, err = (&CLI{Listen: ":0"}).Serve(nil, ServerInfo{})
	if srv != nil || err != nil {
		t.Errorf("nil trace: got (%v, %v), want (nil, nil)", srv, err)
	}
	srv.Close() // must not panic
}
