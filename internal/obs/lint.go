package obs

import (
	"encoding/json"
	"fmt"
)

// This file validates the JSON artifacts the exporters write, so CI can
// smoke-check a `-trace`/`-metrics` run (`peachy obs-lint file...`)
// without a browser in the loop.

// LintFile validates data as either a Chrome trace or a metrics document,
// sniffing the shape from the top-level keys.
func LintFile(data []byte) error {
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		return fmt.Errorf("not a JSON object: %w", err)
	}
	if _, ok := top["traceEvents"]; ok {
		return LintTrace(data)
	}
	if _, ok := top["per_rank"]; ok {
		return LintMetrics(data)
	}
	return fmt.Errorf("unrecognized document: neither \"traceEvents\" (Chrome trace) nor \"per_rank\" (metrics) present")
}

// LintTrace validates the Chrome trace_event shape WriteChrome emits:
// a traceEvents array whose entries have name/ph/pid/tid, complete ("X")
// events carry ts and dur, and every rank track is named by a metadata
// event.
func LintTrace(data []byte) error {
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   *string        `json:"ph"`
			Tid  *int           `json:"tid"`
			Ts   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("trace: empty traceEvents array")
	}
	named := map[int]bool{}
	used := map[int]bool{}
	for i, ev := range doc.TraceEvents {
		if ev.Ph == nil || ev.Tid == nil {
			return fmt.Errorf("trace: event %d missing ph or tid", i)
		}
		if ev.Name == "" {
			return fmt.Errorf("trace: event %d has empty name", i)
		}
		switch *ev.Ph {
		case "X":
			if ev.Ts == nil || ev.Dur == nil {
				return fmt.Errorf("trace: complete event %d (%s) missing ts or dur", i, ev.Name)
			}
			if *ev.Dur < 0 {
				return fmt.Errorf("trace: complete event %d (%s) has negative dur %g", i, ev.Name, *ev.Dur)
			}
			used[*ev.Tid] = true
		case "i":
			if ev.Ts == nil {
				return fmt.Errorf("trace: instant event %d (%s) missing ts", i, ev.Name)
			}
			used[*ev.Tid] = true
		case "M":
			if ev.Name == "thread_name" {
				named[*ev.Tid] = true
			}
		default:
			return fmt.Errorf("trace: event %d has unsupported phase %q", i, *ev.Ph)
		}
	}
	for tid := range used {
		if !named[tid] {
			return fmt.Errorf("trace: track tid=%d has events but no thread_name metadata", tid)
		}
	}
	return nil
}

// LintMetrics validates the metrics document shape WriteMetrics emits and
// its internal consistency: per-rank list and traffic matrices sized to
// ranks, and matrix totals agreeing with the counter totals.
func LintMetrics(data []byte) error {
	var m Metrics
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if m.Ranks < 1 {
		return fmt.Errorf("metrics: ranks = %d, want >= 1", m.Ranks)
	}
	if len(m.PerRank) != m.Ranks {
		return fmt.Errorf("metrics: per_rank has %d entries for %d ranks", len(m.PerRank), m.Ranks)
	}
	if len(m.TrafficBytes) != m.Ranks || len(m.TrafficMsgs) != m.Ranks {
		return fmt.Errorf("metrics: traffic matrices are %dx? for %d ranks", len(m.TrafficBytes), m.Ranks)
	}
	var matrixBytes, matrixMsgs, totalBytes, totalMsgs int64
	for r := 0; r < m.Ranks; r++ {
		if len(m.TrafficBytes[r]) != m.Ranks || len(m.TrafficMsgs[r]) != m.Ranks {
			return fmt.Errorf("metrics: traffic row %d has %d columns for %d ranks", r, len(m.TrafficBytes[r]), m.Ranks)
		}
		if m.PerRank[r].Rank != r {
			return fmt.Errorf("metrics: per_rank[%d].rank = %d", r, m.PerRank[r].Rank)
		}
		for d := 0; d < m.Ranks; d++ {
			matrixBytes += m.TrafficBytes[r][d]
			matrixMsgs += m.TrafficMsgs[r][d]
		}
		totalBytes += m.PerRank[r].BytesSent
		totalMsgs += m.PerRank[r].MsgsSent
	}
	if matrixBytes != totalBytes || matrixMsgs != totalMsgs {
		return fmt.Errorf("metrics: traffic matrix totals (%d msgs, %d bytes) disagree with per-rank counters (%d msgs, %d bytes)",
			matrixMsgs, matrixBytes, totalMsgs, totalBytes)
	}
	if totalBytes != m.TotalBytes || totalMsgs != m.TotalMsgs {
		return fmt.Errorf("metrics: per-rank sums (%d msgs, %d bytes) disagree with totals (%d msgs, %d bytes)",
			totalMsgs, totalBytes, m.TotalMsgs, m.TotalBytes)
	}
	return nil
}
