package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// OpMetrics aggregates one operation name on one rank.
type OpMetrics struct {
	Op     string  `json:"op"`
	Count  int64   `json:"count"`
	SimS   float64 `json:"sim_s"`
	WallNs int64   `json:"wall_ns"`
}

// RankMetrics is one rank's flat counter view.
type RankMetrics struct {
	Rank      int   `json:"rank"`
	MsgsSent  int64 `json:"msgs_sent"`
	BytesSent int64 `json:"bytes_sent"`
	MsgsRecv  int64 `json:"msgs_recv"`
	BytesRecv int64 `json:"bytes_recv"`
	// Collectives totals the collective invocations (Barrier..Scan).
	Collectives int64 `json:"collectives"`
	// SimTotal is the rank's simulated finish time (max span end);
	// SimBusy subtracts the time the rank spent blocked in receives.
	SimTotal       float64     `json:"sim_total_s"`
	SimBusy        float64     `json:"sim_busy_s"`
	RecvWaitSim    float64     `json:"recv_wait_sim_s"`
	RecvWaitWallNs int64       `json:"recv_wait_wall_ns"`
	BarrierWaitSim float64     `json:"barrier_wait_sim_s"`
	Ops            []OpMetrics `json:"ops,omitempty"`
}

// Metrics is the flat whole-trace metrics document the -metrics flag
// writes: totals, per-rank counters, and the rank×rank traffic matrices.
type Metrics struct {
	Ranks       int     `json:"ranks"`
	Events      int     `json:"events"`
	TotalMsgs   int64   `json:"total_msgs"`
	TotalBytes  int64   `json:"total_bytes"`
	SimMakespan float64 `json:"sim_makespan_s"`
	// BusyImbalance is max/mean per-rank SimBusy (1.0 = perfectly even;
	// 0 when nothing ran).
	BusyImbalance float64       `json:"busy_imbalance"`
	PerRank       []RankMetrics `json:"per_rank"`
	// TrafficBytes[src][dst] / TrafficMsgs[src][dst] are payload bytes and
	// message counts sent from src to dst.
	TrafficBytes [][]int64 `json:"traffic_bytes"`
	TrafficMsgs  [][]int64 `json:"traffic_msgs"`
}

// Metrics computes the flat metrics view. Call only after the traced
// program finished.
func (t *Trace) Metrics() *Metrics {
	m := &Metrics{Ranks: len(t.recs)}
	m.TrafficBytes = make([][]int64, len(t.recs))
	m.TrafficMsgs = make([][]int64, len(t.recs))
	busySum, busyMax := 0.0, 0.0
	for r, rec := range t.recs {
		m.Events += len(rec.events)
		m.TrafficBytes[r] = append([]int64(nil), rec.sentBytesTo...)
		m.TrafficMsgs[r] = append([]int64(nil), rec.sentMsgsTo...)
		rm := RankMetrics{
			Rank:           r,
			MsgsSent:       rec.ctr.MsgsSent,
			BytesSent:      rec.ctr.BytesSent,
			MsgsRecv:       rec.ctr.MsgsRecv,
			BytesRecv:      rec.ctr.BytesRecv,
			RecvWaitSim:    rec.ctr.RecvWaitSim,
			RecvWaitWallNs: rec.ctr.RecvWaitWall,
			BarrierWaitSim: rec.ctr.OpSim["Barrier"],
		}
		for _, ev := range rec.events {
			if ev.SimEnd > rm.SimTotal {
				rm.SimTotal = ev.SimEnd
			}
		}
		rm.SimBusy = rm.SimTotal - rm.RecvWaitSim
		if rm.SimBusy < 0 {
			rm.SimBusy = 0
		}
		ops := make([]string, 0, len(rec.ctr.OpCount))
		for op := range rec.ctr.OpCount {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		for _, op := range ops {
			rm.Ops = append(rm.Ops, OpMetrics{
				Op: op, Count: rec.ctr.OpCount[op],
				SimS: rec.ctr.OpSim[op], WallNs: rec.ctr.OpWall[op],
			})
			if CollectiveOps[op] {
				rm.Collectives += rec.ctr.OpCount[op]
			}
		}
		m.TotalMsgs += rm.MsgsSent
		m.TotalBytes += rm.BytesSent
		if rm.SimTotal > m.SimMakespan {
			m.SimMakespan = rm.SimTotal
		}
		busySum += rm.SimBusy
		if rm.SimBusy > busyMax {
			busyMax = rm.SimBusy
		}
		m.PerRank = append(m.PerRank, rm)
	}
	if busySum > 0 {
		m.BusyImbalance = busyMax / (busySum / float64(len(t.recs)))
	}
	return m
}

// WriteMetrics writes the metrics document as indented JSON.
func (t *Trace) WriteMetrics(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Metrics())
}
