package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// OpMetrics aggregates one operation name on one rank (or, in the
// document-level Ops list, across all ranks). Beyond the flat totals it
// carries the latency distribution: p50/p95/p99/max quantiles for the
// simulated and wall durations, plus the sparse log-bucket histograms
// they were computed from — fixed boundaries, so per-rank rows merge
// exactly into the run-level row. Sim fields are absent for wire-level
// ops (net.tx/net.rx have no simulated duration; Bytes carries their
// frame bytes instead), wall quantiles are absent when nothing was
// observed.
type OpMetrics struct {
	Op     string  `json:"op"`
	Count  int64   `json:"count"`
	SimS   float64 `json:"sim_s"`
	WallNs int64   `json:"wall_ns"`
	Bytes  int64   `json:"bytes,omitempty"`

	SimP50 float64 `json:"sim_p50_s,omitempty"`
	SimP95 float64 `json:"sim_p95_s,omitempty"`
	SimP99 float64 `json:"sim_p99_s,omitempty"`
	SimMax float64 `json:"sim_max_s,omitempty"`

	WallP50 int64 `json:"wall_p50_ns,omitempty"`
	WallP95 int64 `json:"wall_p95_ns,omitempty"`
	WallP99 int64 `json:"wall_p99_ns,omitempty"`
	WallMax int64 `json:"wall_max_ns,omitempty"`

	SimHist  []HistBucket `json:"sim_hist,omitempty"`
	WallHist []HistBucket `json:"wall_hist,omitempty"`
}

// newOpMetrics assembles one OpMetrics row from totals plus the two
// duration histograms (either may be nil/empty).
func newOpMetrics(op string, count int64, simS float64, wallNs, bytes int64, simH, wallH *Hist) OpMetrics {
	om := OpMetrics{Op: op, Count: count, SimS: simS, WallNs: wallNs, Bytes: bytes}
	if simH.Count() > 0 {
		om.SimP50 = simH.Quantile(0.50)
		om.SimP95 = simH.Quantile(0.95)
		om.SimP99 = simH.Quantile(0.99)
		om.SimMax = simH.Max()
		om.SimHist = simH.Buckets()
	}
	if wallH.Count() > 0 {
		om.WallP50 = int64(wallH.Quantile(0.50))
		om.WallP95 = int64(wallH.Quantile(0.95))
		om.WallP99 = int64(wallH.Quantile(0.99))
		om.WallMax = int64(wallH.Max())
		om.WallHist = wallH.Buckets()
	}
	return om
}

// RankMetrics is one rank's flat counter view.
type RankMetrics struct {
	Rank      int   `json:"rank"`
	MsgsSent  int64 `json:"msgs_sent"`
	BytesSent int64 `json:"bytes_sent"`
	MsgsRecv  int64 `json:"msgs_recv"`
	BytesRecv int64 `json:"bytes_recv"`
	// Collectives totals the collective invocations (Barrier..Scan).
	Collectives int64 `json:"collectives"`
	// SimTotal is the rank's simulated finish time (max span end);
	// SimBusy subtracts the time the rank spent blocked in receives.
	SimTotal       float64     `json:"sim_total_s"`
	SimBusy        float64     `json:"sim_busy_s"`
	RecvWaitSim    float64     `json:"recv_wait_sim_s"`
	RecvWaitWallNs int64       `json:"recv_wait_wall_ns"`
	BarrierWaitSim float64     `json:"barrier_wait_sim_s"`
	Ops            []OpMetrics `json:"ops,omitempty"`
}

// Metrics is the flat whole-trace metrics document the -metrics flag
// writes: totals, per-rank counters, and the rank×rank traffic matrices.
type Metrics struct {
	Ranks       int     `json:"ranks"`
	Events      int     `json:"events"`
	TotalMsgs   int64   `json:"total_msgs"`
	TotalBytes  int64   `json:"total_bytes"`
	SimMakespan float64 `json:"sim_makespan_s"`
	// BusyImbalance is max/mean per-rank SimBusy (1.0 = perfectly even;
	// 0 when nothing ran).
	BusyImbalance float64       `json:"busy_imbalance"`
	PerRank       []RankMetrics `json:"per_rank"`
	// Ops aggregates every operation across all ranks: counts and
	// durations summed in rank order, histograms merged bucket-wise
	// (exact, by the fixed boundaries), quantiles recomputed from the
	// merged histograms. MergeMetrics rebuilds exactly this list from
	// per-rank documents.
	Ops []OpMetrics `json:"ops,omitempty"`
	// TrafficBytes[src][dst] / TrafficMsgs[src][dst] are payload bytes and
	// message counts sent from src to dst.
	TrafficBytes [][]int64 `json:"traffic_bytes"`
	TrafficMsgs  [][]int64 `json:"traffic_msgs"`
}

// Metrics computes the flat metrics view. Call only after the traced
// program finished.
func (t *Trace) Metrics() *Metrics {
	m := &Metrics{Ranks: len(t.recs)}
	m.TrafficBytes = make([][]int64, len(t.recs))
	m.TrafficMsgs = make([][]int64, len(t.recs))
	busySum, busyMax := 0.0, 0.0
	agg := map[string]*opAgg{}
	var aggOps []string
	for r, rec := range t.recs {
		m.Events += len(rec.events)
		m.TrafficBytes[r] = append([]int64(nil), rec.sentBytesTo...)
		m.TrafficMsgs[r] = append([]int64(nil), rec.sentMsgsTo...)
		rm := RankMetrics{
			Rank:           r,
			MsgsSent:       rec.ctr.MsgsSent,
			BytesSent:      rec.ctr.BytesSent,
			MsgsRecv:       rec.ctr.MsgsRecv,
			BytesRecv:      rec.ctr.BytesRecv,
			RecvWaitSim:    rec.ctr.RecvWaitSim,
			RecvWaitWallNs: rec.ctr.RecvWaitWall,
			BarrierWaitSim: rec.ctr.OpSim["Barrier"],
		}
		for _, ev := range rec.events {
			if ev.SimEnd > rm.SimTotal {
				rm.SimTotal = ev.SimEnd
			}
		}
		rm.SimBusy = rm.SimTotal - rm.RecvWaitSim
		if rm.SimBusy < 0 {
			rm.SimBusy = 0
		}
		ops := make([]string, 0, len(rec.ctr.OpCount))
		for op := range rec.ctr.OpCount {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		for _, op := range ops {
			om := newOpMetrics(op, rec.ctr.OpCount[op], rec.ctr.OpSim[op],
				rec.ctr.OpWall[op], rec.ctr.OpBytes[op],
				rec.ctr.OpSimHist[op], rec.ctr.OpWallHist[op])
			rm.Ops = append(rm.Ops, om)
			if CollectiveOps[op] {
				rm.Collectives += rec.ctr.OpCount[op]
			}
			a := agg[op]
			if a == nil {
				a = &opAgg{simH: &Hist{}, wallH: &Hist{}}
				agg[op] = a
				aggOps = append(aggOps, op)
			}
			a.fold(om)
		}
		m.TotalMsgs += rm.MsgsSent
		m.TotalBytes += rm.BytesSent
		if rm.SimTotal > m.SimMakespan {
			m.SimMakespan = rm.SimTotal
		}
		busySum += rm.SimBusy
		if rm.SimBusy > busyMax {
			busyMax = rm.SimBusy
		}
		m.PerRank = append(m.PerRank, rm)
	}
	if busySum > 0 {
		m.BusyImbalance = busyMax / (busySum / float64(len(t.recs)))
	}
	sort.Strings(aggOps)
	for _, op := range aggOps {
		m.Ops = append(m.Ops, agg[op].metrics(op))
	}
	return m
}

// opAgg folds per-rank OpMetrics rows into the run-level row. Folding
// goes through the exported row (not the recorder's internal state) on
// purpose: MergeMetrics replays exactly the same fold over rows parsed
// from per-rank documents, so the merged run-level aggregate reproduces
// the in-process one — sums in the same rank order, histograms as exact
// bucket additions.
type opAgg struct {
	count, wallNs, bytes int64
	simS                 float64
	simMax               float64
	wallMax              int64
	simH, wallH          *Hist
}

func (a *opAgg) fold(om OpMetrics) {
	a.count += om.Count
	a.simS += om.SimS
	a.wallNs += om.WallNs
	a.bytes += om.Bytes
	if om.SimMax > a.simMax {
		a.simMax = om.SimMax
	}
	if om.WallMax > a.wallMax {
		a.wallMax = om.WallMax
	}
	a.simH.Merge(histFromBuckets(om.SimHist, om.SimS, om.SimMax))
	a.wallH.Merge(histFromBuckets(om.WallHist, float64(om.WallNs), float64(om.WallMax)))
}

func (a *opAgg) metrics(op string) OpMetrics {
	a.simH.max = a.simMax
	a.wallH.max = float64(a.wallMax)
	return newOpMetrics(op, a.count, a.simS, a.wallNs, a.bytes, a.simH, a.wallH)
}

// WriteMetrics writes the metrics document as indented JSON.
func (t *Trace) WriteMetrics(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Metrics())
}
