// Tests for the fixed-boundary log-bucket histogram: bucket indexing at
// powers of two, quantiles capped at the exact tracked max, and the
// exact-merge property the cross-rank folds depend on.
package obs

import (
	"math"
	"testing"
)

func TestHistIndexBoundaries(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		// Powers of two are boundary-inclusive: 2^k lands in the bucket
		// whose upper bound is 2^k, not the next one up.
		{1, -histMinExp},       // 2^0 -> bound 2^0
		{2, 1 - histMinExp},    // 2^1 -> bound 2^1
		{0.5, -1 - histMinExp}, // 2^-1
		{1.5, 1 - histMinExp},  // (1,2] -> bound 2^1
		{0.75, -histMinExp},    // (0.5,1] -> bound 2^0
		{1e-300, 0},            // underflow clamps to the first bucket
		{1e300, histLen - 1},   // overflow clamps to the last bucket
		{0, 0},                 // non-positive clamps to the first bucket
		{-3, 0},
		{math.Ldexp(1, histMinExp), 0},           // exactly the first bound
		{math.Ldexp(1, histMaxExp), histLen - 1}, // exactly the last bound
	}
	for _, c := range cases {
		if got := histIndex(c.v); got != c.want {
			t.Errorf("histIndex(%g) = %d, want %d", c.v, got, c.want)
		}
		if c.v > 0 && c.v <= math.Ldexp(1, histMaxExp) {
			if b := histBound(histIndex(c.v)); b < c.v {
				t.Errorf("histBound(histIndex(%g)) = %g < value", c.v, b)
			}
		}
	}
}

func TestHistQuantile(t *testing.T) {
	var empty *Hist
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("nil hist Quantile = %g, want 0", got)
	}
	empty = &Hist{}
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty hist Quantile = %g, want 0", got)
	}

	h := &Hist{}
	h.Observe(3.0)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		// With one observation, every quantile is capped at the exact max
		// rather than the (coarser) bucket bound of 4.
		if got := h.Quantile(q); got != 3.0 {
			t.Errorf("single-value Quantile(%g) = %g, want 3", q, got)
		}
	}

	h = &Hist{}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("Quantile(1) = %g, want exact max 100", got)
	}
	p50 := h.Quantile(0.5)
	// The median of 1..100 is 50; a log2 bucket bound overestimates by at
	// most 2x and never underestimates.
	if p50 < 50 || p50 > 100 {
		t.Errorf("Quantile(0.5) = %g, want within [50, 100]", p50)
	}
	if h.Count() != 100 || h.Sum() != 5050 || h.Max() != 100 {
		t.Errorf("count/sum/max = %d/%g/%g, want 100/5050/100",
			h.Count(), h.Sum(), h.Max())
	}
}

// TestHistMergeExact: observing a stream split across two histograms and
// merging must equal observing the whole stream in one histogram — the
// property that makes cross-rank fold order irrelevant for buckets.
func TestHistMergeExact(t *testing.T) {
	vals := []float64{1e-9, 3e-6, 0.25, 0.5, 1, 1.5, 2, 64, 1e12}
	whole, a, b := &Hist{}, &Hist{}, &Hist{}
	for i, v := range vals {
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	merged := a.Clone()
	merged.Merge(b)
	if *merged != *whole {
		t.Errorf("merge(split) != whole:\nmerged %+v\nwhole  %+v", merged, whole)
	}
	// Merging from nil is the identity.
	c := whole.Clone()
	c.Merge(nil)
	if *c != *whole {
		t.Error("Merge(nil) changed the histogram")
	}
	if (*Hist)(nil).Clone() != nil {
		t.Error("nil Clone should stay nil")
	}
}

func TestHistBucketsRoundTrip(t *testing.T) {
	h := &Hist{}
	for _, v := range []float64{0.001, 0.001, 7, 7, 7, 1e6} {
		h.Observe(v)
	}
	bs := h.Buckets()
	back := histFromBuckets(bs, h.Sum(), h.Max())
	if *back != *h {
		t.Errorf("Buckets round trip:\nback %+v\norig %+v", back, h)
	}
	var sparse int64
	for _, b := range bs {
		if b.N == 0 {
			t.Errorf("Buckets() emitted an empty bucket le=%g", b.Le)
		}
		sparse += b.N
	}
	if sparse != h.Count() {
		t.Errorf("sparse buckets total %d, want %d", sparse, h.Count())
	}
	if (&Hist{}).Buckets() != nil {
		t.Error("empty hist Buckets() should be nil")
	}
}
