package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace_event format (the subset
// chrome://tracing and Perfetto both accept): "X" complete events carry
// ts+dur, "i" instants carry a scope, "M" metadata names the tracks.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeEnc serializes a stream of chromeEvents into the exact document
// framing WriteChrome has always produced. MergeTraces re-emits parsed
// per-rank events through the same encoder, which is what makes a
// merged launched-run trace byte-identical to the single-process trace
// of the same program.
type chromeEnc struct {
	bw    *errWriter
	first bool
}

func newChromeEnc(w io.Writer) *chromeEnc {
	bw := &errWriter{w: w}
	bw.writeString("{\"traceEvents\":[\n")
	return &chromeEnc{bw: bw, first: true}
}

func (e *chromeEnc) emit(ev chromeEvent) {
	data, err := json.Marshal(ev)
	if err != nil {
		e.bw.err = err
		return
	}
	if !e.first {
		e.bw.writeString(",\n")
	}
	e.first = false
	e.bw.write(data)
}

// meta names and orders one track per rank.
func (e *chromeEnc) meta(ranks int) {
	for r := 0; r < ranks; r++ {
		e.emit(chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: r,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
		})
		e.emit(chromeEvent{
			Name: "thread_sort_index", Ph: "M", Pid: 0, Tid: r,
			Args: map[string]any{"sort_index": r},
		})
	}
}

func (e *chromeEnc) close() error {
	e.bw.writeString("\n],\"displayTimeUnit\":\"ms\"}\n")
	return e.bw.err
}

// WriteChrome emits the trace as Chrome trace_event JSON on the simulated
// timeline: one track (tid) per rank, ts/dur in simulated microseconds.
// The output is a pure function of the recorded simulated events — wall
// times never appear — so two runs of the same deterministic program
// produce byte-identical files. Open the file in chrome://tracing or
// https://ui.perfetto.dev.
func (t *Trace) WriteChrome(w io.Writer) error {
	enc := newChromeEnc(w)
	enc.meta(len(t.recs))
	for r, rec := range t.recs {
		for _, ev := range sortedForTimeline(rec.events) {
			ce := chromeEvent{Name: ev.Op, Ph: "X", Pid: 0, Tid: r, Ts: ev.SimStart * 1e6}
			if ev.Instant {
				ce.Ph = "i"
				ce.S = "t"
			} else {
				dur := (ev.SimEnd - ev.SimStart) * 1e6
				ce.Dur = &dur
			}
			args := map[string]any{}
			if ev.Peer >= 0 {
				args["peer"] = ev.Peer
			}
			if ev.Tag != 0 {
				args["tag"] = ev.Tag
			}
			if ev.Bytes > 0 {
				args["bytes"] = ev.Bytes
			}
			for _, kv := range ev.KV {
				args[kv.K] = kv.V
			}
			if len(args) > 0 {
				ce.Args = args
			}
			enc.emit(ce)
		}
	}
	return enc.close()
}

// sortedForTimeline orders one rank's events so that viewers reconstruct
// the nesting unambiguously: by start time, then enclosing spans before
// enclosed ones (longer duration first), then recording order. The sort
// is a deterministic function of simulated times only.
func sortedForTimeline(events []Event) []Event {
	out := append([]Event(nil), events...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].SimStart != out[j].SimStart {
			return out[i].SimStart < out[j].SimStart
		}
		return out[i].SimEnd > out[j].SimEnd
	})
	return out
}

// errWriter folds write errors so the exporter body stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) write(p []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(p)
}

func (e *errWriter) writeString(s string) { e.write([]byte(s)) }
