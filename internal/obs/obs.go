// Package obs is the repository's zero-dependency observability layer:
// per-rank tracing and metrics for the cluster runtime and the substrates
// built on it. The paper's assignments are pedagogically about *seeing*
// parallel behaviour — load imbalance, communication cost shapes, idle
// time — and this package turns the deterministic cost model's single
// numbers into explainable timelines.
//
// A Trace owns one Recorder per rank. Each Recorder is a lock-free
// append-only buffer owned by its rank's goroutine: ranks never contend
// on a shared structure, and a nil *Recorder is the disabled state — every
// recording method is nil-safe, so instrumented hot paths pay a single
// branch when observability is off. Read a Trace (Events, Metrics,
// exporters) only after the instrumented program has finished; World.Run's
// completion is the required happens-before edge.
//
// Exporters: WriteChrome emits Chrome trace_event JSON on the simulated
// timeline (one track per rank, deterministic across runs of the same
// program — open in chrome://tracing or Perfetto), WriteMetrics emits a
// flat metrics JSON (per-rank counters plus the rank×rank traffic
// matrix), and WriteSummary prints a terminal digest that flags the top
// imbalance. See docs/observability.md.
package obs

import "time"

// KV is one extra integer annotation on an event (task ids, key counts,
// record counts). A flat int64 keeps recording allocation-free and the
// exporters deterministic.
type KV struct {
	K string
	V int64
}

// Event is one recorded span or instant:
//   - Op names what happened ("Allreduce", "send", "recv", "mr.map", ...).
//   - Peer is the peer or root rank (-1 when not applicable).
//   - Tag and Bytes carry the message-level detail for transport events.
//   - SimStart/SimEnd are seconds on the rank's simulated clock — the
//     deterministic timeline the Chrome exporter draws.
//   - WallStart/WallEnd are nanoseconds since the trace epoch — real time,
//     aggregated into metrics but kept out of the deterministic trace.
type Event struct {
	Rank               int
	Op                 string
	Peer               int
	Tag                int
	Bytes              int64
	SimStart, SimEnd   float64
	WallStart, WallEnd int64
	Instant            bool
	KV                 []KV
}

// Counters are one rank's accumulated totals. Op* maps aggregate per
// operation name (collective invocations, substrate phases, wire-level
// transport ops): flat count/sum totals, plus log-bucketed duration
// histograms whose fixed boundaries make cross-rank merging exact.
// OpBytes is populated by WireSpan only (frame bytes per wire op).
type Counters struct {
	MsgsSent, BytesSent int64
	MsgsRecv, BytesRecv int64
	// RecvWaitSim/RecvWaitWall accumulate time blocked in receives:
	// simulated seconds the clock jumped forward to a message's arrival,
	// and wall nanoseconds spent in the blocking take.
	RecvWaitSim  float64
	RecvWaitWall int64
	OpCount      map[string]int64
	OpSim        map[string]float64
	OpWall       map[string]int64
	OpBytes      map[string]int64
	OpSimHist    map[string]*Hist
	OpWallHist   map[string]*Hist
}

// Recorder captures one rank's events and counters. It must only be used
// by the goroutine that owns the rank; a nil Recorder discards everything
// at the cost of one branch per call.
type Recorder struct {
	rank   int
	epoch  time.Time
	events []Event
	ctr    Counters
	// sentMsgsTo/sentBytesTo index by destination rank: this rank's row of
	// the world's traffic matrix.
	sentMsgsTo  []int64
	sentBytesTo []int64
	// live, when non-nil, mirrors the counters into atomics a concurrent
	// HTTP snapshot (Serve) may read while the rank is still running. The
	// recorder itself stays single-writer and lock-free; with no live
	// endpoint attached the cost is one extra nil check per event.
	live    *liveRank
	liveOps map[string]*liveOp // owner-goroutine cache of live.ops entries
}

// Trace is a whole-program collection of per-rank recorders sharing one
// wall-clock epoch.
type Trace struct {
	epoch time.Time
	recs  []*Recorder
}

// NewTrace creates a trace for a world of the given number of ranks.
func NewTrace(ranks int) *Trace {
	if ranks < 1 {
		ranks = 1
	}
	t := &Trace{epoch: time.Now(), recs: make([]*Recorder, ranks)}
	for r := range t.recs {
		t.recs[r] = &Recorder{
			rank:  r,
			epoch: t.epoch,
			ctr: Counters{
				OpCount: map[string]int64{}, OpSim: map[string]float64{},
				OpWall: map[string]int64{}, OpBytes: map[string]int64{},
				OpSimHist: map[string]*Hist{}, OpWallHist: map[string]*Hist{},
			},
			sentMsgsTo:  make([]int64, ranks),
			sentBytesTo: make([]int64, ranks),
		}
	}
	return t
}

// Ranks returns the number of ranks the trace covers.
func (t *Trace) Ranks() int { return len(t.recs) }

// Rank returns rank r's recorder.
func (t *Trace) Rank(r int) *Recorder { return t.recs[r] }

// Events returns every recorded event, rank-major in per-rank recording
// order. Call only after the traced program finished.
func (t *Trace) Events() []Event {
	var out []Event
	for _, r := range t.recs {
		out = append(out, r.events...)
	}
	return out
}

// Enabled reports whether the recorder actually records (non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Now returns wall nanoseconds since the trace epoch (0 when disabled).
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.epoch))
}

// Events returns this rank's events in recording order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Snapshot returns a copy of this rank's counters.
func (r *Recorder) Snapshot() Counters {
	if r == nil {
		return Counters{}
	}
	c := r.ctr
	c.OpCount = copyMap(r.ctr.OpCount)
	c.OpSim = copyMap(r.ctr.OpSim)
	c.OpWall = copyMap(r.ctr.OpWall)
	c.OpBytes = copyMap(r.ctr.OpBytes)
	c.OpSimHist = make(map[string]*Hist, len(r.ctr.OpSimHist))
	for k, h := range r.ctr.OpSimHist {
		c.OpSimHist[k] = h.Clone()
	}
	c.OpWallHist = make(map[string]*Hist, len(r.ctr.OpWallHist))
	for k, h := range r.ctr.OpWallHist {
		c.OpWallHist[k] = h.Clone()
	}
	return c
}

func copyMap[V int64 | float64](m map[string]V) map[string]V {
	out := make(map[string]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Span records a completed span.
func (r *Recorder) Span(op string, peer, tag int, bytes int64, simStart, simEnd float64, wallStart, wallEnd int64, kv ...KV) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{
		Rank: r.rank, Op: op, Peer: peer, Tag: tag, Bytes: bytes,
		SimStart: simStart, SimEnd: simEnd, WallStart: wallStart, WallEnd: wallEnd,
		KV: kv,
	})
	r.liveMark(simEnd)
}

// Instant records a zero-duration event at the given simulated time.
func (r *Recorder) Instant(op string, peer, tag int, bytes int64, sim float64, kv ...KV) {
	if r == nil {
		return
	}
	now := r.Now()
	r.events = append(r.events, Event{
		Rank: r.rank, Op: op, Peer: peer, Tag: tag, Bytes: bytes,
		SimStart: sim, SimEnd: sim, WallStart: now, WallEnd: now,
		Instant: true, KV: kv,
	})
	r.liveMark(sim)
}

// Send records one point-to-point send: a span covering the simulated
// α + β·bytes transmission, plus the sent-side counters and this rank's
// traffic-matrix row.
func (r *Recorder) Send(dst, tag int, bytes int64, simStart, simEnd float64) {
	if r == nil {
		return
	}
	now := r.Now()
	r.events = append(r.events, Event{
		Rank: r.rank, Op: "send", Peer: dst, Tag: tag, Bytes: bytes,
		SimStart: simStart, SimEnd: simEnd, WallStart: now, WallEnd: now,
	})
	r.ctr.MsgsSent++
	r.ctr.BytesSent += bytes
	if dst >= 0 && dst < len(r.sentMsgsTo) {
		r.sentMsgsTo[dst]++
		r.sentBytesTo[dst] += bytes
	}
	if r.live != nil {
		r.live.msgsSent.Add(1)
		r.live.bytesSent.Add(bytes)
		r.liveMark(simEnd)
	}
}

// Recv records one completed receive: a span from the simulated time the
// rank started waiting to the time the message was available, plus the
// receive-side counters and wait-time accumulation (sim and wall).
func (r *Recorder) Recv(src, tag int, bytes int64, simStart, simEnd float64, wallStart int64) {
	if r == nil {
		return
	}
	now := r.Now()
	r.events = append(r.events, Event{
		Rank: r.rank, Op: "recv", Peer: src, Tag: tag, Bytes: bytes,
		SimStart: simStart, SimEnd: simEnd, WallStart: wallStart, WallEnd: now,
	})
	r.ctr.MsgsRecv++
	r.ctr.BytesRecv += bytes
	r.ctr.RecvWaitSim += simEnd - simStart
	r.ctr.RecvWaitWall += now - wallStart
	if r.live != nil {
		r.live.msgsRecv.Add(1)
		r.live.bytesRecv.Add(bytes)
		r.liveMark(simEnd)
	}
}

// Collective records a whole collective invocation as a span and
// accumulates the per-op counters. root is -1 for rootless collectives.
func (r *Recorder) Collective(op string, root int, simStart, simEnd float64, wallStart int64) {
	if r == nil {
		return
	}
	now := r.Now()
	r.events = append(r.events, Event{
		Rank: r.rank, Op: op, Peer: root,
		SimStart: simStart, SimEnd: simEnd, WallStart: wallStart, WallEnd: now,
	})
	r.countOp(op, simEnd-simStart, now-wallStart)
	r.liveMark(simEnd)
}

// WallSpan records a span for substrates with no simulated clock (rdd,
// pipeline, shared-memory solvers): the simulated times are derived from
// wall time since the epoch, so the Chrome sim-timeline still renders a
// meaningful (though host-dependent) picture. startNs is a prior
// Recorder.Now() value.
func (r *Recorder) WallSpan(op string, startNs int64, kv ...KV) {
	if r == nil {
		return
	}
	now := r.Now()
	r.events = append(r.events, Event{
		Rank: r.rank, Op: op, Peer: -1,
		SimStart: float64(startNs) * 1e-9, SimEnd: float64(now) * 1e-9,
		WallStart: startNs, WallEnd: now,
		KV: kv,
	})
	r.countOp(op, float64(now-startNs)*1e-9, now-startNs)
	r.liveMark(float64(now) * 1e-9)
}

// PhaseSpan records a named phase span with explicit simulated bounds
// (substrates that run under a Comm use the rank's clock) and counts it
// in the per-op aggregates.
func (r *Recorder) PhaseSpan(op string, simStart, simEnd float64, wallStart int64, kv ...KV) {
	if r == nil {
		return
	}
	now := r.Now()
	r.events = append(r.events, Event{
		Rank: r.rank, Op: op, Peer: -1,
		SimStart: simStart, SimEnd: simEnd, WallStart: wallStart, WallEnd: now,
		KV: kv,
	})
	r.countOp(op, simEnd-simStart, now-wallStart)
	r.liveMark(simEnd)
}

// WireSpan accumulates one wire-level transport operation (the net
// device's gob encode of an outgoing frame, or decode of an incoming
// one): invocation count, frame bytes, and the wall-duration histogram.
// Unlike the other recording methods it emits no timeline event — wall
// durations are nondeterministic, and the Chrome export must stay a
// pure function of the simulated clocks — so wall-clock-derived values
// are safe by contract here (peachyvet's nondet rule knows this).
func (r *Recorder) WireSpan(op string, bytes, wallNs int64) {
	if r == nil {
		return
	}
	r.ctr.OpCount[op]++
	r.ctr.OpWall[op] += wallNs
	r.ctr.OpBytes[op] += bytes
	h := r.ctr.OpWallHist[op]
	if h == nil {
		h = &Hist{}
		r.ctr.OpWallHist[op] = h
	}
	h.Observe(float64(wallNs))
	if r.live != nil {
		lo := r.liveFor(op)
		lo.count.Add(1)
		lo.wallNs.Add(wallNs)
		lo.bytes.Add(bytes)
		lo.wallHist.observe(float64(wallNs))
		r.liveMark(0)
	}
}

func (r *Recorder) countOp(op string, simDur float64, wallDur int64) {
	r.ctr.OpCount[op]++
	r.ctr.OpSim[op] += simDur
	r.ctr.OpWall[op] += wallDur
	simH := r.ctr.OpSimHist[op]
	if simH == nil {
		simH = &Hist{}
		r.ctr.OpSimHist[op] = simH
	}
	simH.Observe(simDur)
	wallH := r.ctr.OpWallHist[op]
	if wallH == nil {
		wallH = &Hist{}
		r.ctr.OpWallHist[op] = wallH
	}
	wallH.Observe(float64(wallDur))
	if r.live != nil {
		lo := r.liveFor(op)
		lo.count.Add(1)
		lo.addSim(simDur)
		lo.wallNs.Add(wallDur)
		lo.simHist.observe(simDur)
		lo.wallHist.observe(float64(wallDur))
	}
}

// CollectiveOps is the set of cluster collective op names, used by the
// metrics exporter to total "collective invocations" per rank.
var CollectiveOps = map[string]bool{
	"Barrier": true, "Bcast": true, "Reduce": true, "Allreduce": true,
	"Allgather": true, "Gather": true, "Scatter": true, "Alltoall": true,
	"Scan": true,
}
