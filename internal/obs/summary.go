package obs

import (
	"fmt"
	"io"
	"sort"
)

// WriteSummary prints the terminal digest the -obs-summary flag shows:
// the headline totals plus the top imbalance signals — who is busiest
// relative to the mean, who waited longest at barriers, and the fattest
// edge of the rank×rank traffic matrix.
func (t *Trace) WriteSummary(w io.Writer) {
	m := t.Metrics()
	fmt.Fprintf(w, "obs: %d ranks, %d events, %d msgs, %s, sim makespan %s\n",
		m.Ranks, m.Events, m.TotalMsgs, fmtBytes(m.TotalBytes), fmtSeconds(m.SimMakespan))

	if m.BusyImbalance > 0 {
		busiest := 0
		for r, rm := range m.PerRank {
			if rm.SimBusy > m.PerRank[busiest].SimBusy {
				busiest = r
			}
		}
		fmt.Fprintf(w, "  busy time: max/mean = %.2f (rank %d busiest: %s busy of %s total)\n",
			m.BusyImbalance, busiest,
			fmtSeconds(m.PerRank[busiest].SimBusy), fmtSeconds(m.PerRank[busiest].SimTotal))
	}

	waitRank, waitMax := -1, 0.0
	barRank, barMax := -1, 0.0
	for r, rm := range m.PerRank {
		if rm.RecvWaitSim > waitMax {
			waitRank, waitMax = r, rm.RecvWaitSim
		}
		if rm.BarrierWaitSim > barMax {
			barRank, barMax = r, rm.BarrierWaitSim
		}
	}
	if barRank >= 0 {
		fmt.Fprintf(w, "  longest barrier wait: rank %d, %s sim total\n", barRank, fmtSeconds(barMax))
	}
	if waitRank >= 0 {
		fmt.Fprintf(w, "  longest recv wait: rank %d, %s sim total\n", waitRank, fmtSeconds(waitMax))
	}

	src, dst, edge := -1, -1, int64(0)
	for s := range m.TrafficBytes {
		for d, b := range m.TrafficBytes[s] {
			if b > edge {
				src, dst, edge = s, d, b
			}
		}
	}
	if src >= 0 {
		fmt.Fprintf(w, "  fattest edge: rank %d -> rank %d, %s in %d msgs\n",
			src, dst, fmtBytes(edge), m.TrafficMsgs[src][dst])
	}

	// Latency distributions: the heaviest ops by total simulated time,
	// with their histogram quantiles. Wire-level ops (net.tx/net.rx) have
	// no simulated duration, so they report wall-clock quantiles instead.
	ops := append([]OpMetrics(nil), m.Ops...)
	sort.SliceStable(ops, func(i, j int) bool {
		if ops[i].SimS != ops[j].SimS {
			return ops[i].SimS > ops[j].SimS
		}
		return ops[i].WallNs > ops[j].WallNs
	})
	if len(ops) > 4 {
		ops = ops[:4]
	}
	for _, op := range ops {
		switch {
		case len(op.SimHist) > 0:
			fmt.Fprintf(w, "  op %s: n=%d sim p50/p95/p99/max = %s/%s/%s/%s\n",
				op.Op, op.Count,
				fmtSeconds(op.SimP50), fmtSeconds(op.SimP95),
				fmtSeconds(op.SimP99), fmtSeconds(op.SimMax))
		case len(op.WallHist) > 0:
			fmt.Fprintf(w, "  op %s: n=%d (%s) wall p50/p95/p99/max = %s/%s/%s/%s\n",
				op.Op, op.Count, fmtBytes(op.Bytes),
				fmtSeconds(float64(op.WallP50)*1e-9), fmtSeconds(float64(op.WallP95)*1e-9),
				fmtSeconds(float64(op.WallP99)*1e-9), fmtSeconds(float64(op.WallMax)*1e-9))
		}
	}
}

func fmtSeconds(s float64) string {
	switch {
	case s == 0:
		return "0s"
	case s < 1e-3:
		return fmt.Sprintf("%.1fus", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
