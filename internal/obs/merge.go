package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Merging launched runs. Under `peachy launch` every rank is its own
// process and writes its own artifacts (trace.json.rank0 .. rankP-1);
// this file folds them back into the single documents an in-process run
// would have written.
//
// For traces that reconstruction is exact: a per-rank trace already
// names every rank's track (metadata for the whole world travels in
// each artifact) and carries events only on the local rank's track, all
// on the shared simulated clock, serialized by the same encoder
// WriteChrome uses. MergeTraces therefore re-emits the world's metadata
// followed by each rank's events, through that same encoder — and the
// result is byte-identical to the in-process WriteChrome of the same
// program, and byte-identical across repeated launched runs (wall time
// never enters the trace). For metrics, every per-rank field of the
// merged document is taken from the rank that owns it and the run-level
// aggregates are recomputed by the same fold Trace.Metrics uses, so
// histograms merge exactly (fixed bucket boundaries) and quantiles come
// out identical to the in-process run's.
//
// Conservation is cross-checked while merging: what rank s's traffic
// matrix row says it sent to rank d must equal what rank d's counters
// say arrived. LintMerged extends the single-document linter (lint.go)
// to these multi-document invariants; `peachy obs-merge` runs it before
// writing anything.

// chromeDoc is one parsed per-rank trace artifact.
type chromeDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

func parseTraceDoc(data []byte) (*chromeDoc, error) {
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &doc, nil
}

// worldRanks counts the rank tracks a per-rank artifact declares (one
// thread_name metadata event per rank of the world).
func (d *chromeDoc) worldRanks() int {
	n := 0
	for _, ev := range d.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			n++
		}
	}
	return n
}

// ownedTracks returns the set of tids carrying actual events.
func (d *chromeDoc) ownedTracks() map[int]bool {
	owned := map[int]bool{}
	for _, ev := range d.TraceEvents {
		if ev.Ph != "M" {
			owned[ev.Tid] = true
		}
	}
	return owned
}

// MergeTraces folds N per-rank Chrome trace artifacts from one launched
// run (docs[r] is rank r's file, in rank order) into a single trace on
// w: one track per rank on the shared simulated clock. The output is
// byte-identical to what an in-process run of the same program writes,
// and byte-identical across repeated launched runs.
func MergeTraces(w io.Writer, docs [][]byte) error {
	if len(docs) == 0 {
		return errors.New("obs: merge: no trace documents")
	}
	ranks := len(docs)
	parsed := make([]*chromeDoc, ranks)
	for r, data := range docs {
		doc, err := parseTraceDoc(data)
		if err != nil {
			return fmt.Errorf("obs: merge: doc %d: %w", r, err)
		}
		if got := doc.worldRanks(); got != ranks {
			return fmt.Errorf("obs: merge: doc %d declares a %d-rank world but %d documents were given — pass every rank's artifact of one launched run, in rank order", r, got, ranks)
		}
		for tid := range doc.ownedTracks() {
			if tid != r {
				return fmt.Errorf("obs: merge: doc %d carries events on rank %d's track — per-rank artifacts own exactly their rank (is this an in-process trace, or are the files out of rank order?)", r, tid)
			}
		}
		parsed[r] = doc
	}
	enc := newChromeEnc(w)
	enc.meta(ranks)
	for _, doc := range parsed {
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "M" {
				continue
			}
			enc.emit(ev)
		}
	}
	return enc.close()
}

// MergeMetrics folds N per-rank metrics artifacts from one launched run
// (docs[r] is rank r's file, in rank order) into the single metrics
// document the in-process run would produce: per-rank rows and traffic
// rows taken from the rank that owns them, totals and the run-level op
// aggregates (histograms, quantiles) recomputed by the same fold
// Trace.Metrics uses.
func MergeMetrics(docs [][]byte) (*Metrics, error) {
	if len(docs) == 0 {
		return nil, errors.New("obs: merge: no metrics documents")
	}
	ranks := len(docs)
	parsed := make([]*Metrics, ranks)
	for r, data := range docs {
		var m Metrics
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("obs: merge: doc %d: metrics: %w", r, err)
		}
		if m.Ranks != ranks {
			return nil, fmt.Errorf("obs: merge: doc %d declares a %d-rank world but %d documents were given", r, m.Ranks, ranks)
		}
		if len(m.PerRank) != ranks || len(m.TrafficBytes) != ranks || len(m.TrafficMsgs) != ranks {
			return nil, fmt.Errorf("obs: merge: doc %d is not a well-formed %d-rank metrics document (run obs-lint on it)", r, ranks)
		}
		parsed[r] = &m
	}
	out := &Metrics{Ranks: ranks}
	out.TrafficBytes = make([][]int64, ranks)
	out.TrafficMsgs = make([][]int64, ranks)
	busySum, busyMax := 0.0, 0.0
	agg := map[string]*opAgg{}
	var aggOps []string
	for r, m := range parsed {
		rm := m.PerRank[r]
		out.PerRank = append(out.PerRank, rm)
		out.TrafficBytes[r] = append([]int64(nil), m.TrafficBytes[r]...)
		out.TrafficMsgs[r] = append([]int64(nil), m.TrafficMsgs[r]...)
		out.Events += m.Events
		out.TotalMsgs += rm.MsgsSent
		out.TotalBytes += rm.BytesSent
		if rm.SimTotal > out.SimMakespan {
			out.SimMakespan = rm.SimTotal
		}
		busySum += rm.SimBusy
		if rm.SimBusy > busyMax {
			busyMax = rm.SimBusy
		}
		for _, om := range rm.Ops {
			a := agg[om.Op]
			if a == nil {
				a = &opAgg{simH: &Hist{}, wallH: &Hist{}}
				agg[om.Op] = a
				aggOps = append(aggOps, om.Op)
			}
			a.fold(om)
		}
	}
	if busySum > 0 {
		out.BusyImbalance = busyMax / (busySum / float64(ranks))
	}
	sort.Strings(aggOps)
	for _, op := range aggOps {
		out.Ops = append(out.Ops, agg[op].metrics(op))
	}
	return out, nil
}

// Merge folds per-rank artifacts of either kind (docs[r] is rank r's
// file) into the single document on w, sniffing trace vs metrics from
// the first document's shape.
func Merge(w io.Writer, docs [][]byte) error {
	if len(docs) == 0 {
		return errors.New("obs: merge: no documents")
	}
	kind, err := sniffDoc(docs[0])
	if err != nil {
		return fmt.Errorf("obs: merge: doc 0: %w", err)
	}
	if kind == "trace" {
		return MergeTraces(w, docs)
	}
	m, err := MergeMetrics(docs)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// LintMerged validates a set of per-rank artifacts (docs[r] is rank r's
// file) as one coherent launched run: every document must pass its
// single-file lint, declare the same world size (= the number of
// documents), own exactly its rank's data, and — the cross-document
// conservation invariant — what rank s recorded as sent to rank d must
// equal what rank d recorded as received. All findings are reported,
// joined, not just the first.
func LintMerged(docs [][]byte) error {
	if len(docs) == 0 {
		return errors.New("merged: no documents")
	}
	if len(docs) == 1 {
		return LintFile(docs[0])
	}
	kind := ""
	for r, data := range docs {
		k, err := sniffDoc(data)
		if err != nil {
			return fmt.Errorf("merged: doc %d: %w", r, err)
		}
		if kind == "" {
			kind = k
		} else if k != kind {
			return fmt.Errorf("merged: doc %d is a %s document among %s documents — merge traces and metrics separately", r, k, kind)
		}
	}
	if kind == "trace" {
		return lintMergedTraces(docs)
	}
	return lintMergedMetrics(docs)
}

func sniffDoc(data []byte) (string, error) {
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		return "", fmt.Errorf("not a JSON object: %w", err)
	}
	if _, ok := top["traceEvents"]; ok {
		return "trace", nil
	}
	if _, ok := top["per_rank"]; ok {
		return "metrics", nil
	}
	return "", errors.New("unrecognized document: neither \"traceEvents\" nor \"per_rank\" present")
}

// lintMergedTraces cross-checks N per-rank trace artifacts: consistent
// world size, per-rank track ownership, and message conservation (send
// events on rank s's track addressed to d must match recv events on
// rank d's track from s, in both count and bytes).
func lintMergedTraces(docs [][]byte) error {
	var findings []error
	ranks := len(docs)
	parsed := make([]*chromeDoc, ranks)
	for r, data := range docs {
		if err := LintTrace(data); err != nil {
			findings = append(findings, fmt.Errorf("merged: doc %d: %w", r, err))
			continue
		}
		doc, err := parseTraceDoc(data)
		if err != nil {
			findings = append(findings, fmt.Errorf("merged: doc %d: %w", r, err))
			continue
		}
		if got := doc.worldRanks(); got != ranks {
			findings = append(findings, fmt.Errorf("merged: doc %d declares a %d-rank world, want %d (one document per rank)", r, got, ranks))
			continue
		}
		for tid := range doc.ownedTracks() {
			if tid != r {
				findings = append(findings, fmt.Errorf("merged: doc %d carries events on rank %d's track — not a per-rank artifact, or out of rank order", r, tid))
			}
		}
		parsed[r] = doc
	}
	if len(findings) > 0 {
		return errors.Join(findings...)
	}
	// Conservation on the event level: sentMsgs[s][d] from send events
	// must mirror recvMsgs[d][s] from recv events, and likewise bytes.
	sentMsgs := mat(ranks)
	sentBytes := mat(ranks)
	recvMsgs := mat(ranks)
	recvBytes := mat(ranks)
	for r, doc := range parsed {
		for _, ev := range doc.TraceEvents {
			if ev.Ph != "X" || (ev.Name != "send" && ev.Name != "recv") {
				continue
			}
			peer, ok := argInt(ev.Args, "peer")
			if !ok || peer < 0 || peer >= int64(ranks) {
				findings = append(findings, fmt.Errorf("merged: doc %d: %s event without a valid peer rank", r, ev.Name))
				continue
			}
			bytes, _ := argInt(ev.Args, "bytes") // absent means a 0-byte payload
			if ev.Name == "send" {
				sentMsgs[r][peer]++
				sentBytes[r][peer] += bytes
			} else {
				recvMsgs[r][peer]++
				recvBytes[r][peer] += bytes
			}
		}
	}
	for s := 0; s < ranks; s++ {
		for d := 0; d < ranks; d++ {
			if sentMsgs[s][d] != recvMsgs[d][s] || sentBytes[s][d] != recvBytes[d][s] {
				findings = append(findings, fmt.Errorf(
					"merged: conservation violated on edge %d->%d: rank %d traced %d msgs / %d bytes sent but rank %d traced %d msgs / %d bytes received",
					s, d, s, sentMsgs[s][d], sentBytes[s][d], d, recvMsgs[d][s], recvBytes[d][s]))
			}
		}
	}
	return errors.Join(findings...)
}

// lintMergedMetrics cross-checks N per-rank metrics artifacts:
// consistent world size, ownership (doc r's counters and traffic rows
// for any rank but r must be empty), and conservation (the traffic
// matrix columns assembled across documents must equal each rank's
// received totals).
func lintMergedMetrics(docs [][]byte) error {
	var findings []error
	ranks := len(docs)
	parsed := make([]*Metrics, ranks)
	for r, data := range docs {
		if err := LintMetrics(data); err != nil {
			findings = append(findings, fmt.Errorf("merged: doc %d: %w", r, err))
			continue
		}
		var m Metrics
		if err := json.Unmarshal(data, &m); err != nil {
			findings = append(findings, fmt.Errorf("merged: doc %d: %w", r, err))
			continue
		}
		if m.Ranks != ranks {
			findings = append(findings, fmt.Errorf("merged: doc %d declares a %d-rank world, want %d (one document per rank)", r, m.Ranks, ranks))
			continue
		}
		for q, rm := range m.PerRank {
			if q == r {
				continue
			}
			if rm.MsgsSent != 0 || rm.MsgsRecv != 0 || rm.BytesSent != 0 || rm.BytesRecv != 0 || rm.Collectives != 0 {
				findings = append(findings, fmt.Errorf("merged: doc %d carries counters for rank %d — not a per-rank artifact, or out of rank order", r, q))
			}
		}
		for q := range m.TrafficMsgs {
			if q == r {
				continue
			}
			for d := 0; d < ranks; d++ {
				if m.TrafficMsgs[q][d] != 0 || m.TrafficBytes[q][d] != 0 {
					findings = append(findings, fmt.Errorf("merged: doc %d carries traffic row %d — not a per-rank artifact, or out of rank order", r, q))
					break
				}
			}
		}
		parsed[r] = &m
	}
	if len(findings) > 0 {
		return errors.Join(findings...)
	}
	// Conservation: column d of the assembled traffic matrix (everything
	// every rank said it sent to d) must equal rank d's received totals.
	for d := 0; d < ranks; d++ {
		var colMsgs, colBytes int64
		for s := 0; s < ranks; s++ {
			colMsgs += parsed[s].TrafficMsgs[s][d]
			colBytes += parsed[s].TrafficBytes[s][d]
		}
		got := parsed[d].PerRank[d]
		if colMsgs != got.MsgsRecv || colBytes != got.BytesRecv {
			findings = append(findings, fmt.Errorf(
				"merged: conservation violated at rank %d: the world sent it %d msgs / %d bytes but it recorded %d msgs / %d bytes received",
				d, colMsgs, colBytes, got.MsgsRecv, got.BytesRecv))
		}
	}
	return errors.Join(findings...)
}

func mat(n int) [][]int64 {
	m := make([][]int64, n)
	for i := range m {
		m[i] = make([]int64, n)
	}
	return m
}

// argInt reads an integer-valued arg from a parsed Chrome event (JSON
// numbers decode as float64).
func argInt(args map[string]any, key string) (int64, bool) {
	v, ok := args[key]
	if !ok {
		return 0, false
	}
	f, ok := v.(float64)
	if !ok {
		return 0, false
	}
	return int64(f), true
}
