package traffic

import "testing"

func TestOpenValidation(t *testing.T) {
	if _, err := NewOpen(Config{RoadLen: 0, VMax: 1}, 0.5); err == nil {
		t.Error("bad road accepted")
	}
	if _, err := NewOpen(Config{RoadLen: 10, VMax: 1}, 1.5); err == nil {
		t.Error("bad alpha accepted")
	}
}

func TestOpenNoInjectionStaysEmpty(t *testing.T) {
	s, err := NewOpen(Config{RoadLen: 50, VMax: 5, P: 0.1, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(100)
	if s.CarCount() != 0 || s.Throughput() != 0 {
		t.Errorf("cars %d throughput %v on sealed road", s.CarCount(), s.Throughput())
	}
}

func TestOpenConservation(t *testing.T) {
	s, _ := NewOpen(Config{RoadLen: 100, VMax: 5, P: 0.2, Seed: 2}, 0.4)
	s.Run(500)
	if s.entered != s.exited+s.CarCount() {
		t.Errorf("car conservation broken: in %d, out %d, on road %d",
			s.entered, s.exited, s.CarCount())
	}
}

func TestOpenNoCollisions(t *testing.T) {
	s, _ := NewOpen(Config{RoadLen: 80, VMax: 5, P: 0.3, Seed: 3}, 0.8)
	for t2 := 0; t2 < 300; t2++ {
		s.Run(1)
		for p, v := range s.cells {
			if v > s.cfg.VMax {
				t.Fatalf("cell %d velocity %d", p, v)
			}
		}
	}
}

func TestOpenThroughputRisesWithInjection(t *testing.T) {
	measure := func(alpha float64) float64 {
		s, _ := NewOpen(Config{RoadLen: 200, VMax: 5, P: 0.13, Seed: 4}, alpha)
		s.Run(2000)
		return s.Throughput()
	}
	low := measure(0.05)
	mid := measure(0.3)
	if mid <= low {
		t.Errorf("throughput did not rise with injection: %v vs %v", low, mid)
	}
	// Past saturation the road itself limits current: throughput must
	// plateau, not keep rising linearly with alpha.
	high := measure(0.9)
	if high > 2*mid {
		t.Errorf("no saturation: alpha 0.9 -> %v, alpha 0.3 -> %v", high, mid)
	}
}

func TestOpenDensityBounded(t *testing.T) {
	s, _ := NewOpen(Config{RoadLen: 60, VMax: 3, P: 0.5, Seed: 5}, 1.0)
	s.Run(1000)
	if d := s.Density(); d <= 0 || d > 1 {
		t.Errorf("density %v", d)
	}
}
