package traffic

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/prng"
)

// carBlock is one rank's block of cars as gathered to rank 0 at the end
// of a cluster run. Package-level (not function-local) so it can be
// registered with the cluster wire codec for multi-process runs.
type carBlock struct {
	Pos, Vel []int
}

// RunCluster advances the simulation by steps time steps on a simulated
// distributed-memory cluster — the assignment's suggested MPI variation
// (paper §5, "Students could implement a distributed-memory parallel code
// using MPI"). Cars are block-distributed over ranks; each step every
// rank ships its first car's position to its ring predecessor (the halo
// the predecessor needs to compute its last car's gap), computes its
// block, and moves. The shared-sequence fast-forward is used exactly as
// in RunParallel, so the result is bit-identical to RunSerial for every
// rank count.
//
// The receiver's state is updated in place after the cluster run (the
// gather to rank 0 writes back), so fingerprints are directly comparable.
// In a launched multi-process world only the rank-0 process receives the
// gather; other processes keep their pre-run state and should not report
// fingerprints (gate on world.Lead()).
func (s *Sim) RunCluster(world *cluster.World, steps int) error {
	n := len(s.pos)
	if n == 0 {
		s.step += steps
		return nil
	}
	if world.Size() > n {
		return fmt.Errorf("traffic: %d ranks exceed %d cars", world.Size(), n)
	}

	cluster.RegisterWire(carBlock{}, []carBlock{})
	results := make([]carBlock, world.Size())
	startStep := s.step

	err := world.Run(func(c *cluster.Comm) {
		lo, hi := cluster.BlockRange(n, c.Size(), c.Rank())
		size := hi - lo
		pos := append([]int(nil), s.pos[lo:hi]...)
		vel := append([]int(nil), s.vel[lo:hi]...)
		newVel := make([]int, size)

		// Shared-sequence stream, positioned at this block's draws.
		g := prng.NewLCG64(s.cfg.Seed)
		g.Jump(uint64(startStep)*uint64(n) + uint64(lo))
		r := prng.NewRand(g)

		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() - 1 + c.Size()) % c.Size()

		for t := 0; t < steps; t++ {
			// Halo: my first car's position goes to my predecessor;
			// I receive my successor block's first position.
			var nextFirst int
			if c.Size() == 1 {
				nextFirst = pos[0]
			} else {
				cluster.Send(c, prev, 1, pos[0])
				nextFirst = cluster.Recv[int](c, next, 1)
			}

			for i := 0; i < size; i++ {
				v := vel[i]
				if v < s.cfg.VMax {
					v++
				}
				// Gap to the car ahead: local neighbour, or the halo.
				var ahead int
				if i < size-1 {
					ahead = pos[i+1]
				} else {
					ahead = nextFirst
				}
				gap := ahead - pos[i]
				if gap <= 0 {
					gap += s.cfg.RoadLen
				}
				gap--
				if n == 1 {
					gap = s.cfg.RoadLen - 1
				}
				if v > gap {
					v = gap
				}
				if dawdle := r.Bernoulli(s.cfg.P); dawdle && v > 0 {
					v--
				}
				newVel[i] = v
			}
			// Skip the other ranks' draws for this step.
			r.Skip(uint64(n - size))
			// Simultaneous move.
			for i := 0; i < size; i++ {
				vel[i] = newVel[i]
				pos[i] = (pos[i] + vel[i]) % s.cfg.RoadLen
			}
		}

		gathered := cluster.Gather(c, 0, carBlock{Pos: pos, Vel: vel})
		if c.Rank() == 0 {
			copy(results, gathered)
		}
	})
	if err != nil {
		return err
	}

	// Write back the gathered state.
	i := 0
	for _, b := range results {
		copy(s.pos[i:], b.Pos)
		copy(s.vel[i:], b.Vel)
		i += len(b.Pos)
	}
	s.step += steps
	return nil
}
