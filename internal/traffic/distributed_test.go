package traffic

import (
	"testing"

	"repro/internal/cluster"
)

func TestClusterMatchesSerialBitExact(t *testing.T) {
	ref, _ := New(fig3Config())
	ref.RunSerial(100)
	want := ref.Fingerprint()
	for _, p := range []int{1, 2, 3, 5, 8} {
		s, _ := New(fig3Config())
		if err := s.RunCluster(cluster.NewWorld(p), 100); err != nil {
			t.Fatal(err)
		}
		if got := s.Fingerprint(); got != want {
			t.Errorf("P=%d fingerprint %x want %x", p, got, want)
		}
	}
}

func TestClusterResumesAcrossBatches(t *testing.T) {
	// Serial 50 + cluster 50 must equal cluster 100 must equal serial 100.
	ref, _ := New(fig3Config())
	ref.RunSerial(100)

	mixed, _ := New(fig3Config())
	mixed.RunSerial(50)
	if err := mixed.RunCluster(cluster.NewWorld(4), 50); err != nil {
		t.Fatal(err)
	}
	if mixed.Fingerprint() != ref.Fingerprint() {
		t.Error("serial+cluster mix diverges")
	}
}

func TestClusterHaloTrafficPerStep(t *testing.T) {
	// Communication per step is one int per rank (the ring halo), so the
	// byte count should be ~ P * steps * 8 plus the final gather.
	cfg := Config{Cars: 100, RoadLen: 500, VMax: 5, P: 0.2, Seed: 11}
	s, _ := New(cfg)
	w := cluster.NewWorld(4)
	const steps = 50
	if err := s.RunCluster(w, steps); err != nil {
		t.Fatal(err)
	}
	haloBytes := int64(4 * steps * 8)
	gatherBytes := int64(2 * 100 * 8 * 2) // pos+vel, generous
	if w.TotalBytes() > haloBytes+gatherBytes+4096 {
		t.Errorf("cluster traffic too chatty: %d bytes", w.TotalBytes())
	}
}

func TestClusterRejectsTooManyRanks(t *testing.T) {
	s, _ := New(Config{Cars: 2, RoadLen: 10, VMax: 1, P: 0, Seed: 1})
	if err := s.RunCluster(cluster.NewWorld(5), 1); err == nil {
		t.Error("accepted more ranks than cars")
	}
}

func TestClusterSingleCar(t *testing.T) {
	s, _ := New(Config{Cars: 1, RoadLen: 10, VMax: 3, P: 0, Seed: 1})
	if err := s.RunCluster(cluster.NewWorld(1), 10); err != nil {
		t.Fatal(err)
	}
	if s.Velocities()[0] != 3 {
		t.Errorf("lone car velocity %d", s.Velocities()[0])
	}
}

func TestClusterEmptyRoad(t *testing.T) {
	s, _ := New(Config{Cars: 0, RoadLen: 10, VMax: 3, P: 0, Seed: 1})
	if err := s.RunCluster(cluster.NewWorld(2), 5); err != nil {
		t.Fatal(err)
	}
	if s.Step() != 5 {
		t.Errorf("steps %d", s.Step())
	}
}
