package traffic

import "testing"

func TestGridMatchesAgentBitExact(t *testing.T) {
	// The paper's two representations of the same model must evolve
	// identically when fed the same random stream in the same order.
	agent, _ := New(fig3Config())
	grid, err := NewGrid(fig3Config())
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 5; batch++ {
		agent.RunSerial(40)
		grid.RunSerial(40)
		if agent.Fingerprint() != grid.Fingerprint() {
			t.Fatalf("batch %d: grid %x vs agent %x", batch, grid.Fingerprint(), agent.Fingerprint())
		}
	}
}

func TestGridOccupancyMatchesAgent(t *testing.T) {
	agent, _ := New(Config{Cars: 30, RoadLen: 150, VMax: 4, P: 0.3, Seed: 5})
	grid, _ := NewGrid(Config{Cars: 30, RoadLen: 150, VMax: 4, P: 0.3, Seed: 5})
	agent.RunSerial(77)
	grid.RunSerial(77)
	a, g := agent.Occupancy(), grid.Occupancy()
	for x := range a {
		if a[x] != g[x] {
			t.Fatalf("cell %d: agent %d grid %d", x, a[x], g[x])
		}
	}
}

func TestGridCellsConsistent(t *testing.T) {
	grid, _ := NewGrid(Config{Cars: 25, RoadLen: 100, VMax: 5, P: 0.2, Seed: 9})
	grid.RunSerial(120)
	// cells and pos must agree exactly.
	seen := 0
	for x := 0; x < 100; x++ {
		if id := grid.CarAt(x); id >= 0 {
			seen++
			if grid.pos[id] != x {
				t.Fatalf("car %d: cells says %d, pos says %d", id, x, grid.pos[id])
			}
		}
	}
	if seen != 25 {
		t.Errorf("cells hold %d cars", seen)
	}
}

func TestGridValidatesConfig(t *testing.T) {
	if _, err := NewGrid(Config{Cars: 5, RoadLen: 2, VMax: 1}); err == nil {
		t.Error("invalid grid config accepted")
	}
}

func TestGridEmptyRoad(t *testing.T) {
	grid, _ := NewGrid(Config{Cars: 0, RoadLen: 10, VMax: 2, P: 0.1, Seed: 1})
	grid.RunSerial(5)
	if grid.Step() != 5 {
		t.Error("steps not counted")
	}
}
