package traffic

import "fmt"

// GridSim is the grid representation of the Nagel-Schreckenberg model the
// paper contrasts with the agent-based one: "the grid representation
// assigns a value to every point on the circular road, while the
// agent-based implementation stores the positions and velocities of the N
// cars" (§5). Cells hold -1 (empty) or the occupying car's id; car
// velocities live in a side table so the two implementations can be
// cross-validated car-for-car.
//
// To make the random streams comparable, GridSim draws for cars in car-id
// order — the same order as the agent-based serial loop — so a GridSim
// and a Sim with equal configs evolve bit-identically.
type GridSim struct {
	cfg   Config
	cells []int // cell -> car id or -1
	pos   []int // car id -> cell
	vel   []int // car id -> velocity
	step  int
}

// NewGrid creates a grid simulation with the same initial layout as New.
func NewGrid(cfg Config) (*GridSim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &GridSim{cfg: cfg,
		cells: make([]int, cfg.RoadLen),
		pos:   make([]int, cfg.Cars),
		vel:   make([]int, cfg.Cars),
	}
	for i := range g.cells {
		g.cells[i] = -1
	}
	for i := 0; i < cfg.Cars; i++ {
		p := i * cfg.RoadLen / cfg.Cars
		g.pos[i] = p
		g.cells[p] = i
	}
	return g, nil
}

// Step returns the number of completed time steps.
func (g *GridSim) Step() int { return g.step }

// CarAt returns the car id occupying cell x, or -1.
func (g *GridSim) CarAt(x int) int { return g.cells[x] }

// gapFromCell scans forward from cell p to the next occupied cell.
func (g *GridSim) gapFromCell(p int) int {
	L := g.cfg.RoadLen
	for d := 1; d < L; d++ {
		if g.cells[(p+d)%L] >= 0 {
			return d - 1
		}
	}
	return L - 1
}

// RunSerial advances the grid simulation, drawing random numbers in car-id
// order to stay aligned with the agent-based implementation.
func (g *GridSim) RunSerial(steps int) {
	n := g.cfg.Cars
	if n == 0 {
		g.step += steps
		return
	}
	r := newStepStream(g.cfg.Seed, g.step, n)
	newVel := make([]int, n)
	for t := 0; t < steps; t++ {
		for id := 0; id < n; id++ {
			v := g.vel[id]
			if v < g.cfg.VMax {
				v++
			}
			if gap := g.gapFromCell(g.pos[id]); v > gap {
				v = gap
			}
			if dawdle := r.Bernoulli(g.cfg.P); dawdle && v > 0 {
				v--
			}
			newVel[id] = v
		}
		// Simultaneous move: clear and re-mark cells.
		for id := 0; id < n; id++ {
			g.cells[g.pos[id]] = -1
		}
		for id := 0; id < n; id++ {
			g.vel[id] = newVel[id]
			g.pos[id] = (g.pos[id] + g.vel[id]) % g.cfg.RoadLen
			if g.cells[g.pos[id]] != -1 {
				panic(fmt.Sprintf("traffic: grid collision at cell %d", g.pos[id]))
			}
			g.cells[g.pos[id]] = id
		}
		g.step++
	}
}

// Fingerprint matches Sim.Fingerprint's encoding so the two
// representations can be compared directly.
func (g *GridSim) Fingerprint() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for i := range g.pos {
		mix(uint64(g.pos[i]))
		mix(uint64(g.vel[i]))
	}
	mix(uint64(g.step))
	return h
}

// Occupancy returns the space row in the same encoding as Sim.Occupancy.
func (g *GridSim) Occupancy() []int {
	row := make([]int, g.cfg.RoadLen)
	for id, p := range g.pos {
		row[p] = g.vel[id] + 1
	}
	return row
}
