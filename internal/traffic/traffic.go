// Package traffic implements the Nagel-Schreckenberg stochastic traffic
// model assignment (paper §5): a circular one-lane road where each car,
// every time step, accelerates toward vmax, brakes to avoid the car ahead,
// randomly dawdles with probability p, and moves. The randomness is what
// produces spontaneous traffic jams (Figure 3); without it the flow is
// laminar.
//
// The package's centrepiece is the assignment's reproducibility
// requirement: the parallel simulation must emit *exactly* the serial
// output for any worker count. The serial code draws one random number per
// car per time step, in car order; parallel workers own contiguous car
// blocks of a single shared PRNG sequence and fast-forward (prng.Jump)
// over the draws belonging to other workers' cars. The contrasting
// PerWorkerSeeds mode — each worker with its own seed, the strategy the
// assignment warns about — is provided as an ablation.
package traffic

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/prng"
)

// RNGMode selects the parallel random-number strategy.
type RNGMode int

const (
	// SharedSequence fast-forwards one shared PRNG sequence so parallel
	// output is bit-identical to serial output (the assignment's goal).
	SharedSequence RNGMode = iota
	// PerWorkerSeeds gives every worker an independent stream: fast but
	// the output depends on the worker count (the cautionary ablation).
	PerWorkerSeeds
	// NoRandom disables dawdling entirely (p treated as 0): the
	// "without randomness, jams do not occur" ablation of Figure 3.
	NoRandom
)

// String names the mode.
func (m RNGMode) String() string {
	switch m {
	case SharedSequence:
		return "shared-sequence"
	case PerWorkerSeeds:
		return "per-worker-seeds"
	case NoRandom:
		return "no-random"
	}
	return "unknown"
}

// Config describes a simulation instance. Figure 3 uses 200 cars on a
// road of length 1000 with p = 0.13 and vmax = 5.
type Config struct {
	Cars    int
	RoadLen int
	VMax    int
	P       float64
	Seed    uint64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cars < 0 || c.RoadLen < 1 || c.Cars > c.RoadLen {
		return fmt.Errorf("traffic: need 0 <= cars (%d) <= road length (%d >= 1)", c.Cars, c.RoadLen)
	}
	if c.VMax < 0 {
		return fmt.Errorf("traffic: negative vmax")
	}
	if c.P < 0 || c.P > 1 {
		return fmt.Errorf("traffic: p = %v outside [0, 1]", c.P)
	}
	return nil
}

// Sim is an agent-based simulation state: positions and velocities of the
// N cars, ordered so that car i+1 is the next car ahead of car i (with
// wraparound), an invariant the update rule preserves.
type Sim struct {
	cfg  Config
	pos  []int
	vel  []int
	step int

	// newVel is scratch for the two-phase parallel update.
	newVel []int
}

// New creates a simulation with cars evenly spaced and at rest, as in the
// assignment's starter code.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg,
		pos:    make([]int, cfg.Cars),
		vel:    make([]int, cfg.Cars),
		newVel: make([]int, cfg.Cars),
	}
	for i := 0; i < cfg.Cars; i++ {
		s.pos[i] = i * cfg.RoadLen / cfg.Cars
	}
	return s, nil
}

// Config returns the simulation parameters.
func (s *Sim) Config() Config { return s.cfg }

// Step returns the number of completed time steps.
func (s *Sim) Step() int { return s.step }

// Positions returns the car positions (aliases internal state).
func (s *Sim) Positions() []int { return s.pos }

// Velocities returns the car velocities (aliases internal state).
func (s *Sim) Velocities() []int { return s.vel }

// gap returns the number of empty cells between car i and the car ahead.
func (s *Sim) gap(i int) int {
	n := len(s.pos)
	if n == 1 {
		return s.cfg.RoadLen - 1
	}
	ahead := s.pos[(i+1)%n]
	g := ahead - s.pos[i]
	if g <= 0 {
		g += s.cfg.RoadLen
	}
	return g - 1
}

// advance applies the four NaSch rules to car i, drawing exactly one
// random number from r (even in deterministic sub-cases, to keep the
// shared sequence aligned). It returns the car's new velocity.
func (s *Sim) advance(i int, r *prng.Rand, randomize bool) int {
	v := s.vel[i]
	// 1. Accelerate.
	if v < s.cfg.VMax {
		v++
	}
	// 2. Brake to the gap.
	if g := s.gap(i); v > g {
		v = g
	}
	// 3. Dawdle. The draw happens unconditionally so that the number of
	// draws per car per step is exactly one, which the fast-forward
	// arithmetic relies on.
	if dawdle := r.Bernoulli(s.cfg.P); randomize && dawdle && v > 0 {
		v--
	}
	return v
}

// newStepStream returns the shared sequence positioned at the first draw
// of time step `step` for an n-car simulation.
func newStepStream(seed uint64, step, n int) *prng.Rand {
	g := prng.NewLCG64(seed)
	g.Jump(uint64(step) * uint64(n))
	return prng.NewRand(g)
}

// RunSerial advances the simulation by steps time steps with the
// reference serial loop: one shared PRNG, cars in index order.
func (s *Sim) RunSerial(steps int) {
	r := newStepStream(s.cfg.Seed, s.step, len(s.pos))
	for t := 0; t < steps; t++ {
		for i := range s.pos {
			s.newVel[i] = s.advance(i, r, true)
		}
		s.move()
	}
}

// RunDeterministic advances without randomness (the Figure 3 ablation);
// the PRNG is still consumed to keep step counting comparable.
func (s *Sim) RunDeterministic(steps int) {
	r := newStepStream(s.cfg.Seed, s.step, len(s.pos))
	for t := 0; t < steps; t++ {
		for i := range s.pos {
			s.newVel[i] = s.advance(i, r, false)
		}
		s.move()
	}
}

// move applies the new velocities and advances positions simultaneously.
func (s *Sim) move() {
	for i := range s.pos {
		s.vel[i] = s.newVel[i]
		s.pos[i] = (s.pos[i] + s.vel[i]) % s.cfg.RoadLen
	}
	s.step++
}

// RunParallel advances the simulation by steps time steps using workers
// goroutines under the given RNG mode. In SharedSequence mode the result
// is bit-identical to RunSerial for every worker count; each worker's
// stream starts at its block offset within the shared sequence and jumps
// over the other workers' draws between steps.
func (s *Sim) RunParallel(steps, workers int, mode RNGMode) {
	n := len(s.pos)
	if n == 0 {
		s.step += steps
		return
	}
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	if workers > n {
		workers = n
	}

	// Per-worker block bounds.
	los := make([]int, workers)
	his := make([]int, workers)
	for w := 0; w < workers; w++ {
		los[w] = w * n / workers
		his[w] = (w + 1) * n / workers
	}

	// Per-worker streams.
	streams := make([]*prng.Rand, workers)
	switch mode {
	case PerWorkerSeeds:
		// Independent seeds: irreproducible across worker counts.
		sm := prng.SplitMix64{State: s.cfg.Seed}
		for w := range streams {
			streams[w] = prng.New(sm.Next() + uint64(s.step))
		}
	default:
		// Shared sequence: worker w starts at draw step*N + lo_w.
		base := uint64(s.step) * uint64(n)
		for w := range streams {
			g := prng.NewLCG64(s.cfg.Seed)
			g.Jump(base + uint64(los[w]))
			streams[w] = prng.NewRand(g)
		}
	}

	randomize := mode != NoRandom
	for t := 0; t < steps; t++ {
		// Phase 1: velocities from the frozen positions.
		par.ForRange(n, workers, par.Static, 0, func(lo, hi, w int) {
			r := streams[w]
			for i := lo; i < hi; i++ {
				s.newVel[i] = s.advance(i, r, randomize)
			}
			if mode != PerWorkerSeeds {
				// Fast-forward over the other workers' draws for
				// this step: total N draws, we consumed hi-lo.
				r.Skip(uint64(n - (hi - lo)))
			}
		})
		// Phase 2: simultaneous move (the ForRange return is the barrier).
		s.move()
	}
}

// Fingerprint hashes the full state; equal fingerprints mean bit-identical
// simulations.
func (s *Sim) Fingerprint() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for i := range s.pos {
		mix(uint64(s.pos[i]))
		mix(uint64(s.vel[i]))
	}
	mix(uint64(s.step))
	return h
}

// MeanVelocity returns the average car velocity (the flow measure used in
// the fundamental-diagram experiment).
func (s *Sim) MeanVelocity() float64 {
	if len(s.vel) == 0 {
		return 0
	}
	sum := 0
	for _, v := range s.vel {
		sum += v
	}
	return float64(sum) / float64(len(s.vel))
}

// Flow returns cars*meanVelocity/roadLen: the throughput per cell per
// step.
func (s *Sim) Flow() float64 {
	return s.MeanVelocity() * float64(len(s.pos)) / float64(s.cfg.RoadLen)
}

// Occupancy returns a length-RoadLen slice marking occupied cells with the
// car's velocity+1 (0 = empty); one row of the space-time diagram.
func (s *Sim) Occupancy() []int {
	row := make([]int, s.cfg.RoadLen)
	for i, p := range s.pos {
		row[p] = s.vel[i] + 1
	}
	return row
}

// SpaceTime runs the simulation for steps steps (serial, randomized
// unless mode is NoRandom) and records the occupancy after every step —
// the raster behind Figure 3.
func SpaceTime(cfg Config, steps int, mode RNGMode) ([][]int, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	rows := make([][]int, 0, steps+1)
	rows = append(rows, s.Occupancy())
	for t := 0; t < steps; t++ {
		if mode == NoRandom {
			s.RunDeterministic(1)
		} else {
			s.RunSerial(1)
		}
		rows = append(rows, s.Occupancy())
	}
	return rows, nil
}
