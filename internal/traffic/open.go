package traffic

import (
	"fmt"

	"repro/internal/prng"
)

// OpenSim is the "change boundary conditions" variation the assignment
// lists (paper §5): instead of a circular road, an open road segment where
// cars are injected at the left end with probability alpha per step (when
// the entry cell is free) and leave the system past the right end. Open
// boundaries produce boundary-induced phase transitions (free flow,
// congested, and maximum-current phases) that the ring cannot show.
type OpenSim struct {
	cfg   Config
	alpha float64 // injection probability
	cells []int   // -1 empty, else velocity of the car in that cell
	step  int
	rng   *prng.Rand

	// Counters for flow measurement.
	entered, exited int
}

// NewOpen creates an open-road simulation. cfg.Cars is ignored (the road
// starts empty); alpha is the per-step injection probability at cell 0.
func NewOpen(cfg Config, alpha float64) (*OpenSim, error) {
	probe := cfg
	probe.Cars = 0
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("traffic: alpha %v outside [0, 1]", alpha)
	}
	s := &OpenSim{cfg: cfg, alpha: alpha, cells: make([]int, cfg.RoadLen), rng: prng.New(cfg.Seed)}
	for i := range s.cells {
		s.cells[i] = -1
	}
	return s, nil
}

// Step returns completed time steps.
func (s *OpenSim) Step() int { return s.step }

// CarCount returns the number of cars currently on the road.
func (s *OpenSim) CarCount() int {
	n := 0
	for _, v := range s.cells {
		if v >= 0 {
			n++
		}
	}
	return n
}

// Throughput returns cars that exited per step so far (0 before any step).
func (s *OpenSim) Throughput() float64 {
	if s.step == 0 {
		return 0
	}
	return float64(s.exited) / float64(s.step)
}

// gapAhead returns empty cells in front of position p (to road end).
func (s *OpenSim) gapAhead(p int) int {
	for d := 1; p+d < s.cfg.RoadLen; d++ {
		if s.cells[p+d] >= 0 {
			return d - 1
		}
	}
	return s.cfg.RoadLen - p - 1 + s.cfg.VMax // free run off the end
}

// Run advances the open road by steps time steps (serial; the randomness
// here has no reproducibility constraint to teach, so draws are taken as
// needed).
func (s *OpenSim) Run(steps int) {
	L := s.cfg.RoadLen
	for t := 0; t < steps; t++ {
		// Update cars right-to-left so each sees pre-step neighbours
		// ahead (equivalent to the synchronous update on an open road).
		newCells := make([]int, L)
		for i := range newCells {
			newCells[i] = -1
		}
		for p := L - 1; p >= 0; p-- {
			v := s.cells[p]
			if v < 0 {
				continue
			}
			if v < s.cfg.VMax {
				v++
			}
			if g := s.gapAhead(p); v > g {
				v = g
			}
			if s.rng.Bernoulli(s.cfg.P) && v > 0 {
				v--
			}
			np := p + v
			if np >= L {
				s.exited++
				continue
			}
			newCells[np] = v
		}
		// Injection at the left boundary.
		if newCells[0] < 0 && s.rng.Bernoulli(s.alpha) {
			newCells[0] = 0
			s.entered++
		}
		s.cells = newCells
		s.step++
	}
}

// Density returns cars per cell.
func (s *OpenSim) Density() float64 {
	return float64(s.CarCount()) / float64(s.cfg.RoadLen)
}
