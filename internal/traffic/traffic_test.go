package traffic

import (
	"sort"
	"testing"
	"testing/quick"
)

func fig3Config() Config {
	return Config{Cars: 200, RoadLen: 1000, VMax: 5, P: 0.13, Seed: 42}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Cars: -1, RoadLen: 10, VMax: 1},
		{Cars: 11, RoadLen: 10, VMax: 1},
		{Cars: 1, RoadLen: 0, VMax: 1},
		{Cars: 1, RoadLen: 10, VMax: -1},
		{Cars: 1, RoadLen: 10, VMax: 1, P: 1.5},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	if fig3Config().Validate() != nil {
		t.Error("fig3 config rejected")
	}
}

func TestNoCollisionsInvariant(t *testing.T) {
	s, err := New(fig3Config())
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 100; step++ {
		s.RunSerial(1)
		seen := map[int]bool{}
		for _, p := range s.Positions() {
			if p < 0 || p >= 1000 {
				t.Fatalf("position %d out of road", p)
			}
			if seen[p] {
				t.Fatalf("collision at cell %d, step %d", p, step)
			}
			seen[p] = true
		}
	}
}

func TestCarOrderPreserved(t *testing.T) {
	// Relative order on the ring must never change; with car 0's position
	// unwrapped, positions must stay strictly increasing modulo rotation.
	s, _ := New(Config{Cars: 50, RoadLen: 300, VMax: 5, P: 0.3, Seed: 7})
	s.RunSerial(200)
	pos := s.Positions()
	// Unwrap: find the minimal position's index; from there the sequence
	// must be strictly increasing.
	minIdx := 0
	for i, p := range pos {
		if p < pos[minIdx] {
			minIdx = i
		}
	}
	prev := -1
	for k := 0; k < len(pos); k++ {
		p := pos[(minIdx+k)%len(pos)]
		if p <= prev {
			t.Fatalf("order violated at offset %d: %d after %d", k, p, prev)
		}
		prev = p
	}
}

func TestVelocityBounds(t *testing.T) {
	s, _ := New(fig3Config())
	s.RunSerial(150)
	for i, v := range s.Velocities() {
		if v < 0 || v > 5 {
			t.Fatalf("car %d velocity %d", i, v)
		}
	}
}

func TestReproducibleAcrossWorkerCounts(t *testing.T) {
	// C5: the paper's core requirement — identical output for any number
	// of workers under the shared-sequence strategy.
	ref, _ := New(fig3Config())
	ref.RunSerial(100)
	want := ref.Fingerprint()
	for _, workers := range []int{1, 2, 3, 4, 7, 16} {
		s, _ := New(fig3Config())
		s.RunParallel(100, workers, SharedSequence)
		if got := s.Fingerprint(); got != want {
			t.Errorf("workers=%d fingerprint %x, want %x", workers, got, want)
		}
	}
}

func TestReproducibleAcrossStepBatches(t *testing.T) {
	// Running 100 steps at once must equal 10 batches of 10 (the jump
	// offset bookkeeping across calls).
	a, _ := New(fig3Config())
	a.RunParallel(100, 4, SharedSequence)
	b, _ := New(fig3Config())
	for i := 0; i < 10; i++ {
		b.RunParallel(10, 4, SharedSequence)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("batched parallel run diverges")
	}
	c, _ := New(fig3Config())
	c.RunSerial(50)
	c.RunParallel(50, 3, SharedSequence)
	if c.Fingerprint() != a.Fingerprint() {
		t.Error("mixed serial/parallel run diverges")
	}
}

func TestPerWorkerSeedsDivergeAcrossWorkerCounts(t *testing.T) {
	// The ablation: per-worker seeding gives different trajectories for
	// different worker counts (that is exactly why the assignment
	// forbids it).
	a, _ := New(fig3Config())
	a.RunParallel(50, 2, PerWorkerSeeds)
	b, _ := New(fig3Config())
	b.RunParallel(50, 4, PerWorkerSeeds)
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("per-worker seeds unexpectedly reproducible")
	}
}

func TestJamsOnlyWithRandomness(t *testing.T) {
	// Figure 3's caption: jams (stopped/slow cars) appear only with
	// randomness. Deterministic flow at density 0.2 settles to uniform
	// velocity 4 (gap = 4 < vmax).
	det, _ := New(fig3Config())
	det.RunDeterministic(300)
	vels := det.Velocities()
	for i, v := range vels {
		if v != 4 {
			t.Fatalf("deterministic car %d velocity %d, want uniform 4", i, v)
		}
	}
	rnd, _ := New(fig3Config())
	rnd.RunSerial(300)
	slow := 0
	for _, v := range rnd.Velocities() {
		if v <= 1 {
			slow++
		}
	}
	if slow == 0 {
		t.Error("randomized run shows no slow cars (no jams)")
	}
}

func TestSpaceTimeShape(t *testing.T) {
	rows, err := SpaceTime(Config{Cars: 20, RoadLen: 100, VMax: 5, P: 0.2, Seed: 1}, 50, SharedSequence)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 51 {
		t.Fatalf("rows %d", len(rows))
	}
	for ti, row := range rows {
		if len(row) != 100 {
			t.Fatalf("row %d width %d", ti, len(row))
		}
		cars := 0
		for _, c := range row {
			if c > 0 {
				cars++
			}
		}
		if cars != 20 {
			t.Fatalf("row %d has %d cars", ti, cars)
		}
	}
	if _, err := SpaceTime(Config{Cars: 5, RoadLen: 2, VMax: 1}, 1, SharedSequence); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestFlowAndMeanVelocity(t *testing.T) {
	s, _ := New(Config{Cars: 10, RoadLen: 100, VMax: 5, P: 0, Seed: 1})
	s.RunSerial(20) // p=0: deterministic full speed
	if mv := s.MeanVelocity(); mv != 5 {
		t.Errorf("mean velocity %v at low density, p=0", mv)
	}
	if f := s.Flow(); f != 0.5 {
		t.Errorf("flow %v", f)
	}
	empty, _ := New(Config{Cars: 0, RoadLen: 10, VMax: 5})
	if empty.MeanVelocity() != 0 {
		t.Error("empty road mean velocity")
	}
}

func TestFundamentalDiagramShape(t *testing.T) {
	// Flow rises with density at low density and falls at high density
	// (the NaSch fundamental diagram).
	flow := func(cars int) float64 {
		s, _ := New(Config{Cars: cars, RoadLen: 400, VMax: 5, P: 0.13, Seed: 5})
		s.RunSerial(300)
		// Average flow over a window.
		sum := 0.0
		for i := 0; i < 50; i++ {
			s.RunSerial(1)
			sum += s.Flow()
		}
		return sum / 50
	}
	low := flow(20)   // density 0.05
	mid := flow(80)   // density 0.2
	high := flow(320) // density 0.8
	if !(mid > low*1.5) {
		t.Errorf("flow not rising: low=%v mid=%v", low, mid)
	}
	if !(high < mid/1.5) {
		t.Errorf("flow not falling: mid=%v high=%v", mid, high)
	}
}

func TestSingleCarNeverBrakes(t *testing.T) {
	s, _ := New(Config{Cars: 1, RoadLen: 10, VMax: 3, P: 0, Seed: 1})
	s.RunSerial(10)
	if s.Velocities()[0] != 3 {
		t.Errorf("lone car velocity %d", s.Velocities()[0])
	}
}

func TestFullRoadGridlock(t *testing.T) {
	s, _ := New(Config{Cars: 10, RoadLen: 10, VMax: 5, P: 0.5, Seed: 3})
	before := append([]int(nil), s.Positions()...)
	s.RunSerial(20)
	for i, p := range s.Positions() {
		if p != before[i] {
			t.Fatal("cars moved on a full road")
		}
	}
}

func TestParallelInvariantsProperty(t *testing.T) {
	f := func(seed uint64, workersRaw, stepsRaw uint8) bool {
		workers := int(workersRaw%8) + 1
		steps := int(stepsRaw % 50)
		s, err := New(Config{Cars: 30, RoadLen: 120, VMax: 4, P: 0.25, Seed: seed})
		if err != nil {
			return false
		}
		s.RunParallel(steps, workers, SharedSequence)
		// Invariants: unique positions, bounded velocities.
		pos := append([]int(nil), s.Positions()...)
		sort.Ints(pos)
		for i := 1; i < len(pos); i++ {
			if pos[i] == pos[i-1] {
				return false
			}
		}
		for _, v := range s.Velocities() {
			if v < 0 || v > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestModeNames(t *testing.T) {
	if SharedSequence.String() != "shared-sequence" ||
		PerWorkerSeeds.String() != "per-worker-seeds" ||
		NoRandom.String() != "no-random" ||
		RNGMode(9).String() != "unknown" {
		t.Error("mode names")
	}
}

func BenchmarkStep(b *testing.B) {
	for _, mode := range []RNGMode{SharedSequence, PerWorkerSeeds} {
		b.Run(mode.String(), func(b *testing.B) {
			s, _ := New(fig3Config())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.RunParallel(1, 4, mode)
			}
		})
	}
	b.Run("serial", func(b *testing.B) {
		s, _ := New(fig3Config())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.RunSerial(1)
		}
	})
}
