package cluster

import (
	"testing"
)

// slotLive reports whether any slot in the bucket's backing array outside
// the live window [head, len) still holds a non-zero message. Delivered
// payloads must not be retained past delivery, or the mailbox pins every
// message ever sent until the world ends.
func deadSlotsClean(b *bucket) bool {
	all := b.items[:cap(b.items)]
	for i := range all {
		if i >= b.head && i < len(b.items) {
			continue
		}
		m := all[i]
		if m.payload != nil || m.src != 0 || m.tag != 0 || m.bytes != 0 || m.seq != 0 {
			return false
		}
	}
	return true
}

func mkMsg(tag int) message {
	return message{src: 0, tag: tag, payload: []float64{float64(tag)}, bytes: 8}
}

// TestBucketZeroesVacatedSlots drives every removal path of the per-source
// FIFO bucket — head pop, middle removal, drain-to-empty and the push-time
// compaction — and checks that no dead slot keeps a payload alive.
func TestBucketZeroesVacatedSlots(t *testing.T) {
	t.Run("head pop", func(t *testing.T) {
		var b bucket
		for i := 0; i < 3; i++ {
			b.push(mkMsg(i + 1))
		}
		b.removeAt(b.head)
		if b.head != 1 || len(b.items) != 3 {
			t.Fatalf("after head pop: head=%d len=%d", b.head, len(b.items))
		}
		if !deadSlotsClean(&b) {
			t.Error("head pop retained the delivered message")
		}
	})

	t.Run("middle removal", func(t *testing.T) {
		var b bucket
		for i := 0; i < 3; i++ {
			b.push(mkMsg(i + 1))
		}
		b.removeAt(1) // out-of-order match: shift the tail down
		if len(b.items) != 2 {
			t.Fatalf("after middle removal: len=%d", len(b.items))
		}
		if got := b.items[1].tag; got != 3 {
			t.Errorf("tail message lost: tag=%d, want 3", got)
		}
		if !deadSlotsClean(&b) {
			t.Error("middle removal left a stale copy in the vacated tail slot")
		}
	})

	t.Run("drain resets", func(t *testing.T) {
		var b bucket
		for i := 0; i < 4; i++ {
			b.push(mkMsg(i + 1))
		}
		for !b.empty() {
			b.removeAt(b.head)
		}
		if b.head != 0 || len(b.items) != 0 {
			t.Fatalf("drained bucket not reset: head=%d len=%d", b.head, len(b.items))
		}
		if !deadSlotsClean(&b) {
			t.Error("drained bucket retained payloads in its backing array")
		}
	})

	t.Run("push compaction", func(t *testing.T) {
		var b bucket
		const n = 40
		for i := 0; i < n; i++ {
			b.push(mkMsg(i + 1))
		}
		// Pop more than half from the head so the next push reclaims the
		// dead prefix (head > 16 && head*2 >= len).
		for i := 0; i < 24; i++ {
			b.removeAt(b.head)
		}
		before := cap(b.items)
		b.push(mkMsg(n + 1))
		if b.head != 0 {
			t.Fatalf("push did not compact: head=%d", b.head)
		}
		if cap(b.items) != before {
			t.Fatalf("compaction reallocated: cap %d -> %d", before, cap(b.items))
		}
		if len(b.items) != n-24+1 {
			t.Fatalf("after compaction: len=%d, want %d", len(b.items), n-24+1)
		}
		// Live messages must survive in order...
		for i, m := range b.items {
			if want := 25 + i; m.tag != want {
				t.Fatalf("item %d: tag=%d, want %d", i, m.tag, want)
			}
		}
		// ...and the copied-from tail slots must be zeroed.
		if !deadSlotsClean(&b) {
			t.Error("compaction left stale message copies beyond the live window")
		}
	})
}

// TestMailboxZeroesAfterDelivery checks the same invariant one level up:
// after a mailbox hands out a message, no bucket retains its payload.
func TestMailboxZeroesAfterDelivery(t *testing.T) {
	m := newMailbox(3)
	m.put(message{src: 1, tag: 7, payload: []float64{1, 2}, bytes: 16})
	m.put(message{src: 2, tag: 7, payload: []float64{3}, bytes: 8})
	m.put(message{src: 1, tag: 9, payload: []float64{4}, bytes: 8})

	m.mu.Lock()
	defer m.mu.Unlock()
	if msg, ok := m.match(1, 9); !ok || msg.payload.([]float64)[0] != 4 {
		t.Fatalf("match(1,9) = %+v, %v", msg, ok)
	}
	if msg, ok := m.match(2, 7); !ok || msg.payload.([]float64)[0] != 3 {
		t.Fatalf("match(2,7) = %+v, %v", msg, ok)
	}
	if m.nPending != 1 {
		t.Fatalf("nPending=%d, want 1", m.nPending)
	}
	for s := range m.bySrc {
		b := &m.bySrc[s]
		for i := 0; i < cap(b.items); i++ {
			if i >= b.head && i < len(b.items) {
				continue
			}
			if b.items[:cap(b.items)][i].payload != nil {
				t.Errorf("src %d: delivered payload retained in slot %d", s, i)
			}
		}
	}
}

// TestAnySourceSeqOrder: an AnySource match must take the earliest-arrived
// message across all source buckets (global seq order), not whichever
// bucket happens to be scanned first — the indexed layout must preserve
// the flat queue's wildcard semantics.
func TestAnySourceSeqOrder(t *testing.T) {
	m := newMailbox(4)
	// Interleave arrivals across sources; seq stamps are assigned by put.
	arrivals := []struct{ src, tag int }{
		{2, 5}, {0, 5}, {3, 5}, {0, 5}, {1, 5},
	}
	for i, a := range arrivals {
		m.put(message{src: a.src, tag: a.tag, payload: i})
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for want := 0; want < len(arrivals); want++ {
		msg, ok := m.match(AnySource, 5)
		if !ok {
			t.Fatalf("match %d: no message", want)
		}
		if got := msg.payload.(int); got != want {
			t.Fatalf("wildcard match %d returned arrival %d (src %d); want global arrival order", want, got, msg.src)
		}
	}
	if m.nPending != 0 {
		t.Fatalf("nPending=%d after drain", m.nPending)
	}
}

// TestAnySourceSkipsBlockedHeadTag: within one bucket only the earliest
// entry can match a given wildcard scan (FIFO per source), but a
// non-matching tag at a bucket's head must not hide a matching message
// behind it from a concrete-tag receive.
func TestConcreteTagScansPastHead(t *testing.T) {
	m := newMailbox(2)
	m.put(message{src: 1, tag: 3, payload: "first"})
	m.put(message{src: 1, tag: 8, payload: "second"})
	m.mu.Lock()
	defer m.mu.Unlock()
	msg, ok := m.match(1, 8)
	if !ok || msg.payload.(string) != "second" {
		t.Fatalf("match(1,8) = %+v, %v; want the message behind the head", msg, ok)
	}
	if msg2, ok := m.match(1, 3); !ok || msg2.payload.(string) != "first" {
		t.Fatalf("head message lost after out-of-order match: %+v, %v", msg2, ok)
	}
}
