package cluster

import (
	"strings"
	"testing"
)

type deepClone struct {
	Name string
	Vals []float64
	Tags map[string]int
}

func (d deepClone) CloneWire() any {
	c := deepClone{
		Name: d.Name,
		Vals: append([]float64(nil), d.Vals...),
		Tags: make(map[string]int, len(d.Tags)),
	}
	for k, v := range d.Tags {
		c.Tags[k] = v
	}
	return c
}

type shallowClone struct {
	Vals []float64
}

//peachyvet:allow wiresafe — this shallow CloneWire is the negative test input.
func (s shallowClone) CloneWire() any { return shallowClone{Vals: s.Vals} }

type selfClone struct {
	Vals []float64
}

//peachyvet:allow wiresafe — returning the receiver is the negative test input.
func (s *selfClone) CloneWire() any { return s }

type nestedShallow struct {
	Inner *shallowClone
}

func (n nestedShallow) CloneWire() any {
	inner := shallowClone{Vals: append([]float64(nil), n.Inner.Vals...)}
	return nestedShallow{Inner: &inner}
}

func TestVerifyClonerAcceptsDeepCopy(t *testing.T) {
	d := deepClone{Name: "d", Vals: []float64{1, 2}, Tags: map[string]int{"a": 1}}
	if err := VerifyCloner(d); err != nil {
		t.Errorf("deep clone rejected: %v", err)
	}
	if err := VerifyCloner(nestedShallow{Inner: &shallowClone{Vals: []float64{3}}}); err != nil {
		t.Errorf("deep nested clone rejected: %v", err)
	}
}

func TestVerifyClonerRejectsSharedMemory(t *testing.T) {
	err := VerifyCloner(shallowClone{Vals: []float64{1, 2}})
	if err == nil {
		t.Fatal("shallow slice clone accepted")
	}
	if !strings.Contains(err.Error(), "Vals") {
		t.Errorf("error does not name the aliasing path: %v", err)
	}
	if err := VerifyCloner(&selfClone{Vals: []float64{1}}); err == nil {
		t.Fatal("receiver-returning clone accepted")
	}
}

// The round-trip must also catch mutation visibility directly: writing
// the clone must not change the original. This is the property the
// collectives' snapshot path depends on.
func TestVerifyClonerMutationIndependence(t *testing.T) {
	d := deepClone{Vals: []float64{1, 2}, Tags: map[string]int{"a": 1}}
	c := d.CloneWire().(deepClone)
	c.Vals[0] = 99
	c.Tags["a"] = 99
	if d.Vals[0] == 99 || d.Tags["a"] == 99 {
		t.Fatal("clone mutation visible through the original")
	}
}
