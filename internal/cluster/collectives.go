package cluster

import (
	"fmt"

	"repro/internal/obs"
)

// Collective matching: every rank must call the same sequence of
// collectives on its Comm (the usual MPI requirement). Each call consumes
// one tag from a reserved negative tag space so that collectives never
// collide with user point-to-point traffic or with each other.
const collTagBase = -(1 << 30)

func (c *Comm) nextCollTag() int {
	t := collTagBase - c.collSeq
	c.collSeq++
	return t
}

// Algorithm selection (see docs/substrates.md for the full table):
//
//	Barrier    dissemination (any P), ~alpha*ceil(log2 P) critical path
//	Bcast      binomial tree (any P)
//	Reduce     binomial tree (any P)
//	Allreduce  recursive doubling when P is a power of two and the payload
//	           is snapshotable (scalars, strings, the common slice types,
//	           Cloner); binomial reduce+bcast otherwise
//	Allgather  recursive doubling when P is a power of two; linear
//	           gather + tree bcast otherwise
//	Gather     binomial tree (O(log P) latency at the root; forwards
//	           leaf bytes up to log P times, the classic tradeoff)
//	Scatter    binomial tree, the mirror of Gather
//	Alltoall   pairwise exchange (XOR partners for power-of-two P, ring
//	           offsets otherwise); same messages and bytes as the
//	           baseline, but deterministic partners instead of AnySource
//	Scan       linear chain, as in a textbook MPI_Scan
//
// Options.BaselineCollectives forces the reference algorithms everywhere.
// Selection depends only on world-level state (P and the option), never
// on payload sizes: sizes are rank-divergent (each rank sees only its own
// contribution), and an algorithm choice the ranks disagree on changes
// who receives from whom — a wire mismatch. MPI implementations switch on
// message size only because every rank passes the same count; this
// runtime's payloads carry no such contract.

func (c *Comm) baselineColl() bool { return c.world.opts.BaselineCollectives }

// fallbackInstant records that an optimized collective silently took its
// reference algorithm on a shape the fast path does not cover (non-pow2
// world, unsnapshotable payload). Without the marker a P=6 benchmark
// reads like recursive doubling when it actually ran the linear
// baseline; with a trace attached the downgrade is visible per call.
// The emitted instant is "coll.fallback" with the collective in the op
// kv (1 = Allreduce, 2 = Allgather) and the reason kv (1 = non-pow2
// world, 2 = payload not snapshotable). Never emitted under
// Options.BaselineCollectives: that is an explicit request, not a
// silent downgrade.
func (c *Comm) fallbackInstant(op, reason int64) {
	if c.rec != nil {
		c.rec.Instant("coll.fallback", -1, 0, 0, c.clock,
			obs.KV{K: "op", V: op}, obs.KV{K: "reason", V: reason})
	}
}

// fallbackInstant op/reason codes (obs.KV values are int64).
const (
	fallbackAllreduce = int64(1)
	fallbackAllgather = int64(2)

	fallbackNonPow2 = int64(1)
	fallbackNonSnap = int64(2)
)

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Cloner lets custom payload types opt into the recursive-doubling
// Allreduce, which must snapshot the accumulator before each exchange so
// a rank never mutates a buffer its partner is still reading.
type Cloner interface {
	// CloneWire returns a copy that shares no mutable state with the
	// receiver. The returned value must have the payload's own type.
	CloneWire() any
}

// clonePayload snapshots v for the recursive-doubling exchange. The bool
// reports whether v's type is snapshotable at all; value types (scalars,
// strings, struct{}) are their own snapshot.
func clonePayload[T any](v T) (T, bool) {
	switch x := any(v).(type) {
	case nil, bool, int8, uint8, int16, uint16, int32, uint32, int, uint,
		int64, uint64, uintptr, float32, float64, complex64, complex128,
		string, struct{}:
		return v, true
	case []float64:
		return any(append([]float64(nil), x...)).(T), true
	case []float32:
		return any(append([]float32(nil), x...)).(T), true
	case []int:
		return any(append([]int(nil), x...)).(T), true
	case []int32:
		return any(append([]int32(nil), x...)).(T), true
	case []int64:
		return any(append([]int64(nil), x...)).(T), true
	case []uint64:
		return any(append([]uint64(nil), x...)).(T), true
	case []byte:
		return any(append([]byte(nil), x...)).(T), true
	case []bool:
		return any(append([]bool(nil), x...)).(T), true
	case Cloner:
		return x.CloneWire().(T), true
	default:
		return v, false
	}
}

// segmentBytes models the wire size of a batch of values, element by
// element, so tree Gather/Scatter account exactly for what they forward.
func segmentBytes[T any](seg []T) int {
	n := 0
	for i := range seg {
		n += byteSize(seg[i])
	}
	return n
}

// Barrier blocks until every rank has entered it. It is a dissemination
// barrier: ceil(log2 P) rounds in which rank r signals r+2^k and waits
// for r-2^k, so its simulated cost is ~alpha*ceil(log2 P) — half the
// depth of the baseline reduce+bcast tree.
func (c *Comm) Barrier() {
	c.beginColl("Barrier", -1)
	defer c.endColl()
	tag := c.nextCollTag()
	if c.baselineColl() {
		reduceTree(c, 0, tag, struct{}{}, func(a, _ struct{}) struct{} { return a })
		bcastTree(c, 0, tag, struct{}{})
		return
	}
	size := c.Size()
	for off := 1; off < size; off <<= 1 {
		c.sendRaw((c.rank+off)%size, tag, struct{}{}, 0)
		c.recvRaw((c.rank-off+size)%size, tag)
	}
}

// Bcast distributes root's value to every rank along a binomial tree and
// returns it. Non-root ranks pass their (ignored) local v.
func Bcast[T any](c *Comm, root int, v T) T {
	c.beginColl("Bcast", root)
	defer c.endColl()
	return bcastTree(c, root, c.nextCollTag(), v)
}

// Reduce folds every rank's contribution with op along a binomial tree.
// The reduced value is returned on root; other ranks get their partial
// (which callers should ignore). op must be associative and commutative;
// it may mutate and return its first argument.
func Reduce[T any](c *Comm, root int, v T, op func(a, b T) T) T {
	c.beginColl("Reduce", root)
	defer c.endColl()
	return reduceTree(c, root, c.nextCollTag(), v, op)
}

// Allreduce folds every rank's contribution with op and returns the fully
// reduced value on every rank. For power-of-two worlds with snapshotable
// payloads it runs recursive doubling (log2 P rounds, half the baseline's
// critical path); otherwise it falls back to reduce-to-0 plus broadcast.
// op must be associative and commutative (exactly commutative for
// bit-identical results on every rank); it may mutate and return its
// first argument.
func Allreduce[T any](c *Comm, v T, op func(a, b T) T) T {
	c.beginColl("Allreduce", -1)
	defer c.endColl()
	tag := c.nextCollTag()
	size := c.Size()
	if !c.baselineColl() && size > 1 {
		if !isPow2(size) {
			c.fallbackInstant(fallbackAllreduce, fallbackNonPow2)
		} else if acc, ok := clonePayload(v); ok {
			// The gate's clone doubles as the private accumulator: ops
			// commonly mutate and return their first operand, and the
			// payload-reuse contract promises the caller's argument stays
			// read-only and unaliased by the result.
			return rdAllreduce(c, tag, acc, op)
		} else {
			c.fallbackInstant(fallbackAllreduce, fallbackNonSnap)
		}
	}
	r := reduceTree(c, 0, tag, v, op)
	if c.rank == 0 {
		// The reduced value may alias the caller's payload (reduction ops
		// commonly fold in place and return their first operand), so the
		// root broadcasts a snapshot. Together with the recursive-doubling
		// path, which only ever sends clones, this makes the Allreduce
		// payload argument reusable as soon as the call returns — the
		// contract the analyzer's ownership and hotalloc rules rely on.
		if snap, ok := clonePayload(r); ok {
			r = snap
		}
	}
	return bcastTree(c, 0, tag, r)
}

// rdAllreduce is the recursive-doubling exchange: in round k every rank
// swaps accumulators with rank^2^k and folds. Each rank sends a snapshot
// of its accumulator, never the live value, because op may mutate its
// first argument in place while the partner is still reading what it
// received — the in-process, zero-copy analogue of MPI's private buffers.
// rdAllreduce runs recursive doubling. acc must already be a private
// snapshot of the caller's payload (Allreduce's snapshotability gate
// provides it), so the fold never touches the caller's buffer.
func rdAllreduce[T any](c *Comm, tag int, acc T, op func(a, b T) T) T {
	for mask := 1; mask < c.Size(); mask <<= 1 {
		partner := c.rank ^ mask
		snap, ok := clonePayload(acc)
		if !ok {
			panic(fmt.Sprintf("cluster: Allreduce payload became unsnapshotable mid-collective (%T)", acc))
		}
		c.sendRaw(partner, tag, snap, byteSize(snap))
		msg := c.recvRaw(partner, tag)
		acc = op(acc, msg.payload.(T))
	}
	return acc
}

// Gather collects one value from every rank. On root it returns a slice
// indexed by rank; on other ranks it returns nil. Contributions ride a
// binomial tree: the root absorbs O(log P) aggregated messages instead of
// P-1 serial ones.
func Gather[T any](c *Comm, root int, v T) []T {
	c.beginColl("Gather", root)
	defer c.endColl()
	tag := c.nextCollTag()
	if c.baselineColl() || c.Size() == 1 {
		return gatherLinear(c, root, tag, v)
	}
	return gatherTree(c, root, tag, v)
}

func gatherLinear[T any](c *Comm, root, tag int, v T) []T {
	if c.rank != root {
		c.sendRaw(root, tag, v, byteSize(v))
		return nil
	}
	out := make([]T, c.Size())
	out[root] = v
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		msg := c.recvRaw(r, tag)
		out[r] = msg.payload.(T)
	}
	return out
}

// gatherTree runs the binomial gather on root-relative ranks: each
// subtree leader accumulates the contiguous segment of relative ranks it
// covers and forwards it to its parent in one message.
func gatherTree[T any](c *Comm, root, tag int, v T) []T {
	size := c.Size()
	rel := (c.rank - root + size) % size
	seg := make([]T, 1, 2)
	seg[0] = v // seg[i] holds relative rank rel+i's value
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask != 0 {
			dst := ((rel &^ mask) + root) % size
			c.sendRaw(dst, tag, seg, segmentBytes(seg))
			return nil
		}
		srcRel := rel | mask
		if srcRel < size {
			msg := c.recvRaw((srcRel+root)%size, tag)
			seg = append(seg, msg.payload.([]T)...)
		}
	}
	out := make([]T, size)
	for i, x := range seg {
		out[(i+root)%size] = x
	}
	return out
}

// Allgather collects one value from every rank and returns the full
// rank-indexed slice on every rank. Power-of-two worlds run recursive
// doubling (log2 P rounds of block exchanges); otherwise it is a linear
// gather to rank 0 followed by a tree broadcast.
func Allgather[T any](c *Comm, v T) []T {
	c.beginColl("Allgather", -1)
	defer c.endColl()
	tag := c.nextCollTag()
	size := c.Size()
	if c.baselineColl() || size == 1 || !isPow2(size) {
		if !c.baselineColl() && size > 1 {
			c.fallbackInstant(fallbackAllgather, fallbackNonPow2)
		}
		return allgatherLinear(c, tag, v)
	}
	out := make([]T, size)
	out[c.rank] = v
	for mask := 1; mask < size; mask <<= 1 {
		partner := c.rank ^ mask
		myBase := c.rank &^ (mask - 1)
		seg := out[myBase : myBase+mask]
		// The partner only reads this window, and this rank never writes
		// inside its own (growing) block again, so sharing the live slice
		// is race-free.
		c.sendRaw(partner, tag, seg, segmentBytes(seg))
		msg := c.recvRaw(partner, tag)
		copy(out[partner&^(mask-1):], msg.payload.([]T))
	}
	return out
}

func allgatherLinear[T any](c *Comm, tag int, v T) []T {
	var all []T
	if c.rank != 0 {
		c.sendRaw(0, tag, v, byteSize(v))
	} else {
		all = make([]T, c.Size())
		all[0] = v
		for r := 1; r < c.Size(); r++ {
			msg := c.recvRaw(r, tag)
			all[r] = msg.payload.(T)
		}
	}
	return bcastTree(c, 0, tag, all)
}

// Scatter distributes parts[r] from root to rank r and returns this rank's
// part. Only root's parts argument is consulted; it must have length Size.
// Parts ride a binomial tree: the root hands off halves instead of P-1
// serial sends.
func Scatter[T any](c *Comm, root int, parts []T) T {
	c.beginColl("Scatter", root)
	defer c.endColl()
	tag := c.nextCollTag()
	size := c.Size()
	if c.rank == root && len(parts) != size {
		panic(fmt.Sprintf("cluster: Scatter needs %d parts, got %d", size, len(parts)))
	}
	if size == 1 {
		return parts[root]
	}
	if c.baselineColl() {
		return scatterLinear(c, root, tag, parts)
	}
	return scatterTree(c, root, tag, parts)
}

func scatterLinear[T any](c *Comm, root, tag int, parts []T) T {
	if c.rank == root {
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			c.sendRaw(r, tag, parts[r], byteSize(parts[r]))
		}
		return parts[root]
	}
	msg := c.recvRaw(root, tag)
	return msg.payload.(T)
}

// scatterTree is the binomial mirror of gatherTree: the root peels off
// the top half of the (root-relative) parts for its highest child, that
// child recurses, and so on; each rank ends holding the segment that
// starts with its own part.
func scatterTree[T any](c *Comm, root, tag int, parts []T) T {
	size := c.Size()
	rel := (c.rank - root + size) % size
	var seg []T // covers relative ranks [rel, rel+len(seg))
	mask := 1
	if rel == 0 {
		seg = make([]T, size)
		for i := range seg {
			seg[i] = parts[(i+root)%size]
		}
		for mask < size {
			mask <<= 1
		}
	} else {
		for mask < size {
			if rel&mask != 0 {
				parent := ((rel &^ mask) + root) % size
				msg := c.recvRaw(parent, tag)
				seg = msg.payload.([]T)
				break
			}
			mask <<= 1
		}
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < size && mask < len(seg) {
			end := 2 * mask
			if end > len(seg) {
				end = len(seg)
			}
			sub := seg[mask:end]
			c.sendRaw((rel+mask+root)%size, tag, sub, segmentBytes(sub))
			seg = seg[:mask]
		}
	}
	return seg[0]
}

// Alltoall performs a total exchange: parts[i] is delivered to rank i, and
// the returned slice holds what every rank sent to this one, indexed by
// source rank. The exchange is pairwise — round i pairs this rank with a
// deterministic partner — so every receive names its source and the
// mailbox matches it in O(1), instead of the baseline's AnySource scans.
// Message and byte counts are identical to the baseline.
func Alltoall[T any](c *Comm, parts []T) []T {
	size := c.Size()
	if len(parts) != size {
		panic(fmt.Sprintf("cluster: Alltoall needs %d parts, got %d", size, len(parts)))
	}
	c.beginColl("Alltoall", -1)
	defer c.endColl()
	tag := c.nextCollTag()
	out := make([]T, size)
	out[c.rank] = parts[c.rank]
	switch {
	case c.baselineColl():
		for r := 0; r < size; r++ {
			if r == c.rank {
				continue
			}
			c.sendRaw(r, tag, parts[r], byteSize(parts[r]))
		}
		for i := 0; i < size-1; i++ {
			msg := c.recvRaw(AnySource, tag)
			out[msg.src] = msg.payload.(T)
		}
	case isPow2(size):
		for i := 1; i < size; i++ {
			partner := c.rank ^ i
			c.sendRaw(partner, tag, parts[partner], byteSize(parts[partner]))
			msg := c.recvRaw(partner, tag)
			out[partner] = msg.payload.(T)
		}
	default:
		for i := 1; i < size; i++ {
			dst := (c.rank + i) % size
			src := (c.rank - i + size) % size
			c.sendRaw(dst, tag, parts[dst], byteSize(parts[dst]))
			msg := c.recvRaw(src, tag)
			out[src] = msg.payload.(T)
		}
	}
	return out
}

// Scan computes the inclusive prefix reduction: rank r receives
// op(v_0, ..., v_r). The chain is linear, as in a textbook MPI_Scan.
func Scan[T any](c *Comm, v T, op func(a, b T) T) T {
	c.beginColl("Scan", -1)
	defer c.endColl()
	tag := c.nextCollTag()
	acc := v
	if c.rank > 0 {
		msg := c.recvRaw(c.rank-1, tag)
		acc = op(msg.payload.(T), v)
	}
	if c.rank < c.Size()-1 {
		c.sendRaw(c.rank+1, tag, acc, byteSize(acc))
	}
	return acc
}

// bcastTree is a binomial-tree broadcast rooted at root using tag.
func bcastTree[T any](c *Comm, root, tag int, v T) T {
	size := c.Size()
	rel := (c.rank - root + size) % size
	mask := 1
	for mask < size {
		if rel&mask != 0 {
			parent := ((rel &^ mask) + root) % size
			msg := c.recvRaw(parent, tag)
			v = msg.payload.(T)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < size {
			dst := (rel + mask + root) % size
			c.sendRaw(dst, tag, v, byteSize(v))
		}
	}
	return v
}

// reduceTree is a binomial-tree reduction to root using tag.
func reduceTree[T any](c *Comm, root, tag int, v T, op func(a, b T) T) T {
	size := c.Size()
	rel := (c.rank - root + size) % size
	acc := v
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask == 0 {
			srcRel := rel | mask
			if srcRel < size {
				msg := c.recvRaw((srcRel+root)%size, tag)
				acc = op(acc, msg.payload.(T))
			}
		} else {
			dst := ((rel &^ mask) + root) % size
			c.sendRaw(dst, tag, acc, byteSize(acc))
			break
		}
	}
	return acc
}

// SumFloat64s is a ready-made op for Allreduce/Reduce over []float64: it
// adds b into a elementwise and returns a.
func SumFloat64s(a, b []float64) []float64 {
	for i := range a {
		a[i] += b[i]
	}
	return a
}

// SumInt64s adds b into a elementwise and returns a.
func SumInt64s(a, b []int64) []int64 {
	for i := range a {
		a[i] += b[i]
	}
	return a
}

// SplitEven cuts xs into parts contiguous chunks whose sizes differ by at
// most one (the first len(xs)%parts chunks get the extra element). It is
// the canonical block decomposition used throughout the assignments.
func SplitEven[T any](xs []T, parts int) [][]T {
	out := make([][]T, parts)
	n := len(xs)
	q, r := n/parts, n%parts
	lo := 0
	for p := 0; p < parts; p++ {
		sz := q
		if p < r {
			sz++
		}
		out[p] = xs[lo : lo+sz]
		lo += sz
	}
	return out
}

// BlockRange returns the [lo, hi) index range that block decomposition
// assigns to rank r of size parts over n items.
func BlockRange(n, parts, r int) (lo, hi int) {
	q, rem := n/parts, n%parts
	lo = r*q + min(r, rem)
	hi = lo + q
	if r < rem {
		hi++
	}
	return lo, hi
}
