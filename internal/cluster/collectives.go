package cluster

import "fmt"

// Collective matching: every rank must call the same sequence of
// collectives on its Comm (the usual MPI requirement). Each call consumes
// one tag from a reserved negative tag space so that collectives never
// collide with user point-to-point traffic or with each other.
const collTagBase = -(1 << 30)

func (c *Comm) nextCollTag() int {
	t := collTagBase - c.collSeq
	c.collSeq++
	return t
}

// Barrier blocks until every rank has entered it. It is built from a
// binomial gather followed by a binomial broadcast of empty messages, so
// its simulated cost is ~2*alpha*log2(P).
func (c *Comm) Barrier() {
	c.beginColl("Barrier")
	defer c.endColl()
	tag := c.nextCollTag()
	reduceTree(c, 0, tag, struct{}{}, func(a, _ struct{}) struct{} { return a })
	bcastTree(c, 0, tag, struct{}{})
}

// Bcast distributes root's value to every rank along a binomial tree and
// returns it. Non-root ranks pass their (ignored) local v.
func Bcast[T any](c *Comm, root int, v T) T {
	c.beginColl("Bcast")
	defer c.endColl()
	return bcastTree(c, root, c.nextCollTag(), v)
}

// Reduce folds every rank's contribution with op along a binomial tree.
// The reduced value is returned on root; other ranks get their partial
// (which callers should ignore). op must be associative and commutative;
// it may mutate and return its first argument.
func Reduce[T any](c *Comm, root int, v T, op func(a, b T) T) T {
	c.beginColl("Reduce")
	defer c.endColl()
	return reduceTree(c, root, c.nextCollTag(), v, op)
}

// Allreduce is Reduce to rank 0 followed by Bcast: every rank receives the
// fully reduced value.
func Allreduce[T any](c *Comm, v T, op func(a, b T) T) T {
	c.beginColl("Allreduce")
	defer c.endColl()
	tag := c.nextCollTag()
	r := reduceTree(c, 0, tag, v, op)
	return bcastTree(c, 0, tag, r)
}

// Gather collects one value from every rank. On root it returns a slice
// indexed by rank; on other ranks it returns nil.
func Gather[T any](c *Comm, root int, v T) []T {
	c.beginColl("Gather")
	defer c.endColl()
	tag := c.nextCollTag()
	if c.rank != root {
		c.sendRaw(root, tag, v, byteSize(v))
		return nil
	}
	out := make([]T, c.Size())
	out[root] = v
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		msg := c.recvRaw(r, tag)
		out[r] = msg.payload.(T)
	}
	return out
}

// Allgather collects one value from every rank and returns the full
// rank-indexed slice on every rank (Gather to 0 + Bcast).
func Allgather[T any](c *Comm, v T) []T {
	c.beginColl("Allgather")
	defer c.endColl()
	tag := c.nextCollTag()
	var all []T
	if c.rank != 0 {
		c.sendRaw(0, tag, v, byteSize(v))
	} else {
		all = make([]T, c.Size())
		all[0] = v
		for r := 1; r < c.Size(); r++ {
			msg := c.recvRaw(r, tag)
			all[r] = msg.payload.(T)
		}
	}
	return bcastTree(c, 0, tag, all)
}

// Scatter distributes parts[r] from root to rank r and returns this rank's
// part. Only root's parts argument is consulted; it must have length Size.
func Scatter[T any](c *Comm, root int, parts []T) T {
	c.beginColl("Scatter")
	defer c.endColl()
	tag := c.nextCollTag()
	if c.rank == root {
		if len(parts) != c.Size() {
			panic(fmt.Sprintf("cluster: Scatter needs %d parts, got %d", c.Size(), len(parts)))
		}
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			c.sendRaw(r, tag, parts[r], byteSize(parts[r]))
		}
		return parts[root]
	}
	msg := c.recvRaw(root, tag)
	return msg.payload.(T)
}

// Alltoall performs a total exchange: parts[i] is delivered to rank i, and
// the returned slice holds what every rank sent to this one, indexed by
// source rank.
func Alltoall[T any](c *Comm, parts []T) []T {
	if len(parts) != c.Size() {
		panic(fmt.Sprintf("cluster: Alltoall needs %d parts, got %d", c.Size(), len(parts)))
	}
	c.beginColl("Alltoall")
	defer c.endColl()
	tag := c.nextCollTag()
	out := make([]T, c.Size())
	out[c.rank] = parts[c.rank]
	for r := 0; r < c.Size(); r++ {
		if r == c.rank {
			continue
		}
		c.sendRaw(r, tag, parts[r], byteSize(parts[r]))
	}
	for i := 0; i < c.Size()-1; i++ {
		msg := c.recvRaw(AnySource, tag)
		out[msg.src] = msg.payload.(T)
	}
	return out
}

// Scan computes the inclusive prefix reduction: rank r receives
// op(v_0, ..., v_r). The chain is linear, as in a textbook MPI_Scan.
func Scan[T any](c *Comm, v T, op func(a, b T) T) T {
	c.beginColl("Scan")
	defer c.endColl()
	tag := c.nextCollTag()
	acc := v
	if c.rank > 0 {
		msg := c.recvRaw(c.rank-1, tag)
		acc = op(msg.payload.(T), v)
	}
	if c.rank < c.Size()-1 {
		c.sendRaw(c.rank+1, tag, acc, byteSize(acc))
	}
	return acc
}

// bcastTree is a binomial-tree broadcast rooted at root using tag.
func bcastTree[T any](c *Comm, root, tag int, v T) T {
	size := c.Size()
	rel := (c.rank - root + size) % size
	mask := 1
	for mask < size {
		if rel&mask != 0 {
			parent := ((rel &^ mask) + root) % size
			msg := c.recvRaw(parent, tag)
			v = msg.payload.(T)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < size {
			dst := (rel + mask + root) % size
			c.sendRaw(dst, tag, v, byteSize(v))
		}
	}
	return v
}

// reduceTree is a binomial-tree reduction to root using tag.
func reduceTree[T any](c *Comm, root, tag int, v T, op func(a, b T) T) T {
	size := c.Size()
	rel := (c.rank - root + size) % size
	acc := v
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask == 0 {
			srcRel := rel | mask
			if srcRel < size {
				msg := c.recvRaw((srcRel+root)%size, tag)
				acc = op(acc, msg.payload.(T))
			}
		} else {
			dst := ((rel &^ mask) + root) % size
			c.sendRaw(dst, tag, acc, byteSize(acc))
			break
		}
	}
	return acc
}

// SumFloat64s is a ready-made op for Allreduce/Reduce over []float64: it
// adds b into a elementwise and returns a.
func SumFloat64s(a, b []float64) []float64 {
	for i := range a {
		a[i] += b[i]
	}
	return a
}

// SumInt64s adds b into a elementwise and returns a.
func SumInt64s(a, b []int64) []int64 {
	for i := range a {
		a[i] += b[i]
	}
	return a
}

// SplitEven cuts xs into parts contiguous chunks whose sizes differ by at
// most one (the first len(xs)%parts chunks get the extra element). It is
// the canonical block decomposition used throughout the assignments.
func SplitEven[T any](xs []T, parts int) [][]T {
	out := make([][]T, parts)
	n := len(xs)
	q, r := n/parts, n%parts
	lo := 0
	for p := 0; p < parts; p++ {
		sz := q
		if p < r {
			sz++
		}
		out[p] = xs[lo : lo+sz]
		lo += sz
	}
	return out
}

// BlockRange returns the [lo, hi) index range that block decomposition
// assigns to rank r of size parts over n items.
func BlockRange(n, parts, r int) (lo, hi int) {
	q, rem := n/parts, n%parts
	lo = r*q + min(r, rem)
	hi = lo + q
	if r < rem {
		hi++
	}
	return lo, hi
}
