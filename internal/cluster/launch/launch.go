// Package launch spawns a multi-process cluster world: P copies of one
// exhibit binary, each holding a single rank on the net device, wired
// together over loopback sockets — the `mpirun` of this repository.
// MatlabMPI's launcher did the same job over a shared filesystem; here
// the rank/address map travels in the PEACHY_* environment contract that
// cluster.OpenWorld reads back.
package launch

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Config describes one launch.
type Config struct {
	// NP is the number of ranks (= processes).
	NP int
	// Network is "unix" (default; socket files in a private temp dir, no
	// port races) or "tcp" (loopback ports, the shape that generalizes to
	// real machines).
	Network string
	// Argv is the program and its arguments, run identically per rank.
	Argv []string
	// Prefix tags every output line with "[rank r] ". Rank 0's lines pass
	// through untagged so an exhibit's result output stays comparable to
	// its in-process run.
	Prefix bool
	// ObsListen, when set, gives every rank a live observability endpoint
	// (obs: /metrics, /healthz, pprof): rank r serves on this base address
	// with any non-zero port offset by r, handed down via PEACHY_OBS_LISTEN
	// so the exhibit's own flags need not be touched.
	ObsListen string
	// Stdout/Stderr receive the children's (possibly prefixed) output.
	// Defaults: os.Stdout / os.Stderr.
	Stdout, Stderr io.Writer
}

// Run spawns cfg.NP processes and blocks until all exit. It returns an
// error naming the failing ranks if any exit non-zero. When one rank
// fails, its peers see the connection drop and fail fast with the
// runtime's dead-peer diagnosis; any rank still alive well after the
// first failure is killed so a wedged world cannot hang the launcher.
func Run(cfg Config) error {
	if cfg.NP < 1 {
		return fmt.Errorf("launch: need at least 1 rank, got %d", cfg.NP)
	}
	if len(cfg.Argv) == 0 {
		return fmt.Errorf("launch: no program given")
	}
	network := cfg.Network
	if network == "" {
		network = "unix"
	}
	stdout, stderr := cfg.Stdout, cfg.Stderr
	if stdout == nil {
		stdout = os.Stdout
	}
	if stderr == nil {
		stderr = os.Stderr
	}

	addrs, cleanup, err := planAddrs(network, cfg.NP)
	if err != nil {
		return err
	}
	defer cleanup()

	procs := make([]*exec.Cmd, cfg.NP)
	drained := make([]*sync.WaitGroup, cfg.NP)
	var outMu sync.Mutex // one writer at a time keeps lines intact
	for r := 0; r < cfg.NP; r++ {
		cmd := exec.Command(cfg.Argv[0], cfg.Argv[1:]...)
		cmd.Env = append(os.Environ(),
			fmt.Sprintf("PEACHY_WORLD=%d", cfg.NP),
			fmt.Sprintf("PEACHY_RANK=%d", r),
			"PEACHY_NET="+network,
			"PEACHY_ADDRS="+strings.Join(addrs, ","),
		)
		if cfg.ObsListen != "" {
			cmd.Env = append(cmd.Env, "PEACHY_OBS_LISTEN="+obs.OffsetAddr(cfg.ObsListen, r))
		}
		prefix := ""
		if cfg.Prefix && r > 0 {
			prefix = fmt.Sprintf("[rank %d] ", r)
		}
		op, err := cmd.StdoutPipe()
		if err != nil {
			return fmt.Errorf("launch: rank %d stdout: %w", r, err)
		}
		ep, err := cmd.StderrPipe()
		if err != nil {
			return fmt.Errorf("launch: rank %d stderr: %w", r, err)
		}
		if err := cmd.Start(); err != nil {
			for _, p := range procs[:r] {
				p.Process.Kill()
			}
			return fmt.Errorf("launch: starting rank %d: %w", r, err)
		}
		procs[r] = cmd
		wg := &sync.WaitGroup{}
		wg.Add(2)
		go copyLines(wg, &outMu, stdout, op, prefix)
		go copyLines(wg, &outMu, stderr, ep, prefix)
		drained[r] = wg
	}

	// Reap ranks as they exit; once the first failure lands, give the
	// rest a grace period to notice the dead peer, then kill stragglers.
	errs := make([]error, cfg.NP)
	done := make(chan int, cfg.NP)
	for r, cmd := range procs {
		go func(r int, cmd *exec.Cmd) {
			// Wait closes the stdout/stderr pipes, so the line copiers
			// must see EOF first or a rank's tail output is truncated.
			drained[r].Wait()
			errs[r] = cmd.Wait()
			done <- r
		}(r, cmd)
	}
	var failed []int
	var killTimer *time.Timer
	killC := make(chan struct{})
	alive := make([]bool, cfg.NP)
	for i := range alive {
		alive[i] = true
	}
	for exited := 0; exited < cfg.NP; exited++ {
		select {
		case r := <-done:
			alive[r] = false
			if errs[r] != nil {
				failed = append(failed, r)
				if killTimer == nil {
					killTimer = time.AfterFunc(15*time.Second, func() { close(killC) })
				}
			}
		case <-killC:
			for r, cmd := range procs {
				if alive[r] {
					cmd.Process.Kill()
				}
			}
			killC = nil // chan receive on nil blocks: kill only once
			exited--    // this select consumed no exit
		}
	}
	if killTimer != nil {
		killTimer.Stop()
	}
	if len(failed) > 0 {
		parts := make([]string, len(failed))
		for i, r := range failed {
			parts[i] = fmt.Sprintf("rank %d: %v", r, errs[r])
		}
		return fmt.Errorf("launch: %d of %d ranks failed: %s", len(failed), cfg.NP, strings.Join(parts, "; "))
	}
	return nil
}

// planAddrs picks one rendezvous address per rank. Unix sockets get
// fresh paths in a private temp dir — collision- and race-free. TCP gets
// loopback ports discovered by binding ephemeral listeners and closing
// them; the tiny window before the child rebinds is the standard
// launcher compromise and is fine on a loopback smoke, but unix is the
// default for a reason.
func planAddrs(network string, np int) (addrs []string, cleanup func(), err error) {
	cleanup = func() {}
	addrs = make([]string, np)
	switch network {
	case "unix":
		dir, err := os.MkdirTemp("", "peachy-launch-")
		if err != nil {
			return nil, cleanup, fmt.Errorf("launch: temp dir: %w", err)
		}
		for r := range addrs {
			addrs[r] = filepath.Join(dir, fmt.Sprintf("rank%d.sock", r))
		}
		return addrs, func() { os.RemoveAll(dir) }, nil
	case "tcp":
		for r := range addrs {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, cleanup, fmt.Errorf("launch: probing free port: %w", err)
			}
			addrs[r] = ln.Addr().String()
			ln.Close()
		}
		return addrs, cleanup, nil
	default:
		return nil, cleanup, fmt.Errorf("launch: unsupported network %q (want unix or tcp)", network)
	}
}

// copyLines forwards one child stream line by line, optionally prefixed,
// holding mu per line so concurrent ranks cannot interleave mid-line.
func copyLines(wg *sync.WaitGroup, mu *sync.Mutex, dst io.Writer, src io.Reader, prefix string) {
	defer wg.Done()
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		mu.Lock()
		fmt.Fprintf(dst, "%s%s\n", prefix, sc.Text())
		mu.Unlock()
	}
}
