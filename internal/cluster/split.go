package cluster

import (
	"fmt"
	"sort"
)

// Split partitions the ranks of c into disjoint sub-communicators, as
// MPI_Comm_split does: ranks passing the same color land in the same
// group, ordered by key (ties by parent rank). Every rank of the parent
// must call Split collectively. The returned SubComm routes through the
// parent's mailboxes in a reserved tag space, so parent and child traffic
// never collide. A negative color returns nil (the rank opts out, like
// MPI_UNDEFINED).
//
// The teaching cluster uses sub-communicators for, e.g., per-node local
// reductions before a global one (the hierarchy §2 alludes to with "local
// reductions ... again at each multicore node").
func (c *Comm) Split(color, key int) *SubComm {
	c.beginColl("Split", -1)
	mine := splitEntry{color, key, c.rank}
	all := Allgather(c, mine)
	c.endColl()

	if color < 0 {
		return nil
	}
	var members []splitEntry
	for _, e := range all {
		if e.Color == color {
			members = append(members, e)
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].Key != members[j].Key {
			return members[i].Key < members[j].Key
		}
		return members[i].Rank < members[j].Rank
	})
	ranks := make([]int, len(members))
	myIndex := -1
	for i, e := range members {
		ranks[i] = e.Rank
		if e.Rank == c.rank {
			myIndex = i
		}
	}
	// Sub-communicator instances on a rank are distinguished by a
	// generation number folded into the tag space; collectives inside the
	// group consume group-collective tags.
	c.subGen++
	return &SubComm{parent: c, rank: myIndex, ranks: ranks, gen: c.subGen}
}

// splitEntry is Split's Allgather payload. Package-level (not a function
// local) with exported fields so it can cross the net device's gob wire;
// it is registered in netdev.go's init.
type splitEntry struct{ Color, Key, Rank int }

// SubComm is a communicator over a subset of a World's ranks. Rank ids are
// renumbered 0..Size-1 within the group.
type SubComm struct {
	parent *Comm
	rank   int
	ranks  []int // group rank -> parent rank
	gen    int

	collSeq int
}

// Rank returns this rank's id within the group.
func (s *SubComm) Rank() int { return s.rank }

// Size returns the group size.
func (s *SubComm) Size() int { return len(s.ranks) }

// Parent returns the underlying world communicator.
func (s *SubComm) Parent() *Comm { return s.parent }

// ParentRank translates a group rank to the parent world rank.
func (s *SubComm) ParentRank(groupRank int) int { return s.ranks[groupRank] }

// Sub-communicator tags live far below the collective tag space. Layout:
// subTagBase - gen*2^20 - seq.
const subTagBase = -(1 << 40)

func (s *SubComm) tag(user int) int {
	if user < 0 || user >= 1<<18 {
		panic(fmt.Sprintf("cluster: sub-communicator tag %d outside [0, 2^18)", user))
	}
	return subTagBase - s.gen*(1<<20) - user
}

func (s *SubComm) nextCollTag() int {
	t := s.tag(1<<18 - 1 - s.collSeq%(1<<17))
	s.collSeq++
	return t
}

// SendSub delivers v to group rank dst with a group-scoped tag.
func SendSub[T any](s *SubComm, dst, tag int, v T) {
	Send(s.parent, s.ranks[dst], s.tag(tag), v)
}

// RecvSub receives from group rank src with a group-scoped tag.
func RecvSub[T any](s *SubComm, src, tag int) T {
	return Recv[T](s.parent, s.ranks[src], s.tag(tag))
}

// BarrierSub blocks until every group member has entered.
func (s *SubComm) BarrierSub() {
	s.parent.beginColl("BarrierSub", -1)
	defer s.parent.endColl()
	tag := s.nextCollTag()
	subReduceTree(s, 0, tag, struct{}{}, func(a, _ struct{}) struct{} { return a })
	subBcastTree(s, 0, tag, struct{}{})
}

// BcastSub broadcasts root's value within the group.
func BcastSub[T any](s *SubComm, root int, v T) T {
	s.parent.beginColl("BcastSub", root)
	defer s.parent.endColl()
	return subBcastTree(s, root, s.nextCollTag(), v)
}

// ReduceSub folds the group's contributions onto the group root.
func ReduceSub[T any](s *SubComm, root int, v T, op func(a, b T) T) T {
	s.parent.beginColl("ReduceSub", root)
	defer s.parent.endColl()
	return subReduceTree(s, root, s.nextCollTag(), v, op)
}

// AllreduceSub gives every group member the fully reduced value.
func AllreduceSub[T any](s *SubComm, v T, op func(a, b T) T) T {
	s.parent.beginColl("AllreduceSub", -1)
	defer s.parent.endColl()
	tag := s.nextCollTag()
	r := subReduceTree(s, 0, tag, v, op)
	if s.rank == 0 {
		// Same payload-reuse contract as Allreduce: the reduced value may
		// alias the caller's payload, so the group root broadcasts a
		// snapshot instead of the live buffer.
		if snap, ok := clonePayload(r); ok {
			r = snap
		}
	}
	return subBcastTree(s, 0, tag, r)
}

// GatherSub collects one value per group member onto the group root via
// the binomial gather tree on root-relative group ranks: each subtree
// leader accumulates the contiguous segment of relative ranks it covers
// and forwards it to its parent in one message, O(log |group|) rounds
// instead of |group|-1 serialized receives at the root.
func GatherSub[T any](s *SubComm, root int, v T) []T {
	s.parent.beginColl("GatherSub", root)
	defer s.parent.endColl()
	tag := s.nextCollTag()
	size := s.Size()
	rel := (s.rank - root + size) % size
	seg := make([]T, 1, 2)
	seg[0] = v // seg[i] holds relative group rank rel+i's value
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask != 0 {
			dst := ((rel &^ mask) + root) % size
			// Raw ops, as in gatherTree: seg is handed off exactly once
			// and never touched again, and segmentBytes models the real
			// segment size on the wire.
			s.parent.sendRaw(s.ranks[dst], tag, seg, segmentBytes(seg))
			return nil
		}
		srcRel := rel | mask
		if srcRel < size {
			msg := s.parent.recvRaw(s.ranks[(srcRel+root)%size], tag)
			seg = append(seg, msg.payload.([]T)...)
		}
	}
	out := make([]T, size)
	for i, x := range seg {
		out[(i+root)%size] = x
	}
	return out
}

func subBcastTree[T any](s *SubComm, root, tag int, v T) T {
	size := s.Size()
	rel := (s.rank - root + size) % size
	mask := 1
	for mask < size {
		if rel&mask != 0 {
			parent := ((rel &^ mask) + root) % size
			v = Recv[T](s.parent, s.ranks[parent], tag)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < size {
			dst := (rel + mask + root) % size
			Send(s.parent, s.ranks[dst], tag, v)
		}
	}
	return v
}

func subReduceTree[T any](s *SubComm, root, tag int, v T, op func(a, b T) T) T {
	size := s.Size()
	rel := (s.rank - root + size) % size
	acc := v
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask == 0 {
			srcRel := rel | mask
			if srcRel < size {
				part := Recv[T](s.parent, s.ranks[(srcRel+root)%size], tag)
				acc = op(acc, part)
			}
		} else {
			dst := ((rel &^ mask) + root) % size
			Send(s.parent, s.ranks[dst], tag, acc)
			break
		}
	}
	return acc
}

// SendRecv performs a simultaneous exchange with a partner rank on the
// parent communicator (the halo-exchange primitive): it posts the send,
// then blocks on the matching receive, which cannot deadlock under this
// runtime's buffered sends.
func SendRecv[T any](c *Comm, partner, tag int, v T) T {
	Send(c, partner, tag, v)
	return Recv[T](c, partner, tag)
}
