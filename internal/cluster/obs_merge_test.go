// Tests for cross-rank artifact merging against the real multi-process
// shape: P net-device worlds (one per rank, exactly as `peachy launch`
// spawns them) each export a per-rank artifact, and merging those must
// reproduce the single-process exporters — byte-for-byte for the Chrome
// trace, exactly up to wall clocks and wire-level ops for metrics.
package cluster

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// tracedNetWorlds runs the script on a P-rank unix-socket net world (one
// goroutine per rank, each with its own World and trace — the launched
// shape) and returns each rank's trace.
func tracedNetWorlds(t *testing.T, p int, body func(c *Comm)) []*obs.Trace {
	t.Helper()
	addrs := netAddrs(t, p)
	traces := make([]*obs.Trace, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for r := 0; r < p; r++ {
		go func(r int) {
			defer wg.Done()
			w, err := NewNetWorld(NetConfig{
				Size: p, Rank: r, Network: "unix", Addrs: addrs,
				DialTimeout: 10 * time.Second,
			}, DefaultOptions())
			if err != nil {
				errs[r] = err
				return
			}
			traces[r] = w.Observe()
			errs[r] = w.Run(body)
			w.Close()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return traces
}

func chromeBytes(t *testing.T, tr *obs.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	return buf.Bytes()
}

func metricsBytes(t *testing.T, tr *obs.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	return buf.Bytes()
}

// TestMergedNetTraceMatchesInProcess is the tentpole property: for
// P in {2,4,8}, merging the per-rank Chrome traces of a launched-style
// net-device run reproduces the in-process device's trace byte-for-byte
// (the simulated clocks are device-independent), deterministically
// across merges, and the document set passes the cross-file lint.
func TestMergedNetTraceMatchesInProcess(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		body := tracedScriptBody(p)
		traces := tracedNetWorlds(t, p, body)
		docs := make([][]byte, p)
		for r, tr := range traces {
			docs[r] = chromeBytes(t, tr)
		}
		if err := obs.LintMerged(docs); err != nil {
			t.Errorf("P=%d: LintMerged: %v", p, err)
		}
		want := chromeBytes(t, tracedScript(t, p))
		var got, again bytes.Buffer
		if err := obs.MergeTraces(&got, docs); err != nil {
			t.Fatalf("P=%d: MergeTraces: %v", p, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Errorf("P=%d: merged net-device trace differs from the in-process trace (%d vs %d bytes)",
				p, got.Len(), len(want))
		}
		if err := obs.MergeTraces(&again, docs); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), again.Bytes()) {
			t.Errorf("P=%d: two merges of the same artifacts differ", p)
		}
	}
}

// TestMergedNetTraceGolden pins the merged output to the same golden file
// the in-process exporter is pinned to: one source of truth for the
// P=4 trace bytes, whichever path produced them.
func TestMergedNetTraceGolden(t *testing.T) {
	traces := tracedNetWorlds(t, 4, tracedScriptBody(4))
	docs := make([][]byte, len(traces))
	for r, tr := range traces {
		docs[r] = chromeBytes(t, tr)
	}
	var merged bytes.Buffer
	if err := obs.MergeTraces(&merged, docs); err != nil {
		t.Fatalf("MergeTraces: %v", err)
	}
	golden := filepath.Join("testdata", "chrome_trace_p4.golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (TestChromeTraceGolden -update creates it): %v", err)
	}
	if !bytes.Equal(merged.Bytes(), want) {
		t.Errorf("merged trace differs from %s (%d vs %d bytes)",
			golden, merged.Len(), len(want))
	}
}

// zeroWallMetrics clears wall-clock fields and drops wire-level op rows
// (net.*): both exist only where real transport ran, so they are exactly
// the fields that legitimately differ between devices.
func zeroWallMetrics(m *obs.Metrics) {
	clean := func(ops []obs.OpMetrics) []obs.OpMetrics {
		out := ops[:0]
		for _, op := range ops {
			if strings.HasPrefix(op.Op, "net.") {
				continue
			}
			op.WallNs = 0
			op.WallP50, op.WallP95, op.WallP99, op.WallMax = 0, 0, 0, 0
			op.WallHist = nil
			out = append(out, op)
		}
		if len(out) == 0 {
			return nil
		}
		return out
	}
	for i := range m.PerRank {
		m.PerRank[i].RecvWaitWallNs = 0
		m.PerRank[i].Ops = clean(m.PerRank[i].Ops)
	}
	m.Ops = clean(m.Ops)
}

func TestMergedNetMetricsMatchesInProcess(t *testing.T) {
	for _, p := range []int{2, 4} {
		traces := tracedNetWorlds(t, p, tracedScriptBody(p))
		docs := make([][]byte, p)
		for r, tr := range traces {
			docs[r] = metricsBytes(t, tr)
		}
		if err := obs.LintMerged(docs); err != nil {
			t.Errorf("P=%d: LintMerged: %v", p, err)
		}
		merged, err := obs.MergeMetrics(docs)
		if err != nil {
			t.Fatalf("P=%d: MergeMetrics: %v", p, err)
		}
		want := tracedScript(t, p).Metrics()
		zeroWallMetrics(merged)
		zeroWallMetrics(want)
		got, _ := json.Marshal(merged)
		exp, _ := json.Marshal(want)
		if !bytes.Equal(got, exp) {
			t.Errorf("P=%d: merged net-device metrics differ from in-process metrics\nmerged: %s\nwant:   %s",
				p, got, exp)
		}
	}
}

// TestNetWireCounters: the wire-level aggregates recorded by the net
// device must conserve — every encoded frame one rank sent was decoded
// by its peer, in both count and bytes — and actually fill the wall
// histograms that the sim-only timeline deliberately excludes.
func TestNetWireCounters(t *testing.T) {
	p := 4
	traces := tracedNetWorlds(t, p, tracedScriptBody(p))
	var txN, txB, rxN, rxB int64
	for r, tr := range traces {
		snap := tr.Rank(r).Snapshot()
		if snap.OpCount["net.tx"] == 0 || snap.OpCount["net.rx"] == 0 {
			t.Fatalf("rank %d: no wire ops recorded (tx=%d rx=%d)",
				r, snap.OpCount["net.tx"], snap.OpCount["net.rx"])
		}
		if snap.OpWallHist["net.tx"].Count() != snap.OpCount["net.tx"] {
			t.Errorf("rank %d: net.tx histogram count %d != op count %d",
				r, snap.OpWallHist["net.tx"].Count(), snap.OpCount["net.tx"])
		}
		if snap.OpSimHist["net.tx"] != nil {
			t.Errorf("rank %d: wire ops must not fabricate simulated durations", r)
		}
		txN += snap.OpCount["net.tx"]
		txB += snap.OpBytes["net.tx"]
		rxN += snap.OpCount["net.rx"]
		rxB += snap.OpBytes["net.rx"]
	}
	if txN != rxN || txB != rxB {
		t.Errorf("wire conservation violated: %d frames / %d bytes encoded but %d / %d decoded",
			txN, txB, rxN, rxB)
	}
}
