package cluster

// A Device is the transport a World routes point-to-point messages over.
// Everything above it — collectives, Verify stamps, the obs hooks, the
// simulated α+β·n clocks — is device-independent: a message carries its
// payload, tag, collective stamp and the sender's simulated availability
// time, and the device's only job is to move it into the destination
// rank's mailbox. Two implementations exist:
//
//   - the goroutine device (the default): all ranks share one address
//     space and deliver is a direct mailbox put. Zero-copy, deterministic,
//     and byte-identical to the pre-Device runtime.
//   - the net device (netdev.go): each rank is its own OS process and
//     deliver encodes the message as a length-prefixed gob frame on a
//     per-peer socket. Payloads must be wire-safe (gob-encodable and
//     registered — peachyvet's wiresafe rule is the static gate).
//
// The interface is exported for documentation, but its methods are
// deliberately unexported: devices need access to the unexported message
// representation and mailbox internals, so implementations live in this
// package.
type Device interface {
	// deliver routes msg (already stamped with src/tag/arrive/op/site) to
	// dst's mailbox. Called only from dst's peer ranks' own goroutines.
	deliver(dst int, msg message)
	// peerInfo describes the transport state of a rank whose mailbox this
	// process cannot see (remote ranks on a net device). The goroutine
	// device returns "" for every rank: all state is local.
	peerInfo(rank int) string
	// name identifies the transport for diagnostics and the live /healthz
	// document ("goroutine", "net/unix", "net/tcp").
	name() string
	// close tears the transport down. Safe to call more than once.
	close() error
}

// goroutineDevice is the in-process transport: deliver is a mailbox put.
// It is a struct (not a func value) so the hot send path stays a single
// devirtualizable interface call with no closure allocation.
type goroutineDevice struct{ w *World }

func (d goroutineDevice) deliver(dst int, msg message) { d.w.boxes[dst].put(msg) }

func (d goroutineDevice) peerInfo(rank int) string { return "" }

func (d goroutineDevice) name() string { return "goroutine" }

func (d goroutineDevice) close() error { return nil }
