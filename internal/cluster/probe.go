package cluster

import "repro/internal/obs"

// Probe reports whether a message matching (src, tag) is waiting, without
// receiving it — MPI_Iprobe. src may be AnySource and tag AnyTag. With a
// trace attached the poll is recorded as an instant event, so a polling
// manager's duty cycle is visible on the timeline.
func (c *Comm) Probe(src, tag int) bool {
	box := c.world.boxes[c.rank]
	box.mu.Lock()
	_, _, hit := box.probeLocked(src, tag)
	box.mu.Unlock()
	if c.rec != nil {
		c.rec.Instant("probe", src, tag, 0, c.clock, obs.KV{K: "hit", V: boolKV(hit)})
	}
	return hit
}

// probeLocked is Probe's matching scan: a non-destructive peek through
// the same seq-ordered scan Recv matches with. Earlier versions walked
// the bySrc buckets in rank order, so a wildcard probe could name a
// match from a low rank while Recv(AnySource) would deliver an
// earlier-arrived message from a higher rank — Probe/TryRecv and Recv
// disagreed about which message was "next". Sharing peek makes the
// disagreement structurally impossible. Caller holds m.mu.
func (m *mailbox) probeLocked(src, tag int) (msgSrc, msgTag int, ok bool) {
	bkt, idx, ok := m.peek(src, tag)
	if !ok {
		return 0, 0, false
	}
	msg := &m.bySrc[bkt].items[idx]
	return msg.src, msg.tag, true
}

// ProbeNext reports the source and tag of the message a matching
// Recv(src, tag) would deliver next, without receiving it — MPI_Probe
// with its status object. The answer is seq-ordered (true arrival
// order), so the receive that follows is guaranteed to deliver the
// message ProbeNext named, provided no other message is consumed in
// between. src may be AnySource and tag AnyTag.
func (c *Comm) ProbeNext(src, tag int) (msgSrc, msgTag int, ok bool) {
	box := c.world.boxes[c.rank]
	box.mu.Lock()
	msgSrc, msgTag, ok = box.probeLocked(src, tag)
	box.mu.Unlock()
	if c.rec != nil {
		c.rec.Instant("probe", src, tag, 0, c.clock, obs.KV{K: "hit", V: boolKV(ok)})
	}
	return msgSrc, msgTag, ok
}

func boolKV(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// TryRecv receives a matching message if one is already waiting; ok is
// false when none is pending (it never blocks). The manager of a dynamic
// farm can use it to poll between other duties. A hit counts as a normal
// receive in an attached trace; a miss is recorded as an instant probe.
func TryRecv[T any](c *Comm, src, tag int) (v T, ok bool) {
	box := c.world.boxes[c.rank]
	simStart := c.clock
	var wallStart int64
	if c.rec != nil {
		wallStart = c.rec.Now()
	}
	box.mu.Lock()
	msg, ok := box.match(src, tag)
	box.mu.Unlock()
	if !ok {
		if c.rec != nil {
			c.rec.Instant("probe", src, tag, 0, c.clock, obs.KV{K: "hit", V: 0})
		}
		return v, false
	}
	if msg.arrive > c.clock {
		c.clock = msg.arrive
	}
	if c.rec != nil {
		c.rec.Recv(msg.src, msg.tag, int64(msg.bytes), simStart, c.clock, wallStart)
	}
	return msg.payload.(T), true
}
