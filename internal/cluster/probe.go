package cluster

// Probe reports whether a message matching (src, tag) is waiting, without
// receiving it — MPI_Iprobe. src may be AnySource and tag AnyTag.
func (c *Comm) Probe(src, tag int) bool {
	box := c.world.boxes[c.rank]
	box.mu.Lock()
	defer box.mu.Unlock()
	for _, msg := range box.pending {
		if (src == AnySource || msg.src == src) && tagMatches(tag, msg.tag) {
			return true
		}
	}
	return false
}

// TryRecv receives a matching message if one is already waiting; ok is
// false when none is pending (it never blocks). The manager of a dynamic
// farm can use it to poll between other duties.
func TryRecv[T any](c *Comm, src, tag int) (v T, ok bool) {
	box := c.world.boxes[c.rank]
	box.mu.Lock()
	for i, msg := range box.pending {
		if (src == AnySource || msg.src == src) && tagMatches(tag, msg.tag) {
			box.pending = append(box.pending[:i], box.pending[i+1:]...)
			box.mu.Unlock()
			if msg.arrive > c.clock {
				c.clock = msg.arrive
			}
			return msg.payload.(T), true
		}
	}
	box.mu.Unlock()
	return v, false
}
