package cluster

import "repro/internal/obs"

// Probe reports whether a message matching (src, tag) is waiting, without
// receiving it — MPI_Iprobe. src may be AnySource and tag AnyTag. With a
// trace attached the poll is recorded as an instant event, so a polling
// manager's duty cycle is visible on the timeline.
func (c *Comm) Probe(src, tag int) bool {
	box := c.world.boxes[c.rank]
	box.mu.Lock()
	hit := box.probeLocked(src, tag)
	box.mu.Unlock()
	if c.rec != nil {
		c.rec.Instant("probe", src, tag, 0, c.clock, obs.KV{K: "hit", V: boolKV(hit)})
	}
	return hit
}

// probeLocked is Probe's matching scan. Caller holds m.mu.
func (m *mailbox) probeLocked(src, tag int) bool {
	if m.nPending == 0 {
		return false
	}
	if src != AnySource {
		b := &m.bySrc[src]
		for i := b.head; i < len(b.items); i++ {
			if tagMatches(tag, b.items[i].tag) {
				return true
			}
		}
		return false
	}
	for s := range m.bySrc {
		b := &m.bySrc[s]
		for i := b.head; i < len(b.items); i++ {
			if tagMatches(tag, b.items[i].tag) {
				return true
			}
		}
	}
	return false
}

func boolKV(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// TryRecv receives a matching message if one is already waiting; ok is
// false when none is pending (it never blocks). The manager of a dynamic
// farm can use it to poll between other duties. A hit counts as a normal
// receive in an attached trace; a miss is recorded as an instant probe.
func TryRecv[T any](c *Comm, src, tag int) (v T, ok bool) {
	box := c.world.boxes[c.rank]
	simStart := c.clock
	var wallStart int64
	if c.rec != nil {
		wallStart = c.rec.Now()
	}
	box.mu.Lock()
	msg, ok := box.match(src, tag)
	box.mu.Unlock()
	if !ok {
		if c.rec != nil {
			c.rec.Instant("probe", src, tag, 0, c.clock, obs.KV{K: "hit", V: 0})
		}
		return v, false
	}
	if msg.arrive > c.clock {
		c.clock = msg.arrive
	}
	if c.rec != nil {
		c.rec.Recv(msg.src, msg.tag, int64(msg.bytes), simStart, c.clock, wallStart)
	}
	return msg.payload.(T), true
}
