package cluster

// Probe reports whether a message matching (src, tag) is waiting, without
// receiving it — MPI_Iprobe. src may be AnySource and tag AnyTag.
func (c *Comm) Probe(src, tag int) bool {
	box := c.world.boxes[c.rank]
	box.mu.Lock()
	defer box.mu.Unlock()
	if box.nPending == 0 {
		return false
	}
	if src != AnySource {
		b := &box.bySrc[src]
		for i := b.head; i < len(b.items); i++ {
			if tagMatches(tag, b.items[i].tag) {
				return true
			}
		}
		return false
	}
	for s := range box.bySrc {
		b := &box.bySrc[s]
		for i := b.head; i < len(b.items); i++ {
			if tagMatches(tag, b.items[i].tag) {
				return true
			}
		}
	}
	return false
}

// TryRecv receives a matching message if one is already waiting; ok is
// false when none is pending (it never blocks). The manager of a dynamic
// farm can use it to poll between other duties.
func TryRecv[T any](c *Comm, src, tag int) (v T, ok bool) {
	box := c.world.boxes[c.rank]
	box.mu.Lock()
	msg, ok := box.match(src, tag)
	box.mu.Unlock()
	if !ok {
		return v, false
	}
	if msg.arrive > c.clock {
		c.clock = msg.arrive
	}
	return msg.payload.(T), true
}
