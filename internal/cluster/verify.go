package cluster

import (
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"time"
)

// This file implements the Verify-mode runtime verifier: the dynamic
// counterpart to peachyvet's static `collective` rule. MPI correctness
// tools (MUST, Marmot) do the same for real MPI programs — a mismatched
// collective is turned from a silent deadlock or payload corruption into
// an immediate, named diagnostic.
//
// Mechanism: every collective brackets its communication with
// beginColl/endColl, which record the op name and the user call site on
// the rank. sendRaw stamps both into each point-to-point message the
// collective is built from; recvRaw cross-checks the stamp against the
// receiving rank's current op. Because collective tags are consumed from
// a per-rank sequence, two ranks that disagree about the collective
// sequence produce tree messages with the *same* tag but *different*
// stamps — exactly the case the check catches. Disagreements that never
// exchange a message (both sides blocked receiving) are caught by the
// VerifyTimeout deadlock dump instead.

// verifyTimeout returns the bounded-receive deadline (0 = unbounded).
func (w *World) verifyTimeout() time.Duration {
	if !w.opts.Verify {
		return 0
	}
	if w.opts.VerifyTimeout > 0 {
		return w.opts.VerifyTimeout
	}
	return 5 * time.Second
}

// beginColl marks this rank as inside the named collective: the trace
// recorder (when attached) stamps the span start, and in Verify mode the
// op and user call site are mirrored into the rank's mailbox for the
// deadlock dump. root is the collective's root rank (-1 for rootless
// collectives). Nesting (e.g. Split's internal Allgather) records and
// verifies only the outermost op.
func (c *Comm) beginColl(op string, root int) {
	c.collDepth++
	if c.collDepth > 1 {
		return // nested: outermost op wins
	}
	if c.rec != nil {
		c.obsOp, c.obsRoot = op, root
		c.obsSimStart = c.clock
		c.obsWallStart = c.rec.Now()
	}
	if !c.world.opts.Verify {
		return
	}
	c.curOp, c.curSite = op, callerSite()
	b := c.world.boxes[c.rank]
	b.mu.Lock()
	b.opInfo = op + " @ " + c.curSite
	b.collSeq = c.collSeq
	b.mu.Unlock()
}

// endColl marks the rank as back in user code, closing the trace span
// opened by beginColl.
func (c *Comm) endColl() {
	c.collDepth--
	if c.collDepth > 0 {
		return
	}
	if c.rec != nil {
		c.rec.Collective(c.obsOp, c.obsRoot, c.obsSimStart, c.clock, c.obsWallStart)
		c.obsOp = ""
	}
	if !c.world.opts.Verify {
		return
	}
	c.curOp, c.curSite = "", ""
	b := c.world.boxes[c.rank]
	b.mu.Lock()
	b.opInfo = ""
	b.mu.Unlock()
}

// checkCollStamp panics when the collective stamp on a received message
// disagrees with the collective this rank is inside.
func (c *Comm) checkCollStamp(msg message) {
	if msg.op == c.curOp {
		return
	}
	switch {
	case c.curOp == "":
		panic(fmt.Sprintf(
			"cluster: collective mismatch: rank %d was in a point-to-point receive but matched %s traffic sent by rank %d at %s — rank %d skipped (or has not yet reached) that collective",
			c.rank, msg.op, msg.src, msg.site, c.rank))
	case msg.op == "":
		panic(fmt.Sprintf(
			"cluster: collective mismatch: rank %d entered %s at %s but received point-to-point traffic from rank %d (tag %d) — rank %d is not in the collective",
			c.rank, c.curOp, c.curSite, msg.src, msg.tag, msg.src))
	default:
		panic(fmt.Sprintf(
			"cluster: collective mismatch: rank %d entered %s at %s, but rank %d entered %s at %s — every rank must call the same collective sequence",
			c.rank, c.curOp, c.curSite, msg.src, msg.op, msg.site))
	}
}

// runtimeFiles are this package's non-test sources; callerSite skips
// their frames so diagnostics point at user code.
var runtimeFiles = map[string]bool{
	"cluster.go": true, "collectives.go": true, "split.go": true,
	"probe.go": true, "verify.go": true, "device.go": true, "netdev.go": true,
}

func callerSite() string {
	pc := make([]uintptr, 16)
	n := runtime.Callers(2, pc)
	frames := runtime.CallersFrames(pc[:n])
	for {
		f, more := frames.Next()
		base := filepath.Base(f.File)
		if !runtimeFiles[base] && f.File != "" {
			return fmt.Sprintf("%s:%d", base, f.Line)
		}
		if !more {
			return "unknown"
		}
	}
}

// deadPeerError renders the diagnosis for a receive that can never be
// satisfied because the transport link to the peer is gone — over a real
// device a dead peer looks exactly like a deadlocked one (a receive that
// never completes), so the runtime distinguishes them explicitly: a
// closed/reset connection is reported as a crashed or exited process, not
// as a suspected communication cycle.
func (w *World) deadPeerError(rank, src, tag int, cause error) error {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: rank %d: peer unreachable while waiting for src=%d tag=%d: %v", rank, src, tag, cause)
	b.WriteString("\n  this is a dead peer (its process exited or crashed), not a deadlock cycle;")
	b.WriteString("\n  check that rank's own output/exit status for the root cause")
	if down := w.downPeers(); len(down) > 0 {
		fmt.Fprintf(&b, "\n  unreachable ranks: %s", strings.Join(down, ", "))
	}
	return errors.New(b.String())
}

// downPeers lists every rank whose link is down, with its state.
func (w *World) downPeers() []string {
	if w.local < 0 {
		return nil
	}
	box := w.boxes[w.local]
	box.mu.Lock()
	defer box.mu.Unlock()
	var out []string
	for r, err := range box.peerDown {
		if err != nil {
			out = append(out, fmt.Sprintf("rank %d (%s)", r, shortConnState(err)))
		}
	}
	return out
}

func shortConnState(err error) string {
	s := err.Error()
	if i := strings.Index(s, ": "); i >= 0 {
		return s[i+2:]
	}
	return s
}

// deadlockDump renders every rank's communication state. It is called by
// a rank whose bounded receive expired, with no mailbox locks held. On a
// net device only the local rank's mailbox exists; remote ranks are
// described by their transport link state instead, and a closed/reset
// link is called out as a dead peer rather than folded into the generic
// cycle hint.
func (w *World) deadlockDump(rank, src, tag int, waited time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: suspected deadlock: rank %d waited %v for src=%d tag=%d; world state:\n",
		rank, waited, src, tag)
	deadPeers := 0
	for r, box := range w.boxes {
		if box == nil {
			info := w.dev.peerInfo(r)
			if strings.Contains(info, "closed") || strings.Contains(info, "reset") {
				deadPeers++
			}
			fmt.Fprintf(&b, "  rank %d: %s\n", r, info)
			continue
		}
		box.mu.Lock()
		state := "running"
		if box.waitActive {
			state = fmt.Sprintf("blocked on src=%d tag=%d", box.waitSrc, box.waitTag)
		}
		op := box.opInfo
		if op == "" {
			op = "no collective (user code or point-to-point)"
		} else {
			op = fmt.Sprintf("%s (collective #%d)", op, box.collSeq)
		}
		// Render the oldest few pending messages in arrival order by
		// walking the per-source buckets and merging on arrival stamp.
		nPending := box.nPending
		heads := make([]int, len(box.bySrc))
		for s := range box.bySrc {
			heads[s] = box.bySrc[s].head
		}
		var pend []string
		for len(pend) < 3 {
			bestSrc := -1
			var bestSeq uint64
			for s := range box.bySrc {
				bk := &box.bySrc[s]
				if heads[s] < len(bk.items) && (bestSrc < 0 || bk.items[heads[s]].seq < bestSeq) {
					bestSrc, bestSeq = s, bk.items[heads[s]].seq
				}
			}
			if bestSrc < 0 {
				break
			}
			m := box.bySrc[bestSrc].items[heads[bestSrc]]
			heads[bestSrc]++
			desc := fmt.Sprintf("src=%d tag=%d", m.src, m.tag)
			if m.op != "" {
				desc += " op=" + m.op
			}
			pend = append(pend, desc)
		}
		if nPending > len(pend) {
			pend = append(pend, fmt.Sprintf("+%d more", nPending-len(pend)))
		}
		box.mu.Unlock()
		fmt.Fprintf(&b, "  rank %d: %s; in %s; %d pending message(s)", r, state, op, nPending)
		if len(pend) > 0 {
			fmt.Fprintf(&b, " [%s]", strings.Join(pend, ", "))
		}
		b.WriteByte('\n')
	}
	if deadPeers > 0 {
		fmt.Fprintf(&b, "  hint: %d peer connection(s) closed/reset — those ranks' processes exited or crashed; this looks like a hang from here but is peer death, not (necessarily) a communication cycle", deadPeers)
	} else {
		b.WriteString("  hint: a deadlock here usually means mismatched Send/Recv tags or a rank-divergent collective; run `go run ./cmd/peachyvet ./...` on the code")
	}
	return b.String()
}
