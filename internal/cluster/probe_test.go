package cluster

import (
	"math/rand"
	"testing"
)

// TestWildcardProbeSeqOrder is the regression test for the wildcard
// ordering bug: probeLocked used to scan bySrc buckets in rank order
// while Recv(AnySource) matches in global seq (arrival) order, so with
// messages pending from two sources a probe could name the lower rank's
// later-arrived message while the receive delivered the higher rank's
// earlier one. Both must report the earlier arrival, whichever rank it
// came from.
func TestWildcardProbeSeqOrder(t *testing.T) {
	// Interleave two sources directly at the mailbox so arrival order is
	// deterministic: rank 2 sends first (earlier seq), rank 0 second.
	// A rank-ordered scan finds rank 0's message first — the bug.
	w := NewWorld(3)
	box := w.boxes[1]
	box.put(message{src: 2, tag: 5, payload: 20, bytes: 8})
	box.put(message{src: 0, tag: 5, payload: 10, bytes: 8})
	c := w.comms[1]

	src, tag, ok := c.ProbeNext(AnySource, AnyTag)
	if !ok {
		t.Fatal("ProbeNext found nothing with two messages pending")
	}
	if src != 2 || tag != 5 {
		t.Fatalf("ProbeNext named (src=%d tag=%d), want the earlier arrival (src=2 tag=5)", src, tag)
	}
	got, gotSrc := RecvFrom[int](c, AnySource, AnyTag)
	if gotSrc != src {
		t.Fatalf("Probe/Recv disagree: probe named src=%d, Recv delivered src=%d", src, gotSrc)
	}
	if got != 20 {
		t.Fatalf("Recv delivered %d, want 20 (the earlier arrival)", got)
	}
	// And the remaining message follows in order.
	if src, _, _ := c.ProbeNext(AnySource, AnyTag); src != 0 {
		t.Fatalf("second ProbeNext named src=%d, want 0", src)
	}
	if _, gotSrc := RecvFrom[int](c, AnySource, AnyTag); gotSrc != 0 {
		t.Fatalf("second Recv delivered src=%d, want 0", gotSrc)
	}
}

// TestWildcardProbeSeqOrderEndToEnd replays the same interleaving through
// real Sends, using a tag handshake to force the arrival order: rank 1
// must see rank 2's message arrive before rank 0's even though a
// rank-ordered scan would visit rank 0's bucket first.
func TestWildcardProbeSeqOrderEndToEnd(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 2:
			Send(c, 1, 5, 20)
			Send(c, 0, 9, struct{}{}) // rank 2's payload is en route / delivered
		case 0:
			Recv[struct{}](c, 2, 9)
			Send(c, 1, 5, 10)
		case 1:
			// Wait until both are pending so the probe has a real choice.
			for !c.Probe(0, 5) || !c.Probe(2, 5) {
			}
			src, _, ok := c.ProbeNext(AnySource, AnyTag)
			if !ok || src != 2 {
				panic("wildcard probe must name rank 2's earlier arrival")
			}
			if v, from := RecvFrom[int](c, AnySource, AnyTag); from != 2 || v != 20 {
				panic("wildcard Recv must deliver rank 2's earlier arrival")
			}
			if v, from := RecvFrom[int](c, AnySource, AnyTag); from != 0 || v != 10 {
				panic("second wildcard Recv must deliver rank 0's message")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBucketPropertyRandomOps drives the per-source FIFO bucket through
// long random interleavings of push, head pop, and middle removal —
// including the head-reclaim compaction push triggers — against a plain
// slice model. After every operation the live window must match the
// model exactly and every dead slot must be zeroed.
func TestBucketPropertyRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var b bucket
		var model []message
		next := 1
		for op := 0; op < 2000; op++ {
			switch {
			case len(model) == 0 || rng.Intn(100) < 45:
				m := mkMsg(next)
				next++
				b.push(m)
				model = append(model, m)
			case rng.Intn(100) < 70:
				// Head pop: the Recv(src, tag) fast path.
				b.removeAt(b.head)
				model = model[1:]
			default:
				// Middle removal: a tag-selective or out-of-order match.
				i := rng.Intn(len(model))
				b.removeAt(b.head + i)
				model = append(model[:i:i], model[i+1:]...)
			}
			live := b.items[b.head:]
			if len(live) != len(model) {
				t.Fatalf("seed %d op %d: %d live items, model has %d", seed, op, len(live), len(model))
			}
			for i := range model {
				if live[i].tag != model[i].tag {
					t.Fatalf("seed %d op %d: item %d has tag %d, model says %d",
						seed, op, i, live[i].tag, model[i].tag)
				}
			}
			if !deadSlotsClean(&b) {
				t.Fatalf("seed %d op %d: dead slot retains a message (head=%d len=%d cap=%d)",
					seed, op, b.head, len(b.items), cap(b.items))
			}
		}
	}
}
