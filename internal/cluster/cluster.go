// Package cluster is an in-process message-passing runtime that stands in
// for MPI in the paper's distributed-memory assignments. A World of P
// ranks runs one goroutine per rank; each rank has private state and
// communicates only through typed point-to-point messages and MPI-style
// collectives (Barrier, Bcast, Scatter, Gather, Allgather, Reduce,
// Allreduce, Alltoall, Scan).
//
// Besides real concurrency, the runtime maintains a deterministic
// performance model: every message advances per-rank simulated clocks by
// alpha + beta*bytes (latency plus inverse bandwidth), and the collectives
// are built from binomial trees of point-to-point messages so their
// simulated cost has the familiar O(log P) shape. This lets the
// communication-cost experiments in the paper reproduce on any host,
// including single-core ones, and makes message/byte counting exact.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// AnySource matches a message from any rank in Recv.
const AnySource = -1

// AnyTag matches a message with any tag in Recv.
const AnyTag = -1

// Options configures a World's cost model and debugging aids.
type Options struct {
	// Latency is the simulated per-message cost in seconds (alpha).
	Latency float64
	// ByteTime is the simulated per-byte cost in seconds (beta, the
	// inverse bandwidth).
	ByteTime float64
	// Verify enables the collective-sequence verifier: every collective
	// stamps its op and call site into the point-to-point messages it is
	// built from, and every receive cross-checks the stamp. A mismatched
	// collective (rank 2 in Allreduce while rank 5 is in Barrier) then
	// panics with a diagnostic naming both ops, ranks and call sites
	// instead of deadlocking or corrupting payloads. Verify also bounds
	// every blocking receive by VerifyTimeout; on expiry the world is
	// declared deadlocked and every rank's pending state is dumped.
	Verify bool
	// VerifyTimeout is the per-receive deadline used when Verify is on
	// (0 means 5s). Set it well above the longest legitimate compute
	// phase between communications.
	VerifyTimeout time.Duration
	// BaselineCollectives forces the simple reference algorithms for
	// every collective (binomial reduce+bcast Allreduce, linear
	// Gather/Scatter/Allgather, AnySource Alltoall) instead of the
	// optimized O(log P) ones. Property tests use it as the oracle the
	// fast paths must match; it is also the fallback the fast paths take
	// on shapes they do not cover (see docs/substrates.md).
	BaselineCollectives bool
}

// DefaultOptions models a commodity cluster interconnect: 1 microsecond
// latency and 10 GB/s bandwidth.
func DefaultOptions() Options {
	return Options{Latency: 1e-6, ByteTime: 1e-10}
}

// VerifyOptions is DefaultOptions with the collective-sequence verifier
// switched on — the mode to grade student SPMD code under.
func VerifyOptions() Options {
	o := DefaultOptions()
	o.Verify = true
	return o
}

type message struct {
	src, tag int
	payload  any
	bytes    int
	arrive   float64 // sender's simulated clock when the message is available
	seq      uint64  // per-mailbox arrival stamp; orders wildcard matching
	op, site string  // Verify mode: collective op + call site that produced this message
	// Wire-level observability, stamped by the net device's reader: frame
	// bytes on the wire (0 on the in-process device — also the "no wire"
	// sentinel) and the gob decode wall time. recvRaw folds them into the
	// recorder's net.rx aggregate on the rank's own goroutine.
	wireB int64
	decNs int64
}

// bucket is a FIFO deque of pending messages from one source rank, in
// arrival order. head indexes the oldest live entry; vacated slots are
// zeroed so delivered payloads are not retained past delivery.
type bucket struct {
	items []message
	head  int
}

func (b *bucket) empty() bool { return b.head == len(b.items) }

func (b *bucket) push(msg message) {
	// Reclaim the dead prefix once it dominates the backing array, so a
	// long-lived mailbox doesn't grow without bound.
	if b.head > 16 && b.head*2 >= len(b.items) {
		n := copy(b.items, b.items[b.head:])
		clearTail(b.items[n:])
		b.items = b.items[:n]
		b.head = 0
	}
	b.items = append(b.items, msg)
}

// removeAt deletes the message at absolute index i (head <= i < len),
// zeroing the vacated slot.
func (b *bucket) removeAt(i int) {
	if i == b.head {
		b.items[i] = message{}
		b.head++
		if b.empty() {
			b.items = b.items[:0]
			b.head = 0
		}
		return
	}
	copy(b.items[i:], b.items[i+1:])
	b.items[len(b.items)-1] = message{}
	b.items = b.items[:len(b.items)-1]
}

func clearTail(ms []message) {
	for i := range ms {
		ms[i] = message{}
	}
}

// mailbox holds pending messages for one rank, indexed by source rank so
// the typical Recv(src, tag) match is O(1) (head of the source's FIFO
// bucket) instead of a linear scan of everything pending. In Verify mode
// it also mirrors the rank's communication state (what it is blocked on,
// which collective it is inside) so the deadlock dump can read a
// consistent snapshot from another goroutine.
type mailbox struct {
	mu       sync.Mutex
	cond     *sync.Cond
	bySrc    []bucket // indexed by sender rank
	nPending int
	seq      uint64 // next arrival stamp
	closed   bool
	// peerDown marks sources whose transport link is gone (net device
	// only: the reader goroutine for that peer saw the connection close or
	// reset). A receive blocked on a down source fails immediately with a
	// dead-peer diagnosis instead of hanging until the Verify timeout.
	peerDown []error

	waitActive bool // a take is currently blocked
	waitSrc    int  // the (src, tag) that take is blocked on
	waitTag    int
	opInfo     string // current collective "Op @ site" ("" between collectives)
	collSeq    int    // collective sequence number at the last beginColl
}

func newMailbox(size int) *mailbox {
	m := &mailbox{bySrc: make([]bucket, size)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	msg.seq = m.seq
	m.seq++
	m.bySrc[msg.src].push(msg)
	m.nPending++
	// Targeted wakeup: only signal a blocked take whose (src, tag)
	// predicate this message can satisfy. Non-matching puts leave the
	// waiter parked, so a rank blocked on one peer is not woken (and made
	// to rescan) by every unrelated arrival. The mailbox has at most one
	// waiter — its owning rank — so Signal suffices.
	wake := m.waitActive &&
		(m.waitSrc == AnySource || m.waitSrc == msg.src) &&
		tagMatches(m.waitTag, msg.tag)
	m.mu.Unlock()
	if wake {
		m.cond.Signal()
	}
}

// peek locates the pending message Recv(src, tag) would deliver next,
// without removing it, returning the owning bucket and absolute index.
// For a concrete src it scans only that source's bucket (the head in the
// typical in-order case); for AnySource it finds the earliest-arrived
// match across buckets, preserving the previous global arrival-order
// semantics. peek is the single matching scan: match (and so Recv and
// TryRecv) and Probe/ProbeNext all go through it, so a probe can never
// name a different "next message" than the receive that follows it.
// Caller holds m.mu.
func (m *mailbox) peek(src, tag int) (bkt, idx int, ok bool) {
	if m.nPending == 0 {
		return 0, 0, false
	}
	if src != AnySource {
		b := &m.bySrc[src]
		for i := b.head; i < len(b.items); i++ {
			if tagMatches(tag, b.items[i].tag) {
				return src, i, true
			}
		}
		return 0, 0, false
	}
	bestBucket, bestIdx := -1, -1
	var bestSeq uint64
	for s := range m.bySrc {
		b := &m.bySrc[s]
		for i := b.head; i < len(b.items); i++ {
			if tagMatches(tag, b.items[i].tag) {
				if bestBucket < 0 || b.items[i].seq < bestSeq {
					bestBucket, bestIdx, bestSeq = s, i, b.items[i].seq
				}
				break // later entries in this bucket arrived later
			}
		}
	}
	if bestBucket < 0 {
		return 0, 0, false
	}
	return bestBucket, bestIdx, true
}

// match finds and removes the matching pending message, if any. Caller
// holds m.mu.
func (m *mailbox) match(src, tag int) (message, bool) {
	bkt, idx, ok := m.peek(src, tag)
	if !ok {
		return message{}, false
	}
	b := &m.bySrc[bkt]
	msg := b.items[idx]
	b.removeAt(idx)
	m.nPending--
	return msg, true
}

// take blocks until a message matching (src, tag) is pending and removes
// it, preserving FIFO order per (src, tag) pair. c is the receiving
// rank's endpoint; in Verify mode the wait is bounded by the world's
// VerifyTimeout, after which a deadlock dump of every rank is returned
// as the error.
func (m *mailbox) take(src, tag int, c *Comm) (message, error) {
	timeout := c.world.verifyTimeout()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.waitActive, m.waitSrc, m.waitTag = true, src, tag
	defer func() { m.waitActive = false }()

	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		timer := time.AfterFunc(timeout, func() {
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
		})
		defer timer.Stop()
	}
	for {
		if msg, ok := m.match(src, tag); ok {
			return msg, nil
		}
		if m.closed {
			return message{}, fmt.Errorf("%w while waiting for src=%d tag=%d", errWorldAborted, src, tag)
		}
		if err := m.peerDownErr(src); err != nil {
			// A dead peer is a different diagnosis than a deadlock: the
			// message this rank is waiting for can never arrive because the
			// process that would send it is gone. Rendering the diagnosis
			// re-reads this mailbox (downPeers), so drop our lock first.
			m.mu.Unlock()
			derr := c.world.deadPeerError(c.rank, src, tag, err)
			m.mu.Lock()
			return message{}, derr
		}
		if timeout > 0 && !time.Now().Before(deadline) {
			// Drop our own lock before walking every rank's mailbox so two
			// concurrent dumpers can never hold-and-wait on each other.
			m.mu.Unlock()
			dump := c.world.deadlockDump(c.rank, src, tag, timeout)
			m.mu.Lock()
			return message{}, errors.New(dump)
		}
		m.cond.Wait()
	}
}

// errWorldAborted marks the cascade failure a rank sees when some other
// rank's panic closed the world under it. Run reports the root-cause
// panic in preference to these.
var errWorldAborted = errors.New("cluster: world aborted")

// abortPanic wraps a cascade failure so Run's recover can tell it apart
// from a root-cause panic.
type abortPanic struct{ msg string }

// tagMatches applies receive matching: AnyTag is a wildcard over user
// tags only — it never matches the reserved negative tag spaces that
// collectives and sub-communicators use, so a wildcard point-to-point
// receive can never steal in-flight collective traffic from a rank that
// ran ahead.
func tagMatches(want, got int) bool {
	if want == AnyTag {
		return got >= 0
	}
	return want == got
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// markPeerDown records that the transport link to src is gone (net device
// reader goroutines call it on connection close/reset) and wakes the
// owning rank so a blocked receive can fail with a dead-peer diagnosis.
func (m *mailbox) markPeerDown(src int, err error) {
	m.mu.Lock()
	if m.peerDown == nil {
		m.peerDown = make([]error, len(m.bySrc))
	}
	if m.peerDown[src] == nil {
		m.peerDown[src] = err
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// peerDownErr reports whether a receive on (src, tag) can still be
// satisfied. A concrete down source fails immediately; an AnySource wait
// fails only when every peer link is down and nothing is pending — while
// one live link remains, the message could still come. Caller holds m.mu.
func (m *mailbox) peerDownErr(src int) error {
	if m.peerDown == nil {
		return nil
	}
	if src != AnySource {
		return m.peerDown[src]
	}
	if m.nPending > 0 {
		return nil
	}
	var first error
	for _, err := range m.peerDown {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
	}
	// peerDown has no entry for the local rank itself, so "all remote
	// peers down" is len-1 non-nil entries.
	n := 0
	for _, err := range m.peerDown {
		if err != nil {
			n++
		}
	}
	if n >= len(m.peerDown)-1 && first != nil {
		return first
	}
	return nil
}

// World is a set of ranks that can run SPMD programs. With the default
// goroutine device every rank lives in this process; on a net device the
// World is one member of a multi-process world and only the local rank's
// mailbox and Comm exist here.
type World struct {
	size  int
	opts  Options
	boxes []*mailbox // net device: only boxes[local] is non-nil
	comms []*Comm    // net device: only comms[local] is non-nil
	dev   Device
	local int // local rank on a net device; -1 = all ranks in-process
}

// NewWorld creates a world of size ranks with the default cost model.
func NewWorld(size int) *World { return NewWorldOpts(size, DefaultOptions()) }

// NewWorldOpts creates a world of size ranks with an explicit cost model.
func NewWorldOpts(size int, opts Options) *World {
	if size < 1 {
		panic("cluster: world size must be >= 1")
	}
	w := &World{size: size, opts: opts, local: -1}
	w.dev = goroutineDevice{w}
	w.boxes = make([]*mailbox, size)
	w.comms = make([]*Comm, size)
	for r := 0; r < size; r++ {
		w.boxes[r] = newMailbox(size)
	}
	for r := 0; r < size; r++ {
		w.comms[r] = &Comm{world: w, rank: r}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Launched reports whether this World is one process of a multi-process
// world (a net device joined via `peachy launch` or NewNetWorld). False
// for the default in-process goroutine device.
func (w *World) Launched() bool { return w.local >= 0 }

// LocalRank returns the rank this process runs on a net device, or -1
// when every rank is in-process.
func (w *World) LocalRank() int { return w.local }

// Lead reports whether this process should own root-rank duties that
// must happen exactly once per world — printing results, writing output
// files. True in-process (the whole world is here) and on rank 0 of a
// multi-process world.
func (w *World) Lead() bool { return w.local <= 0 }

// Device names the transport the world routes messages over
// ("goroutine", "net/unix", "net/tcp") — diagnostics and the live
// /healthz document use it.
func (w *World) Device() string { return w.dev.name() }

// ObsInfo describes this process for the live observability endpoint's
// /healthz document (obs.CLI.Serve's second argument).
func (w *World) ObsInfo() obs.ServerInfo {
	return obs.ServerInfo{Rank: w.local, World: w.size, Device: w.dev.name()}
}

// Close tears down the transport. A no-op for the in-process device; on
// a net device it closes every peer connection (remote ranks blocked on
// this process then fail fast with a dead-peer diagnosis rather than
// hanging). Exhibits should defer it after OpenWorld.
func (w *World) Close() error { return w.dev.close() }

// Observe attaches a fresh per-rank trace to the world and returns it.
// Every message, receive wait and collective from here on is recorded
// into the trace's lock-free per-rank buffers; export with
// Trace.WriteChrome / WriteMetrics / WriteSummary after Run returns.
// Call before Run (ranks must be quiescent); calling again replaces the
// previous trace. With no trace attached the runtime's only overhead is
// one nil check per instrumented operation.
func (w *World) Observe() *obs.Trace {
	t := obs.NewTrace(w.size)
	for r, c := range w.comms {
		if c != nil {
			c.rec = t.Rank(r)
		}
	}
	return t
}

// Run executes f once per rank, concurrently, and blocks until every rank
// returns. A panic in any rank aborts the world (unblocking ranks stuck in
// Recv) and is reported as an error. Root-cause panics win over the
// "world aborted" cascade errors other ranks see as a consequence, so the
// diagnostic from, e.g., a Verify-mode collective mismatch is never
// masked by a bystander rank failing first in rank order.
func (w *World) Run(f func(c *Comm)) error {
	if w.local >= 0 {
		return w.runLocal(f)
	}
	var wg sync.WaitGroup
	wg.Add(w.size)
	errs := make([]error, w.size)
	cascade := make([]bool, w.size)
	for r := 0; r < w.size; r++ {
		go func(c *Comm) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if ap, ok := p.(abortPanic); ok {
						errs[c.rank] = fmt.Errorf("cluster: rank %d panicked: %v", c.rank, ap.msg)
						cascade[c.rank] = true
					} else {
						errs[c.rank] = fmt.Errorf("cluster: rank %d panicked: %v", c.rank, p)
					}
					for _, b := range w.boxes {
						b.close()
					}
				}
			}()
			f(c)
		}(w.comms[r])
	}
	wg.Wait()
	var fallback error
	for r, err := range errs {
		if err == nil {
			continue
		}
		if !cascade[r] {
			return err
		}
		if fallback == nil {
			fallback = err
		}
	}
	return fallback
}

// runLocal is Run on a net device: this process holds exactly one rank,
// its peers run the same f in their own processes. A panic tears down the
// transport so remote ranks blocked on this one fail fast with a
// dead-peer diagnosis instead of hanging until their Verify timeout.
func (w *World) runLocal(f func(c *Comm)) (err error) {
	defer func() {
		if p := recover(); p != nil {
			if ap, ok := p.(abortPanic); ok {
				err = fmt.Errorf("cluster: rank %d panicked: %v", w.local, ap.msg)
			} else {
				err = fmt.Errorf("cluster: rank %d panicked: %v", w.local, p)
			}
			w.boxes[w.local].close()
			w.dev.close()
		}
	}()
	f(w.comms[w.local])
	return nil
}

// SimTime returns the maximum simulated clock over all ranks: the modeled
// makespan of everything run so far. On a net device only the local
// rank's clock is visible; Allreduce the value for a global makespan.
func (w *World) SimTime() float64 {
	max := 0.0
	for _, c := range w.comms {
		if c != nil && c.clock > max {
			max = c.clock
		}
	}
	return max
}

// TotalMessages returns the number of point-to-point messages sent
// (collectives count as their constituent messages). On a net device
// only the local rank's counter is visible.
func (w *World) TotalMessages() int64 {
	var n int64
	for _, c := range w.comms {
		if c != nil {
			n += c.msgs
		}
	}
	return n
}

// TotalBytes returns the total payload bytes sent. On a net device only
// the local rank's counter is visible.
func (w *World) TotalBytes() int64 {
	var n int64
	for _, c := range w.comms {
		if c != nil {
			n += c.bytes
		}
	}
	return n
}

// ResetStats zeroes clocks and counters on every rank. Call between
// experiment phases; ranks must be quiescent.
func (w *World) ResetStats() {
	for _, c := range w.comms {
		if c != nil {
			c.clock, c.msgs, c.bytes = 0, 0, 0
		}
	}
}

// Comm is one rank's endpoint into the world. It is owned by the rank's
// goroutine; methods must not be called from other goroutines.
type Comm struct {
	world *World
	rank  int

	clock float64 // simulated seconds
	msgs  int64
	bytes int64

	// rec is the rank's trace recorder (nil = observability off; every
	// obs call site guards on that, so the disabled cost is one branch).
	rec *obs.Recorder
	// obsOp/obsRoot/obsSimStart/obsWallStart hold the outermost in-flight
	// collective between beginColl and endColl.
	obsOp        string
	obsRoot      int
	obsSimStart  float64
	obsWallStart int64

	collSeq int // collective matching sequence; see collTag
	subGen  int // sub-communicator generation counter; see Split

	// Verify mode: the collective this rank is currently inside ("" while
	// in user code or point-to-point calls). Owner-goroutine only; the
	// mailbox mirrors it for cross-goroutine dump readers. collDepth
	// tracks nesting (e.g. Split's internal Allgather) so the outermost
	// op name wins.
	curOp, curSite string
	collDepth      int
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Clock returns this rank's simulated time in seconds.
func (c *Comm) Clock() float64 { return c.clock }

// AdvanceClock adds simulated compute seconds to this rank's clock. Use it
// to model local work between communication phases.
func (c *Comm) AdvanceClock(seconds float64) { c.clock += seconds }

// Obs returns this rank's trace recorder, or nil when no trace is
// attached. Substrate layers use it to record their own phase spans; all
// obs.Recorder methods are nil-safe, so callers need no guard.
func (c *Comm) Obs() *obs.Recorder { return c.rec }

// sendRaw posts a message and advances the sender's clock.
func (c *Comm) sendRaw(dst, tag int, payload any, bytes int) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("cluster: send to invalid rank %d", dst))
	}
	simStart := c.clock
	c.clock += c.world.opts.Latency + c.world.opts.ByteTime*float64(bytes)
	c.msgs++
	c.bytes += int64(bytes)
	if c.rec != nil {
		c.rec.Send(dst, tag, int64(bytes), simStart, c.clock)
	}
	c.world.dev.deliver(dst, message{
		src: c.rank, tag: tag, payload: payload, bytes: bytes, arrive: c.clock,
		op: c.curOp, site: c.curSite,
	})
}

// recvRaw blocks for a matching message and advances the receiver's clock
// to at least the message's availability time. In Verify mode it
// cross-checks the collective stamp on the message against the collective
// this rank is inside.
func (c *Comm) recvRaw(src, tag int) message {
	var wallStart int64
	simStart := c.clock
	if c.rec != nil {
		wallStart = c.rec.Now()
	}
	msg, err := c.world.boxes[c.rank].take(src, tag, c)
	if err != nil {
		if errors.Is(err, errWorldAborted) {
			panic(abortPanic{err.Error()})
		}
		panic(err.Error())
	}
	if c.world.opts.Verify {
		c.checkCollStamp(msg)
	}
	if msg.arrive > c.clock {
		c.clock = msg.arrive
	}
	if c.rec != nil {
		c.rec.Recv(msg.src, msg.tag, int64(msg.bytes), simStart, c.clock, wallStart)
		if msg.wireB > 0 {
			// Wire-level aggregate for messages that crossed a socket: frame
			// bytes and gob decode time, stamped by the net device's reader
			// goroutine, folded into the recorder here on the rank's own.
			c.rec.WireSpan("net.rx", msg.wireB, msg.decNs)
		}
	}
	return msg
}

// Send delivers v to rank dst with the given tag. It does not block on the
// receiver (eager/buffered semantics).
func Send[T any](c *Comm, dst, tag int, v T) {
	c.sendRaw(dst, tag, v, byteSize(v))
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. src may be AnySource and tag may be AnyTag. The
// payload must have been sent with the same type T.
func Recv[T any](c *Comm, src, tag int) T {
	msg := c.recvRaw(src, tag)
	v, ok := msg.payload.(T)
	if !ok {
		panic(fmt.Sprintf("cluster: rank %d Recv type mismatch: got %T", c.rank, msg.payload))
	}
	return v
}

// RecvFrom is Recv that additionally reports the sending rank; useful with
// AnySource (the dynamic task farm uses it).
func RecvFrom[T any](c *Comm, src, tag int) (T, int) {
	msg := c.recvRaw(src, tag)
	v, ok := msg.payload.(T)
	if !ok {
		panic(fmt.Sprintf("cluster: rank %d RecvFrom type mismatch: got %T", c.rank, msg.payload))
	}
	return v, msg.src
}

// byteSize estimates the wire size of a payload for the cost model.
func byteSize(v any) int {
	switch x := v.(type) {
	case nil, struct{}:
		return 0
	case bool, int8, uint8:
		return 1
	case int16, uint16:
		return 2
	case int32, uint32, float32:
		return 4
	case int, int64, uint, uint64, float64:
		return 8
	case string:
		return len(x)
	case []byte:
		return len(x)
	case []int:
		return 8 * len(x)
	case []int64:
		return 8 * len(x)
	case []float64:
		return 8 * len(x)
	case []float32:
		return 4 * len(x)
	case []int32:
		return 4 * len(x)
	case []uint64:
		return 8 * len(x)
	case []bool:
		return len(x)
	case [][]float64:
		n := 0
		for _, row := range x {
			n += 8 + 8*len(row) // length prefix + elements
		}
		return n
	case []string:
		n := 0
		for _, s := range x {
			n += len(s) + 8
		}
		return n
	case Sizer:
		return x.WireSize()
	default:
		// Unknown payloads get a flat estimate; implement Sizer for
		// anything whose size matters to an experiment.
		if UnknownSizeHook != nil {
			UnknownSizeHook(v)
		}
		return 64
	}
}

// UnknownSizeHook, when non-nil, is called with every payload whose wire
// size byteSize cannot derive (such payloads are charged a flat 64 bytes).
// Experiments that depend on exact byte accounting can set it to log the
// offending types or fail fast. It must be set before any World runs and
// must be safe for concurrent calls.
var UnknownSizeHook func(v any)

// Sizer lets custom payload types report their wire size to the cost model.
type Sizer interface {
	WireSize() int
}
