// Package cluster is an in-process message-passing runtime that stands in
// for MPI in the paper's distributed-memory assignments. A World of P
// ranks runs one goroutine per rank; each rank has private state and
// communicates only through typed point-to-point messages and MPI-style
// collectives (Barrier, Bcast, Scatter, Gather, Allgather, Reduce,
// Allreduce, Alltoall, Scan).
//
// Besides real concurrency, the runtime maintains a deterministic
// performance model: every message advances per-rank simulated clocks by
// alpha + beta*bytes (latency plus inverse bandwidth), and the collectives
// are built from binomial trees of point-to-point messages so their
// simulated cost has the familiar O(log P) shape. This lets the
// communication-cost experiments in the paper reproduce on any host,
// including single-core ones, and makes message/byte counting exact.
package cluster

import (
	"fmt"
	"sync"
)

// AnySource matches a message from any rank in Recv.
const AnySource = -1

// AnyTag matches a message with any tag in Recv.
const AnyTag = -1

// Options configures a World's cost model.
type Options struct {
	// Latency is the simulated per-message cost in seconds (alpha).
	Latency float64
	// ByteTime is the simulated per-byte cost in seconds (beta, the
	// inverse bandwidth).
	ByteTime float64
}

// DefaultOptions models a commodity cluster interconnect: 1 microsecond
// latency and 10 GB/s bandwidth.
func DefaultOptions() Options {
	return Options{Latency: 1e-6, ByteTime: 1e-10}
}

type message struct {
	src, tag int
	payload  any
	bytes    int
	arrive   float64 // sender's simulated clock when the message is available
}

// mailbox holds pending messages for one rank.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
	closed  bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.pending = append(m.pending, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take blocks until a message matching (src, tag) is pending and removes
// it, preserving FIFO order per (src, tag) pair.
func (m *mailbox) take(src, tag int) (message, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.pending {
			if (src == AnySource || msg.src == src) && (tag == AnyTag || msg.tag == tag) {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				return msg, nil
			}
		}
		if m.closed {
			return message{}, fmt.Errorf("cluster: world aborted while waiting for src=%d tag=%d", src, tag)
		}
		m.cond.Wait()
	}
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// World is a set of ranks that can run SPMD programs.
type World struct {
	size  int
	opts  Options
	boxes []*mailbox
	comms []*Comm
}

// NewWorld creates a world of size ranks with the default cost model.
func NewWorld(size int) *World { return NewWorldOpts(size, DefaultOptions()) }

// NewWorldOpts creates a world of size ranks with an explicit cost model.
func NewWorldOpts(size int, opts Options) *World {
	if size < 1 {
		panic("cluster: world size must be >= 1")
	}
	w := &World{size: size, opts: opts}
	w.boxes = make([]*mailbox, size)
	w.comms = make([]*Comm, size)
	for r := 0; r < size; r++ {
		w.boxes[r] = newMailbox()
	}
	for r := 0; r < size; r++ {
		w.comms[r] = &Comm{world: w, rank: r}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Run executes f once per rank, concurrently, and blocks until every rank
// returns. A panic in any rank aborts the world (unblocking ranks stuck in
// Recv) and is reported as an error.
func (w *World) Run(f func(c *Comm)) error {
	var wg sync.WaitGroup
	wg.Add(w.size)
	errs := make([]error, w.size)
	for r := 0; r < w.size; r++ {
		go func(c *Comm) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[c.rank] = fmt.Errorf("cluster: rank %d panicked: %v", c.rank, p)
					for _, b := range w.boxes {
						b.close()
					}
				}
			}()
			f(c)
		}(w.comms[r])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SimTime returns the maximum simulated clock over all ranks: the modeled
// makespan of everything run so far.
func (w *World) SimTime() float64 {
	max := 0.0
	for _, c := range w.comms {
		if c.clock > max {
			max = c.clock
		}
	}
	return max
}

// TotalMessages returns the number of point-to-point messages sent
// (collectives count as their constituent messages).
func (w *World) TotalMessages() int64 {
	var n int64
	for _, c := range w.comms {
		n += c.msgs
	}
	return n
}

// TotalBytes returns the total payload bytes sent.
func (w *World) TotalBytes() int64 {
	var n int64
	for _, c := range w.comms {
		n += c.bytes
	}
	return n
}

// ResetStats zeroes clocks and counters on every rank. Call between
// experiment phases; ranks must be quiescent.
func (w *World) ResetStats() {
	for _, c := range w.comms {
		c.clock, c.msgs, c.bytes = 0, 0, 0
	}
}

// Comm is one rank's endpoint into the world. It is owned by the rank's
// goroutine; methods must not be called from other goroutines.
type Comm struct {
	world *World
	rank  int

	clock float64 // simulated seconds
	msgs  int64
	bytes int64

	collSeq int // collective matching sequence; see collTag
	subGen  int // sub-communicator generation counter; see Split
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Clock returns this rank's simulated time in seconds.
func (c *Comm) Clock() float64 { return c.clock }

// AdvanceClock adds simulated compute seconds to this rank's clock. Use it
// to model local work between communication phases.
func (c *Comm) AdvanceClock(seconds float64) { c.clock += seconds }

// sendRaw posts a message and advances the sender's clock.
func (c *Comm) sendRaw(dst, tag int, payload any, bytes int) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("cluster: send to invalid rank %d", dst))
	}
	c.clock += c.world.opts.Latency + c.world.opts.ByteTime*float64(bytes)
	c.msgs++
	c.bytes += int64(bytes)
	c.world.boxes[dst].put(message{src: c.rank, tag: tag, payload: payload, bytes: bytes, arrive: c.clock})
}

// recvRaw blocks for a matching message and advances the receiver's clock
// to at least the message's availability time.
func (c *Comm) recvRaw(src, tag int) message {
	msg, err := c.world.boxes[c.rank].take(src, tag)
	if err != nil {
		panic(err.Error())
	}
	if msg.arrive > c.clock {
		c.clock = msg.arrive
	}
	return msg
}

// Send delivers v to rank dst with the given tag. It does not block on the
// receiver (eager/buffered semantics).
func Send[T any](c *Comm, dst, tag int, v T) {
	c.sendRaw(dst, tag, v, byteSize(v))
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. src may be AnySource and tag may be AnyTag. The
// payload must have been sent with the same type T.
func Recv[T any](c *Comm, src, tag int) T {
	msg := c.recvRaw(src, tag)
	v, ok := msg.payload.(T)
	if !ok {
		panic(fmt.Sprintf("cluster: rank %d Recv type mismatch: got %T", c.rank, msg.payload))
	}
	return v
}

// RecvFrom is Recv that additionally reports the sending rank; useful with
// AnySource (the dynamic task farm uses it).
func RecvFrom[T any](c *Comm, src, tag int) (T, int) {
	msg := c.recvRaw(src, tag)
	v, ok := msg.payload.(T)
	if !ok {
		panic(fmt.Sprintf("cluster: rank %d RecvFrom type mismatch: got %T", c.rank, msg.payload))
	}
	return v, msg.src
}

// byteSize estimates the wire size of a payload for the cost model.
func byteSize(v any) int {
	switch x := v.(type) {
	case nil:
		return 0
	case bool, int8, uint8:
		return 1
	case int16, uint16:
		return 2
	case int32, uint32, float32:
		return 4
	case int, int64, uint, uint64, float64:
		return 8
	case string:
		return len(x)
	case []byte:
		return len(x)
	case []int:
		return 8 * len(x)
	case []int64:
		return 8 * len(x)
	case []float64:
		return 8 * len(x)
	case []float32:
		return 4 * len(x)
	case []int32:
		return 4 * len(x)
	case []string:
		n := 0
		for _, s := range x {
			n += len(s) + 8
		}
		return n
	case Sizer:
		return x.WireSize()
	default:
		// Unknown payloads get a flat estimate; implement Sizer for
		// anything whose size matters to an experiment.
		return 64
	}
}

// Sizer lets custom payload types report their wire size to the cost model.
type Sizer interface {
	WireSize() int
}
