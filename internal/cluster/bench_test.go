// Microbenchmarks for the cluster runtime's transport and collectives.
// scripts/bench.sh runs these and records the results in BENCH_cluster.json;
// treat the recorded numbers as the tracked baseline when touching the
// mailbox or the collective algorithms.
package cluster

import (
	"fmt"
	"testing"
)

func sizeName(p int) string { return fmt.Sprintf("P%d", p) }

// BenchmarkPingPong is the classic MPI microbenchmark: round-trip time of
// a message between two ranks, per payload size.
func BenchmarkPingPong(b *testing.B) {
	for _, size := range []int{8, 1024, 65536} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			payload := make([]float64, size/8)
			w := NewWorld(2)
			b.ResetTimer()
			_ = w.Run(func(c *Comm) {
				if c.Rank() == 0 {
					for i := 0; i < b.N; i++ {
						Send(c, 1, 1, payload)
						Recv[[]float64](c, 1, 2)
					}
				} else {
					for i := 0; i < b.N; i++ {
						Recv[[]float64](c, 0, 1)
						Send(c, 0, 2, payload)
					}
				}
			})
			b.SetBytes(int64(2 * size))
		})
	}
}

// BenchmarkAllreduce measures a whole-world Allreduce per iteration,
// including world spawn — the historical shape of this benchmark, kept so
// recorded baselines stay comparable.
func BenchmarkAllreduce(b *testing.B) {
	for _, p := range []int{2, 4, 8} {
		b.Run(sizeName(p), func(b *testing.B) {
			w := NewWorld(p)
			buf := make([]float64, 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = w.Run(func(c *Comm) {
					local := make([]float64, len(buf))
					Allreduce(c, local, SumFloat64s)
				})
			}
		})
	}
}

// BenchmarkMessageRate measures sustained delivery into a single mailbox
// under fan-in contention: every other rank streams messages at rank 0.
// The concrete-source variant drains senders round-robin (the O(1) bucket
// head path); the wildcard variant takes whatever arrived first (the
// cross-bucket seq merge path).
func BenchmarkMessageRate(b *testing.B) {
	const P = 8
	for _, mode := range []string{"concrete", "anysource"} {
		b.Run(mode, func(b *testing.B) {
			w := NewWorld(P)
			payload := make([]float64, 8)
			b.ResetTimer()
			_ = w.Run(func(c *Comm) {
				if c.Rank() != 0 {
					for i := 0; i < b.N; i++ {
						Send(c, 0, 1, payload)
					}
					return
				}
				if mode == "concrete" {
					for i := 0; i < b.N; i++ {
						for src := 1; src < P; src++ {
							Recv[[]float64](c, src, 1)
						}
					}
				} else {
					for i := 0; i < b.N*(P-1); i++ {
						Recv[[]float64](c, AnySource, 1)
					}
				}
			})
			// Metrics are per benchmark iteration: each op delivers P-1
			// messages into rank 0's mailbox. (A previous version reported
			// the total message count, which grew with b.N and made runs
			// incomparable.)
			b.ReportMetric(float64(P-1), "msgs/op")
			b.ReportMetric(float64(w.TotalBytes())/float64(b.N), "bytes/op")
		})
	}
}

// BenchmarkCollectives times each collective in a long-lived world (no
// per-iteration spawn), per world size. These are the per-algorithm
// numbers the O(log P) claims in docs/substrates.md are checked against.
func BenchmarkCollectives(b *testing.B) {
	payload := func() []float64 { return make([]float64, 256) }
	ops := []struct {
		name string
		body func(c *Comm, p int)
	}{
		{"Barrier", func(c *Comm, p int) { c.Barrier() }},
		{"Bcast", func(c *Comm, p int) { Bcast(c, 0, payload()) }},
		{"Reduce", func(c *Comm, p int) { Reduce(c, 0, payload(), SumFloat64s) }},
		{"Allreduce", func(c *Comm, p int) { Allreduce(c, payload(), SumFloat64s) }},
		{"Allgather", func(c *Comm, p int) { Allgather(c, c.Rank()) }},
		{"Gather", func(c *Comm, p int) { Gather(c, 0, payload()) }},
		{"Scatter", func(c *Comm, p int) {
			var parts [][]float64
			if c.Rank() == 0 {
				parts = make([][]float64, p)
				for i := range parts {
					parts[i] = payload()
				}
			}
			Scatter(c, 0, parts)
		}},
		{"Alltoall", func(c *Comm, p int) {
			parts := make([][]float64, p)
			for i := range parts {
				parts[i] = payload()
			}
			Alltoall(c, parts)
		}},
		{"Scan", func(c *Comm, p int) { Scan(c, float64(c.Rank()), func(a, x float64) float64 { return a + x }) }},
	}
	for _, op := range ops {
		for _, p := range []int{2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/%s", op.name, sizeName(p)), func(b *testing.B) {
				w := NewWorld(p)
				b.ResetTimer()
				_ = w.Run(func(c *Comm) {
					for i := 0; i < b.N; i++ {
						op.body(c, p)
					}
				})
			})
		}
	}
}
