package cluster

import "testing"

// FuzzSplitEven checks the block-decomposition invariants for arbitrary
// (n, parts): the chunks must tile the input exactly in order, differ in
// size by at most one with the front-loaded remainder, and agree with
// BlockRange about every boundary.
func FuzzSplitEven(f *testing.F) {
	f.Add(0, 1)
	f.Add(1, 1)
	f.Add(10, 3)
	f.Add(7, 16)
	f.Add(1000, 7)
	f.Fuzz(func(t *testing.T, n, parts int) {
		if n < 0 {
			n = -n
		}
		n %= 1 << 16
		if parts < 1 {
			parts = 1 - parts
		}
		parts = parts%256 + 1

		xs := make([]int, n)
		for i := range xs {
			xs[i] = i
		}
		chunks := SplitEven(xs, parts)
		if len(chunks) != parts {
			t.Fatalf("SplitEven(%d, %d) returned %d chunks", n, parts, len(chunks))
		}

		q, r := n/parts, n%parts
		next := 0
		for p, chunk := range chunks {
			wantSize := q
			if p < r {
				wantSize++
			}
			if len(chunk) != wantSize {
				t.Fatalf("chunk %d of SplitEven(%d, %d) has %d elements, want %d", p, n, parts, len(chunk), wantSize)
			}
			lo, hi := BlockRange(n, parts, p)
			if lo != next || hi != next+len(chunk) {
				t.Fatalf("BlockRange(%d, %d, %d) = [%d, %d), but SplitEven puts chunk %d at [%d, %d)",
					n, parts, p, lo, hi, p, next, next+len(chunk))
			}
			for i, v := range chunk {
				if v != next+i {
					t.Fatalf("chunk %d element %d = %d: chunks do not tile the input in order", p, i, v)
				}
			}
			next += len(chunk)
		}
		if next != n {
			t.Fatalf("chunks cover %d of %d elements", next, n)
		}
	})
}

// FuzzBlockRange checks the index-range form on its own: ranges are
// well-formed, contiguous across ranks, cover [0, n) exactly, and are
// balanced to within one element.
func FuzzBlockRange(f *testing.F) {
	f.Add(0, 1)
	f.Add(5, 2)
	f.Add(100, 13)
	f.Add(64, 64)
	f.Fuzz(func(t *testing.T, n, parts int) {
		if n < 0 {
			n = -n
		}
		n %= 1 << 16
		if parts < 1 {
			parts = 1 - parts
		}
		parts = parts%256 + 1

		prevHi := 0
		for p := 0; p < parts; p++ {
			lo, hi := BlockRange(n, parts, p)
			if lo < 0 || lo > hi || hi > n {
				t.Fatalf("BlockRange(%d, %d, %d) = [%d, %d): malformed range", n, parts, p, lo, hi)
			}
			if lo != prevHi {
				t.Fatalf("BlockRange(%d, %d, %d) starts at %d, previous rank ended at %d: gap or overlap", n, parts, p, lo, prevHi)
			}
			if size := hi - lo; size != n/parts && size != n/parts+1 {
				t.Fatalf("BlockRange(%d, %d, %d) has %d elements: unbalanced (want %d or %d)", n, parts, p, size, n/parts, n/parts+1)
			}
			prevHi = hi
		}
		if prevHi != n {
			t.Fatalf("ranges cover [0, %d) of [0, %d)", prevHi, n)
		}
	})
}
