package cluster

import (
	"fmt"
	"testing"
)

type wireSized struct{ n int }

func (w wireSized) WireSize() int { return w.n }

type opaquePayload struct{ a, b int }

// TestByteSizePinsEveryCase pins the wire-size model for every payload
// type byteSize understands. The cost model (and therefore every recorded
// SimTime) is downstream of these numbers: a silent change here shifts
// every experiment's simulated microseconds, so each case is pinned
// explicitly.
func TestByteSizePinsEveryCase(t *testing.T) {
	cases := []struct {
		v    any
		want int
	}{
		{nil, 0},
		{struct{}{}, 0},
		{true, 1},
		{int8(-1), 1},
		{uint8(255), 1},
		{int16(-1), 2},
		{uint16(65535), 2},
		{int32(-1), 4},
		{uint32(1), 4},
		{float32(1.5), 4},
		{int(42), 8},
		{int64(-42), 8},
		{uint(42), 8},
		{uint64(42), 8},
		{float64(3.14), 8},
		{"hello", 5},
		{"", 0},
		{[]byte{1, 2, 3}, 3},
		{[]int{1, 2, 3}, 24},
		{[]int64{1}, 8},
		{[]float64{1, 2, 3, 4}, 32},
		{[]float32{1, 2}, 8},
		{[]int32{1, 2, 3}, 12},
		{[]uint64{1, 2}, 16},
		{[]bool{true, false, true}, 3},
		// Ragged rows: 8-byte length prefix per row plus 8 bytes/element.
		{[][]float64{{1, 2}, {3}, {}}, (8 + 16) + (8 + 8) + 8},
		{[][]float64{}, 0},
		{[]string{"ab", "c"}, (2 + 8) + (1 + 8)},
		// Custom payloads report their own size via Sizer.
		{wireSized{n: 123}, 123},
		// Unknown payloads fall back to a flat 64-byte estimate.
		{opaquePayload{1, 2}, 64},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%T", tc.v), func(t *testing.T) {
			if got := byteSize(tc.v); got != tc.want {
				t.Errorf("byteSize(%#v) = %d, want %d", tc.v, got, tc.want)
			}
		})
	}
}

// TestUnknownSizeHook: payloads the model cannot size must invoke the
// hook (so experiments can fail fast on silent 64-byte estimates), while
// every known type must bypass it.
func TestUnknownSizeHook(t *testing.T) {
	saved := UnknownSizeHook
	defer func() { UnknownSizeHook = saved }()

	var seen []any
	UnknownSizeHook = func(v any) { seen = append(seen, v) }

	if got := byteSize(opaquePayload{3, 4}); got != 64 {
		t.Errorf("unknown payload charged %d bytes, want flat 64", got)
	}
	if len(seen) != 1 {
		t.Fatalf("hook called %d times, want 1", len(seen))
	}
	if p, ok := seen[0].(opaquePayload); !ok || p != (opaquePayload{3, 4}) {
		t.Errorf("hook saw %#v, want the offending payload", seen[0])
	}

	seen = nil
	for _, known := range []any{nil, true, int64(1), "x", []float64{1}, [][]float64{{1}}, wireSized{n: 5}} {
		byteSize(known)
	}
	if len(seen) != 0 {
		t.Errorf("hook fired for known types: %#v", seen)
	}
}
