package cluster

import (
	"sync"
	"testing"
)

func TestSplitGroupsByColor(t *testing.T) {
	const P = 6
	w := NewWorld(P)
	var mu sync.Mutex
	groupOf := map[int][2]int{} // parent rank -> (group size, group rank)
	err := w.Run(func(c *Comm) {
		sub := c.Split(c.Rank()%2, c.Rank())
		mu.Lock()
		groupOf[c.Rank()] = [2]int{sub.Size(), sub.Rank()}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, gs := range groupOf {
		if gs[0] != 3 {
			t.Errorf("rank %d group size %d", rank, gs[0])
		}
		if want := rank / 2; gs[1] != want {
			t.Errorf("rank %d group rank %d want %d", rank, gs[1], want)
		}
	}
}

func TestSplitKeyOrdersGroup(t *testing.T) {
	const P = 4
	w := NewWorld(P)
	err := w.Run(func(c *Comm) {
		// Reverse ordering via key.
		sub := c.Split(0, -c.Rank())
		if want := P - 1 - c.Rank(); sub.Rank() != want {
			t.Errorf("rank %d got group rank %d want %d", c.Rank(), sub.Rank(), want)
		}
		if sub.ParentRank(sub.Rank()) != c.Rank() {
			t.Error("ParentRank round trip failed")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitNegativeColorOptsOut(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) {
		color := 0
		if c.Rank() == 2 {
			color = -1
		}
		sub := c.Split(color, 0)
		if c.Rank() == 2 {
			if sub != nil {
				t.Error("negative color returned a communicator")
			}
			return
		}
		if sub.Size() != 2 {
			t.Errorf("group size %d", sub.Size())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubCollectives(t *testing.T) {
	const P = 8
	w := NewWorld(P)
	err := w.Run(func(c *Comm) {
		sub := c.Split(c.Rank()/4, c.Rank()) // two groups of 4
		// Allreduce within the group: sum of parent ranks.
		got := AllreduceSub(sub, c.Rank(), func(a, b int) int { return a + b })
		want := 0 + 1 + 2 + 3
		if c.Rank() >= 4 {
			want = 4 + 5 + 6 + 7
		}
		if got != want {
			t.Errorf("rank %d group allreduce %d want %d", c.Rank(), got, want)
		}
		// Bcast from the group root.
		v := BcastSub(sub, 0, c.Rank()*10)
		wantB := sub.ParentRank(0) * 10
		if v != wantB {
			t.Errorf("rank %d group bcast %d want %d", c.Rank(), v, wantB)
		}
		// Gather onto group rank 1.
		all := GatherSub(sub, 1, c.Rank())
		if sub.Rank() == 1 {
			if len(all) != 4 {
				t.Errorf("gather size %d", len(all))
			}
		} else if all != nil {
			t.Error("non-root gather non-nil")
		}
		sub.BarrierSub()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubP2PDoesNotCollideWithParent(t *testing.T) {
	const P = 4
	w := NewWorld(P)
	err := w.Run(func(c *Comm) {
		sub := c.Split(0, c.Rank())
		if c.Rank() == 0 {
			Send(c, 1, 5, "parent")
			SendSub(sub, 1, 5, "sub")
		}
		if c.Rank() == 1 {
			// Receive in the opposite order: tags must not collide.
			got := RecvSub[string](sub, 0, 5)
			if got != "sub" {
				t.Errorf("sub recv %q", got)
			}
			got = Recv[string](c, 0, 5)
			if got != "parent" {
				t.Errorf("parent recv %q", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHierarchicalReduction(t *testing.T) {
	// The §2 pattern: local reduction within each "node" (group), then a
	// global reduction of the group roots.
	const P = 8
	w := NewWorld(P)
	var result int
	err := w.Run(func(c *Comm) {
		node := c.Split(c.Rank()/4, c.Rank())
		local := ReduceSub(node, 0, 1, func(a, b int) int { return a + b })
		leaders := c.Split(map[bool]int{true: 0, false: -1}[node.Rank() == 0], c.Rank())
		if node.Rank() == 0 {
			total := AllreduceSub(leaders, local, func(a, b int) int { return a + b })
			if c.Rank() == 0 {
				result = total
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if result != P {
		t.Errorf("hierarchical reduction = %d, want %d", result, P)
	}
}

func TestSendRecvExchange(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		partner := 1 - c.Rank()
		got := SendRecv(c, partner, 3, c.Rank()*100)
		if got != partner*100 {
			t.Errorf("rank %d exchanged %d", c.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubTagValidation(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		sub := c.Split(0, c.Rank())
		if c.Rank() == 0 {
			defer func() {
				if recover() == nil {
					t.Error("oversized sub tag accepted")
				}
				// Unblock rank 1's Split-free wait by sending nothing
				// further; world ends after both return.
			}()
			SendSub(sub, 1, 1<<20, "x")
		}
	})
	// The panic on rank 0 is recovered inside the rank body, so Run
	// should not report an error.
	if err != nil {
		t.Fatal(err)
	}
}
