// Microbenchmarks for the net device: the same ping-pong and Allreduce
// shapes as bench_test.go, but with every rank on its own World joined
// over unix sockets — real gob framing, real kernel round-trips.
// scripts/bench.sh records these in BENCH_net.json; diffing against
// BENCH_cluster.json prices the process boundary per message.
package cluster

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// benchNetWorlds brings up a size-rank unix-socket world for a benchmark
// (one goroutine per rank below, exactly as P processes would) and
// returns the per-rank Worlds with the full mesh already established, so
// b.ResetTimer excludes rendezvous.
func benchNetWorlds(b *testing.B, size int) []*World {
	b.Helper()
	dir := b.TempDir()
	addrs := make([]string, size)
	for r := range addrs {
		addrs[r] = filepath.Join(dir, fmt.Sprintf("%d.s", r))
	}
	worlds := make([]*World, size)
	var wg sync.WaitGroup
	wg.Add(size)
	for r := 0; r < size; r++ {
		go func(r int) {
			defer wg.Done()
			w, err := NewNetWorld(NetConfig{
				Size: size, Rank: r, Network: "unix", Addrs: addrs,
				DialTimeout: 10 * time.Second,
			}, DefaultOptions())
			if err != nil {
				b.Errorf("rank %d: %v", r, err)
				return
			}
			worlds[r] = w
		}(r)
	}
	wg.Wait()
	if b.Failed() {
		b.Fatal("net world rendezvous failed")
	}
	b.Cleanup(func() {
		for _, w := range worlds {
			if w != nil {
				w.Close()
			}
		}
	})
	return worlds
}

// runBenchNet executes one SPMD body across the joined worlds, one
// goroutine per rank, and fails the benchmark on any rank error.
func runBenchNet(b *testing.B, worlds []*World, f func(c *Comm)) {
	b.Helper()
	var wg sync.WaitGroup
	wg.Add(len(worlds))
	for _, w := range worlds {
		go func(w *World) {
			defer wg.Done()
			if err := w.Run(f); err != nil {
				b.Errorf("net world rank: %v", err)
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkNetPingPong is BenchmarkPingPong over the wire: round-trip
// time of a message between two single-rank processes-worth of Worlds,
// per payload size. The delta against the in-process number is the cost
// of gob encoding plus two kernel crossings.
func BenchmarkNetPingPong(b *testing.B) {
	for _, size := range []int{8, 1024, 65536} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			worlds := benchNetWorlds(b, 2)
			payload := make([]float64, size/8)
			b.SetBytes(int64(2 * size))
			b.ResetTimer()
			runBenchNet(b, worlds, func(c *Comm) {
				if c.Rank() == 0 {
					for i := 0; i < b.N; i++ {
						Send(c, 1, 1, payload)
						Recv[[]float64](c, 1, 2)
					}
				} else {
					for i := 0; i < b.N; i++ {
						Recv[[]float64](c, 0, 1)
						Send(c, 0, 2, payload)
					}
				}
			})
		})
	}
}

// BenchmarkNetAllreduce times a 2 KiB Allreduce per world size in a
// long-lived net world (mesh up before the timer), mirroring
// BenchmarkCollectives/Allreduce payload-for-payload.
func BenchmarkNetAllreduce(b *testing.B) {
	for _, p := range []int{2, 4} {
		b.Run(sizeName(p), func(b *testing.B) {
			worlds := benchNetWorlds(b, p)
			b.ResetTimer()
			runBenchNet(b, worlds, func(c *Comm) {
				for i := 0; i < b.N; i++ {
					Allreduce(c, make([]float64, 256), SumFloat64s)
				}
			})
		})
	}
}
