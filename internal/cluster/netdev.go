package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the network Device: each rank is its own OS process and
// messages travel as length-prefixed gob frames over one stream socket
// per rank pair (TCP or Unix domain), the MPJ Express "niodev" shape on
// top of the same Send/Recv/collective API as the in-process device.
//
// The simulated α+β·n cost model rides along unchanged: a frame carries
// the sender's simulated availability time as data, so per-rank clocks —
// and therefore every SimTime-based experiment — are bit-identical to an
// in-process run of the same program. What the net device adds is a real
// wall-clock story (per-process obs spans now measure actual transport)
// and worlds bigger than one address space.
//
// Wire safety: payloads cross a process boundary, so they must be
// encodable — gob-encodable concrete types, registered on both sides via
// RegisterWire (the common scalar/slice payload types are pre-registered
// below). peachyvet's `wiresafe` rule is the static gate for exactly this
// contract; a type it flags (channels, funcs, sync primitives, unexported
// fields) will fail here at runtime with a named error.

// NetConfig describes one process's membership in a multi-process world.
type NetConfig struct {
	// Size is the world size; Rank is this process's rank in [0, Size).
	Size, Rank int
	// Network is "unix" (default; race-free rendezvous via socket files)
	// or "tcp" (loopback or real machines).
	Network string
	// Addrs[r] is rank r's listen address: a socket path for "unix", a
	// host:port for "tcp". Every process must receive the same list.
	Addrs []string
	// DialTimeout bounds mesh establishment — peers may not have bound
	// their listeners yet, so dials retry until this expires (default 10s).
	DialTimeout time.Duration
}

// The PEACHY_* environment contract `peachy launch` uses to hand each
// spawned process its place in the world. OpenWorld reads it back.
const (
	envWorld = "PEACHY_WORLD"
	envRank  = "PEACHY_RANK"
	envNet   = "PEACHY_NET"
	envAddrs = "PEACHY_ADDRS"
)

// Launched reports whether this process was spawned by `peachy launch`
// (the PEACHY_RANK environment contract is present).
func Launched() bool { return os.Getenv(envRank) != "" }

// EnvNetConfig parses the PEACHY_* environment contract into a NetConfig.
// It errors if the contract is absent or malformed.
func EnvNetConfig() (NetConfig, error) {
	var cfg NetConfig
	rank, world := os.Getenv(envRank), os.Getenv(envWorld)
	if rank == "" || world == "" {
		return cfg, fmt.Errorf("cluster: not launched: %s/%s not set", envRank, envWorld)
	}
	var err error
	if cfg.Rank, err = strconv.Atoi(rank); err != nil {
		return cfg, fmt.Errorf("cluster: bad %s=%q", envRank, rank)
	}
	if cfg.Size, err = strconv.Atoi(world); err != nil {
		return cfg, fmt.Errorf("cluster: bad %s=%q", envWorld, world)
	}
	cfg.Network = os.Getenv(envNet)
	if cfg.Network == "" {
		cfg.Network = "unix"
	}
	cfg.Addrs = strings.Split(os.Getenv(envAddrs), ",")
	if len(cfg.Addrs) != cfg.Size {
		return cfg, fmt.Errorf("cluster: %s has %d addresses for world size %d", envAddrs, len(cfg.Addrs), cfg.Size)
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return cfg, fmt.Errorf("cluster: rank %d outside world size %d", cfg.Rank, cfg.Size)
	}
	return cfg, nil
}

// OpenWorld creates the World an exhibit should run on. Normally it is an
// in-process world of `ranks` goroutine ranks. When the process was
// spawned by `peachy launch`, the PEACHY_* environment overrides the flag:
// the returned World is this process's single rank of a multi-process
// world on the net device (the same SPMD body then runs per process).
// Callers should `defer world.Close()` and gate once-per-world output on
// world.Lead().
func OpenWorld(ranks int, opts Options) (*World, error) {
	if !Launched() {
		return NewWorldOpts(ranks, opts), nil
	}
	cfg, err := EnvNetConfig()
	if err != nil {
		return nil, err
	}
	return NewNetWorld(cfg, opts)
}

// NewNetWorld joins a multi-process world: it binds this rank's listener,
// establishes one connection to every peer (lower ranks accept, higher
// ranks dial — one connection per rank pair) and returns once the full
// mesh is up, which doubles as the world's startup barrier. The returned
// World holds only the local rank; Run executes its function once, on
// that rank.
func NewNetWorld(cfg NetConfig, opts Options) (*World, error) {
	if cfg.Size < 1 || cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("cluster: bad net world rank %d of %d", cfg.Rank, cfg.Size)
	}
	if len(cfg.Addrs) != cfg.Size {
		return nil, fmt.Errorf("cluster: %d addresses for world size %d", len(cfg.Addrs), cfg.Size)
	}
	network := cfg.Network
	if network == "" {
		network = "unix"
	}
	if network != "unix" && network != "tcp" {
		return nil, fmt.Errorf("cluster: unsupported network %q (want unix or tcp)", network)
	}
	w := &World{size: cfg.Size, opts: opts, local: cfg.Rank}
	w.boxes = make([]*mailbox, cfg.Size)
	w.comms = make([]*Comm, cfg.Size)
	w.boxes[cfg.Rank] = newMailbox(cfg.Size)
	w.comms[cfg.Rank] = &Comm{world: w, rank: cfg.Rank}

	d := &netDevice{
		world:   w,
		rank:    cfg.Rank,
		network: network,
		box:     w.boxes[cfg.Rank],
		conns:   make([]net.Conn, cfg.Size),
		writers: make([]*frameWriter, cfg.Size),
		state:   make([]atomic.Pointer[string], cfg.Size),
	}
	w.dev = d
	if err := d.connect(network, cfg); err != nil {
		d.close()
		return nil, err
	}
	for r, conn := range d.conns {
		if conn != nil {
			go d.readLoop(r, conn)
		}
	}
	return w, nil
}

// netDevice moves messages over one stream socket per rank pair.
type netDevice struct {
	world    *World
	rank     int
	network  string // "unix" or "tcp"
	box      *mailbox
	listener net.Listener
	conns    []net.Conn     // peer rank -> connection (nil at self)
	writers  []*frameWriter // peer rank -> framed gob encoder
	state    []atomic.Pointer[string]
	closing  atomic.Bool
	closeMu  sync.Mutex
}

// wireMsg is the on-the-wire form of message. The receiver restamps the
// local arrival seq, so seq does not travel.
type wireMsg struct {
	Src, Tag int
	Bytes    int
	Arrive   float64 // sender's simulated clock — keeps the cost model exact
	Op, Site string  // Verify stamps
	Kind     uint8
	Payload  any
}

// Payload kinds: gob cannot encode nil or struct{} (no exported fields)
// as interface values, and both are legitimate payloads (Barrier sends
// struct{}{}), so they travel as a kind tag with no payload bytes.
const (
	payloadNil uint8 = iota
	payloadEmpty
	payloadValue
)

// connect establishes the full mesh. Each pair (i, j) with i < j gets
// exactly one connection: j dials i's listener and sends a 4-byte rank
// hello; i accepts and reads it. The listener is bound before any dial,
// and dials retry while peers are still binding, so start order does not
// matter.
func (d *netDevice) connect(network string, cfg NetConfig) error {
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	deadline := time.Now().Add(timeout)
	if d.rank < cfg.Size-1 { // someone will dial us
		ln, err := net.Listen(network, cfg.Addrs[d.rank])
		if err != nil {
			return fmt.Errorf("cluster: rank %d listen %s %s: %w", d.rank, network, cfg.Addrs[d.rank], err)
		}
		d.listener = ln
	}
	// Dial every lower rank. The kernel's listen backlog holds our hello
	// until the peer gets around to accepting, so dialing serially before
	// accepting cannot deadlock.
	for peer := 0; peer < d.rank; peer++ {
		conn, err := dialRetry(network, cfg.Addrs[peer], deadline)
		if err != nil {
			return fmt.Errorf("cluster: rank %d dial rank %d (%s): %w", d.rank, peer, cfg.Addrs[peer], err)
		}
		var hello [4]byte
		binary.BigEndian.PutUint32(hello[:], uint32(d.rank))
		if _, err := conn.Write(hello[:]); err != nil {
			return fmt.Errorf("cluster: rank %d hello to rank %d: %w", d.rank, peer, err)
		}
		d.attach(peer, conn)
	}
	// Accept every higher rank.
	for accepted := 0; accepted < cfg.Size-1-d.rank; accepted++ {
		switch ln := d.listener.(type) {
		case *net.TCPListener:
			ln.SetDeadline(deadline)
		case *net.UnixListener:
			ln.SetDeadline(deadline)
		}
		conn, err := d.listener.Accept()
		if err != nil {
			return fmt.Errorf("cluster: rank %d accepting peers (%d of %d connected): %w",
				d.rank, accepted, cfg.Size-1-d.rank, err)
		}
		var hello [4]byte
		conn.SetReadDeadline(deadline)
		if _, err := io.ReadFull(conn, hello[:]); err != nil {
			return fmt.Errorf("cluster: rank %d reading hello: %w", d.rank, err)
		}
		conn.SetReadDeadline(time.Time{})
		peer := int(binary.BigEndian.Uint32(hello[:]))
		if peer <= d.rank || peer >= cfg.Size || d.conns[peer] != nil {
			return fmt.Errorf("cluster: rank %d got bad hello from rank %d", d.rank, peer)
		}
		d.attach(peer, conn)
	}
	// The mesh is complete; nothing else will connect.
	if d.listener != nil {
		d.listener.Close()
		d.listener = nil
	}
	return nil
}

func (d *netDevice) attach(peer int, conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // latency over throughput: frames are small
	}
	d.conns[peer] = conn
	d.writers[peer] = newFrameWriter(conn)
	s := "open"
	d.state[peer].Store(&s)
}

func dialRetry(network, addr string, deadline time.Time) (net.Conn, error) {
	for {
		conn, err := net.DialTimeout(network, addr, time.Until(deadline))
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(2 * time.Millisecond) // peer has not bound its listener yet
	}
}

// deliver implements Device: local delivery is a mailbox put, remote
// delivery is one frame on the peer's connection. Only the local rank's
// goroutine sends, so the writer needs no lock — which also makes it the
// place to fold the wire-level net.tx aggregate (frame count, frame
// bytes, encode+write wall time) into the rank's recorder. Wall times
// stay out of the deterministic timeline: WireSpan records counters and
// a histogram only, never a trace event.
func (d *netDevice) deliver(dst int, msg message) {
	if dst == d.rank {
		d.box.put(msg)
		return
	}
	wm := wireMsg{
		Src: msg.src, Tag: msg.tag, Bytes: msg.bytes, Arrive: msg.arrive,
		Op: msg.op, Site: msg.site, Kind: payloadValue, Payload: msg.payload,
	}
	switch msg.payload.(type) {
	case nil:
		wm.Kind, wm.Payload = payloadNil, nil
	case struct{}:
		wm.Kind, wm.Payload = payloadEmpty, nil
	}
	rec := d.world.comms[d.rank].rec // only the local rank delivers remotely
	start := rec.Now()
	frameB, err := d.writers[dst].writeMsg(&wm)
	if err != nil {
		if isConnError(err) {
			panic(fmt.Sprintf(
				"cluster: rank %d: send to rank %d failed: %v — connection closed/reset, remote process likely exited or crashed",
				d.rank, dst, err))
		}
		// Not a transport failure: gob refused the payload.
		panic(fmt.Sprintf(
			"cluster: rank %d: payload %T is not wire-safe: %v — netdev payloads must be gob-encodable and registered (cluster.RegisterWire); run `go run ./cmd/peachyvet` for the static wiresafe check",
			d.rank, msg.payload, err))
	}
	rec.WireSpan("net.tx", frameB, rec.Now()-start)
}

func isConnError(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, net.ErrClosed) || strings.Contains(err.Error(), "broken pipe") ||
		strings.Contains(err.Error(), "connection reset")
}

// readLoop decodes frames from one peer into the local mailbox. On
// connection close/reset it marks the peer down so a blocked receive
// fails with a dead-peer diagnosis instead of timing out. Each delivered
// message is stamped with its wire size and gob decode time (socket wait
// excluded — the frame is fully buffered before the decode is timed);
// the rank's goroutine folds the stamps into the recorder in recvRaw,
// keeping the recorder single-writer.
func (d *netDevice) readLoop(peer int, conn net.Conn) {
	fr := &frameReader{r: bufio.NewReader(conn)}
	dec := gob.NewDecoder(fr)
	for {
		fr.frameB = 0
		err := fr.fetch()
		var decNs int64
		var wm wireMsg
		if err == nil {
			start := time.Now()
			err = dec.Decode(&wm)
			decNs = time.Since(start).Nanoseconds()
		}
		if err != nil {
			if d.closing.Load() {
				return // normal shutdown, not a dead peer
			}
			desc := "connection reset: " + err.Error()
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				desc = "connection closed"
			}
			s := desc
			d.state[peer].Store(&s)
			d.box.markPeerDown(peer, fmt.Errorf("rank %d: %s", peer, desc))
			return
		}
		var payload any = wm.Payload
		switch wm.Kind {
		case payloadNil:
			payload = nil
		case payloadEmpty:
			payload = struct{}{}
		}
		d.box.put(message{
			src: peer, tag: wm.Tag, payload: payload, bytes: wm.Bytes,
			arrive: wm.Arrive, op: wm.Op, site: wm.Site,
			wireB: fr.frameB, decNs: decNs,
		})
	}
}

// peerInfo implements Device for the deadlock dump: remote mailboxes are
// invisible, so report the transport state of the link instead.
func (d *netDevice) peerInfo(rank int) string {
	if rank == d.rank {
		return "local"
	}
	s := d.state[rank].Load()
	if s == nil {
		return "remote rank (never connected)"
	}
	if *s == "open" {
		return "remote rank (connection open; its mailbox state is not visible from this process)"
	}
	return "remote rank: " + *s + " — the process exited or crashed"
}

func (d *netDevice) name() string { return "net/" + d.network }

func (d *netDevice) close() error {
	d.closeMu.Lock()
	defer d.closeMu.Unlock()
	if d.closing.Swap(true) {
		return nil
	}
	if d.listener != nil {
		d.listener.Close()
	}
	for _, conn := range d.conns {
		if conn != nil {
			conn.Close()
		}
	}
	return nil
}

// frameWriter frames each gob-encoded message with a 4-byte big-endian
// length prefix. The encoder is persistent per connection, so gob type
// descriptors cross the wire once, with the first frame that uses them.
type frameWriter struct {
	conn io.Writer
	buf  bytes.Buffer
	enc  *gob.Encoder
	hdr  [4]byte
}

func newFrameWriter(conn io.Writer) *frameWriter {
	fw := &frameWriter{conn: conn}
	fw.enc = gob.NewEncoder(&fw.buf)
	return fw
}

// writeMsg encodes m and writes it as one frame, returning the bytes put
// on the wire (header + gob body) for the sender's net.tx aggregate.
func (fw *frameWriter) writeMsg(m *wireMsg) (int64, error) {
	fw.buf.Reset()
	if err := fw.enc.Encode(m); err != nil {
		return 0, err
	}
	binary.BigEndian.PutUint32(fw.hdr[:], uint32(fw.buf.Len()))
	if _, err := fw.conn.Write(fw.hdr[:]); err != nil {
		return 0, err
	}
	if _, err := fw.conn.Write(fw.buf.Bytes()); err != nil {
		return 0, err
	}
	return int64(len(fw.hdr) + fw.buf.Len()), nil
}

// frameReader re-assembles the framed stream for a persistent gob
// decoder. It works a whole frame at a time: fetch pulls the next frame
// off the socket into a buffer, and Read serves the decoder from that
// buffer. The split is what makes the net.rx decode timing honest — the
// socket wait happens in fetch, so the decoder's wall time measures gob
// work, not idle time waiting for a peer to send.
type frameReader struct {
	r      *bufio.Reader
	buf    []byte // current frame's body
	pos    int
	frameB int64 // wire bytes (headers + bodies) fetched since the last reset
}

// fetch reads one whole frame (header + body) into the buffer.
func (fr *frameReader) fetch() error {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if cap(fr.buf) < n {
		fr.buf = make([]byte, n)
	}
	fr.buf = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	fr.pos = 0
	fr.frameB += int64(len(hdr) + n)
	return nil
}

func (fr *frameReader) Read(p []byte) (int, error) {
	if fr.pos == len(fr.buf) {
		// The decoder wants bytes beyond the fetched frame — a gob
		// type-descriptor frame preceding its value. Pull the next one.
		if err := fr.fetch(); err != nil {
			return 0, err
		}
	}
	n := copy(p, fr.buf[fr.pos:])
	fr.pos += n
	return n, nil
}

// RegisterWire registers payload types for the net device's gob frames.
// Any concrete type that crosses the wire inside a message must be
// registered by both sides before the world runs: call it from an init
// function with zero values of your payload types (and, for types that
// ride Gather/Scatter/Allgather, the slice type []T too — the binomial
// trees forward segments). The common scalar and slice payloads are
// pre-registered.
func RegisterWire(vs ...any) {
	for _, v := range vs {
		gob.Register(v)
	}
}

func init() {
	// The payload vocabulary of the built-in substrates and exhibits.
	// Slices-of-slices appear because tree Gather/Scatter forward []T
	// segments of user payloads that are themselves slices.
	RegisterWire(
		int32(0), int64(0), uint64(0), float32(0),
		[]float64(nil), []float32(nil), []int(nil), []int32(nil),
		[]int64(nil), []uint64(nil), []bool(nil), []byte(nil), []string(nil),
		[][]float64(nil), [][]float32(nil), [][]int(nil), [][]int64(nil),
		[][]string(nil), [][][]float64(nil),
		splitEntry{}, []splitEntry(nil),
	)
}
