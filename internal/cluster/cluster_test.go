package cluster

import (
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSendRecvRoundTrip(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 7, []float64{1, 2, 3})
		} else {
			got := Recv[[]float64](c, 0, 7)
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("bad payload %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvFIFOPerPair(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 100; i++ {
				Send(c, 1, 5, i)
			}
		} else {
			for i := 0; i < 100; i++ {
				if got := Recv[int](c, 0, 5); got != i {
					t.Errorf("out of order: got %d want %d", got, i)
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvMatchesTag(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 1, "tagged-1")
			Send(c, 1, 2, "tagged-2")
		} else {
			// Receive in reverse tag order.
			if got := Recv[string](c, 0, 2); got != "tagged-2" {
				t.Errorf("tag 2: %q", got)
			}
			if got := Recv[string](c, 0, 1); got != "tagged-1" {
				t.Errorf("tag 1: %q", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnySource(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) {
		if c.Rank() != 0 {
			Send(c, 0, 9, c.Rank())
			return
		}
		seen := map[int]bool{}
		for i := 0; i < 3; i++ {
			v, src := RecvFrom[int](c, AnySource, 9)
			if v != src {
				t.Errorf("payload %d from %d", v, src)
			}
			seen[src] = true
		}
		if len(seen) != 3 {
			t.Errorf("expected 3 distinct senders, got %v", seen)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicAborts(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			panic("boom")
		}
		// Rank 1 would deadlock without abort propagation.
		defer func() { recover() }()
		Recv[int](c, 0, 1)
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected panic error, got %v", err)
	}
}

func TestBarrierSynchronises(t *testing.T) {
	const P = 5
	w := NewWorld(P)
	var before, after int32
	err := w.Run(func(c *Comm) {
		atomic.AddInt32(&before, 1)
		c.Barrier()
		if atomic.LoadInt32(&before) != P {
			atomic.AddInt32(&after, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if after != 0 {
		t.Errorf("%d ranks passed the barrier before all entered", after)
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	const P = 6
	for root := 0; root < P; root++ {
		w := NewWorld(P)
		err := w.Run(func(c *Comm) {
			v := -1
			if c.Rank() == root {
				v = 4242
			}
			got := Bcast(c, root, v)
			if got != 4242 {
				t.Errorf("root=%d rank=%d got %d", root, c.Rank(), got)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestReduceSum(t *testing.T) {
	const P = 7
	for root := 0; root < P; root++ {
		w := NewWorld(P)
		err := w.Run(func(c *Comm) {
			got := Reduce(c, root, c.Rank()+1, func(a, b int) int { return a + b })
			if c.Rank() == root && got != P*(P+1)/2 {
				t.Errorf("root=%d sum=%d want %d", root, got, P*(P+1)/2)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllreduceSlice(t *testing.T) {
	const P = 4
	w := NewWorld(P)
	err := w.Run(func(c *Comm) {
		local := []float64{float64(c.Rank()), 1}
		got := Allreduce(c, local, SumFloat64s)
		if got[0] != 0+1+2+3 || got[1] != P {
			t.Errorf("rank %d allreduce = %v", c.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAllreducePayloadReuse pins the payload-reuse contract the static
// analyzer (hotalloc, and the ownership engine's Allreduce exemption)
// relies on: the payload argument may be zeroed and refilled the moment
// the call returns, on both the recursive-doubling path (P = 2ᵏ) and
// the reduce+bcast fallback (odd P), without corrupting any rank's
// result — the pattern of a reduction buffer hoisted out of a hot loop.
func TestAllreducePayloadReuse(t *testing.T) {
	for _, P := range []int{4, 3} { // recursive doubling, then fallback
		w := NewWorld(P)
		err := w.Run(func(c *Comm) {
			buf := make([]float64, 2)
			for it := 0; it < 5; it++ {
				for j := range buf {
					buf[j] = 0
				}
				buf[0] = float64(c.Rank())
				buf[1] = float64(it)
				red := Allreduce(c, buf, SumFloat64s)
				// Immediately scribble over the payload argument: no
				// other rank's view of the reduction may change.
				buf[0], buf[1] = -1, -1
				c.Barrier()
				wantSum := float64(P*(P-1)) / 2
				if red[0] != wantSum || red[1] != float64(it*P) {
					t.Errorf("P=%d rank %d it %d: red = %v, want [%v %v]",
						P, c.Rank(), it, red, wantSum, it*P)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllreduceProperty(t *testing.T) {
	// Allreduce max over random per-rank values equals the true max on
	// every rank.
	f := func(vals [5]int16) bool {
		w := NewWorld(5)
		want := vals[0]
		for _, v := range vals[1:] {
			if v > want {
				want = v
			}
		}
		ok := int32(1)
		err := w.Run(func(c *Comm) {
			got := Allreduce(c, vals[c.Rank()], func(a, b int16) int16 {
				if a > b {
					return a
				}
				return b
			})
			if got != want {
				atomic.StoreInt32(&ok, 0)
			}
		})
		return err == nil && ok == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGatherScatter(t *testing.T) {
	const P = 5
	w := NewWorld(P)
	err := w.Run(func(c *Comm) {
		// Scatter rank-indexed strings, then gather them back.
		var parts []string
		if c.Rank() == 2 {
			parts = []string{"a", "b", "c", "d", "e"}
		}
		mine := Scatter(c, 2, parts)
		want := string(rune('a' + c.Rank()))
		if mine != want {
			t.Errorf("rank %d scattered %q want %q", c.Rank(), mine, want)
		}
		all := Gather(c, 0, mine)
		if c.Rank() == 0 {
			if strings.Join(all, "") != "abcde" {
				t.Errorf("gather = %v", all)
			}
		} else if all != nil {
			t.Errorf("non-root gather returned %v", all)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	const P = 6
	w := NewWorld(P)
	err := w.Run(func(c *Comm) {
		all := Allgather(c, c.Rank()*10)
		for r := 0; r < P; r++ {
			if all[r] != r*10 {
				t.Errorf("rank %d: all[%d]=%d", c.Rank(), r, all[r])
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	const P = 4
	w := NewWorld(P)
	err := w.Run(func(c *Comm) {
		parts := make([]int, P)
		for i := range parts {
			parts[i] = c.Rank()*100 + i
		}
		got := Alltoall(c, parts)
		for src := 0; src < P; src++ {
			if got[src] != src*100+c.Rank() {
				t.Errorf("rank %d from %d: %d", c.Rank(), src, got[src])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScan(t *testing.T) {
	const P = 6
	w := NewWorld(P)
	err := w.Run(func(c *Comm) {
		got := Scan(c, 1, func(a, b int) int { return a + b })
		if got != c.Rank()+1 {
			t.Errorf("rank %d scan = %d", c.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesInterleaveWithP2P(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) {
		c.Barrier()
		if c.Rank() == 0 {
			Send(c, 1, 3, 99)
		}
		s := Allreduce(c, 1, func(a, b int) int { return a + b })
		if s != 3 {
			t.Errorf("allreduce %d", s)
		}
		if c.Rank() == 1 {
			if got := Recv[int](c, 0, 3); got != 99 {
				t.Errorf("p2p after collectives got %d", got)
			}
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimClockAdvances(t *testing.T) {
	opts := Options{Latency: 1e-6, ByteTime: 1e-9}
	w := NewWorldOpts(4, opts)
	err := w.Run(func(c *Comm) {
		buf := make([]float64, 1000) // 8000 bytes
		Allreduce(c, buf, SumFloat64s)
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.SimTime() <= 0 {
		t.Error("sim clock did not advance")
	}
	// Reduce+Bcast over 4 ranks: each message costs at least latency.
	if w.TotalMessages() < 6 {
		t.Errorf("too few messages: %d", w.TotalMessages())
	}
	if w.TotalBytes() < 6*8000 {
		t.Errorf("too few bytes: %d", w.TotalBytes())
	}
}

func TestSimClockMessageOrdering(t *testing.T) {
	// Receiver's clock must be >= sender's clock at send completion.
	w := NewWorldOpts(2, Options{Latency: 1.0, ByteTime: 0})
	var recvClock float64
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.AdvanceClock(10)
			Send(c, 1, 1, 0)
		} else if c.Rank() == 1 {
			Recv[int](c, 0, 1)
			recvClock = c.Clock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if recvClock < 11 {
		t.Errorf("receiver clock %v, want >= 11 (10 compute + 1 latency)", recvClock)
	}
}

func TestBarrierLogCost(t *testing.T) {
	// Barrier simulated time should grow logarithmically, not linearly.
	cost := func(p int) float64 {
		w := NewWorldOpts(p, Options{Latency: 1, ByteTime: 0})
		if err := w.Run(func(c *Comm) { c.Barrier() }); err != nil {
			t.Fatal(err)
		}
		return w.SimTime()
	}
	c8, c64 := cost(8), cost(64)
	if c64 > 3*c8 {
		t.Errorf("barrier cost not logarithmic: P=8 %.0f, P=64 %.0f", c8, c64)
	}
}

func TestResetStats(t *testing.T) {
	w := NewWorld(2)
	if err := w.Run(func(c *Comm) { c.Barrier() }); err != nil {
		t.Fatal(err)
	}
	w.ResetStats()
	if w.SimTime() != 0 || w.TotalMessages() != 0 || w.TotalBytes() != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestSplitEven(t *testing.T) {
	xs := []int{0, 1, 2, 3, 4, 5, 6}
	parts := SplitEven(xs, 3)
	if len(parts[0]) != 3 || len(parts[1]) != 2 || len(parts[2]) != 2 {
		t.Errorf("sizes %d %d %d", len(parts[0]), len(parts[1]), len(parts[2]))
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 7 {
		t.Error("SplitEven lost elements")
	}
}

func TestBlockRangeCoversAll(t *testing.T) {
	f := func(n uint8, p uint8) bool {
		nn, pp := int(n), int(p%16)+1
		prev := 0
		for r := 0; r < pp; r++ {
			lo, hi := BlockRange(nn, pp, r)
			if lo != prev || hi < lo {
				return false
			}
			prev = hi
		}
		return prev == nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorldSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWorld(0) did not panic")
		}
	}()
	NewWorld(0)
}

func TestSizerPayload(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 1, sized{})
		} else {
			Recv[sized](c, 0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalBytes() != 12345 {
		t.Errorf("Sizer bytes %d, want 12345", w.TotalBytes())
	}
}

type sized struct{}

func (sized) WireSize() int { return 12345 }

func TestProbeAndTryRecv(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			// Nothing waiting yet.
			if c.Probe(1, 5) {
				t.Error("probe true before send")
			}
			if _, ok := TryRecv[int](c, 1, 5); ok {
				t.Error("TryRecv got phantom message")
			}
			Send(c, 1, 9, "go")
			// Wait for the reply via blocking Recv to avoid spinning.
			if got := Recv[int](c, 1, 5); got != 42 {
				t.Errorf("reply %d", got)
			}
		} else {
			Recv[string](c, 0, 9)
			Send(c, 0, 5, 42)
			c.Barrier()
			return
		}
		c.Barrier()
		// After the barrier rank 1 has sent nothing more.
		if c.Probe(AnySource, AnyTag) {
			t.Error("probe true after drain")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTryRecvDrainsInOrder(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 5; i++ {
				Send(c, 1, 7, i)
			}
			return
		}
		// Blocking-receive the first to guarantee arrival of the rest
		// (same sender, FIFO mailbox appends before this returns only
		// for messages already sent).
		first := Recv[int](c, 0, 7)
		if first != 0 {
			t.Errorf("first %d", first)
		}
		got := []int{first}
		for len(got) < 5 {
			if v, ok := TryRecv[int](c, 0, 7); ok {
				got = append(got, v)
			}
		}
		for i, v := range got {
			if v != i {
				t.Errorf("order %v", got)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallTransposeProperty(t *testing.T) {
	// Alltoall is a matrix transpose: rank r receives in[s][r] from each
	// sender s.
	f := func(pRaw uint8, base int16) bool {
		p := int(pRaw%6) + 2
		w := NewWorld(p)
		bad := int32(0)
		err := w.Run(func(c *Comm) {
			parts := make([]int, p)
			for i := range parts {
				parts[i] = int(base) + c.Rank()*1000 + i
			}
			got := Alltoall(c, parts)
			for src := 0; src < p; src++ {
				if got[src] != int(base)+src*1000+c.Rank() {
					atomic.AddInt32(&bad, 1)
				}
			}
		})
		return err == nil && bad == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
