package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

// perRank records every collective result one rank observed while running
// the property script. Reduce partials are unspecified off-root and Gather
// returns nil off-root, so those fields hold zero values on non-roots.
type perRank struct {
	Bcast     float64
	Reduce    int64
	Allreduce []float64
	Gather    []int64
	Allgather []string
	Scatter   []float64
	Alltoall  []int64
	Scan      int64
}

// collectiveScript runs one call to every collective on a fresh world of
// size p and returns the per-rank observations plus the world (for sim
// statistics). All payloads are integer-valued, so sums are exact under
// any reduction order — recursive doubling and the binomial tree fold in
// different orders, which would diverge in the last float64 bits for
// general inputs but not for integers within 2^53.
func collectiveScript(t *testing.T, p int, opts Options) ([]perRank, *World) {
	t.Helper()
	out := make([]perRank, p)
	w := NewWorldOpts(p, opts)
	err := w.Run(func(c *Comm) {
		r := c.Rank()
		rec := &out[r] // each rank writes only its own slot
		c.Barrier()
		rec.Bcast = Bcast(c, p-1, float64((r+1)*1000))

		rec.Reduce = Reduce(c, p/2, int64(r+1), func(a, b int64) int64 { return a + b })
		if r != p/2 {
			rec.Reduce = 0 // non-root partials are explicitly unspecified
		}

		vec := []float64{float64(r + 1), float64((r + 1) * (r + 1))}
		rec.Allreduce = Allreduce(c, vec, SumFloat64s)

		rec.Gather = Gather(c, p/2, int64(r*10+1))

		rec.Allgather = Allgather(c, fmt.Sprintf("rank-%d", r))

		var parts [][]float64
		if r == p/2 {
			parts = make([][]float64, p)
			for i := range parts {
				parts[i] = []float64{float64(2 * i), float64(2*i + 1)}
			}
		}
		rec.Scatter = Scatter(c, p/2, parts)

		a2a := make([]int64, p)
		for i := range a2a {
			a2a[i] = int64(r*100 + i)
		}
		rec.Alltoall = Alltoall(c, a2a)

		rec.Scan = Scan(c, int64(r+1), func(a, b int64) int64 { return a + b })
		c.Barrier()
	})
	if err != nil {
		t.Fatalf("P=%d opts=%+v: Run failed: %v", p, opts, err)
	}
	return out, w
}

// wantPerRank computes the script's ground truth directly, with no
// collective machinery involved.
func wantPerRank(p int) []perRank {
	var sum1, sum2 float64
	var reduceSum int64
	gathered := make([]int64, p)
	names := make([]string, p)
	for r := 0; r < p; r++ {
		sum1 += float64(r + 1)
		sum2 += float64((r + 1) * (r + 1))
		reduceSum += int64(r + 1)
		gathered[r] = int64(r*10 + 1)
		names[r] = fmt.Sprintf("rank-%d", r)
	}
	out := make([]perRank, p)
	scan := int64(0)
	for r := 0; r < p; r++ {
		scan += int64(r + 1)
		a2a := make([]int64, p)
		for i := 0; i < p; i++ {
			a2a[i] = int64(i*100 + r) // what rank i addressed to rank r
		}
		out[r] = perRank{
			Bcast:     float64(p * 1000), // root p-1 contributed (p-1+1)*1000
			Allreduce: []float64{sum1, sum2},
			Allgather: append([]string(nil), names...),
			Scatter:   []float64{float64(2 * r), float64(2*r + 1)},
			Alltoall:  a2a,
			Scan:      scan,
		}
		if r == p/2 {
			out[r].Reduce = reduceSum
			out[r].Gather = append([]int64(nil), gathered...)
		}
	}
	return out
}

// TestCollectivesMatchBaseline is the property test for the optimized
// collective algorithms: for every world size 1..9 (covering P=1, powers
// of two that take the recursive-doubling/pairwise paths, and non-powers
// that take the fallbacks), every collective must produce exactly the
// values of (a) direct ground-truth computation and (b) the
// BaselineCollectives reference algorithms — with and without the runtime
// verifier enabled.
func TestCollectivesMatchBaseline(t *testing.T) {
	for p := 1; p <= 9; p++ {
		p := p
		t.Run(fmt.Sprintf("P%d", p), func(t *testing.T) {
			want := wantPerRank(p)
			variants := []struct {
				name string
				opts Options
			}{
				{"optimized", DefaultOptions()},
				{"baseline", func() Options { o := DefaultOptions(); o.BaselineCollectives = true; return o }()},
				{"optimized+verify", VerifyOptions()},
				{"baseline+verify", func() Options { o := VerifyOptions(); o.BaselineCollectives = true; return o }()},
			}
			results := make([][]perRank, len(variants))
			for i, v := range variants {
				got, _ := collectiveScript(t, p, v.opts)
				results[i] = got
				for r := range got {
					if !reflect.DeepEqual(got[r], want[r]) {
						t.Errorf("%s rank %d:\n got %+v\nwant %+v", v.name, r, got[r], want[r])
					}
				}
			}
			// The baseline run is the oracle: optimized must agree with it
			// rank by rank (redundant with the ground-truth check above, but
			// catches the two diverging identically from `want`).
			if !reflect.DeepEqual(results[0], results[1]) {
				t.Errorf("optimized and baseline worlds disagree:\n opt %+v\nbase %+v", results[0], results[1])
			}
		})
	}
}

// TestCollectiveSimCostDeterministic: the simulated cost of a collective
// script must not depend on goroutine scheduling — two runs of the same
// program on identical worlds must report identical SimTime, message and
// byte totals. (This is what makes the recorded sim-us columns in the
// experiment tables reproducible.)
func TestCollectiveSimCostDeterministic(t *testing.T) {
	for _, p := range []int{4, 7, 8} {
		_, w1 := collectiveScript(t, p, DefaultOptions())
		_, w2 := collectiveScript(t, p, DefaultOptions())
		if w1.SimTime() != w2.SimTime() {
			t.Errorf("P=%d: SimTime not deterministic: %v vs %v", p, w1.SimTime(), w2.SimTime())
		}
		if w1.TotalMessages() != w2.TotalMessages() {
			t.Errorf("P=%d: message count not deterministic: %d vs %d", p, w1.TotalMessages(), w2.TotalMessages())
		}
		if w1.TotalBytes() != w2.TotalBytes() {
			t.Errorf("P=%d: byte count not deterministic: %d vs %d", p, w1.TotalBytes(), w2.TotalBytes())
		}
	}
}

// TestAllreduceLogScaling pins the O(log P) critical-path shape of the
// recursive-doubling Allreduce under the latency cost model: doubling a
// power-of-two world adds one round (one alpha of critical path per
// rank), where the baseline reduce+bcast adds two tree levels. With
// ByteTime zeroed the arithmetic is exact.
func TestAllreduceLogScaling(t *testing.T) {
	alpha := 1e-6
	cost := func(p int, baseline bool) float64 {
		opts := Options{Latency: alpha, BaselineCollectives: baseline}
		w := NewWorldOpts(p, opts)
		if err := w.Run(func(c *Comm) {
			Allreduce(c, float64(c.Rank()), func(a, b float64) float64 { return a + b })
		}); err != nil {
			t.Fatalf("P=%d baseline=%v: %v", p, baseline, err)
		}
		return w.SimTime()
	}
	for _, p := range []int{2, 4, 8, 16} {
		rd := cost(p, false)
		logP := 0
		for 1<<logP < p {
			logP++
		}
		// Every rank sends exactly log2(P) zero-... 8-byte messages, but
		// ByteTime is zero, so each rank's clock advances exactly
		// logP*alpha per round of recursive doubling.
		want := float64(logP) * alpha
		if diff := rd - want; diff < -1e-18 || diff > 1e-12 {
			t.Errorf("P=%d: recursive-doubling Allreduce SimTime=%g, want ~%g (log2 P rounds)", p, rd, want)
		}
		base := cost(p, true)
		if p >= 4 && base <= rd {
			t.Errorf("P=%d: baseline reduce+bcast SimTime %g not above recursive doubling %g", p, base, rd)
		}
	}
}
