package cluster

import (
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// netAddrs plans one unix socket path per rank inside the test's temp
// dir. Paths are kept short: AF_UNIX caps sun_path at ~104 bytes.
func netAddrs(t *testing.T, size int) []string {
	t.Helper()
	dir := t.TempDir()
	addrs := make([]string, size)
	for r := range addrs {
		addrs[r] = filepath.Join(dir, fmt.Sprintf("%d.s", r))
	}
	return addrs
}

// runNetWorld brings up a size-rank net-device world inside this test
// process (one goroutine per rank, each with its own World, exactly as P
// separate processes would) and runs f per rank. It returns each rank's
// Run error and its World (already closed).
func runNetWorld(t *testing.T, network string, addrs []string, opts Options, f func(c *Comm)) ([]error, []*World) {
	t.Helper()
	size := len(addrs)
	errs := make([]error, size)
	worlds := make([]*World, size)
	var wg sync.WaitGroup
	wg.Add(size)
	for r := 0; r < size; r++ {
		go func(r int) {
			defer wg.Done()
			w, err := NewNetWorld(NetConfig{
				Size: size, Rank: r, Network: network, Addrs: addrs,
				DialTimeout: 10 * time.Second,
			}, opts)
			if err != nil {
				errs[r] = err
				return
			}
			worlds[r] = w
			errs[r] = w.Run(f)
			w.Close()
		}(r)
	}
	wg.Wait()
	return errs, worlds
}

func TestNetWorldPingPong(t *testing.T) {
	addrs := netAddrs(t, 2)
	got := make([]float64, 2)
	errs, _ := runNetWorld(t, "unix", addrs, DefaultOptions(), func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 7, []float64{1, 2, 3})
			got[0] = Recv[[]float64](c, 1, 8)[0]
		} else {
			v := Recv[[]float64](c, 0, 7)
			Send(c, 0, 8, []float64{v[0] + v[1] + v[2]})
			got[1] = v[2]
		}
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if got[0] != 6 || got[1] != 3 {
		t.Fatalf("payloads corrupted in transit: got %v", got)
	}
}

func TestNetWorldTCPPingPong(t *testing.T) {
	// The tcp path shares everything but Listen/Dial with unix, so one
	// round trip suffices. Ports are picked by binding :0 in-process.
	addrs := []string{"127.0.0.1:0", ""}
	// Rank 1 dials rank 0 only, so only rank 0 needs a real address; grab
	// a free port by asking the kernel.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback tcp: %v", err)
	}
	addrs[0] = ln.Addr().String()
	addrs[1] = "127.0.0.1:0" // never listened on (rank Size-1 has no listener)
	ln.Close()

	var got int
	errs, _ := runNetWorld(t, "tcp", addrs, DefaultOptions(), func(c *Comm) {
		if c.Rank() == 0 {
			got = Recv[int](c, 1, 1)
		} else {
			Send(c, 0, 1, 41+1)
		}
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if got != 42 {
		t.Fatalf("got %d over tcp, want 42", got)
	}
}

// TestNetWorldMatchesInProcess is the device contract test: the same SPMD
// program, exercising every collective plus point-to-point traffic, must
// produce identical results AND identical simulated clocks on the
// goroutine device and on the net device. The α+β·n cost model travels
// with the frames, so simulation-level experiments cannot tell the
// devices apart.
func TestNetWorldMatchesInProcess(t *testing.T) {
	const P = 4
	program := func(results [][]float64, clocks []float64) func(c *Comm) {
		return func(c *Comm) {
			r := c.Rank()
			c.Barrier()
			v := Bcast(c, 0, []float64{10, 20, 30, 40})
			sum := Allreduce(c, v[r], func(a, b float64) float64 { return a + b })
			all := Allgather(c, sum*float64(r+1))
			part := Scatter(c, 0, []float64{all[0], all[1], all[2], all[3]})
			red := Reduce(c, 0, part, func(a, b float64) float64 { return a + b })
			scan := Scan(c, float64(r+1), func(a, b float64) float64 { return a + b })
			parts := make([]int, c.Size())
			for i := range parts {
				parts[i] = r*10 + i
			}
			back := Alltoall(c, parts)
			ring := 0
			if c.Size() > 1 {
				Send(c, (r+1)%c.Size(), 5, r)
				ring = Recv[int](c, (r-1+c.Size())%c.Size(), 5)
			}
			acc := red + scan + float64(ring)
			for _, b := range back {
				acc += float64(b)
			}
			gathered := Gather(c, 0, acc)
			out := []float64{acc}
			if r == 0 {
				out = append(out, gathered...)
			}
			results[r] = out
			clocks[r] = c.Clock()
		}
	}

	inResults := make([][]float64, P)
	inClocks := make([]float64, P)
	if err := NewWorld(P).Run(program(inResults, inClocks)); err != nil {
		t.Fatalf("in-process run: %v", err)
	}

	netResults := make([][]float64, P)
	netClocks := make([]float64, P)
	errs, _ := runNetWorld(t, "unix", netAddrs(t, P), DefaultOptions(), program(netResults, netClocks))
	for r, err := range errs {
		if err != nil {
			t.Fatalf("net rank %d: %v", r, err)
		}
	}

	for r := 0; r < P; r++ {
		if len(inResults[r]) != len(netResults[r]) {
			t.Fatalf("rank %d: result shape differs: %v vs %v", r, inResults[r], netResults[r])
		}
		for i := range inResults[r] {
			if inResults[r][i] != netResults[r][i] {
				t.Errorf("rank %d result[%d]: in-process %v, net %v", r, i, inResults[r][i], netResults[r][i])
			}
		}
		if inClocks[r] != netClocks[r] {
			t.Errorf("rank %d simulated clock: in-process %v, net %v — cost model must be device-independent",
				r, inClocks[r], netClocks[r])
		}
	}
}

// TestNetWorldSpecialPayloads covers the payload kinds gob cannot encode
// as interface values: struct{}{} (Barrier's token) and typed nil.
func TestNetWorldSpecialPayloads(t *testing.T) {
	errs, _ := runNetWorld(t, "unix", netAddrs(t, 2), DefaultOptions(), func(c *Comm) {
		c.Barrier() // struct{}{} across the wire
		if c.Rank() == 0 {
			Send[[]float64](c, 1, 3, nil) // typed nil flattens to interface nil
		} else {
			if v := Recv[[]float64](c, 0, 3); v != nil {
				panic(fmt.Sprintf("nil payload arrived as %v", v))
			}
		}
		c.Barrier()
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestNetWorldSubComm runs Split + a sub-communicator collective over the
// wire (splitEntry is part of the pre-registered payload vocabulary).
func TestNetWorldSubComm(t *testing.T) {
	const P = 4
	sums := make([]float64, P)
	errs, _ := runNetWorld(t, "unix", netAddrs(t, P), DefaultOptions(), func(c *Comm) {
		sub := c.Split(c.Rank()%2, c.Rank())
		sums[c.Rank()] = AllreduceSub(sub, float64(c.Rank()+1), func(a, b float64) float64 { return a + b })
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	want := []float64{4, 6, 4, 6} // evens 1+3, odds 2+4
	for r := range sums {
		if sums[r] != want[r] {
			t.Fatalf("subcomm sums = %v, want %v", sums, want)
		}
	}
}

// TestNetWorldDeadPeerDiagnosis kills one rank mid-world and requires the
// survivor's blocked receive to fail fast with the dead-peer diagnosis —
// naming the closed connection and the exited process — rather than
// hanging or reporting a suspected deadlock cycle.
func TestNetWorldDeadPeerDiagnosis(t *testing.T) {
	addrs := netAddrs(t, 2)
	var mu sync.Mutex
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	for r := 0; r < 2; r++ {
		go func(r int) {
			defer wg.Done()
			w, err := NewNetWorld(NetConfig{Size: 2, Rank: r, Network: "unix", Addrs: addrs}, DefaultOptions())
			if err != nil {
				mu.Lock()
				errs[r] = err
				mu.Unlock()
				return
			}
			err = w.Run(func(c *Comm) {
				if c.Rank() == 1 {
					return // "crash": exit without sending, tearing down the link
				}
				Recv[int](c, 1, 1) // waits forever unless the dead peer is detected
			})
			w.Close()
			mu.Lock()
			errs[r] = err
			mu.Unlock()
		}(r)
	}
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(30 * time.Second):
		t.Fatal("dead peer not detected: rank 0 still blocked after 30s")
	}
	if errs[1] != nil {
		t.Fatalf("rank 1: %v", errs[1])
	}
	err := errs[0]
	if err == nil {
		t.Fatal("rank 0 received from a dead peer without error")
	}
	for _, want := range []string{"peer unreachable", "dead peer", "exited or crashed"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("dead-peer diagnosis missing %q:\n%s", want, err)
		}
	}
	if strings.Contains(err.Error(), "suspected deadlock") {
		t.Errorf("dead peer misdiagnosed as a deadlock cycle:\n%s", err)
	}
}

// TestNetWorldUnregisteredPayload requires the runtime side of the
// wire-safety contract: sending an unregistered type must fail with an
// error that names the type and points at RegisterWire and the static
// wiresafe check, not with a bare gob stack trace.
func TestNetWorldUnregisteredPayload(t *testing.T) {
	type notRegistered struct{ X int }
	errs, _ := runNetWorld(t, "unix", netAddrs(t, 2), DefaultOptions(), func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 1, notRegistered{X: 1})
		} else {
			// The sender panics before the frame leaves, so this receive
			// fails via dead-peer detection when rank 0's world closes.
			defer func() { recover() }()
			Recv[notRegistered](c, 0, 1)
		}
	})
	err := errs[0]
	if err == nil {
		t.Fatal("unregistered payload crossed the wire without error")
	}
	for _, want := range []string{"notRegistered", "wire-safe", "RegisterWire"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("wire-safety error missing %q:\n%s", want, err)
		}
	}
}

// TestEnvNetConfig checks the PEACHY_* environment contract parser.
func TestEnvNetConfig(t *testing.T) {
	t.Run("roundtrip", func(t *testing.T) {
		t.Setenv("PEACHY_WORLD", "3")
		t.Setenv("PEACHY_RANK", "2")
		t.Setenv("PEACHY_NET", "tcp")
		t.Setenv("PEACHY_ADDRS", "a:1,b:2,c:3")
		cfg, err := EnvNetConfig()
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Size != 3 || cfg.Rank != 2 || cfg.Network != "tcp" || len(cfg.Addrs) != 3 || cfg.Addrs[1] != "b:2" {
			t.Fatalf("bad parse: %+v", cfg)
		}
		if !Launched() {
			t.Fatal("Launched() = false with PEACHY_RANK set")
		}
	})
	t.Run("addr count mismatch", func(t *testing.T) {
		t.Setenv("PEACHY_WORLD", "3")
		t.Setenv("PEACHY_RANK", "0")
		t.Setenv("PEACHY_ADDRS", "a,b")
		if _, err := EnvNetConfig(); err == nil {
			t.Fatal("want error for 2 addrs in a 3-rank world")
		}
	})
	t.Run("rank out of range", func(t *testing.T) {
		t.Setenv("PEACHY_WORLD", "2")
		t.Setenv("PEACHY_RANK", "2")
		t.Setenv("PEACHY_ADDRS", "a,b")
		if _, err := EnvNetConfig(); err == nil {
			t.Fatal("want error for rank 2 of 2")
		}
	})
}
