package cluster

import (
	"fmt"
	"reflect"
)

// VerifyCloner checks a Cloner implementation against its contract: the
// clone must be the same concrete type, equal in value, and share no
// mutable memory with the original. It returns nil on conformance and a
// descriptive error naming the first aliasing path otherwise.
//
// It is a test-time helper (reflection-based, allocation-happy): call it
// from the payload type's own tests so a shallow CloneWire fails there,
// long before the collectives' snapshot path silently corrupts a
// reduction. The static analyzer's wiresafe rule catches the common
// shallow shapes at vet time; this check is the dynamic ground truth.
func VerifyCloner(v Cloner) error {
	clone := v.CloneWire()
	ot, ct := reflect.TypeOf(v), reflect.TypeOf(clone)
	if ot != ct {
		return fmt.Errorf("CloneWire returned %v, want the receiver type %v", ct, ot)
	}
	ov, cv := reflect.ValueOf(v), reflect.ValueOf(clone)
	if !reflect.DeepEqual(v, clone) {
		return fmt.Errorf("CloneWire returned an unequal value: %+v != %+v", clone, v)
	}
	if path, shared := sharedMemory(ov, cv, "value"); shared {
		return fmt.Errorf("CloneWire returned a shallow copy: %s shares memory with the original", path)
	}
	return nil
}

// sharedMemory walks original and clone in lockstep and reports the first
// path where both sides point at the same mutable memory: a slice over
// the same backing array, the same map, or the same pointee.
func sharedMemory(a, b reflect.Value, path string) (string, bool) {
	if !a.IsValid() || !b.IsValid() || a.Kind() != b.Kind() {
		return "", false
	}
	switch a.Kind() {
	case reflect.Pointer:
		if a.IsNil() || b.IsNil() {
			return "", false
		}
		if a.Pointer() == b.Pointer() {
			return path, true
		}
		return sharedMemory(a.Elem(), b.Elem(), "(*"+path+")")
	case reflect.Slice:
		if a.Len() > 0 && b.Len() > 0 && a.Pointer() == b.Pointer() {
			return path, true
		}
		n := min(a.Len(), b.Len())
		for i := 0; i < n; i++ {
			if p, shared := sharedMemory(a.Index(i), b.Index(i), fmt.Sprintf("%s[%d]", path, i)); shared {
				return p, true
			}
		}
	case reflect.Map:
		if !a.IsNil() && !b.IsNil() && a.Pointer() == b.Pointer() {
			return path, true
		}
		iter := a.MapRange()
		for iter.Next() {
			bv := b.MapIndex(iter.Key())
			if p, shared := sharedMemory(iter.Value(), bv, fmt.Sprintf("%s[%v]", path, iter.Key())); shared {
				return p, true
			}
		}
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			f := a.Type().Field(i)
			if !f.IsExported() {
				continue // unexported fields are unreadable via reflection
			}
			if p, shared := sharedMemory(a.Field(i), b.Field(i), path+"."+f.Name); shared {
				return p, true
			}
		}
	case reflect.Array:
		for i := 0; i < a.Len(); i++ {
			if p, shared := sharedMemory(a.Index(i), b.Index(i), fmt.Sprintf("%s[%d]", path, i)); shared {
				return p, true
			}
		}
	case reflect.Interface:
		if !a.IsNil() && !b.IsNil() {
			return sharedMemory(a.Elem(), b.Elem(), path)
		}
	}
	return "", false
}
