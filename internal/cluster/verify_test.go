package cluster

import (
	"strings"
	"testing"
	"time"
)

// TestVerifyCollectiveMismatch is the acceptance case for the runtime
// verifier: rank 0 calls Barrier while rank 1 calls Allreduce. Without
// Verify this cross-matches tree traffic and hangs or corrupts; with it,
// the world must come down immediately with a diagnostic naming both
// collectives and both ranks.
func TestVerifyCollectiveMismatch(t *testing.T) {
	w := NewWorldOpts(2, VerifyOptions())
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 { //peachyvet:allow collective — the mismatch is the point of this test
			c.Barrier()
		} else {
			Allreduce(c, 1, func(a, b int) int { return a + b })
		}
	})
	if err == nil {
		t.Fatal("mismatched collectives did not fail")
	}
	msg := err.Error()
	for _, want := range []string{"collective mismatch", "Barrier", "Allreduce", "rank 0", "rank 1", "verify_test.go"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, msg)
		}
	}
}

// TestVerifyMismatchNotMaskedByCascade: when a middle rank diverges in a
// larger world, the detecting rank's panic closes the world and bystander
// ranks fail with "world aborted" cascades. Run must still surface the
// root-cause mismatch diagnostic, not whichever cascade happens to sit at
// a lower rank index.
func TestVerifyMismatchNotMaskedByCascade(t *testing.T) {
	w := NewWorldOpts(4, VerifyOptions())
	err := w.Run(func(c *Comm) {
		if c.Rank() == 2 { //peachyvet:allow collective — the mismatch is the point of this test
			Allreduce(c, 1, func(a, b int) int { return a + b })
		} else {
			c.Barrier()
		}
	})
	if err == nil {
		t.Fatal("mismatched collectives did not fail")
	}
	msg := err.Error()
	if !strings.Contains(msg, "collective mismatch") {
		t.Fatalf("root-cause diagnostic masked by a cascade error:\n%s", msg)
	}
	for _, want := range []string{"Allreduce", "Barrier", "rank 2"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, msg)
		}
	}
}

// TestVerifyDeadlockDump: rank 0 receives a message rank 1 never sends.
// The bounded wait must expire and dump every rank's state instead of
// hanging the test binary. (Rank 1 exits cleanly so exactly one rank
// times out, keeping the surfaced error deterministic.)
func TestVerifyDeadlockDump(t *testing.T) {
	opts := VerifyOptions()
	opts.VerifyTimeout = 200 * time.Millisecond
	w := NewWorldOpts(2, opts)
	start := time.Now()
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			Recv[int](c, 1, 5)
		}
	})
	if err == nil {
		t.Fatal("mutual Recv did not fail")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("deadlock detection took %v, expected ~200ms", waited)
	}
	msg := err.Error()
	for _, want := range []string{"suspected deadlock", "rank 0", "rank 1", "blocked on", "tag=5"} {
		if !strings.Contains(msg, want) {
			t.Errorf("dump missing %q:\n%s", want, msg)
		}
	}
}

// TestVerifyCleanRun: a correct program must be unaffected by Verify —
// collectives, point-to-point traffic and sub-communicators all pass.
func TestVerifyCleanRun(t *testing.T) {
	const P = 4
	w := NewWorldOpts(P, VerifyOptions())
	err := w.Run(func(c *Comm) {
		c.Barrier()
		v := Bcast(c, 0, c.Rank()+100)
		if v != 100 {
			t.Errorf("rank %d: Bcast got %d", c.Rank(), v)
		}
		sum := Allreduce(c, c.Rank(), func(a, b int) int { return a + b })
		if sum != P*(P-1)/2 {
			t.Errorf("rank %d: Allreduce got %d", c.Rank(), sum)
		}
		if c.Rank() == 0 {
			Send(c, 1, 9, "hello")
		} else if c.Rank() == 1 {
			if got := Recv[string](c, 0, 9); got != "hello" {
				t.Errorf("p2p got %q", got)
			}
		}
		sub := c.Split(c.Rank()%2, c.Rank())
		local := AllreduceSub(sub, 1, func(a, b int) int { return a + b })
		if local != P/2 {
			t.Errorf("rank %d: AllreduceSub got %d", c.Rank(), local)
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatalf("clean run failed under Verify: %v", err)
	}
}

// TestAnyTagSkipsCollectiveTraffic guards the wildcard-matching fix: an
// AnyTag receive must only match user messages (tag >= 0), never the
// reserved negative tags collectives ride on — even when collective tree
// traffic is already sitting in the mailbox.
func TestAnyTagSkipsCollectiveTraffic(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			// Root of the broadcast: pushes tree traffic into rank 0's
			// mailbox first, then the p2p payload.
			Bcast(c, 1, 1234)
			Send(c, 0, 7, 42)
		} else {
			// The wildcard receive must skip the waiting Bcast message
			// (same payload type, negative tag) and take the p2p one.
			got := Recv[int](c, 1, AnyTag)
			if got != 42 {
				t.Errorf("AnyTag Recv got %d, want the p2p payload 42", got)
			}
			if v := Bcast(c, 1, 0); v != 1234 {
				t.Errorf("Bcast after wildcard got %d, want 1234", v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestVerifyDeadlockDumpMergesBuckets: the dump must render pending
// messages in global arrival order even though the mailbox now shards
// them into per-source buckets — and report the true total across all
// buckets. A token chain orders the sends deterministically: rank 1
// mails two messages, passes the token to rank 2, and so on, while
// rank 0 blocks on a tag nobody sends.
func TestVerifyDeadlockDumpMergesBuckets(t *testing.T) {
	opts := VerifyOptions()
	opts.VerifyTimeout = 200 * time.Millisecond
	w := NewWorldOpts(4, opts)
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			Recv[int](c, 1, 99)
		case 1:
			Send(c, 0, 11, 0)
			Send(c, 0, 12, 0)
			Send(c, 2, 1, "token")
		case 2:
			Recv[string](c, 1, 1)
			Send(c, 0, 13, 0)
			Send(c, 3, 1, "token")
		case 3:
			Recv[string](c, 2, 1)
			Send(c, 0, 14, 0)
		}
	})
	if err == nil {
		t.Fatal("blocked Recv did not fail under Verify")
	}
	msg := err.Error()
	for _, want := range []string{
		"rank 0: blocked on src=1 tag=99",
		"4 pending message(s)",
		"src=1 tag=11, src=1 tag=12, src=2 tag=13",
		"+1 more",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("dump missing %q:\n%s", want, msg)
		}
	}
}

// TestVerifyMismatchWithPendingTraffic: a collective mismatch must still
// be detected (and the diagnostic must still name both ops) when user
// point-to-point messages from several sources are already parked in the
// diverging rank's indexed mailbox. The collective traffic rides reserved
// negative tags, so the parked user messages must neither satisfy nor
// confuse the mismatched collective's receives.
func TestVerifyMismatchWithPendingTraffic(t *testing.T) {
	w := NewWorldOpts(4, VerifyOptions())
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 2: //peachyvet:allow collective — the mismatch is the point of this test
			Allreduce(c, 1, func(a, b int) int { return a + b })
		case 1:
			Send(c, 2, 21, 0)
			c.Barrier()
		case 3:
			Send(c, 2, 22, 0)
			c.Barrier()
		default:
			c.Barrier()
		}
	})
	if err == nil {
		t.Fatal("mismatched collectives did not fail")
	}
	msg := err.Error()
	for _, want := range []string{"collective mismatch", "Allreduce", "Barrier", "rank 2"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, msg)
		}
	}
}
