// Tests for the observability integration: the Chrome trace exporter must
// be deterministic (the acceptance bar is byte-identical output across
// runs), the recorder's counters must agree exactly with the cost model's
// own accounting, and a detached recorder must cost ~nothing.
package cluster

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// tracedScriptBody is a fixed SPMD program exercising point-to-point
// sends, a wildcard-free ring exchange and several collectives — enough
// to populate every event kind the exporter emits. It is shared between
// the in-process golden test and the net-device merge tests: the sim
// timeline must be identical on every device.
func tracedScriptBody(p int) func(c *Comm) {
	return func(c *Comm) {
		buf := make([]float64, 64)
		Bcast(c, 0, buf)
		Allreduce(c, float64(c.Rank()), func(a, b float64) float64 { return a + b })
		next := (c.Rank() + 1) % p
		prev := (c.Rank() + p - 1) % p
		Send(c, next, 7, buf)
		Recv[[]float64](c, prev, 7)
		c.Probe(prev, 7)
		Gather(c, 0, c.Rank())
		c.Barrier()
	}
}

// tracedScript runs tracedScriptBody on the in-process device.
func tracedScript(t *testing.T, p int) *obs.Trace {
	t.Helper()
	w := NewWorld(p)
	trace := w.Observe()
	if err := w.Run(tracedScriptBody(p)); err != nil {
		t.Fatalf("traced script failed: %v", err)
	}
	return trace
}

// TestChromeTraceGolden pins the exporter's exact output: two runs of the
// same program must serialize byte-identically, and the bytes must match
// the checked-in golden file (regenerate with `go test -run Golden -update`).
func TestChromeTraceGolden(t *testing.T) {
	var out [2]bytes.Buffer
	for i := range out {
		if err := tracedScript(t, 4).WriteChrome(&out[i]); err != nil {
			t.Fatalf("WriteChrome: %v", err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Fatalf("two runs of the same program produced different traces (%d vs %d bytes)",
			out[0].Len(), out[1].Len())
	}
	golden := filepath.Join("testdata", "chrome_trace_p4.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out[0].Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(out[0].Bytes(), want) {
		t.Errorf("trace differs from %s (%d vs %d bytes); rerun with -update if the change is intended",
			golden, out[0].Len(), len(want))
	}
	if err := obs.LintTrace(out[0].Bytes()); err != nil {
		t.Errorf("golden trace fails its own lint: %v", err)
	}
}

// TestObsCountersMatchCostModel: for every collective, at P in {2,4,8},
// with both the optimized and the baseline algorithms, each rank's traced
// MsgsSent/BytesSent must equal the cost model's own unexported per-comm
// counters — the trace is an alternate accounting of the same traffic, so
// any disagreement means a send path dodged instrumentation.
func TestObsCountersMatchCostModel(t *testing.T) {
	payload := func() []float64 { return make([]float64, 32) }
	ops := []struct {
		name string
		body func(c *Comm, p int)
	}{
		{"Barrier", func(c *Comm, p int) { c.Barrier() }},
		{"Bcast", func(c *Comm, p int) { Bcast(c, 0, payload()) }},
		{"Reduce", func(c *Comm, p int) { Reduce(c, 0, payload(), SumFloat64s) }},
		{"Allreduce", func(c *Comm, p int) { Allreduce(c, payload(), SumFloat64s) }},
		{"Allgather", func(c *Comm, p int) { Allgather(c, c.Rank()) }},
		{"Gather", func(c *Comm, p int) { Gather(c, 0, payload()) }},
		{"Scatter", func(c *Comm, p int) {
			var parts [][]float64
			if c.Rank() == 0 {
				parts = make([][]float64, p)
				for i := range parts {
					parts[i] = payload()
				}
			}
			Scatter(c, 0, parts)
		}},
		{"Alltoall", func(c *Comm, p int) {
			parts := make([][]float64, p)
			for i := range parts {
				parts[i] = payload()
			}
			Alltoall(c, parts)
		}},
		{"Scan", func(c *Comm, p int) {
			Scan(c, float64(c.Rank()), func(a, x float64) float64 { return a + x })
		}},
	}
	for _, op := range ops {
		for _, p := range []int{2, 4, 8} {
			for _, baseline := range []bool{false, true} {
				name := fmt.Sprintf("%s/P%d/baseline=%v", op.name, p, baseline)
				t.Run(name, func(t *testing.T) {
					opts := DefaultOptions()
					opts.BaselineCollectives = baseline
					w := NewWorldOpts(p, opts)
					trace := w.Observe()
					if err := w.Run(func(c *Comm) { op.body(c, p) }); err != nil {
						t.Fatal(err)
					}
					for r := 0; r < p; r++ {
						snap := trace.Rank(r).Snapshot()
						c := w.comms[r]
						if snap.MsgsSent != c.msgs || snap.BytesSent != c.bytes {
							t.Errorf("rank %d: trace counted %d msgs / %d bytes sent, cost model %d / %d",
								r, snap.MsgsSent, snap.BytesSent, c.msgs, c.bytes)
						}
						if snap.OpCount[op.name] != 1 {
							t.Errorf("rank %d: OpCount[%s] = %d, want 1", r, op.name, snap.OpCount[op.name])
						}
					}
					// Received totals must mirror sent totals world-wide:
					// the runtime has no message loss.
					var sentM, sentB, recvM, recvB int64
					for r := 0; r < p; r++ {
						snap := trace.Rank(r).Snapshot()
						sentM += snap.MsgsSent
						sentB += snap.BytesSent
						recvM += snap.MsgsRecv
						recvB += snap.BytesRecv
					}
					if sentM != recvM || sentB != recvB {
						t.Errorf("world totals: sent %d msgs / %d bytes but received %d / %d",
							sentM, sentB, recvM, recvB)
					}
				})
			}
		}
	}
}

// TestObserveMetricsLint: the metrics document for a traced run passes the
// same lint the check.sh smoke step applies.
func TestObserveMetricsLint(t *testing.T) {
	var buf bytes.Buffer
	if err := tracedScript(t, 4).WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.LintMetrics(buf.Bytes()); err != nil {
		t.Errorf("metrics fail lint: %v", err)
	}
}

// BenchmarkObsOverhead measures the transport hot path with observability
// detached (the shipping default: every hook is one nil check), attached,
// and attached with a per-iteration histogram-feeding phase span, so both
// the "~zero disabled overhead" claim and the distribution-recording cost
// have tracked numbers. The nil-recorder mode isolates the disabled
// recording calls themselves, without any transport.
func BenchmarkObsOverhead(b *testing.B) {
	for _, mode := range []string{"detached", "attached", "attached-hist"} {
		b.Run(mode, func(b *testing.B) {
			w := NewWorld(2)
			var trace *obs.Trace
			if mode != "detached" {
				trace = w.Observe()
			}
			payload := make([]float64, 8)
			b.ResetTimer()
			_ = w.Run(func(c *Comm) {
				var rec *obs.Recorder
				if mode == "attached-hist" {
					rec = trace.Rank(c.Rank())
				}
				if c.Rank() == 0 {
					for i := 0; i < b.N; i++ {
						Send(c, 1, 1, payload)
						Recv[[]float64](c, 1, 2)
						rec.PhaseSpan("bench.iter", 0, 1, rec.Now())
					}
				} else {
					for i := 0; i < b.N; i++ {
						Recv[[]float64](c, 0, 1)
						Send(c, 0, 2, payload)
						rec.PhaseSpan("bench.iter", 0, 1, rec.Now())
					}
				}
			})
		})
	}
	// nil-recorder: every recording call on a detached (nil) recorder is
	// one branch; the paired test asserts the path is also allocation-free.
	b.Run("nil-recorder", func(b *testing.B) {
		b.ReportAllocs()
		var rec *obs.Recorder
		for i := 0; i < b.N; i++ {
			rec.Send(1, 1, 64, 0, 1)
			rec.Recv(0, 1, 64, 0, 1, 0)
			rec.PhaseSpan("bench.iter", 0, 1, 0)
			rec.WireSpan("net.tx", 64, 100)
		}
	})
}
