package cluster

import (
	"testing"

	"repro/internal/obs"
)

// countFallbacks tallies "coll.fallback" instants in a trace by their
// op code (1 = Allreduce, 2 = Allgather).
func countFallbacks(t *obs.Trace) map[int64]int {
	out := map[int64]int{}
	for _, e := range t.Events() {
		if !e.Instant || e.Op != "coll.fallback" {
			continue
		}
		for _, kv := range e.KV {
			if kv.K == "op" {
				out[kv.V]++
			}
		}
	}
	return out
}

// TestCollectiveFallbackInstants pins the satellite contract for the
// silent-downgrade bug: on a non-power-of-two world the optimized
// Allreduce and Allgather take their linear/binomial reference paths, and
// with a trace attached each downgraded call must leave a per-rank
// "coll.fallback" instant — a P=6 benchmark must not read like recursive
// doubling when it ran the baseline. Power-of-two worlds and explicit
// BaselineCollectives runs must stay marker-free.
func TestCollectiveFallbackInstants(t *testing.T) {
	run := func(size int, opts Options) *obs.Trace {
		w := NewWorldOpts(size, opts)
		trace := w.Observe()
		if err := w.Run(func(c *Comm) {
			Allreduce(c, float64(c.Rank()), func(a, b float64) float64 { return a + b })
			Allgather(c, c.Rank())
		}); err != nil {
			t.Fatal(err)
		}
		return trace
	}

	t.Run("non-pow2 marks every rank", func(t *testing.T) {
		got := countFallbacks(run(6, DefaultOptions()))
		if got[1] != 6 || got[2] != 6 {
			t.Fatalf("P=6: want 6 Allreduce and 6 Allgather fallback instants (one per rank), got %v", got)
		}
	})
	t.Run("pow2 stays clean", func(t *testing.T) {
		if got := countFallbacks(run(4, DefaultOptions())); len(got) != 0 {
			t.Fatalf("P=4 took the fast paths but emitted fallback instants: %v", got)
		}
	})
	t.Run("explicit baseline is not a downgrade", func(t *testing.T) {
		opts := DefaultOptions()
		opts.BaselineCollectives = true
		if got := countFallbacks(run(6, opts)); len(got) != 0 {
			t.Fatalf("BaselineCollectives is an explicit request, not a fallback; got instants %v", got)
		}
	})
}
