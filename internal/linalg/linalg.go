// Package linalg provides the small dense matrix and vector kernels the
// neural-network substrate needs: row-major matrices, GEMM, axpy-style
// updates, softmax and argmax. Everything is float64 and allocation-aware
// so training loops can reuse buffers.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears all elements in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// String renders a small matrix for debugging.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}

// MatMul computes dst = a * b. dst must be preallocated with shape
// (a.Rows, b.Cols) and must not alias a or b. It returns dst.
func MatMul(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: MatMul shape mismatch (%dx%d)*(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	// ikj loop order: stream through b's rows for cache friendliness.
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range brow {
				drow[j] += aik * brow[j]
			}
		}
	}
	return dst
}

// MatMulATB computes dst = aᵀ * b (shapes: a is (n,p), b is (n,q),
// dst is (p,q)). Used for weight gradients without materialising aᵀ.
func MatMulATB(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("linalg: MatMulATB shape mismatch")
	}
	dst.Zero()
	for n := 0; n < a.Rows; n++ {
		arow := a.Row(n)
		brow := b.Row(n)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	return dst
}

// MatMulABT computes dst = a * bᵀ (shapes: a is (n,q), b is (p,q),
// dst is (n,p)). Used for input gradients without materialising bᵀ.
func MatMulABT(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("linalg: MatMulABT shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			drow[j] = s
		}
	}
	return dst
}

// Axpy computes y[i] += alpha*x[i].
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// AddRowVec adds vector v to every row of m in place (bias addition).
func AddRowVec(m *Matrix, v []float64) {
	if len(v) != m.Cols {
		panic("linalg: AddRowVec length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, b := range v {
			row[j] += b
		}
	}
}

// Argmax returns the index of the largest element of x (first on ties).
func Argmax(x []float64) int {
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// Softmax writes the softmax of x into dst (which may alias x) using the
// max-subtraction trick for numerical stability.
func Softmax(dst, x []float64) {
	if len(dst) != len(x) {
		panic("linalg: Softmax length mismatch")
	}
	max := x[Argmax(x)]
	sum := 0.0
	for i, v := range x {
		e := math.Exp(v - max)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// sqDistUnrollMin is the vector length at which the multi-accumulator
// kernels beat the plain scalar loop (measured: scalar wins at d=8,
// unrolled wins at d=40; see kernel_bench_test.go). SqDist and
// SqDistBounded must dispatch on the same threshold so below-bound
// results stay bit-identical between them.
const sqDistUnrollMin = 16

// SqDist returns the squared Euclidean distance between a and b — the
// kernel at the heart of both kNN and K-means.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: SqDist length mismatch")
	}
	b = b[:len(a)]
	if len(a) < sqDistUnrollMin {
		s := 0.0
		for i, v := range a {
			d := v - b[i]
			s += d * d
		}
		return s
	}
	// Four independent accumulators break the add-latency dependency
	// chain; this loop is the single hottest kernel of the kNN and
	// K-means assignments.
	var s0, s1, s2, s3, tail float64
	i := 0
	for ; i+3 < len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		tail += d * d
	}
	return ((s0 + s1) + (s2 + s3)) + tail
}

// SqDistBounded is SqDist with an early exit: once the partial sum
// reaches bound the scan aborts and returns that partial (which is
// >= bound). Callers that only ask "is the distance below bound?" — a
// k-nearest heap threshold, a current-best centroid distance — get the
// exact SqDist value whenever it is below bound, and an exit after a
// fraction of the dimensions otherwise. The accumulation order matches
// SqDist exactly, so below-bound results are bit-identical to SqDist's.
func SqDistBounded(a, b []float64, bound float64) float64 {
	if len(a) != len(b) {
		panic("linalg: SqDist length mismatch")
	}
	b = b[:len(a)]
	if len(a) < sqDistUnrollMin {
		// Too short for the early exit to pay for its checks; mirror
		// SqDist's scalar path exactly.
		s := 0.0
		for i, v := range a {
			d := v - b[i]
			s += d * d
		}
		return s
	}
	// Checking the bound costs a serialising reduction over all four
	// accumulators, so test only once per 16 elements: aborts still skip
	// the bulk of a far vector, while near-complete scans pay few checks.
	var s0, s1, s2, s3, tail float64
	i := 0
	for ; i+15 < len(a); i += 16 {
		for j := i; j < i+16; j += 4 {
			d0 := a[j] - b[j]
			d1 := a[j+1] - b[j+1]
			d2 := a[j+2] - b[j+2]
			d3 := a[j+3] - b[j+3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		if ((s0 + s1) + (s2 + s3)) >= bound {
			return (s0 + s1) + (s2 + s3)
		}
	}
	for ; i+3 < len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		tail += d * d
	}
	return ((s0 + s1) + (s2 + s3)) + tail
}
