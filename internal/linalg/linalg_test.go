package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	dst := NewMatrix(2, 2)
	MatMul(dst, a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEq(dst.At(i, j), want[i][j]) {
				t.Errorf("(%d,%d)=%v want %v", i, j, dst.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := prng.New(2)
	a := NewMatrix(4, 4)
	for i := range a.Data {
		a.Data[i] = r.Float64()
	}
	id := NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	dst := NewMatrix(4, 4)
	MatMul(dst, a, id)
	for i := range a.Data {
		if !almostEq(dst.Data[i], a.Data[i]) {
			t.Fatal("A*I != A")
		}
	}
}

func naiveMul(a, b *Matrix) *Matrix {
	d := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			d.Set(i, j, s)
		}
	}
	return d
}

func randMat(r *prng.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Norm(0, 1)
	}
	return m
}

func TestMatMulATB(t *testing.T) {
	r := prng.New(3)
	a := randMat(r, 5, 3)
	b := randMat(r, 5, 4)
	got := MatMulATB(NewMatrix(3, 4), a, b)
	// aT explicit
	at := NewMatrix(3, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := naiveMul(at, b)
	for i := range got.Data {
		if !almostEq(got.Data[i], want.Data[i]) {
			t.Fatal("ATB mismatch")
		}
	}
}

func TestMatMulABT(t *testing.T) {
	r := prng.New(4)
	a := randMat(r, 5, 3)
	b := randMat(r, 4, 3)
	got := MatMulABT(NewMatrix(5, 4), a, b)
	bt := NewMatrix(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	want := naiveMul(a, bt)
	for i := range got.Data {
		if !almostEq(got.Data[i], want.Data[i]) {
			t.Fatal("ABT mismatch")
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	MatMul(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 2))
}

func TestAxpyDotScale(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	if y[0] != 12 || y[1] != 24 || y[2] != 36 {
		t.Errorf("Axpy %v", y)
	}
	if d := Dot(x, x); d != 14 {
		t.Errorf("Dot %v", d)
	}
	Scale(0.5, y)
	if y[0] != 6 {
		t.Errorf("Scale %v", y)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(raw [6]int8) bool {
		x := make([]float64, 6)
		for i, v := range raw {
			x[i] = float64(v) / 16
		}
		dst := make([]float64, 6)
		Softmax(dst, x)
		sum := 0.0
		for _, v := range dst {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	x := []float64{1000, 1001, 1002}
	dst := make([]float64, 3)
	Softmax(dst, x)
	for _, v := range dst {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("softmax overflowed")
		}
	}
	if dst[2] < dst[1] || dst[1] < dst[0] {
		t.Error("softmax not monotone")
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float64{1, 5, 3}) != 1 {
		t.Error("argmax wrong")
	}
	if Argmax([]float64{7, 7, 7}) != 0 {
		t.Error("argmax tie should pick first")
	}
}

func TestSqDist(t *testing.T) {
	if d := SqDist([]float64{0, 0}, []float64{3, 4}); d != 25 {
		t.Errorf("SqDist = %v", d)
	}
	if d := SqDist([]float64{1, 2, 3}, []float64{1, 2, 3}); d != 0 {
		t.Errorf("self distance %v", d)
	}
}

func TestAddRowVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	AddRowVec(m, []float64{10, 20})
	if m.At(0, 0) != 11 || m.At(1, 1) != 24 {
		t.Error("AddRowVec wrong")
	}
}

func TestCloneAndZero(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	m.Zero()
	if c.At(0, 0) != 1 || m.At(0, 0) != 0 {
		t.Error("Clone/Zero aliasing")
	}
}

func BenchmarkMatMul64(b *testing.B) {
	r := prng.New(1)
	a := randMat(r, 64, 64)
	c := randMat(r, 64, 64)
	dst := NewMatrix(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, a, c)
	}
}
