package linalg

import (
	"math"
	"strconv"
	"testing"
)

func sqDistScalar(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

func benchVecs(d int) (a, b []float64) {
	a = make([]float64, d)
	b = make([]float64, d)
	for i := range a {
		a[i] = float64(i%7) * 0.25
		b[i] = float64(i%5) * 0.5
	}
	return
}

var sinkF float64

func BenchmarkSqDistKernels(b *testing.B) {
	for _, d := range []int{8, 40} {
		a, bb := benchVecs(d)
		b.Run("scalar/d"+strconv.Itoa(d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF = sqDistScalar(a, bb)
			}
		})
		b.Run("unrolled/d"+strconv.Itoa(d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF = SqDist(a, bb)
			}
		})
		b.Run("boundedInf/d"+strconv.Itoa(d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF = SqDistBounded(a, bb, math.Inf(1))
			}
		})
		b.Run("boundedTight/d"+strconv.Itoa(d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF = SqDistBounded(a, bb, 1.0)
			}
		})
	}
}
