package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// checkCollective flags rank-divergent branches whose arms execute
// different collective sequences, and rank-guarded early returns followed
// by collectives — both of which violate the SPMD contract that every
// rank calls the same collectives in the same order, and both of which
// deadlock (or worse, cross-match) at runtime.
func checkCollective(u *Unit, r *reporter) {
	u.ensureTypes() // to tell c.Split from strings.Split
	funcBodies(u, func(name string, body *ast.BlockStmt) {
		scanStmtsForDivergence(u, r, body.List, nil)
	})
}

// scanStmtsForDivergence walks one statement list. tails holds, for each
// enclosing statement list, the statements that follow the current
// position — the code ranks fall through to after an early return.
func scanStmtsForDivergence(u *Unit, r *reporter, list []ast.Stmt, tails [][]ast.Stmt) {
	for i, stmt := range list {
		rest := list[i+1:]
		if ifs, ok := stmt.(*ast.IfStmt); ok {
			checkRankIf(u, r, ifs, rest, tails)
		}
		childTails := append(tails[:len(tails):len(tails)], rest)
		for _, b := range childBlocks(stmt) {
			scanStmtsForDivergence(u, r, b, childTails)
		}
	}
}

// childBlocks returns the statement lists nested directly inside stmt,
// without entering function literals.
func childBlocks(stmt ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, s.List)
	case *ast.IfStmt:
		out = append(out, s.Body.List)
		if s.Else != nil {
			out = append(out, childBlocks(s.Else)...)
		}
	case *ast.ForStmt:
		out = append(out, s.Body.List)
	case *ast.RangeStmt:
		out = append(out, s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, childBlocks(s.Stmt)...)
	}
	return out
}

// checkRankIf inspects one if statement whose condition compares ranks.
// The check compares the collective sequence each side of the rank split
// will execute from here to the end of the function: the arm's own
// collectives, plus — unless the arm leaves the function — everything
// after the if. A mismatch means some ranks run a different collective
// sequence than others, which deadlocks or cross-matches at runtime.
func checkRankIf(u *Unit, r *reporter, ifs *ast.IfStmt, rest []ast.Stmt, tails [][]ast.Stmt) {
	cmps := rankCond(ifs.Cond)
	if len(cmps) == 0 {
		return
	}
	comm := cmps[0].comm

	var later []collCall
	for _, s := range rest {
		later = append(later, collectColls(u, s, comm)...)
	}
	for _, tail := range tails {
		for _, s := range tail {
			later = append(later, collectColls(u, s, comm)...)
		}
	}

	thenSeq := collectColls(u, ifs.Body, comm)
	if !terminates(ifs.Body) {
		thenSeq = append(thenSeq, later...)
	}
	var elseSeq []collCall
	elseTerm := false
	switch e := ifs.Else.(type) {
	case *ast.BlockStmt:
		elseSeq = collectColls(u, e, comm)
		elseTerm = terminates(e)
	case *ast.IfStmt:
		elseSeq = collectColls(u, e, comm)
		elseTerm = allElseTerminates(e)
	}
	if !elseTerm {
		elseSeq = append(elseSeq, later...)
	}
	if len(thenSeq) == 0 && len(elseSeq) == 0 {
		return
	}
	if !sameOps(thenSeq, elseSeq) {
		r.report("collective", ifs.Pos(),
			"rank-divergent collective sequence: %s — every rank must execute the same collectives in the same order (sequences include calls after this if)",
			describeOpDiff(thenSeq, elseSeq))
	}
}

// allElseTerminates reports whether every path of an else (possibly an
// else-if chain) terminates, in which case no rank falls through.
func allElseTerminates(e ast.Stmt) bool {
	switch s := e.(type) {
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.IfStmt:
		if !terminates(s.Body) {
			return false
		}
		if s.Else == nil {
			return false
		}
		return allElseTerminates(s.Else)
	}
	return false
}

func sameOps(a, b []collCall) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].name != b[i].name {
			return false
		}
	}
	return true
}

func describeOpDiff(thenOps, elseOps []collCall) string {
	names := func(ops []collCall) string {
		if len(ops) == 0 {
			return "none"
		}
		var ns []string
		for _, o := range ops {
			ns = append(ns, o.name)
		}
		return strings.Join(ns, ", ")
	}
	return fmt.Sprintf("then-arm calls [%s], else-arm calls [%s]", names(thenOps), names(elseOps))
}
