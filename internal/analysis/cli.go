package analysis

import (
	"flag"
	"fmt"
	"io"
	"strings"
)

// Main is the shared CLI entry point behind `peachyvet` and
// `peachy vet`. It returns the process exit code:
//
//	0 — every analyzed package is clean
//	1 — at least one rule finding was reported
//	2 — usage error, or the analysis could not load its input (an
//	    unreadable directory, or a file that fails to parse — parse
//	    failures are reported as findings with the reserved rule "load"
//	    and still take precedence over exit 1)
//
// Output modes: the default is one human-readable line per finding;
// -json emits a JSON array of findings with stable ids; -sarif emits a
// SARIF 2.1.0 log; -stats emits per-rule finding counts as JSON. The
// modes are mutually exclusive and all imply -q.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("peachyvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rules to run (default: all of "+strings.Join(AllRules, ",")+")")
	quiet := fs.Bool("q", false, "suppress the summary line")
	jsonOut := fs.Bool("json", false, "write findings as JSON to stdout")
	sarifOut := fs.Bool("sarif", false, "write findings as SARIF 2.1.0 to stdout")
	statsOut := fs.Bool("stats", false, "write per-rule finding counts as JSON to stdout")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: peachyvet [-rules r1,r2] [-q] [-json|-sarif|-stats] ./... [dir ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	modes := 0
	for _, on := range []bool{*jsonOut, *sarifOut, *statsOut} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(stderr, "peachyvet: -json, -sarif and -stats are mutually exclusive")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cfg := DefaultConfig()
	if *rules != "" {
		cfg.Rules = map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			r = strings.TrimSpace(r)
			if r == "" {
				continue
			}
			known := false
			for _, k := range AllRules {
				if k == r {
					known = true
				}
			}
			if !known {
				fmt.Fprintf(stderr, "peachyvet: unknown rule %q (have %s)\n", r, strings.Join(AllRules, ", "))
				return 2
			}
			cfg.Rules[r] = true
		}
	}

	units, err := Load(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "peachyvet:", err)
		return 2
	}
	var findings []Finding
	for _, u := range units {
		findings = append(findings, Analyze(u, cfg)...)
	}
	loadErrs := 0
	for _, f := range findings {
		if f.Rule == "load" {
			loadErrs++
		}
	}

	switch {
	case *jsonOut:
		if err := WriteJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "peachyvet:", err)
			return 2
		}
	case *sarifOut:
		if err := WriteSARIF(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "peachyvet:", err)
			return 2
		}
	case *statsOut:
		if err := WriteStats(stdout, len(units), findings); err != nil {
			fmt.Fprintln(stderr, "peachyvet:", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
		if !*quiet {
			if len(findings) == 0 {
				fmt.Fprintf(stdout, "peachyvet: %d package(s) clean\n", len(units))
			} else {
				fmt.Fprintf(stdout, "peachyvet: %d finding(s)\n", len(findings))
			}
		}
	}
	switch {
	case loadErrs > 0:
		return 2
	case len(findings) > 0:
		return 1
	}
	return 0
}
