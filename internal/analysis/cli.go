package analysis

import (
	"flag"
	"fmt"
	"io"
	"strings"
)

// Main is the shared CLI entry point behind `peachyvet` and
// `peachy vet`. It returns the process exit code: 0 when clean, 1 when
// findings were reported, 2 on usage or load errors.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("peachyvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rules to run (default: all of "+strings.Join(AllRules, ",")+")")
	quiet := fs.Bool("q", false, "suppress the summary line")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: peachyvet [-rules r1,r2] [-q] ./... [dir ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cfg := DefaultConfig()
	if *rules != "" {
		cfg.Rules = map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			r = strings.TrimSpace(r)
			if r == "" {
				continue
			}
			known := false
			for _, k := range AllRules {
				if k == r {
					known = true
				}
			}
			if !known {
				fmt.Fprintf(stderr, "peachyvet: unknown rule %q (have %s)\n", r, strings.Join(AllRules, ", "))
				return 2
			}
			cfg.Rules[r] = true
		}
	}

	units, err := Load(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "peachyvet:", err)
		return 2
	}
	total := 0
	for _, u := range units {
		for _, f := range Analyze(u, cfg) {
			fmt.Fprintln(stdout, f.String())
			total++
		}
	}
	if !*quiet {
		if total == 0 {
			fmt.Fprintf(stdout, "peachyvet: %d package(s) clean\n", len(units))
		} else {
			fmt.Fprintf(stdout, "peachyvet: %d finding(s)\n", total)
		}
	}
	if total > 0 {
		return 1
	}
	return 0
}
