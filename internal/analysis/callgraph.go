package analysis

import (
	"go/ast"
)

// callGraph is the per-unit static call graph the interprocedural rules
// walk. Nodes are the unit's function declarations; edges are call sites
// whose callee resolves to another declaration in the same unit. Bare
// identifier calls resolve to the like-named function; method calls
// resolve by selector name when the unit declares exactly one method with
// that name (ambiguous names stay unresolved — summaries then treat the
// call as having no communication effects, which keeps the engine
// conservative rather than wrong).
type callGraph struct {
	// byName maps a plain function name to its declaration.
	byName map[string]*ast.FuncDecl
	// methodByName maps a method name to its declaration when the unit
	// declares exactly one method of that name; ambiguous names are absent.
	methodByName map[string]*ast.FuncDecl
	// callers maps a declaration to the set of declarations that call it
	// (calls made inside function literals count for the enclosing decl).
	callers map[*ast.FuncDecl]map[*ast.FuncDecl]bool
	// decls lists every function declaration with a body, in file order.
	decls []*ast.FuncDecl
}

// buildCallGraph indexes the unit's declarations and call edges.
func buildCallGraph(u *Unit) *callGraph {
	cg := &callGraph{
		byName:       map[string]*ast.FuncDecl{},
		methodByName: map[string]*ast.FuncDecl{},
		callers:      map[*ast.FuncDecl]map[*ast.FuncDecl]bool{},
	}
	ambiguous := map[string]bool{}
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cg.decls = append(cg.decls, fd)
			if fd.Recv == nil {
				cg.byName[fd.Name.Name] = fd
				continue
			}
			name := fd.Name.Name
			if _, dup := cg.methodByName[name]; dup || ambiguous[name] {
				delete(cg.methodByName, name)
				ambiguous[name] = true
				continue
			}
			cg.methodByName[name] = fd
		}
	}
	for _, fd := range cg.decls {
		caller := fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := cg.resolve(call); callee != nil {
				if cg.callers[callee] == nil {
					cg.callers[callee] = map[*ast.FuncDecl]bool{}
				}
				cg.callers[callee][caller] = true
			}
			return true
		})
	}
	return cg
}

// resolve returns the unit-local declaration a call targets, or nil. The
// communication vocabulary itself (Send, Recv, Barrier, ...) is never
// resolved: those calls are effects, not edges — except when the unit
// genuinely declares a like-named function (the fixture stubs do), in
// which case the declaration still wins for edge purposes; the summary
// builder classifies the effect before consulting the graph, so stubs do
// not swallow effects.
func (cg *callGraph) resolve(call *ast.CallExpr) *ast.FuncDecl {
	fun := call.Fun
	for {
		switch x := fun.(type) {
		case *ast.IndexExpr:
			fun = x.X
		case *ast.IndexListExpr:
			fun = x.X
		case *ast.ParenExpr:
			fun = x.X
		default:
			goto resolved
		}
	}
resolved:
	switch x := fun.(type) {
	case *ast.Ident:
		return cg.byName[x.Name]
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			// A package-qualified call (pkg.Func) never targets a unit-local
			// method; a receiver call (recv.Method) never targets a
			// unit-local package function. Distinguish by what we have: a
			// method of this name wins, since same-unit selector calls are
			// almost always method calls on local types.
			_ = id
			return cg.methodByName[x.Sel.Name]
		}
	}
	return nil
}

// roots returns the declarations no other declaration in the unit calls —
// the entry points interprocedural package-wide analyses enumerate effects
// from — plus any declaration unreachable from those (mutually recursive
// orphan groups), so every declared effect is visible exactly once with
// the deepest available bindings.
func (cg *callGraph) roots() []*ast.FuncDecl {
	var roots []*ast.FuncDecl
	reached := map[*ast.FuncDecl]bool{}
	var mark func(fd *ast.FuncDecl)
	calls := map[*ast.FuncDecl][]*ast.FuncDecl{}
	for callee, cs := range cg.callers {
		for caller := range cs {
			calls[caller] = append(calls[caller], callee)
		}
	}
	mark = func(fd *ast.FuncDecl) {
		if reached[fd] {
			return
		}
		reached[fd] = true
		for _, callee := range calls[fd] {
			mark(callee)
		}
	}
	for _, fd := range cg.decls {
		if len(cg.callers[fd]) == 0 {
			roots = append(roots, fd)
			mark(fd)
		}
	}
	for _, fd := range cg.decls {
		if !reached[fd] {
			roots = append(roots, fd)
			mark(fd)
		}
	}
	return roots
}
