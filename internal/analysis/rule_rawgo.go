package analysis

import (
	"go/ast"
	"strings"
)

// checkRawGo flags raw `go` statements in internal/ packages. The repo's
// concurrency is supposed to flow through the sanctioned substrates —
// par.Pool / par.For for shared-memory loops, cluster.World for SPMD
// ranks, locale.System for locality experiments — so that worker counts,
// scheduling and shutdown stay observable and testable in one place. A
// bare goroutine bypasses all of that. Substrate packages themselves are
// exempt via Config.RawGoAllowed; anything else can justify itself with
// //peachyvet:allow rawgo.
func checkRawGo(u *Unit, r *reporter) {
	rel := u.Rel
	if !strings.Contains(rel, "internal/") && !strings.HasPrefix(rel, "internal") {
		return
	}
	for _, allowed := range u.cfg.RawGoAllowed {
		if strings.Contains(rel+"/", allowed+"/") || strings.HasSuffix(rel, allowed) {
			return
		}
	}
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				r.report("rawgo", g.Pos(),
					"raw go statement bypasses the parallel substrates: use par.Pool/par.For (worksharing), cluster.World (SPMD) or locale.System, or annotate //peachyvet:allow rawgo with a reason")
			}
			return true
		})
	}
}
