package analysis

import (
	"strings"
	"testing"
)

// ruleMessages analyzes one fixture package under a single rule and
// returns the finding messages joined for substring assertions.
func ruleMessages(t *testing.T, rule, dir string) string {
	t.Helper()
	units, err := Load([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Rules = map[string]bool{rule: true}
	var msgs []string
	for _, f := range Analyze(units[0], cfg) {
		msgs = append(msgs, f.Msg)
	}
	return strings.Join(msgs, "\n")
}

// TestPerfInterprocedural pins the interprocedural half of the
// performance/determinism family: the finding messages must name the
// helper the payload or peer fact was spliced through.
func TestPerfInterprocedural(t *testing.T) {
	if all := ruleMessages(t, "hotalloc", fixtureDir("hotalloc")); true {
		for _, want := range []string{
			"payload via forward", // alloc in caller, send inside helper
			"helper newBuf",       // alloc inside helper, send in caller
		} {
			if !strings.Contains(all, want) {
				t.Errorf("no hotalloc finding mentions %q; got:\n%s", want, all)
			}
		}
	}
	if all := ruleMessages(t, "rolledcoll", fixtureDir("rolledcoll")); !strings.Contains(all, "communication via sendTo") {
		t.Errorf("no rolledcoll finding names the send helper; got:\n%s", all)
	}
	if all := ruleMessages(t, "nondet", fixtureDir("nondet")); !strings.Contains(all, "payload via reduceVals") {
		t.Errorf("no nondet finding names the reduction helper; got:\n%s", all)
	}
}

// BenchmarkAnalyzePerf measures the performance/determinism family alone
// over the whole repository: the shared payload-fact extraction, the
// per-loop allocation scan, the collective-shape matcher and the
// nondeterminism taint walk, on top of a shared parse.
func BenchmarkAnalyzePerf(b *testing.B) {
	units, err := Load([]string{"../../..."})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Rules = map[string]bool{"hotalloc": true, "rolledcoll": true, "nondet": true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range units {
			u.sums = nil
			u.muts = nil
			u.sentFacts = nil
			for _, f := range Analyze(u, cfg) {
				if f.Rule != "load" {
					b.Fatalf("repo not clean under perf rules: %s", f)
				}
			}
		}
	}
}
