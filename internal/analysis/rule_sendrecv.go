package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
)

// checkSendRecv flags Send calls whose constant tag no Recv in the same
// package could ever match. Matching is deliberately package-wide — the
// manager and worker halves of a communication pattern often live in
// different functions — and a Recv with AnyTag (or a non-constant tag)
// matches everything, so only provably orphaned tags are reported.
func checkSendRecv(u *Unit, r *reporter) {
	consts := collectIntConsts(u)

	type sendSite struct {
		tag int
		pos token.Pos
	}
	var sends []sendSite
	recvTags := map[int]bool{}
	wildcardRecv := false

	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := commCallName(call)
			switch name {
			case "Send", "SendSub":
				if len(call.Args) != 4 {
					return true
				}
				if v, ok := intValue(call.Args[2], consts); ok {
					sends = append(sends, sendSite{tag: v, pos: call.Pos()})
				}
			case "Recv", "RecvFrom", "TryRecv", "RecvSub":
				if len(call.Args) != 3 {
					return true
				}
				if v, ok := intValue(call.Args[2], consts); ok {
					if v == -1 { // cluster.AnyTag
						wildcardRecv = true
					} else {
						recvTags[v] = true
					}
				} else {
					wildcardRecv = true // dynamic tag: could match anything
				}
			case "SendRecv":
				// Self-matching exchange: posts the send and the receive
				// with the same tag, so it can never orphan a tag.
			}
			return true
		})
	}

	if wildcardRecv {
		return
	}
	for _, s := range sends {
		if !recvTags[s.tag] {
			r.report("sendrecv", s.pos,
				"Send with tag %d has no matching Recv tag anywhere in this package — the message can never be received", s.tag)
		}
	}
}

// commCallName extracts the bare function name of a cluster point-to-point
// call: Send(...), cluster.Send(...), cluster.Recv[int](...), etc.
func commCallName(call *ast.CallExpr) string {
	fun := call.Fun
	for {
		switch x := fun.(type) {
		case *ast.IndexExpr:
			fun = x.X
		case *ast.IndexListExpr:
			fun = x.X
		case *ast.ParenExpr:
			fun = x.X
		default:
			goto done
		}
	}
done:
	switch x := fun.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if _, ok := x.X.(*ast.Ident); ok {
			return x.Sel.Name
		}
	}
	return ""
}

// collectIntConsts resolves package-level integer constant declarations of
// the simple `name = literal` form (the shape communication tags take).
func collectIntConsts(u *Unit) map[string]int {
	out := map[string]int{}
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != len(vs.Names) {
					continue
				}
				for i, name := range vs.Names {
					if v, ok := intValue(vs.Values[i], nil); ok {
						out[name.Name] = v
					}
				}
			}
		}
	}
	return out
}

// intValue evaluates an expression to an integer when it is a literal, a
// negated literal, a known constant, or AnyTag/AnySource spelled via the
// cluster package.
func intValue(e ast.Expr, consts map[string]int) (int, bool) {
	switch x := e.(type) {
	case *ast.BasicLit:
		if x.Kind == token.INT {
			v, err := strconv.Atoi(x.Value)
			if err == nil {
				return v, true
			}
		}
	case *ast.UnaryExpr:
		if x.Op == token.SUB {
			if v, ok := intValue(x.X, consts); ok {
				return -v, true
			}
		}
	case *ast.Ident:
		if x.Name == "AnyTag" || x.Name == "AnySource" {
			return -1, true
		}
		if consts != nil {
			if v, ok := consts[x.Name]; ok {
				return v, true
			}
		}
	case *ast.SelectorExpr:
		if x.Sel.Name == "AnyTag" || x.Sel.Name == "AnySource" {
			return -1, true
		}
	case *ast.ParenExpr:
		return intValue(x.X, consts)
	}
	return 0, false
}
