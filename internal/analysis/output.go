package analysis

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"path/filepath"
)

// FindingID returns a stable identifier for a finding, derived from its
// rule, location and message. The same finding gets the same ID across
// runs, so downstream tools (CI annotation, baselining) can track
// findings without diffing free-form text.
func FindingID(f Finding) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d|%s", f.Rule, filepath.ToSlash(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Msg)
	return fmt.Sprintf("PV-%016x", h.Sum64())
}

// ruleDescriptions gives each rule a one-line description for machine
// output. The reserved "load" rule covers files that failed to parse.
var ruleDescriptions = map[string]string{
	"collective":   "collective call not matched across rank-divergent branches",
	"sendrecv":     "Send with a constant tag no Recv in the package matches",
	"protocol":     "interprocedural SPMD protocol violation (collective order, orphan tags, rank-dependent trip counts)",
	"deadlock":     "static Recv wait-cycle or uniform receive-before-send hang",
	"useaftersend": "sent or collectively-shared buffer written before a happens-after sync point",
	"recvalias":    "received data lands in an in-flight buffer or overlapping receive targets",
	"wiresafe":     "payload type a network transport cannot encode, or a missing/shallow CloneWire",
	"hotalloc":     "per-iteration allocation flowing into a communication payload inside the same loop",
	"rolledcoll":   "hand-rolled O(P) send/recv loop matching a known O(log P) collective shape",
	"nondet":       "map order, unseeded rand or wall-clock time reaching a payload, reduction or obs field",
	"capture":      "unguarded write to a captured variable in a rank closure",
	"lockcopy":     "sync.Mutex or sync.WaitGroup copied by value",
	"rawgo":        "raw go statement bypassing the sanctioned substrates",
	"load":         "file failed to parse and was excluded from analysis",
}

// ruleSARIFNames gives each rule its PascalCase SARIF display name —
// stable like the rule IDs, so SARIF viewers group findings usefully.
var ruleSARIFNames = map[string]string{
	"collective":   "CollectiveDivergence",
	"sendrecv":     "OrphanSendTag",
	"protocol":     "ProtocolMismatch",
	"deadlock":     "StaticDeadlock",
	"useaftersend": "UseAfterSend",
	"recvalias":    "ReceiveAliasing",
	"wiresafe":     "WireUnsafePayload",
	"hotalloc":     "HotPathAllocation",
	"rolledcoll":   "HandRolledCollective",
	"nondet":       "NondeterministicValue",
	"capture":      "SharedCapture",
	"lockcopy":     "LockCopy",
	"rawgo":        "RawGoroutine",
	"load":         "LoadFailure",
}

// ruleHelpURI points a rule at its section of the analyzer docs. The URI
// is repo-relative so it resolves wherever the repository is browsed.
func ruleHelpURI(rule string) string {
	return "docs/analysis.md#rule-" + rule
}

type jsonFinding struct {
	ID      string `json:"id"`
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

// WriteJSON emits findings as a JSON array (never null: a clean run is
// `[]`), one object per finding with a stable id.
// Stats summarizes one run for trend tracking: per-rule finding counts
// over the analyzed packages. Every known rule appears with its count,
// zero or not, so diffs of archived stats files have a stable schema.
type Stats struct {
	Packages int            `json:"packages"`
	Findings int            `json:"findings"`
	Rules    map[string]int `json:"rules"`
}

// WriteStats emits the per-rule finding-count JSON behind `peachyvet
// -stats`. Map keys encode in sorted order, so the output is byte-stable
// for a given finding set.
func WriteStats(w io.Writer, packages int, findings []Finding) error {
	st := Stats{Packages: packages, Findings: len(findings), Rules: make(map[string]int, len(AllRules)+1)}
	for _, r := range AllRules {
		st.Rules[r] = 0
	}
	for _, f := range findings {
		st.Rules[f.Rule]++
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&st)
}

func WriteJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			ID:      FindingID(f),
			Rule:    f.Rule,
			File:    filepath.ToSlash(f.Pos.Filename),
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Message: f.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Minimal SARIF 2.1.0 object model — only the properties peachyvet
// emits, shaped to validate against the official schema.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	Name             string       `json:"name"`
	ShortDescription sarifMessage `json:"shortDescription"`
	HelpURI          string       `json:"helpUri"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	Level               string            `json:"level"`
	Message             sarifMessage      `json:"message"`
	Locations           []sarifLocation   `json:"locations"`
	PartialFingerprints map[string]string `json:"partialFingerprints"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF emits findings as a SARIF 2.1.0 log with one run. Load
// errors are level "error"; rule findings are level "warning". The
// driver's rule table lists every known rule so viewers can show
// descriptions even for rules with no results.
func WriteSARIF(w io.Writer, findings []Finding) error {
	driver := sarifDriver{Name: "peachyvet"}
	for _, name := range append(append([]string{}, AllRules...), "load") {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               name,
			Name:             ruleSARIFNames[name],
			ShortDescription: sarifMessage{Text: ruleDescriptions[name]},
			HelpURI:          ruleHelpURI(name),
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		level := "warning"
		if f.Rule == "load" {
			level = "error"
		}
		col := f.Pos.Column
		if col < 1 {
			col = 1
		}
		line := f.Pos.Line
		if line < 1 {
			line = 1
		}
		results = append(results, sarifResult{
			RuleID:  f.Rule,
			Level:   level,
			Message: sarifMessage{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(f.Pos.Filename)},
					Region:           sarifRegion{StartLine: line, StartColumn: col},
				},
			}},
			PartialFingerprints: map[string]string{"peachyvetId": FindingID(f)},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
