package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Collective vocabulary of the cluster substrate. Methods are matched on
// any receiver identifier; functions take the communicator as their first
// argument (cluster.Bcast(c, ...) or, inside package cluster and its
// tests, bare Bcast(c, ...)).
var collectiveMethods = map[string]bool{
	"Barrier": true, "BarrierSub": true, "Split": true,
}

var collectiveFuncs = map[string]bool{
	"Bcast": true, "Reduce": true, "Allreduce": true, "Gather": true,
	"Allgather": true, "Scatter": true, "Alltoall": true, "Scan": true,
	"BcastSub": true, "ReduceSub": true, "AllreduceSub": true, "GatherSub": true,
}

// rankIdentNames are bare identifiers treated as a rank value.
var rankIdentNames = map[string]bool{
	"rank": true, "myrank": true, "myRank": true, "me": true, "myID": true,
}

// isRankExpr reports whether e denotes this rank's id; comm names the
// communicator identifier when derivable ("" when not).
func isRankExpr(e ast.Expr) (comm string, ok bool) {
	switch x := e.(type) {
	case *ast.Ident:
		if rankIdentNames[x.Name] || strings.HasSuffix(x.Name, "Rank") {
			return "", true
		}
	case *ast.CallExpr:
		if sel, isSel := x.Fun.(*ast.SelectorExpr); isSel && sel.Sel.Name == "Rank" && len(x.Args) == 0 {
			if id, isID := sel.X.(*ast.Ident); isID {
				return id.Name, true
			}
			return "", true
		}
	}
	return "", false
}

// rankComparison describes one rank comparison found in an if condition.
type rankComparison struct {
	comm string      // communicator ident ("" unknown)
	op   token.Token // EQL, NEQ, LSS, ...
}

// rankCond scans a boolean condition for comparisons against the rank.
// It descends through && and || and parentheses.
func rankCond(e ast.Expr) []rankComparison {
	var out []rankComparison
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.ParenExpr:
			walk(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.NOT {
				walk(x.X)
			}
		case *ast.BinaryExpr:
			switch x.Op {
			case token.LAND, token.LOR:
				walk(x.X)
				walk(x.Y)
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
				if comm, ok := isRankExpr(x.X); ok {
					out = append(out, rankComparison{comm: comm, op: x.Op})
				} else if comm, ok := isRankExpr(x.Y); ok {
					out = append(out, rankComparison{comm: comm, op: flipCmp(x.Op)})
				}
			}
		}
	}
	walk(e)
	return out
}

func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.GTR:
		return token.LSS
	case token.LEQ:
		return token.GEQ
	case token.GEQ:
		return token.LEQ
	}
	return op // EQL, NEQ symmetric
}

// collCall describes a collective call site.
type collCall struct {
	name string
	comm string // communicator ident ("" unknown)
	pos  token.Pos
}

// asCollective classifies a call expression as a collective, if it is one.
func asCollective(call *ast.CallExpr) (collCall, bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if collectiveMethods[fun.Sel.Name] && len(call.Args) <= 2 {
			if id, ok := fun.X.(*ast.Ident); ok {
				return collCall{name: fun.Sel.Name, comm: id.Name, pos: call.Pos()}, true
			}
			return collCall{name: fun.Sel.Name, pos: call.Pos()}, true
		}
		if collectiveFuncs[fun.Sel.Name] && len(call.Args) > 0 {
			return collCall{name: fun.Sel.Name, comm: firstArgIdent(call), pos: call.Pos()}, true
		}
	case *ast.Ident:
		// Bare call: inside package cluster or with a dot import.
		if collectiveFuncs[fun.Name] && len(call.Args) > 0 {
			return collCall{name: fun.Name, comm: firstArgIdent(call), pos: call.Pos()}, true
		}
	case *ast.IndexExpr: // explicit instantiation: Bcast[T](c, ...)
		inner := &ast.CallExpr{Fun: fun.X, Args: call.Args}
		return asCollective(inner)
	case *ast.IndexListExpr:
		inner := &ast.CallExpr{Fun: fun.X, Args: call.Args}
		return asCollective(inner)
	}
	return collCall{}, false
}

func firstArgIdent(call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	if id, ok := call.Args[0].(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// collectColls gathers, in source order, the collective calls under n that
// involve communicator comm (calls whose communicator cannot be derived
// are included; calls on a different, known communicator are not). It
// does not descend into nested function literals.
func collectColls(u *Unit, n ast.Node, comm string) []collCall {
	var out []collCall
	if n == nil {
		return nil
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch c := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if cc, ok := asCollective(c); ok && u.clusterCall(c) {
				// clusterCall screens out namesakes from other packages
				// (strings.Split is not a communicator split).
				if comm == "" || cc.comm == "" || cc.comm == comm {
					out = append(out, cc)
				}
			}
		}
		return true
	})
	return out
}

// terminates reports whether the last statement of a block unconditionally
// leaves the function (return, panic, t.Fatal-style, os.Exit).
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			return isTerminalCall(call)
		}
	}
	return false
}

func isTerminalCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		n := fun.Sel.Name
		return strings.HasPrefix(n, "Fatal") || n == "Exit" || n == "Goexit" || strings.HasPrefix(n, "Skip")
	}
	return false
}

// funcBodies enumerates every function body in the unit: declarations and
// each function literal, so every closure is analyzed exactly once as its
// own scope.
func funcBodies(u *Unit, visit func(name string, body *ast.BlockStmt)) {
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			visit(fd.Name.Name, fd.Body)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				visit("func literal", lit.Body)
			}
			return true
		})
	}
}

// clusterCall reports whether a collective- or comm-named call plausibly
// targets the cluster vocabulary rather than an unrelated function that
// shares a name (par.Reduce, a local Send helper, ...). Package-qualified
// calls must come through a package named "cluster"; bare free-function
// calls must hand a communicator-typed first argument when types resolve.
// Method calls and calls with unresolved types pass — the syntactic rules
// (collective, protocol) keep their lenient matching; only the
// type-driven ownership and wire-safety rules consult this.
func (u *Unit) clusterCall(call *ast.CallExpr) bool {
	if sel, ok := unwrapCallFun(call).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && u.info != nil {
			if _, isPkg := u.info.Uses[id].(*types.PkgName); isPkg {
				return id.Name == "cluster"
			}
		}
		return true // method call on a value (c.Barrier and friends)
	}
	if u.info == nil || len(call.Args) == 0 {
		return true
	}
	t := u.info.TypeOf(call.Args[0])
	if t == nil {
		return true
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.Invalid {
		return true // unresolved cross-package type: stay lenient
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	switch named.Obj().Name() {
	case "Comm", "SubComm":
		return true
	}
	return false
}
