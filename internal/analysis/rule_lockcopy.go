package analysis

import (
	"go/ast"
	"go/types"
)

// checkLockCopy flags sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Cond
// and sync.Once values — or structs containing them — copied by value:
// value receivers, value parameters, plain assignments and range copies. A
// copied lock is a distinct lock, which silently destroys the mutual
// exclusion (and for WaitGroup, the join) it was supposed to provide.
// This is the go/types-powered rule; the others are purely syntactic.
func checkLockCopy(u *Unit, r *reporter) {
	if u.info == nil {
		return
	}
	info := u.info

	// TypeOf consults Types, Defs and Uses, covering range-value idents
	// (which only appear in Defs).
	exprType := func(e ast.Expr) types.Type {
		return info.TypeOf(e)
	}

	// isCopySource: expressions that read an existing value (copying it),
	// as opposed to creating a fresh one (composite literal, call result).
	isCopySource := func(e ast.Expr) bool {
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.ParenExpr:
			return true
		}
		return false
	}

	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			var fields []*ast.Field
			if fd.Recv != nil {
				fields = append(fields, fd.Recv.List...)
			}
			if fd.Type.Params != nil {
				fields = append(fields, fd.Type.Params.List...)
			}
			for _, field := range fields {
				t := exprType(field.Type)
				if t == nil {
					continue
				}
				if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
					continue
				}
				if lockName := containsLock(t, nil); lockName != "" {
					what := "parameter"
					if fd.Recv != nil && len(fd.Recv.List) > 0 && field == fd.Recv.List[0] {
						what = "receiver"
					}
					r.report("lockcopy", field.Pos(),
						"%s of %s passes %s by value in %s: the copy is a different lock — use a pointer", what, fd.Name.Name, lockName, typeString(t))
				}
			}
		}

		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range x.Rhs {
					if len(x.Rhs) != len(x.Lhs) {
						break
					}
					if !isCopySource(rhs) {
						continue
					}
					t := exprType(rhs)
					if t == nil {
						continue
					}
					if lockName := containsLock(t, nil); lockName != "" {
						_ = i
						r.report("lockcopy", x.Pos(),
							"assignment copies %s (in %s) by value: the copy is a different lock — use a pointer", lockName, typeString(t))
					}
				}
			case *ast.RangeStmt:
				if x.Value == nil {
					return true
				}
				t := exprType(x.Value)
				if t == nil {
					return true
				}
				if lockName := containsLock(t, nil); lockName != "" {
					r.report("lockcopy", x.Value.Pos(),
						"range copies %s (in %s) by value per element: iterate by index or store pointers", lockName, typeString(t))
				}
			case *ast.CallExpr:
				sig, ok := exprType(x.Fun).(*types.Signature)
				if !ok {
					return true
				}
				for i, arg := range x.Args {
					if !isCopySource(arg) {
						continue
					}
					pt := paramType(sig, i)
					if pt == nil {
						continue
					}
					if _, isPtr := pt.Underlying().(*types.Pointer); isPtr {
						continue
					}
					if lockName := containsLock(pt, nil); lockName != "" {
						r.report("lockcopy", arg.Pos(),
							"call passes %s (in %s) by value: the callee gets a different lock — pass a pointer", lockName, typeString(pt))
					}
				}
			}
			return true
		})
	}
}

func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params == nil {
		return nil
	}
	n := params.Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := params.At(n - 1).Type()
		if sl, ok := last.(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return params.At(i).Type()
}

// containsLock reports the name of the sync primitive a type carries by
// value ("" when none). seen guards against recursive types.
func containsLock(t types.Type, seen map[types.Type]bool) string {
	if t == nil {
		return ""
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once", "Map", "Pool":
				return "sync." + obj.Name()
			}
		}
		return containsLock(named.Underlying(), seen)
	}
	switch x := t.(type) {
	case *types.Struct:
		for i := 0; i < x.NumFields(); i++ {
			if name := containsLock(x.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return containsLock(x.Elem(), seen)
	}
	return ""
}

func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
