package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The nondet rule tracks the three sources that break cross-run
// reproducibility — map iteration order, unseeded math/rand, and
// wall-clock time — into the places where nondeterminism becomes
// observable: a wire payload, a reduction operand, or an obs
// span/instant field (the byte-identical Chrome-trace goldens of the
// obs layer only hold if nothing nondeterministic reaches a trace).
//
// Taint discipline, tuned against this repository:
//
//   - Ranging over a map taints the key/value variables and anything
//     *sequenced* from them: appends into a slice, float accumulation
//     (floating-point addition is not associative, so summation order
//     changes the result). Integer accumulation over a map range is
//     order-independent and stays clean, as do stores back into the
//     ranged map itself (the per-key rewrite pattern).
//   - Wall-clock (`time.Now`, `time.Since`) and math/rand values taint
//     any arithmetic or composite built from them.
//
// Safe by contract, never tainted: internal/prng (explicitly seeded,
// rank-splittable), Recorder.Now (the obs wall clock whose values the
// exporters normalize), and the communicator's simulated Clock.
//
// Sinks are interprocedural through the shared Effect.Payload facts: a
// tainted value handed to a helper that forwards the parameter into a
// send or collective is reported at the call site.

func checkNondet(u *Unit, r *reporter) {
	u.ensureTypes()
	sums := u.summaries()
	funcBodies(u, func(name string, body *ast.BlockStmt) {
		s := &nondetScan{
			u: u, r: r, cg: sums.cg,
			taint:    map[string]taintInfo{},
			reported: map[token.Pos]bool{},
		}
		s.stmts(body.List)
	})
}

// taintInfo records why a variable is nondeterministic.
type taintInfo struct {
	src string // "map iteration order", "wall-clock time", "unseeded math/rand"
	pos token.Pos
}

type nondetScan struct {
	u         *Unit
	r         *reporter
	cg        *callGraph
	taint     map[string]taintInfo
	reported  map[token.Pos]bool
	rangeBase []string // base idents of maps currently being ranged over
}

// obsSinkMethods are the Recorder calls whose arguments land in exported
// trace events.
var obsSinkMethods = map[string]bool{
	"Span": true, "PhaseSpan": true, "WallSpan": true, "Instant": true,
}

// nondetSafeObs are obs entry points that take wall-clock-derived values
// by contract: WireSpan and Hist.Observe feed counters and histograms
// only (never the deterministic timeline or the wire), Quantile reads
// such a histogram back, and Serve's live endpoint exports them over
// HTTP. Nondeterministic arguments are their whole point, so calls to
// them are never nondet sinks.
var nondetSafeObs = map[string]bool{
	"WireSpan": true, "Observe": true, "Quantile": true, "Serve": true,
}

// ---- statement walk ----

func (s *nondetScan) stmts(list []ast.Stmt) {
	for _, st := range list {
		s.stmt(st)
	}
}

func (s *nondetScan) stmt(st ast.Stmt) {
	switch x := st.(type) {
	case *ast.ExprStmt:
		s.scanCalls(x.X)
	case *ast.AssignStmt:
		s.assign(x)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, nm := range vs.Names {
					if i < len(vs.Values) {
						s.scanCalls(vs.Values[i])
						s.bindTaint(nm.Name, vs.Values[i])
					}
				}
			}
		}
	case *ast.IfStmt:
		if x.Init != nil {
			s.stmt(x.Init)
		}
		s.scanCalls(x.Cond)
		s.stmts(x.Body.List)
		if x.Else != nil {
			s.stmt(x.Else)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			s.stmt(x.Init)
		}
		s.scanCalls(x.Cond)
		// Two passes: taint born late in iteration N is observable at the
		// top of iteration N+1. Findings dedup by position.
		s.stmts(x.Body.List)
		s.stmts(x.Body.List)
		if x.Post != nil {
			s.stmt(x.Post)
		}
	case *ast.RangeStmt:
		s.rangeStmt(x)
	case *ast.SwitchStmt:
		if x.Init != nil {
			s.stmt(x.Init)
		}
		s.scanCalls(x.Tag)
		s.caseArms(x.Body)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			s.stmt(x.Init)
		}
		s.stmt(x.Assign)
		s.caseArms(x.Body)
	case *ast.SelectStmt:
		s.caseArms(x.Body)
	case *ast.BlockStmt:
		s.stmts(x.List)
	case *ast.LabeledStmt:
		s.stmt(x.Stmt)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			s.scanCalls(r)
		}
	case *ast.DeferStmt:
		s.call(x.Call)
	case *ast.SendStmt:
		s.scanCalls(x.Chan)
		s.scanCalls(x.Value)
	case *ast.IncDecStmt:
		s.scanCalls(x.X)
	}
}

func (s *nondetScan) caseArms(body *ast.BlockStmt) {
	for _, c := range body.List {
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				s.scanCalls(e)
			}
			s.stmts(cc.Body)
		case *ast.CommClause:
			s.stmts(cc.Body)
		}
	}
}

// rangeStmt handles the map-order source: ranging over a map taints the
// key and value variables for the duration of the body; their prior
// taint (usually none) is restored afterwards. Taint they induce on
// longer-lived variables persists — that is the leak being tracked.
func (s *nondetScan) rangeStmt(x *ast.RangeStmt) {
	s.scanCalls(x.X)
	overMap := s.isMapExpr(x.X)
	carried, carriedOK := s.exprTaint(x.X)

	type saved struct {
		name string
		old  taintInfo
		had  bool
	}
	var restores []saved
	bindLoopVar := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		old, had := s.taint[id.Name]
		restores = append(restores, saved{id.Name, old, had})
		switch {
		case overMap:
			s.taint[id.Name] = taintInfo{src: "map iteration order", pos: x.Pos()}
		case carriedOK:
			s.taint[id.Name] = carried
		default:
			delete(s.taint, id.Name)
		}
	}
	bindLoopVar(x.Key)
	bindLoopVar(x.Value)

	if overMap {
		base, _ := baseIdent(x.X)
		s.rangeBase = append(s.rangeBase, base)
	}
	s.stmts(x.Body.List)
	s.stmts(x.Body.List) // see ForStmt: late taint reaches the next iteration
	if overMap {
		s.rangeBase = s.rangeBase[:len(s.rangeBase)-1]
	}
	for _, sv := range restores {
		if sv.had {
			s.taint[sv.name] = sv.old
		} else {
			delete(s.taint, sv.name)
		}
	}
}

func (s *nondetScan) isMapExpr(e ast.Expr) bool {
	if s.u.info == nil {
		return false
	}
	t := s.u.info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// ---- assignments and propagation ----

func (s *nondetScan) assign(x *ast.AssignStmt) {
	for _, r := range x.Rhs {
		s.scanCalls(r)
	}
	for i, lhs := range x.Lhs {
		var rhs ast.Expr
		if len(x.Rhs) == 1 {
			rhs = x.Rhs[0]
		} else if i < len(x.Rhs) {
			rhs = x.Rhs[i]
		}
		if rhs == nil {
			continue
		}
		switch l := lhs.(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			if x.Tok == token.ASSIGN || x.Tok == token.DEFINE {
				s.bindTaint(l.Name, rhs)
				continue
			}
			// Compound assignment accumulates. Integer accumulation over a
			// map range is order-independent (addition is associative);
			// float accumulation and every wall-clock/rand source are not.
			if t, ok := s.exprTaint(rhs); ok {
				if t.src == "map iteration order" && s.isIntegerIdent(l) {
					continue
				}
				s.taint[l.Name] = t
			}
		case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
			if t, ok := s.exprTaint(rhs); ok {
				base, okBase := baseIdent(lhs)
				if !okBase {
					continue
				}
				// Storing back into the map being ranged (`m[k] = f(v)`)
				// rewrites per key and leaves the map's content
				// deterministic; anything else carries the taint.
				if t.src == "map iteration order" && s.inRangeBase(base) {
					continue
				}
				s.taint[base] = t
			}
		}
	}
}

func (s *nondetScan) bindTaint(name string, rhs ast.Expr) {
	if t, ok := s.exprTaint(rhs); ok {
		s.taint[name] = t
	} else {
		delete(s.taint, name) // rebinding to a clean value clears
	}
}

func (s *nondetScan) inRangeBase(name string) bool {
	for _, b := range s.rangeBase {
		if b == name {
			return true
		}
	}
	return false
}

func (s *nondetScan) isIntegerIdent(e ast.Expr) bool {
	if s.u.info == nil {
		return false
	}
	t := s.u.info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// ---- sources ----

// exprTaint reports whether evaluating the expression yields a
// nondeterministic value: a tainted variable, a wall-clock or math/rand
// call, or a method call on a tainted receiver (t.UnixNano()).
func (s *nondetScan) exprTaint(e ast.Expr) (taintInfo, bool) {
	if e == nil {
		return taintInfo{}, false
	}
	var out taintInfo
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if t, ok := s.taint[x.Name]; ok {
				out, found = t, true
			}
		case *ast.CallExpr:
			if t, ok := s.callTaint(x); ok {
				out, found = t, true
				return false
			}
			// len/cap of an order-tainted container are its size — the
			// one property map iteration order cannot change.
			if name, ok := callFunIdent(x); ok && (name == "len" || name == "cap") {
				return false
			}
		}
		return true
	})
	return out, found
}

// callTaint classifies a call as a nondeterminism source.
func (s *nondetScan) callTaint(call *ast.CallExpr) (taintInfo, bool) {
	if pkg, fn, ok := s.u.pkgSel(call); ok {
		switch {
		case pkg == "time" && (fn == "Now" || fn == "Since"):
			return taintInfo{src: "wall-clock time", pos: call.Pos()}, true
		case pkg == "rand":
			_ = fn
			return taintInfo{src: "unseeded math/rand", pos: call.Pos()}, true
		}
	}
	return taintInfo{}, false
}

// ---- sinks ----

// scanCalls visits every call in an expression (not descending into
// function literals) and checks it as a sink.
func (s *nondetScan) scanCalls(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch c := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			s.call(c)
		}
		return true
	})
}

func (s *nondetScan) call(call *ast.CallExpr) {
	// Sorting a map-ordered sequence is the canonical fix: it restores a
	// deterministic order, so the order-taint is cleared.
	if pkg, fn, ok := s.u.pkgSel(call); ok &&
		(pkg == "sort" || (pkg == "slices" && strings.HasPrefix(fn, "Sort"))) {
		for _, arg := range call.Args {
			if base, okBase := baseIdent(arg); okBase {
				if t, tainted := s.taint[base]; tainted && t.src == "map iteration order" {
					delete(s.taint, base)
				}
			}
		}
		return
	}
	// Direct wire payload (send or collective — the reduction-operand case).
	if arg, op, ok := commPayload(s.u, call); ok {
		if t, tainted := s.exprTaint(arg); tainted {
			s.sink(call.Pos(), t,
				"reaches the %s payload; wire traffic and reduction results will differ across runs — use internal/prng or a deterministic iteration order", op)
		}
		return
	}
	// Safe-by-contract obs entry points: wall-derived values are welcome
	// in the counter/histogram aggregates and the live endpoint.
	if sel, ok := unwrapCallFun(call).(*ast.SelectorExpr); ok && nondetSafeObs[sel.Sel.Name] {
		return
	}
	// Obs span/instant fields: the golden traces diverge.
	if sel, ok := unwrapCallFun(call).(*ast.SelectorExpr); ok && obsSinkMethods[sel.Sel.Name] {
		for _, arg := range call.Args {
			if t, tainted := s.exprTaint(arg); tainted {
				s.sink(call.Pos(), t,
					"flows into an obs %s field; golden traces and cross-run comparisons will diverge — record Recorder.Now or simulated time instead", sel.Sel.Name)
				return
			}
		}
		return
	}
	// Helper forwarding a parameter into a payload: interprocedural sink.
	callee := s.cg.resolve(call)
	if callee == nil {
		return
	}
	facts := s.u.payloadFacts(callee)
	if len(facts) == 0 {
		return
	}
	for idx, pname := range orderedParams(callee) {
		fact, sent := facts[pname]
		if !sent {
			continue
		}
		arg, ok := callArg(call, callee, idx)
		if !ok || arg == nil {
			continue
		}
		if t, tainted := s.exprTaint(arg); tainted {
			s.sink(call.Pos(), t,
				"reaches the %s payload via %s; wire traffic and reduction results will differ across runs — use internal/prng or a deterministic iteration order", fact.op, callee.Name.Name)
			return
		}
	}
}

func (s *nondetScan) sink(pos token.Pos, t taintInfo, format string, args ...any) {
	if s.reported[pos] {
		return
	}
	s.reported[pos] = true
	srcLine := s.u.Fset.Position(t.pos).Line
	s.r.report("nondet", pos,
		"value derived from %s (line %d) "+format,
		append([]any{t.src, srcLine}, args...)...)
}
