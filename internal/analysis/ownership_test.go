package analysis

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestOwnershipInterprocedural pins the interprocedural half of the
// ownership engine: the finding messages must name the helper the fact
// was spliced through — a write inside a callee, a write inside a method
// on the payload type, and a send inside a callee.
func TestOwnershipInterprocedural(t *testing.T) {
	units, err := Load([]string{fixtureDir("useaftersend")})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Rules = map[string]bool{"useaftersend": true}
	var msgs []string
	for _, f := range Analyze(units[0], cfg) {
		msgs = append(msgs, f.Msg)
	}
	all := strings.Join(msgs, "\n")
	for _, want := range []string{
		"write via scale",  // helper mutates the sent buffer
		"write via Bump",   // method on the payload type mutates it
		"Send via forward", // helper performs the send, caller mutates
		"shared by Bcast",  // collective result stays shared
	} {
		if !strings.Contains(all, want) {
			t.Errorf("no finding mentions %q; got:\n%s", want, all)
		}
	}
}

// TestSARIFRuleMetadata is the golden-file test for the driver's rule
// table: every rule carries a stable id, a PascalCase name, a one-line
// description and a helpUri into docs/analysis.md. Run with -update to
// rewrite the golden after an intentional change.
func TestSARIFRuleMetadata(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden", "sarif_rules.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF rule metadata drifted from %s; run with -update if intentional\ngot:\n%s", golden, buf.String())
	}
}

// TestUnreadableDirEmitsDocument guards the machine-output contract: a
// pattern naming an unreadable directory must not abort the run with an
// empty stdout — the other patterns' findings and a "load" finding for
// the bad directory must still land in one valid document, exit code 2.
func TestUnreadableDirEmitsDocument(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "does-not-exist")
	for _, mode := range []string{"-json", "-sarif"} {
		var out, errb bytes.Buffer
		code := Main([]string{mode, fixtureDir("useaftersend"), bad}, &out, &errb)
		if code != 2 {
			t.Errorf("%s: exit = %d, want 2 (load error)", mode, code)
		}
		if out.Len() == 0 {
			t.Fatalf("%s: no document on stdout (stderr: %s)", mode, errb.String())
		}
		var doc any
		if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
			t.Fatalf("%s: stdout is not valid JSON: %v", mode, err)
		}
		text := out.String()
		if !strings.Contains(text, "directory is not readable") {
			t.Errorf("%s: document lacks the load finding for the bad dir", mode)
		}
		if !strings.Contains(text, "useaftersend") {
			t.Errorf("%s: document lacks the good pattern's findings", mode)
		}
	}
}

// BenchmarkAnalyzeOwnership measures the ownership and wire-safety pass
// alone over the whole repository: the dataflow engine, the mutation
// summaries and the encodability lattice, on top of a shared parse.
func BenchmarkAnalyzeOwnership(b *testing.B) {
	units, err := Load([]string{"../../..."})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Rules = map[string]bool{"useaftersend": true, "recvalias": true, "wiresafe": true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range units {
			u.ownOnce = false
			u.ownFinds = nil
			u.sums = nil
			u.muts = nil
			u.wireCache = nil
			for _, f := range Analyze(u, cfg) {
				if f.Rule != "load" {
					b.Fatalf("repo not clean under ownership rules: %s", f)
				}
			}
		}
	}
}
