package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The hotalloc rule flags allocations made on every iteration of a loop
// whose value flows into a communication payload inside that same loop:
// a fresh `make`, a growing `append`, a reference-typed composite
// literal, an explicit interface boxing at the payload argument, or an
// allocation a helper returns. Per-iteration payload allocation is the
// dominant allocs/op term on the hot collectives (ROADMAP item 4) — the
// buffer can almost always be hoisted out of the loop and reset per
// iteration (heapk.Reset-style) or kept once per world.
//
// Interprocedural on both ends via the shared machinery: an allocation
// can reach the wire through a helper (the callee's Effect.Payload fact
// names the parameter it forwards into a send), and the allocation
// itself can happen inside a helper (a callee whose returns are fresh
// allocations).
//
// Escape hatch, by design: an allocation guarded by a condition on the
// same variable (`if buf == nil`, `if cap(buf) < n`) is a lazy-init /
// ensure-capacity pattern that rebinds once and then reuses — never
// reported. Composite literals passed directly as a payload argument
// (message construction: `Send(c, dst, tag, result{id, v})`) are not
// allocations the caller could hoist, and are not reported either.

func checkHotAlloc(u *Unit, r *reporter) {
	u.ensureTypes()
	sums := u.summaries()
	funcBodies(u, func(name string, body *ast.BlockStmt) {
		h := &hotAllocScan{u: u, r: r, cg: sums.cg, seen: map[token.Pos]bool{}}
		ast.Inspect(body, func(n ast.Node) bool {
			switch l := n.(type) {
			case *ast.FuncLit:
				return false // literal bodies are scanned as their own scope
			case *ast.ForStmt:
				h.loop(l.Body)
			case *ast.RangeStmt:
				h.loop(l.Body)
			}
			return true
		})
	})
}

// allocSite is one per-iteration allocation bound to a variable.
type allocSite struct {
	pos  token.Pos
	kind string // "make", "growing append", "composite literal", "helper f"
}

type hotAllocScan struct {
	u    *Unit
	r    *reporter
	cg   *callGraph
	seen map[token.Pos]bool // dedup across nested-loop rescans
}

// loop checks one loop body: collect the variables allocated inside it,
// then every payload use inside it, and report each allocation whose
// variable reaches a payload.
func (h *hotAllocScan) loop(body *ast.BlockStmt) {
	allocs := map[string][]allocSite{}
	h.collectAllocs(body.List, nil, allocs)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if arg, op, direct := commPayload(h.u, call); direct {
			h.payloadUse(arg, op, "", allocs)
			return true
		}
		callee := h.cg.resolve(call)
		if callee == nil {
			return true
		}
		facts := h.u.payloadFacts(callee)
		if len(facts) == 0 {
			return true
		}
		for idx, pname := range orderedParams(callee) {
			fact, sent := facts[pname]
			if !sent {
				continue
			}
			if arg, ok := callArg(call, callee, idx); ok && arg != nil {
				h.payloadUse(arg, fact.op, callee.Name.Name, allocs)
			}
		}
		return true
	})
}

// payloadUse matches one payload argument against the loop's allocation
// sites; via names the helper the payload travels through ("" direct).
func (h *hotAllocScan) payloadUse(arg ast.Expr, op, via string, allocs map[string][]allocSite) {
	useLine := h.u.Fset.Position(arg.Pos()).Line
	// Explicit interface boxing at the payload argument allocates on
	// every iteration even when the boxed value does not.
	if conv, ok := stripParens(arg).(*ast.CallExpr); ok {
		if id, isID := conv.Fun.(*ast.Ident); isID && id.Name == "any" && !h.seen[conv.Pos()] {
			h.seen[conv.Pos()] = true
			h.r.report("hotalloc", conv.Pos(),
				"value is boxed into an interface on every iteration of this loop before entering the %s payload; hoist a reusable boxed value (or send the concrete type) to cut allocs/op", op)
		}
	}
	name, ok := baseIdent(arg)
	if !ok {
		return
	}
	through := ""
	if via != "" {
		through = " via " + via
	}
	for _, site := range allocs[name] {
		if h.seen[site.pos] {
			continue
		}
		h.seen[site.pos] = true
		h.r.report("hotalloc", site.pos,
			"%q is allocated (%s) on every iteration of this loop and flows into the %s payload%s at line %d; hoist the buffer out of the loop and reset it per iteration (heapk.Reset-style), or keep one buffer per world, to cut allocs/op",
			name, site.kind, op, through, useLine)
	}
}

// collectAllocs walks the loop body's statements recording per-iteration
// allocations bound to plain identifiers. guards carries the conditions
// of enclosing if-statements: an allocation guarded by a condition on
// its own variable is the rebind-once pattern and is skipped.
func (h *hotAllocScan) collectAllocs(list []ast.Stmt, guards []ast.Expr, allocs map[string][]allocSite) {
	for _, s := range list {
		switch x := s.(type) {
		case *ast.AssignStmt:
			h.allocAssign(x, guards, allocs)
		case *ast.DeclStmt:
			if gd, ok := x.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, nm := range vs.Names {
						if i < len(vs.Values) {
							h.recordAlloc(nm.Name, vs.Values[i], vs.Values[i].Pos(), guards, allocs)
						}
					}
				}
			}
		case *ast.IfStmt:
			g := append(guards, x.Cond)
			h.collectAllocs(x.Body.List, g, allocs)
			if x.Else != nil {
				h.collectAllocs([]ast.Stmt{x.Else}, g, allocs)
			}
		case *ast.BlockStmt:
			h.collectAllocs(x.List, guards, allocs)
		case *ast.ForStmt:
			h.collectAllocs(x.Body.List, guards, allocs)
		case *ast.RangeStmt:
			h.collectAllocs(x.Body.List, guards, allocs)
		case *ast.SwitchStmt:
			h.caseAllocs(x.Body, guards, allocs)
		case *ast.TypeSwitchStmt:
			h.caseAllocs(x.Body, guards, allocs)
		case *ast.SelectStmt:
			h.caseAllocs(x.Body, guards, allocs)
		case *ast.LabeledStmt:
			h.collectAllocs([]ast.Stmt{x.Stmt}, guards, allocs)
		}
	}
}

func (h *hotAllocScan) caseAllocs(body *ast.BlockStmt, guards []ast.Expr, allocs map[string][]allocSite) {
	for _, c := range body.List {
		switch cc := c.(type) {
		case *ast.CaseClause:
			h.collectAllocs(cc.Body, guards, allocs)
		case *ast.CommClause:
			h.collectAllocs(cc.Body, guards, allocs)
		}
	}
}

func (h *hotAllocScan) allocAssign(x *ast.AssignStmt, guards []ast.Expr, allocs map[string][]allocSite) {
	for i, lhs := range x.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		var rhs ast.Expr
		if len(x.Rhs) == 1 {
			rhs = x.Rhs[0]
		} else if i < len(x.Rhs) {
			rhs = x.Rhs[i]
		}
		if rhs != nil {
			h.recordAlloc(id.Name, rhs, x.Pos(), guards, allocs)
		}
	}
}

// recordAlloc classifies one right-hand side as a per-iteration
// allocation of name, applying the guarded-rebind escape hatch.
func (h *hotAllocScan) recordAlloc(name string, rhs ast.Expr, pos token.Pos, guards []ast.Expr, allocs map[string][]allocSite) {
	kind, ok := h.allocKind(name, rhs)
	if !ok {
		return
	}
	for _, g := range guards {
		if mentionsIdent(g, name) {
			return // `if buf == nil` / `if cap(buf) < n` — rebinds once
		}
	}
	allocs[name] = append(allocs[name], allocSite{pos: pos, kind: kind})
}

func (h *hotAllocScan) allocKind(name string, rhs ast.Expr) (string, bool) {
	switch v := stripParens(rhs).(type) {
	case *ast.CompositeLit:
		if h.refLiteral(rhs) {
			return "composite literal", true
		}
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			if _, isLit := v.X.(*ast.CompositeLit); isLit {
				return "composite literal", true
			}
		}
	case *ast.CallExpr:
		if fn, ok := callFunIdent(v); ok {
			switch fn {
			case "make":
				return "make", true
			case "append":
				// Growing append: the destination is the bare variable
				// itself. `append(buf[:0], ...)` is the reuse idiom and
				// `append(other, ...)` a copy-build — neither reported.
				if len(v.Args) > 0 {
					if dst, isID := stripParens(v.Args[0]).(*ast.Ident); isID && dst.Name == name {
						return "growing append", true
					}
				}
				return "", false
			}
		}
		if callee := h.cg.resolve(v); callee != nil && helperAllocates(callee) {
			return "helper " + callee.Name.Name, true
		}
	}
	return "", false
}

// refLiteral reports whether a composite literal has reference semantics
// (slice or map) — a struct literal assigned to a variable is a value
// and allocates nothing by itself.
func (h *hotAllocScan) refLiteral(x ast.Expr) bool {
	lit, ok := stripParens(x).(*ast.CompositeLit)
	if !ok {
		return false
	}
	switch lit.Type.(type) {
	case *ast.ArrayType, *ast.MapType:
		return true
	}
	if h.u.info != nil {
		if t := h.u.info.TypeOf(lit); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				return true
			}
		}
	}
	return false
}

// helperAllocates reports whether every value the callee can return is
// born inside it: each return statement hands back a fresh make,
// composite literal or address-of-literal. Such a call inside a loop is
// an allocation at the call site.
func helperAllocates(fd *ast.FuncDecl) bool {
	if fd.Body == nil || fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
		return false
	}
	returns, fresh := 0, 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		returns++
		switch v := stripParens(ret.Results[0]).(type) {
		case *ast.CompositeLit:
			fresh++
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if _, isLit := v.X.(*ast.CompositeLit); isLit {
					fresh++
				}
			}
		case *ast.CallExpr:
			if fn, ok := callFunIdent(v); ok && (fn == "make" || fn == "append") {
				fresh++
			}
		}
		return true
	})
	return returns > 0 && returns == fresh
}
