package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// checkProtocol runs the interprocedural protocol checks over the unit's
// communication summaries:
//
//  1. cross-function collective-order mismatch: a rank-divergent branch
//     whose arms execute different collective sequences once calls are
//     expanded — the interprocedural completion of the `collective` rule,
//     reported only when the mismatch is invisible intraprocedurally (the
//     collective rule owns the rest);
//  2. orphaned tags after interprocedural constant propagation: a Send
//     whose tag becomes constant only through a call binding and that no
//     Recv can match, and — the new direction — a blocking Recv with a
//     constant tag no reachable Send produces;
//  3. collectives inside loops whose trip count depends on the rank:
//     ranks execute different numbers of the collective, which mismatches
//     the SPMD sequence even though no single call site diverges.
func checkProtocol(u *Unit, r *reporter) {
	s := u.summaries()
	seenBranch := map[token.Pos]bool{}
	seenLoop := map[token.Pos]bool{}
	for _, fd := range s.cg.decls {
		sum := s.funcSummary(fd)
		checkCollMismatch(u, r, sum.Effects, nil, seenBranch)
		checkRankTripLoops(u, r, sum.Effects, seenLoop)
	}
	eachFuncLit(u, func(lit *ast.FuncLit) {
		sum := s.litSummary(lit)
		checkCollMismatch(u, r, sum.Effects, nil, seenBranch)
		checkRankTripLoops(u, r, sum.Effects, seenLoop)
	})
	checkOrphanTags(u, r, s)
}

// eachFuncLit visits every function literal in the unit once.
func eachFuncLit(u *Unit, visit func(lit *ast.FuncLit)) {
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				visit(lit)
			}
			return true
		})
	}
}

// flattenColls linearizes the collective calls under a summary subtree in
// source order (both arms of branches, loop bodies once), filtered to the
// branch's communicator like the intraprocedural rule. intraOnly keeps
// only effects visible without call expansion.
func flattenColls(effects []Effect, comm string, intraOnly bool) []Effect {
	var out []Effect
	for _, e := range effects {
		switch e.Kind {
		case EffColl:
			if intraOnly && len(e.Path) > 0 {
				continue
			}
			if comm == "" || e.Comm == "" || e.Comm == comm {
				out = append(out, e)
			}
		case EffBranch:
			for _, a := range e.Arms {
				out = append(out, flattenColls(a, comm, intraOnly)...)
			}
		case EffLoop:
			out = append(out, flattenColls(e.Body, comm, intraOnly)...)
		}
	}
	return out
}

// checkCollMismatch walks a summary sequence looking for rank-divergent
// branches whose arms run different collective sequences from the branch
// to the end of the function, with calls expanded. cont holds the
// enclosing frames' continuations (the effects ranks fall through to).
func checkCollMismatch(u *Unit, r *reporter, seq []Effect, cont []Effect, seen map[token.Pos]bool) {
	for i, e := range seq {
		rest := seq[i+1:]
		switch e.Kind {
		case EffBranch:
			if e.Divergent && len(e.Path) == 0 && !seen[e.Pos] {
				seen[e.Pos] = true
				reportArmMismatch(u, r, e, rest, cont)
			}
			childCont := concatEffects(rest, cont)
			for _, arm := range e.Arms {
				checkCollMismatch(u, r, arm, childCont, seen)
			}
		case EffLoop:
			checkCollMismatch(u, r, e.Body, concatEffects(rest, cont), seen)
		}
	}
}

func concatEffects(a, b []Effect) []Effect {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]Effect, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// reportArmMismatch compares the expanded per-arm collective sequences of
// one divergent branch and reports when they differ but the mismatch is
// invisible without call expansion (the intraprocedural collective rule
// reports the visible ones).
func reportArmMismatch(u *Unit, r *reporter, br Effect, rest, cont []Effect) {
	later := flattenColls(concatEffects(rest, cont), br.Comm, false)
	laterIntra := flattenColls(concatEffects(rest, cont), br.Comm, true)

	full := make([][]Effect, len(br.Arms))
	intra := make([][]Effect, len(br.Arms))
	for j, arm := range br.Arms {
		full[j] = flattenColls(arm, br.Comm, false)
		intra[j] = flattenColls(arm, br.Comm, true)
		if !br.Term[j] {
			full[j] = append(append([]Effect{}, full[j]...), later...)
			intra[j] = append(append([]Effect{}, intra[j]...), laterIntra...)
		}
	}
	mismatch := false
	for j := 1; j < len(full); j++ {
		if !sameOpSeq(full[0], full[j]) {
			mismatch = true
		}
	}
	if !mismatch {
		return
	}
	for j := 1; j < len(intra); j++ {
		if !sameOpSeq(intra[0], intra[j]) {
			return // visible without expansion: the collective rule owns it
		}
	}
	var arms []string
	for j, ops := range full {
		arms = append(arms, fmt.Sprintf("arm %d runs [%s]", j+1, describeColls(ops)))
	}
	r.report("protocol", br.Pos,
		"rank-divergent collective sequence across function calls: %s — every rank must execute the same collectives in the same order (sequences include calls after the branch)",
		strings.Join(arms, ", "))
}

func sameOpSeq(a, b []Effect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Op != b[i].Op {
			return false
		}
	}
	return true
}

func describeColls(ops []Effect) string {
	if len(ops) == 0 {
		return "none"
	}
	var ns []string
	for _, o := range ops {
		ns = append(ns, o.Op+o.pathString())
	}
	return strings.Join(ns, ", ")
}

// checkRankTripLoops reports collectives inside loops whose trip count is
// rank-dependent, including collectives reached through calls.
func checkRankTripLoops(u *Unit, r *reporter, effects []Effect, seen map[token.Pos]bool) {
	for _, e := range effects {
		switch e.Kind {
		case EffLoop:
			if e.RankTrips {
				for _, coll := range flattenColls(e.Body, "", false) {
					if seen[coll.Pos] {
						continue
					}
					seen[coll.Pos] = true
					loopPos := u.Fset.Position(e.Pos)
					r.report("protocol", coll.Pos,
						"collective %s%s inside the loop at %s:%d whose trip count depends on the rank — ranks execute different numbers of this collective, which mismatches the SPMD sequence",
						coll.Op, coll.pathString(), filepath.Base(loopPos.Filename), loopPos.Line)
				}
			}
			checkRankTripLoops(u, r, e.Body, seen)
		case EffBranch:
			for _, arm := range e.Arms {
				checkRankTripLoops(u, r, arm, seen)
			}
		}
	}
}

// checkOrphanTags matches constant point-to-point tags package-wide after
// call expansion. Effects are enumerated from the call-graph roots (and
// every function literal), so each helper's sends and receives are seen
// with the most specific bindings its callers provide.
func checkOrphanTags(u *Unit, r *reporter, s *summarizer) {
	type site struct {
		e Effect
	}
	var sends, recvs []site
	sendTags := map[int]bool{}
	recvTags := map[int]bool{}
	unknownSend := false
	wildcardRecv := false

	var gather func(effects []Effect)
	gather = func(effects []Effect) {
		for _, e := range effects {
			switch e.Kind {
			case EffSend:
				switch e.Tag.class {
				case valConst:
					sendTags[e.Tag.val] = true
					sends = append(sends, site{e})
				default:
					// A dynamic or still-symbolic tag could produce anything
					// (the function may be called from another package).
					unknownSend = true
				}
			case EffRecv:
				switch {
				case e.Tag.class == valConst && e.Tag.val >= 0:
					recvTags[e.Tag.val] = true
					if e.Blocking {
						recvs = append(recvs, site{e})
					}
				default:
					// AnyTag, dynamic, or unbound symbolic: matches anything.
					wildcardRecv = true
				}
			case EffBranch:
				for _, arm := range e.Arms {
					gather(arm)
				}
			case EffLoop:
				gather(e.Body)
			}
		}
	}
	for _, fd := range s.cg.roots() {
		gather(s.funcSummary(fd).Effects)
	}
	eachFuncLit(u, func(lit *ast.FuncLit) {
		gather(s.litSummary(lit).Effects)
	})

	seen := map[token.Pos]bool{}
	if !wildcardRecv {
		for _, sd := range sends {
			// Intraprocedurally constant tags are the sendrecv rule's
			// territory; report only tags resolved by call binding.
			if !sd.e.Tag.bound || recvTags[sd.e.Tag.val] || seen[sd.e.Pos] {
				continue
			}
			seen[sd.e.Pos] = true
			r.report("protocol", sd.e.Pos,
				"Send with tag %d%s has no matching Recv tag anywhere in this package — the tag is bound at the call site, so no run can receive this message",
				sd.e.Tag.val, sd.e.pathString())
		}
	}
	if !unknownSend {
		for _, rc := range recvs {
			if sendTags[rc.e.Tag.val] || seen[rc.e.Pos] {
				continue
			}
			seen[rc.e.Pos] = true
			r.report("protocol", rc.e.Pos,
				"blocking Recv with tag %d%s that no reachable Send produces — every rank executing this receive hangs forever",
				rc.e.Tag.val, rc.e.pathString())
		}
	}
}
