package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the ownership half of the wire-safety pass: a per-function
// forward dataflow over buffer-typed values (slices, maps, pointers) that
// reach communication payload arguments. The in-process transport passes
// pointers, so a rank that mutates a buffer after sending it — or lands
// received data in a buffer whose previous contents are still in flight —
// races with its peer today and silently diverges under a real network
// device (ROADMAP item 1). Two rules share the engine:
//
//	useaftersend — a sent or collectively-shared buffer (or any alias of
//	               it) is written before a happens-after sync point
//	recvalias    — received data lands in a live sent buffer, or two
//	               receives land in provably overlapping regions
//
// Sync-point model (documented in docs/analysis.md): a collective on the
// communicator is a happens-after point for point-to-point sends, as is a
// blocking receive from the same peer the buffer was sent to (the reply
// implies the peer consumed the message). Collective payloads and results
// stay shared for the rest of the function — in-process, other ranks hold
// the same backing array indefinitely — until the variable is rebound to
// a fresh allocation or a deep copy (`append([]T(nil), x...)`).
//
// The engine is interprocedural: helper calls consult the mutation
// summaries (mutation.go) to catch writes that happen inside callees, and
// the communication summaries' payload facts (summary.go) to catch sends
// that happen inside callees. Unknown callees are assumed non-mutating —
// the conservative-for-noise choice.

func checkUseAfterSend(u *Unit, r *reporter) { ownershipRule(u, r, "useaftersend") }
func checkRecvAlias(u *Unit, r *reporter)    { ownershipRule(u, r, "recvalias") }

// ownFinding is a raw engine finding; the per-rule wrappers replay them
// through the reporter so //peachyvet:allow applies per rule.
type ownFinding struct {
	rule string
	pos  token.Pos
	msg  string
}

func ownershipRule(u *Unit, r *reporter, rule string) {
	if !u.ownOnce {
		u.ownOnce = true
		eng := &ownEngine{
			u:      u,
			sums:   u.summaries(),
			muts:   u.mutations(),
			consts: collectIntConsts(u),
			seen:   map[string]bool{},
		}
		eng.run()
		u.ownFinds = eng.finds
	}
	for _, f := range u.ownFinds {
		if f.rule == rule {
			r.report(f.rule, f.pos, "%s", f.msg)
		}
	}
}

// bufRegion is a view of a tracked buffer: the canonical root plus a
// constant element range when one is provable (whole otherwise).
type bufRegion struct {
	root   string
	lo, hi int
	whole  bool
}

// liveInfo describes why a root is dangerous to write: in flight to a
// peer (p2p) or shared with other ranks by a collective.
type liveInfo struct {
	op   string // Send, SendRecv, Bcast, "Allreduce result", "Send via helper", ...
	pos  token.Pos
	peer string // rendered destination for p2p sends ("" unknown)
	p2p  bool   // cleared by sync points; collective sharing is not
}

// recvLand records where received data landed inside a root.
type recvLand struct {
	lo, hi int
	whole  bool
	pos    token.Pos
}

// ownState is the dataflow state at one program point.
type ownState struct {
	alias map[string]bufRegion  // variable -> region of a root
	live  map[string]*liveInfo  // root -> in-flight / shared
	recvd map[string]bool       // root -> holds data born from a Recv
	lands map[string][]recvLand // root -> receive landing sites
}

func newOwnState() *ownState {
	return &ownState{
		alias: map[string]bufRegion{},
		live:  map[string]*liveInfo{},
		recvd: map[string]bool{},
		lands: map[string][]recvLand{},
	}
}

func (st *ownState) clone() *ownState {
	c := newOwnState()
	for k, v := range st.alias {
		c.alias[k] = v
	}
	for k, v := range st.live {
		c.live[k] = v
	}
	for k, v := range st.recvd {
		c.recvd[k] = v
	}
	for k, v := range st.lands {
		c.lands[k] = append([]recvLand(nil), v...)
	}
	return c
}

// absorb unions another state's facts into this one (used to merge
// branch arms and to carry loop-body effects back to the loop head).
// Aliases established in the other state fill gaps but never override —
// on divergent rebinds the earlier binding wins, a deliberate
// first-wins heuristic.
func (st *ownState) absorb(o *ownState) {
	for k, v := range o.alias {
		if _, ok := st.alias[k]; !ok {
			st.alias[k] = v
		}
	}
	for k, v := range o.live {
		if _, ok := st.live[k]; !ok {
			st.live[k] = v
		}
	}
	for k, v := range o.recvd {
		st.recvd[k] = st.recvd[k] || v
	}
	for root, lands := range o.lands {
		have := map[token.Pos]bool{}
		for _, l := range st.lands[root] {
			have[l.pos] = true
		}
		for _, l := range lands {
			if !have[l.pos] {
				st.lands[root] = append(st.lands[root], l)
			}
		}
	}
}

// clearP2P clears every in-flight point-to-point send: a collective on
// the communicator is a happens-after point for them.
func (st *ownState) clearP2P() {
	for k, info := range st.live {
		if info.p2p {
			delete(st.live, k)
		}
	}
}

// clearPeer clears p2p sends to one peer: a blocking receive from that
// peer implies it consumed the in-flight message (request-reply order).
func (st *ownState) clearPeer(peer string) {
	if peer == "" || peer == "-1" { // unknown or AnySource: proves nothing
		return
	}
	for k, info := range st.live {
		if info.p2p && info.peer == peer {
			delete(st.live, k)
		}
	}
}

// ownEngine drives the dataflow over every function body in the unit.
type ownEngine struct {
	u      *Unit
	sums   *summarizer
	muts   *mutAnalyzer
	consts map[string]int
	seen   map[string]bool
	finds  []ownFinding
	nextID int
}

func (e *ownEngine) run() {
	e.u.ensureTypes()
	funcBodies(e.u, func(name string, body *ast.BlockStmt) {
		e.walkStmts(body.List, newOwnState())
	})
}

func (e *ownEngine) report(rule string, pos token.Pos, format string, args ...any) {
	key := rule + "|" + e.u.Fset.Position(pos).String()
	if e.seen[key] {
		return
	}
	e.seen[key] = true
	e.finds = append(e.finds, ownFinding{rule: rule, pos: pos, msg: fmt.Sprintf(format, args...)})
}

func (e *ownEngine) fresh(name string) string {
	e.nextID++
	return fmt.Sprintf("%s#%d", name, e.nextID)
}

func (e *ownEngine) line(pos token.Pos) int {
	return e.u.Fset.Position(pos).Line
}

// isRefExprType reports whether an expression's static type has
// reference semantics (slice, map or pointer underlying). Missing type
// info yields false: untyped expressions go untracked rather than noisy.
func (e *ownEngine) isRefExprType(x ast.Expr) bool {
	if e.u.info == nil {
		return false
	}
	t := e.u.info.TypeOf(x)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer:
		return true
	}
	return false
}

// ---- statement walk ----

func (e *ownEngine) walkStmts(list []ast.Stmt, st *ownState) {
	for _, s := range list {
		e.walkStmt(s, st)
	}
}

func (e *ownEngine) walkStmt(s ast.Stmt, st *ownState) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		e.scanExpr(x.X, st)
	case *ast.AssignStmt:
		e.assign(x, st)
	case *ast.IncDecStmt:
		e.scanExpr(x.X, st)
		switch x.X.(type) {
		case *ast.IndexExpr, *ast.StarExpr, *ast.SelectorExpr:
			e.storeInto(x.X, nil, x.Pos(), st)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					e.scanExpr(v, st)
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					e.bind(name.Name, rhs, false, st)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			e.scanExpr(r, st)
		}
	case *ast.IfStmt:
		if x.Init != nil {
			e.walkStmt(x.Init, st)
		}
		e.scanExpr(x.Cond, st)
		thenSt := st.clone()
		e.walkStmts(x.Body.List, thenSt)
		elseSt := st.clone()
		if x.Else != nil {
			e.walkStmt(x.Else, elseSt)
		}
		*st = *elseSt
		st.absorb(thenSt)
	case *ast.ForStmt:
		if x.Init != nil {
			e.walkStmt(x.Init, st)
		}
		e.scanExpr(x.Cond, st)
		e.loopBody(st, func(s2 *ownState) {
			e.walkStmts(x.Body.List, s2)
			if x.Post != nil {
				e.walkStmt(x.Post, s2)
			}
		})
	case *ast.RangeStmt:
		e.scanExpr(x.X, st)
		// The value variable views the ranged container's elements; when
		// the container is a tracked live buffer with reference-typed
		// elements, writes through the value variable are writes into it.
		if id, ok := x.Value.(*ast.Ident); ok && id.Name != "_" {
			if reg, tracked := e.resolveRef(x.X, st); tracked && e.isRefExprType(x.Value) {
				st.alias[id.Name] = bufRegion{root: reg.root, whole: true}
			} else {
				st.alias[id.Name] = bufRegion{root: e.fresh(id.Name), whole: true}
			}
		}
		if id, ok := x.Key.(*ast.Ident); ok && id.Name != "_" {
			st.alias[id.Name] = bufRegion{root: e.fresh(id.Name), whole: true}
		}
		e.loopBody(st, func(s2 *ownState) {
			e.walkStmts(x.Body.List, s2)
		})
	case *ast.SwitchStmt:
		if x.Init != nil {
			e.walkStmt(x.Init, st)
		}
		e.scanExpr(x.Tag, st)
		e.caseArms(x.Body, st)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			e.walkStmt(x.Init, st)
		}
		e.walkStmt(x.Assign, st)
		e.caseArms(x.Body, st)
	case *ast.SelectStmt:
		e.caseArms(x.Body, st)
	case *ast.BlockStmt:
		e.walkStmts(x.List, st)
	case *ast.LabeledStmt:
		e.walkStmt(x.Stmt, st)
	case *ast.DeferStmt:
		// Runs at function exit; source order is the same approximation
		// the summary builder uses.
		e.handleCall(x.Call, st)
	case *ast.SendStmt:
		e.scanExpr(x.Chan, st)
		e.scanExpr(x.Value, st)
	case *ast.GoStmt:
		// A spawned goroutine is not part of this rank's program order.
	}
}

// loopBody analyzes a loop body twice: a probe pass discovers liveness
// the body creates (a send in iteration N makes a write at the top of
// iteration N+1 dangerous), which is then carried back to the loop head
// for the reporting pass. Findings deduplicate by position, so
// straight-line findings are not doubled.
func (e *ownEngine) loopBody(st *ownState, walk func(*ownState)) {
	probe := st.clone()
	walk(probe)
	st.absorb(probe)
	walk(st)
}

// caseArms walks each case/comm clause on a clone and merges the arms.
func (e *ownEngine) caseArms(body *ast.BlockStmt, st *ownState) {
	base := st.clone()
	for _, c := range body.List {
		var list []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, x := range cc.List {
				e.scanExpr(x, base)
			}
			list = cc.Body
		case *ast.CommClause:
			list = cc.Body
		default:
			continue
		}
		arm := base.clone()
		e.walkStmts(list, arm)
		st.absorb(arm)
	}
}

// ---- assignments and writes ----

func (e *ownEngine) assign(x *ast.AssignStmt, st *ownState) {
	for _, r := range x.Rhs {
		e.scanExpr(r, st)
	}
	multiFromCall := len(x.Rhs) == 1 && len(x.Lhs) > 1
	for i, lhs := range x.Lhs {
		var rhs ast.Expr
		if len(x.Rhs) == 1 {
			rhs = x.Rhs[0]
		} else if i < len(x.Rhs) {
			rhs = x.Rhs[i]
		}
		switch l := lhs.(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			// p = append(p, ...) may write through the old backing array
			// before reallocating — still a use of the sent buffer.
			if rhs != nil && isAppendOf(rhs, l.Name) {
				if reg, ok := st.alias[l.Name]; ok {
					if info := st.live[reg.root]; info != nil {
						e.reportUseAfter(x.Pos(), l.Name, info, "")
					}
				}
			}
			e.bind(l.Name, rhs, multiFromCall, st)
		case *ast.IndexExpr, *ast.StarExpr, *ast.SelectorExpr:
			e.storeInto(l, rhs, x.Pos(), st)
		}
	}
}

// bind gives a variable a new view: an alias of an existing root when the
// right-hand side has reference semantics, a fresh root otherwise.
// Rebinding is what kills liveness for a name — `x = append([]T(nil),
// x...)` and `x = make(...)` both sever x from the shared buffer.
func (e *ownEngine) bind(name string, rhs ast.Expr, multiFromCall bool, st *ownState) {
	if rhs == nil {
		st.alias[name] = bufRegion{root: e.fresh(name), whole: true}
		return
	}
	if call, ok := rhs.(*ast.CallExpr); ok {
		if e.u.clusterCall(call) {
			if isRecvName(commCallName(call)) {
				root := e.fresh(name)
				st.alias[name] = bufRegion{root: root, whole: true}
				st.recvd[root] = true
				return
			}
			if cc, ok := asCollective(call); ok && e.payloadShares(call) {
				// The collective's return value is shared with other ranks by
				// the in-process transport (Bcast hands every rank the same
				// backing array); writes to it need a deep copy first.
				root := e.fresh(name)
				st.alias[name] = bufRegion{root: root, whole: true}
				st.live[root] = &liveInfo{op: cc.name + " result", pos: call.Pos()}
				return
			}
		}
		// Any other call produces a fresh value in this frame.
		st.alias[name] = bufRegion{root: e.fresh(name), whole: true}
		return
	}
	if multiFromCall {
		// v, src := RecvFrom(...) — handled per-name above only for the
		// single-result shape; here every name gets a fresh root, marked
		// received when the call is a receive.
		root := e.fresh(name)
		st.alias[name] = bufRegion{root: root, whole: true}
		return
	}
	if e.aliasable(rhs) {
		if reg, ok := e.resolveRef(rhs, st); ok {
			st.alias[name] = reg
			return
		}
	}
	st.alias[name] = bufRegion{root: e.fresh(name), whole: true}
}

// aliasable reports whether assigning rhs shares memory with its source:
// slicing and address-taking always do; identifiers, field selections,
// indexing and dereferencing do when the resulting type has reference
// semantics (copying a slice header shares the array; copying an int
// does not).
func (e *ownEngine) aliasable(rhs ast.Expr) bool {
	switch x := rhs.(type) {
	case *ast.SliceExpr:
		return true
	case *ast.UnaryExpr:
		return x.Op == token.AND
	case *ast.ParenExpr:
		return e.aliasable(x.X)
	case *ast.Ident, *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
		return e.isRefExprType(rhs)
	}
	return false
}

// storeInto handles a write through an index, dereference or field:
// the hazard sites of both rules.
func (e *ownEngine) storeInto(lhs, rhs ast.Expr, pos token.Pos, st *ownState) {
	reg, ok := e.resolveRef(lhs, st)
	if !ok {
		return
	}
	fromRecv := e.rhsFromRecv(rhs, st)
	if info := st.live[reg.root]; info != nil {
		name, _ := baseIdent(lhs)
		if fromRecv {
			e.report("recvalias", pos,
				"received data lands in %q while it is still in flight from %s at line %d; the peer may observe the received bytes instead of the sent payload",
				name, info.op, e.line(info.pos))
		} else {
			e.reportUseAfter(pos, name, info, "")
		}
	}
	if fromRecv {
		e.recordLanding(lhs, reg, pos, st)
	}
}

// copyInto handles copy(dst, src) — a write into dst, and a receive
// landing when src carries received data.
func (e *ownEngine) copyInto(dst, src ast.Expr, pos token.Pos, st *ownState) {
	reg, ok := e.resolveRef(dst, st)
	if !ok {
		return
	}
	fromRecv := e.rhsFromRecv(src, st)
	if info := st.live[reg.root]; info != nil {
		name, _ := baseIdent(dst)
		if fromRecv {
			e.report("recvalias", pos,
				"received data lands in %q while it is still in flight from %s at line %d; the peer may observe the received bytes instead of the sent payload",
				name, info.op, e.line(info.pos))
		} else {
			e.reportUseAfter(pos, name, info, "")
		}
	}
	if fromRecv {
		e.recordLanding(dst, reg, pos, st)
	}
}

func (e *ownEngine) reportUseAfter(pos token.Pos, name string, info *liveInfo, via string) {
	desc := info.op
	if info.p2p && info.peer != "" {
		desc += " to " + info.peer
	}
	verb := "after"
	if !info.p2p {
		verb = "while shared by"
	}
	suffix := ""
	if via != "" {
		suffix = " (write via " + via + ")"
	}
	e.report("useaftersend", pos,
		"buffer %q is written %s %s at line %d with no intervening sync point; deep-copy the payload or synchronize before mutating%s",
		name, verb, desc, e.line(info.pos), suffix)
}

// recordLanding notes where received data landed and reports a recvalias
// finding when two landings have provably overlapping constant ranges —
// the second receive silently overwrites part of the first. Whole-buffer
// landings never overlap-report: sequential scratch reuse is idiomatic.
func (e *ownEngine) recordLanding(lhs ast.Expr, reg bufRegion, pos token.Pos, st *ownState) {
	for _, prev := range st.lands[reg.root] {
		if prev.pos == pos {
			return // same site, revisited by the loop reporting pass
		}
	}
	if !reg.whole {
		for _, prev := range st.lands[reg.root] {
			if !prev.whole && prev.lo < reg.hi && reg.lo < prev.hi {
				name, _ := baseIdent(lhs)
				e.report("recvalias", pos,
					"receive target %s[%d:%d] overlaps the receive target [%d:%d] at line %d; the second receive silently overwrites the first",
					name, reg.lo, reg.hi, prev.lo, prev.hi, e.line(prev.pos))
				break
			}
		}
	}
	st.lands[reg.root] = append(st.lands[reg.root], recvLand{lo: reg.lo, hi: reg.hi, whole: reg.whole, pos: pos})
}

// rhsFromRecv reports whether an expression carries just-received data: a
// direct receive call, or a variable whose root was born from one.
func (e *ownEngine) rhsFromRecv(rhs ast.Expr, st *ownState) bool {
	if rhs == nil {
		return false
	}
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isRecvName(commCallName(x)) {
				found = true
				return false
			}
		}
		return true
	})
	if found {
		return true
	}
	if name, ok := baseIdent(rhs); ok {
		if reg, ok2 := st.alias[name]; ok2 {
			return st.recvd[reg.root]
		}
	}
	return false
}

func isRecvName(name string) bool {
	switch name {
	case "Recv", "RecvFrom", "RecvSub", "TryRecv", "SendRecv":
		return true
	}
	return false
}

// ---- expression / call scan ----

// scanExpr visits every call in an expression in syntactic order without
// entering function literals (each literal is analyzed as its own scope).
func (e *ownEngine) scanExpr(x ast.Expr, st *ownState) {
	if x == nil {
		return
	}
	ast.Inspect(x, func(n ast.Node) bool {
		switch c := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			e.handleCall(c, st)
			return false
		}
		return true
	})
}

// handleCall classifies one call: builtin, communication event, sync
// point, or unit-local helper whose mutation/send summaries apply.
func (e *ownEngine) handleCall(call *ast.CallExpr, st *ownState) {
	for _, a := range call.Args {
		e.scanExpr(a, st)
	}
	if name, ok := callFunIdent(call); ok {
		switch name {
		case "copy":
			if len(call.Args) == 2 {
				e.copyInto(call.Args[0], call.Args[1], call.Pos(), st)
			}
			return
		case "clear":
			if len(call.Args) == 1 {
				if reg, ok := e.resolveRef(call.Args[0], st); ok {
					if info := st.live[reg.root]; info != nil {
						n, _ := baseIdent(call.Args[0])
						e.reportUseAfter(call.Pos(), n, info, "")
					}
				}
			}
			return
		case "append", "len", "cap", "make", "new", "delete", "panic", "min", "max", "print", "println":
			return
		}
	}
	if e.u.clusterCall(call) {
		if cc, ok := asCollective(call); ok {
			// Entering a collective synchronizes earlier point-to-point
			// sends; the payload handed to it becomes shared with other
			// ranks (the transport passes the pointer through).
			st.clearP2P()
			// Allreduce consumes its payload argument before returning on
			// every path: recursive doubling sends snapshots, and the
			// reduce+bcast fallback clones at the root before broadcasting
			// (collectives.go). The *result* still aliases shared memory —
			// handled in bind — but the argument is reusable.
			reusable := cc.name == "Allreduce" || cc.name == "AllreduceSub"
			if i := collPayloadIndex(cc.name); i >= 0 && i < len(call.Args) && !reusable && e.payloadShares(call.Args[i]) {
				if reg, ok := e.resolveRef(call.Args[i], st); ok {
					st.live[reg.root] = &liveInfo{op: cc.name, pos: call.Pos()}
				}
			}
			return
		}
		switch name := commCallName(call); name {
		case "Send", "SendSub", "SendRecv":
			if len(call.Args) == 4 && e.payloadShares(call.Args[3]) {
				if reg, ok := e.resolveRef(call.Args[3], st); ok {
					st.live[reg.root] = &liveInfo{
						op: name, pos: call.Pos(), p2p: true,
						peer: renderPeer(call.Args[1], e.consts),
					}
				}
			}
			return
		case "Recv", "RecvFrom", "RecvSub", "TryRecv":
			if len(call.Args) == 3 {
				st.clearPeer(renderPeer(call.Args[1], e.consts))
			}
			return
		}
	}
	callee := e.sums.cg.resolve(call)
	if callee == nil {
		return
	}
	// A callee that reaches a collective is a sync point for the caller's
	// in-flight sends (cleared before the mutation check: preferring a
	// missed report over a false one when the callee does both).
	sends := e.sentParams(callee)
	if e.calleeHasCollective(callee) {
		st.clearP2P()
	}
	muts := e.muts.mutatedParams(callee)
	if len(muts) == 0 && len(sends) == 0 {
		return
	}
	for idx, pname := range orderedParams(callee) {
		arg, ok := callArg(call, callee, idx)
		if !ok || arg == nil {
			continue
		}
		reg, tracked := e.resolveRef(arg, st)
		if !tracked {
			continue
		}
		if w, hasWrite := muts[pname]; hasWrite {
			if info := st.live[reg.root]; info != nil {
				name, _ := baseIdent(arg)
				e.reportUseAfter(call.Pos(), name, info,
					strings.Join(append([]string{callee.Name.Name}, w.path...), " → "))
			}
		}
		if fact, escapes := sends[pname]; escapes {
			if fact.op == "Allreduce" || fact.op == "AllreduceSub" {
				continue // payload consumed before return, as above
			}
			st.live[reg.root] = &liveInfo{
				op: fact.op + " via " + callee.Name.Name, pos: call.Pos(), p2p: !fact.coll,
			}
		}
	}
}

// sentParams extracts, from a callee's communication summary, the
// parameters it forwards into a send or collective payload — the spliced
// fact that lets `forward(c, buf)` make buf live in the caller. The
// extraction itself lives in perf.go, shared with the performance rules.
func (e *ownEngine) sentParams(fd *ast.FuncDecl) map[string]sentFact {
	return e.u.payloadFacts(fd)
}

// calleeHasCollective reports whether the callee's summary reaches any
// collective operation.
func (e *ownEngine) calleeHasCollective(fd *ast.FuncDecl) bool {
	var has func(effs []Effect) bool
	has = func(effs []Effect) bool {
		for _, ef := range effs {
			if ef.Kind == EffColl {
				return true
			}
			if has(ef.Body) {
				return true
			}
			for _, arm := range ef.Arms {
				if has(arm) {
					return true
				}
			}
		}
		return false
	}
	return has(e.sums.funcSummary(fd).Effects)
}

// payloadShares reports whether passing x as a payload shares memory with
// the caller's frame: reference types alias outright, and composite
// values carrying references (a struct with a slice field) share their
// backing arrays through the shallow copy. Sending pos[0] — a plain int —
// copies the value and leaves nothing live.
func (e *ownEngine) payloadShares(x ast.Expr) bool {
	switch v := stripParens(x).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return true
		}
	}
	if e.u.info != nil {
		if t := e.u.info.TypeOf(x); t != nil {
			if b, ok := t.(*types.Basic); ok && b.Kind() == types.Invalid {
				// unresolved cross-package type: judge syntactically below
			} else {
				return e.u.hasReferenceParts(t, false)
			}
		}
	}
	_, isIdent := stripParens(x).(*ast.Ident)
	return isIdent
}

// ---- reference resolution ----

// resolveRef maps an expression to the region of a tracked root it
// views. First sight of a reference-typed identifier (typically a
// parameter) registers it as its own root.
func (e *ownEngine) resolveRef(x ast.Expr, st *ownState) (bufRegion, bool) {
	switch v := x.(type) {
	case *ast.ParenExpr:
		return e.resolveRef(v.X, st)
	case *ast.Ident:
		if reg, ok := st.alias[v.Name]; ok {
			return reg, true
		}
		if e.isRefExprType(v) {
			reg := bufRegion{root: v.Name, whole: true}
			st.alias[v.Name] = reg
			return reg, true
		}
		return bufRegion{}, false
	case *ast.SliceExpr:
		base, ok := e.resolveRef(v.X, st)
		if !ok {
			return bufRegion{}, false
		}
		if base.whole {
			lo, loOK := 0, true
			if v.Low != nil {
				lo, loOK = intValue(v.Low, e.consts)
			}
			hi, hiOK := 0, false
			if v.High != nil {
				hi, hiOK = intValue(v.High, e.consts)
			}
			if loOK && hiOK {
				return bufRegion{root: base.root, lo: lo, hi: hi}, true
			}
		}
		return bufRegion{root: base.root, whole: true}, true
	case *ast.IndexExpr:
		base, ok := e.resolveRef(v.X, st)
		if !ok {
			return bufRegion{}, false
		}
		if base.whole {
			if i, iOK := intValue(v.Index, e.consts); iOK {
				return bufRegion{root: base.root, lo: i, hi: i + 1}, true
			}
		}
		return bufRegion{root: base.root, whole: true}, true
	case *ast.StarExpr:
		return e.resolveRef(v.X, st)
	case *ast.SelectorExpr:
		// Field granularity is the base object: writing g.Cells[0]
		// mutates whatever g views. Package selectors have no tracked
		// base and fall out naturally.
		return e.resolveRef(v.X, st)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			if name, ok := baseIdent(v.X); ok {
				if reg, ok2 := st.alias[name]; ok2 {
					return reg, true
				}
				reg := bufRegion{root: name, whole: true}
				st.alias[name] = reg
				return reg, true
			}
		}
		return bufRegion{}, false
	}
	return bufRegion{}, false
}

// renderPeer renders a peer expression for sync matching: constants fold
// to their value, identifiers and simple selectors to their spelling.
// Unmatchable expressions render as "" (never equal to anything).
func renderPeer(x ast.Expr, consts map[string]int) string {
	if v, ok := intValue(x, consts); ok {
		return fmt.Sprintf("%d", v)
	}
	switch v := x.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		if id, ok := v.X.(*ast.Ident); ok {
			return id.Name + "." + v.Sel.Name
		}
	case *ast.ParenExpr:
		return renderPeer(v.X, consts)
	}
	return ""
}
