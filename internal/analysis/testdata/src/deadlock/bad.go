package fixture

const (
	tagPing = 101
	tagPong = 102
	tagRing = 103
)

// Both arms block in a Recv whose matching Send sits after the other
// arm's blocked Recv: rank 0 waits for the pong that rank 1 only sends
// after receiving the ping rank 0 never got to send. No interleaving of
// ranks can finish.
func crossWait(c *Comm) {
	if c.Rank() == 0 { // WANT deadlock
		v := Recv(c, 1, tagPong)
		Send(c, 1, tagPing, v)
	} else {
		v := Recv(c, 0, tagPing)
		Send(c, 0, tagPong, v)
	}
}

// Rank-uniform receive-before-send inside a rank body: every rank blocks
// at the Recv, so no rank ever reaches the Send that would satisfy it.
func ringRecvFirst(w *World) {
	_ = w.Run(func(c *Comm) {
		v := Recv(c, 0, tagRing) // WANT deadlock
		Send(c, 1, tagRing, v)
	})
}
