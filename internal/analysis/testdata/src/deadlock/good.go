package fixture

const (
	tagPing2 = 201
	tagPong2 = 202
	tagWork  = 203
	tagRing2 = 204
)

// The classic correct exchange: one side sends before receiving, so the
// in-flight message breaks the wait cycle.
func pingPong(c *Comm) {
	if c.Rank() == 0 {
		Send(c, 1, tagPing2, 1)
		_ = Recv(c, 1, tagPong2)
	} else {
		v := Recv(c, 0, tagPing2)
		Send(c, 0, tagPong2, v)
	}
}

// Only one arm blocks in a Recv; the other arm's Send satisfies it, so
// the simulation completes.
func managerWorker(c *Comm) {
	if c.Rank() == 0 {
		_ = Recv(c, 1, tagWork)
	} else {
		Send(c, 0, tagWork, 5)
	}
}

// Send-before-receive in a uniform rank body: every rank posts its
// message before blocking, so the ring drains.
func ringSendFirst(w *World) {
	_ = w.Run(func(c *Comm) {
		Send(c, 1, tagRing2, 7)
		_ = Recv(c, 0, tagRing2)
	})
}
