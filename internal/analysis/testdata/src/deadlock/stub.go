// Package fixture holds self-contained peachyvet test inputs for the
// static deadlock rule. The stubs mirror the cluster API shapes: Send is
// non-blocking (eager), Recv blocks, World.Run executes the body once per
// rank concurrently.
package fixture

type Comm struct{}

func (c *Comm) Rank() int { return 0 }
func (c *Comm) Size() int { return 1 }
func (c *Comm) Barrier()  {}

func Send(c *Comm, dst, tag, v int)  {}
func Recv(c *Comm, src, tag int) int { return 0 }

type World struct{}

func (w *World) Run(body func(c *Comm)) error { return nil }
