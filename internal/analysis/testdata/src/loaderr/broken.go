package fixture

func broken( {
	return
}
