// Package fixture pairs a valid file with one that fails to parse, to
// test that load errors surface as findings instead of aborting the run.
package fixture

func fine() int { return 1 }
