// Package fixture holds self-contained peachyvet test inputs for the
// receive-aliasing rule. The stubs mirror the cluster API shapes.
package fixture

type Comm struct{}

func (c *Comm) Rank() int { return 0 }
func (c *Comm) Size() int { return 2 }
func (c *Comm) Barrier()  {}

func Send[T any](c *Comm, dst, tag int, v T) {}

func Recv[T any](c *Comm, src, tag int) T { var zero T; return zero }
