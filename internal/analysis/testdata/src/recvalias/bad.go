package fixture

const (
	tagA = 21
	tagB = 22
	tagC = 23
)

// Two receives land in provably overlapping slices of the same frame:
// element 4 of the first payload is silently overwritten by the second.
func overlapTargets(c *Comm, frame []float64) {
	left := Recv[[]float64](c, 1, tagA)
	copy(frame[0:5], left)
	right := Recv[[]float64](c, 2, tagA)
	copy(frame[4:8], right) // WANT recvalias
}

// Received data lands in a buffer whose previous contents are still in
// flight to another peer — the peer may observe the received bytes.
func recvIntoInFlight(c *Comm, buf []float64) {
	Send(c, 1, tagB, buf)
	got := Recv[[]float64](c, 2, tagB)
	copy(buf, got) // WANT recvalias
}

// Same element receives twice: the second silently clobbers the first.
func elementClobber(c *Comm, parts []float64) {
	parts[2] = Recv[float64](c, 1, tagC)
	parts[2] = Recv[float64](c, 2, tagC) // WANT recvalias
}
