package fixture

// Disjoint constant ranges: each receive owns its half of the frame.
func disjointTargets(c *Comm, frame []float64) {
	left := Recv[[]float64](c, 1, tagA)
	copy(frame[0:4], left)
	right := Recv[[]float64](c, 2, tagA)
	copy(frame[4:8], right)
}

// Whole-buffer scratch reuse across iterations is idiomatic, not a bug:
// each landing deliberately replaces the previous one.
func scratchReuse(c *Comm) {
	scratch := make([]float64, 8)
	for i := 0; i < 3; i++ {
		in := Recv[[]float64](c, 1, tagB)
		copy(scratch, in)
	}
}

// A sync point retires the in-flight send before the receive lands.
func recvAfterClear(c *Comm, buf []float64) {
	Send(c, 1, tagC, buf)
	c.Barrier()
	got := Recv[[]float64](c, 2, tagC)
	copy(buf, got)
}
