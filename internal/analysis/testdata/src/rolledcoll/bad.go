package fixture

// bcastLoop: the root sends the same value to every rank — Bcast.
func bcastLoop(c *Comm, v []float64) {
	if c.Rank() == 0 {
		for i := 1; i < c.Size(); i++ { // WANT rolledcoll
			Send(c, i, 7, v)
		}
	} else {
		_ = Recv[[]float64](c, 0, 7)
	}
}

// scatterLoop: the root sends the i-th slice to each rank — Scatter.
// The bound is spelled through a variable holding the world size.
func scatterLoop(c *Comm, parts [][]float64) {
	size := c.Size()
	for i := 1; i < size; i++ { // WANT rolledcoll
		Send(c, i, 9, parts[i])
	}
}

// gatherLoop: every rank's contribution lands at one rank — Gather.
func gatherLoop(c *Comm) [][]float64 {
	out := make([][]float64, c.Size())
	for i := 1; i < c.Size(); i++ { // WANT rolledcoll
		out[i] = Recv[[]float64](c, i, 11)
	}
	return out
}

// reduceLoop: the received contributions are folded — Reduce.
func reduceLoop(c *Comm) float64 {
	total := 0.0
	for i := 1; i < c.Size(); i++ { // WANT rolledcoll
		total += Recv[float64](c, i, 13)
	}
	return total
}

// alltoallLoop: a symmetric exchange with every rank — Alltoall.
func alltoallLoop(c *Comm, parts []int) []int {
	out := make([]int, c.Size())
	for i := 0; i < c.Size(); i++ { // WANT rolledcoll
		if i == c.Rank() {
			out[i] = parts[i]
			continue
		}
		Send(c, i, 15, parts[i])
		out[i] = Recv[int](c, i, 15)
	}
	return out
}

// sendTo wraps the send; the destination is a parameter in its summary.
func sendTo(c *Comm, dst int, v []byte) {
	Send(c, dst, 17, v)
}

// helperLoop: the rank-indexed send hides inside a helper — the
// interprocedural peer fact.
func helperLoop(c *Comm, v []byte) {
	for i := 1; i < c.Size(); i++ { // WANT rolledcoll
		sendTo(c, i, v)
	}
}
