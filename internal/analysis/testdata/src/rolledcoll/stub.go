// Package fixture holds self-contained peachyvet test inputs for the
// hand-rolled collective rule: loops over the world size that re-invent
// an O(log P) collective with O(P) point-to-point calls.
package fixture

type Comm struct{}

func (c *Comm) Rank() int { return 0 }
func (c *Comm) Size() int { return 4 }

func Send[T any](c *Comm, dst, tag int, v T) {}

func Recv[T any](c *Comm, src, tag int) T { var zero T; return zero }

func Allreduce[T any](c *Comm, v T, op func(a, b T) T) T { return v }

func sum(a, b []float64) []float64 { return a }
