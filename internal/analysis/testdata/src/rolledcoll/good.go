package fixture

// ringShift exchanges with rank-derived neighbors; the loop bound is a
// round count, not the world size.
func ringShift(c *Comm, v int, rounds int) int {
	size := c.Size()
	for i := 0; i < rounds; i++ {
		Send(c, (c.Rank()+1)%size, 7, v)
		v = Recv[int](c, (c.Rank()-1+size)%size, 7)
	}
	return v
}

// fanData loops over data items with a fixed peer — a streaming send,
// not a collective shape.
func fanData(c *Comm, xs []int) {
	for i := 0; i < len(xs); i++ {
		Send(c, 1, 9, xs[i])
	}
}

// realCollective is what the rule's message points at.
func realCollective(c *Comm, v []float64) []float64 {
	return Allreduce(c, v, sum)
}

// allowedLinear documents a deliberate linear loop (e.g. a baseline
// being benchmarked against the tree implementation).
func allowedLinear(c *Comm, v int) {
	//peachyvet:allow rolledcoll
	for i := 1; i < c.Size(); i++ {
		Send(c, i, 11, v)
	}
}
