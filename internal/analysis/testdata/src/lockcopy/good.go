package fixture

import "sync"

// Pointer receiver and pointer parameters share the one true lock.
func lockByPointer(g *guarded) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func (g *guarded) bumpPtr() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// Iterating by index avoids the per-element copy.
func rangeByIndex(gs []guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

// Fresh values (composite literals, constructors) are not copies of an
// existing lock.
func freshValue() guarded {
	return guarded{}
}

// A pointer to the WaitGroup can be handed around freely.
func waitGroupPointer() {
	var wg sync.WaitGroup
	p := &wg
	p.Wait()
}
