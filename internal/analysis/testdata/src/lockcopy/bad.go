// Package fixture holds self-contained peachyvet test inputs for the
// lockcopy rule; it imports the real sync package so go/types can see
// the primitive types.
package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

// Value parameter: the callee locks a private copy, not the caller's lock.
func lockByValueParam(g guarded) { // WANT lockcopy
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// Value receiver: same defect, method form.
func (g guarded) bump() { // WANT lockcopy
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// Plain assignment copies the WaitGroup counter.
func waitGroupCopy() {
	var wg sync.WaitGroup
	wg2 := wg // WANT lockcopy
	wg2.Wait()
}

// Ranging by value copies the mutex in every element.
func rangeCopiesLock(gs []guarded) int {
	total := 0
	for _, g := range gs { // WANT lockcopy
		total += g.n
	}
	return total
}
