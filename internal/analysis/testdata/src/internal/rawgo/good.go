package fixture

type pool struct{}

func (p *pool) For(n int, body func(i int)) {}

// Worksharing through a pool: no raw go statement in sight.
func goodPool(p *pool, out []int) {
	p.For(len(out), func(i int) { out[i] = i })
}

// A justified spawn carries an explicit suppression.
func justifiedSpawn(done chan struct{}) {
	go close(done) //peachyvet:allow rawgo
}
