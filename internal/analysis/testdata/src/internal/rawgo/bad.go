// Package fixture holds peachyvet test inputs for the rawgo rule. The
// directory path contains "internal/" on purpose: the rule only polices
// internal packages.
package fixture

// A bare goroutine bypasses the sanctioned substrates: its worker count,
// scheduling and shutdown are invisible to the pools.
func badSpawn(work []int) {
	done := make(chan struct{})
	go func() { // WANT rawgo
		for range work {
		}
		close(done)
	}()
	<-done
}

// Even a one-liner counts.
func badSpawnCall(done chan struct{}) {
	go close(done) // WANT rawgo
}
