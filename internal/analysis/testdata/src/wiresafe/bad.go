package fixture

import "sync"

const (
	tagA = 31
	tagB = 32
	tagC = 33
	tagD = 34
)

// A channel only means something inside one process.
func sendChan(c *Comm) {
	ch := make(chan int)
	Send(c, 1, tagA, ch) // WANT wiresafe
}

// A function value cannot cross the wire either, even buried in a field.
type job struct {
	ID  int
	Run func() error
}

func sendFuncField(c *Comm, j job) {
	Send(c, 1, tagB, j) // WANT wiresafe
}

// Unexported fields are invisible to wire codecs: the payload arrives
// hollow the moment a real network device has to encode it.
type record struct {
	Key   string
	cache map[string]int
}

func sendHidden(c *Comm, r record) {
	Send(c, 1, tagC, r) // WANT wiresafe
}

// Sync primitives are process-local state; shipping one is always wrong.
type guarded struct {
	Mu  sync.Mutex
	Val int
}

func sendLocked(c *Comm, g *guarded) {
	Send(c, 1, tagD, g) // WANT wiresafe
}

// A CloneWire that returns the receiver is not a clone at all.
type table struct {
	Rows []int
}

func (t *table) CloneWire() any {
	return t // WANT wiresafe
}

// A CloneWire that rebuilds the struct but copies a slice field bare
// still shares the backing array with the original.
type matrix struct {
	Name  string
	Cells []float64
}

func (m matrix) CloneWire() any {
	return matrix{Name: m.Name, Cells: m.Cells} // WANT wiresafe
}

// Allreduce snapshots each rank's contribution; a reference-carrying
// payload with no CloneWire gets a shallow snapshot, so reduction steps
// observe each other's mutations.
type hist struct {
	Bins []float64
}

func reduceHist(c *Comm, h hist) {
	h = Allreduce(c, h, func(a, b hist) hist { return a }) // WANT wiresafe
	_ = h
}
