package fixture

// Flat value types encode trivially.
type point struct {
	X, Y float64
}

func flatStruct(c *Comm, p point) {
	Send(c, 1, tagA, p)
}

// Slices and maps of flat elements are the bread-and-butter payloads.
func slicePayload(c *Comm, xs []float64) {
	Send(c, 1, tagB, xs)
}

func mapPayload(c *Comm, m map[string]int) {
	Send(c, 1, tagC, m)
}

// A deep CloneWire satisfies the Cloner contract: the type is safe to
// send and safe to Allreduce.
type series struct {
	Vals []float64
}

func (s series) CloneWire() any {
	return series{Vals: append([]float64(nil), s.Vals...)}
}

func sendSeries(c *Comm, s series) {
	Send(c, 1, tagD, s)
}

func reduceSeries(c *Comm, s series) {
	s = Allreduce(c, s, func(a, b series) series { return a })
	_ = s
}

// Scalar reductions carry no references at all.
func reduceScalar(c *Comm, v float64) {
	v = Allreduce(c, v, func(a, b float64) float64 { return a + b })
	_ = v
}
