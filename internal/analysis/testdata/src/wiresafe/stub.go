// Package fixture holds self-contained peachyvet test inputs for the
// wire-safety (serializability) rule. The stubs mirror the cluster API
// shapes, including the Cloner contract's CloneWire method.
package fixture

type Comm struct{}

func (c *Comm) Rank() int { return 0 }
func (c *Comm) Size() int { return 2 }

func Send[T any](c *Comm, dst, tag int, v T) {}

func Allreduce[T any](c *Comm, v T, op func(a, b T) T) T { return v }
