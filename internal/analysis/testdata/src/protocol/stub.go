// Package fixture holds self-contained peachyvet test inputs for the
// interprocedural protocol rule. The stubs mirror the cluster API shapes;
// rules match by name, so no import of the real package is needed.
package fixture

type Comm struct{}

func (c *Comm) Rank() int { return 0 }
func (c *Comm) Size() int { return 1 }
func (c *Comm) Barrier()  {}

func Send(c *Comm, dst, tag, v int)  {}
func Recv(c *Comm, src, tag int) int { return 0 }

func Bcast(c *Comm, root, v int) int                      { return v }
func Reduce(c *Comm, v int, op func(a, b int) int) int    { return v }
func Allreduce(c *Comm, v int, op func(a, b int) int) int { return v }
