package fixture

const (
	tagNever  = 555
	tagOrphan = 777
)

// doReduce hides a collective behind a helper boundary: no collective is
// syntactically visible in the branch arm below, so the intraprocedural
// collective rule cannot see the mismatch — only call expansion can.
func doReduce(c *Comm) {
	Reduce(c, 1, func(a, b int) int { return a + b })
}

// Rank 0 runs the Reduce inside the helper; every other rank runs no
// collective at all.
func crossMismatch(c *Comm) {
	if c.Rank() == 0 { // WANT protocol
		doReduce(c)
	}
}

// No Send anywhere in this package produces tag 555, so every rank
// reaching this receive blocks forever.
func recvNever(c *Comm) {
	_ = Recv(c, 0, tagNever) // WANT protocol
}

// The tag is a parameter here — the intraprocedural sendrecv rule cannot
// fold it. Binding the call below resolves it to 777, which no Recv in
// the package matches.
func sendVia(c *Comm, tag int) {
	Send(c, 1, tag, 9) // WANT protocol
}

func callSendVia(c *Comm) {
	sendVia(c, tagOrphan)
}

// The loop's trip count is this rank's id: ranks execute different
// numbers of the Bcast, breaking the uniform collective sequence even
// though no single call site is rank-guarded.
func collInRankLoop(c *Comm) {
	for i := 0; i < c.Rank(); i++ {
		Bcast(c, 0, 1) // WANT protocol
	}
}
