package fixture

const tagOK = 600

// syncUp hides a Barrier behind a call — fine as long as every arm of a
// divergent branch reaches it.
func syncUp(c *Comm) {
	c.Barrier()
}

// Both arms run the same collective through the helper: the expanded
// sequences match, so there is nothing to report.
func helperBothArms(c *Comm) {
	if c.Rank() == 0 {
		syncUp(c)
	} else {
		syncUp(c)
	}
}

// The tag parameter binds to 600 at the call site below, and a Recv with
// tag 600 exists — interprocedural matching pairs them up.
func sendTagged(c *Comm, tag int) {
	Send(c, 1, tag, 1)
}

func pingOK(c *Comm) {
	sendTagged(c, tagOK)
	_ = Recv(c, 0, tagOK)
}

// A loop whose trip count is rank-independent may run collectives freely:
// every rank executes the same number.
func collInUniformLoop(c *Comm, n int) {
	for i := 0; i < n; i++ {
		Bcast(c, 0, i)
	}
}
