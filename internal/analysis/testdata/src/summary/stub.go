// Package fixture exercises the communication-summary builder: each
// function below has a golden rendering checked by TestGoldenSummaries.
package fixture

type Comm struct{}

func (c *Comm) Rank() int { return 0 }
func (c *Comm) Barrier()  {}

func Send(c *Comm, dst, tag, v int)  {}
func Recv(c *Comm, src, tag int) int { return 0 }

func Bcast(c *Comm, root, v int) int { return v }
