package fixture

const tagData = 7

// helperSend's summary keeps dst and tag symbolic: they are parameters,
// bindable by each caller.
func helperSend(c *Comm, dst, tag int) {
	Send(c, dst, tag, 1)
}

// sendData's summary splices helperSend with both operands folded to the
// caller's constants.
func sendData(c *Comm) {
	helperSend(c, 2, tagData)
}

// phase demonstrates a rank-divergent branch (arms kept separate even
// when equal) and a loop whose trip count depends on the rank.
func phase(c *Comm, myRank int) {
	if myRank == 0 {
		Bcast(c, 0, 1)
	} else {
		Bcast(c, 0, 0)
	}
	for i := 0; i < myRank; i++ {
		Send(c, i, tagData, 0)
	}
}
