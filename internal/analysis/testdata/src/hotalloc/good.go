package fixture

// hoisted is the pattern the rule's message suggests: allocate once,
// reset per iteration.
func hoisted(c *Comm, rounds int) {
	buf := make([]float64, 128)
	for it := 0; it < rounds; it++ {
		for i := range buf {
			buf[i] = 0
		}
		buf[0] = float64(it)
		Send(c, 1, 7, buf)
	}
}

// lazyInit rebinds at most once under a capacity guard — the amortized
// ensure-capacity idiom is never reported.
func lazyInit(c *Comm, rounds, n int) {
	var buf []float64
	for it := 0; it < rounds; it++ {
		if cap(buf) < n {
			buf = make([]float64, n)
		}
		Send(c, 1, 9, buf)
	}
}

// reuseAppend resets the length and reuses the backing array.
func reuseAppend(c *Comm, xs []float64) {
	var out []float64
	for _, x := range xs {
		out = append(out[:0], x)
		Send(c, 1, 11, out)
	}
}

// buildThenSend allocates per element but communicates once, after the
// loop — nothing allocates on the send path.
func buildThenSend(c *Comm, xs []float64) {
	var parts [][]float64
	for _, x := range xs {
		p := []float64{x}
		parts = append(parts, p)
	}
	Send(c, 1, 13, parts)
}

type result struct{ ID int }

// messages constructs a value-typed message per task: message
// construction is not a hoistable buffer.
func messages(c *Comm, n int) {
	for i := 0; i < n; i++ {
		r := result{ID: i}
		Send(c, 1, 15, r)
	}
}

// allowed documents a justified per-iteration allocation.
func allowed(c *Comm, n int) {
	for i := 1; i < n; i++ {
		b := make([]int, i) //peachyvet:allow hotalloc
		Send(c, 1, 17, b)
	}
}
