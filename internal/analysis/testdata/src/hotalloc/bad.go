package fixture

// hoistMe allocates the reduction buffer on every iteration: the
// canonical hot-loop pattern the rule exists for.
func hoistMe(c *Comm, rounds int) {
	for it := 0; it < rounds; it++ {
		buf := make([]float64, 128) // WANT hotalloc
		buf[0] = float64(it)
		Send(c, 1, 7, buf)
	}
}

// growsForever re-sends a slice that grows by plain append each round.
func growsForever(c *Comm, xs []float64) {
	var acc []float64
	for _, x := range xs {
		acc = append(acc, x) // WANT hotalloc
		acc = Allreduce(c, acc, sum)
	}
}

// literalEveryTime builds a fresh slice literal per iteration.
func literalEveryTime(c *Comm, n int) {
	for i := 0; i < n; i++ {
		row := []int{i, i + 1} // WANT hotalloc
		Send(c, 1, 9, row)
	}
}

// boxed converts to an interface at the payload argument every round.
func boxed(c *Comm, n int) {
	v := 3
	for i := 0; i < n; i++ {
		Send(c, 1, 11, any(v)) // WANT hotalloc
	}
}

// forward performs the send for its caller; its summary records that the
// buf parameter flows into the Send payload.
func forward(c *Comm, buf []float64) {
	Send(c, 1, 13, buf)
}

// viaHelper's allocation reaches the wire through forward — the
// interprocedural payload fact.
func viaHelper(c *Comm, n int) {
	for i := 0; i < n; i++ {
		scratch := make([]float64, 64) // WANT hotalloc
		scratch[0] = 1
		forward(c, scratch)
	}
}

// newBuf returns a fresh allocation on every path.
func newBuf(n int) []float64 {
	return make([]float64, n)
}

// allocInHelper's allocation happens inside the callee — the
// interprocedural allocation fact.
func allocInHelper(c *Comm, n int) {
	for i := 0; i < n; i++ {
		b := newBuf(64) // WANT hotalloc
		b[0] = 2
		Send(c, 1, 15, b)
	}
}
