// Package fixture holds self-contained peachyvet test inputs for the
// hot-path allocation rule. The stubs mirror the cluster API shapes; the
// contract under test is that a buffer allocated on every iteration of a
// loop and handed to communication inside that loop should be hoisted
// and reused.
package fixture

type Comm struct{}

func (c *Comm) Rank() int { return 0 }
func (c *Comm) Size() int { return 2 }

func Send[T any](c *Comm, dst, tag int, v T) {}

func Recv[T any](c *Comm, src, tag int) T { var zero T; return zero }

func Allreduce[T any](c *Comm, v T, op func(a, b T) T) T { return v }

func sum(a, b []float64) []float64 { return a }
