// Package fixture holds self-contained peachyvet test inputs for the
// use-after-send ownership rule. The stubs mirror the cluster API
// shapes: the in-process transport hands payloads over by reference, so
// the contract is that a sent buffer is frozen until a sync point.
package fixture

type Comm struct{}

func (c *Comm) Rank() int { return 0 }
func (c *Comm) Size() int { return 2 }
func (c *Comm) Barrier()  {}

func Send[T any](c *Comm, dst, tag int, v T) {}

func Recv[T any](c *Comm, src, tag int) T { var zero T; return zero }

func Bcast[T any](c *Comm, root int, v T) T { return v }

func Allreduce[T any](c *Comm, v T, op func(a, b T) T) T { return v }
