package fixture

// Deep-copying before the send severs the alias: the caller keeps
// mutating its own array while the copy is in flight.
func copyBeforeSend(c *Comm, buf []float64) {
	out := append([]float64(nil), buf...)
	Send(c, 1, tagA, out)
	buf[0] = 3
}

// A collective is a happens-after point for in-flight sends.
func syncThenWrite(c *Comm, buf []float64) {
	Send(c, 1, tagA, buf)
	c.Barrier()
	buf[0] = 4
}

// A blocking receive from the same peer implies it consumed the message
// (request-reply order), so the buffer is ours again.
func replyThenWrite(c *Comm, buf []float64) {
	Send(c, 1, tagA, buf)
	ack := Recv[int](c, 1, tagA)
	_ = ack
	buf[0] = 5
}

// Rebinding to a fresh allocation kills the shared view.
func rebindKills(c *Comm, w []float64) {
	w = Bcast(c, 0, w)
	w = append([]float64(nil), w...)
	w[0] = 6
}

// Reading a sent buffer is fine; only writes race with the peer.
func readOnlyHelper(c *Comm, buf []float64) float64 {
	Send(c, 1, tagB, buf)
	return sum(buf)
}

// An Allreduce payload is reusable the moment the call returns: the
// recursive-doubling path sends clones and the reduce+bcast fallback
// snapshots at the root before broadcasting. Zeroing the hoisted buffer
// for the next round is the pattern the hotalloc rule recommends. The
// *result* stays shared and must not be written (see bad.go).
func reuseAllreducePayload(c *Comm, rounds int) {
	buf := make([]float64, 8)
	for i := 0; i < rounds; i++ {
		for j := range buf {
			buf[j] = 0
		}
		buf[0] = float64(i)
		red := Allreduce(c, buf, sumSlices)
		_ = red[0]
	}
}

func sumSlices(a, b []float64) []float64 {
	for i := range b {
		a[i] += b[i]
	}
	return a
}

func sum(xs []float64) float64 {
	t := 0.0
	for _, v := range xs {
		t += v
	}
	return t
}
