package fixture

const (
	tagA = 11
	tagB = 12
	tagC = 13
)

// The simplest leak: the buffer is mutated right after being handed to
// Send. The in-process transport passed the pointer, so the receiver
// observes the new value instead of the sent one.
func leakAfterSend(c *Comm, buf []float64) {
	Send(c, 1, tagA, buf)
	buf[0] = 9 // WANT useaftersend
}

// Writing through an alias taken before the send is the same hazard:
// window views buf's backing array.
func aliasWrite(c *Comm, buf []float64) {
	window := buf[2:6]
	Send(c, 1, tagA, buf)
	window[0] = 1 // WANT useaftersend
}

// A broadcast result is the same backing array on every rank; writing it
// without a deep copy edits every rank's copy.
func sharedBcast(c *Comm, w []float64) {
	w = Bcast(c, 0, w)
	w[1] = 2 // WANT useaftersend
}

// The Allreduce *argument* is reusable after return (see good.go), but
// the *result* is the broadcast snapshot shared by every rank.
func sharedAllreduceResult(c *Comm, w []float64) {
	red := Allreduce(c, w, sumSlices)
	red[0] = 3 // WANT useaftersend
}

// The write happens inside a helper — the mutation summary carries it
// back to the call site.
func viaHelper(c *Comm, buf []float64) {
	Send(c, 1, tagA, buf)
	scale(buf, 2) // WANT useaftersend
}

func scale(xs []float64, f float64) {
	for i := range xs {
		xs[i] *= f
	}
}

// The write happens inside a method on the payload type itself.
type grid struct {
	Cells []float64
}

func (g *grid) Bump() { g.Cells[0]++ }

func viaMethod(c *Comm, g *grid) {
	Send(c, 1, tagB, g)
	g.Bump() // WANT useaftersend
}

// The send happens inside a helper — the payload fact from the helper's
// communication summary makes buf live in the caller.
func forward(c *Comm, xs []float64) {
	Send(c, 2, tagB, xs)
}

func sendViaHelper(c *Comm, buf []float64) {
	forward(c, buf)
	buf[0] = 1 // WANT useaftersend
}

// Loop wrap-around: iteration N+1's write hits the buffer iteration N
// sent. Straight-line order looks fine; the back edge does not.
func loopWrap(c *Comm, buf []float64) {
	for i := 0; i < 4; i++ {
		buf[0] = float64(i) // WANT useaftersend
		Send(c, 1, tagC, buf)
	}
}
