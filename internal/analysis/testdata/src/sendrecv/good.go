package fixture

const tagWork = 7

// The classic paired exchange: the worker's Recv uses the same constant
// the manager's Send does, even though they sit in different functions.
func managerSide(c *Comm) {
	Send(c, 1, tagWork, 1)
}

func workerSide(c *Comm) {
	_ = Recv(c, 0, tagWork)
}

// A literal pair in one function.
func pingPong(c *Comm) {
	if c.Rank() == 0 {
		Send(c, 1, 8, 1)
	} else {
		_ = Recv(c, 0, 8)
	}
}
