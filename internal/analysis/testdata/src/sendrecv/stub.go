// Package fixture holds self-contained peachyvet test inputs for the
// sendrecv rule. Matching is package-wide, so the orphaned tag in bad.go
// must not appear in any Recv here.
package fixture

type Comm struct{}

func (c *Comm) Rank() int { return 0 }

func Send(c *Comm, dst, tag, v int)  {}
func Recv(c *Comm, src, tag int) int { return 0 }
