package fixture

const tagOrphan = 99

// No Recv anywhere in this package uses tag 99 (or a wildcard), so this
// message can never be received: the sender's payload is lost and any
// rank waiting on a reply hangs.
func sendNeverReceived(c *Comm) {
	Send(c, 1, tagOrphan, 42) // WANT sendrecv
}

// Same defect with an inline literal tag.
func sendLiteralOrphan(c *Comm) {
	Send(c, 0, 123, 7) // WANT sendrecv
}
