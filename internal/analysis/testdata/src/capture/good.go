package fixture

// Rank-indexed slot: each rank writes its own element.
func goodRankSlot(w *World, results []int) {
	w.Run(func(c *Comm) {
		results[c.Rank()] = 1
	})
}

// Rank-guarded single writer: exactly one rank performs the write and
// World.Run's join publishes it.
func goodRankGuard(w *World) {
	total := 0
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			total = 1
		}
	})
	_ = total
}

// Rank-derived index through arithmetic: the taint analysis follows the
// assignment from Rank() into lo.
func goodDerivedIndex(w *World, out []int) {
	w.Run(func(c *Comm) {
		lo := c.Rank() * 2
		out[lo] = 1
	})
}

// Closure-local state is no one else's business.
func goodLocalState(w *World) {
	w.Run(func(c *Comm) {
		sum := 0
		for i := 0; i < 10; i++ {
			sum += i
		}
		_ = sum
	})
}

// Worker parameter partitions the work: out[i] is rank-disjoint.
func goodPoolIndexed(p *Pool, out []int) {
	p.For(len(out), func(i int) {
		out[i] = i * i
	})
}

// par.Do sections writing disjoint fields of one struct do not race.
func goodDoDisjointFields(n *node) {
	Do(
		func() { n.left = 1 },
		func() { n.right = 2 },
	)
}
