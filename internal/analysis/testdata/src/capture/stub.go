// Package fixture holds self-contained peachyvet test inputs for the
// capture rule: stubs that mirror the World.Run / par.Pool / par.Do
// shapes the rule dispatches on.
package fixture

type Comm struct{}

func (c *Comm) Rank() int { return 0 }
func (c *Comm) Size() int { return 1 }

type World struct{}

func (w *World) Run(body func(c *Comm)) error { return nil }

type Pool struct{}

func (p *Pool) For(n int, body func(i int)) {}

func Do(sections ...func()) {}

type node struct {
	left, right int
}
