package fixture

// Every rank increments the same captured accumulator concurrently: a
// data race, and the classic shared-memory leak in an SPMD body.
func badSharedAccumulator(w *World) {
	total := 0
	w.Run(func(c *Comm) {
		total += c.Rank() // WANT capture
	})
	_ = total
}

// All ranks write the same slice element.
func badFixedSlot(w *World, results []int) {
	w.Run(func(c *Comm) {
		results[0] = c.Rank() // WANT capture
	})
}

// Concurrent map writes fault even on distinct keys.
func badMapWrite(w *World, counts map[string]int) {
	w.Run(func(c *Comm) {
		counts["x"] = 1 // WANT capture
	})
}

// Pool workers race on a captured scalar.
func badPoolWorker(p *Pool) {
	sum := 0
	p.For(10, func(i int) {
		sum += i // WANT capture
	})
	_ = sum
}

// Two par.Do sections write the same captured variable.
func badDoSections() {
	x := 0
	Do(
		func() { x = 1 },
		func() { x = 2 }, // WANT capture
	)
	_ = x
}

// A raw goroutine mutating captured state is the same hazard.
func badGoCapture() {
	count := 0
	done := make(chan struct{})
	go func() {
		count++ // WANT capture
		close(done)
	}()
	<-done
	_ = count
}
