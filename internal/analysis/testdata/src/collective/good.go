package fixture

// Both arms call the same collective: the sequences agree per rank.
func matchedArms(c *Comm) {
	if c.Rank() == 0 {
		c.Barrier()
	} else {
		c.Barrier()
	}
}

// Rank-divergent branch with no collectives at all: plain rank-local work.
func rankLocalWork(c *Comm) {
	x := 0
	if c.Rank() == 0 {
		x = 1
	}
	c.Barrier()
	_ = x
}

// The root-only arm has no collectives and the others return before any;
// continuation sequences are both empty.
func rootOnlyEpilogue(c *Comm) {
	sum := Allreduce(c, c.Rank(), func(a, b int) int { return a + b })
	if c.Rank() != 0 {
		return
	}
	_ = sum
}

// An early return in one arm paired with the same collective in the other
// arm's continuation: rank 0 runs Barrier inside the if, everyone else
// falls through to the same Barrier after it.
func balancedEarlyPaths(c *Comm) {
	if c.Rank() == 0 {
		c.Barrier()
		return
	}
	c.Barrier()
}
