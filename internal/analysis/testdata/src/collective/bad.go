package fixture

// Only rank 0 enters the Barrier: ranks 1..P-1 never match it, so every
// rank deadlocks inside the collective.
func divergentBarrier(c *Comm) {
	if c.Rank() == 0 { // WANT collective
		c.Barrier()
	}
}

// The arms run different collectives: Bcast traffic on some ranks meets
// Allreduce traffic on others.
func mixedArms(c *Comm) {
	if c.Rank() == 0 { // WANT collective
		Bcast(c, 0, 1)
	} else {
		Allreduce(c, 1, func(a, b int) int { return a + b })
	}
}

// Ranks above 1 leave early, so they skip the Barrier every other rank
// falls through to.
func earlyReturnSkipsBarrier(c *Comm) {
	if c.Rank() > 1 { // WANT collective
		return
	}
	c.Barrier()
}

// The divergence hides one block deeper: the guarded return is inside a
// loop body, but the fall-through Barrier is outside the loop.
func nestedEarlyReturn(c *Comm) {
	for i := 0; i < 3; i++ {
		if c.Rank() == 0 { // WANT collective
			return
		}
	}
	c.Barrier()
}

// Scatter and Alltoall pick their algorithm (binomial tree, pairwise
// exchange) inside the runtime, but the analyzer's vocabulary is the
// exported name — divergence must still be flagged.
func divergentScatter(c *Comm) {
	if c.Rank() != 0 { // WANT collective
		return
	}
	Scatter(c, 0, []int{1, 2})
}

func mixedScatterAlltoall(c *Comm) {
	if c.Rank() == 0 { // WANT collective
		Scatter(c, 0, []int{1, 2})
	} else {
		Alltoall(c, []int{1, 2})
	}
}
