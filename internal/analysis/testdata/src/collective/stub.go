// Package fixture holds self-contained peachyvet test inputs. The stubs
// mirror the shapes of the cluster API; the rules match by name, so no
// import of the real package is needed.
package fixture

type Comm struct{}

func (c *Comm) Rank() int { return 0 }
func (c *Comm) Size() int { return 1 }
func (c *Comm) Barrier()  {}

func Allreduce(c *Comm, v int, op func(a, b int) int) int { return v }
func Bcast(c *Comm, root, v int) int                      { return v }
func Scatter(c *Comm, root int, parts []int) int          { return 0 }
func Alltoall(c *Comm, parts []int) []int                 { return parts }
