package fixture

import (
	"math/rand"
	"time"
)

// mapOrderToWire accumulates keys in map iteration order and sends the
// sequence: the receiver observes a different order every run.
func mapOrderToWire(c *Comm, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	Send(c, 1, 7, keys) // WANT nondet
}

// mapOrderDirect sends per-element in map iteration order.
func mapOrderDirect(c *Comm, m map[int]int) {
	for k, v := range m {
		Send(c, 1, 9, k+v) // WANT nondet
	}
}

// floatFold: float accumulation over a map range is order-dependent
// (float addition is not associative) and feeds a reduction operand.
func floatFold(c *Comm, weights map[string]float64) float64 {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	return Allreduce(c, total, sumF) // WANT nondet
}

// wallClock stamps a payload with wall-clock time.
func wallClock(c *Comm) {
	stamp := time.Now().UnixNano()
	Send(c, 1, 11, stamp) // WANT nondet
}

// unseeded sends an unseeded math/rand value.
func unseeded(c *Comm) {
	Send(c, 1, 13, rand.Int()) // WANT nondet
}

// wallInTrace lands wall-clock time in an obs span field: the golden
// traces diverge across runs.
func wallInTrace(rec *Recorder) {
	start := time.Now().UnixNano()
	rec.PhaseSpan("phase", 0, 1, start) // WANT nondet
}

// wallInInstant: the WireSpan/Observe exemption is per entry point, not
// per package — wall time reaching a timeline instant is still flagged.
func wallInInstant(rec *Recorder) {
	sim := float64(time.Now().UnixNano()) * 1e-9
	rec.Instant("tick", -1, 0, sim) // WANT nondet
}

// reduceVals forwards its parameter into an Allreduce; its summary
// carries the payload fact.
func reduceVals(c *Comm, vals []float64) []float64 {
	return Allreduce(c, vals, sumV)
}

// viaHelper: a map-ordered sequence reaches the reduction operand
// through a helper — the interprocedural payload fact.
func viaHelper(c *Comm, m map[int]float64) []float64 {
	var xs []float64
	for _, v := range m {
		xs = append(xs, v)
	}
	return reduceVals(c, xs) // WANT nondet
}
