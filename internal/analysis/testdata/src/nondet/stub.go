// Package fixture holds self-contained peachyvet test inputs for the
// nondeterminism rule: map iteration order, unseeded math/rand and
// wall-clock time reaching wire payloads, reduction operands, or obs
// trace fields.
package fixture

type Comm struct{}

func (c *Comm) Rank() int { return 0 }
func (c *Comm) Size() int { return 2 }

func Send[T any](c *Comm, dst, tag int, v T) {}

func Allreduce[T any](c *Comm, v T, op func(a, b T) T) T { return v }

func sumF(a, b float64) float64 { return a + b }

func sumV(a, b []float64) []float64 { return a }

// Recorder mirrors the obs recorder's exported-event surface, plus the
// wire-level aggregate that is safe-by-contract for wall-derived values.
type Recorder struct{}

func (r *Recorder) Now() int64                                    { return 0 }
func (r *Recorder) PhaseSpan(op string, a, b float64, wall int64) {}
func (r *Recorder) Instant(op string, peer, tag int, sim float64) {}
func (r *Recorder) WireSpan(op string, bytes, wallNs int64)       {}

// Hist mirrors the obs log-bucket histogram: counters only, never the
// deterministic timeline, so wall-derived observations are fine.
type Hist struct{}

func (h *Hist) Observe(v float64)          {}
func (h *Hist) Quantile(q float64) float64 { return 0 }

// Rand mirrors internal/prng: explicitly seeded, safe by contract.
type Rand struct{}

func (r *Rand) Float64() float64 { return 0 }
