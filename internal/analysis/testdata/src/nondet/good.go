package fixture

import (
	"sort"
	"time"
)

// seeded uses the prng-style explicitly seeded generator: safe by
// contract, reproducible across runs.
func seeded(c *Comm, rng *Rand) {
	Send(c, 1, 7, rng.Float64())
}

// sortedKeys is the canonical fix: sorting the key sequence restores a
// deterministic order before it reaches the wire.
func sortedKeys(c *Comm, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	Send(c, 1, 9, keys)
}

// insertionOrder iterates an explicitly maintained key list instead of
// the map itself.
func insertionOrder(c *Comm, m map[string]int, order []string) {
	var vals []int
	for _, k := range order {
		vals = append(vals, m[k])
	}
	Send(c, 1, 11, vals)
}

// intCount: integer accumulation over a map range is order-independent.
func intCount(c *Comm, m map[string][]int) {
	n := 0
	for _, vs := range m {
		n += len(vs)
	}
	Send(c, 1, 13, n)
}

// perKeyRewrite stores back into the map being ranged: each key's value
// is rewritten independently, so the map's content stays deterministic.
func perKeyRewrite(c *Comm, m map[string][]int) {
	for k, vs := range m {
		if len(vs) > 1 {
			m[k] = vs[:1]
		}
	}
	n := 0
	for _, vs := range m {
		n += len(vs)
	}
	Send(c, 1, 15, n)
}

// recNow uses the obs recorder's own clock — the exporters normalize it,
// so it is safe by contract.
func recNow(rec *Recorder) {
	start := rec.Now()
	rec.PhaseSpan("phase", 0, 1, start)
}

// allowedStamp documents a justified wall-clock payload (a log line a
// human reads, not a value any rank computes with).
func allowedStamp(c *Comm) {
	Send(c, 1, 17, time.Now().UnixNano()) //peachyvet:allow nondet
}

// wireAggregate times real transport work into the WireSpan aggregate:
// counters and histograms only, never the deterministic timeline, so the
// wall-derived duration is safe by contract.
func wireAggregate(rec *Recorder) {
	start := time.Now()
	rec.WireSpan("net.tx", 128, time.Since(start).Nanoseconds())
}

// histObserve feeds a wall-clock duration into a latency histogram and
// reads a quantile back — both safe by contract for the same reason.
func histObserve(h *Hist) {
	start := time.Now()
	h.Observe(time.Since(start).Seconds())
	_ = h.Quantile(0.99)
}
