package analysis

import (
	"go/ast"
	"go/types"
)

// checkWireSafe is the serializability half of the wire-safety pass. It
// applies the encodability lattice (encodable.go) to every payload
// expression reaching a Send or collective: channels, function values,
// sync primitives, unsafe.Pointer and unexported struct fields all work
// by accident on the in-process transport (which passes pointers) and
// break the moment a network Device has to encode the value. Two further
// checks police the Cloner contract the collectives' snapshot path
// relies on: Allreduce payloads that contain shared references but
// implement no CloneWire, and CloneWire implementations that return
// shallow copies.
func checkWireSafe(u *Unit, r *reporter) {
	u.ensureTypes()
	if u.info == nil {
		return
	}
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				u.wireCheckCall(x, r)
			case *ast.FuncDecl:
				u.wireCheckCloner(x, r)
			}
			return true
		})
	}
}

// wireCheckCall applies the lattice to one payload site.
func (u *Unit) wireCheckCall(call *ast.CallExpr, r *reporter) {
	if !u.clusterCall(call) {
		return // same-named function outside the cluster vocabulary
	}
	var payload ast.Expr
	var opName string
	if cc, ok := asCollective(call); ok {
		if i := collPayloadIndex(cc.name); i >= 0 && i < len(call.Args) {
			payload = call.Args[i]
			opName = cc.name
		}
	} else if name := commCallName(call); (name == "Send" || name == "SendSub" || name == "SendRecv") && len(call.Args) == 4 {
		payload = call.Args[3]
		opName = name
	}
	if payload == nil {
		return
	}
	t := u.info.TypeOf(payload)
	if t == nil {
		return
	}
	if v := u.wireSafety(t); v.class == wireBad {
		r.report("wiresafe", payload.Pos(),
			"payload of %s has wire-unsafe type %s: %s — a network transport cannot encode it (works in-process only by pointer passing)",
			opName, types.TypeString(t, relativeTo(u.typesPkg)), v.reason)
		return
	}
	// Allreduce snapshots each contribution via clonePayload; a payload
	// carrying references with no CloneWire gets a shallow snapshot, so
	// concurrent reduction steps observe each other's mutations.
	if (opName == "Allreduce" || opName == "AllreduceSub") &&
		u.hasReferenceParts(t, true) && !hasCloneWire(t) {
		r.report("wiresafe", payload.Pos(),
			"Allreduce payload type %s contains shared references but implements no CloneWire; the reduction cannot snapshot contributions — implement cluster.Cloner or use a flat payload",
			types.TypeString(t, relativeTo(u.typesPkg)))
	}
}

// wireCheckCloner flags CloneWire implementations whose clone shares
// memory with the receiver: returning the receiver itself, or building a
// composite literal that copies a reference-typed field bare.
func (u *Unit) wireCheckCloner(fd *ast.FuncDecl, r *reporter) {
	if fd.Name.Name != "CloneWire" || fd.Recv == nil || fd.Body == nil {
		return
	}
	if fd.Type.Params.NumFields() != 0 || fd.Type.Results.NumFields() != 1 {
		return
	}
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return
	}
	recvName := fd.Recv.List[0].Names[0].Name
	recvType := u.info.TypeOf(fd.Recv.List[0].Type)
	_, ptrRecv := fd.Recv.List[0].Type.(*ast.StarExpr)
	elem := recvType
	if p, ok := elem.(*types.Pointer); ok && p != nil {
		elem = p.Elem()
	}
	refParts := elem != nil && u.hasReferenceParts(elem, false)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		switch res := stripParens(ret.Results[0]).(type) {
		case *ast.Ident:
			if res.Name == recvName && (ptrRecv || refParts) {
				what := "all of the receiver's memory"
				if ptrRecv {
					what = "the receiver itself"
				}
				r.report("wiresafe", ret.Pos(),
					"CloneWire returns %s — the clone is not an independent copy; rebuild the value and deep-copy its reference fields", what)
			}
		case *ast.UnaryExpr, *ast.StarExpr:
			if name, ok := baseIdent(res); ok && name == recvName && refParts {
				r.report("wiresafe", ret.Pos(),
					"CloneWire returns a shallow copy of the receiver; its reference fields still share memory — deep-copy them")
			}
		case *ast.CompositeLit:
			for _, el := range res.Elts {
				val := el
				fieldName := ""
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					val = kv.Value
					if id, ok := kv.Key.(*ast.Ident); ok {
						fieldName = id.Name
					}
				}
				sel, ok := stripParens(val).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				base, ok := sel.X.(*ast.Ident)
				if !ok || base.Name != recvName {
					continue
				}
				if fieldName == "" {
					fieldName = sel.Sel.Name
				}
				ft := u.info.TypeOf(sel)
				if ft != nil && u.hasReferenceParts(ft, false) {
					r.report("wiresafe", ret.Pos(),
						"CloneWire copies field %s shallowly; the clone shares its backing memory — deep-copy it", fieldName)
					break
				}
			}
		}
		return true
	})
}

func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// relativeTo renders type names without the package path for in-package
// types, matching how the code under analysis spells them.
func relativeTo(pkg *types.Package) types.Qualifier {
	if pkg == nil {
		return nil
	}
	return types.RelativeTo(pkg)
}
