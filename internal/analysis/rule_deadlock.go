package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// checkDeadlock is the static wait-cycle detector. Send is non-blocking
// in the cluster runtime (eager/buffered semantics), so the only
// point-to-point deadlock shape is a cycle of blocking Recvs: every
// involved rank sits in a Recv whose matching Send lies beyond someone
// else's blocked Recv. Two detectors cover the common shapes:
//
//  1. divergent-arm simulation: for each rank-divergent branch, the
//     per-arm effect programs (calls expanded) are executed against a
//     shared in-flight message pool; if the simulation wedges with every
//     arm blocked in a Recv, no interleaving of real ranks can finish —
//     a wait cycle, reported with each arm's blocking site and call path;
//  2. uniform receive-before-send: inside a World.Run rank body, a
//     blocking Recv in rank-uniform code whose matching Send occurs only
//     later in the same body blocks every rank before any can send.
//
// Both detectors are deliberately conservative: any construct they cannot
// model exactly (nested divergence, asymmetric uniform branches, dynamic
// tags in flight) disables the simulation for that branch rather than
// guessing.
func checkDeadlock(u *Unit, r *reporter) {
	s := u.summaries()
	seen := map[token.Pos]bool{}
	for _, fd := range s.cg.decls {
		sum := s.funcSummary(fd)
		scanDivergentSims(u, r, sum.Effects, nil, seen)
	}
	eachFuncLit(u, func(lit *ast.FuncLit) {
		sum := s.litSummary(lit)
		scanDivergentSims(u, r, sum.Effects, nil, seen)
	})
	checkUniformRecvFirst(u, r, s)
}

// simOp is one step of a linearized per-arm program.
type simOp struct {
	kind byte // 's' send, 'r' blocking recv, 'c' collective
	tag  operand
	e    Effect
}

// linearize flattens a summary subtree into a straight-line program for
// the wait-cycle simulation. ok is false when the subtree contains a
// construct the simulation cannot model faithfully (nested rank
// divergence, uniform branches whose arms communicate differently).
func linearize(effects []Effect) (prog []simOp, ok bool) {
	for _, e := range effects {
		switch e.Kind {
		case EffSend:
			prog = append(prog, simOp{kind: 's', tag: e.Tag, e: e})
		case EffRecv:
			if e.Blocking {
				prog = append(prog, simOp{kind: 'r', tag: e.Tag, e: e})
			}
		case EffColl:
			prog = append(prog, simOp{kind: 'c', e: e})
		case EffBranch:
			if e.Divergent {
				return nil, false
			}
			var armProgs [][]simOp
			for _, arm := range e.Arms {
				p, ok := linearize(arm)
				if !ok {
					return nil, false
				}
				armProgs = append(armProgs, p)
			}
			for _, p := range armProgs[1:] {
				if !sameProg(armProgs[0], p) {
					return nil, false
				}
			}
			for j, t := range e.Term {
				if t && len(armProgs[j]) > 0 {
					return nil, false
				}
			}
			prog = append(prog, armProgs[0]...)
		case EffLoop:
			p, ok := linearize(e.Body)
			if !ok {
				return nil, false
			}
			prog = append(prog, p...)
		}
	}
	return prog, true
}

func sameProg(a, b []simOp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].kind != b[i].kind || a[i].tag != b[i].tag {
			return false
		}
	}
	return true
}

// flight is the pool of in-flight messages during a simulation.
type flight struct {
	known   map[int]int // tag -> pending count
	unknown int         // sends with dynamic tags: match any receive
}

func (fl *flight) send(tag operand) {
	if tag.class == valConst {
		if fl.known == nil {
			fl.known = map[int]int{}
		}
		fl.known[tag.val]++
		return
	}
	fl.unknown++
}

// consume takes one message matching a receive's tag, optimistically:
// dynamic sends satisfy any tag, and AnyTag / dynamic receives match any
// pending message — so the simulation only wedges when no reading of the
// unknowns could make progress.
func (fl *flight) consume(tag operand) bool {
	wildcard := tag.class != valConst || tag.val < 0
	if wildcard {
		for t, n := range fl.known {
			if n > 0 {
				fl.known[t]--
				if fl.known[t] == 0 {
					delete(fl.known, t)
				}
				return true
			}
		}
		if fl.unknown > 0 {
			fl.unknown--
			return true
		}
		return false
	}
	if fl.known[tag.val] > 0 {
		fl.known[tag.val]--
		if fl.known[tag.val] == 0 {
			delete(fl.known, tag.val)
		}
		return true
	}
	if fl.unknown > 0 {
		fl.unknown--
		return true
	}
	return false
}

// scanDivergentSims walks a summary and simulates every rank-divergent
// branch it can model. cont carries the enclosing continuations.
func scanDivergentSims(u *Unit, r *reporter, seq []Effect, cont []Effect, seen map[token.Pos]bool) {
	for i, e := range seq {
		rest := seq[i+1:]
		switch e.Kind {
		case EffBranch:
			if e.Divergent && len(e.Path) == 0 && !seen[e.Pos] {
				seen[e.Pos] = true
				simulateBranch(u, r, e, concatEffects(rest, cont))
			}
			childCont := concatEffects(rest, cont)
			for _, arm := range e.Arms {
				scanDivergentSims(u, r, arm, childCont, seen)
			}
		case EffLoop:
			scanDivergentSims(u, r, e.Body, concatEffects(rest, cont), seen)
		}
	}
}

// simulateBranch runs the wait-cycle simulation over one divergent
// branch: each arm (plus the continuation, for arms that fall through)
// becomes a program; programs advance whenever their head is a send or a
// satisfiable receive. A wedge with every arm blocked in a Recv is
// reported; anything else (an arm finished, an arm waiting at a
// collective, an unmodelable construct) is not.
func simulateBranch(u *Unit, r *reporter, br Effect, cont []Effect) {
	contProg, ok := linearize(cont)
	if !ok {
		return
	}
	var progs [][]simOp
	for j, arm := range br.Arms {
		p, ok := linearize(arm)
		if !ok {
			return
		}
		if !br.Term[j] {
			p = append(p, contProg...)
		}
		progs = append(progs, p)
	}
	if len(progs) < 2 {
		return
	}
	nonEmpty := 0
	for _, p := range progs {
		if len(p) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		return
	}

	pcs := make([]int, len(progs))
	var fl flight
	for progress := true; progress; {
		progress = false
		for j, p := range progs {
			for pcs[j] < len(p) {
				op := p[pcs[j]]
				if op.kind == 's' {
					fl.send(op.tag)
					pcs[j]++
					progress = true
					continue
				}
				if op.kind == 'r' && fl.consume(op.tag) {
					pcs[j]++
					progress = true
					continue
				}
				break // blocked at a recv or a collective
			}
		}
	}
	for j, p := range progs {
		if pcs[j] >= len(p) || p[pcs[j]].kind != 'r' {
			return // an arm finished or waits at a collective: not the cycle shape
		}
	}
	var blocked []string
	for j, p := range progs {
		op := p[pcs[j]]
		pos := u.Fset.Position(op.e.Pos)
		blocked = append(blocked, fmt.Sprintf("arm %d blocks in %s(tag %s) at %s:%d%s",
			j+1, op.e.Op, formatOperand(op.tag), filepath.Base(pos.Filename), pos.Line, op.e.pathString()))
	}
	r.report("deadlock", br.Pos,
		"static Recv wait-cycle across rank-divergent arms: %s — every matching Send lies beyond another arm's blocked Recv, so no interleaving of ranks can finish",
		strings.Join(blocked, "; "))
}

// checkUniformRecvFirst finds receive-before-send hangs in World.Run rank
// bodies: a blocking Recv in rank-uniform code, executed identically by
// every rank, whose matching Send appears only later in the body. Every
// rank blocks at the receive, so no rank ever reaches the send.
func checkUniformRecvFirst(u *Unit, r *reporter, s *summarizer) {
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || commCallName(call) != "Run" {
				return true
			}
			for _, a := range call.Args {
				if lit, ok := a.(*ast.FuncLit); ok && isRankBody(lit) {
					sum := s.litSummary(lit)
					var all flight
					collectSends(sum.Effects, &all)
					var avail flight
					uniformScan(u, r, sum.Effects, &avail, &all)
				}
			}
			return true
		})
	}
}

// collectSends accumulates every send in the subtree into fl.
func collectSends(effects []Effect, fl *flight) {
	for _, e := range effects {
		switch e.Kind {
		case EffSend:
			fl.send(e.Tag)
		case EffBranch:
			for _, arm := range e.Arms {
				collectSends(arm, fl)
			}
		case EffLoop:
			collectSends(e.Body, fl)
		}
	}
}

// matchable reports whether fl holds a message a receive with this tag
// could consume, without consuming it. Dynamic sends count: they could
// carry any tag.
func (fl *flight) matchable(tag operand) bool {
	if fl.unknown > 0 {
		return true
	}
	if tag.class != valConst || tag.val < 0 {
		return len(fl.known) > 0
	}
	return fl.known[tag.val] > 0
}

// definitelyMatches reports whether fl holds a send that certainly
// matches this tag — constant-tag sends only, so a report is only made
// when the matching send provably exists.
func (fl *flight) definitelyMatches(tag operand) bool {
	if tag.class != valConst || tag.val < 0 {
		return len(fl.known) > 0
	}
	return fl.known[tag.val] > 0
}

// uniformScan walks a rank body in order. Sends accumulate into avail;
// a blocking Recv in uniform context with no accumulated matching send —
// but a matching send somewhere in the body — is the all-ranks-block
// shape. Receives inside rank-divergent arms are skipped (only some
// ranks block there; the divergent simulation owns those), but their
// sends still accumulate.
func uniformScan(u *Unit, r *reporter, effects []Effect, avail, all *flight) {
	for _, e := range effects {
		switch e.Kind {
		case EffSend:
			avail.send(e.Tag)
		case EffRecv:
			if e.Blocking && !avail.matchable(e.Tag) && all.definitelyMatches(e.Tag) {
				r.report("deadlock", e.Pos,
					"every rank blocks in %s(tag %s)%s before any rank reaches the matching Send later in this rank body — receive-before-send in uniform SPMD code hangs all ranks",
					e.Op, formatOperand(e.Tag), e.pathString())
			}
		case EffBranch:
			if e.Divergent {
				for _, arm := range e.Arms {
					collectSends(arm, avail)
				}
			} else {
				for _, arm := range e.Arms {
					uniformScan(u, r, arm, avail, all)
				}
			}
		case EffLoop:
			uniformScan(u, r, e.Body, avail, all)
		}
	}
}
