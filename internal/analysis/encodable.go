package analysis

import (
	"go/types"
)

// This file computes the "encodability" lattice behind the wiresafe rule:
// a type-recursive verdict on whether a payload value can cross a real
// wire once the transport leaves the shared address space (ROADMAP item
// 1, the pluggable Device). The in-process transport passes pointers, so
// it happily "delivers" channels, functions, sync primitives and structs
// whose fields no codec can see — all of which would fail (or silently
// truncate) under a gob-style network device. Verdicts are cached per
// unit; recursive types are assumed safe at the back-edge, matching how
// encoders handle them.

// wireClass is the three-point lattice of the encodability analysis.
type wireClass uint8

const (
	// wireOK: every reachable component is encodable.
	wireOK wireClass = iota
	// wireBad: the type provably contains an unencodable component.
	wireBad
	// wireUnknown: resolution stopped (type parameter, interface,
	// unresolved cross-package name). Unknown never reports.
	wireUnknown
)

// wireVerdict pairs the class with a human-readable reason chain for bad
// verdicts, e.g. "field Pairs → chan int".
type wireVerdict struct {
	class  wireClass
	reason string
}

// wireSafety classifies one type, memoized on the unit.
func (u *Unit) wireSafety(t types.Type) wireVerdict {
	if t == nil {
		return wireVerdict{class: wireUnknown}
	}
	if u.wireCache == nil {
		u.wireCache = map[types.Type]wireVerdict{}
	}
	return u.wireWalk(t, map[types.Type]bool{})
}

func (u *Unit) wireWalk(t types.Type, visiting map[types.Type]bool) wireVerdict {
	if v, ok := u.wireCache[t]; ok {
		return v
	}
	if visiting[t] {
		// Recursive type: the cycle itself is encodable; any bad
		// component elsewhere in the type still surfaces.
		return wireVerdict{class: wireOK}
	}
	visiting[t] = true
	v := u.wireWalkUncached(t, visiting)
	delete(visiting, t)
	u.wireCache[t] = v
	return v
}

func (u *Unit) wireWalkUncached(t types.Type, visiting map[types.Type]bool) wireVerdict {
	switch x := t.(type) {
	case *types.Basic:
		switch x.Kind() {
		case types.UnsafePointer:
			return wireVerdict{class: wireBad, reason: "unsafe.Pointer"}
		case types.Invalid:
			return wireVerdict{class: wireUnknown}
		}
		return wireVerdict{class: wireOK}
	case *types.Chan:
		return wireVerdict{class: wireBad, reason: "channel " + x.String()}
	case *types.Signature:
		return wireVerdict{class: wireBad, reason: "function value"}
	case *types.Pointer:
		return prefixBad(u.wireWalk(x.Elem(), visiting), "pointee ")
	case *types.Slice:
		return prefixBad(u.wireWalk(x.Elem(), visiting), "element ")
	case *types.Array:
		return prefixBad(u.wireWalk(x.Elem(), visiting), "element ")
	case *types.Map:
		if v := prefixBad(u.wireWalk(x.Key(), visiting), "map key "); v.class == wireBad {
			return v
		}
		if v := prefixBad(u.wireWalk(x.Elem(), visiting), "map value "); v.class == wireBad {
			return v
		}
		return wireVerdict{class: wireOK}
	case *types.Struct:
		verdict := wireVerdict{class: wireOK}
		for i := 0; i < x.NumFields(); i++ {
			f := x.Field(i)
			if f.Name() == "_" {
				continue
			}
			if !f.Exported() {
				return wireVerdict{class: wireBad,
					reason: "unexported field " + f.Name() + " (invisible to wire codecs)"}
			}
			fv := prefixBad(u.wireWalk(f.Type(), visiting), "field "+f.Name()+" → ")
			switch fv.class {
			case wireBad:
				return fv
			case wireUnknown:
				verdict.class = wireUnknown
			}
		}
		return verdict
	case *types.Named:
		if obj := x.Obj(); obj != nil && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync", "sync/atomic":
				return wireVerdict{class: wireBad, reason: obj.Pkg().Name() + "." + obj.Name() + " must not cross the wire"}
			}
		}
		if hasCloneWire(x) {
			// The type owns its copy semantics; shallowness of the
			// implementation is checked separately at the declaration.
			return wireVerdict{class: wireOK}
		}
		return u.wireWalk(x.Underlying(), visiting)
	case *types.Alias:
		return u.wireWalk(types.Unalias(x), visiting)
	case *types.Interface, *types.TypeParam:
		return wireVerdict{class: wireUnknown}
	}
	return wireVerdict{class: wireUnknown}
}

// prefixBad prepends context to a bad verdict's reason chain.
func prefixBad(v wireVerdict, prefix string) wireVerdict {
	if v.class == wireBad {
		v.reason = prefix + v.reason
	}
	return v
}

// hasCloneWire reports whether t (or *t) has a CloneWire method — the
// cluster.Cloner contract, matched structurally so fixture stubs and the
// real interface both qualify.
func hasCloneWire(t types.Type) bool {
	for _, recv := range []types.Type{t, types.NewPointer(t)} {
		obj, _, _ := types.LookupFieldOrMethod(recv, true, nil, "CloneWire")
		if f, ok := obj.(*types.Func); ok {
			sig, ok := f.Type().(*types.Signature)
			if ok && sig.Params().Len() == 0 && sig.Results().Len() == 1 {
				return true
			}
		}
	}
	return false
}

// hasReferenceParts reports whether mutating a copy of t can be observed
// through the original — t reaches a slice, map or pointer without an
// intervening CloneWire boundary. Used for the Allreduce snapshot check
// and the shallow-Cloner check. topLevel exempts the outermost slice: the
// runtime's clonePayload deep-copies one level of the common slice kinds.
func (u *Unit) hasReferenceParts(t types.Type, topLevel bool) bool {
	return refWalk(t, topLevel, map[types.Type]bool{})
}

func refWalk(t types.Type, topLevel bool, visiting map[types.Type]bool) bool {
	if t == nil || visiting[t] {
		return false
	}
	visiting[t] = true
	defer delete(visiting, t)
	switch x := t.(type) {
	case *types.Slice:
		if topLevel {
			return refWalk(x.Elem(), false, visiting)
		}
		return true
	case *types.Map, *types.Pointer, *types.Chan:
		return true
	case *types.Array:
		return refWalk(x.Elem(), false, visiting)
	case *types.Struct:
		for i := 0; i < x.NumFields(); i++ {
			if refWalk(x.Field(i).Type(), false, visiting) {
				return true
			}
		}
		return false
	case *types.Named:
		return refWalk(x.Underlying(), topLevel, visiting)
	case *types.Alias:
		return refWalk(types.Unalias(x), topLevel, visiting)
	}
	return false
}
