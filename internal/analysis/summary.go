package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// This file builds per-function communication summaries: the ordered
// sequence of communication effects (collectives, point-to-point sends
// and receives, rank-divergent branches, loops) a function executes,
// with calls to unit-local functions spliced in so the interprocedural
// rules (protocol, deadlock) see through helper boundaries. Tags and
// peers that are a callee parameter stay symbolic in the memoized
// summary and are bound to the caller's constant at each splice site —
// the constant propagation that lets `sendResult(c, dst)` match a
// `Recv(c, src, tagResult)` three functions away.

// EffectKind discriminates summary effects.
type EffectKind uint8

const (
	// EffColl is a collective call (Barrier, Bcast, Reduce, ...).
	EffColl EffectKind = iota
	// EffSend is a point-to-point send (non-blocking, eager semantics).
	EffSend
	// EffRecv is a point-to-point receive; Blocking is false for TryRecv.
	EffRecv
	// EffBranch is a conditional with per-arm effect sequences.
	EffBranch
	// EffLoop is a for/range loop around its body effects.
	EffLoop
)

// valueClass classifies a tag or peer operand.
type valueClass uint8

const (
	valUnknown valueClass = iota // dynamically computed
	valConst                     // constant-foldable integer
	valParam                     // a parameter of the summarized function (symbolic)
	valRankDep                   // derived from this rank's id
)

// operand is a symbolic tag or peer value.
type operand struct {
	class valueClass
	val   int    // valConst
	param string // valParam
	// bound marks a valConst that was resolved only by interprocedural
	// parameter binding — a value the intraprocedural rules cannot see.
	bound bool
}

func (o operand) String() string {
	switch o.class {
	case valConst:
		if o.bound {
			return fmt.Sprintf("const:%d(bound)", o.val)
		}
		return fmt.Sprintf("const:%d", o.val)
	case valParam:
		return "param:" + o.param
	case valRankDep:
		return "rank-dep"
	}
	return "?"
}

// Effect is one node of a communication summary.
type Effect struct {
	Kind     EffectKind
	Op       string  // collective name, or Send/SendSub/SendRecv/Recv/RecvFrom/RecvSub/TryRecv
	Comm     string  // communicator identifier, best effort ("" unknown)
	Tag      operand // p2p only
	Peer     operand // p2p only: destination for sends, source for receives
	Blocking bool    // EffRecv: false for TryRecv
	// Payload names the summarized function's parameter that flows into
	// the operation's payload argument ("" when the payload is not a bare
	// parameter). EffSend and EffColl only. The ownership rule reads this
	// to see buffers escaping into communication through helper calls.
	Payload string
	Pos     token.Pos
	// Path is the call chain from the summarized function to the effect
	// site: nil for direct effects, ["helper"] for effects inside a
	// called helper, ["helper", "inner"] one level deeper.
	Path []string

	Divergent bool       // EffBranch: the condition compares the rank
	Arms      [][]Effect // EffBranch
	Term      []bool     // EffBranch: arm unconditionally leaves the function

	RankTrips bool     // EffLoop: trip count depends on the rank
	Body      []Effect // EffLoop
}

// pathString renders an effect's call chain for diagnostics ("" direct).
func (e Effect) pathString() string {
	if len(e.Path) == 0 {
		return ""
	}
	return " (via " + strings.Join(e.Path, " → ") + ")"
}

// FuncSummary is the communication summary of one function body.
type FuncSummary struct {
	Name    string
	Effects []Effect
}

// maxSpliceDepth bounds call expansion; deeper chains degrade gracefully
// to "no visible effects" rather than looping.
const maxSpliceDepth = 8

// summarizer builds and memoizes function summaries for one unit.
type summarizer struct {
	u        *Unit
	cg       *callGraph
	consts   map[string]int
	cache    map[*ast.FuncDecl]*FuncSummary
	litCache map[*ast.FuncLit]*FuncSummary
	building map[*ast.FuncDecl]bool // recursion cut
}

// summaries returns (building if needed) the unit's summarizer. The cache
// lives on the Unit so the protocol and deadlock rules share one build.
func (u *Unit) summaries() *summarizer {
	if u.sums == nil {
		u.sums = &summarizer{
			u:        u,
			cg:       buildCallGraph(u),
			consts:   collectIntConsts(u),
			cache:    map[*ast.FuncDecl]*FuncSummary{},
			litCache: map[*ast.FuncLit]*FuncSummary{},
			building: map[*ast.FuncDecl]bool{},
		}
	}
	return u.sums
}

// funcSummary returns the memoized summary of one declaration. Recursive
// back-edges contribute no effects (the cycle is cut, not unrolled).
func (s *summarizer) funcSummary(fd *ast.FuncDecl) *FuncSummary {
	if sum, ok := s.cache[fd]; ok {
		return sum
	}
	if s.building[fd] {
		return &FuncSummary{Name: fd.Name.Name}
	}
	s.building[fd] = true
	sum := &FuncSummary{
		Name:    fd.Name.Name,
		Effects: s.stmtList(fd.Body.List, paramSet(fd), 0),
	}
	delete(s.building, fd)
	s.cache[fd] = sum
	return sum
}

// litSummary summarizes a function literal body (rank bodies handed to
// World.Run, pool workers). Literal parameters are symbolic like
// declaration parameters; summaries are memoized because several rules
// enumerate the same literals.
func (s *summarizer) litSummary(lit *ast.FuncLit) *FuncSummary {
	if sum, ok := s.litCache[lit]; ok {
		return sum
	}
	params := map[string]bool{}
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				params[name.Name] = true
			}
		}
	}
	sum := &FuncSummary{Name: "func literal", Effects: s.stmtList(lit.Body.List, params, 0)}
	s.litCache[lit] = sum
	return sum
}

// paramSet collects a declaration's parameter and receiver names.
func paramSet(fd *ast.FuncDecl) map[string]bool {
	params := map[string]bool{}
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				params[name.Name] = true
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return params
}

// stmtList walks one statement list in order, emitting effects. Walking
// stops after a statement that unconditionally leaves the function. The
// result is termination-normalized: when a branch has arms that leave the
// function, the effects of the remaining statements are absorbed into the
// fall-through arms, so every arm's sequence fully describes what ranks
// taking it still execute in this frame — the invariant that lets a
// spliced summary treat a callee `return` as "continue in the caller".
func (s *summarizer) stmtList(list []ast.Stmt, params map[string]bool, depth int) []Effect {
	var out []Effect
	for i, stmt := range list {
		effs := s.stmtEffects(stmt, params, depth)
		out = append(out, effs...)
		if stmtTerminates(stmt) {
			break
		}
		if len(effs) > 0 {
			last := &out[len(out)-1]
			if last.Kind == EffBranch && anyTrue(last.Term) {
				if rest := s.stmtList(list[i+1:], params, depth); len(rest) > 0 {
					for j := range last.Arms {
						if !last.Term[j] {
							last.Arms[j] = concatEffects(last.Arms[j], rest)
						}
					}
				}
				return out
			}
		}
	}
	return out
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// stmtTerminates reports whether a single statement unconditionally
// leaves the function (return / panic / os.Exit-style call).
func stmtTerminates(stmt ast.Stmt) bool {
	switch x := stmt.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			return isTerminalCall(call)
		}
	}
	return false
}

// stmtEffects emits the effects of one statement.
func (s *summarizer) stmtEffects(stmt ast.Stmt, params map[string]bool, depth int) []Effect {
	switch x := stmt.(type) {
	case *ast.ExprStmt:
		return s.exprEffects(x.X, params, depth)
	case *ast.AssignStmt:
		var out []Effect
		for _, rhs := range x.Rhs {
			out = append(out, s.exprEffects(rhs, params, depth)...)
		}
		return out
	case *ast.ReturnStmt:
		var out []Effect
		for _, r := range x.Results {
			out = append(out, s.exprEffects(r, params, depth)...)
		}
		return out
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			var out []Effect
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						out = append(out, s.exprEffects(v, params, depth)...)
					}
				}
			}
			return out
		}
	case *ast.DeferStmt:
		// Deferred communication runs at function exit; source order is an
		// approximation, matching the intraprocedural collective rule.
		return s.callEffects(x.Call, params, depth)
	case *ast.IfStmt:
		return s.ifEffects(x, params, depth)
	case *ast.ForStmt:
		var body []Effect
		if x.Init != nil {
			body = append(body, s.stmtEffects(x.Init, params, depth)...)
		}
		body = append(body, s.stmtList(x.Body.List, params, depth)...)
		if x.Post != nil {
			body = append(body, s.stmtEffects(x.Post, params, depth)...)
		}
		if len(body) == 0 {
			return nil
		}
		return []Effect{{
			Kind: EffLoop, Pos: x.Pos(), Body: body,
			RankTrips: mentionsRank(x.Init) || mentionsRank(x.Cond) || mentionsRank(x.Post),
		}}
	case *ast.RangeStmt:
		body := s.stmtList(x.Body.List, params, depth)
		if len(body) == 0 {
			return nil
		}
		return []Effect{{
			Kind: EffLoop, Pos: x.Pos(), Body: body,
			RankTrips: mentionsRank(x.X),
		}}
	case *ast.SwitchStmt:
		return s.switchEffects(x, params, depth)
	case *ast.TypeSwitchStmt:
		var arms [][]Effect
		var term []bool
		hasDefault := false
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				if cc.List == nil {
					hasDefault = true
				}
				arms = append(arms, s.stmtList(cc.Body, params, depth))
				term = append(term, bodyTerminates(cc.Body))
			}
		}
		return makeBranch(x.Pos(), false, "", arms, term, hasDefault)
	case *ast.SelectStmt:
		var arms [][]Effect
		var term []bool
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				arms = append(arms, s.stmtList(cc.Body, params, depth))
				term = append(term, bodyTerminates(cc.Body))
			}
		}
		return makeBranch(x.Pos(), false, "", arms, term, true)
	case *ast.BlockStmt:
		return s.stmtList(x.List, params, depth)
	case *ast.LabeledStmt:
		return s.stmtEffects(x.Stmt, params, depth)
	case *ast.GoStmt:
		// A spawned goroutine is not part of this rank's program order.
		return nil
	case *ast.SendStmt, *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt:
		return nil
	}
	return nil
}

// ifEffects builds a branch effect from an if statement, classifying the
// condition as rank-divergent (ranks take different arms) or uniform
// (every rank takes the same arm). Uniform branches whose arms carry no
// effects vanish; uniform branches with identical arms splice one arm.
func (s *summarizer) ifEffects(ifs *ast.IfStmt, params map[string]bool, depth int) []Effect {
	var out []Effect
	if ifs.Init != nil {
		out = append(out, s.stmtEffects(ifs.Init, params, depth)...)
	}
	out = append(out, s.exprEffects(ifs.Cond, params, depth)...)

	cmps := rankCond(ifs.Cond)
	divergent := len(cmps) > 0
	comm := ""
	if divergent {
		comm = cmps[0].comm
	}

	thenArm := s.stmtList(ifs.Body.List, params, depth)
	thenTerm := terminates(ifs.Body)
	var elseArm []Effect
	elseTerm := false
	switch e := ifs.Else.(type) {
	case *ast.BlockStmt:
		elseArm = s.stmtList(e.List, params, depth)
		elseTerm = terminates(e)
	case *ast.IfStmt:
		elseArm = s.stmtEffects(e, params, depth)
		elseTerm = allElseTerminates(e)
	}
	out = append(out, makeBranch(ifs.Pos(), divergent, comm,
		[][]Effect{thenArm, elseArm}, []bool{thenTerm, elseTerm}, true)...)
	return out
}

// switchEffects handles a switch statement; a switch over the rank value
// (or whose case expressions compare the rank) is divergent.
func (s *summarizer) switchEffects(sw *ast.SwitchStmt, params map[string]bool, depth int) []Effect {
	var out []Effect
	if sw.Init != nil {
		out = append(out, s.stmtEffects(sw.Init, params, depth)...)
	}
	divergent := false
	comm := ""
	if sw.Tag != nil {
		if c, ok := isRankExpr(sw.Tag); ok {
			divergent, comm = true, c
		}
	} else {
		for _, c := range sw.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					if cmps := rankCond(e); len(cmps) > 0 {
						divergent, comm = true, cmps[0].comm
					}
				}
			}
		}
	}
	var arms [][]Effect
	var term []bool
	hasDefault := false
	for _, c := range sw.Body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			if cc.List == nil {
				hasDefault = true
			}
			arms = append(arms, s.stmtList(cc.Body, params, depth))
			term = append(term, bodyTerminates(cc.Body))
		}
	}
	out = append(out, makeBranch(sw.Pos(), divergent, comm, arms, term, hasDefault)...)
	return out
}

// makeBranch assembles a branch effect. A missing default (or else) adds
// an implicit empty fall-through arm; branches with no effects anywhere
// vanish; uniform branches whose arms all agree splice the first arm.
func makeBranch(pos token.Pos, divergent bool, comm string, arms [][]Effect, term []bool, exhaustive bool) []Effect {
	if !exhaustive {
		arms = append(arms, nil)
		term = append(term, false)
	}
	any := false
	for _, a := range arms {
		if len(a) > 0 {
			any = true
		}
	}
	if !any {
		return nil
	}
	if !divergent {
		allEqual := true
		for _, a := range arms[1:] {
			if !sameEffectShape(arms[0], a) {
				allEqual = false
				break
			}
		}
		anyTerm := false
		for _, t := range term {
			if t {
				anyTerm = true
			}
		}
		if allEqual && !anyTerm {
			return arms[0]
		}
	}
	return []Effect{{Kind: EffBranch, Pos: pos, Divergent: divergent, Comm: comm, Arms: arms, Term: term}}
}

// sameEffectShape reports whether two effect sequences are structurally
// identical (op, tag, peer, nesting) — used to collapse uniform branches.
func sameEffectShape(a, b []Effect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Kind != y.Kind || x.Op != y.Op || x.Tag != y.Tag || x.Peer != y.Peer {
			return false
		}
		if !sameEffectShape(x.Body, y.Body) {
			return false
		}
		if len(x.Arms) != len(y.Arms) {
			return false
		}
		for j := range x.Arms {
			if !sameEffectShape(x.Arms[j], y.Arms[j]) {
				return false
			}
		}
	}
	return true
}

// bodyTerminates applies the block-termination test to a bare statement
// list (case-clause bodies have no BlockStmt wrapper).
func bodyTerminates(list []ast.Stmt) bool {
	return terminates(&ast.BlockStmt{List: list})
}

// exprEffects emits the effects of every communication call inside an
// expression, in syntactic order, without entering function literals.
func (s *summarizer) exprEffects(e ast.Expr, params map[string]bool, depth int) []Effect {
	if e == nil {
		return nil
	}
	var out []Effect
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			out = append(out, s.callEffects(x, params, depth)...)
			return false // callEffects descends into arguments itself
		}
		return true
	})
	return out
}

// callEffects classifies one call: a collective, a point-to-point
// operation, or a unit-local function whose summary is spliced in with
// the caller's argument bindings. Argument subexpressions are scanned
// first — their communication happens before the call executes.
func (s *summarizer) callEffects(call *ast.CallExpr, params map[string]bool, depth int) []Effect {
	var out []Effect
	for _, a := range call.Args {
		out = append(out, s.exprEffects(a, params, depth)...)
	}
	if cc, ok := asCollective(call); ok {
		eff := Effect{Kind: EffColl, Op: cc.name, Comm: cc.comm, Pos: call.Pos()}
		if i := collPayloadIndex(cc.name); i >= 0 {
			eff.Payload = paramArgName(call, i, params)
		}
		out = append(out, eff)
		return out
	}
	name := commCallName(call)
	switch name {
	case "Send", "SendSub":
		if len(call.Args) == 4 {
			out = append(out, Effect{
				Kind: EffSend, Op: name, Comm: argIdent(call, 0), Pos: call.Pos(),
				Peer:    s.classify(call.Args[1], params),
				Tag:     s.classify(call.Args[2], params),
				Payload: paramArgName(call, 3, params),
			})
			return out
		}
	case "Recv", "RecvFrom", "RecvSub":
		if len(call.Args) == 3 {
			out = append(out, Effect{
				Kind: EffRecv, Op: name, Comm: argIdent(call, 0), Pos: call.Pos(), Blocking: true,
				Peer: s.classify(call.Args[1], params),
				Tag:  s.classify(call.Args[2], params),
			})
			return out
		}
	case "TryRecv":
		if len(call.Args) == 3 {
			out = append(out, Effect{
				Kind: EffRecv, Op: name, Comm: argIdent(call, 0), Pos: call.Pos(), Blocking: false,
				Peer: s.classify(call.Args[1], params),
				Tag:  s.classify(call.Args[2], params),
			})
			return out
		}
	case "SendRecv":
		// A paired exchange: posts the send, then blocks on the matching
		// receive with the same tag.
		if len(call.Args) == 4 {
			peer := s.classify(call.Args[1], params)
			tag := s.classify(call.Args[2], params)
			out = append(out,
				Effect{Kind: EffSend, Op: name, Comm: argIdent(call, 0), Pos: call.Pos(), Peer: peer, Tag: tag,
					Payload: paramArgName(call, 3, params)},
				Effect{Kind: EffRecv, Op: name, Comm: argIdent(call, 0), Pos: call.Pos(), Blocking: true, Peer: peer, Tag: tag})
			return out
		}
	}
	callee := s.cg.resolve(call)
	if callee == nil || depth >= maxSpliceDepth {
		return out
	}
	calleeSum := s.spliceSummary(callee, depth)
	if len(calleeSum) == 0 {
		return out
	}
	bind, commBind := s.bindings(call, callee, params)
	out = append(out, substEffects(calleeSum, callee.Name.Name, bind, commBind)...)
	return out
}

// spliceSummary returns a callee's effects built at the given depth,
// cutting recursion like funcSummary does.
func (s *summarizer) spliceSummary(fd *ast.FuncDecl, depth int) []Effect {
	if sum, ok := s.cache[fd]; ok {
		return sum.Effects
	}
	if s.building[fd] {
		return nil
	}
	s.building[fd] = true
	effects := s.stmtList(fd.Body.List, paramSet(fd), depth+1)
	delete(s.building, fd)
	s.cache[fd] = &FuncSummary{Name: fd.Name.Name, Effects: effects}
	return effects
}

// bindings maps a callee's parameter names to operands classified in the
// caller's context, and communicator parameter names to caller idents.
func (s *summarizer) bindings(call *ast.CallExpr, callee *ast.FuncDecl, params map[string]bool) (map[string]operand, map[string]string) {
	bind := map[string]operand{}
	commBind := map[string]string{}
	record := func(name string, arg ast.Expr) {
		op := s.classify(arg, params)
		op.bound = op.class == valConst
		bind[name] = op
		if id, ok := arg.(*ast.Ident); ok {
			commBind[name] = id.Name
		}
	}
	// Receiver of a method call binds to the selector base.
	if callee.Recv != nil && len(callee.Recv.List) > 0 && len(callee.Recv.List[0].Names) > 0 {
		if sel, ok := unwrapCallFun(call).(*ast.SelectorExpr); ok {
			record(callee.Recv.List[0].Names[0].Name, sel.X)
		}
	}
	i := 0
	for _, field := range callee.Type.Params.List {
		for _, name := range field.Names {
			if i < len(call.Args) {
				record(name.Name, call.Args[i])
			}
			i++
		}
	}
	return bind, commBind
}

// unwrapCallFun strips instantiations and parens off a call's Fun.
func unwrapCallFun(call *ast.CallExpr) ast.Expr {
	fun := call.Fun
	for {
		switch x := fun.(type) {
		case *ast.IndexExpr:
			fun = x.X
		case *ast.IndexListExpr:
			fun = x.X
		case *ast.ParenExpr:
			fun = x.X
		default:
			return fun
		}
	}
}

// substEffects deep-copies spliced effects, substituting symbolic
// parameter operands with the caller's bindings and prefixing call paths.
// Arm termination flags are cleared: a `return` inside the callee only
// leaves the callee, and the termination-normalized summary already moved
// the callee's own remaining effects into the fall-through arms, so in
// the caller's frame every arm simply continues with the caller's
// continuation.
func substEffects(effects []Effect, calleeName string, bind map[string]operand, commBind map[string]string) []Effect {
	out := make([]Effect, 0, len(effects))
	for _, e := range effects {
		c := e
		c.Path = append([]string{calleeName}, e.Path...)
		c.Tag = substOperand(e.Tag, bind)
		c.Peer = substOperand(e.Peer, bind)
		if e.Payload != "" {
			// The payload param maps to whatever caller identifier was
			// passed there; non-identifier arguments lose the fact.
			c.Payload = commBind[e.Payload]
		}
		if mapped, ok := commBind[e.Comm]; ok {
			c.Comm = mapped
		} else if e.Comm != "" {
			c.Comm = "" // a callee local: unknown in the caller's frame
		}
		if e.Body != nil {
			c.Body = substEffects(e.Body, calleeName, bind, commBind)
		}
		if e.Arms != nil {
			c.Arms = make([][]Effect, len(e.Arms))
			for i, arm := range e.Arms {
				c.Arms[i] = substEffects(arm, calleeName, bind, commBind)
			}
			c.Term = make([]bool, len(e.Term))
		}
		out = append(out, c)
	}
	return out
}

func substOperand(o operand, bind map[string]operand) operand {
	if o.class != valParam {
		return o
	}
	if b, ok := bind[o.param]; ok {
		return b
	}
	return operand{class: valUnknown}
}

// classify determines what a tag/peer expression is in the current
// function's frame: a foldable constant, one of the function's own
// parameters (symbolic, bindable by callers), rank-derived, or unknown.
func (s *summarizer) classify(e ast.Expr, params map[string]bool) operand {
	if v, ok := intValue(e, s.consts); ok {
		return operand{class: valConst, val: v}
	}
	if id, ok := e.(*ast.Ident); ok && params[id.Name] {
		return operand{class: valParam, param: id.Name}
	}
	if mentionsRank(e) {
		return operand{class: valRankDep}
	}
	return operand{class: valUnknown}
}

// mentionsRank reports whether any subexpression denotes this rank's id.
func mentionsRank(n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if e, ok := x.(ast.Expr); ok {
			if _, isRank := isRankExpr(e); isRank {
				found = true
			}
		}
		return !found
	})
	return found
}

// collPayloadIndex returns the payload argument position of a collective
// by name, or -1 for collectives that carry no user payload (Barrier,
// Split). The positions mirror internal/cluster's signatures.
func collPayloadIndex(name string) int {
	switch name {
	case "Bcast", "Reduce", "Gather", "Scatter",
		"BcastSub", "ReduceSub", "GatherSub":
		return 2 // (comm, root, v, ...)
	case "Allreduce", "Allgather", "Alltoall", "Scan", "AllreduceSub":
		return 1 // (comm, v, ...)
	}
	return -1
}

// paramArgName returns the name of argument i when it is a bare
// identifier naming one of the current function's parameters, else "".
func paramArgName(call *ast.CallExpr, i int, params map[string]bool) string {
	if i < len(call.Args) {
		if id, ok := call.Args[i].(*ast.Ident); ok && params[id.Name] {
			return id.Name
		}
	}
	return ""
}

// argIdent returns the identifier name of argument i, or "".
func argIdent(call *ast.CallExpr, i int) string {
	if i >= len(call.Args) {
		return ""
	}
	if id, ok := call.Args[i].(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// FormatEffects renders a summary compactly for golden tests and debug
// output:
//
//	Barrier; Send[t=7 d=rank]; branch(rank){[Bcast] []}; loop(rank-trips){Reduce}
func FormatEffects(effects []Effect) string {
	var parts []string
	for _, e := range effects {
		parts = append(parts, formatEffect(e))
	}
	return strings.Join(parts, "; ")
}

func formatEffect(e Effect) string {
	switch e.Kind {
	case EffColl:
		return e.Op
	case EffSend, EffRecv:
		var attrs []string
		attrs = append(attrs, "t="+formatOperand(e.Tag))
		if e.Kind == EffSend {
			attrs = append(attrs, "d="+formatOperand(e.Peer))
		} else {
			attrs = append(attrs, "s="+formatOperand(e.Peer))
		}
		op := e.Op
		if len(e.Path) > 0 {
			op += "@" + strings.Join(e.Path, "→")
		}
		return op + "[" + strings.Join(attrs, " ") + "]"
	case EffBranch:
		kind := "uniform"
		if e.Divergent {
			kind = "rank"
		}
		var arms []string
		for _, a := range e.Arms {
			arms = append(arms, "["+FormatEffects(a)+"]")
		}
		return "branch(" + kind + "){" + strings.Join(arms, " ") + "}"
	case EffLoop:
		kind := "loop"
		if e.RankTrips {
			kind = "loop(rank-trips)"
		}
		return kind + "{" + FormatEffects(e.Body) + "}"
	}
	return "?"
}

func formatOperand(o operand) string {
	switch o.class {
	case valConst:
		return fmt.Sprintf("%d", o.val)
	case valParam:
		return "$" + o.param
	case valRankDep:
		return "rank"
	}
	return "?"
}

// SummarizeUnit builds summaries for every declaration in the unit,
// sorted by name — the entry point the golden-summary tests use.
func SummarizeUnit(u *Unit) []*FuncSummary {
	s := u.summaries()
	var out []*FuncSummary
	for _, fd := range s.cg.decls {
		out = append(out, s.funcSummary(fd))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
