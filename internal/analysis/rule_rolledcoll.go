package analysis

import (
	"go/ast"
	"go/token"
)

// The rolledcoll rule recognizes hand-rolled collectives: a loop indexed
// over the world size whose body sends to or receives from the loop
// variable — the O(P) linear pattern learners write where an O(log P)
// tree collective exists (the MPJ Express course experience in
// PAPERS.md). The matched shape and its replacement are named in the
// finding:
//
//	root sends the same value to all     → Bcast  (binomial tree)
//	root sends the i-th slice to each    → Scatter
//	all contributions received at root   → Gather
//	received contributions folded in     → Reduce / Allreduce
//	symmetric send+recv with every rank  → Alltoall
//
// Interprocedural: a send or receive inside a helper counts when the
// helper's summary marks its peer as a parameter and the call site binds
// that parameter to the loop variable. The substrate's own linear
// fallbacks (internal/cluster) use the raw transport and never match the
// public vocabulary, so implementing a collective is not a finding —
// only re-rolling one on top of the public API is.

func checkRolledColl(u *Unit, r *reporter) {
	u.ensureTypes()
	sums := u.summaries()
	funcBodies(u, func(name string, body *ast.BlockStmt) {
		sizes := sizeIdents(body)
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			fs, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			rankLoop(u, r, sums.cg, fs, sizes)
			return true
		})
	})
}

// sizeIdents collects the names a function body binds to the world size
// (`size := c.Size()`), so a loop bound spelled through a variable still
// reads as rank-indexed.
func sizeIdents(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, isID := lhs.(*ast.Ident)
			if !isID {
				continue
			}
			if isSizeCall(as.Rhs[i]) {
				out[id.Name] = true
			}
		}
		return true
	})
	return out
}

// isSizeCall matches X.Size() — the communicator's world-size accessor.
func isSizeCall(e ast.Expr) bool {
	call, ok := stripParens(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Size"
}

// mentionsSize reports whether an expression involves the world size —
// a Size() call or a variable bound to one.
func mentionsSize(e ast.Expr, sizes map[string]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if isSizeCall(x) {
				found = true
			}
		case *ast.Ident:
			if sizes[x.Name] {
				found = true
			}
		}
		return true
	})
	return found
}

// rollEvents aggregates what one rank-indexed loop body does with the
// loop variable as a peer.
type rollEvents struct {
	sends, recvs int
	slicedSend   bool // a send payload indexed/sliced by the loop var
	folded       bool // a received value folded into an accumulator
	via          string
}

func rankLoop(u *Unit, r *reporter, cg *callGraph, fs *ast.ForStmt, sizes map[string]bool) {
	iv, ok := loopVarOverSize(fs, sizes)
	if !ok {
		return
	}
	var ev rollEvents
	collectRollEvents(u, cg, fs.Body, iv, &ev)
	if ev.sends == 0 && ev.recvs == 0 {
		return
	}
	var pattern, fix string
	switch {
	case ev.sends > 0 && ev.recvs > 0:
		pattern, fix = "a symmetric per-rank exchange (hand-rolled Alltoall)",
			"cluster.Alltoall delivers every part with deterministic pairwise partners"
	case ev.sends > 0 && ev.slicedSend:
		pattern, fix = "a root sending the i-th slice to each rank (hand-rolled Scatter)",
			"cluster.Scatter ships segments down a binomial tree in O(log P) rounds instead of O(P) root sends"
	case ev.sends > 0:
		pattern, fix = "a root sending the same value to every rank (hand-rolled Bcast)",
			"cluster.Bcast broadcasts down a binomial tree in O(log P) rounds instead of O(P) root sends"
	case ev.folded:
		pattern, fix = "every rank's contribution received and folded at one rank (hand-rolled Reduce)",
			"cluster.Reduce (or Allreduce) folds up a binomial tree in O(log P) rounds instead of O(P) root receives"
	default:
		pattern, fix = "every rank's contribution received at one rank (hand-rolled Gather)",
			"cluster.Gather collects up a binomial tree in O(log P) rounds instead of O(P) root receives"
	}
	through := ""
	if ev.via != "" {
		through = " (communication via " + ev.via + ")"
	}
	r.report("rolledcoll", fs.Pos(),
		"this loop over the world size is %s%s; %s", pattern, through, fix)
}

// loopVarOverSize matches `for i := lo; i < size; i++`-shaped headers
// where the bound involves the world size, returning the loop variable.
func loopVarOverSize(fs *ast.ForStmt, sizes map[string]bool) (string, bool) {
	init, ok := fs.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 {
		return "", false
	}
	iv, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return "", false
	}
	cond, ok := fs.Cond.(*ast.BinaryExpr)
	if !ok {
		return "", false
	}
	var bound ast.Expr
	switch cond.Op {
	case token.LSS, token.LEQ, token.NEQ:
		bound = cond.Y
	case token.GTR, token.GEQ:
		bound = cond.X // `size > i` spelling
	default:
		return "", false
	}
	if id, isID := stripParens(cond.X).(*ast.Ident); !isID || id.Name != iv.Name {
		if id, isID := stripParens(cond.Y).(*ast.Ident); !isID || id.Name != iv.Name {
			return "", false
		}
		bound = cond.X
	}
	if !mentionsSize(bound, sizes) {
		return "", false
	}
	return iv.Name, true
}

// collectRollEvents scans a loop body for sends/receives whose peer is
// the loop variable, directly or through a helper whose summary marks
// the peer as a bound parameter.
func collectRollEvents(u *Unit, cg *callGraph, body *ast.BlockStmt, iv string, ev *rollEvents) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if as, ok := n.(*ast.AssignStmt); ok && as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
			// A compound assignment folding a rank-peer receive is the
			// accumulate half of a Reduce.
			for _, rhs := range as.Rhs {
				if recvWithPeer(u, rhs, iv) {
					ev.folded = true
				}
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if u.clusterCall(call) {
			switch name := commCallName(call); name {
			case "Send", "SendSub":
				if len(call.Args) == 4 && mentionsIdent(call.Args[1], iv) {
					ev.sends++
					if indexedBy(call.Args[3], iv) {
						ev.slicedSend = true
					}
				}
				return true
			case "Recv", "RecvSub":
				if len(call.Args) == 3 && mentionsIdent(call.Args[1], iv) {
					ev.recvs++
				}
				return true
			}
		}
		callee := cg.resolve(call)
		if callee == nil {
			return true
		}
		peerParams := peerParamFacts(u, callee)
		if len(peerParams) == 0 {
			return true
		}
		for idx, pname := range orderedParams(callee) {
			kind, isPeer := peerParams[pname]
			if !isPeer {
				continue
			}
			arg, ok := callArg(call, callee, idx)
			if !ok || arg == nil || !mentionsIdent(arg, iv) {
				continue
			}
			ev.via = callee.Name.Name
			if kind == EffSend {
				ev.sends++
				// The payload fact tells us which argument carries the
				// data; a loop-var-indexed slice there is the Scatter shape.
				for pidx, ppname := range orderedParams(callee) {
					if _, sent := u.payloadFacts(callee)[ppname]; !sent {
						continue
					}
					if parg, ok := callArg(call, callee, pidx); ok && indexedBy(parg, iv) {
						ev.slicedSend = true
					}
				}
			} else {
				ev.recvs++
			}
		}
		return true
	})
	// An assignment like `acc = acc + Recv(...)` (or `acc = op(acc, ...)`)
	// is also a fold; detect it on a second, statement-shaped pass.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, isID := as.Lhs[0].(*ast.Ident)
		if !isID {
			return true
		}
		if recvWithPeer(u, as.Rhs[0], iv) && mentionsIdent(as.Rhs[0], lhs.Name) {
			ev.folded = true
		}
		return true
	})
}

// peerParamFacts maps a callee's parameters that flow into a send or
// receive peer position to the effect kind, from its summary.
func peerParamFacts(u *Unit, fd *ast.FuncDecl) map[string]EffectKind {
	out := map[string]EffectKind{}
	var walk func(effs []Effect)
	walk = func(effs []Effect) {
		for _, ef := range effs {
			if (ef.Kind == EffSend || ef.Kind == EffRecv) && ef.Peer.class == valParam {
				if _, dup := out[ef.Peer.param]; !dup {
					out[ef.Peer.param] = ef.Kind
				}
			}
			walk(ef.Body)
			for _, arm := range ef.Arms {
				walk(arm)
			}
		}
	}
	walk(u.summaries().funcSummary(fd).Effects)
	return out
}

// recvWithPeer reports whether the expression contains a receive whose
// source argument mentions the loop variable.
func recvWithPeer(u *Unit, e ast.Expr, iv string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch commCallName(call) {
		case "Recv", "RecvSub":
			if u.clusterCall(call) && len(call.Args) == 3 && mentionsIdent(call.Args[1], iv) {
				found = true
			}
		}
		return true
	})
	return found
}

// indexedBy reports whether the expression indexes or slices by the loop
// variable — the i-th-part signature that separates Scatter from Bcast.
func indexedBy(e ast.Expr, iv string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.IndexExpr:
			if mentionsIdent(x.Index, iv) {
				found = true
			}
		case *ast.SliceExpr:
			if mentionsIdent(x.Low, iv) || mentionsIdent(x.High, iv) {
				found = true
			}
		}
		return true
	})
	return found
}
