// Package analysis is peachyvet: a static SPMD/concurrency checker for
// this repository's parallel substrates, built on the stdlib go/ast,
// go/parser and go/types packages (no external analysis framework).
//
// The stock `go vet` knows nothing about the cluster runtime's SPMD
// contract — that every rank must execute the same collective sequence,
// that point-to-point tags must pair up, and that closures handed to
// World.Run execute once per rank concurrently. peachyvet encodes those
// rules, the same hazards MPI correctness tools (MUST, Marmot) check for
// real MPI programs:
//
//	collective — collective calls inside rank-divergent branches that are
//	            not matched on the other arm (or that follow a
//	            rank-guarded early return)
//	sendrecv   — Send with a constant tag that no Recv in the package
//	            could ever match
//	useaftersend — a sent or collectively-shared buffer (or an alias of
//	            it) is written before a happens-after sync point; the
//	            in-process transport passes pointers, so the receiver
//	            observes the mutation
//	recvalias  — received data lands in a buffer still in flight, or two
//	            receives land in provably overlapping regions
//	wiresafe   — payload types a network transport could not encode
//	            (channels, funcs, sync types, unexported fields) and
//	            missing/shallow CloneWire implementations
//	capture    — writes to captured outer variables inside World.Run /
//	            pool-worker closures that are not rank-guarded or
//	            rank-indexed (shared-memory leaks across "ranks")
//	lockcopy   — sync.Mutex / sync.WaitGroup (or structs containing them)
//	            copied by value
//	rawgo      — raw `go` statements in internal/ packages that bypass
//	            the sanctioned substrates (internal/par pools,
//	            cluster.World, locale.System)
//
// A finding can be suppressed by a trailing or preceding comment of the
// form `//peachyvet:allow <rule>` (or `//peachyvet:allow all`).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by a rule.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// AllRules lists every rule name in reporting order. The protocol and
// deadlock rules are interprocedural: they analyze per-function
// communication summaries propagated over the unit's call graph (see
// summary.go) rather than single function bodies.
// The ownership and wire-safety rules (useaftersend, recvalias,
// wiresafe) are likewise interprocedural: they combine the communication
// summaries with per-function mutation summaries (mutation.go) and a
// type-recursive encodability lattice (encodable.go).
// The performance-and-determinism family (hotalloc, rolledcoll, nondet)
// shares the same call graph, summaries and payload facts (perf.go).
var AllRules = []string{"collective", "sendrecv", "protocol", "deadlock",
	"useaftersend", "recvalias", "wiresafe", "hotalloc", "rolledcoll",
	"nondet", "capture", "lockcopy", "rawgo"}

// Config selects which rules run and where rawgo is exempt.
type Config struct {
	// Rules is the set of enabled rule names; nil enables all.
	Rules map[string]bool
	// RawGoAllowed lists slash-separated path fragments of packages that
	// are allowed to spawn raw goroutines (the parallelism substrates
	// themselves). Matched against the unit's directory path.
	RawGoAllowed []string
}

// DefaultConfig enables every rule and exempts the substrate packages —
// the packages whose whole job is implementing parallelism primitives —
// from the rawgo rule.
func DefaultConfig() Config {
	return Config{
		RawGoAllowed: []string{
			"internal/par",
			"internal/cluster",
			"internal/locale",
		},
	}
}

func (c Config) enabled(rule string) bool {
	if c.Rules == nil {
		return true
	}
	return c.Rules[rule]
}

// reporter accumulates findings and applies //peachyvet:allow suppressions.
type reporter struct {
	unit     *Unit
	findings []Finding
}

func (r *reporter) report(rule string, pos token.Pos, format string, args ...any) {
	p := r.unit.Fset.Position(pos)
	if r.unit.allowed(rule, p) {
		return
	}
	r.findings = append(r.findings, Finding{Pos: p, Rule: rule, Msg: fmt.Sprintf(format, args...)})
}

type checkFunc func(u *Unit, r *reporter)

var checks = map[string]checkFunc{
	"collective":   checkCollective,
	"sendrecv":     checkSendRecv,
	"protocol":     checkProtocol,
	"deadlock":     checkDeadlock,
	"useaftersend": checkUseAfterSend,
	"recvalias":    checkRecvAlias,
	"wiresafe":     checkWireSafe,
	"hotalloc":     checkHotAlloc,
	"rolledcoll":   checkRolledColl,
	"nondet":       checkNondet,
	"capture":      checkCapture,
	"lockcopy":     checkLockCopy,
	"rawgo":        checkRawGo,
}

// Analyze runs the enabled rules over one package unit. Load errors
// recorded on the unit (files that failed to parse) are surfaced first,
// as findings with the reserved rule name "load" — they are always on,
// so a broken file fails the gate instead of silently shrinking it.
func Analyze(u *Unit, cfg Config) []Finding {
	r := &reporter{unit: u}
	u.cfg = cfg
	r.findings = append(r.findings, u.LoadErrs...)
	for _, name := range AllRules {
		if !cfg.enabled(name) {
			continue
		}
		switch name {
		case "lockcopy", "capture", "useaftersend", "recvalias", "wiresafe",
			"hotalloc", "rolledcoll", "nondet":
			u.ensureTypes() // these rules consult type info where available
		}
		checks[name](u, r)
	}
	sort.Slice(r.findings, func(i, j int) bool {
		a, b := r.findings[i].Pos, r.findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return r.findings
}

// allowed reports whether a //peachyvet:allow comment covers (rule, pos):
// on the same line or the line immediately above.
func (u *Unit) allowed(rule string, p token.Position) bool {
	lines := u.allowLines[p.Filename]
	for _, l := range []int{p.Line, p.Line - 1} {
		if rules, ok := lines[l]; ok {
			if rules["all"] || rules[rule] {
				return true
			}
		}
	}
	return false
}

// indexAllows scans a file's comments for //peachyvet:allow directives.
func (u *Unit) indexAllows(file *ast.File) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "peachyvet:allow") {
				continue
			}
			p := u.Fset.Position(c.Pos())
			if u.allowLines[p.Filename] == nil {
				u.allowLines[p.Filename] = map[int]map[string]bool{}
			}
			rules := map[string]bool{}
			for _, r := range strings.Fields(strings.TrimPrefix(text, "peachyvet:allow")) {
				rules[r] = true
			}
			if len(rules) == 0 {
				rules["all"] = true
			}
			u.allowLines[p.Filename][p.Line] = rules
		}
	}
}
