package analysis

import (
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
)

// lenientImporter resolves std-library imports from source (so sync.Mutex
// et al. carry real type information) and degrades module-local imports —
// which the stdlib importers cannot resolve without a build driver — to
// empty placeholder packages. Rules that consult types must tolerate
// missing info; the SPMD rules are deliberately name-based so they do not
// depend on cross-package resolution.
type lenientImporter struct {
	src      types.Importer
	fallback map[string]*types.Package
}

func newLenientImporter(fset *token.FileSet) *lenientImporter {
	return &lenientImporter{
		src:      importer.ForCompiler(fset, "source", nil),
		fallback: map[string]*types.Package{},
	}
}

func (li *lenientImporter) Import(path string) (*types.Package, error) {
	if pkg, err := li.src.Import(path); err == nil {
		return pkg, nil
	}
	if pkg, ok := li.fallback[path]; ok {
		return pkg, nil
	}
	name := path
	if i := lastSlash(path); i >= 0 {
		name = path[i+1:]
	}
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	li.fallback[path] = pkg
	return pkg, nil
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// sharedImporter caches source-imported std packages across units; all
// units share one FileSet so this is safe.
var sharedImporters = map[*token.FileSet]*lenientImporter{}

// ensureTypes runs go/types over the unit with every error tolerated.
// Partial information is expected: expressions whose types could not be
// resolved simply have no entry in info.Types.
func (u *Unit) ensureTypes() {
	if u.typesOnce {
		return
	}
	u.typesOnce = true
	imp := sharedImporters[u.Fset]
	if imp == nil {
		imp = newLenientImporter(u.Fset)
		sharedImporters[u.Fset] = imp
	}
	conf := types.Config{
		Importer:         imp,
		Error:            func(error) {}, // collect nothing; partial info is fine
		IgnoreFuncBodies: false,
		FakeImportC:      true,
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, _ := conf.Check(u.Rel, u.Fset, u.Files, info) // errors intentionally ignored
	u.info = info
	u.typesPkg = pkg
}
