package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkCapture flags writes to captured outer state inside SPMD closures
// (World.Run rank bodies, par pool workers, locale bodies, raw goroutine
// literals). Such closures execute once per rank/worker concurrently, so
// an unsynchronized write to shared state is a data race — the
// shared-memory leak that breaks the "each rank owns its state" model.
//
// Three idioms are recognized as safe and not reported:
//
//   - rank-guarded single writer: the write sits in the then-arm of
//     `if c.Rank() == k` (or the else-arm of `!=`), so exactly one rank
//     executes it and World.Run's join publishes it;
//   - rank-indexed slots: `out[i] = v` where the index is derived from
//     the rank (directly or through BlockRange-style arithmetic), so
//     ranks write disjoint elements;
//   - explicitly locked closures: a closure that takes a mutex is assumed
//     to have arranged its own synchronization.
func checkCapture(u *Unit, r *reporter) {
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				switch commCallName(x) {
				case "Run":
					// World.Run(func(c *cluster.Comm)): require the
					// rank-body shape so unrelated Run methods (testing.T,
					// exhibits) are not caught.
					for _, a := range x.Args {
						if lit, ok := a.(*ast.FuncLit); ok && isRankBody(lit) {
							analyzeClosure(u, r, lit, "World.Run rank body", false)
						}
					}
				case "For", "ForRange", "OnEach":
					// Worker closures: the parameters (iteration index,
					// subrange bounds, worker id, locale) partition the
					// work, so parameter-derived indexes are race-free.
					for _, a := range x.Args {
						if lit, ok := a.(*ast.FuncLit); ok {
							label := "pool-worker closure"
							if commCallName(x) == "OnEach" {
								label = "locale body"
							}
							analyzeClosure(u, r, lit, label, true)
						}
					}
				case "Do":
					// par.Do runs each section once, concurrently with its
					// siblings: a write races only when two sections touch
					// the same captured target. sync.Once.Do and friends
					// must not match, hence the package qualification.
					if isParDo(x) {
						analyzeDoSections(u, r, x)
					}
				}
			case *ast.GoStmt:
				if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
					analyzeClosure(u, r, lit, "go statement", true)
				}
			}
			return true
		})
	}
}

// isParDo reports whether the call is par.Do (or bare Do inside package
// par itself), as opposed to sync.Once.Do or any other Do method.
func isParDo(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "Do"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name == "par" && fun.Sel.Name == "Do"
		}
	}
	return false
}

// isRankBody reports whether lit looks like func(c *cluster.Comm).
func isRankBody(lit *ast.FuncLit) bool {
	params := lit.Type.Params
	if params == nil || len(params.List) != 1 {
		return false
	}
	t := params.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch x := t.(type) {
	case *ast.Ident:
		return x.Name == "Comm"
	case *ast.SelectorExpr:
		return x.Sel.Name == "Comm"
	}
	return false
}

// analyzeClosure reports unguarded writes to captured state inside lit.
// taintParams marks the closure's own parameters as work-partitioning
// values (safe to index shared slices with).
func analyzeClosure(u *Unit, r *reporter, lit *ast.FuncLit, label string, taintParams bool) {
	if closureTakesLock(lit) {
		return
	}
	var seed []string
	if taintParams && lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				seed = append(seed, name.Name)
			}
		}
	}
	tainted := rankTaint(lit, seed)

	captured := func(id *ast.Ident) bool {
		if id.Name == "_" {
			return false
		}
		if id.Obj == nil {
			// Unresolved: a package-level variable from another file (a
			// shared write) or an unresolvable name; report only when it
			// is clearly not a type or function being shadowed.
			return true
		}
		decl, ok := id.Obj.Decl.(ast.Node)
		if !ok {
			return false
		}
		return decl.Pos() < lit.Pos() || decl.Pos() >= lit.End()
	}

	isTaintedIndex := func(idx ast.Expr) bool {
		safe := false
		ast.Inspect(idx, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				if _, isRank := isRankExpr(e); isRank {
					safe = true
				}
			}
			if id, ok := n.(*ast.Ident); ok && tainted[id.Name] {
				safe = true
			}
			return !safe
		})
		return safe
	}

	checkWrite := func(lhs ast.Expr, pos token.Pos, guarded bool) {
		if guarded {
			return
		}
		switch x := lhs.(type) {
		case *ast.Ident:
			if captured(x) {
				r.report("capture", pos,
					"write to captured variable %q inside %s: every rank/worker runs this concurrently — rank-guard it or give each rank its own slot", x.Name, label)
			}
		case *ast.IndexExpr:
			base, ok := x.X.(*ast.Ident)
			if !ok || !captured(base) {
				return
			}
			if u.info != nil {
				if tv, ok := u.info.Types[x.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						r.report("capture", pos,
							"write to captured map %q inside %s: concurrent map writes fault even on distinct keys — rank-guard it or merge after the join", base.Name, label)
						return
					}
				}
			}
			if !isTaintedIndex(x.Index) {
				r.report("capture", pos,
					"write to captured slice %q at a rank-independent index inside %s: ranks/workers may collide on the same element — index by rank or rank-guard it", base.Name, label)
			}
		case *ast.SelectorExpr:
			if base, ok := x.X.(*ast.Ident); ok && captured(base) {
				r.report("capture", pos,
					"write to field %s.%s of captured variable inside %s: every rank/worker runs this concurrently — rank-guard it", base.Name, x.Sel.Name, label)
			}
		case *ast.StarExpr:
			if base, ok := x.X.(*ast.Ident); ok && captured(base) {
				r.report("capture", pos,
					"write through captured pointer %q inside %s: every rank/worker runs this concurrently — rank-guard it", base.Name, label)
			}
		}
	}

	var walkStmt func(s ast.Stmt, guarded bool)
	walkBlock := func(b *ast.BlockStmt, guarded bool) {
		if b == nil {
			return
		}
		for _, s := range b.List {
			walkStmt(s, guarded)
		}
	}

	walkStmt = func(s ast.Stmt, guarded bool) {
		switch x := s.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				// A := may still assign existing captured vars in a
				// mixed-define statement only via outer scope; parser gives
				// those idents the outer Obj, so check each anyway.
			}
			for _, lhs := range x.Lhs {
				if x.Tok == token.DEFINE {
					if id, ok := lhs.(*ast.Ident); ok && id.Obj != nil {
						if decl, ok := id.Obj.Decl.(ast.Node); ok && decl.Pos() >= lit.Pos() && decl.Pos() < lit.End() {
							continue // freshly defined inside the closure
						}
					}
				}
				checkWrite(lhs, x.Pos(), guarded)
			}
		case *ast.IncDecStmt:
			checkWrite(x.X, x.Pos(), guarded)
		case *ast.IfStmt:
			if x.Init != nil {
				walkStmt(x.Init, guarded)
			}
			thenGuard, elseGuard := branchGuards(x.Cond)
			walkBlock(x.Body, guarded || thenGuard)
			switch e := x.Else.(type) {
			case *ast.BlockStmt:
				walkBlock(e, guarded || elseGuard)
			case *ast.IfStmt:
				walkStmt(e, guarded)
			}
		case *ast.BlockStmt:
			walkBlock(x, guarded)
		case *ast.ForStmt:
			if x.Init != nil {
				walkStmt(x.Init, guarded)
			}
			if x.Post != nil {
				walkStmt(x.Post, guarded)
			}
			walkBlock(x.Body, guarded)
		case *ast.RangeStmt:
			if x.Tok == token.ASSIGN {
				if x.Key != nil {
					checkWrite(x.Key, x.Pos(), guarded)
				}
				if x.Value != nil {
					checkWrite(x.Value, x.Pos(), guarded)
				}
			}
			walkBlock(x.Body, guarded)
		case *ast.SwitchStmt:
			if x.Init != nil {
				walkStmt(x.Init, guarded)
			}
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					for _, s := range cc.Body {
						walkStmt(s, guarded)
					}
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					for _, s := range cc.Body {
						walkStmt(s, guarded)
					}
				}
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						walkStmt(s, guarded)
					}
				}
			}
		case *ast.LabeledStmt:
			walkStmt(x.Stmt, guarded)
		case *ast.DeferStmt, *ast.GoStmt, *ast.ExprStmt, *ast.ReturnStmt,
			*ast.SendStmt, *ast.DeclStmt, *ast.BranchStmt, *ast.EmptyStmt:
			// No direct captured-write shapes to check (nested function
			// literals are analyzed on their own when SPMD-spawned).
		}
	}
	walkBlock(lit.Body, false)
}

// branchGuards reports whether the then/else arm of an if with this
// condition is executed by exactly one rank. `rank == k && extra` still
// guards the then-arm; any `||` voids the guarantee.
func branchGuards(cond ast.Expr) (thenGuard, elseGuard bool) {
	hasOr := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && b.Op == token.LOR {
			hasOr = true
		}
		return true
	})
	if hasOr {
		return false, false
	}
	for _, cmp := range rankCond(cond) {
		switch cmp.op {
		case token.EQL:
			thenGuard = true
		case token.NEQ:
			elseGuard = true
		}
	}
	return thenGuard, elseGuard
}

// closureTakesLock reports whether the closure calls a Lock/RLock method —
// taken as evidence the author synchronized shared access deliberately.
func closureTakesLock(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				found = true
			}
		}
		return !found
	})
	return found
}

// rankTaint computes the set of identifier names inside lit whose values
// derive from the rank (or from the given seed names): seeded by
// expressions mentioning Rank()/rank and propagated through assignments
// and range statements to a fixpoint.
func rankTaint(lit *ast.FuncLit, seed []string) map[string]bool {
	tainted := map[string]bool{}
	for _, s := range seed {
		if s != "_" {
			tainted[s] = true
		}
	}
	mentionsTaint := func(e ast.Expr) bool {
		hit := false
		ast.Inspect(e, func(n ast.Node) bool {
			if expr, ok := n.(ast.Expr); ok {
				if _, isRank := isRankExpr(expr); isRank {
					hit = true
				}
			}
			if id, ok := n.(*ast.Ident); ok && tainted[id.Name] {
				hit = true
			}
			return !hit
		})
		return hit
	}
	markLHS := func(lhs ast.Expr) {
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			tainted[id.Name] = true
		}
	}
	for pass := 0; pass < 4; pass++ {
		before := len(tainted)
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				anyTaint := false
				for _, rhs := range x.Rhs {
					if mentionsTaint(rhs) {
						anyTaint = true
					}
				}
				if anyTaint {
					for _, lhs := range x.Lhs {
						markLHS(lhs)
					}
				}
			case *ast.RangeStmt:
				if mentionsTaint(x.X) {
					if x.Key != nil {
						markLHS(x.Key)
					}
					if x.Value != nil {
						markLHS(x.Value)
					}
				}
			}
			return true
		})
		if len(tainted) == before {
			break
		}
	}
	return tainted
}

// analyzeDoSections checks a par.Do call: each section closure runs
// exactly once, so a captured write is a race only when two different
// sections write the same target (variable, field, pointee, or map).
// Writing disjoint fields of one struct from sibling sections — the
// kd-tree's n.left / n.right build — is fine.
func analyzeDoSections(u *Unit, r *reporter, call *ast.CallExpr) {
	type site struct {
		section int
		pos     token.Pos
	}
	writes := map[string][]site{}

	section := 0
	for _, a := range call.Args {
		lit, ok := a.(*ast.FuncLit)
		if !ok {
			continue
		}
		if closureTakesLock(lit) {
			section++
			continue
		}
		captured := func(id *ast.Ident) bool {
			if id.Name == "_" {
				return false
			}
			if id.Obj == nil {
				return true
			}
			decl, ok := id.Obj.Decl.(ast.Node)
			if !ok {
				return false
			}
			return decl.Pos() < lit.Pos() || decl.Pos() >= lit.End()
		}
		record := func(lhs ast.Expr, pos token.Pos) {
			switch x := lhs.(type) {
			case *ast.Ident:
				if captured(x) {
					writes["var "+x.Name] = append(writes["var "+x.Name], site{section, pos})
				}
			case *ast.SelectorExpr:
				if base, ok := x.X.(*ast.Ident); ok && captured(base) {
					key := "field " + base.Name + "." + x.Sel.Name
					writes[key] = append(writes[key], site{section, pos})
				}
			case *ast.IndexExpr:
				if base, ok := x.X.(*ast.Ident); ok && captured(base) {
					key := "element of " + base.Name
					writes[key] = append(writes[key], site{section, pos})
				}
			case *ast.StarExpr:
				if base, ok := x.X.(*ast.Ident); ok && captured(base) {
					key := "pointee of " + base.Name
					writes[key] = append(writes[key], site{section, pos})
				}
			}
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false // nested literals are their own scope
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if x.Tok == token.DEFINE {
						if id, ok := lhs.(*ast.Ident); ok && !captured(id) {
							continue
						}
					}
					record(lhs, x.Pos())
				}
			case *ast.IncDecStmt:
				record(x.X, x.Pos())
			}
			return true
		})
		section++
	}

	for key, sites := range writes {
		first := sites[0].section
		for _, s := range sites[1:] {
			if s.section != first {
				r.report("capture", s.pos,
					"par.Do sections both write captured %s: sections run concurrently — give each section its own target or merge after Do", key)
				break
			}
		}
	}
}
