package analysis

import (
	"go/ast"
	"go/types"
)

// This file holds the helpers shared by the performance-and-determinism
// rule family (hotalloc, rolledcoll, nondet): payload facts extracted
// from the communication summaries, and small syntactic predicates over
// payload and peer expressions. The family rides the same machinery as
// the ownership engine — the call graph, the per-function summaries and
// their Effect.Payload facts — so a buffer that escapes into a send
// three helpers away is visible at the original call site.

// sentFact records that a callee forwards a parameter into communication.
type sentFact struct {
	op   string
	coll bool
}

// payloadFacts extracts, from a function's communication summary, the
// parameters it forwards into a send or collective payload — the spliced
// fact that lets `forward(c, buf)` stand in for the send itself at the
// call site. Memoized on the unit; the ownership engine and the perf
// rules share one build.
func (u *Unit) payloadFacts(fd *ast.FuncDecl) map[string]sentFact {
	if u.sentFacts == nil {
		u.sentFacts = map[*ast.FuncDecl]map[string]sentFact{}
	}
	if facts, ok := u.sentFacts[fd]; ok {
		return facts
	}
	params := paramSet(fd)
	out := map[string]sentFact{}
	var walk func(effs []Effect)
	walk = func(effs []Effect) {
		for _, ef := range effs {
			if (ef.Kind == EffSend || ef.Kind == EffColl) && ef.Payload != "" && params[ef.Payload] {
				if _, dup := out[ef.Payload]; !dup {
					out[ef.Payload] = sentFact{op: ef.Op, coll: ef.Kind == EffColl}
				}
			}
			walk(ef.Body)
			for _, arm := range ef.Arms {
				walk(arm)
			}
		}
	}
	walk(u.summaries().funcSummary(fd).Effects)
	u.sentFacts[fd] = out
	return out
}

// commPayload returns the payload argument of a direct communication
// call — a point-to-point send or a payload-carrying collective — with
// the operation name. Calls that merely share a name with the cluster
// vocabulary are rejected by the clusterCall gate.
func commPayload(u *Unit, call *ast.CallExpr) (ast.Expr, string, bool) {
	if !u.clusterCall(call) {
		return nil, "", false
	}
	if cc, ok := asCollective(call); ok {
		if i := collPayloadIndex(cc.name); i >= 0 && i < len(call.Args) {
			return call.Args[i], cc.name, true
		}
		return nil, "", false
	}
	switch name := commCallName(call); name {
	case "Send", "SendSub", "SendRecv":
		if len(call.Args) == 4 {
			return call.Args[3], name, true
		}
	}
	return nil, "", false
}

// mentionsIdent reports whether the node mentions an identifier by name
// (function literals excluded: a mention inside a closure is not a
// mention at this program point).
func mentionsIdent(n ast.Node, name string) bool {
	if n == nil || name == "" {
		return false
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := x.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return true
	})
	return found
}

// pkgSel matches a package-qualified call (pkg.Fn(...)) and returns the
// package and function names. With type info the base identifier must
// resolve to an imported package; without it the spelling decides — the
// lenient degrade every type-consulting rule uses.
func (u *Unit) pkgSel(call *ast.CallExpr) (pkg, fn string, ok bool) {
	sel, isSel := unwrapCallFun(call).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	if u.info != nil {
		if _, isPkg := u.info.Uses[id].(*types.PkgName); !isPkg {
			return "", "", false
		}
	}
	return id.Name, sel.Sel.Name, true
}
