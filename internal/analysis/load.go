package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one parsed package (all files sharing a package name in one
// directory). Test files form their own unit when they use the _test
// package name; in-package _test.go files are analyzed with the package.
type Unit struct {
	Dir   string // directory holding the files
	Rel   string // Dir relative to the load root, slash-separated
	Name  string // package name
	Fset  *token.FileSet
	Files []*ast.File

	cfg        Config
	allowLines map[string]map[int]map[string]bool // file -> line -> rules

	typesOnce bool
	info      *types.Info
	typesPkg  *types.Package
}

// Load expands the given patterns into package units. A pattern ending in
// "/..." walks the directory tree; anything else is a single directory.
// Directories named testdata, vendor, out or starting with "." or "_" are
// skipped, as the go tool does.
func Load(patterns []string) ([]*Unit, error) {
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		root := strings.TrimSuffix(pat, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
		if !strings.HasSuffix(pat, "...") {
			if !seen[root] {
				seen[root] = true
				dirs = append(dirs, root)
			}
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(path)
			if path != root && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") ||
				base == "testdata" || base == "vendor" || base == "out" || base == "node_modules") {
				return filepath.SkipDir
			}
			if !seen[path] {
				seen[path] = true
				dirs = append(dirs, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	var units []*Unit
	for _, dir := range dirs {
		us, err := loadDir(fset, dir)
		if err != nil {
			return nil, err
		}
		units = append(units, us...)
	}
	return units, nil
}

// loadDir parses every .go file in dir and groups them by package name.
func loadDir(fset *token.FileSet, dir string) ([]*Unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byPkg := map[string][]*ast.File{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		name := f.Name.Name
		byPkg[name] = append(byPkg[name], f)
	}
	var names []string
	for name := range byPkg {
		names = append(names, name)
	}
	sort.Strings(names)
	var units []*Unit
	for _, name := range names {
		u := &Unit{
			Dir:        dir,
			Rel:        filepath.ToSlash(filepath.Clean(dir)),
			Name:       name,
			Fset:       fset,
			Files:      byPkg[name],
			allowLines: map[string]map[int]map[string]bool{},
		}
		for _, f := range u.Files {
			u.indexAllows(f)
		}
		units = append(units, u)
	}
	return units, nil
}
