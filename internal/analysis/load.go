package analysis

import (
	"go/ast"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one parsed package (all files sharing a package name in one
// directory). Test files form their own unit when they use the _test
// package name; in-package _test.go files are analyzed with the package.
type Unit struct {
	Dir   string // directory holding the files
	Rel   string // Dir relative to the load root, slash-separated
	Name  string // package name
	Fset  *token.FileSet
	Files []*ast.File

	// LoadErrs records files of this package that failed to parse, as
	// findings with the reserved rule "load". The package is still
	// analyzed with whatever parsed — a broken file must surface as a
	// diagnostic, not silently shrink the analysis.
	LoadErrs []Finding

	cfg        Config
	allowLines map[string]map[int]map[string]bool // file -> line -> rules

	sums *summarizer // interprocedural summaries, built on demand

	typesOnce bool
	info      *types.Info
	typesPkg  *types.Package
}

// Load expands the given patterns into package units. A pattern ending in
// "/..." walks the directory tree; anything else is a single directory.
// Directories named testdata, vendor, out or starting with "." or "_" are
// skipped, as the go tool does.
func Load(patterns []string) ([]*Unit, error) {
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		root := strings.TrimSuffix(pat, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
		if !strings.HasSuffix(pat, "...") {
			if !seen[root] {
				seen[root] = true
				dirs = append(dirs, root)
			}
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(path)
			if path != root && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") ||
				base == "testdata" || base == "vendor" || base == "out" || base == "node_modules") {
				return filepath.SkipDir
			}
			if !seen[path] {
				seen[path] = true
				dirs = append(dirs, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	var units []*Unit
	for _, dir := range dirs {
		us, err := loadDir(fset, dir)
		if err != nil {
			return nil, err
		}
		units = append(units, us...)
	}
	return units, nil
}

// loadDir parses every .go file in dir and groups them by package name.
// A file that fails to parse no longer aborts the load: its first error
// becomes a load-error finding on the directory's unit (a synthetic unit
// when nothing in the directory parses), the parsed remainder is analyzed
// normally, and the CLI maps the finding to exit code 2.
func loadDir(fset *token.FileSet, dir string) ([]*Unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byPkg := map[string][]*ast.File{}
	var loadErrs []Finding
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			loadErrs = append(loadErrs, loadErrFinding(path, err))
			continue
		}
		name := f.Name.Name
		byPkg[name] = append(byPkg[name], f)
	}
	var names []string
	for name := range byPkg {
		names = append(names, name)
	}
	sort.Strings(names)
	var units []*Unit
	for _, name := range names {
		u := &Unit{
			Dir:        dir,
			Rel:        filepath.ToSlash(filepath.Clean(dir)),
			Name:       name,
			Fset:       fset,
			Files:      byPkg[name],
			allowLines: map[string]map[int]map[string]bool{},
		}
		for _, f := range u.Files {
			u.indexAllows(f)
		}
		units = append(units, u)
	}
	if len(loadErrs) > 0 {
		if len(units) == 0 {
			units = append(units, &Unit{
				Dir:        dir,
				Rel:        filepath.ToSlash(filepath.Clean(dir)),
				Name:       "(unparsed)",
				Fset:       fset,
				allowLines: map[string]map[int]map[string]bool{},
			})
		}
		units[0].LoadErrs = append(units[0].LoadErrs, loadErrs...)
	}
	return units, nil
}

// loadErrFinding turns a parse error into a finding at the error's
// position (scanner errors carry one; anything else lands on line 1).
func loadErrFinding(path string, err error) Finding {
	pos := token.Position{Filename: path, Line: 1, Column: 1}
	if list, ok := err.(scanner.ErrorList); ok && len(list) > 0 {
		pos = list[0].Pos
		return Finding{Pos: pos, Rule: "load", Msg: "file does not parse: " + list[0].Msg}
	}
	return Finding{Pos: pos, Rule: "load", Msg: "file does not parse: " + err.Error()}
}
