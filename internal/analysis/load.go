package analysis

import (
	"go/ast"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one parsed package (all files sharing a package name in one
// directory). Test files form their own unit when they use the _test
// package name; in-package _test.go files are analyzed with the package.
type Unit struct {
	Dir   string // directory holding the files
	Rel   string // Dir relative to the load root, slash-separated
	Name  string // package name
	Fset  *token.FileSet
	Files []*ast.File

	// LoadErrs records files of this package that failed to parse, as
	// findings with the reserved rule "load". The package is still
	// analyzed with whatever parsed — a broken file must surface as a
	// diagnostic, not silently shrink the analysis.
	LoadErrs []Finding

	cfg        Config
	allowLines map[string]map[int]map[string]bool // file -> line -> rules

	sums *summarizer  // interprocedural summaries, built on demand
	muts *mutAnalyzer // parameter-mutation summaries, built on demand

	// sentFacts memoizes per-callee payload facts (perf.go), shared by
	// the ownership engine and the performance rules.
	sentFacts map[*ast.FuncDecl]map[string]sentFact

	wireCache map[types.Type]wireVerdict // encodability verdicts per type

	ownOnce  bool         // ownership dataflow ran (shared by two rules)
	ownFinds []ownFinding // its raw findings, filtered per enabled rule

	typesOnce bool
	info      *types.Info
	typesPkg  *types.Package
}

// Load expands the given patterns into package units. A pattern ending in
// "/..." walks the directory tree; anything else is a single directory.
// Directories named testdata, vendor, out or starting with "." or "_" are
// skipped, as the go tool does.
func Load(patterns []string) ([]*Unit, error) {
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		root := strings.TrimSuffix(pat, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
		if !strings.HasSuffix(pat, "...") {
			if !seen[root] {
				seen[root] = true
				dirs = append(dirs, root)
			}
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(path)
			if path != root && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") ||
				base == "testdata" || base == "vendor" || base == "out" || base == "node_modules") {
				return filepath.SkipDir
			}
			if !seen[path] {
				seen[path] = true
				dirs = append(dirs, path)
			}
			return nil
		})
		if err != nil {
			// An unwalkable root must not abort the whole run: the other
			// patterns' findings still matter (and in -json/-sarif mode an
			// aborted run would emit no document at all). Surface it as a
			// load finding on a synthetic unit; the CLI maps it to exit 2.
			if !seen[root] {
				seen[root] = true
				dirs = append(dirs, root)
			}
		}
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	var units []*Unit
	for _, dir := range dirs {
		units = append(units, loadDir(fset, dir)...)
	}
	return units, nil
}

// loadDir parses every .go file in dir and groups them by package name.
// Neither an unreadable directory nor a file that fails to parse aborts
// the load: the error becomes a load-error finding on the directory's
// unit (a synthetic unit when nothing in the directory parses), the
// parsed remainder is analyzed normally, and the CLI maps the finding to
// exit code 2 — so machine-readable modes always emit a document with
// every finding the run did produce.
func loadDir(fset *token.FileSet, dir string) []*Unit {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return []*Unit{{
			Dir:        dir,
			Rel:        filepath.ToSlash(filepath.Clean(dir)),
			Name:       "(unreadable)",
			Fset:       fset,
			allowLines: map[string]map[int]map[string]bool{},
			LoadErrs: []Finding{{
				Pos:  token.Position{Filename: filepath.ToSlash(dir), Line: 1, Column: 1},
				Rule: "load",
				Msg:  "directory is not readable: " + err.Error(),
			}},
		}}
	}
	byPkg := map[string][]*ast.File{}
	var loadErrs []Finding
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			loadErrs = append(loadErrs, loadErrFinding(path, err))
			continue
		}
		name := f.Name.Name
		byPkg[name] = append(byPkg[name], f)
	}
	var names []string
	for name := range byPkg {
		names = append(names, name)
	}
	sort.Strings(names)
	var units []*Unit
	for _, name := range names {
		u := &Unit{
			Dir:        dir,
			Rel:        filepath.ToSlash(filepath.Clean(dir)),
			Name:       name,
			Fset:       fset,
			Files:      byPkg[name],
			allowLines: map[string]map[int]map[string]bool{},
		}
		for _, f := range u.Files {
			u.indexAllows(f)
		}
		units = append(units, u)
	}
	if len(loadErrs) > 0 {
		if len(units) == 0 {
			units = append(units, &Unit{
				Dir:        dir,
				Rel:        filepath.ToSlash(filepath.Clean(dir)),
				Name:       "(unparsed)",
				Fset:       fset,
				allowLines: map[string]map[int]map[string]bool{},
			})
		}
		units[0].LoadErrs = append(units[0].LoadErrs, loadErrs...)
	}
	return units
}

// loadErrFinding turns a parse error into a finding at the error's
// position (scanner errors carry one; anything else lands on line 1).
func loadErrFinding(path string, err error) Finding {
	pos := token.Position{Filename: path, Line: 1, Column: 1}
	if list, ok := err.(scanner.ErrorList); ok && len(list) > 0 {
		pos = list[0].Pos
		return Finding{Pos: pos, Rule: "load", Msg: "file does not parse: " + list[0].Msg}
	}
	return Finding{Pos: pos, Rule: "load", Msg: "file does not parse: " + err.Error()}
}
