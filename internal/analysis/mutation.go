package analysis

import (
	"go/ast"
	"go/token"
)

// This file builds per-function mutation summaries: the set of parameters
// (including the receiver) a function may write through — element or
// field stores, copy/append into the backing array, or handing the
// parameter to another unit-local function that does any of the above.
// The ownership rule consults these at call sites so a buffer that is
// mutated three helpers away from its Send is still caught.

// mutWrite describes one way a function writes through a parameter.
type mutWrite struct {
	pos  token.Pos
	path []string // call chain below this function ("" for direct writes)
}

// mutAnalyzer memoizes mutation summaries over the unit's call graph.
type mutAnalyzer struct {
	u        *Unit
	cg       *callGraph
	cache    map[*ast.FuncDecl]map[string]mutWrite
	building map[*ast.FuncDecl]bool
}

// mutations returns (building if needed) the unit's mutation analyzer.
// It shares the summarizer's call graph so both interprocedural engines
// agree on resolution.
func (u *Unit) mutations() *mutAnalyzer {
	if u.muts == nil {
		u.muts = &mutAnalyzer{
			u:        u,
			cg:       u.summaries().cg,
			cache:    map[*ast.FuncDecl]map[string]mutWrite{},
			building: map[*ast.FuncDecl]bool{},
		}
	}
	return u.muts
}

// mutatedParams returns the parameter/receiver names fd may write
// through. Recursion is cut at the back-edge (a recursive call
// contributes nothing new — its direct writes are already collected).
func (m *mutAnalyzer) mutatedParams(fd *ast.FuncDecl) map[string]mutWrite {
	if w, ok := m.cache[fd]; ok {
		return w
	}
	if m.building[fd] {
		return nil
	}
	m.building[fd] = true
	writes := map[string]mutWrite{}
	params := paramSet(fd)
	// alias maps locals introduced by `x := p` / `x := p[a:b]` back to the
	// parameter they view.
	alias := map[string]string{}
	toParam := func(e ast.Expr) (string, bool) {
		base, ok := baseIdent(e)
		if !ok {
			return "", false
		}
		if p, ok := alias[base]; ok {
			return p, true
		}
		if params[base] {
			return base, true
		}
		return "", false
	}
	record := func(e ast.Expr, pos token.Pos, path []string) {
		if p, ok := toParam(e); ok {
			if _, dup := writes[p]; !dup {
				writes[p] = mutWrite{pos: pos, path: path}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				switch l := lhs.(type) {
				case *ast.Ident:
					if x.Tok == token.DEFINE && i < len(x.Rhs) {
						// x := p or x := p[a:b] aliases the parameter.
						if p, ok := toParam(stripSliceIndex(x.Rhs[i])); ok {
							alias[l.Name] = p
						}
					}
					// p = append(p, ...) grows through the caller's array
					// when capacity allows — a write the caller can see.
					if params[l.Name] && i < len(x.Rhs) && isAppendOf(x.Rhs[i], l.Name) {
						record(l, x.Pos(), nil)
					}
				case *ast.IndexExpr, *ast.StarExpr, *ast.SelectorExpr:
					record(l, x.Pos(), nil)
				}
			}
		case *ast.IncDecStmt:
			switch x.X.(type) {
			case *ast.IndexExpr, *ast.StarExpr, *ast.SelectorExpr:
				record(x.X, x.Pos(), nil)
			}
		case *ast.CallExpr:
			if name, ok := callFunIdent(x); ok && name == "copy" && len(x.Args) == 2 {
				record(x.Args[0], x.Pos(), nil)
				return true
			}
			// A communication call is an effect, not a mutation edge.
			if _, isColl := asCollective(x); isColl || commCallName(x) != "" && isCommName(commCallName(x)) {
				return true
			}
			callee := m.cg.resolve(x)
			if callee == nil || callee == fd {
				return true
			}
			sub := m.mutatedParams(callee)
			if len(sub) == 0 {
				return true
			}
			for idx, pname := range orderedParams(callee) {
				w, writesIt := sub[pname]
				if !writesIt {
					continue
				}
				if arg, ok := callArg(x, callee, idx); ok {
					record(arg, x.Pos(), append([]string{callee.Name.Name}, w.path...))
				}
			}
		}
		return true
	})
	delete(m.building, fd)
	m.cache[fd] = writes
	return writes
}

// orderedParams lists a declaration's receiver (first, when present) and
// parameter names in positional order.
func orderedParams(fd *ast.FuncDecl) []string {
	var out []string
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		out = append(out, fd.Recv.List[0].Names[0].Name)
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			out = append(out, name.Name)
		}
	}
	return out
}

// callArg maps a position in orderedParams(callee) to the corresponding
// argument expression at this call site (the receiver maps to the
// selector base of a method call).
func callArg(call *ast.CallExpr, callee *ast.FuncDecl, idx int) (ast.Expr, bool) {
	if callee.Recv != nil && len(callee.Recv.List) > 0 && len(callee.Recv.List[0].Names) > 0 {
		if idx == 0 {
			if sel, ok := unwrapCallFun(call).(*ast.SelectorExpr); ok {
				return sel.X, true
			}
			return nil, false
		}
		idx--
	}
	if idx < len(call.Args) {
		return call.Args[idx], true
	}
	return nil, false
}

// baseIdent walks index/slice/star/selector/paren chains down to the
// root identifier: buf[i], *p, g.Cells[0], (xs)[1:] all root at their
// leftmost name.
func baseIdent(e ast.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name, true
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				e = x.X
				continue
			}
			return "", false
		default:
			return "", false
		}
	}
}

// stripSliceIndex unwraps one level of slicing/indexing so `p[2:6]` and
// `p[i]` alias p for mutation purposes.
func stripSliceIndex(e ast.Expr) ast.Expr {
	switch x := e.(type) {
	case *ast.SliceExpr:
		return x.X
	case *ast.IndexExpr:
		return x.X
	case *ast.ParenExpr:
		return stripSliceIndex(x.X)
	}
	return e
}

// isAppendOf reports whether e is `append(name, ...)`.
func isAppendOf(e ast.Expr, name string) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := callFunIdent(call)
	if !ok || fn != "append" || len(call.Args) == 0 {
		return false
	}
	id, ok := call.Args[0].(*ast.Ident)
	return ok && id.Name == name
}

// callFunIdent returns the bare identifier a call invokes, if any.
func callFunIdent(call *ast.CallExpr) (string, bool) {
	if id, ok := unwrapCallFun(call).(*ast.Ident); ok {
		return id.Name, true
	}
	return "", false
}

// isCommName reports whether a name belongs to the point-to-point
// communication vocabulary (collectives are classified separately).
func isCommName(name string) bool {
	switch name {
	case "Send", "SendSub", "SendRecv", "Recv", "RecvFrom", "RecvSub", "TryRecv":
		return true
	}
	return false
}
