package analysis

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenSummaries pins the communication-summary builder's output on
// the summary fixture: symbolic parameters, call splicing with constant
// binding, divergent branches and rank-dependent loops all render to the
// exact golden strings below.
func TestGoldenSummaries(t *testing.T) {
	units, err := Load([]string{filepath.Join("testdata", "src", "summary")})
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 {
		t.Fatalf("expected 1 unit, got %d", len(units))
	}
	golden := map[string]string{
		"helperSend": "Send[t=$tag d=$dst]",
		"sendData":   "Send@helperSend[t=7 d=2]",
		"phase":      "branch(rank){[Bcast] [Bcast]}; loop(rank-trips){Send[t=7 d=?]}",
	}
	got := map[string]string{}
	for _, sum := range SummarizeUnit(units[0]) {
		got[sum.Name] = FormatEffects(sum.Effects)
	}
	for name, want := range golden {
		if got[name] != want {
			t.Errorf("summary of %s:\n got %q\nwant %q", name, got[name], want)
		}
	}
}

// TestInterproceduralCatchesWhatIntraMisses is the acceptance check for
// the protocol engine: the bad protocol fixture is invisible to the
// intraprocedural rules but caught once calls are expanded, and the
// diagnostics carry the call path.
func TestInterproceduralCatchesWhatIntraMisses(t *testing.T) {
	dir := fixtureDir("protocol")
	units, err := Load([]string{dir})
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.Rules = map[string]bool{"collective": true, "sendrecv": true}
	if fs := Analyze(units[0], cfg); len(fs) != 0 {
		t.Fatalf("intraprocedural rules unexpectedly see the bug: %v", fs[0])
	}

	cfg.Rules = map[string]bool{"protocol": true}
	findings := Analyze(units[0], cfg)
	if len(findings) == 0 {
		t.Fatal("protocol rule found nothing in the bad fixture")
	}
	withPath := false
	for _, f := range findings {
		if strings.Contains(f.Msg, "via ") {
			withPath = true
		}
	}
	if !withPath {
		t.Errorf("no finding carries a call-path diagnostic: %v", findings)
	}
}

// TestSuppressionPerRule proves //peachyvet:allow works for every
// registered rule: each fixture is copied to a temp tree with an allow
// directive inserted above every WANT line, after which the rule must
// report nothing.
func TestSuppressionPerRule(t *testing.T) {
	for _, rule := range AllRules {
		t.Run(rule, func(t *testing.T) {
			src := fixtureDir(rule)
			// rawgo only polices internal/ packages, so the copy keeps that
			// path segment.
			dst := filepath.Join(t.TempDir(), "internal", "fix")
			if err := os.MkdirAll(dst, 0o755); err != nil {
				t.Fatal(err)
			}
			entries, err := os.ReadDir(src)
			if err != nil {
				t.Fatal(err)
			}
			marker := "// WANT " + rule
			for _, e := range entries {
				if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
					continue
				}
				data, err := os.ReadFile(filepath.Join(src, e.Name()))
				if err != nil {
					t.Fatal(err)
				}
				var out []string
				for _, line := range strings.Split(string(data), "\n") {
					if strings.Contains(line, marker) {
						out = append(out, "//peachyvet:allow "+rule)
					}
					out = append(out, line)
				}
				if err := os.WriteFile(filepath.Join(dst, e.Name()), []byte(strings.Join(out, "\n")), 0o644); err != nil {
					t.Fatal(err)
				}
			}

			units, err := Load([]string{dst})
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.Rules = map[string]bool{rule: true}
			for _, u := range units {
				for _, f := range Analyze(u, cfg) {
					t.Errorf("finding survived //peachyvet:allow %s: %s", rule, f)
				}
			}
		})
	}
}

// TestLoadErrors checks that a file that fails to parse becomes a "load"
// finding (the valid remainder still analyzed) and drives exit code 2.
func TestLoadErrors(t *testing.T) {
	dir := filepath.Join("testdata", "src", "loaderr")
	units, err := Load([]string{dir})
	if err != nil {
		t.Fatalf("Load aborted on a parse error: %v", err)
	}
	if len(units) != 1 {
		t.Fatalf("expected 1 unit, got %d", len(units))
	}
	findings := Analyze(units[0], DefaultConfig())
	loadErrs := 0
	for _, f := range findings {
		if f.Rule == "load" {
			loadErrs++
			if filepath.Base(f.Pos.Filename) != "broken.go" {
				t.Errorf("load error attributed to wrong file: %s", f)
			}
		}
	}
	if loadErrs == 0 {
		t.Fatalf("no load finding for broken.go; findings: %v", findings)
	}

	var out, errb bytes.Buffer
	if code := Main([]string{"-q", dir}, &out, &errb); code != 2 {
		t.Errorf("Main(%s) = %d, want 2 (load error)\nstdout: %s", dir, code, out.String())
	}
}

// TestJSONOutput checks the -json mode: an array of findings with stable
// ids and the documented fields.
func TestJSONOutput(t *testing.T) {
	dir := fixtureDir("protocol")
	var out1, out2, errb bytes.Buffer
	if code := Main([]string{"-json", dir}, &out1, &errb); code != 1 {
		t.Fatalf("Main(-json %s) = %d, want 1\nstderr: %s", dir, code, errb.String())
	}
	if code := Main([]string{"-json", dir}, &out2, &errb); code != 1 {
		t.Fatal("second run disagreed on exit code")
	}
	if out1.String() != out2.String() {
		t.Error("-json output is not stable across runs")
	}
	var findings []map[string]any
	if err := json.Unmarshal(out1.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v", err)
	}
	if len(findings) == 0 {
		t.Fatal("-json produced an empty array on a bad fixture")
	}
	for _, f := range findings {
		for _, key := range []string{"id", "rule", "file", "line", "column", "message"} {
			if _, ok := f[key]; !ok {
				t.Errorf("finding missing %q: %v", key, f)
			}
		}
		if id, _ := f["id"].(string); !strings.HasPrefix(id, "PV-") {
			t.Errorf("finding id %q does not look stable", f["id"])
		}
	}

	// A clean package yields [] and exit 0.
	out1.Reset()
	if code := Main([]string{"-json", "."}, &out1, &errb); code != 0 {
		t.Fatalf("Main(-json .) = %d, want 0", code)
	}
	if strings.TrimSpace(out1.String()) != "[]" {
		t.Errorf("clean -json output = %q, want []", out1.String())
	}
}

// TestSARIFOutput checks the -sarif mode against the SARIF 2.1.0 shape:
// schema/version header, tool driver with a rule table, and results with
// ruleId, message text and a physical location.
func TestSARIFOutput(t *testing.T) {
	dir := fixtureDir("deadlock")
	var out, errb bytes.Buffer
	if code := Main([]string{"-sarif", dir}, &out, &errb); code != 1 {
		t.Fatalf("Main(-sarif %s) = %d, want 1\nstderr: %s", dir, code, errb.String())
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				PartialFingerprints map[string]string `json:"partialFingerprints"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("-sarif output is not JSON: %v", err)
	}
	if !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("$schema = %q, want a sarif-2.1.0 schema URI", log.Schema)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("expected 1 run, got %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "peachyvet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no description", r.ID)
		}
	}
	for _, name := range append(append([]string{}, AllRules...), "load") {
		if !ruleIDs[name] {
			t.Errorf("driver rule table missing %q", name)
		}
	}
	if len(run.Results) == 0 {
		t.Fatal("no results on a bad fixture")
	}
	for _, res := range run.Results {
		if res.RuleID == "" || res.Message.Text == "" || res.Level == "" {
			t.Errorf("result missing ruleId/message/level: %+v", res)
		}
		if len(res.Locations) != 1 {
			t.Errorf("result has %d locations, want 1", len(res.Locations))
			continue
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || loc.Region.StartLine < 1 || loc.Region.StartColumn < 1 {
			t.Errorf("result location malformed: %+v", loc)
		}
		if !strings.HasPrefix(res.PartialFingerprints["peachyvetId"], "PV-") {
			t.Errorf("result missing stable fingerprint: %+v", res.PartialFingerprints)
		}
	}
}

// BenchmarkLoadAnalyzeRepo measures a full load+analyze pass over the
// repository — the cost the tier-1 gate pays on every run.
func BenchmarkLoadAnalyzeRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		units, err := Load([]string{"../../..."})
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for _, u := range units {
			total += len(Analyze(u, DefaultConfig()))
		}
		if total != 0 {
			b.Fatalf("repo not clean: %d findings", total)
		}
	}
}
