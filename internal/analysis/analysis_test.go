package analysis

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureDir maps a rule to its fixture package. rawgo lives under an
// internal/ segment on purpose: the rule only polices internal packages.
func fixtureDir(rule string) string {
	if rule == "rawgo" {
		return filepath.Join("testdata", "src", "internal", "rawgo")
	}
	return filepath.Join("testdata", "src", rule)
}

// wantMarkers scans a fixture directory for `// WANT <rule>` line markers
// and returns the expected finding sites as "file.go:line" keys.
func wantMarkers(t *testing.T, dir, rule string) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	marker := "// WANT " + rule
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if strings.Contains(sc.Text(), marker) {
				want[fmt.Sprintf("%s:%d", e.Name(), line)] = true
			}
		}
		f.Close()
	}
	if len(want) == 0 {
		t.Fatalf("no %q markers under %s — fixture broken", marker, dir)
	}
	return want
}

// TestRulesAgainstFixtures runs each rule alone over its fixture package:
// enabled, findings must land exactly on the WANT-marked lines (bad.go);
// disabled, the same fixture must produce nothing — so a silently
// neutered rule fails its test.
func TestRulesAgainstFixtures(t *testing.T) {
	for _, rule := range AllRules {
		t.Run(rule, func(t *testing.T) {
			dir := fixtureDir(rule)
			units, err := Load([]string{dir})
			if err != nil {
				t.Fatal(err)
			}
			if len(units) != 1 {
				t.Fatalf("expected 1 unit in %s, got %d", dir, len(units))
			}

			cfg := DefaultConfig()
			cfg.Rules = map[string]bool{rule: true}
			findings := Analyze(units[0], cfg)

			want := wantMarkers(t, dir, rule)
			got := map[string]bool{}
			for _, f := range findings {
				if f.Rule != rule {
					t.Errorf("finding from disabled rule: %s", f)
					continue
				}
				key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
				got[key] = true
				if !want[key] {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for key := range want {
				if !got[key] {
					t.Errorf("missing finding at %s", key)
				}
			}

			cfg.Rules = map[string]bool{} // non-nil and empty: all rules off
			if fs := Analyze(units[0], cfg); len(fs) != 0 {
				t.Errorf("rule disabled but still reported %d finding(s): %v", len(fs), fs[0])
			}
		})
	}
}

// TestRepositoryIsClean is the self-test: the real repo must come up
// clean under every rule (fixtures are under testdata and skipped).
func TestRepositoryIsClean(t *testing.T) {
	units, err := Load([]string{"../../..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(units) < 10 {
		t.Fatalf("only %d units loaded from the repo root — load is broken", len(units))
	}
	for _, u := range units {
		for _, f := range Analyze(u, DefaultConfig()) {
			t.Errorf("repo not clean: %s", f)
		}
	}
}

// TestSuppressionDirective checks //peachyvet:allow end to end: the
// rawgo good fixture contains a justified raw go statement.
func TestSuppressionDirective(t *testing.T) {
	dir := fixtureDir("rawgo")
	units, err := Load([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Rules = map[string]bool{"rawgo": true}
	for _, f := range Analyze(units[0], cfg) {
		if filepath.Base(f.Pos.Filename) == "good.go" {
			t.Errorf("suppressed site still reported: %s", f)
		}
	}
}

// TestMainExitCodes drives the shared CLI entry point: 1 on each bad
// fixture, 0 on a clean package, 2 on usage errors.
func TestMainExitCodes(t *testing.T) {
	badDirs := []string{
		fixtureDir("collective"),
		fixtureDir("sendrecv"),
		fixtureDir("protocol"),
		fixtureDir("deadlock"),
		fixtureDir("useaftersend"),
		fixtureDir("recvalias"),
		fixtureDir("wiresafe"),
		fixtureDir("hotalloc"),
		fixtureDir("rolledcoll"),
		fixtureDir("nondet"),
		fixtureDir("capture"),
		fixtureDir("lockcopy"),
		fixtureDir("rawgo"),
	}
	for _, dir := range badDirs {
		var out, errb bytes.Buffer
		if code := Main([]string{dir}, &out, &errb); code != 1 {
			t.Errorf("Main(%s) = %d, want 1\nstdout: %s\nstderr: %s", dir, code, out.String(), errb.String())
		}
	}

	var out, errb bytes.Buffer
	if code := Main([]string{"-q", "."}, &out, &errb); code != 0 {
		t.Errorf("Main(.) = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}

	if code := Main([]string{"-rules", "nosuchrule", "."}, &out, &errb); code != 2 {
		t.Errorf("Main(-rules nosuchrule) = %d, want 2", code)
	}

	// Rule selection narrows the exit contract: the hotalloc fixture is
	// clean under nondet alone but dirty under hotalloc alone.
	out.Reset()
	errb.Reset()
	if code := Main([]string{"-rules", "nondet", "-q", fixtureDir("hotalloc")}, &out, &errb); code != 0 {
		t.Errorf("Main(-rules nondet, hotalloc fixture) = %d, want 0\nstdout: %s", code, out.String())
	}
	if code := Main([]string{"-rules", "hotalloc", "-q", fixtureDir("hotalloc")}, &out, &errb); code != 1 {
		t.Errorf("Main(-rules hotalloc, hotalloc fixture) = %d, want 1", code)
	}

	// -stats keeps the exit contract and reports per-rule counts.
	out.Reset()
	errb.Reset()
	if code := Main([]string{"-stats", "-rules", "rolledcoll", fixtureDir("rolledcoll")}, &out, &errb); code != 1 {
		t.Errorf("Main(-stats, rolledcoll fixture) = %d, want 1\nstderr: %s", code, errb.String())
	}
	var st Stats
	if err := json.Unmarshal(out.Bytes(), &st); err != nil {
		t.Fatalf("-stats output is not JSON: %v\n%s", err, out.String())
	}
	if st.Packages != 1 || st.Findings == 0 || st.Rules["rolledcoll"] != st.Findings {
		t.Errorf("-stats = %+v, want all findings under rolledcoll in 1 package", st)
	}
	if _, ok := st.Rules["nondet"]; !ok {
		t.Errorf("-stats omits zero-count rules: %+v", st.Rules)
	}

	if code := Main([]string{"-stats", "-json", "."}, &out, &errb); code != 2 {
		t.Errorf("Main(-stats -json) = %d, want 2", code)
	}
}
