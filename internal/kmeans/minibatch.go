package kmeans

import "repro/internal/prng"

// MiniBatch runs mini-batch K-means (Sculley's web-scale variant): each
// iteration samples batch points, assigns them to their nearest centroid,
// and nudges each centroid toward its assigned sample points with a
// per-centroid learning rate of 1/count. The result approaches full
// K-means quality at a fraction of the per-iteration cost — the natural
// next step after the assignment when n outgrows memory bandwidth.
//
// The final Assign is a full assignment pass against the learned
// centroids, so Result.WCSS is directly comparable to Run's.
func MiniBatch(points [][]float64, opts Options, batch, iters int) *Result {
	n := len(points)
	if n == 0 {
		return &Result{Converged: true}
	}
	opts.defaults(n)
	if batch <= 0 {
		batch = 256
	}
	if batch > n {
		batch = n
	}
	if iters <= 0 {
		iters = 100
	}
	dim := len(points[0])

	var cents [][]float64
	if opts.Init == PlusPlusInit {
		cents = initPlusPlus(points, opts.K, opts.Seed)
	} else {
		cents = initCentroids(points, opts.K, opts.Seed)
	}
	counts := make([]float64, opts.K)
	r := prng.New(opts.Seed ^ 0xabcdef)

	var ci centIndex
	for it := 0; it < iters; it++ {
		// Sample the batch and cache assignments. Centroids moved last
		// iteration, so refresh the index first.
		ci.rebuild(cents)
		idx := make([]int, batch)
		assign := make([]int, batch)
		for b := 0; b < batch; b++ {
			idx[b] = r.Intn(n)
			assign[b] = ci.nearest(points[idx[b]])
		}
		// Per-centroid gradient step.
		for b := 0; b < batch; b++ {
			c := assign[b]
			counts[c]++
			eta := 1 / counts[c]
			cent := cents[c]
			p := points[idx[b]]
			for d := 0; d < dim; d++ {
				cent[d] = (1-eta)*cent[d] + eta*p[d]
			}
		}
	}

	// Full final assignment.
	ci.rebuild(cents)
	full := make([]int, n)
	for i, p := range points {
		full[i] = ci.nearest(p)
	}
	return &Result{
		Centroids:  cents,
		Assign:     full,
		Iterations: iters,
		Converged:  true,
	}
}

// QualityGap returns (approx - exact) / exact for two results' WCSS over
// the same points — the relative quality loss of an approximation.
func QualityGap(points [][]float64, approx, exact *Result) float64 {
	e := exact.WCSS(points)
	if e == 0 {
		return 0
	}
	return (approx.WCSS(points) - e) / e
}
