// Package kmeans implements the K-means clustering assignment (paper §3):
// a sequential baseline plus the three shared-memory parallelisation
// strategies of the assignment's four-stage ladder — critical sections,
// atomic operations, and private-copy reductions — and a distributed
// version whose update phase is a single Allreduce, the formulation the
// paper reports students found natural in MPI.
//
// The main loop matches the assignment's starter code: (1) re-assign each
// point to its closest centroid, tracking the number of cluster changes;
// (2) recompute each centroid as the mean of its points; terminate on an
// iteration cap, a cluster-changes threshold, or a maximum centroid
// displacement threshold.
package kmeans

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/linalg"
	"repro/internal/par"
	"repro/internal/prng"
)

// Strategy selects how the shared accumulators of both phases are updated
// in parallel.
type Strategy int

const (
	// Sequential runs the textbook serial loops.
	Sequential Strategy = iota
	// Critical guards shared sums with one mutex (ladder stage 2).
	Critical
	// Atomic updates shared sums with lock-free atomics (stage 3).
	Atomic
	// Reduction keeps private per-worker sums merged at the end
	// (stage 4).
	Reduction
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Sequential:
		return "sequential"
	case Critical:
		return "critical"
	case Atomic:
		return "atomic"
	case Reduction:
		return "reduction"
	}
	return "unknown"
}

// Options configures a clustering run.
type Options struct {
	// K is the number of clusters.
	K int
	// MaxIter caps the number of iterations (default 100).
	MaxIter int
	// MinChanges stops the loop once an iteration re-assigns at most
	// this many points (default 0: run until no point moves).
	MinChanges int
	// MaxMove stops the loop once no centroid moves farther than this
	// Euclidean distance in one iteration (default 1e-9).
	MaxMove float64
	// Seed drives the random initial centroid choice.
	Seed uint64
	// Workers is the parallel width (<= 0: GOMAXPROCS).
	Workers int
	// Strategy selects the parallelisation strategy.
	Strategy Strategy
	// Init selects the initial-centroid strategy (default RandomInit).
	Init Init
}

func (o *Options) defaults(n int) {
	if o.K < 1 {
		o.K = 1
	}
	if o.K > n {
		o.K = n
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.MaxMove <= 0 {
		o.MaxMove = 1e-9
	}
}

// Result is the outcome of a clustering run.
type Result struct {
	// Centroids are the final cluster centers (K x dim).
	Centroids [][]float64
	// Assign maps each point to its cluster.
	Assign []int
	// Iterations is how many update iterations ran.
	Iterations int
	// ChangesPerIter records the cluster-changes counter per iteration.
	ChangesPerIter []int
	// Converged is false if MaxIter stopped the loop.
	Converged bool
}

// WCSS returns the within-cluster sum of squared distances — the
// objective K-means minimises — for the given points under this result.
func (r *Result) WCSS(points [][]float64) float64 {
	s := 0.0
	for i, p := range points {
		s += linalg.SqDist(p, r.Centroids[r.Assign[i]])
	}
	return s
}

// initCentroids picks K distinct random points as starting centroids, as
// in the assignment's starter code.
func initCentroids(points [][]float64, k int, seed uint64) [][]float64 {
	r := prng.New(seed)
	perm := r.Perm(len(points))
	cents := make([][]float64, k)
	for c := 0; c < k; c++ {
		cents[c] = append([]float64(nil), points[perm[c]]...)
	}
	return cents
}

// Run clusters points with the configured strategy.
func Run(points [][]float64, opts Options) *Result {
	n := len(points)
	if n == 0 {
		return &Result{Converged: true}
	}
	opts.defaults(n)
	dim := len(points[0])
	var cents [][]float64
	if opts.Init == PlusPlusInit {
		cents = initPlusPlus(points, opts.K, opts.Seed)
	} else {
		cents = initCentroids(points, opts.K, opts.Seed)
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	res := &Result{Assign: assign}

	for it := 0; it < opts.MaxIter; it++ {
		changes := assignPhase(points, cents, assign, opts)
		sums, counts := updatePhase(points, assign, opts.K, dim, opts)

		// New centroid positions; empty clusters keep their centroid.
		maxMove := 0.0
		for c := 0; c < opts.K; c++ {
			if counts[c] == 0 {
				continue
			}
			move := 0.0
			for d := 0; d < dim; d++ {
				nv := sums[c*dim+d] / float64(counts[c])
				diff := nv - cents[c][d]
				move += diff * diff
				cents[c][d] = nv
			}
			if m := math.Sqrt(move); m > maxMove {
				maxMove = m
			}
		}

		res.Iterations++
		res.ChangesPerIter = append(res.ChangesPerIter, changes)
		if changes <= opts.MinChanges || maxMove <= opts.MaxMove {
			res.Converged = true
			break
		}
	}
	res.Centroids = cents
	return res
}

// centIndex is a scratch view of the centroids, rebuilt once per
// iteration: the rows flattened into one contiguous buffer plus
// per-centroid squared norms. nearest scores centroid c as
// ||c||² − 2·p·c, which has the same argmin as the squared distance
// ||p − c||² (the ||p||² term is constant per point) but needs a third
// fewer flops and one function call per point instead of one per
// centroid. Ties still break toward the lower index. Every K-means
// variant (sequential, shared-memory, distributed) assigns through
// this kernel, so cross-variant comparisons stay self-consistent.
type centIndex struct {
	dim  int
	k    int
	flat []float64 // len k*dim, row-major centroid coordinates
	norm []float64 // len k, squared norms
	// Register-kernel layout, built when k <= nearestLanes: the
	// transposed coordinates padded to a fixed nearestLanes columns per
	// dimension, with unused lanes' norms at +Inf so they never win.
	t8 []float64 // len dim*nearestLanes
	n8 [nearestLanes]float64
}

// nearestLanes is the lane count of the register-resident argmin
// kernel; larger K falls back to the row-major scan.
const nearestLanes = 8

// rebuild refreshes the index from the current centroid positions,
// reusing the buffers from the previous iteration.
func (ci *centIndex) rebuild(cents [][]float64) {
	k := len(cents)
	ci.k = k
	if k == 0 {
		ci.dim, ci.flat, ci.norm = 0, ci.flat[:0], ci.norm[:0]
		return
	}
	ci.dim = len(cents[0])
	if cap(ci.flat) < k*ci.dim {
		ci.flat = make([]float64, k*ci.dim)
		ci.norm = make([]float64, k)
	}
	ci.flat = ci.flat[:k*ci.dim]
	ci.norm = ci.norm[:k]
	for c, cent := range cents {
		copy(ci.flat[c*ci.dim:(c+1)*ci.dim], cent)
		s := 0.0
		for _, v := range cent {
			s += v * v
		}
		ci.norm[c] = s
	}
	if k > nearestLanes {
		ci.t8 = ci.t8[:0]
		return
	}
	if cap(ci.t8) < ci.dim*nearestLanes {
		ci.t8 = make([]float64, ci.dim*nearestLanes)
	}
	ci.t8 = ci.t8[:ci.dim*nearestLanes]
	for i := range ci.t8 {
		ci.t8[i] = 0
	}
	for i := range ci.n8 {
		ci.n8[i] = math.Inf(1)
	}
	for c, cent := range cents {
		ci.n8[c] = ci.norm[c]
		for d, v := range cent {
			ci.t8[d*nearestLanes+c] = v
		}
	}
}

// nearest returns the closest centroid index for p. Safe for concurrent
// use by multiple workers between rebuilds.
//
// For K ≤ nearestLanes the kernel walks dimensions in the outer loop
// against the padded transposed layout, keeping all K running scores in
// registers: the inner statements are independent multiply-adds, so the
// loop is throughput-bound instead of serialised on one floating-point
// add chain per centroid. Padded lanes start at +Inf and accumulate
// zeros, so they never win the argmin.
func (ci *centIndex) nearest(p []float64) int {
	if ci.k > nearestLanes {
		return ci.nearestRowwise(p)
	}
	a0, a1, a2, a3 := ci.n8[0], ci.n8[1], ci.n8[2], ci.n8[3]
	a4, a5, a6, a7 := ci.n8[4], ci.n8[5], ci.n8[6], ci.n8[7]
	t8 := ci.t8
	off := 0
	for _, pv := range p[:ci.dim] {
		m := -2 * pv
		row := t8[off : off+nearestLanes]
		a0 += m * row[0]
		a1 += m * row[1]
		a2 += m * row[2]
		a3 += m * row[3]
		a4 += m * row[4]
		a5 += m * row[5]
		a6 += m * row[6]
		a7 += m * row[7]
		off += nearestLanes
	}
	best, bs := 0, a0
	if a1 < bs {
		best, bs = 1, a1
	}
	if a2 < bs {
		best, bs = 2, a2
	}
	if a3 < bs {
		best, bs = 3, a3
	}
	if a4 < bs {
		best, bs = 4, a4
	}
	if a5 < bs {
		best, bs = 5, a5
	}
	if a6 < bs {
		best, bs = 6, a6
	}
	if a7 < bs {
		best = 7
	}
	return best
}

// nearestRowwise is the large-K fallback: one dot product per centroid
// against the row-major layout.
func (ci *centIndex) nearestRowwise(p []float64) int {
	best, bestScore := 0, math.Inf(1)
	dim := ci.dim
	p = p[:dim]
	off := 0
	for c := range ci.norm {
		row := ci.flat[off : off+dim]
		var s0, s1 float64
		i := 0
		for ; i+1 < len(row); i += 2 {
			s0 += p[i] * row[i]
			s1 += p[i+1] * row[i+1]
		}
		if i < len(row) {
			s0 += p[i] * row[i]
		}
		if score := ci.norm[c] - 2*(s0+s1); score < bestScore {
			best, bestScore = c, score
		}
		off += dim
	}
	return best
}

// assignPhase re-assigns points and returns the number of changes. The
// write race on assign is benign (each worker owns its indices); the
// update race on the changes counter is the one the strategies resolve.
func assignPhase(points [][]float64, cents [][]float64, assign []int, opts Options) int {
	n := len(points)
	var ci centIndex
	ci.rebuild(cents)
	switch opts.Strategy {
	case Sequential:
		changes := 0
		for i := 0; i < n; i++ {
			c := ci.nearest(points[i])
			if c != assign[i] {
				changes++
				assign[i] = c
			}
		}
		return changes
	case Critical:
		acc := par.NewCriticalAccumulator(0, 1)
		par.For(n, opts.Workers, func(i int) {
			c := ci.nearest(points[i])
			if c != assign[i] {
				assign[i] = c
				acc.AddCount(0, 1)
			}
		})
		return int(acc.Counts()[0])
	case Atomic:
		acc := par.NewAtomicAccumulator(0, 1)
		par.For(n, opts.Workers, func(i int) {
			c := ci.nearest(points[i])
			if c != assign[i] {
				assign[i] = c
				acc.AddCount(0, 1)
			}
		})
		return int(acc.Count(0))
	default: // Reduction
		return par.Reduce(n, opts.Workers,
			func() int { return 0 },
			func(acc int, i int) int {
				c := ci.nearest(points[i])
				if c != assign[i] {
					assign[i] = c
					return acc + 1
				}
				return acc
			},
			func(a, b int) int { return a + b })
	}
}

// updatePhase accumulates per-cluster coordinate sums and counts — the
// load-balance- and race-heavy phase the assignment highlights.
func updatePhase(points [][]float64, assign []int, k, dim int, opts Options) ([]float64, []int64) {
	n := len(points)
	switch opts.Strategy {
	case Sequential:
		sums := make([]float64, k*dim)
		counts := make([]int64, k)
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			base := c * dim
			for d, v := range points[i] {
				sums[base+d] += v
			}
		}
		return sums, counts
	case Critical:
		acc := par.NewCriticalAccumulator(k*dim, k)
		par.For(n, opts.Workers, func(i int) {
			c := assign[i]
			acc.Update(func(sums []float64, counts []int64) {
				counts[c]++
				base := c * dim
				for d, v := range points[i] {
					sums[base+d] += v
				}
			})
		})
		return acc.Sums(), acc.Counts()
	case Atomic:
		acc := par.NewAtomicAccumulator(k*dim, k)
		par.For(n, opts.Workers, func(i int) {
			c := assign[i]
			acc.AddCount(c, 1)
			base := c * dim
			for d, v := range points[i] {
				acc.AddSum(base+d, v)
			}
		})
		sums := make([]float64, k*dim)
		counts := make([]int64, k)
		for i := range sums {
			sums[i] = acc.Sum(i)
		}
		for c := range counts {
			counts[c] = acc.Count(c)
		}
		return sums, counts
	default: // Reduction
		type partial struct {
			sums   []float64
			counts []int64
		}
		p := par.Reduce(n, opts.Workers,
			func() partial {
				return partial{make([]float64, k*dim), make([]int64, k)}
			},
			func(acc partial, i int) partial {
				c := assign[i]
				acc.counts[c]++
				base := c * dim
				for d, v := range points[i] {
					acc.sums[base+d] += v
				}
				return acc
			},
			func(a, b partial) partial {
				for i := range a.sums {
					a.sums[i] += b.sums[i]
				}
				for i := range a.counts {
					a.counts[i] += b.counts[i]
				}
				return a
			})
		return p.sums, p.counts
	}
}

// RunDistributed clusters points across a cluster.World: points are
// scattered block-wise, every rank assigns its local block, and the update
// phase is one Allreduce of (sums, counts, changes) — after which every
// rank updates its replicated centroids identically. The full Result
// (with the gathered global assignment) is returned.
//
// On a multi-process world (net device) each process returns its local
// rank's Result: centroids, iteration counts and convergence are
// replicated — identical on every rank — but the gathered global Assign
// lands only on rank 0, so non-lead processes get a Result with Assign
// nil. Gate WCSS/assignment consumers on world.Lead().
func RunDistributed(world *cluster.World, points [][]float64, opts Options) (*Result, error) {
	n := len(points)
	if n == 0 {
		return &Result{Converged: true}, nil
	}
	opts.defaults(n)
	dim := len(points[0])
	k := opts.K

	results := make([]*Result, world.Size())
	err := world.Run(func(c *cluster.Comm) {
		// Scatter the points (root parses "the database file"; everyone
		// receives its block, as in the assignment's data distribution).
		var parts [][][]float64
		if c.Rank() == 0 {
			parts = cluster.SplitEven(points, c.Size())
		}
		local := cluster.Scatter(c, 0, parts)

		// Root chooses initial centroids; broadcast them.
		var cents [][]float64
		if c.Rank() == 0 {
			if opts.Init == PlusPlusInit {
				cents = initPlusPlus(points, k, opts.Seed)
			} else {
				cents = initCentroids(points, k, opts.Seed)
			}
		}
		cents = cluster.Bcast(c, 0, cents)
		// Deep-copy: Bcast shares the backing arrays in-process, and
		// every rank updates its replica.
		mine := make([][]float64, k)
		for i := range cents {
			mine[i] = append([]float64(nil), cents[i]...)
		}
		cents = mine

		assign := make([]int, len(local))
		for i := range assign {
			assign[i] = -1
		}
		iterations := 0
		var changesPerIter []int
		converged := false

		var ci centIndex
		buf := make([]float64, k*dim+k+1) // sums | counts | changes
		for it := 0; it < opts.MaxIter; it++ {
			// Local assignment + local partial sums. The reduction buffer
			// is hoisted out of the loop and zeroed per iteration:
			// Allreduce snapshots its payload, so the argument is free for
			// reuse as soon as the call returns.
			ci.rebuild(cents)
			for i := range buf {
				buf[i] = 0
			}
			for i, p := range local {
				cl := ci.nearest(p)
				if cl != assign[i] {
					assign[i] = cl
					buf[k*dim+k]++
				}
				base := cl * dim
				for d, v := range p {
					buf[base+d] += v
				}
				buf[k*dim+cl]++
			}
			// One distributed reduction for everything.
			red := cluster.Allreduce(c, buf, cluster.SumFloat64s)

			maxMove := 0.0
			for cl := 0; cl < k; cl++ {
				cnt := red[k*dim+cl]
				if cnt == 0 {
					continue
				}
				move := 0.0
				for d := 0; d < dim; d++ {
					nv := red[cl*dim+d] / cnt
					diff := nv - cents[cl][d]
					move += diff * diff
					cents[cl][d] = nv
				}
				if m := math.Sqrt(move); m > maxMove {
					maxMove = m
				}
			}
			changes := int(red[k*dim+k])
			iterations++
			changesPerIter = append(changesPerIter, changes)
			if changes <= opts.MinChanges || maxMove <= opts.MaxMove {
				converged = true
				break
			}
		}

		// Gather assignments back to root; every rank records its
		// (replicated) view so a non-root process of a multi-process
		// world still returns the shared outcome.
		gathered := cluster.Gather(c, 0, assign)
		res := &Result{
			Centroids:      cents,
			Iterations:     iterations,
			ChangesPerIter: changesPerIter,
			Converged:      converged,
		}
		if c.Rank() == 0 {
			full := make([]int, 0, n)
			for _, g := range gathered {
				full = append(full, g...)
			}
			res.Assign = full
		}
		results[c.Rank()] = res
	})
	if err != nil {
		return nil, err
	}
	mine := 0
	if world.Launched() {
		mine = world.LocalRank()
	}
	if results[mine] == nil {
		return nil, fmt.Errorf("kmeans: distributed run produced no result")
	}
	return results[mine], nil
}
