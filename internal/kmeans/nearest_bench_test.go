package kmeans

import (
	"testing"

	"repro/internal/dataio"
)

// BenchmarkNearest times one full assignment sweep (20000 points, K=8,
// d=8 — the C4 benchmark shape) through the centroid index: the
// register-resident lane kernel against the row-major fallback.
func BenchmarkNearest(b *testing.B) {
	ds := dataio.GaussianMixture(444, 20000, 4, 8, 3.0)
	cents := initCentroids(ds.Points, 8, 5)
	var ci centIndex
	ci.rebuild(cents)
	var sink int
	b.Run("lanes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range ds.Points {
				sink += ci.nearest(p)
			}
		}
	})
	b.Run("rowwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range ds.Points {
				sink += ci.nearestRowwise(p)
			}
		}
	})
	_ = sink
}
