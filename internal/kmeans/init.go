package kmeans

import (
	"repro/internal/linalg"
	"repro/internal/prng"
)

// Init selects the initial-centroid strategy.
type Init int

const (
	// RandomInit picks K distinct random points (the assignment's
	// starter-code behaviour).
	RandomInit Init = iota
	// PlusPlusInit is k-means++ (Arthur & Vassilvitskii): each next
	// centroid is drawn with probability proportional to its squared
	// distance from the nearest centroid chosen so far. One of the
	// "further optimizations" the assignment invites.
	PlusPlusInit
)

// String names the init strategy.
func (i Init) String() string {
	if i == PlusPlusInit {
		return "kmeans++"
	}
	return "random"
}

// initPlusPlus returns K centroids via the k-means++ seeding rule,
// deterministic per seed.
func initPlusPlus(points [][]float64, k int, seed uint64) [][]float64 {
	r := prng.New(seed)
	n := len(points)
	cents := make([][]float64, 0, k)
	cents = append(cents, append([]float64(nil), points[r.Intn(n)]...))

	// minD2[i] is the squared distance from point i to its nearest
	// chosen centroid; updated incrementally as centroids are added.
	minD2 := make([]float64, n)
	total := 0.0
	for i, p := range points {
		minD2[i] = linalg.SqDist(p, cents[0])
		total += minD2[i]
	}
	for len(cents) < k {
		// Weighted draw; a degenerate all-zero distance field (all
		// points identical to some centroid) falls back to uniform.
		var next int
		if total <= 0 {
			next = r.Intn(n)
		} else {
			w := r.Float64() * total
			acc := 0.0
			next = n - 1
			for i, d := range minD2 {
				acc += d
				if acc >= w {
					next = i
					break
				}
			}
		}
		c := append([]float64(nil), points[next]...)
		cents = append(cents, c)
		for i, p := range points {
			if d := linalg.SqDist(p, c); d < minD2[i] {
				total -= minD2[i] - d
				minD2[i] = d
			}
		}
	}
	return cents
}
