package kmeans

import (
	"repro/internal/linalg"
	"repro/internal/par"
	"repro/internal/stats"
)

// SweepResult is the outcome for one candidate K in a model-selection
// sweep.
type SweepResult struct {
	K          int
	WCSS       float64
	Silhouette float64
	Iterations int
}

// SweepK clusters points for every K in ks (in parallel over Ks — each an
// independent task, like the HPO farm) and reports WCSS for the elbow
// method plus the mean silhouette on a bounded sample. It is the classic
// "how do I choose K?" classroom exercise on top of the assignment.
func SweepK(points [][]float64, ks []int, opts Options, sampleCap int) []SweepResult {
	if sampleCap <= 0 {
		sampleCap = 500
	}
	out := make([]SweepResult, len(ks))
	par.For(len(ks), opts.Workers, func(i int) {
		o := opts
		o.K = ks[i]
		// The sweep itself is the parallel axis; run each fit serially.
		o.Workers = 1
		o.Strategy = Sequential
		res := Run(points, o)

		// Silhouette on a deterministic sample (O(n^2) otherwise).
		n := len(points)
		stride := 1
		if n > sampleCap {
			stride = n / sampleCap
		}
		var sampleIdx []int
		for j := 0; j < n; j += stride {
			sampleIdx = append(sampleIdx, j)
		}
		assign := make([]int, len(sampleIdx))
		for j, idx := range sampleIdx {
			assign[j] = res.Assign[idx]
		}
		sil := stats.Silhouette(len(sampleIdx), o.K, assign, func(a, b int) float64 {
			return linalg.SqDist(points[sampleIdx[a]], points[sampleIdx[b]])
		})
		out[i] = SweepResult{K: o.K, WCSS: res.WCSS(points), Silhouette: sil, Iterations: res.Iterations}
	})
	return out
}

// BestKBySilhouette returns the sweep entry with the highest silhouette.
func BestKBySilhouette(results []SweepResult) SweepResult {
	best := results[0]
	for _, r := range results[1:] {
		if r.Silhouette > best.Silhouette {
			best = r
		}
	}
	return best
}
