package kmeans

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dataio"
	"repro/internal/linalg"
)

func blobs(seed uint64, n, dim, k int) *dataio.Dataset {
	return dataio.GaussianMixture(seed, n, dim, k, 1.5)
}

func TestSequentialRecoversClusters(t *testing.T) {
	ds := blobs(1, 900, 2, 3)
	res := Run(ds.Points, Options{K: 3, Seed: 5})
	if !res.Converged {
		t.Error("did not converge")
	}
	// Every recovered centroid must sit close to one true cluster mean:
	// compute per-label means and match.
	trueMeans := labelMeans(ds)
	for _, cent := range res.Centroids {
		best := math.Inf(1)
		for _, m := range trueMeans {
			if d := linalg.SqDist(cent, m); d < best {
				best = d
			}
		}
		if best > 1.0 {
			t.Errorf("centroid %v far from any true mean (d2=%v)", cent, best)
		}
	}
}

func labelMeans(ds *dataio.Dataset) [][]float64 {
	sums := make([][]float64, ds.Classes)
	counts := make([]int, ds.Classes)
	for i := range sums {
		sums[i] = make([]float64, ds.Dim)
	}
	for i, p := range ds.Points {
		l := ds.Labels[i]
		counts[l]++
		for d, v := range p {
			sums[l][d] += v
		}
	}
	for l := range sums {
		for d := range sums[l] {
			sums[l][d] /= float64(counts[l])
		}
	}
	return sums
}

func TestAllStrategiesAgree(t *testing.T) {
	ds := blobs(2, 1200, 3, 4)
	base := Run(ds.Points, Options{K: 4, Seed: 7, Strategy: Sequential})
	baseW := base.WCSS(ds.Points)
	for _, s := range []Strategy{Critical, Atomic, Reduction} {
		res := Run(ds.Points, Options{K: 4, Seed: 7, Strategy: s, Workers: 4})
		w := res.WCSS(ds.Points)
		if math.Abs(w-baseW)/baseW > 1e-6 {
			t.Errorf("strategy %v WCSS %v vs sequential %v", s, w, baseW)
		}
		if res.Iterations == 0 || !res.Converged {
			t.Errorf("strategy %v did not converge", s)
		}
	}
}

func TestChangesMonotoneTrend(t *testing.T) {
	// Cluster changes must hit zero (or MinChanges) at convergence.
	ds := blobs(3, 600, 2, 3)
	res := Run(ds.Points, Options{K: 3, Seed: 11})
	last := res.ChangesPerIter[len(res.ChangesPerIter)-1]
	if res.Converged && last > 0 {
		// Converged via MaxMove; acceptable, but changes should be tiny.
		if last > 10 {
			t.Errorf("converged with %d changes in final iteration", last)
		}
	}
	if res.ChangesPerIter[0] != 600 {
		t.Errorf("first iteration should assign every point: %d", res.ChangesPerIter[0])
	}
}

func TestMinChangesThreshold(t *testing.T) {
	ds := blobs(4, 500, 2, 4)
	strict := Run(ds.Points, Options{K: 4, Seed: 13, MinChanges: 0})
	loose := Run(ds.Points, Options{K: 4, Seed: 13, MinChanges: 100})
	if loose.Iterations > strict.Iterations {
		t.Errorf("loose threshold ran longer: %d vs %d", loose.Iterations, strict.Iterations)
	}
}

func TestMaxIterCap(t *testing.T) {
	ds := blobs(5, 500, 2, 5)
	res := Run(ds.Points, Options{K: 5, Seed: 17, MaxIter: 1})
	if res.Iterations != 1 {
		t.Errorf("iterations %d", res.Iterations)
	}
	if res.Converged {
		// One iteration can converge only if no point changed, which is
		// impossible from the -1 initial assignment.
		t.Error("claimed convergence after 1 forced iteration")
	}
}

func TestKClampedToN(t *testing.T) {
	pts := [][]float64{{1, 1}, {2, 2}}
	res := Run(pts, Options{K: 10, Seed: 1})
	if len(res.Centroids) != 2 {
		t.Errorf("centroids %d", len(res.Centroids))
	}
}

func TestEmptyInput(t *testing.T) {
	res := Run(nil, Options{K: 3})
	if !res.Converged || res.Iterations != 0 {
		t.Error("empty input mishandled")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	ds := blobs(6, 400, 2, 3)
	a := Run(ds.Points, Options{K: 3, Seed: 9})
	b := Run(ds.Points, Options{K: 3, Seed: 9})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed, different assignment")
		}
	}
}

func TestDistributedMatchesSequential(t *testing.T) {
	ds := blobs(7, 800, 3, 3)
	seq := Run(ds.Points, Options{K: 3, Seed: 21})
	for _, p := range []int{1, 2, 4, 5} {
		world := cluster.NewWorld(p)
		dist, err := RunDistributed(world, ds.Points, Options{K: 3, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dist.WCSS(ds.Points)-seq.WCSS(ds.Points))/seq.WCSS(ds.Points) > 1e-9 {
			t.Errorf("P=%d WCSS %v vs %v", p, dist.WCSS(ds.Points), seq.WCSS(ds.Points))
		}
		if len(dist.Assign) != ds.Len() {
			t.Errorf("P=%d assignment length %d", p, len(dist.Assign))
		}
		if dist.Iterations != seq.Iterations {
			t.Errorf("P=%d iterations %d vs %d", p, dist.Iterations, seq.Iterations)
		}
	}
}

func TestDistributedUsesAllreduceNotGatherPerIter(t *testing.T) {
	// Sanity on the communication pattern: bytes should scale with
	// K*dim per iteration, not with N.
	ds := blobs(8, 2000, 2, 3)
	world := cluster.NewWorld(4)
	res, err := RunDistributed(world, ds.Points, Options{K: 3, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	// Scatter ships ~N*dim*8 bytes once; per-iteration traffic is
	// K*(dim+1)+1 floats per Allreduce hop. Generous upper bound:
	scatterBytes := int64(2000 * 2 * 8 * 2)
	perIter := int64((3*(2+1)+1)*8) * int64(4*4) // buf * (hops per allreduce upper bound)
	gatherBytes := int64(2000 * 8 * 2)
	bound := scatterBytes + int64(res.Iterations)*perIter + gatherBytes + 4096
	if world.TotalBytes() > bound {
		t.Errorf("traffic %d exceeds expected bound %d", world.TotalBytes(), bound)
	}
}

func TestWCSSDecreasesOverIterations(t *testing.T) {
	// Run twice with iteration caps and verify the objective improves.
	ds := blobs(9, 700, 2, 4)
	short := Run(ds.Points, Options{K: 4, Seed: 31, MaxIter: 1})
	long := Run(ds.Points, Options{K: 4, Seed: 31, MaxIter: 50})
	if long.WCSS(ds.Points) > short.WCSS(ds.Points)+1e-9 {
		t.Errorf("more iterations made WCSS worse: %v vs %v",
			long.WCSS(ds.Points), short.WCSS(ds.Points))
	}
}

func TestStrategyNames(t *testing.T) {
	names := map[Strategy]string{Sequential: "sequential", Critical: "critical", Atomic: "atomic", Reduction: "reduction", Strategy(9): "unknown"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d -> %q", s, s.String())
		}
	}
}

func BenchmarkStrategies(b *testing.B) {
	ds := blobs(10, 20000, 4, 8)
	for _, s := range []Strategy{Sequential, Critical, Atomic, Reduction} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Run(ds.Points, Options{K: 8, Seed: 3, Strategy: s, MaxIter: 5})
			}
		})
	}
}

func TestPlusPlusInitProducesKDistinctCentroids(t *testing.T) {
	ds := blobs(11, 500, 3, 6)
	cents := initPlusPlus(ds.Points, 6, 3)
	if len(cents) != 6 {
		t.Fatalf("centroids %d", len(cents))
	}
	for i := 0; i < len(cents); i++ {
		for j := i + 1; j < len(cents); j++ {
			if linalg.SqDist(cents[i], cents[j]) == 0 {
				t.Errorf("centroids %d and %d identical", i, j)
			}
		}
	}
}

func TestPlusPlusDegenerateData(t *testing.T) {
	// All points identical: the uniform fallback must still return K
	// centroids without dividing by zero.
	pts := make([][]float64, 20)
	for i := range pts {
		pts[i] = []float64{1, 1}
	}
	cents := initPlusPlus(pts, 3, 1)
	if len(cents) != 3 {
		t.Fatalf("degenerate centroids %d", len(cents))
	}
}

func TestPlusPlusConvergesAtLeastAsWell(t *testing.T) {
	// Across several seeds, kmeans++ should on average need no more
	// iterations and reach no worse WCSS than random init.
	ds := blobs(12, 2000, 2, 8)
	var itRand, itPP, wRand, wPP float64
	const trials = 5
	for seed := uint64(0); seed < trials; seed++ {
		r := Run(ds.Points, Options{K: 8, Seed: seed, Init: RandomInit})
		p := Run(ds.Points, Options{K: 8, Seed: seed, Init: PlusPlusInit})
		itRand += float64(r.Iterations) / trials
		itPP += float64(p.Iterations) / trials
		wRand += r.WCSS(ds.Points) / trials
		wPP += p.WCSS(ds.Points) / trials
	}
	if wPP > wRand*1.05 {
		t.Errorf("kmeans++ WCSS %.0f notably worse than random %.0f", wPP, wRand)
	}
	t.Logf("iterations: random %.1f vs ++ %.1f; WCSS: random %.0f vs ++ %.0f",
		itRand, itPP, wRand, wPP)
}

func TestInitNames(t *testing.T) {
	if RandomInit.String() != "random" || PlusPlusInit.String() != "kmeans++" {
		t.Error("init names")
	}
}

func TestDistributedPlusPlusMatchesLocal(t *testing.T) {
	ds := blobs(13, 600, 2, 4)
	seq := Run(ds.Points, Options{K: 4, Seed: 9, Init: PlusPlusInit})
	world := cluster.NewWorld(3)
	dist, err := RunDistributed(world, ds.Points, Options{K: 4, Seed: 9, Init: PlusPlusInit})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist.WCSS(ds.Points)-seq.WCSS(ds.Points)) > 1e-9*seq.WCSS(ds.Points) {
		t.Error("distributed kmeans++ differs from sequential")
	}
}

func TestSweepKFindsTrueK(t *testing.T) {
	// 4 well-separated clusters: silhouette must peak at K=4.
	ds := blobs(21, 1200, 2, 4)
	results := SweepK(ds.Points, []int{2, 3, 4, 5, 6}, Options{Seed: 3}, 300)
	if len(results) != 5 {
		t.Fatalf("results %d", len(results))
	}
	best := BestKBySilhouette(results)
	if best.K != 4 {
		for _, r := range results {
			t.Logf("K=%d WCSS=%.0f sil=%.3f", r.K, r.WCSS, r.Silhouette)
		}
		t.Errorf("silhouette picked K=%d, want 4", best.K)
	}
	// WCSS must decrease monotonically in K (elbow method premise).
	for i := 1; i < len(results); i++ {
		if results[i].WCSS > results[i-1].WCSS*1.02 {
			t.Errorf("WCSS not decreasing: K=%d %.0f after K=%d %.0f",
				results[i].K, results[i].WCSS, results[i-1].K, results[i-1].WCSS)
		}
	}
}

func TestMiniBatchApproachesFullKMeans(t *testing.T) {
	ds := blobs(31, 20000, 3, 6)
	exact := Run(ds.Points, Options{K: 6, Seed: 7, Init: PlusPlusInit})
	approx := MiniBatch(ds.Points, Options{K: 6, Seed: 7, Init: PlusPlusInit}, 256, 150)
	gap := QualityGap(ds.Points, approx, exact)
	if gap > 0.25 {
		t.Errorf("mini-batch WCSS gap %.3f exceeds 25%%", gap)
	}
	if len(approx.Assign) != ds.Len() {
		t.Error("final assignment incomplete")
	}
	t.Logf("mini-batch quality gap: %.4f", gap)
}

func TestMiniBatchDeterministic(t *testing.T) {
	ds := blobs(32, 2000, 2, 3)
	a := MiniBatch(ds.Points, Options{K: 3, Seed: 5}, 128, 50)
	b := MiniBatch(ds.Points, Options{K: 3, Seed: 5}, 128, 50)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed differs")
		}
	}
}

func TestMiniBatchEdgeCases(t *testing.T) {
	if !MiniBatch(nil, Options{K: 3}, 10, 10).Converged {
		t.Error("empty input")
	}
	pts := [][]float64{{1}, {2}, {3}}
	res := MiniBatch(pts, Options{K: 2, Seed: 1}, 100, 10) // batch > n clamps
	if len(res.Centroids) != 2 {
		t.Error("centroid count")
	}
}

func BenchmarkMiniBatchVsFull(b *testing.B) {
	ds := blobs(33, 50000, 4, 8)
	b.Run("Full5Iter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Run(ds.Points, Options{K: 8, Seed: 3, MaxIter: 5})
		}
	})
	b.Run("MiniBatch150x256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MiniBatch(ds.Points, Options{K: 8, Seed: 3}, 256, 150)
		}
	})
}
