package heat

import (
	"bytes"
	"testing"
)

// FuzzReadField hammers the self-describing binary reader: arbitrary bytes
// must never panic or allocate absurdly; accepted fields round-trip.
func FuzzReadField(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteField(&seed, 0.25, 3, SinInit(16))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("HEATFLD\n"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		alpha, step, u, err := ReadField(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteField(&buf, alpha, step, u); err != nil {
			t.Fatalf("re-encode of accepted field failed: %v", err)
		}
		a2, s2, u2, err := ReadField(&buf)
		if err != nil || a2 != alpha || s2 != step || MaxAbsDiff(u, u2) != 0 {
			t.Fatal("accepted field does not round-trip")
		}
	})
}
