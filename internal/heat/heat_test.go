package heat

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/locale"
)

func sinProblem(n, steps int) Problem {
	return Problem{Alpha: 0.25, U0: SinInit(n), Steps: steps}
}

func TestValidate(t *testing.T) {
	bad := []Problem{
		{Alpha: 0.25, U0: []float64{1, 2}, Steps: 1},
		{Alpha: 0, U0: make([]float64, 10), Steps: 1},
		{Alpha: 0.75, U0: make([]float64, 10), Steps: 1},
		{Alpha: 0.25, U0: make([]float64, 10), Steps: -1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if sinProblem(10, 5).Validate() != nil {
		t.Error("valid problem rejected")
	}
}

func TestSerialMatchesAnalyticDecay(t *testing.T) {
	// The half-sine is an exact eigenmode of the discrete operator: after
	// nt steps every interior cell is multiplied by DecayFactor^nt.
	const n, steps = 101, 200
	p := sinProblem(n, steps)
	got, err := SolveSerial(p)
	if err != nil {
		t.Fatal(err)
	}
	lambda := math.Pow(DecayFactor(n, p.Alpha), steps)
	u0 := SinInit(n)
	for x := 0; x < n; x++ {
		want := u0[x] * lambda
		if math.Abs(got[x]-want) > 1e-10 {
			t.Fatalf("cell %d: %v want %v", x, got[x], want)
		}
	}
}

func TestBoundariesHeldFixed(t *testing.T) {
	u0 := make([]float64, 50)
	u0[0], u0[49] = 3.5, -1.25 // nonzero Dirichlet forcing
	for i := 1; i < 49; i++ {
		u0[i] = 0
	}
	got, err := SolveSerial(Problem{Alpha: 0.3, U0: u0, Steps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3.5 || got[49] != -1.25 {
		t.Errorf("boundaries moved: %v %v", got[0], got[49])
	}
	// Heat must have diffused inward from the hot boundary.
	if got[1] <= 0 {
		t.Error("no diffusion from hot boundary")
	}
	if got[1] < got[25] {
		t.Error("interior hotter than near-boundary")
	}
}

func TestSteadyStateIsLinearProfile(t *testing.T) {
	// With boundaries 0 and 1 the converged solution is the linear ramp.
	const n = 21
	u0 := make([]float64, n)
	u0[n-1] = 1
	got, err := SolveSerial(Problem{Alpha: 0.5, U0: u0, Steps: 20000})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < n; x++ {
		want := float64(x) / float64(n-1)
		if math.Abs(got[x]-want) > 1e-6 {
			t.Fatalf("steady state cell %d: %v want %v", x, got[x], want)
		}
	}
}

func TestLocalMatchesSerial(t *testing.T) {
	p := sinProblem(257, 100)
	want, _ := SolveSerial(p)
	for _, workers := range []int{1, 2, 3, 8} {
		got, err := SolveLocal(p, workers)
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxAbsDiff(got, want); d != 0 {
			t.Errorf("workers=%d diff %v", workers, d)
		}
	}
}

func TestForallMatchesSerial(t *testing.T) {
	p := sinProblem(200, 80)
	want, _ := SolveSerial(p)
	for _, nLoc := range []int{1, 2, 3, 5} {
		sys := locale.NewSystem(nLoc, 2)
		got, err := SolveForall(p, sys)
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxAbsDiff(got, want); d != 0 {
			t.Errorf("locales=%d diff %v", nLoc, d)
		}
	}
}

func TestCoforallMatchesSerial(t *testing.T) {
	p := sinProblem(200, 80)
	want, _ := SolveSerial(p)
	for _, nLoc := range []int{1, 2, 4, 7} {
		sys := locale.NewSystem(nLoc, 2)
		got, err := SolveCoforall(p, sys)
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxAbsDiff(got, want); d != 0 {
			t.Errorf("locales=%d diff %v", nLoc, d)
		}
	}
}

func TestCoforallRejectsTooManyLocales(t *testing.T) {
	sys := locale.NewSystem(10, 1)
	if _, err := SolveCoforall(sinProblem(5, 1), sys); err == nil {
		t.Error("accepted more locales than cells")
	}
}

func TestSolversAgreeProperty(t *testing.T) {
	f := func(seed uint64, nRaw, stepsRaw, locRaw uint8) bool {
		n := int(nRaw%100) + 10
		steps := int(stepsRaw % 30)
		nLoc := int(locRaw%4) + 1
		u0 := make([]float64, n)
		s := seed
		for i := range u0 {
			s = s*6364136223846793005 + 1442695040888963407
			u0[i] = float64(s%1000)/500 - 1
		}
		p := Problem{Alpha: 0.4, U0: u0, Steps: steps}
		serial, err := SolveSerial(p)
		if err != nil {
			return false
		}
		sys := locale.NewSystem(nLoc, 2)
		forall, err := SolveForall(p, sys)
		if err != nil {
			return false
		}
		coforall, err := SolveCoforall(p, sys)
		if err != nil {
			return false
		}
		return MaxAbsDiff(serial, forall) == 0 && MaxAbsDiff(serial, coforall) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestZeroSteps(t *testing.T) {
	p := sinProblem(10, 0)
	got, err := SolveSerial(p)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(got, SinInit(10)); d != 0 {
		t.Error("zero steps changed the field")
	}
}

func TestMaxAbsDiffLengthMismatch(t *testing.T) {
	if !math.IsInf(MaxAbsDiff([]float64{1}, []float64{1, 2}), 1) {
		t.Error("length mismatch should be +Inf")
	}
}

func TestEnergyDissipates(t *testing.T) {
	// With zero boundaries, the L2 norm must shrink monotonically.
	p := sinProblem(64, 0)
	u := append([]float64(nil), p.U0...)
	norm := func(xs []float64) float64 {
		s := 0.0
		for _, v := range xs {
			s += v * v
		}
		return s
	}
	prev := norm(u)
	for it := 0; it < 10; it++ {
		out, err := SolveSerial(Problem{Alpha: 0.25, U0: u, Steps: 10})
		if err != nil {
			t.Fatal(err)
		}
		cur := norm(out)
		if cur >= prev {
			t.Fatalf("energy grew at block %d: %v -> %v", it, prev, cur)
		}
		prev = cur
		u = out
	}
}

func BenchmarkForallVsCoforall(b *testing.B) {
	p := sinProblem(100000, 50)
	sys := locale.NewSystem(4, 1)
	b.Run("Forall", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveForall(p, sys); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Coforall", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveCoforall(p, sys); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveSerial(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}
