package heat

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestFieldRoundTrip(t *testing.T) {
	u := SinInit(257)
	var buf bytes.Buffer
	if err := WriteField(&buf, 0.25, 42, u); err != nil {
		t.Fatal(err)
	}
	alpha, step, got, err := ReadField(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if alpha != 0.25 || step != 42 || len(got) != 257 {
		t.Fatalf("header alpha=%v step=%d nx=%d", alpha, step, len(got))
	}
	if MaxAbsDiff(u, got) != 0 {
		t.Error("data corrupted in round trip")
	}
}

func TestFieldFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.heat")
	u, _ := SolveSerial(Problem{Alpha: 0.3, U0: SinInit(64), Steps: 10})
	if err := SaveField(path, 0.3, 10, u); err != nil {
		t.Fatal(err)
	}
	alpha, step, got, err := LoadField(path)
	if err != nil {
		t.Fatal(err)
	}
	if alpha != 0.3 || step != 10 || MaxAbsDiff(u, got) != 0 {
		t.Error("file round trip mismatch")
	}
}

func TestFieldRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("NOTHEAT\nxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")},
		{"truncated header", []byte("HEATFLD\n\x01\x00")},
	}
	for _, c := range cases {
		if _, _, _, err := ReadField(bytes.NewReader(c.data)); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestFieldRejectsTruncatedData(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteField(&buf, 0.25, 1, SinInit(100)); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-16]
	if _, _, _, err := ReadField(bytes.NewReader(cut)); err == nil {
		t.Error("truncated data accepted")
	}
}

func TestFieldRejectsNaN(t *testing.T) {
	u := SinInit(10)
	u[3] = math.NaN()
	var buf bytes.Buffer
	if err := WriteField(&buf, 0.25, 1, u); err != nil {
		t.Fatal(err)
	}
	_, _, _, err := ReadField(&buf)
	if err == nil || !strings.Contains(err.Error(), "NaN") {
		t.Errorf("NaN not rejected: %v", err)
	}
}

func TestFieldRejectsImplausibleSize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte("HEATFLD\n"))
	// version 1, alpha, absurd nx
	buf.Write([]byte{1, 0, 0, 0})
	buf.Write(make([]byte, 8)) // alpha = 0 bits
	buf.Write(make([]byte, 8)) // step
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0x7f})
	if _, _, _, err := ReadField(&buf); err == nil {
		t.Error("implausible size accepted")
	}
}

func TestFieldRejectsNonFiniteAlpha(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteField(&buf, math.NaN(), 1, SinInit(8)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadField(&buf); err == nil {
		t.Error("NaN alpha accepted")
	}
}
