package heat

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Field files are the course's "self-describing format" exercise (the
// paper's traffic assignment mentions adapting output to NetCDF): a small
// binary container that carries its own metadata, so a reader needs no
// out-of-band knowledge. Layout (little endian):
//
//	magic   [8]byte  "HEATFLD\n"
//	version uint32   (1)
//	alpha   float64
//	step    uint64   time step the snapshot was taken at
//	nx      uint64   cell count
//	data    nx * float64
type fieldHeader struct {
	Version uint32
	Alpha   float64
	Step    uint64
	NX      uint64
}

var fieldMagic = [8]byte{'H', 'E', 'A', 'T', 'F', 'L', 'D', '\n'}

// WriteField serialises a solution snapshot.
func WriteField(w io.Writer, alpha float64, step int, u []float64) error {
	if _, err := w.Write(fieldMagic[:]); err != nil {
		return err
	}
	h := fieldHeader{Version: 1, Alpha: alpha, Step: uint64(step), NX: uint64(len(u))}
	if err := binary.Write(w, binary.LittleEndian, h); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, u)
}

// ReadField parses a snapshot written by WriteField.
func ReadField(r io.Reader) (alpha float64, step int, u []float64, err error) {
	var magic [8]byte
	if _, err = io.ReadFull(r, magic[:]); err != nil {
		return 0, 0, nil, fmt.Errorf("heat: reading magic: %w", err)
	}
	if magic != fieldMagic {
		return 0, 0, nil, fmt.Errorf("heat: bad magic %q", magic)
	}
	var h fieldHeader
	if err = binary.Read(r, binary.LittleEndian, &h); err != nil {
		return 0, 0, nil, fmt.Errorf("heat: reading header: %w", err)
	}
	if h.Version != 1 {
		return 0, 0, nil, fmt.Errorf("heat: unsupported version %d", h.Version)
	}
	if h.NX > 1<<24 {
		return 0, 0, nil, fmt.Errorf("heat: implausible cell count %d", h.NX)
	}
	if math.IsNaN(h.Alpha) || math.IsInf(h.Alpha, 0) {
		return 0, 0, nil, fmt.Errorf("heat: non-finite alpha")
	}
	u = make([]float64, h.NX)
	if err = binary.Read(r, binary.LittleEndian, u); err != nil {
		return 0, 0, nil, fmt.Errorf("heat: reading data: %w", err)
	}
	for _, v := range u {
		if math.IsNaN(v) {
			return 0, 0, nil, fmt.Errorf("heat: field contains NaN")
		}
	}
	return h.Alpha, int(h.Step), u, nil
}

// SaveField writes a snapshot to a file.
func SaveField(path string, alpha float64, step int, u []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteField(f, alpha, step, u)
}

// LoadField reads a snapshot from a file.
func LoadField(path string) (alpha float64, step int, u []float64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, nil, err
	}
	defer f.Close()
	return ReadField(f)
}
