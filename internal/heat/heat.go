// Package heat solves the 1D heat equation assignment (paper §6) on the
// Chapel-like locale runtime, in the assignment's two styles:
//
//   - Forall (part 1): a Block-distributed array updated by a high-level
//     data-parallel loop that spawns fresh tasks every time step — simple,
//     but it pays task-creation overhead each step.
//   - Coforall (part 2): one persistent task per locale, each owning a
//     local chunk with ghost cells, synchronising through a reusable
//     barrier and exchanging edge values through a global array of halo
//     cells — more code, less overhead.
//
// The discretisation is the paper's explicit scheme with Dirichlet
// boundaries:
//
//	u⁽ⁿ⁺¹⁾[x] = u⁽ⁿ⁾[x] + α·(u⁽ⁿ⁾[x−1] − 2·u⁽ⁿ⁾[x] + u⁽ⁿ⁾[x+1])
package heat

import (
	"fmt"
	"math"

	"repro/internal/locale"
	"repro/internal/par"
)

// Problem is one solver instance. U0 includes the two boundary cells,
// which are held fixed (Dirichlet forcing values).
type Problem struct {
	// Alpha is the diffusion number α = k·Δt/Δx²; the explicit scheme is
	// stable for α <= 0.5.
	Alpha float64
	// U0 is the initial condition, length >= 3.
	U0 []float64
	// Steps is the number of time steps.
	Steps int
}

// Validate reports configuration errors.
func (p Problem) Validate() error {
	if len(p.U0) < 3 {
		return fmt.Errorf("heat: need at least 3 cells, got %d", len(p.U0))
	}
	if p.Alpha <= 0 || p.Alpha > 0.5 {
		return fmt.Errorf("heat: alpha %v outside stable range (0, 0.5]", p.Alpha)
	}
	if p.Steps < 0 {
		return fmt.Errorf("heat: negative step count")
	}
	return nil
}

// SinInit returns a half-sine initial condition over n cells with zero
// boundaries: the first eigenmode of the discrete operator, which decays
// by a known exact factor per step (see DecayFactor).
func SinInit(n int) []float64 {
	u := make([]float64, n)
	for i := range u {
		u[i] = math.Sin(math.Pi * float64(i) / float64(n-1))
	}
	u[0], u[n-1] = 0, 0
	return u
}

// DecayFactor returns the exact per-step decay of the SinInit mode under
// the discrete update: λ = 1 − 2α·(1 − cos(π/(n−1))).
func DecayFactor(n int, alpha float64) float64 {
	return 1 - 2*alpha*(1-math.Cos(math.Pi/float64(n-1)))
}

// SolveSerial is the reference solver (the non-distributed Example1).
func SolveSerial(p Problem) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.U0)
	u := append([]float64(nil), p.U0...)
	un := append([]float64(nil), p.U0...)
	for t := 0; t < p.Steps; t++ {
		u, un = un, u
		for x := 1; x < n-1; x++ {
			un[x] = u[x] + p.Alpha*(u[x-1]-2*u[x]+u[x+1])
		}
	}
	return un, nil
}

// SolveLocal is the shared-memory forall version: one node, the interior
// loop split over workers goroutines each step.
func SolveLocal(p Problem, workers int) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.U0)
	u := append([]float64(nil), p.U0...)
	un := append([]float64(nil), p.U0...)
	for t := 0; t < p.Steps; t++ {
		u, un = un, u
		// The un slice must be captured fresh per step after the swap.
		src, dst := u, un
		par.ForRange(n-2, workers, par.Static, 0, func(lo, hi, _ int) {
			for x := lo + 1; x < hi+1; x++ {
				dst[x] = src[x] + p.Alpha*(src[x-1]-2*src[x]+src[x+1])
			}
		})
	}
	return un, nil
}

// SolveForall is part 1's distributed solver: u and un are
// Block-distributed arrays over the system's locales, and every time step
// runs a distributed forall (fresh tasks per step) in which each locale
// updates its own block, reading neighbour cells through the global array
// (communication at the block edges).
func SolveForall(p Problem, sys *locale.System) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.U0)
	dist := sys.Block(locale.Dom(0, n))
	u := dist.NewArray()
	un := dist.NewArray()
	for i, v := range p.U0 {
		u.Set(i, v)
		un.Set(i, v)
	}
	for t := 0; t < p.Steps; t++ {
		u.Swap(un)
		dist.ForallBlock(func(loc *locale.Locale, ld locale.Domain) {
			chunk := un.Local(loc.ID)
			src := u.Local(loc.ID)
			for x := ld.Lo; x < ld.Hi; x++ {
				if x == 0 || x == n-1 {
					continue // Dirichlet boundary
				}
				li := x - ld.Lo
				var left, right float64
				if li > 0 {
					left = src[li-1]
				} else {
					left = u.At(x - 1) // remote read across the block edge
				}
				if li < ld.Size()-1 {
					right = src[li+1]
				} else {
					right = u.At(x + 1)
				}
				chunk[li] = src[li] + p.Alpha*(left-2*src[li]+right)
			}
		})
	}
	return un.ToSlice(), nil
}

// SolveCoforall is part 2's solver: Coforall spawns exactly one persistent
// task per locale (the on-statement placement). Each task copies its block
// plus two ghost cells into task-local storage, and every step (a) stores
// its edge values into its neighbours' halo cells in a shared global halo
// array, (b) waits on the barrier, (c) copies its own halo cells in and
// computes the update locally, (d) waits again before publishing the next
// edges. No tasks are created or destroyed inside the time loop.
func SolveCoforall(p Problem, sys *locale.System) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.U0)
	nLoc := sys.NumLocales()
	if n < nLoc {
		return nil, fmt.Errorf("heat: %d cells cannot feed %d locales' halo exchange", n, nLoc)
	}
	dist := sys.Block(locale.Dom(0, n))

	// Global halo arrays: haloFromLeft[l] is the cell value just left of
	// locale l's block (written by locale l-1); haloFromRight[l]
	// symmetrically.
	haloFromLeft := make([]float64, nLoc)
	haloFromRight := make([]float64, nLoc)
	bar := locale.NewBarrier(nLoc)
	result := make([]float64, n)

	locale.Coforall(nLoc, func(tid int) {
		ld := dist.LocalDomain(tid)
		size := ld.Size()
		// Local arrays with ghost cells at [0] and [size+1].
		u := make([]float64, size+2)
		un := make([]float64, size+2)
		for i := 0; i < size; i++ {
			u[i+1] = p.U0[ld.Lo+i]
			un[i+1] = p.U0[ld.Lo+i]
		}

		for t := 0; t < p.Steps; t++ {
			u, un = un, u
			if size > 0 {
				// (a) Publish edges into the neighbours' halo cells.
				if tid > 0 {
					haloFromRight[tid-1] = u[1]
				}
				if tid < nLoc-1 {
					haloFromLeft[tid+1] = u[size]
				}
			}
			bar.Wait()
			// (c) Pull halos and compute. Global boundary cells stay
			// fixed (Dirichlet).
			if size > 0 {
				if tid > 0 {
					u[0] = haloFromLeft[tid]
				}
				if tid < nLoc-1 {
					u[size+1] = haloFromRight[tid]
				}
				for li := 1; li <= size; li++ {
					x := ld.Lo + li - 1
					if x == 0 || x == n-1 {
						un[li] = u[li]
						continue
					}
					un[li] = u[li] + p.Alpha*(u[li-1]-2*u[li]+u[li+1])
				}
			}
			// (d) Everyone finishes computing before edges change.
			bar.Wait()
		}
		for i := 0; i < size; i++ {
			result[ld.Lo+i] = un[i+1]
		}
	})
	return result, nil
}

// MaxAbsDiff returns the largest absolute elementwise difference — the
// comparison metric of the solver equivalence tests.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	m := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}
