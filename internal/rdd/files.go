package rdd

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SaveAsTextDir writes the dataset Spark-style: a directory with one
// part-NNNNN file per partition plus a _SUCCESS marker. Downstream jobs
// re-read it with TextDir.
func SaveAsTextDir[T any](d *Dataset[T], dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	parts := collectParts(d)
	for p, part := range parts {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("part-%05d", p)))
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		for _, v := range part {
			if _, err := fmt.Fprintln(w, v); err != nil {
				f.Close()
				return err
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return os.WriteFile(filepath.Join(dir, "_SUCCESS"), nil, 0o644)
}

// TextDir reads a directory written by SaveAsTextDir (or any directory of
// part-* files), one partition per file, in part order. It refuses
// directories without the _SUCCESS marker (a half-written output).
func TextDir(ctx *Context, dir string) (*Dataset[string], error) {
	if _, err := os.Stat(filepath.Join(dir, "_SUCCESS")); err != nil {
		return nil, fmt.Errorf("rdd: %s has no _SUCCESS marker: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "part-") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return Parallelize(ctx, []string(nil), 1), nil
	}
	parts := make([][]string, len(names))
	for p, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			parts[p] = append(parts[p], sc.Text())
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	return newDataset(ctx, len(parts), func(p int) []string { return parts[p] }), nil
}
