package rdd

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"testing/quick"
)

func TestAggregate(t *testing.T) {
	ctx := NewContext()
	d := Parallelize(ctx, ints(100), 7)
	sum := Aggregate(d,
		func() int { return 0 },
		func(a, v int) int { return a + v },
		func(a, b int) int { return a + b })
	if sum != 4950 {
		t.Errorf("aggregate sum %d", sum)
	}
}

func TestCountByValue(t *testing.T) {
	ctx := NewContext()
	d := Parallelize(ctx, []string{"a", "b", "a", "c", "a"}, 3)
	m := CountByValue(d)
	if m["a"] != 3 || m["b"] != 1 || m["c"] != 1 {
		t.Errorf("counts %v", m)
	}
}

func TestCountByKey(t *testing.T) {
	ctx := NewContext()
	d := Parallelize(ctx, []Pair[int, string]{{1, "x"}, {2, "y"}, {1, "z"}}, 2)
	m := CountByKey(d)
	if m[1] != 2 || m[2] != 1 {
		t.Errorf("counts %v", m)
	}
}

func TestCoalesce(t *testing.T) {
	ctx := NewContext()
	d := Parallelize(ctx, ints(100), 10)
	c := Coalesce(d, 3)
	if c.NumPartitions() != 3 {
		t.Errorf("parts %d", c.NumPartitions())
	}
	got := Collect(c)
	if len(got) != 100 {
		t.Fatalf("len %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d", i)
		}
	}
	// Coalescing up is a no-op.
	if Coalesce(d, 20) != d {
		t.Error("coalesce up should return the receiver")
	}
	if Coalesce(d, 0).NumPartitions() != 1 {
		t.Error("coalesce to <1 should clamp to 1")
	}
}

func TestCoalescePreservesAllProperty(t *testing.T) {
	f := func(n uint8, from, to uint8) bool {
		ctx := NewContext()
		nn := int(n)
		f := int(from%10) + 1
		tt := int(to%10) + 1
		d := Coalesce(Parallelize(ctx, ints(nn), f), tt)
		got := Collect(d)
		if len(got) != nn {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZip(t *testing.T) {
	ctx := NewContext()
	a := Parallelize(ctx, []string{"x", "y", "z"}, 2)
	b := Parallelize(ctx, []int{10, 20, 30}, 3)
	z := Collect(Zip(a, b))
	if len(z) != 3 {
		t.Fatalf("zip len %d", len(z))
	}
	for i, p := range z {
		if p.Key != i || p.Value.Right != (i+1)*10 {
			t.Errorf("zip[%d] = %+v", i, p)
		}
	}
}

func TestZipLengthMismatchPanics(t *testing.T) {
	ctx := NewContext()
	a := Parallelize(ctx, ints(3), 1)
	b := Parallelize(ctx, ints(4), 1)
	defer func() {
		if recover() == nil {
			t.Error("mismatched zip did not panic")
		}
	}()
	Collect(Zip(a, b))
}

func TestMinMaxSumMean(t *testing.T) {
	ctx := NewContext()
	d := Parallelize(ctx, []float64{3, 1, 4, 1, 5}, 2)
	less := func(a, b float64) bool { return a < b }
	if m, ok := Max(d, less); !ok || m != 5 {
		t.Errorf("max %v %v", m, ok)
	}
	if m, ok := Min(d, less); !ok || m != 1 {
		t.Errorf("min %v %v", m, ok)
	}
	if s := SumFloat64(d); s != 14 {
		t.Errorf("sum %v", s)
	}
	if m := MeanFloat64(d); m != 2.8 {
		t.Errorf("mean %v", m)
	}
	empty := Parallelize(ctx, []float64{}, 2)
	if _, ok := Max(empty, less); ok {
		t.Error("empty max ok")
	}
	if MeanFloat64(empty) != 0 {
		t.Error("empty mean")
	}
}

func BenchmarkPipelineOps(b *testing.B) {
	ctx := NewContext()
	data := ints(100000)
	b.Run("MapFilterCollect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := Parallelize(ctx, data, 8)
			sq := Map(d, func(x int) int { return x * x })
			ev := Filter(sq, func(x int) bool { return x%2 == 0 })
			Count(ev)
		}
	})
	b.Run("ReduceByKey", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := Parallelize(ctx, data, 8)
			pairs := Map(d, func(x int) Pair[int, int] { return Pair[int, int]{x % 1000, 1} })
			Count(ReduceByKey(pairs, func(a, b int) int { return a + b }))
		}
	})
	b.Run("Join", func(b *testing.B) {
		left := Map(Parallelize(ctx, ints(10000), 8), func(x int) Pair[int, int] { return Pair[int, int]{x, x} })
		right := Map(Parallelize(ctx, ints(10000), 8), func(x int) Pair[int, int] { return Pair[int, int]{x, -x} })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Count(Join(left, right))
		}
	})
}

func TestSaveAsTextDirRoundTrip(t *testing.T) {
	ctx := NewContext()
	dir := filepath.Join(t.TempDir(), "out")
	d := Map(Parallelize(ctx, ints(100), 5), strconv.Itoa)
	if err := SaveAsTextDir(d, dir); err != nil {
		t.Fatal(err)
	}
	// Five part files + _SUCCESS.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 {
		t.Fatalf("entries %d", len(entries))
	}
	back, err := TextDir(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPartitions() != 5 {
		t.Errorf("partitions %d", back.NumPartitions())
	}
	got := Collect(back)
	if len(got) != 100 {
		t.Fatalf("rows %d", len(got))
	}
	for i, v := range got {
		if v != strconv.Itoa(i) {
			t.Fatalf("row %d = %q", i, v)
		}
	}
}

func TestTextDirRequiresSuccessMarker(t *testing.T) {
	ctx := NewContext()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "part-00000"), []byte("x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := TextDir(ctx, dir); err == nil {
		t.Error("half-written output accepted")
	}
}

func TestTextDirEmptyOutput(t *testing.T) {
	ctx := NewContext()
	dir := filepath.Join(t.TempDir(), "empty")
	if err := SaveAsTextDir(Parallelize(ctx, []string{}, 1), dir); err != nil {
		t.Fatal(err)
	}
	back, err := TextDir(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}
	if Count(back) != 0 {
		t.Error("phantom rows")
	}
}

func TestDistinctSetSemanticsProperty(t *testing.T) {
	f := func(xs []uint8, parts uint8) bool {
		ctx := NewContext()
		np := int(parts%5) + 1
		want := map[uint8]bool{}
		for _, x := range xs {
			want[x] = true
		}
		got := Collect(Distinct(Parallelize(ctx, xs, np)))
		if len(got) != len(want) {
			return false
		}
		for _, x := range got {
			if !want[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
