// Package rdd is a lazy, partitioned, Spark-like dataset engine: the
// substrate for the data-science-pipeline assignment (paper §4). Datasets
// carry their lineage as closures; transformations are lazy and actions
// evaluate partitions in parallel. Wide transformations (ReduceByKey,
// GroupByKey, Join, Distinct, SortBy) introduce a hash shuffle, exactly
// the stage boundary Spark teaches.
//
// Because Go methods cannot introduce new type parameters, transformations
// that change the element type are package-level generic functions:
//
//	lines := rdd.TextFile(ctx, "data.csv", 8)
//	rows  := rdd.Map(lines, parseRow)
//	byKey := rdd.KeyBy(rows, func(r Row) string { return r.NTA })
//	agg   := rdd.ReduceByKey(byKey, func(a, b int) int { return a + b })
//	out   := rdd.Collect(agg)
package rdd

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/prng"
)

// Context owns execution resources and counters for a family of datasets.
type Context struct {
	// Parallelism is the number of workers evaluating partitions
	// concurrently; <= 0 means GOMAXPROCS.
	Parallelism int

	mu       sync.Mutex
	shuffles int64
	shufRecs int64
	tasks    int64

	// rec, when attached, records one stage span per action with the
	// tasks/shuffles/records the action materialized. Recording happens on
	// the goroutine that calls the action, so while a recorder is attached
	// actions must not run concurrently (the pipelines here are
	// sequential drivers).
	rec *obs.Recorder
}

// SetRecorder attaches an observability recorder to the context (nil
// detaches). See the rec field for the concurrency contract.
func (c *Context) SetRecorder(r *obs.Recorder) { c.rec = r }

// Recorder returns the attached recorder (nil when observability is off).
func (c *Context) Recorder() *obs.Recorder { return c.rec }

// beginStage snapshots the engine counters and returns a closure that
// records the action's stage span with the deltas: partition tasks run,
// shuffles crossed, records shuffled, and records the action returned.
func (c *Context) beginStage(op string) func(records int64) {
	if c.rec == nil {
		return func(int64) {}
	}
	wall := c.rec.Now()
	c.mu.Lock()
	shuf0, recs0, tasks0 := c.shuffles, c.shufRecs, c.tasks
	c.mu.Unlock()
	return func(records int64) {
		c.mu.Lock()
		dShuf, dRecs, dTasks := c.shuffles-shuf0, c.shufRecs-recs0, c.tasks-tasks0
		c.mu.Unlock()
		c.rec.WallSpan(op, wall,
			obs.KV{K: "tasks", V: dTasks},
			obs.KV{K: "shuffles", V: dShuf},
			obs.KV{K: "shuffled_records", V: dRecs},
			obs.KV{K: "records", V: records})
	}
}

// NewContext returns a Context with default parallelism.
func NewContext() *Context { return &Context{} }

// ShuffleCount reports how many wide stages have executed.
func (c *Context) ShuffleCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shuffles
}

// ShuffledRecords reports how many records crossed shuffle boundaries.
func (c *Context) ShuffledRecords() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shufRecs
}

// TaskCount reports how many partition-evaluation tasks ran.
func (c *Context) TaskCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tasks
}

func (c *Context) noteShuffle(records int64) {
	c.mu.Lock()
	c.shuffles++
	c.shufRecs += records
	c.mu.Unlock()
}

func (c *Context) noteTasks(n int64) {
	c.mu.Lock()
	c.tasks += n
	c.mu.Unlock()
}

// Dataset is a lazy, partitioned collection of T.
type Dataset[T any] struct {
	ctx     *Context
	nParts  int
	compute func(part int) []T

	cacheMu sync.Mutex
	cached  [][]T
}

// Ctx returns the owning context.
func (d *Dataset[T]) Ctx() *Context { return d.ctx }

// NumPartitions returns the partition count.
func (d *Dataset[T]) NumPartitions() int { return d.nParts }

// Cache memoizes computed partitions so downstream actions reuse them.
// It returns d for chaining.
func (d *Dataset[T]) Cache() *Dataset[T] {
	d.cacheMu.Lock()
	if d.cached == nil {
		d.cached = make([][]T, d.nParts)
		inner := d.compute
		done := make([]bool, d.nParts)
		var mu sync.Mutex
		d.compute = func(p int) []T {
			mu.Lock()
			if done[p] {
				v := d.cached[p]
				mu.Unlock()
				return v
			}
			mu.Unlock()
			v := inner(p)
			mu.Lock()
			d.cached[p] = v
			done[p] = true
			mu.Unlock()
			return v
		}
	}
	d.cacheMu.Unlock()
	return d
}

// newDataset wires a derived dataset.
func newDataset[T any](ctx *Context, nParts int, compute func(int) []T) *Dataset[T] {
	if nParts < 1 {
		nParts = 1
	}
	return &Dataset[T]{ctx: ctx, nParts: nParts, compute: compute}
}

// Parallelize distributes data over nParts partitions.
func Parallelize[T any](ctx *Context, data []T, nParts int) *Dataset[T] {
	if nParts < 1 {
		nParts = 1
	}
	parts := make([][]T, nParts)
	n := len(data)
	for p := 0; p < nParts; p++ {
		lo := p * n / nParts
		hi := (p + 1) * n / nParts
		parts[p] = data[lo:hi]
	}
	return newDataset(ctx, nParts, func(p int) []T { return parts[p] })
}

// TextFile reads path eagerly and exposes its lines as a dataset of
// nParts partitions (a line-sharded stand-in for HDFS splits).
func TextFile(ctx *Context, path string, nParts int) (*Dataset[string], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return Parallelize(ctx, lines, nParts), nil
}

// collectParts evaluates all partitions in parallel.
func collectParts[T any](d *Dataset[T]) [][]T {
	out := make([][]T, d.nParts)
	d.ctx.noteTasks(int64(d.nParts))
	par.For(d.nParts, d.ctx.Parallelism, func(p int) {
		out[p] = d.compute(p)
	})
	return out
}

// ---------- Narrow transformations ----------

// Map applies f to every element.
func Map[T, U any](d *Dataset[T], f func(T) U) *Dataset[U] {
	return newDataset(d.ctx, d.nParts, func(p int) []U {
		in := d.compute(p)
		out := make([]U, len(in))
		for i, v := range in {
			out[i] = f(v)
		}
		return out
	})
}

// Filter keeps elements satisfying pred.
func Filter[T any](d *Dataset[T], pred func(T) bool) *Dataset[T] {
	return newDataset(d.ctx, d.nParts, func(p int) []T {
		in := d.compute(p)
		var out []T
		for _, v := range in {
			if pred(v) {
				out = append(out, v)
			}
		}
		return out
	})
}

// FlatMap applies f and concatenates the results.
func FlatMap[T, U any](d *Dataset[T], f func(T) []U) *Dataset[U] {
	return newDataset(d.ctx, d.nParts, func(p int) []U {
		in := d.compute(p)
		var out []U
		for _, v := range in {
			out = append(out, f(v)...)
		}
		return out
	})
}

// MapPartitions applies f to whole partitions.
func MapPartitions[T, U any](d *Dataset[T], f func(part int, in []T) []U) *Dataset[U] {
	return newDataset(d.ctx, d.nParts, func(p int) []U {
		return f(p, d.compute(p))
	})
}

// Union concatenates two datasets (their partitions are appended).
func Union[T any](a, b *Dataset[T]) *Dataset[T] {
	return newDataset(a.ctx, a.nParts+b.nParts, func(p int) []T {
		if p < a.nParts {
			return a.compute(p)
		}
		return b.compute(p - a.nParts)
	})
}

// Sample keeps each element independently with probability frac, seeded
// deterministically per partition.
func Sample[T any](d *Dataset[T], frac float64, seed uint64) *Dataset[T] {
	return newDataset(d.ctx, d.nParts, func(p int) []T {
		r := prng.New(seed + uint64(p)*0x9e37)
		in := d.compute(p)
		var out []T
		for _, v := range in {
			if r.Bernoulli(frac) {
				out = append(out, v)
			}
		}
		return out
	})
}

// ---------- Wide transformations (shuffle) ----------

// shuffleByKey evaluates parent partitions and redistributes pairs into
// nOut hash partitions.
func shuffleByKey[K comparable, V any](d *Dataset[Pair[K, V]], nOut int) [][]Pair[K, V] {
	parts := collectParts(d)
	out := make([][]Pair[K, V], nOut)
	var records int64
	for _, part := range parts {
		records += int64(len(part))
		for _, kv := range part {
			h := int(hashAny(kv.Key) % uint64(nOut))
			out[h] = append(out[h], kv)
		}
	}
	d.ctx.noteShuffle(records)
	return out
}

// Pair is a keyed record.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// KeyBy converts a dataset into pairs using a key extractor.
func KeyBy[K comparable, T any](d *Dataset[T], key func(T) K) *Dataset[Pair[K, T]] {
	return Map(d, func(v T) Pair[K, T] { return Pair[K, T]{key(v), v} })
}

// MapValues transforms pair values, preserving keys and partitioning.
func MapValues[K comparable, V, W any](d *Dataset[Pair[K, V]], f func(V) W) *Dataset[Pair[K, W]] {
	return Map(d, func(p Pair[K, V]) Pair[K, W] { return Pair[K, W]{p.Key, f(p.Value)} })
}

// ReduceByKey merges all values of each key with op (associative,
// commutative). It shuffles once; per-partition pre-aggregation (a
// map-side combine) runs before the exchange, as in Spark.
func ReduceByKey[K comparable, V any](d *Dataset[Pair[K, V]], op func(V, V) V) *Dataset[Pair[K, V]] {
	// Map-side combine inside each parent partition.
	combined := MapPartitions(d, func(_ int, in []Pair[K, V]) []Pair[K, V] {
		m := make(map[K]V, len(in))
		for _, kv := range in {
			if cur, ok := m[kv.Key]; ok {
				m[kv.Key] = op(cur, kv.Value)
			} else {
				m[kv.Key] = kv.Value
			}
		}
		out := make([]Pair[K, V], 0, len(m))
		for k, v := range m {
			out = append(out, Pair[K, V]{k, v})
		}
		return out
	})
	nOut := d.nParts
	var once sync.Once
	var shuffled []map[K]V
	materialize := func() {
		buckets := shuffleByKey(combined, nOut)
		shuffled = make([]map[K]V, nOut)
		for p, b := range buckets {
			m := make(map[K]V)
			for _, kv := range b {
				if cur, ok := m[kv.Key]; ok {
					m[kv.Key] = op(cur, kv.Value)
				} else {
					m[kv.Key] = kv.Value
				}
			}
			shuffled[p] = m
		}
	}
	return newDataset(d.ctx, nOut, func(p int) []Pair[K, V] {
		once.Do(materialize)
		m := shuffled[p]
		out := make([]Pair[K, V], 0, len(m))
		for k, v := range m {
			out = append(out, Pair[K, V]{k, v})
		}
		return out
	})
}

// GroupByKey gathers all values of each key into a slice.
func GroupByKey[K comparable, V any](d *Dataset[Pair[K, V]]) *Dataset[Pair[K, []V]] {
	nOut := d.nParts
	var once sync.Once
	var shuffled []map[K][]V
	materialize := func() {
		buckets := shuffleByKey(d, nOut)
		shuffled = make([]map[K][]V, nOut)
		for p, b := range buckets {
			m := make(map[K][]V)
			for _, kv := range b {
				m[kv.Key] = append(m[kv.Key], kv.Value)
			}
			shuffled[p] = m
		}
	}
	return newDataset(d.ctx, nOut, func(p int) []Pair[K, []V] {
		once.Do(materialize)
		m := shuffled[p]
		out := make([]Pair[K, []V], 0, len(m))
		for k, vs := range m {
			out = append(out, Pair[K, []V]{k, vs})
		}
		return out
	})
}

// JoinRow is one matched pair from an inner join.
type JoinRow[A, B any] struct {
	Left  A
	Right B
}

// Join computes the inner equi-join of two pair datasets: for every key
// present in both, the cross product of its left and right values.
func Join[K comparable, A, B any](left *Dataset[Pair[K, A]], right *Dataset[Pair[K, B]]) *Dataset[Pair[K, JoinRow[A, B]]] {
	nOut := left.nParts
	var once sync.Once
	var out [][]Pair[K, JoinRow[A, B]]
	materialize := func() {
		lb := shuffleByKey(left, nOut)
		rb := shuffleByKey(right, nOut)
		out = make([][]Pair[K, JoinRow[A, B]], nOut)
		for p := 0; p < nOut; p++ {
			lm := make(map[K][]A)
			for _, kv := range lb[p] {
				lm[kv.Key] = append(lm[kv.Key], kv.Value)
			}
			for _, kv := range rb[p] {
				as, ok := lm[kv.Key]
				if !ok {
					continue
				}
				for _, a := range as {
					out[p] = append(out[p], Pair[K, JoinRow[A, B]]{kv.Key, JoinRow[A, B]{a, kv.Value}})
				}
			}
		}
	}
	return newDataset(left.ctx, nOut, func(p int) []Pair[K, JoinRow[A, B]] {
		once.Do(materialize)
		return out[p]
	})
}

// Distinct removes duplicates (a shuffle by the element itself).
func Distinct[T comparable](d *Dataset[T]) *Dataset[T] {
	keyed := Map(d, func(v T) Pair[T, struct{}] { return Pair[T, struct{}]{v, struct{}{}} })
	reduced := ReduceByKey(keyed, func(a, _ struct{}) struct{} { return a })
	return Map(reduced, func(p Pair[T, struct{}]) T { return p.Key })
}

// SortBy globally sorts the dataset by the given less function into a
// single partition (adequate for result-sized data; a range-partitioned
// sort is overkill for the pipelines here).
func SortBy[T any](d *Dataset[T], less func(a, b T) bool) *Dataset[T] {
	var once sync.Once
	var sorted []T
	return newDataset(d.ctx, 1, func(int) []T {
		once.Do(func() {
			parts := collectParts(d)
			for _, p := range parts {
				sorted = append(sorted, p...)
			}
			d.ctx.noteShuffle(int64(len(sorted)))
			sort.SliceStable(sorted, func(i, j int) bool { return less(sorted[i], sorted[j]) })
		})
		return sorted
	})
}

// ---------- Actions ----------

// Collect evaluates the dataset and returns all elements in partition
// order.
func Collect[T any](d *Dataset[T]) []T {
	end := d.ctx.beginStage("rdd.Collect")
	parts := collectParts(d)
	var out []T
	for _, p := range parts {
		out = append(out, p...)
	}
	end(int64(len(out)))
	return out
}

// Count returns the number of elements.
func Count[T any](d *Dataset[T]) int {
	end := d.ctx.beginStage("rdd.Count")
	parts := collectParts(d)
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	end(int64(n))
	return n
}

// Reduce folds all elements with op; ok is false for an empty dataset.
func Reduce[T any](d *Dataset[T], op func(T, T) T) (result T, ok bool) {
	defer d.ctx.beginStage("rdd.Reduce")(int64(1))
	parts := collectParts(d)
	first := true
	for _, p := range parts {
		for _, v := range p {
			if first {
				result, first = v, false
			} else {
				result = op(result, v)
			}
		}
	}
	return result, !first
}

// TakeOrdered returns the n smallest elements under less.
func TakeOrdered[T any](d *Dataset[T], n int, less func(a, b T) bool) []T {
	all := Collect(d)
	sort.SliceStable(all, func(i, j int) bool { return less(all[i], all[j]) })
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// CollectMap materialises a pair dataset into a map (later keys win).
func CollectMap[K comparable, V any](d *Dataset[Pair[K, V]]) map[K]V {
	out := make(map[K]V)
	for _, kv := range Collect(d) {
		out[kv.Key] = kv.Value
	}
	return out
}

// SaveAsText writes one line per element using fmt.Sprint.
func SaveAsText[T any](d *Dataset[T], path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, v := range Collect(d) {
		if _, err := fmt.Fprintln(w, v); err != nil {
			return err
		}
	}
	return w.Flush()
}

// hashAny hashes any comparable key deterministically.
func hashAny[K comparable](k K) uint64 {
	switch v := any(k).(type) {
	case int:
		return mix64(uint64(v))
	case int64:
		return mix64(uint64(v))
	case uint64:
		return mix64(v)
	case string:
		h := uint64(14695981039346656037)
		for i := 0; i < len(v); i++ {
			h ^= uint64(v[i])
			h *= 1099511628211
		}
		return h
	default:
		s := fmt.Sprint(v)
		h := uint64(14695981039346656037)
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		return h
	}
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
