package rdd

import (
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func ints(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	return xs
}

func TestParallelizeCollect(t *testing.T) {
	ctx := NewContext()
	d := Parallelize(ctx, ints(100), 7)
	if d.NumPartitions() != 7 {
		t.Errorf("parts %d", d.NumPartitions())
	}
	got := Collect(d)
	if len(got) != 100 {
		t.Fatalf("len %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d: %d", i, v)
		}
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	ctx := NewContext()
	d := Parallelize(ctx, ints(10), 3)
	sq := Map(d, func(x int) int { return x * x })
	even := Filter(sq, func(x int) bool { return x%2 == 0 })
	dup := FlatMap(even, func(x int) []string {
		return []string{strconv.Itoa(x), strconv.Itoa(x)}
	})
	got := Collect(dup)
	want := []string{"0", "0", "4", "4", "16", "16", "36", "36", "64", "64"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pos %d: %q want %q", i, got[i], want[i])
		}
	}
}

func TestCountAndReduce(t *testing.T) {
	ctx := NewContext()
	d := Parallelize(ctx, ints(101), 4)
	if c := Count(d); c != 101 {
		t.Errorf("count %d", c)
	}
	sum, ok := Reduce(d, func(a, b int) int { return a + b })
	if !ok || sum != 100*101/2 {
		t.Errorf("reduce %d ok=%v", sum, ok)
	}
	empty := Parallelize(ctx, []int{}, 3)
	if _, ok := Reduce(empty, func(a, b int) int { return a + b }); ok {
		t.Error("empty reduce reported ok")
	}
}

func TestReduceByKey(t *testing.T) {
	ctx := NewContext()
	words := strings.Fields("a b a c b a")
	d := Parallelize(ctx, words, 3)
	pairs := Map(d, func(w string) Pair[string, int] { return Pair[string, int]{w, 1} })
	counts := CollectMap(ReduceByKey(pairs, func(a, b int) int { return a + b }))
	if counts["a"] != 3 || counts["b"] != 2 || counts["c"] != 1 {
		t.Errorf("counts %v", counts)
	}
}

func TestReduceByKeyMatchesSerialProperty(t *testing.T) {
	f := func(keys []uint8, parts uint8) bool {
		ctx := NewContext()
		np := int(parts%5) + 1
		serial := map[uint8]int{}
		for _, k := range keys {
			serial[k]++
		}
		d := Parallelize(ctx, keys, np)
		pairs := Map(d, func(k uint8) Pair[uint8, int] { return Pair[uint8, int]{k, 1} })
		got := CollectMap(ReduceByKey(pairs, func(a, b int) int { return a + b }))
		if len(got) != len(serial) {
			return false
		}
		for k, v := range serial {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGroupByKey(t *testing.T) {
	ctx := NewContext()
	data := []Pair[string, int]{{"x", 1}, {"y", 2}, {"x", 3}}
	g := GroupByKey(Parallelize(ctx, data, 2))
	m := CollectMap(g)
	sort.Ints(m["x"])
	if len(m["x"]) != 2 || m["x"][0] != 1 || m["x"][1] != 3 {
		t.Errorf("x group %v", m["x"])
	}
	if len(m["y"]) != 1 || m["y"][0] != 2 {
		t.Errorf("y group %v", m["y"])
	}
}

func TestJoin(t *testing.T) {
	ctx := NewContext()
	left := Parallelize(ctx, []Pair[int, string]{{1, "a"}, {2, "b"}, {1, "c"}}, 2)
	right := Parallelize(ctx, []Pair[int, float64]{{1, 1.5}, {3, 9.9}}, 2)
	joined := Collect(Join(left, right))
	if len(joined) != 2 {
		t.Fatalf("join rows %v", joined)
	}
	for _, row := range joined {
		if row.Key != 1 || row.Value.Right != 1.5 {
			t.Errorf("bad row %v", row)
		}
		if row.Value.Left != "a" && row.Value.Left != "c" {
			t.Errorf("bad left %v", row)
		}
	}
}

func TestJoinCrossProduct(t *testing.T) {
	ctx := NewContext()
	left := Parallelize(ctx, []Pair[int, string]{{1, "a"}, {1, "b"}}, 1)
	right := Parallelize(ctx, []Pair[int, string]{{1, "x"}, {1, "y"}}, 1)
	if n := Count(Join(left, right)); n != 4 {
		t.Errorf("cross product size %d, want 4", n)
	}
}

func TestDistinct(t *testing.T) {
	ctx := NewContext()
	d := Parallelize(ctx, []int{1, 2, 2, 3, 3, 3}, 3)
	got := Collect(Distinct(d))
	sort.Ints(got)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("distinct %v", got)
	}
}

func TestSortByAndTakeOrdered(t *testing.T) {
	ctx := NewContext()
	d := Parallelize(ctx, []int{5, 3, 9, 1, 7}, 3)
	sorted := Collect(SortBy(d, func(a, b int) bool { return a < b }))
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			t.Fatalf("not sorted: %v", sorted)
		}
	}
	top2 := TakeOrdered(d, 2, func(a, b int) bool { return a > b })
	if len(top2) != 2 || top2[0] != 9 || top2[1] != 7 {
		t.Errorf("top2 %v", top2)
	}
}

func TestUnionAndSample(t *testing.T) {
	ctx := NewContext()
	a := Parallelize(ctx, ints(50), 2)
	b := Parallelize(ctx, ints(50), 3)
	u := Union(a, b)
	if u.NumPartitions() != 5 || Count(u) != 100 {
		t.Errorf("union parts=%d count=%d", u.NumPartitions(), Count(u))
	}
	s := Sample(Parallelize(ctx, ints(10000), 4), 0.3, 7)
	n := Count(s)
	if n < 2500 || n > 3500 {
		t.Errorf("sample kept %d of 10000 at frac 0.3", n)
	}
	// Determinism.
	if Count(Sample(Parallelize(ctx, ints(10000), 4), 0.3, 7)) != n {
		t.Error("sample not deterministic")
	}
}

func TestKeyByMapValues(t *testing.T) {
	ctx := NewContext()
	d := Parallelize(ctx, []string{"apple", "avocado", "banana"}, 2)
	keyed := KeyBy(d, func(s string) byte { return s[0] })
	lens := MapValues(keyed, func(s string) int { return len(s) })
	counts := CollectMap(ReduceByKey(lens, func(a, b int) int { return a + b }))
	if counts['a'] != 12 || counts['b'] != 6 {
		t.Errorf("counts %v", counts)
	}
}

func TestCacheEvaluatesOnce(t *testing.T) {
	ctx := NewContext()
	var evals int64
	base := Parallelize(ctx, ints(10), 2)
	expensive := Map(base, func(x int) int {
		atomic.AddInt64(&evals, 1)
		return x
	}).Cache()
	Collect(expensive)
	Collect(expensive)
	Count(expensive)
	if evals != 10 {
		t.Errorf("cached dataset evaluated %d element-times, want 10", evals)
	}
}

func TestShuffleCounters(t *testing.T) {
	ctx := NewContext()
	d := Parallelize(ctx, ints(100), 4)
	pairs := Map(d, func(x int) Pair[int, int] { return Pair[int, int]{x % 10, 1} })
	Collect(ReduceByKey(pairs, func(a, b int) int { return a + b }))
	if ctx.ShuffleCount() != 1 {
		t.Errorf("shuffles %d, want 1", ctx.ShuffleCount())
	}
	// Map-side combine means at most parts*keys records cross the wire.
	if ctx.ShuffledRecords() > 40 {
		t.Errorf("map-side combine ineffective: %d records shuffled", ctx.ShuffledRecords())
	}
	if ctx.TaskCount() == 0 {
		t.Error("no tasks recorded")
	}
}

func TestTextFileAndSaveAsText(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.txt")
	if err := os.WriteFile(in, []byte("one\ntwo\nthree\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext()
	d, err := TextFile(ctx, in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if Count(d) != 3 {
		t.Errorf("lines %d", Count(d))
	}
	up := Map(d, strings.ToUpper)
	out := filepath.Join(dir, "out.txt")
	if err := SaveAsText(up, out); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	if string(data) != "ONE\nTWO\nTHREE\n" {
		t.Errorf("saved %q", data)
	}
	if _, err := TextFile(ctx, filepath.Join(dir, "missing"), 2); err == nil {
		t.Error("missing file not reported")
	}
}

func TestMapPartitionsSeesPartitionIndex(t *testing.T) {
	ctx := NewContext()
	d := Parallelize(ctx, ints(8), 4)
	tagged := MapPartitions(d, func(p int, in []int) []int {
		out := make([]int, len(in))
		for i := range in {
			out[i] = p
		}
		return out
	})
	got := Collect(tagged)
	if got[0] != 0 || got[len(got)-1] != 3 {
		t.Errorf("partition tags %v", got)
	}
}

func TestParallelizeUnevenAndEmpty(t *testing.T) {
	ctx := NewContext()
	if got := Collect(Parallelize(ctx, ints(5), 10)); len(got) != 5 {
		t.Errorf("more parts than data: %v", got)
	}
	if got := Collect(Parallelize(ctx, []int{}, 3)); len(got) != 0 {
		t.Errorf("empty data: %v", got)
	}
	if Parallelize(ctx, ints(3), 0).NumPartitions() != 1 {
		t.Error("nParts<1 not clamped")
	}
}
