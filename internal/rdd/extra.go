package rdd

import "sync"

// Additional operators rounding out the Spark surface the pipeline course
// exercises: whole-dataset aggregation, value histograms, partition
// coalescing, zipping, and keyed counting.

// Aggregate folds the dataset with per-partition sequential folds followed
// by a cross-partition combine — Spark's aggregate(zero, seqOp, combOp).
func Aggregate[T, A any](d *Dataset[T], zero func() A, seqOp func(A, T) A, combOp func(A, A) A) A {
	parts := collectParts(d)
	accs := make([]A, len(parts))
	for p, part := range parts {
		acc := zero()
		for _, v := range part {
			acc = seqOp(acc, v)
		}
		accs[p] = acc
	}
	out := zero()
	for _, a := range accs {
		out = combOp(out, a)
	}
	return out
}

// CountByValue returns how many times each distinct element occurs.
func CountByValue[T comparable](d *Dataset[T]) map[T]int {
	return Aggregate(d,
		func() map[T]int { return map[T]int{} },
		func(m map[T]int, v T) map[T]int { m[v]++; return m },
		func(a, b map[T]int) map[T]int {
			for k, n := range b {
				a[k] += n
			}
			return a
		})
}

// CountByKey returns the number of records per key in a pair dataset.
func CountByKey[K comparable, V any](d *Dataset[Pair[K, V]]) map[K]int {
	return Aggregate(d,
		func() map[K]int { return map[K]int{} },
		func(m map[K]int, p Pair[K, V]) map[K]int { m[p.Key]++; return m },
		func(a, b map[K]int) map[K]int {
			for k, n := range b {
				a[k] += n
			}
			return a
		})
}

// Coalesce reduces the dataset to nParts partitions by concatenating
// neighbouring partitions (no shuffle), as Spark's coalesce does.
func Coalesce[T any](d *Dataset[T], nParts int) *Dataset[T] {
	if nParts < 1 {
		nParts = 1
	}
	if nParts >= d.nParts {
		return d
	}
	old := d.nParts
	return newDataset(d.ctx, nParts, func(p int) []T {
		lo := p * old / nParts
		hi := (p + 1) * old / nParts
		var out []T
		for q := lo; q < hi; q++ {
			out = append(out, d.compute(q)...)
		}
		return out
	})
}

// Zip pairs the i-th element of a with the i-th element of b. Both
// datasets are materialised once on first evaluation; they must have equal
// lengths.
func Zip[A, B any](a *Dataset[A], b *Dataset[B]) *Dataset[Pair[int, JoinRow[A, B]]] {
	var once sync.Once
	var rows []Pair[int, JoinRow[A, B]]
	var zipErr string
	return newDataset(a.ctx, 1, func(int) []Pair[int, JoinRow[A, B]] {
		once.Do(func() {
			as := Collect(a)
			bs := Collect(b)
			if len(as) != len(bs) {
				zipErr = "rdd: Zip length mismatch"
				return
			}
			rows = make([]Pair[int, JoinRow[A, B]], len(as))
			for i := range as {
				rows[i] = Pair[int, JoinRow[A, B]]{i, JoinRow[A, B]{as[i], bs[i]}}
			}
		})
		if zipErr != "" {
			panic(zipErr)
		}
		return rows
	})
}

// Max returns the largest element under less; ok is false when empty.
func Max[T any](d *Dataset[T], less func(a, b T) bool) (T, bool) {
	return Reduce(d, func(a, b T) T {
		if less(a, b) {
			return b
		}
		return a
	})
}

// Min returns the smallest element under less; ok is false when empty.
func Min[T any](d *Dataset[T], less func(a, b T) bool) (T, bool) {
	return Reduce(d, func(a, b T) T {
		if less(b, a) {
			return b
		}
		return a
	})
}

// SumFloat64 sums a float64 dataset.
func SumFloat64(d *Dataset[float64]) float64 {
	return Aggregate(d,
		func() float64 { return 0 },
		func(a float64, v float64) float64 { return a + v },
		func(a, b float64) float64 { return a + b })
}

// MeanFloat64 averages a float64 dataset (0 for empty).
func MeanFloat64(d *Dataset[float64]) float64 {
	type acc struct {
		sum float64
		n   int
	}
	a := Aggregate(d,
		func() acc { return acc{} },
		func(a acc, v float64) acc { return acc{a.sum + v, a.n + 1} },
		func(a, b acc) acc { return acc{a.sum + b.sum, a.n + b.n} })
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}
