package mapreduce

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
)

func TestWordCountSmall(t *testing.T) {
	w := cluster.NewWorld(3)
	docs := []string{
		"the quick brown fox",
		"THE lazy dog and the fox",
		"dog!",
	}
	counts, err := WordCount(w, docs)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"the": 3, "fox": 2, "dog": 2, "quick": 1, "brown": 1, "lazy": 1, "and": 1}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("%q = %d, want %d", k, counts[k], v)
		}
	}
	if len(counts) != len(want) {
		t.Errorf("got %d distinct words, want %d", len(counts), len(want))
	}
}

func TestWordCountMatchesSerialProperty(t *testing.T) {
	f := func(seedWords [12]uint8, ranks uint8) bool {
		vocab := []string{"alpha", "beta", "gamma", "delta"}
		var docs []string
		for i, s := range seedWords {
			docs = append(docs, vocab[int(s)%len(vocab)]+" "+vocab[i%len(vocab)])
		}
		serial := map[string]int{}
		for _, d := range docs {
			for _, w := range Tokenize(d) {
				serial[w]++
			}
		}
		world := cluster.NewWorld(int(ranks%6) + 1)
		got, err := WordCount(world, docs)
		if err != nil {
			return false
		}
		if len(got) != len(serial) {
			return false
		}
		for k, v := range serial {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestKeysHashConsistently(t *testing.T) {
	// Each key must be reduced on exactly one rank: run a job whose
	// reduce records which rank handled each key.
	const P = 4
	w := cluster.NewWorld(P)
	var mu sync.Mutex
	owner := map[int][]int{}
	job := &Job[int, int, int, int]{
		Map:    func(in int, emit func(int, int)) { emit(in%50, 1) },
		Reduce: func(k int, vs []int) int { return len(vs) },
	}
	inputs := make([]int, 1000)
	for i := range inputs {
		inputs[i] = i
	}
	shards := cluster.SplitEven(inputs, P)
	err := w.Run(func(c *cluster.Comm) {
		res := job.Run(c, shards[c.Rank()])
		mu.Lock()
		for k := range res {
			owner[k] = append(owner[k], c.Rank())
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(owner) != 50 {
		t.Fatalf("expected 50 keys, got %d", len(owner))
	}
	for k, rs := range owner {
		if len(rs) != 1 {
			t.Errorf("key %d reduced on multiple ranks %v", k, rs)
		}
	}
}

func TestReduceSeesAllValues(t *testing.T) {
	const P = 3
	w := cluster.NewWorld(P)
	job := &Job[int, string, int, int]{
		Map:    func(in int, emit func(string, int)) { emit("total", in) },
		Reduce: func(_ string, vs []int) int { return sum(vs) },
	}
	inputs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	shards := cluster.SplitEven(inputs, P)
	var got int
	err := w.Run(func(c *cluster.Comm) {
		merged := job.RunToRoot(c, shards[c.Rank()])
		if c.Rank() == 0 {
			got = merged["total"]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 45 {
		t.Errorf("total = %d, want 45", got)
	}
}

func TestCombinerReducesTraffic(t *testing.T) {
	// C2: the same job with a combiner must ship strictly fewer bytes.
	docs := []string{
		strings.Repeat("apple banana apple cherry apple ", 100),
		strings.Repeat("banana banana cherry apple date ", 100),
	}
	run := func(withCombiner bool) (int64, map[string]int) {
		w := cluster.NewWorld(2)
		job := WordCountJob()
		if !withCombiner {
			job.Combine = nil
		}
		shards := cluster.SplitEven(docs, 2)
		var merged map[string]int
		err := w.Run(func(c *cluster.Comm) {
			res := job.RunToRoot(c, shards[c.Rank()])
			if c.Rank() == 0 {
				merged = res
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.TotalBytes(), merged
	}
	bytesOn, resOn := run(true)
	bytesOff, resOff := run(false)
	if bytesOn >= bytesOff {
		t.Errorf("combiner did not cut traffic: on=%d off=%d", bytesOn, bytesOff)
	}
	for k, v := range resOff {
		if resOn[k] != v {
			t.Errorf("combiner changed result for %q: %d vs %d", k, resOn[k], v)
		}
	}
}

func TestSingleRankJob(t *testing.T) {
	w := cluster.NewWorld(1)
	job := WordCountJob()
	var res map[string]int
	err := w.Run(func(c *cluster.Comm) {
		// Single-rank world: the guard never diverges, so the collectives
		// inside job.Run are safe behind it.
		//peachyvet:allow protocol
		if c.Rank() == 0 {
			res = job.Run(c, []string{"a b a"})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res["a"] != 2 || res["b"] != 1 {
		t.Errorf("single-rank results %v", res)
	}
}

func TestEmptyInputs(t *testing.T) {
	w := cluster.NewWorld(3)
	counts, err := WordCount(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 0 {
		t.Errorf("empty input produced %v", counts)
	}
}

func TestJobValidation(t *testing.T) {
	w := cluster.NewWorld(1)
	job := &Job[int, int, int, int]{}
	err := w.Run(func(c *cluster.Comm) { job.Run(c, nil) })
	if err == nil || !strings.Contains(err.Error(), "needs Map and Reduce") {
		t.Errorf("missing Map/Reduce not reported: %v", err)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! 42 foo_bar")
	want := []string{"hello", "world", "42", "foo", "bar"}
	if len(got) != len(want) {
		t.Fatalf("tokens %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q want %q", i, got[i], want[i])
		}
	}
}

func TestHashKeyStability(t *testing.T) {
	if hashKey("alpha") != hashKey("alpha") {
		t.Error("string hash unstable")
	}
	if hashKey(42) != hashKey(42) {
		t.Error("int hash unstable")
	}
	if hashKey("a") == hashKey("b") {
		t.Error("suspicious collision")
	}
	type custom struct{ A, B int }
	if hashKey(custom{1, 2}) != hashKey(custom{1, 2}) {
		t.Error("struct hash unstable")
	}
}

func BenchmarkWordCount(b *testing.B) {
	doc := strings.Repeat("lorem ipsum dolor sit amet consectetur ", 200)
	docs := []string{doc, doc, doc, doc}
	for _, p := range []int{1, 2, 4} {
		b.Run(string(rune('0'+p))+"ranks", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := cluster.NewWorld(p)
				if _, err := WordCount(w, docs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestTopK(t *testing.T) {
	counts := map[string]int{"a": 5, "b": 9, "c": 5, "d": 1}
	top := TopK(counts, 3)
	if len(top) != 3 {
		t.Fatalf("len %d", len(top))
	}
	if top[0].Key != "b" || top[1].Key != "a" || top[2].Key != "c" {
		t.Errorf("order %v (ties must break by key)", top)
	}
	if len(TopK(counts, 10)) != 4 {
		t.Error("over-clamp")
	}
	if len(TopK(nil, 3)) != 0 {
		t.Error("empty input")
	}
}
