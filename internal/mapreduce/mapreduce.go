// Package mapreduce is a MapReduce framework in the style of MapReduce-MPI
// (Plimpton & Devine), the library the kNN assignment is built on (paper
// §2). Jobs run SPMD on a cluster.World: every rank maps its local inputs
// to key-value pairs, optionally combines them locally ("local reductions
// at each rank", the optimisation the assignment highlights), exchanges
// pairs so that each key lands on the rank it hashes to (load balancing
// through hashing), and reduces each key's values.
package mapreduce

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// Pair is one emitted key-value pair.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// batch is the unit exchanged between ranks; it reports its wire size to
// the cluster cost model so combiner experiments measure real traffic.
type batch[K comparable, V any] struct {
	// Exported: the batch crosses rank boundaries via Alltoall, and a
	// network transport's codec only sees exported fields.
	Pairs     []Pair[K, V]
	PairBytes int
}

// WireSize implements cluster.Sizer.
func (b batch[K, V]) WireSize() int { return len(b.Pairs) * b.PairBytes }

// RegisterWireTypes registers one (K, V, R) instantiation's cross-rank
// payload types with the cluster wire codec: the shuffle batches and the
// gathered result maps (plus the gather tree's []map segments). In-process
// worlds need no registration, but on the net device (`peachy launch`)
// these travel as gob interface values, which decode by registered
// concrete type. Run calls this itself, so jobs work multi-process out of
// the box; it is exported for callers that build their own exchanges from
// the same types. Safe to call repeatedly.
func RegisterWireTypes[K comparable, V, R any]() {
	cluster.RegisterWire(
		batch[K, V]{},
		map[K]R(nil),
		[]map[K]R(nil),
	)
}

// bucket holds one destination rank's emissions: the values per key plus
// the keys in first-emission order. The exchange serializes pairs in that
// recorded order — never in map iteration order, which Go randomizes per
// run and which would otherwise leak into the wire payload.
type bucket[K comparable, V any] struct {
	vals  map[K][]V
	order []K
}

// Job describes a MapReduce computation over inputs of type I, emitting
// (K, V) pairs and reducing each key to an R.
type Job[I any, K comparable, V, R any] struct {
	// Map processes one input and emits any number of pairs.
	Map func(in I, emit func(K, V))
	// Combine, when non-nil, folds the locally emitted values of a key
	// into a single value before the exchange, cutting communication.
	Combine func(k K, vs []V) V
	// Reduce folds all values of a key (gathered from every rank) into
	// the final result.
	Reduce func(k K, vs []V) R
	// PairBytes is the modeled wire size of one pair for the cost model;
	// 0 means the default of 16 bytes.
	PairBytes int
}

// Run executes the job on rank c with this rank's local inputs and returns
// the reduced results for the keys that hash to this rank. Every rank must
// call Run collectively.
func (j *Job[I, K, V, R]) Run(c *cluster.Comm, inputs []I) map[K]R {
	if j.Map == nil || j.Reduce == nil {
		panic("mapreduce: Job needs Map and Reduce")
	}
	RegisterWireTypes[K, V, R]()
	pairBytes := j.PairBytes
	if pairBytes <= 0 {
		pairBytes = 16
	}
	size := c.Size()
	rec := c.Obs()

	// Map phase: bucket emissions by destination rank.
	mapWall := rec.Now()
	mapSim := c.Clock()
	buckets := make([]bucket[K, V], size)
	for r := range buckets {
		buckets[r].vals = make(map[K][]V)
	}
	var emitted int64
	emit := func(k K, v V) {
		dst := int(hashKey(k) % uint64(size))
		b := &buckets[dst]
		vs, seen := b.vals[k]
		if !seen {
			b.order = append(b.order, k)
		}
		b.vals[k] = append(vs, v)
		emitted++
	}
	for _, in := range inputs {
		j.Map(in, emit)
	}
	rec.PhaseSpan("mr.map", mapSim, c.Clock(), mapWall,
		obs.KV{K: "inputs", V: int64(len(inputs))}, obs.KV{K: "pairs", V: emitted})

	// Optional combine phase: fold each key's local values to one,
	// reusing each value slice's backing array for the folded result.
	if j.Combine != nil {
		combWall := rec.Now()
		combSim := c.Clock()
		var kept int64
		for i := range buckets {
			b := &buckets[i]
			for _, k := range b.order {
				if vs := b.vals[k]; len(vs) > 1 {
					cv := j.Combine(k, vs)
					b.vals[k] = append(vs[:0], cv)
				}
			}
			// Post-combine every key holds exactly one value.
			kept += int64(len(b.order))
		}
		rec.PhaseSpan("mr.combine", combSim, c.Clock(), combWall,
			obs.KV{K: "pairs_in", V: emitted}, obs.KV{K: "pairs_out", V: kept})
	}

	// Aggregate phase: total exchange of pair batches.
	parts := make([]batch[K, V], size)
	for r := range buckets {
		b := &buckets[r]
		n := 0
		for _, vs := range b.vals {
			n += len(vs)
		}
		ps := make([]Pair[K, V], 0, n)
		for _, k := range b.order {
			for _, v := range b.vals[k] {
				ps = append(ps, Pair[K, V]{k, v})
			}
		}
		parts[r] = batch[K, V]{Pairs: ps, PairBytes: pairBytes}
	}
	incoming := cluster.Alltoall(c, parts)

	// Collate phase: group received pairs by key.
	collWall := rec.Now()
	collSim := c.Clock()
	nIn := 0
	for _, bt := range incoming {
		nIn += len(bt.Pairs)
	}
	grouped := make(map[K][]V, nIn)
	for _, bt := range incoming {
		for _, p := range bt.Pairs {
			grouped[p.Key] = append(grouped[p.Key], p.Value)
		}
	}
	rec.PhaseSpan("mr.collate", collSim, c.Clock(), collWall,
		obs.KV{K: "pairs", V: int64(nIn)}, obs.KV{K: "keys", V: int64(len(grouped))})
	// Per-reducer skew marker: this rank's share of the shuffled keys and
	// bytes, the quantity whose max/mean over ranks is the shuffle skew.
	rec.Instant("mr.skew", -1, 0, int64(nIn*pairBytes), c.Clock(),
		obs.KV{K: "keys", V: int64(len(grouped))}, obs.KV{K: "pairs", V: int64(nIn)})

	// Reduce phase.
	redWall := rec.Now()
	redSim := c.Clock()
	out := make(map[K]R, len(grouped))
	for k, vs := range grouped {
		out[k] = j.Reduce(k, vs)
	}
	rec.PhaseSpan("mr.reduce", redSim, c.Clock(), redWall,
		obs.KV{K: "keys", V: int64(len(grouped))})
	return out
}

// RunToRoot runs the job and gathers every rank's reduced results onto
// rank 0, returning the merged map there (nil on other ranks).
func (j *Job[I, K, V, R]) RunToRoot(c *cluster.Comm, inputs []I) map[K]R {
	local := j.Run(c, inputs)
	all := cluster.Gather(c, 0, local)
	if c.Rank() != 0 {
		return nil
	}
	merged := make(map[K]R)
	for _, m := range all {
		for k, v := range m {
			merged[k] = v
		}
	}
	return merged
}

// hashKey maps a comparable key to a rank-assignment hash, deterministic
// across runs so experiment traffic counts are reproducible.
func hashKey[K comparable](k K) uint64 {
	switch v := any(k).(type) {
	case int:
		return mix(uint64(v))
	case int32:
		return mix(uint64(v))
	case int64:
		return mix(uint64(v))
	case uint64:
		return mix(v)
	case string:
		return fnv1a(v)
	default:
		return fnv1a(fmt.Sprint(v))
	}
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
