package mapreduce

import (
	"sort"
	"strings"
	"unicode"

	"repro/internal/cluster"
)

// WordCountJob returns the classic word-counting job the assignment uses
// as its MapReduce warm-up exercise (paper §2): map each document to
// (word, 1) pairs, combine locally, and reduce by summing.
func WordCountJob() *Job[string, string, int, int] {
	return &Job[string, string, int, int]{
		Map: func(doc string, emit func(string, int)) {
			for _, w := range Tokenize(doc) {
				emit(w, 1)
			}
		},
		Combine: func(_ string, vs []int) int { return sum(vs) },
		Reduce:  func(_ string, vs []int) int { return sum(vs) },
	}
}

// WordCount counts words across documents distributed over the ranks of
// world. docs is sharded evenly; the merged counts are returned.
func WordCount(world *cluster.World, docs []string) (map[string]int, error) {
	shards := cluster.SplitEven(docs, world.Size())
	results := make([]map[string]int, world.Size())
	err := world.Run(func(c *cluster.Comm) {
		local := WordCountJob().Run(c, shards[c.Rank()])
		results[c.Rank()] = local
	})
	if err != nil {
		return nil, err
	}
	merged := make(map[string]int)
	for _, m := range results {
		for k, v := range m {
			merged[k] += v
		}
	}
	return merged, nil
}

// Tokenize lower-cases a document and splits it into maximal runs of
// letters and digits.
func Tokenize(doc string) []string {
	return strings.FieldsFunc(strings.ToLower(doc), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

func sum(vs []int) int {
	s := 0
	for _, v := range vs {
		s += v
	}
	return s
}

// TopK returns the k entries of counts with the largest values (ties by
// key ascending) — the classic follow-on job to word count ("invert and
// take the head"). Exposed here because chaining jobs is the natural next
// exercise after the warm-up.
func TopK(counts map[string]int, k int) []Pair[string, int] {
	out := make([]Pair[string, int], 0, len(counts))
	for w, n := range counts {
		out = append(out, Pair[string, int]{Key: w, Value: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
