package core

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataio"
	"repro/internal/ensemble"
	"repro/internal/heat"
	"repro/internal/kmeans"
	"repro/internal/knn"
	"repro/internal/locale"
	"repro/internal/mnistgen"
	"repro/internal/prng"
	"repro/internal/spatial"
	"repro/internal/stats"
	"repro/internal/taskfarm"
	"repro/internal/traffic"
)

// writeClaim persists a claim's report next to the figures.
func writeClaim(outDir, id, body string) (string, error) {
	path := filepath.Join(outDir, id+".md")
	if err := os.WriteFile(path, []byte(body+"\n"), 0o644); err != nil {
		return "", err
	}
	return body, nil
}

// ClaimC1KNN regenerates the §2 runtime claim: the d=40, n=5000, q=5000
// instance "takes about 5 seconds sequentially", heap selection beats full
// sorting, and the parallel/MapReduce versions obtain speedup. quick
// shrinks the instance (n=q=800).
func ClaimC1KNN(outDir string, quick bool) (string, error) {
	n, q, d, k := 5000, 5000, 40, 15
	if quick {
		n, q = 800, 800
	}
	ds := dataio.GaussianMixture(111, n+q, d, 4, 4.0)
	db, queries := ds.Split(n)

	tb := stats.NewTable(fmt.Sprintf("kNN variants on n=%d, q=%d, d=%d, k=%d", n, q, d, k),
		"variant", "seconds", "speedup vs sort")
	var ref []int
	tSort := timeIt(func() { ref = knn.SequentialSort(db, queries.Points, k) })
	var heapPred []int
	tHeap := timeIt(func() { heapPred = knn.SequentialHeap(db, queries.Points, k) })
	var parPred []int
	tPar := timeIt(func() { parPred = knn.Parallel(db, queries.Points, k, 0) })
	var tree *spatial.KDTree
	tBuild := timeIt(func() { tree = spatial.NewKDTreeParallel(db.Points, db.Labels, 0) })
	var kdPred []int
	tKD := timeIt(func() { kdPred = knn.KDTree(tree, queries.Points, k, 0) })

	world := cluster.NewWorld(4)
	var mrPred []int
	tMR := timeIt(func() {
		var err error
		mrPred, err = knn.MapReduce(world, db, queries.Points, k, true)
		if err != nil {
			panic(err)
		}
	})

	tb.AddRow("sequential sort  Θ(qn log n)", tSort, 1.0)
	tb.AddRow("sequential heap  Θ(qn log k)", tHeap, tSort/tHeap)
	tb.AddRow("parallel heap (goroutines)", tPar, tSort/tPar)
	tb.AddRow(fmt.Sprintf("k-d tree (build %.2fs)", tBuild), tKD, tSort/tKD)
	tb.AddRow("MapReduce, 4 ranks, combiner", tMR, tSort/tMR)

	mismatches := 0
	for i := range ref {
		if heapPred[i] != ref[i] || parPred[i] != ref[i] || mrPred[i] != ref[i] || kdPred[i] != ref[i] {
			mismatches++
		}
	}
	body := tb.String() + fmt.Sprintf(
		"\nAll variants agree on %d/%d predictions (%d mismatches).\n"+
			"Paper context: the full instance takes ~5 s sequentially in the authors' C++ setup.",
		q-mismatches, q, mismatches)
	return writeClaim(outDir, "c1_knn", body)
}

// ClaimC2Combiner regenerates the §2 communication claim: adding local
// reductions (combiners) at each rank noticeably cuts the exchanged bytes
// without changing the answer.
func ClaimC2Combiner(outDir string, quick bool) (string, error) {
	n, q := 4000, 100
	if quick {
		n, q = 800, 40
	}
	ds := dataio.GaussianMixture(222, n+q, 8, 4, 4.0)
	db, queries := ds.Split(n)

	tb := stats.NewTable(fmt.Sprintf("MapReduce kNN traffic, n=%d q=%d, 4 ranks", n, q),
		"combiner", "messages", "bytes", "bytes ratio")
	var base int64
	for _, on := range []bool{false, true} {
		world := cluster.NewWorld(4)
		if _, err := knn.MapReduce(world, db, queries.Points, 15, on); err != nil {
			return "", err
		}
		if !on {
			base = world.TotalBytes()
		}
		tb.AddRow(fmt.Sprintf("%v", on), world.TotalMessages(), world.TotalBytes(),
			float64(world.TotalBytes())/float64(base))
	}
	return writeClaim(outDir, "c2_combiner", tb.String())
}

// ClaimC3KMeansStrategies regenerates the §3 strategy ladder: the same
// K-means clustering with critical sections, atomics and reductions, with
// identical quality and (on multi-core hosts) descending runtimes.
func ClaimC3KMeansStrategies(outDir string, quick bool) (string, error) {
	n := 200000
	if quick {
		n = 30000
	}
	ds := dataio.GaussianMixture(333, n, 4, 16, 3.0)
	tb := stats.NewTable(fmt.Sprintf("K-means strategies, n=%d d=4 K=16, 5 iterations", n),
		"strategy", "seconds", "WCSS")
	for _, s := range []kmeans.Strategy{kmeans.Sequential, kmeans.Critical, kmeans.Atomic, kmeans.Reduction} {
		var res *kmeans.Result
		secs := timeIt(func() {
			res = kmeans.Run(ds.Points, kmeans.Options{K: 16, Seed: 5, Strategy: s, MaxIter: 5})
		})
		tb.AddRow(s.String(), secs, res.WCSS(ds.Points))
	}
	return writeClaim(outDir, "c3_kmeans_strategies", tb.String()+
		"\nAll strategies minimise the same objective; on multi-core hosts the ladder\n"+
		"critical > atomic > reduction orders their runtimes (this host may be single-core;\n"+
		"see the contention counts in internal/par's BenchmarkReductionStrategies).")
}

// ClaimC4KMeansDistributed regenerates the §3 MPI observation: the
// distributed K-means needs only collective communication — one Allreduce
// per iteration — so its simulated communication time grows with log P and
// K·d, not with n.
func ClaimC4KMeansDistributed(outDir string, quick bool) (string, error) {
	n := 40000
	if quick {
		n = 8000
	}
	ds := dataio.GaussianMixture(444, n, 4, 8, 3.0)
	tb := stats.NewTable(fmt.Sprintf("Distributed K-means, n=%d d=4 K=8", n),
		"ranks", "iterations", "messages", "bytes", "sim comm time (s)")
	for _, p := range []int{1, 2, 4, 8, 16} {
		world := cluster.NewWorld(p)
		res, err := kmeans.RunDistributed(world, ds.Points, kmeans.Options{K: 8, Seed: 5})
		if err != nil {
			return "", err
		}
		tb.AddRow(p, res.Iterations, world.TotalMessages(), world.TotalBytes(), world.SimTime())
	}
	return writeClaim(outDir, "c4_kmeans_distributed", tb.String()+
		"\nPer-iteration traffic is K*(d+1)+1 floats per tree hop — independent of n\n"+
		"(the scatter/gather of points happens exactly once).")
}

// ClaimC5TrafficRepro regenerates the §5 reproducibility requirement:
// fingerprints of the parallel simulation for 1..16 workers all equal the
// serial fingerprint under the shared-sequence strategy, and differ under
// per-worker seeding.
func ClaimC5TrafficRepro(outDir string, quick bool) (string, error) {
	steps := 400
	if quick {
		steps = 100
	}
	cfg := traffic.Config{Cars: 200, RoadLen: 1000, VMax: 5, P: 0.13, Seed: 99}
	ref, err := traffic.New(cfg)
	if err != nil {
		return "", err
	}
	ref.RunSerial(steps)
	want := ref.Fingerprint()

	tb := stats.NewTable(fmt.Sprintf("Traffic state fingerprints after %d steps (serial: %016x)", steps, want),
		"workers", "shared-sequence", "matches serial", "per-worker-seeds", "matches serial")
	allMatch := true
	for _, w := range []int{1, 2, 3, 4, 8, 16} {
		a, _ := traffic.New(cfg)
		a.RunParallel(steps, w, traffic.SharedSequence)
		b, _ := traffic.New(cfg)
		b.RunParallel(steps, w, traffic.PerWorkerSeeds)
		matchA := a.Fingerprint() == want
		allMatch = allMatch && matchA
		tb.AddRow(w,
			fmt.Sprintf("%016x", a.Fingerprint()), matchA,
			fmt.Sprintf("%016x", b.Fingerprint()), b.Fingerprint() == want)
	}
	verdict := "REPRODUCED: shared-sequence output is bit-identical for every worker count."
	if !allMatch {
		verdict = "FAILED: shared-sequence output diverged!"
	}
	return writeClaim(outDir, "c5_traffic_repro", tb.String()+"\n"+verdict)
}

// ClaimC6JumpAhead regenerates the §5 fast-forward cost claim: jumping a
// shared LCG sequence ahead by n steps costs O(log n), measured against
// serially drawing n values.
func ClaimC6JumpAhead(outDir string, quick bool) (string, error) {
	tb := stats.NewTable("LCG64 fast-forward vs serial advance",
		"n (draws skipped)", "serial (s)", "jump (s)", "speedup")
	exps := []uint{10, 14, 18, 22, 26}
	if quick {
		exps = []uint{10, 14, 18}
	}
	for _, e := range exps {
		n := uint64(1) << e
		g1 := prng.NewLCG64(1)
		serial := timeIt(func() {
			for i := uint64(0); i < n; i++ {
				g1.Uint64()
			}
		})
		g2 := prng.NewLCG64(1)
		// Average the jump over many repetitions for a stable reading.
		const reps = 200000
		jump := timeIt(func() {
			for i := 0; i < reps; i++ {
				g2.Jump(n)
			}
		}) / reps
		if g1.State() != func() uint64 { g3 := prng.NewLCG64(1); g3.Jump(n); return g3.State() }() {
			return "", fmt.Errorf("c6: jump disagrees with serial at n=%d", n)
		}
		tb.AddRow(fmt.Sprintf("2^%d", e), serial, jump, serial/jump)
	}
	return writeClaim(outDir, "c6_jump_ahead", tb.String()+
		"\nJump time is flat in n (O(log n) multiplies); serial time doubles per row.")
}

// ClaimC7Heat regenerates the §6 overhead claim: the coforall solver with
// persistent tasks and a barrier outperforms the forall solver that spawns
// fresh tasks every time step, most visibly when steps are many and the
// grid is small (task spawn cost dominates).
func ClaimC7Heat(outDir string, quick bool) (string, error) {
	nx, nt := 2048, 4000
	if quick {
		nx, nt = 1024, 800
	}
	p := heat.Problem{Alpha: 0.25, U0: heat.SinInit(nx), Steps: nt}
	sys := locale.NewSystem(4, 1)

	serialOut, err := heat.SolveSerial(p)
	if err != nil {
		return "", err
	}
	tSerial := timeIt(func() { _, _ = heat.SolveSerial(p) })

	forallOut, err := heat.SolveForall(p, sys)
	if err != nil {
		return "", err
	}
	tForall := timeIt(func() { _, _ = heat.SolveForall(p, sys) })

	coforallOut, err := heat.SolveCoforall(p, sys)
	if err != nil {
		return "", err
	}
	tCoforall := timeIt(func() { _, _ = heat.SolveCoforall(p, sys) })

	tb := stats.NewTable(fmt.Sprintf("1D heat solvers, nx=%d, nt=%d, 4 locales", nx, nt),
		"solver", "seconds", "max |diff vs serial|")
	tb.AddRow("serial", tSerial, 0.0)
	tb.AddRow("forall (fresh tasks per step)", tForall, heat.MaxAbsDiff(forallOut, serialOut))
	tb.AddRow("coforall (persistent tasks + barrier + halos)", tCoforall, heat.MaxAbsDiff(coforallOut, serialOut))
	verdict := "Coforall amortises task creation across all steps"
	if tCoforall < tForall {
		verdict += fmt.Sprintf(" and is %.1fx faster here.", tForall/tCoforall)
	} else {
		verdict += "; on this host the difference is below noise."
	}
	return writeClaim(outDir, "c7_heat", tb.String()+"\n"+verdict)
}

// ClaimC8TaskFarm regenerates the §7 PDC concept: distributing M tasks
// over P ranks when P does not divide M. Static block carries the
// remainder imbalance; the dynamic farm levels it (and absorbs
// heterogeneous task costs).
func ClaimC8TaskFarm(outDir string, quick bool) (string, error) {
	const m = 10
	tb := stats.NewTable(fmt.Sprintf("Task farm, M=%d tasks", m),
		"ranks", "mode", "per-rank loads", "max load", "imbalance")
	// For the dynamic farm rank 0 is the manager and executes nothing, so
	// its balance is judged over the workers only.
	for _, p := range []int{3, 4, 6, 8} {
		for _, dynamic := range []bool{false, true} {
			world := cluster.NewWorld(p)
			var rep taskfarm.Report
			err := world.Run(func(c *cluster.Comm) {
				var r taskfarm.Report
				exec := func(task int) int {
					time.Sleep(2 * time.Millisecond) // uniform task cost
					return task
				}
				if dynamic {
					_, r = taskfarm.RunDynamic(c, m, exec)
				} else {
					_, r = taskfarm.RunStatic(c, m, taskfarm.Block, exec)
				}
				if c.Rank() == 0 {
					rep = r
				}
			})
			if err != nil {
				return "", err
			}
			mode, imbalance := "static", rep.Imbalance()
			if dynamic {
				mode, imbalance = "dynamic", rep.WorkerImbalance()
			}
			tb.AddRow(p, mode, fmt.Sprintf("%v", rep.PerRank), rep.MaxLoad(), imbalance)
		}
	}
	_ = quick
	return writeClaim(outDir, "c8_taskfarm", tb.String()+
		"\nStatic imbalance = ceil(M/P)/(M/P) when P does not divide M; the dynamic\n"+
		"manager-worker farm (rank 0 managing) levels the worker loads on demand.")
}

// ClaimC9Uncertainty regenerates the §7 uncertainty claim: the ensemble's
// mean predictive entropy is markedly higher on corrupted
// (out-of-distribution) digits than on clean ones, while single-model
// softmax confidence separates them less.
func ClaimC9Uncertainty(outDir string, quick bool) (string, error) {
	trainN, members, evalN := 2500, 8, 400
	if quick {
		trainN, members, evalN = 900, 4, 150
	}
	ds := mnistgen.Generate(777, trainN)
	train, val := ds.Split(trainN * 4 / 5)
	cfgs := ensemble.Grid([][]int{{24}, {32}}, []float64{0.1, 0.05}, []float64{0.9, 0.5}, 6, 32, 888)[:members]
	ens := ensemble.Train(train, val, cfgs, 0)

	clean := mnistgen.Generate(999, evalN)
	ood := mnistgen.GenerateOOD(999, evalN)

	uClean := ens.MeanUncertainty(clean)
	uOOD := ens.MeanUncertainty(ood)
	accClean := ens.Evaluate(clean)
	accOOD := ens.Evaluate(ood)

	tb := stats.NewTable(fmt.Sprintf("Ensemble of %d nets on %d clean vs %d corrupted digits", members, evalN, evalN),
		"dataset", "accuracy", "mean predictive entropy (nats)")
	tb.AddRow("clean (in-distribution)", accClean, uClean)
	tb.AddRow("corrupted (OOD: occlusion/invert/noise)", accOOD, uOOD)
	verdict := fmt.Sprintf("Entropy ratio OOD/clean = %.2f — the model 'knows when it doesn't know'.", uOOD/uClean)
	if uOOD <= uClean {
		verdict = "FAILED: OOD entropy not higher than clean."
	}
	return writeClaim(outDir, "c9_uncertainty", tb.String()+"\n"+verdict)
}
