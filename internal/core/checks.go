package core

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/dataio"
	"repro/internal/ensemble"
	"repro/internal/heat"
	"repro/internal/kmeans"
	"repro/internal/knn"
	"repro/internal/locale"
	"repro/internal/mnistgen"
	"repro/internal/traffic"
)

// Check is one acceptance criterion from the assignment handouts
// (docs/assignments), runnable as an auto-grader via `peachy verify`.
type Check struct {
	// ID is the check key, prefixed by its assignment.
	ID string
	// Title states the criterion.
	Title string
	// Run returns a one-line detail and whether the criterion holds.
	Run func() (detail string, ok bool)
}

// Checks returns the auto-grader suite.
func Checks() []Check {
	return []Check{
		{
			ID:    "knn/variants-agree",
			Title: "every kNN variant predicts identically",
			Run: func() (string, bool) {
				ds := dataio.GaussianMixture(90, 700, 6, 3, 3.0)
				db, q := ds.Split(600)
				want := knn.SequentialHeap(db, q.Points, 7)
				mr, err := knn.MapReduce(cluster.NewWorld(3), db, q.Points, 7, true)
				if err != nil {
					return err.Error(), false
				}
				par := knn.Parallel(db, q.Points, 7, 4)
				for i := range want {
					if mr[i] != want[i] || par[i] != want[i] {
						return fmt.Sprintf("query %d disagrees", i), false
					}
				}
				return fmt.Sprintf("%d queries agree across heap/parallel/mapreduce", len(want)), true
			},
		},
		{
			ID:    "knn/combiner-saves",
			Title: "the MapReduce combiner cuts shuffle traffic",
			Run: func() (string, bool) {
				ds := dataio.GaussianMixture(91, 830, 6, 3, 3.0)
				db, q := ds.Split(800)
				wOn, wOff := cluster.NewWorld(4), cluster.NewWorld(4)
				if _, err := knn.MapReduce(wOn, db, q.Points, 7, true); err != nil {
					return err.Error(), false
				}
				if _, err := knn.MapReduce(wOff, db, q.Points, 7, false); err != nil {
					return err.Error(), false
				}
				ratio := float64(wOff.TotalBytes()) / float64(wOn.TotalBytes())
				return fmt.Sprintf("combiner saves %.1fx bytes", ratio), ratio > 4
			},
		},
		{
			ID:    "kmeans/strategies-agree",
			Title: "critical/atomic/reduction reach the sequential WCSS",
			Run: func() (string, bool) {
				ds := dataio.GaussianMixture(92, 1500, 3, 4, 1.5)
				base := kmeans.Run(ds.Points, kmeans.Options{K: 4, Seed: 2}).WCSS(ds.Points)
				for _, s := range []kmeans.Strategy{kmeans.Critical, kmeans.Atomic, kmeans.Reduction} {
					w := kmeans.Run(ds.Points, kmeans.Options{K: 4, Seed: 2, Strategy: s, Workers: 4}).WCSS(ds.Points)
					if math.Abs(w-base)/base > 1e-6 {
						return fmt.Sprintf("strategy %v WCSS %.2f vs %.2f", s, w, base), false
					}
				}
				return fmt.Sprintf("all strategies at WCSS %.0f", base), true
			},
		},
		{
			ID:    "kmeans/distributed-matches",
			Title: "the Allreduce formulation matches sequential for any rank count",
			Run: func() (string, bool) {
				ds := dataio.GaussianMixture(93, 900, 3, 3, 1.5)
				seq := kmeans.Run(ds.Points, kmeans.Options{K: 3, Seed: 4})
				for _, p := range []int{2, 5} {
					dist, err := kmeans.RunDistributed(cluster.NewWorld(p), ds.Points, kmeans.Options{K: 3, Seed: 4})
					if err != nil {
						return err.Error(), false
					}
					if dist.Iterations != seq.Iterations {
						return fmt.Sprintf("P=%d iterations %d vs %d", p, dist.Iterations, seq.Iterations), false
					}
				}
				return fmt.Sprintf("converged in %d iterations at every P", seq.Iterations), true
			},
		},
		{
			ID:    "traffic/bit-reproducible",
			Title: "parallel traffic is bit-identical to serial for every worker count",
			Run: func() (string, bool) {
				cfg := traffic.Config{Cars: 200, RoadLen: 1000, VMax: 5, P: 0.13, Seed: 7}
				ref, _ := traffic.New(cfg)
				ref.RunSerial(150)
				for _, w := range []int{2, 3, 8} {
					s, _ := traffic.New(cfg)
					s.RunParallel(150, w, traffic.SharedSequence)
					if s.Fingerprint() != ref.Fingerprint() {
						return fmt.Sprintf("workers=%d diverged", w), false
					}
				}
				dist, _ := traffic.New(cfg)
				if err := dist.RunCluster(cluster.NewWorld(4), 150); err != nil {
					return err.Error(), false
				}
				if dist.Fingerprint() != ref.Fingerprint() {
					return "cluster version diverged", false
				}
				return fmt.Sprintf("fingerprint %016x everywhere", ref.Fingerprint()), true
			},
		},
		{
			ID:    "traffic/jams-need-randomness",
			Title: "jams appear with dawdling and vanish without it",
			Run: func() (string, bool) {
				cfg := traffic.Config{Cars: 200, RoadLen: 1000, VMax: 5, P: 0.13, Seed: 8}
				det, _ := traffic.New(cfg)
				det.RunDeterministic(300)
				for _, v := range det.Velocities() {
					if v != 4 {
						return "deterministic flow not uniform", false
					}
				}
				rnd, _ := traffic.New(cfg)
				rnd.RunSerial(300)
				slow := 0
				for _, v := range rnd.Velocities() {
					if v <= 1 {
						slow++
					}
				}
				return fmt.Sprintf("%d slow cars with randomness, 0 without", slow), slow > 0
			},
		},
		{
			ID:    "heat/solvers-agree",
			Title: "forall and coforall heat solvers match serial bit-for-bit",
			Run: func() (string, bool) {
				p := heat.Problem{Alpha: 0.4, U0: heat.SinInit(517), Steps: 123}
				want, err := heat.SolveSerial(p)
				if err != nil {
					return err.Error(), false
				}
				sys := locale.NewSystem(5, 2)
				fa, err := heat.SolveForall(p, sys)
				if err != nil {
					return err.Error(), false
				}
				co, err := heat.SolveCoforall(p, sys)
				if err != nil {
					return err.Error(), false
				}
				if heat.MaxAbsDiff(want, fa) != 0 || heat.MaxAbsDiff(want, co) != 0 {
					return "solvers diverge", false
				}
				return "both distributed solvers exact on 5 locales", true
			},
		},
		{
			ID:    "heat/analytic",
			Title: "the solution matches the exact eigenmode decay",
			Run: func() (string, bool) {
				const nx, nt = 201, 400
				p := heat.Problem{Alpha: 0.25, U0: heat.SinInit(nx), Steps: nt}
				got, err := heat.SolveSerial(p)
				if err != nil {
					return err.Error(), false
				}
				lambda := math.Pow(heat.DecayFactor(nx, p.Alpha), nt)
				u0 := heat.SinInit(nx)
				maxErr := 0.0
				for i := range got {
					if e := math.Abs(got[i] - u0[i]*lambda); e > maxErr {
						maxErr = e
					}
				}
				return fmt.Sprintf("max error vs analytic %.1e", maxErr), maxErr < 1e-10
			},
		},
		{
			ID:    "ensemble/deterministic",
			Title: "distributed HPO training matches local member-for-member",
			Run: func() (string, bool) {
				ds := mnistgen.Generate(94, 700)
				train, val := ds.Split(560)
				cfgs := ensemble.Grid([][]int{{16}}, []float64{0.1}, []float64{0.9, 0.5}, 3, 32, 95)
				local := ensemble.Train(train, val, cfgs, 2)
				dist, _, err := ensemble.TrainDistributed(cluster.NewWorld(3), train, val, cfgs, true)
				if err != nil {
					return err.Error(), false
				}
				for i := range cfgs {
					if local.Members[i].ValAccuracy != dist.Members[i].ValAccuracy {
						return fmt.Sprintf("member %d differs", i), false
					}
				}
				return fmt.Sprintf("%d members identical", len(cfgs)), true
			},
		},
		{
			ID:    "ensemble/uncertainty",
			Title: "OOD inputs carry higher predictive entropy than clean ones",
			Run: func() (string, bool) {
				ds := mnistgen.Generate(96, 900)
				train, val := ds.Split(720)
				cfgs := ensemble.Grid([][]int{{24}}, []float64{0.1, 0.05}, []float64{0.9, 0.5}, 4, 32, 97)
				ens := ensemble.Train(train, val, cfgs, 2)
				uc := ens.MeanUncertainty(mnistgen.Generate(98, 120))
				uo := ens.MeanUncertainty(mnistgen.GenerateOOD(98, 120))
				return fmt.Sprintf("entropy clean %.3f vs OOD %.3f", uc, uo), uo > uc
			},
		},
	}
}

// RunChecks executes every check and returns (passed, total) plus a
// per-check report line list.
func RunChecks() (int, int, []string) {
	checks := Checks()
	passed := 0
	lines := make([]string, 0, len(checks))
	for _, c := range checks {
		detail, ok := c.Run()
		mark := "FAIL"
		if ok {
			mark = "PASS"
			passed++
		}
		lines = append(lines, fmt.Sprintf("[%s] %-28s %s — %s", mark, c.ID, c.Title, detail))
	}
	return passed, len(checks), lines
}
