package core

import (
	"fmt"

	"repro/internal/dataio"
	"repro/internal/ensemble"
	"repro/internal/kmeans"
	"repro/internal/mnistgen"
	"repro/internal/spatial"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// The paper's assignments each sketch "variations" and "further
// optimizations" for stronger students. These exhibits implement them:
// V1 the traffic parameter study (fundamental diagram), V2 the kNN
// space-partitioning ablation, V3 the K-means initialisation upgrade, and
// V4 the HPO early-culling variation.

// Variations returns the extension exhibits (regenerated after the core
// set by RunAll via the registry below).
func Variations() []Exhibit {
	return []Exhibit{
		{"v1", "V1 (§5 variation): traffic parameter study — the fundamental diagram", VariationV1FundamentalDiagram},
		{"v2", "V2 (§2 variation): space-partitioning pruning ablation", VariationV2KDPruning},
		{"v3", "V3 (§3 optimisation): kmeans++ initialisation", VariationV3KMeansPlusPlus},
		{"v4", "V4 (§7 variation): kill the worst performers mid-HPO", VariationV4Culling},
		{"v5", "V5 (§5 variation): open boundary conditions — boundary-induced saturation", VariationV5OpenBoundaries},
		{"v6", "V6 (§3 exercise): choosing K — elbow and silhouette", VariationV6ChooseK},
	}
}

// VariationV1FundamentalDiagram sweeps car density and measures average
// flow — the flow-density ("fundamental") diagram of the NaSch model,
// which rises linearly in the free-flow regime and collapses past the
// critical density. This is the "series of parameter study cases" the
// assignment suggests.
func VariationV1FundamentalDiagram(outDir string, quick bool) (string, error) {
	roadLen, warm, window := 1000, 500, 100
	if quick {
		roadLen, warm, window = 400, 150, 40
	}
	tb := stats.NewTable(fmt.Sprintf("NaSch fundamental diagram (road %d, vmax 5, p 0.13)", roadLen),
		"density", "mean velocity", "flow (cars/cell/step)")
	densities := []float64{0.05, 0.10, 0.15, 0.20, 0.30, 0.45, 0.60, 0.80}
	peak, peakDensity := 0.0, 0.0
	for _, rho := range densities {
		cars := int(rho * float64(roadLen))
		s, err := traffic.New(traffic.Config{Cars: cars, RoadLen: roadLen, VMax: 5, P: 0.13, Seed: 7})
		if err != nil {
			return "", err
		}
		s.RunSerial(warm)
		flow, vel := 0.0, 0.0
		for i := 0; i < window; i++ {
			s.RunSerial(1)
			flow += s.Flow() / float64(window)
			vel += s.MeanVelocity() / float64(window)
		}
		if flow > peak {
			peak, peakDensity = flow, rho
		}
		tb.AddRow(rho, vel, flow)
	}
	return writeClaim(outDir, "v1_fundamental_diagram", tb.String()+
		fmt.Sprintf("\nFlow peaks at density ~%.2f and collapses toward gridlock past it —\n"+
			"the literature's NaSch shape (peak near 1/(vmax+2) for small p).", peakDensity))
}

// VariationV2KDPruning measures how much work the k-d tree's bounding-box
// lower bound eliminates, as a function of dimension — showing both the
// win in low dimension and the curse of dimensionality the Data
// Structures variation would teach.
func VariationV2KDPruning(outDir string, quick bool) (string, error) {
	n, trials := 20000, 50
	if quick {
		n, trials = 4000, 20
	}
	tb := stats.NewTable(fmt.Sprintf("k-d tree pruning vs dimension (n=%d, k=15)", n),
		"d", "points examined (avg)", "fraction of n", "subtrees pruned (avg)")
	for _, d := range []int{2, 4, 8, 16, 32} {
		ds := dataio.GaussianMixture(50+uint64(d), n+trials, d, 4, 4.0)
		db, queries := ds.Split(n)
		tree := spatial.NewKDTree(db.Points, db.Labels)
		var examined, pruned float64
		for _, q := range queries.Points {
			var st spatial.SearchStats
			tree.Nearest(q, 15, &st)
			examined += float64(st.PointsExamined) / float64(trials)
			pruned += float64(st.NodesPruned) / float64(trials)
		}
		tb.AddRow(d, examined, examined/float64(n), pruned)
	}
	return writeClaim(outDir, "v2_kd_pruning", tb.String()+
		"\nLow dimension: a few percent of points touched. High dimension: the lower\n"+
		"bound stops pruning (curse of dimensionality) and brute force wins — exactly\n"+
		"why C1's d=40 instance shows only a modest k-d tree speedup.")
}

// VariationV3KMeansPlusPlus compares random initial centroids against
// kmeans++ seeding over several seeds: iterations to converge and final
// WCSS.
func VariationV3KMeansPlusPlus(outDir string, quick bool) (string, error) {
	n, trials := 20000, 8
	if quick {
		n, trials = 4000, 4
	}
	ds := dataio.GaussianMixture(61, n, 2, 12, 2.0)
	var itR, itP, wR, wP float64
	for seed := uint64(0); seed < uint64(trials); seed++ {
		r := kmeans.Run(ds.Points, kmeans.Options{K: 12, Seed: seed, Init: kmeans.RandomInit})
		p := kmeans.Run(ds.Points, kmeans.Options{K: 12, Seed: seed, Init: kmeans.PlusPlusInit})
		itR += float64(r.Iterations) / float64(trials)
		itP += float64(p.Iterations) / float64(trials)
		wR += r.WCSS(ds.Points) / float64(trials)
		wP += p.WCSS(ds.Points) / float64(trials)
	}
	tb := stats.NewTable(fmt.Sprintf("K-means init strategies, n=%d K=12, %d seeds", n, trials),
		"init", "iterations (avg)", "final WCSS (avg)")
	tb.AddRow("random points", itR, wR)
	tb.AddRow("kmeans++", itP, wP)
	return writeClaim(outDir, "v3_kmeans_plusplus", tb.String()+
		fmt.Sprintf("\nkmeans++ reaches %.1f%% of random init's WCSS in %.0f%% of the iterations.",
			100*wP/wR, 100*itP/itR))
}

// VariationV4Culling implements the §7 suggestion of "killing some of the
// lowest performing nodes and reassigning their resources": probe every
// config for one epoch, keep the best half, and compare the surviving
// ensemble against the full ensemble.
func VariationV4Culling(outDir string, quick bool) (string, error) {
	trainN, members := 2500, 8
	if quick {
		trainN, members = 900, 6
	}
	ds := mnistgen.Generate(71, trainN)
	train, val := ds.Split(trainN * 4 / 5)
	cfgs := ensemble.Grid([][]int{{16}, {32}}, []float64{0.1, 0.01}, []float64{0.9, 0.0}, 6, 32, 72)[:members]

	full := ensemble.Train(train, val, cfgs, 0)
	culled := ensemble.TrainWithCulling(train, val, cfgs, 0, 1, 0.5)

	// Cost proxy: trained epochs (full budget vs probe + survivors).
	fullEpochs := members * 6
	culledEpochs := members*1 + len(culled.Members)*6

	tb := stats.NewTable(fmt.Sprintf("HPO culling, %d configs", members),
		"strategy", "members kept", "epochs trained", "ensemble val accuracy")
	tb.AddRow("train everything", members, fullEpochs, full.Evaluate(val))
	tb.AddRow("probe 1 epoch, cull 50%", len(culled.Members), culledEpochs, culled.Evaluate(val))
	return writeClaim(outDir, "v4_culling", tb.String()+
		"\nCulling reclaims the epochs the weakest configs would have burned while the\n"+
		"surviving ensemble stays within noise of the full one.")
}
