package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestExhibitRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Exhibits() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete exhibit %+v", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"fig1", "fig2", "fig3", "fig4", "table1", "c1", "c5", "c9"} {
		if !ids[want] {
			t.Errorf("missing exhibit %s", want)
		}
	}
	if _, ok := Find("fig3"); !ok {
		t.Error("Find failed")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find invented an exhibit")
	}
}

func TestTable1MatchesPaperProse(t *testing.T) {
	dir := t.TempDir()
	summary, err := Table1Survey(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(summary, "MISMATCH") {
		t.Errorf("archival table inconsistent with prose:\n%s", summary)
	}
	if _, err := os.Stat(filepath.Join(dir, "table1_survey.md")); err != nil {
		t.Error("table file not written")
	}
}

func TestFigure1Quick(t *testing.T) {
	dir := t.TempDir()
	summary, err := Figure1KMeans(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "WCSS") {
		t.Error("summary lacks quality metric")
	}
	fi, err := os.Stat(filepath.Join(dir, "fig1_kmeans.ppm"))
	if err != nil || fi.Size() == 0 {
		t.Error("scatter raster missing")
	}
}

func TestFigure3Quick(t *testing.T) {
	dir := t.TempDir()
	summary, err := Figure3Traffic(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig3_traffic.pgm", "fig3_traffic_norandom.pgm"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("%s missing", f)
		}
	}
	if !strings.Contains(summary, "jams") {
		t.Error("summary lacks the jam statement")
	}
}

func TestClaimC5Quick(t *testing.T) {
	dir := t.TempDir()
	summary, err := ClaimC5TrafficRepro(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "REPRODUCED") {
		t.Errorf("C5 did not reproduce:\n%s", summary)
	}
}

func TestClaimC6Quick(t *testing.T) {
	dir := t.TempDir()
	summary, err := ClaimC6JumpAhead(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "2^18") {
		t.Error("C6 table incomplete")
	}
}

func TestClaimC8Quick(t *testing.T) {
	dir := t.TempDir()
	summary, err := ClaimC8TaskFarm(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "dynamic") || !strings.Contains(summary, "static") {
		t.Error("C8 modes missing")
	}
}

func TestRunAllQuickComplete(t *testing.T) {
	dir := t.TempDir()
	if err := RunAll(dir, true); err != nil {
		t.Fatal(err)
	}
	report, err := os.ReadFile(filepath.Join(dir, "repro_report.md"))
	if err != nil {
		t.Fatal(err)
	}
	// Every registered exhibit must have a section.
	for _, e := range AllExhibits() {
		if !strings.Contains(string(report), strings.ToUpper(e.ID)+" — ") {
			t.Errorf("report missing section for %s", e.ID)
		}
	}
	if strings.Contains(string(report), "FAILED") {
		t.Error("report contains FAILED")
	}
}

func TestRunAllBadDir(t *testing.T) {
	if err := RunAll("/dev/null/nope", true); err == nil {
		t.Error("invalid out dir accepted")
	}
}

func TestVariationV5Quick(t *testing.T) {
	dir := t.TempDir()
	summary, err := VariationV5OpenBoundaries(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "saturates") {
		t.Error("V5 missing saturation statement")
	}
	if _, err := os.Stat(filepath.Join(dir, "v5_open_boundaries.pgm")); err != nil {
		t.Error("V5 chart missing")
	}
}

func TestVariationV6Quick(t *testing.T) {
	dir := t.TempDir()
	summary, err := VariationV6ChooseK(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(summary, "MISMATCH") {
		t.Errorf("V6 picked the wrong K:\n%s", summary)
	}
}

func TestChecksAllPass(t *testing.T) {
	passed, total, lines := RunChecks()
	if passed != total {
		for _, l := range lines {
			t.Log(l)
		}
		t.Fatalf("%d/%d acceptance checks passed", passed, total)
	}
	if total < 10 {
		t.Errorf("only %d checks registered", total)
	}
	ids := map[string]bool{}
	for _, c := range Checks() {
		if ids[c.ID] {
			t.Errorf("duplicate check id %s", c.ID)
		}
		ids[c.ID] = true
	}
}
