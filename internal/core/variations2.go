package core

import (
	"fmt"
	"path/filepath"

	"repro/internal/dataio"
	"repro/internal/kmeans"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/viz"
)

// VariationV5OpenBoundaries measures the §5 "change boundary conditions"
// variation: on an open road, throughput rises with the injection rate in
// the free-flow phase and saturates at the road's maximum current — the
// boundary-induced phase transition a ring cannot show. Writes a line
// chart alongside the table.
func VariationV5OpenBoundaries(outDir string, quick bool) (string, error) {
	roadLen, steps := 400, 6000
	if quick {
		roadLen, steps = 200, 1500
	}
	alphas := []float64{0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0}
	tb := stats.NewTable(fmt.Sprintf("Open road (length %d, vmax 5, p 0.13): injection sweep", roadLen),
		"alpha (injection)", "throughput (cars/step)", "steady density")
	var xs, ys []float64
	for _, a := range alphas {
		s, err := traffic.NewOpen(traffic.Config{RoadLen: roadLen, VMax: 5, P: 0.13, Seed: 17}, a)
		if err != nil {
			return "", err
		}
		s.Run(steps)
		tb.AddRow(a, s.Throughput(), s.Density())
		xs = append(xs, a)
		ys = append(ys, s.Throughput())
	}
	chart := viz.LineChart(400, 240, []viz.Series{{Name: "throughput", X: xs, Y: ys, Shade: 0}})
	chartPath := filepath.Join(outDir, "v5_open_boundaries.pgm")
	if err := viz.SaveRaster(chartPath, chart); err != nil {
		return "", err
	}
	// Saturation check: the last doubling of alpha must gain little.
	gainEarly := ys[2] / ys[0]
	gainLate := ys[len(ys)-1] / ys[len(ys)-3]
	return writeClaim(outDir, "v5_open_boundaries", tb.String()+
		fmt.Sprintf("\nChart: %s\nEarly alpha gain %.2fx vs late gain %.2fx: the road saturates at its\n"+
			"maximum current regardless of how hard the boundary pushes.",
			chartPath, gainEarly, gainLate))
}

// VariationV6ChooseK runs the model-selection sweep: WCSS per K (the
// elbow) and silhouette per K, which peaks at the true cluster count.
func VariationV6ChooseK(outDir string, quick bool) (string, error) {
	n := 4000
	if quick {
		n = 1200
	}
	const trueK = 5
	ds := dataio.GaussianMixture(81, n, 3, trueK, 2.0)
	ks := []int{2, 3, 4, 5, 6, 7, 8}
	// kmeans++ seeding keeps each fit out of the bad local optima that
	// random init falls into at the true K (V3 quantifies the gap).
	results := kmeans.SweepK(ds.Points, ks, kmeans.Options{Seed: 5, Init: kmeans.PlusPlusInit}, 400)

	tb := stats.NewTable(fmt.Sprintf("Choosing K (true K = %d, n = %d)", trueK, n),
		"K", "WCSS", "silhouette", "iterations")
	var xs, ys []float64
	for _, r := range results {
		tb.AddRow(r.K, r.WCSS, r.Silhouette, r.Iterations)
		xs = append(xs, float64(r.K))
		ys = append(ys, r.Silhouette)
	}
	chart := viz.LineChart(400, 240, []viz.Series{{Name: "silhouette", X: xs, Y: ys, Shade: 0}})
	chartPath := filepath.Join(outDir, "v6_choose_k.pgm")
	if err := viz.SaveRaster(chartPath, chart); err != nil {
		return "", err
	}
	best := kmeans.BestKBySilhouette(results)
	verdict := fmt.Sprintf("Silhouette selects K = %d (true K = %d).", best.K, trueK)
	if best.K != trueK {
		verdict += " MISMATCH!"
	}
	return writeClaim(outDir, "v6_choose_k", tb.String()+"\nChart: "+chartPath+"\n"+verdict)
}
