package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/dataio"
	"repro/internal/ensemble"
	"repro/internal/kmeans"
	"repro/internal/mnistgen"
	"repro/internal/nycgen"
	"repro/internal/pipeline"
	"repro/internal/prng"
	"repro/internal/rdd"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/viz"
)

// Figure1KMeans regenerates Figure 1: a 2D point cloud clustered with
// K = 3, rendered as a colored scatter plot (fig1_kmeans.ppm).
func Figure1KMeans(outDir string, quick bool) (string, error) {
	n := 3000
	if quick {
		n = 800
	}
	// Seed 123 places the three generating centers pairwise > 70 apart,
	// so the exhibit shows the clean separation the paper's Figure 1
	// illustrates; kmeans++ seeding avoids split-cluster local optima.
	ds := dataio.GaussianMixture(123, n, 2, 3, 6.0)
	res := kmeans.Run(ds.Points, kmeans.Options{K: 3, Seed: 11, Init: kmeans.PlusPlusInit})

	xs := make([]float64, ds.Len())
	ys := make([]float64, ds.Len())
	for i, p := range ds.Points {
		xs[i], ys[i] = p[0], p[1]
	}
	img := viz.ScatterRGB(480, 360, xs, ys, res.Assign, 3)
	path := filepath.Join(outDir, "fig1_kmeans.ppm")
	if err := viz.SaveRaster(path, img); err != nil {
		return "", err
	}

	tb := stats.NewTable("", "cluster", "points", "centroid x", "centroid y")
	counts := make([]int, 3)
	for _, a := range res.Assign {
		counts[a]++
	}
	for c := 0; c < 3; c++ {
		tb.AddRow(c, counts[c], res.Centroids[c][0], res.Centroids[c][1])
	}
	return fmt.Sprintf("n=%d points, converged in %d iterations, WCSS=%.1f.\nScatter: %s\n\n%s",
		n, res.Iterations, res.WCSS(ds.Points), path, tb.String()), nil
}

// Figure2NYCHeatMap regenerates Figure 2: the four synthetic NYC datasets
// are exported, the rdd pipeline computes arrests per 100k per NTA, and
// the spatial heat map is rasterised (fig2_nyc_heatmap.ppm).
func Figure2NYCHeatMap(outDir string, quick bool) (string, error) {
	historic, current := 80000, 40000
	if quick {
		historic, current = 8000, 4000
	}
	dataDir := filepath.Join(outDir, "nyc_data")
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return "", err
	}
	city := nycgen.NewCity(202, 10, 6)
	if _, err := city.ExportAll(dataDir, 303, historic, current, 0.03); err != nil {
		return "", err
	}
	ctx := rdd.NewContext()
	rep, err := pipeline.CrimePipeline(ctx, dataDir, 8)
	if err != nil {
		return "", err
	}
	img := rep.RenderHeatMap(500, 300)
	path := filepath.Join(outDir, "fig2_nyc_heatmap.ppm")
	if err := viz.SaveRaster(path, img); err != nil {
		return "", err
	}

	tb := stats.NewTable("Hottest NTAs (arrests per 100k)", "NTA", "rate")
	for _, c := range rep.TopNTAs(5) {
		tb.AddRow(c.Key, c.N)
	}
	return fmt.Sprintf(
		"Rows: %d total, %d clean (%.1f%% dropped by cleaning), %d located in an NTA.\n"+
			"Shuffles: %d; shuffled records: %d.\nHeat map: %s\n\n%s",
		rep.TotalRows, rep.CleanRows,
		100*float64(rep.TotalRows-rep.CleanRows)/float64(rep.TotalRows),
		rep.LocatedRows, ctx.ShuffleCount(), ctx.ShuffledRecords(), path, tb.String()), nil
}

// table1Rows is the paper's archival survey data (Table 1): winter term,
// exam count, survey count, positive items (total, project), negative
// items (total, project). The table reports human survey results, so
// reproduction means reprinting the archival numbers, not recomputation.
var table1Rows = [][]int{
	// exam, survey, posTotal, posProj, negTotal, negProj
	{22, 11, 14, 8, 8, 4}, // 2022/23
	{11, 12, 12, 3, 8, 1}, // 2021/22
	{18, 9, 5, 2, 4, 0},   // 2020/21
	{21, 11, 2, 0, 4, 0},  // 2019/20
}

var table1Terms = []string{"2022/23", "2021/22", "2020/21", "2019/20"}

// Table1Survey reprints the archival survey table and verifies the
// aggregate the paper quotes in prose ("Forty-three students contributed
// 33 positive items about the course, 13 of them specifically about the
// project").
func Table1Survey(outDir string, _ bool) (string, error) {
	tb := stats.NewTable("Survey results per winter term",
		"Winter", "Exam", "Survey", "Pos. total", "Pos. proj.", "Neg. total", "Neg. proj.")
	surveySum, posSum, posProjSum := 0, 0, 0
	for i, row := range table1Rows {
		tb.AddRow(table1Terms[i], row[0], row[1], row[2], row[3], row[4], row[5])
		surveySum += row[1]
		posSum += row[2]
		posProjSum += row[3]
	}
	out := tb.String()
	check := fmt.Sprintf(
		"Cross-check against the paper's prose: %d survey respondents contributed %d positive items, %d about the project (paper: 43, 33, 13).",
		surveySum, posSum, posProjSum)
	if surveySum != 43 || posSum != 33 || posProjSum != 13 {
		check += " MISMATCH!"
	}
	path := filepath.Join(outDir, "table1_survey.md")
	if err := os.WriteFile(path, []byte(out+"\n"+check+"\n"), 0o644); err != nil {
		return "", err
	}
	return out + "\n" + check, nil
}

// Figure3Traffic regenerates Figure 3: the space-time diagram of the
// Nagel-Schreckenberg model with the paper's exact parameters (200 cars,
// road length 1000, p=0.13, vmax=5), plus the no-randomness ablation in
// which jams do not occur.
func Figure3Traffic(outDir string, quick bool) (string, error) {
	steps := 500
	if quick {
		steps = 150
	}
	cfg := traffic.Config{Cars: 200, RoadLen: 1000, VMax: 5, P: 0.13, Seed: 2023}

	render := func(mode traffic.RNGMode, name string) (string, int, error) {
		rows, err := traffic.SpaceTime(cfg, steps, mode)
		if err != nil {
			return "", 0, err
		}
		img := viz.NewGray(cfg.RoadLen, len(rows))
		slowCells := 0
		for t, row := range rows {
			for x, v := range row {
				switch {
				case v == 0:
					img.Set(x, t, 255) // empty
				case v <= 2: // stopped or crawling: jam
					img.Set(x, t, 0)
					slowCells++
				default:
					img.Set(x, t, uint8(40*v))
				}
			}
		}
		path := filepath.Join(outDir, name)
		if err := viz.SaveRaster(path, img); err != nil {
			return "", 0, err
		}
		return path, slowCells, nil
	}

	randPath, randSlow, err := render(traffic.SharedSequence, "fig3_traffic.pgm")
	if err != nil {
		return "", err
	}
	detPath, detSlow, err := render(traffic.NoRandom, "fig3_traffic_norandom.pgm")
	if err != nil {
		return "", err
	}
	return fmt.Sprintf(
		"Parameters: 200 cars, road 1000, p=0.13, vmax=5, %d steps.\n"+
			"Randomized: %s — %d slow-car cells (jams visible).\n"+
			"No randomness: %s — %d slow-car cells after warmup (paper: jams do not occur).",
		steps, randPath, randSlow, detPath, detSlow), nil
}

// Figure4Uncertainty regenerates Figure 4: an ensemble trained on
// synthetic digits reports a prediction and an uncertainty for (a) an
// ambiguous 4/9 blend and (b) a clean digit; the ambiguous input must
// carry the higher uncertainty.
func Figure4Uncertainty(outDir string, quick bool) (string, error) {
	trainN, members := 3000, 8
	if quick {
		trainN, members = 900, 4
	}
	ds := mnistgen.Generate(404, trainN)
	train, val := ds.Split(trainN * 4 / 5)
	cfgs := ensemble.Grid(
		[][]int{{24}, {32}},
		[]float64{0.1, 0.05},
		[]float64{0.9, 0.5},
		6, 32, 505)[:members]
	ens := ensemble.Train(train, val, cfgs, 0)

	r := prng.New(606)
	ambiguous := mnistgen.Ambiguous(4, 9, r)
	clean := mnistgen.Render(4, r)
	ca, ua := ens.Predict(ambiguous)
	cc, uc := ens.Predict(clean)

	var b strings.Builder
	fmt.Fprintf(&b, "Ensemble of %d nets (val accuracy of best member: %.3f).\n\n", members, ens.Best().ValAccuracy)
	fmt.Fprintf(&b, "A) Ambiguous 4/9 blend -> predicted %d, uncertainty %.3f nats\n%s\n", ca, ua, mnistgen.Ascii(ambiguous))
	fmt.Fprintf(&b, "B) Clean 4            -> predicted %d, uncertainty %.3f nats\n%s\n", cc, uc, mnistgen.Ascii(clean))
	if ua > uc {
		fmt.Fprintf(&b, "As in the paper: the ambiguous input is the uncertain one (%.3f > %.3f).", ua, uc)
	} else {
		fmt.Fprintf(&b, "WARNING: ambiguous input not more uncertain (%.3f <= %.3f).", ua, uc)
	}
	path := filepath.Join(outDir, "fig4_uncertainty.txt")
	if err := os.WriteFile(path, []byte(b.String()+"\n"), 0o644); err != nil {
		return "", err
	}
	return b.String(), nil
}
