// Package core is the reproduction engine: it regenerates every exhibit of
// the paper — Figures 1-4, Table 1, and the quantitative in-text claims
// C1-C9 indexed in DESIGN.md — by driving the assignment packages with the
// paper's parameters and writing artifacts (rasters, markdown tables,
// text) into an output directory. `cmd/peachy repro` and the repository's
// integration tests and benchmarks are thin wrappers around this package.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Exhibit is one reproducible artifact of the paper.
type Exhibit struct {
	// ID is the exhibit key: "fig1".."fig4", "table1", "c1".."c9".
	ID string
	// Title describes what the exhibit shows.
	Title string
	// Run regenerates the exhibit into outDir, returning a markdown
	// summary. quick trades instance size for runtime.
	Run func(outDir string, quick bool) (string, error)
}

// Exhibits returns the full registry in presentation order.
func Exhibits() []Exhibit {
	return []Exhibit{
		{"fig1", "Figure 1: K-means clustering of a 2D dataset, K=3", Figure1KMeans},
		{"fig2", "Figure 2: arrests per 100k per NTA heat map pipeline", Figure2NYCHeatMap},
		{"table1", "Table 1: course survey results (archival)", Table1Survey},
		{"fig3", "Figure 3: Nagel-Schreckenberg space-time diagram + no-randomness ablation", Figure3Traffic},
		{"fig4", "Figure 4: ensemble uncertainty on ambiguous vs clean digits", Figure4Uncertainty},
		{"c1", "C1: kNN runtime — sort vs heap vs parallel vs MapReduce", ClaimC1KNN},
		{"c2", "C2: MapReduce combiner cuts communication", ClaimC2Combiner},
		{"c3", "C3: K-means strategy ladder (critical/atomic/reduction)", ClaimC3KMeansStrategies},
		{"c4", "C4: distributed K-means traffic = one Allreduce per iteration", ClaimC4KMeansDistributed},
		{"c5", "C5: traffic output identical for any worker count", ClaimC5TrafficRepro},
		{"c6", "C6: PRNG jump-ahead is O(log n)", ClaimC6JumpAhead},
		{"c7", "C7: heat coforall avoids forall's per-step task spawning", ClaimC7Heat},
		{"c8", "C8: task farming when ranks don't divide tasks", ClaimC8TaskFarm},
		{"c9", "C9: OOD inputs carry higher predictive entropy", ClaimC9Uncertainty},
	}
}

// AllExhibits returns the paper exhibits followed by the variation
// exhibits (the paper's suggested extensions, DESIGN.md §4).
func AllExhibits() []Exhibit {
	return append(Exhibits(), Variations()...)
}

// Find returns the exhibit with the given id.
func Find(id string) (Exhibit, bool) {
	for _, e := range AllExhibits() {
		if e.ID == id {
			return e, true
		}
	}
	return Exhibit{}, false
}

// RunAll regenerates every exhibit into outDir and writes an index file
// (repro_report.md). quick shrinks instance sizes for CI-grade runtimes.
func RunAll(outDir string, quick bool) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	var report strings.Builder
	report.WriteString("# Reproduction report: Peachy Parallel Assignments (EduHPC 2023)\n\n")
	fmt.Fprintf(&report, "Generated %s, quick=%v.\n\n", time.Now().Format(time.RFC3339), quick)
	for _, e := range AllExhibits() {
		summary, err := e.Run(outDir, quick)
		if err != nil {
			return fmt.Errorf("core: exhibit %s: %w", e.ID, err)
		}
		fmt.Fprintf(&report, "## %s — %s\n\n%s\n\n", strings.ToUpper(e.ID), e.Title, summary)
	}
	return os.WriteFile(filepath.Join(outDir, "repro_report.md"), []byte(report.String()), 0o644)
}

// sortedKeys returns a map's keys in sorted order (deterministic reports).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// timeIt runs f and returns its wall-clock seconds.
func timeIt(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}
