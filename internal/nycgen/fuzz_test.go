package nycgen

import "testing"

// FuzzParsers exercises the three CSV row parsers with arbitrary lines.
func FuzzParsers(f *testing.F) {
	f.Add("123,2021-05-06,12.5,30.25,ASSAULT")
	f.Add("NTA001,East Haven #1,0 0;10 0;10 10;0 10")
	f.Add("NTA001,East Haven #1,12345")
	f.Add("")
	f.Add(",,,,,,,,")
	f.Fuzz(func(t *testing.T, line string) {
		if a, ok := ParseArrest(line); ok {
			_ = a.Valid() // must not panic
		}
		if _, poly, ok := ParseBoundary(line); ok {
			poly.BBox()
			poly.Area()
		}
		ParsePopulation(line)
	})
}
