package nycgen

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/geo"
)

func TestNewCityTiling(t *testing.T) {
	c := NewCity(1, 10, 6)
	if len(c.NTAs) != 60 {
		t.Fatalf("NTA count %d", len(c.NTAs))
	}
	// Tiles must cover the city: every sampled point locates somewhere.
	ix := c.Index()
	misses := 0
	for x := 0.5; x < 100; x += 3.7 {
		for y := 0.5; y < 60; y += 2.3 {
			if _, ok := ix.Locate(geo.Point{X: x, Y: y}); !ok {
				misses++
			}
		}
	}
	if misses > 0 {
		t.Errorf("%d interior sample points not covered by any NTA", misses)
	}
	// Total area equals the city rectangle (tiles don't overlap or leak).
	total := 0.0
	for _, n := range c.NTAs {
		total += n.Boundary.Area()
	}
	if total < 5999 || total > 6001 {
		t.Errorf("total NTA area %v, want 6000", total)
	}
}

func TestCityDeterministic(t *testing.T) {
	a := NewCity(7, 5, 4)
	b := NewCity(7, 5, 4)
	for i := range a.NTAs {
		if a.NTAs[i].Population != b.NTAs[i].Population || a.NTAs[i].Name != b.NTAs[i].Name {
			t.Fatal("same seed differs")
		}
	}
}

func TestGenerateArrestsInsideOwnNTA(t *testing.T) {
	c := NewCity(2, 6, 4)
	arrests := c.GenerateArrests(3, 2000, 2021, 0)
	ix := c.Index()
	located := 0
	for _, a := range arrests {
		if !a.Valid() {
			t.Fatal("uncorrupted arrest invalid")
		}
		if _, ok := ix.Locate(geo.Point{X: a.X, Y: a.Y}); ok {
			located++
		}
	}
	// All events are drawn inside NTA boxes (edge effects may lose a few).
	if located < 1990 {
		t.Errorf("only %d/2000 arrests located", located)
	}
}

func TestCorruptionFraction(t *testing.T) {
	c := NewCity(4, 6, 4)
	arrests := c.GenerateArrests(5, 5000, 2021, 0.2)
	bad := 0
	for _, a := range arrests {
		if !a.Valid() {
			bad++
		}
	}
	if bad < 800 || bad > 1200 {
		t.Errorf("corrupted %d of 5000 at rate 0.2", bad)
	}
}

func TestArrestCSVRoundTrip(t *testing.T) {
	c := NewCity(6, 3, 3)
	arrests := c.GenerateArrests(7, 100, 2020, 0.1)
	var buf bytes.Buffer
	if err := WriteArrestsCSV(&buf, arrests); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 101 {
		t.Fatalf("lines %d", len(lines))
	}
	if _, ok := ParseArrest(lines[0]); ok {
		t.Error("header parsed as arrest")
	}
	parsed := 0
	for _, ln := range lines[1:] {
		a, ok := ParseArrest(ln)
		if !ok {
			t.Fatalf("row did not parse: %q", ln)
		}
		_ = a
		parsed++
	}
	if parsed != 100 {
		t.Errorf("parsed %d", parsed)
	}
}

func TestBoundaryCSVRoundTrip(t *testing.T) {
	c := NewCity(8, 4, 3)
	var buf bytes.Buffer
	if err := c.WriteBoundariesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if _, _, ok := ParseBoundary(lines[0]); ok {
		t.Error("header parsed")
	}
	count := 0
	for _, ln := range lines[1:] {
		id, poly, ok := ParseBoundary(ln)
		if !ok {
			t.Fatalf("boundary row did not parse: %q", ln)
		}
		if !strings.HasPrefix(id, "NTA") || len(poly.Verts) != 4 {
			t.Fatalf("bad boundary %q %v", id, poly)
		}
		count++
	}
	if count != 12 {
		t.Errorf("boundaries %d", count)
	}
}

func TestPopulationCSVRoundTrip(t *testing.T) {
	c := NewCity(9, 4, 3)
	var buf bytes.Buffer
	if err := c.WritePopulationCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	for _, ln := range lines[1:] {
		id, pop, ok := ParsePopulation(ln)
		if !ok || pop < 1000 || !strings.HasPrefix(id, "NTA") {
			t.Fatalf("bad population row %q", ln)
		}
	}
}

func TestTrueRatePositive(t *testing.T) {
	c := NewCity(10, 5, 5)
	rates := c.TrueRatePer100k(100000)
	if len(rates) != 25 {
		t.Fatalf("rates %d", len(rates))
	}
	for id, r := range rates {
		if r <= 0 {
			t.Errorf("%s rate %v", id, r)
		}
	}
}

func TestExportAll(t *testing.T) {
	dir := t.TempDir()
	c := NewCity(11, 3, 2)
	paths, err := c.ExportAll(dir, 100, 500, 300, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("paths %v", paths)
	}
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil || fi.Size() == 0 {
			t.Errorf("file %s missing or empty", p)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, ok := ParseArrest("not,enough"); ok {
		t.Error("bad arrest accepted")
	}
	if _, ok := ParseArrest("x,2021-01-01,1,2,THEFT"); ok {
		t.Error("non-numeric id accepted")
	}
	if _, _, ok := ParseBoundary("only,two"); ok {
		t.Error("bad boundary accepted")
	}
	if _, _, ok := ParseBoundary("id,name,1 2;bad"); ok {
		t.Error("bad vertex accepted")
	}
	if _, _, ok := ParsePopulation("id,name,xyz"); ok {
		t.Error("bad population accepted")
	}
}

func TestNewCityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("0x0 grid accepted")
		}
	}()
	NewCity(1, 0, 5)
}
