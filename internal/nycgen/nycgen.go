// Package nycgen generates the synthetic stand-in for the four NYC open
// datasets the Figure 2 pipeline consumes (paper §4): Neighborhood
// Tabulation Area (NTA) boundaries and populations, plus historic and
// current-year arrest event streams. Everything is seeded and serialises
// to CSV shaped like the data.cityofnewyork.us exports, so the pipeline
// exercises the same parse → clean → spatial join → aggregate → visualise
// path as the students' submissions.
package nycgen

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/geo"
	"repro/internal/prng"
)

// City is a synthetic city: a jittered grid of rectangular NTAs over a
// coordinate rectangle, with populations and arrest intensities.
type City struct {
	// Bounds of the city rectangle.
	X0, Y0, X1, Y1 float64
	NTAs           []NTA
}

// NTA is one neighborhood tabulation area.
type NTA struct {
	ID         string
	Name       string
	Boundary   geo.Polygon
	Population int
	// intensity is the relative arrest rate used by GenerateArrests.
	intensity float64
}

// Arrest is one event row.
type Arrest struct {
	ID      int
	Date    string // YYYY-MM-DD
	X, Y    float64
	Offense string
}

var offenses = []string{"ASSAULT", "LARCENY", "ROBBERY", "FRAUD", "MISCHIEF", "OTHER"}

var hoodPrefixes = []string{"East", "West", "North", "South", "Upper", "Lower", "Old", "New"}
var hoodStems = []string{"Haven", "Ridge", "Park", "Field", "Harbor", "Point", "Village", "Heights", "Crossing", "Gardens"}

// NewCity builds a city of cols x rows NTAs over a 100x60 rectangle with
// jittered internal boundaries, log-normal-ish populations and a few
// arrest hot spots.
func NewCity(seed uint64, cols, rows int) *City {
	if cols < 1 || rows < 1 {
		panic("nycgen: need at least a 1x1 grid")
	}
	r := prng.New(seed)
	c := &City{X0: 0, Y0: 0, X1: 100, Y1: 60}

	// Jittered grid lines.
	xs := jitteredLines(r, c.X0, c.X1, cols)
	ys := jitteredLines(r, c.Y0, c.Y1, rows)

	idx := 0
	for gy := 0; gy < rows; gy++ {
		for gx := 0; gx < cols; gx++ {
			name := fmt.Sprintf("%s %s",
				hoodPrefixes[r.Intn(len(hoodPrefixes))],
				hoodStems[r.Intn(len(hoodStems))])
			pop := int(math.Exp(r.Norm(9.8, 0.6))) // ~18k median
			if pop < 1000 {
				pop = 1000
			}
			intensity := math.Exp(r.Norm(0, 0.7))
			// A few hot spots with 5x the arrest intensity.
			if r.Bernoulli(0.08) {
				intensity *= 5
			}
			c.NTAs = append(c.NTAs, NTA{
				ID:         fmt.Sprintf("NTA%03d", idx),
				Name:       fmt.Sprintf("%s #%d", name, idx),
				Boundary:   geo.Rect(xs[gx], ys[gy], xs[gx+1], ys[gy+1]),
				Population: pop,
				intensity:  intensity,
			})
			idx++
		}
	}
	return c
}

func jitteredLines(r *prng.Rand, lo, hi float64, n int) []float64 {
	lines := make([]float64, n+1)
	lines[0], lines[n] = lo, hi
	step := (hi - lo) / float64(n)
	for i := 1; i < n; i++ {
		lines[i] = lo + float64(i)*step + r.Range(-0.25, 0.25)*step
	}
	return lines
}

// Index builds a geo.Index over the city's NTAs.
func (c *City) Index() *geo.Index {
	regions := make([]geo.Region, len(c.NTAs))
	for i, n := range c.NTAs {
		regions[i] = geo.Region{ID: n.ID, Poly: n.Boundary}
	}
	return geo.NewIndex(regions)
}

// GenerateArrests draws n arrest events for the given year. Each event
// picks an NTA proportionally to population x intensity, then a uniform
// position inside it. A corruption fraction of rows gets damaged
// coordinates or dates so the pipeline's cleaning stage has real work:
// those rows carry X = Y = 0 ("null island") or an empty date.
func (c *City) GenerateArrests(seed uint64, n, year int, corruption float64) []Arrest {
	r := prng.New(seed)
	// Cumulative weights.
	weights := make([]float64, len(c.NTAs))
	total := 0.0
	for i, nta := range c.NTAs {
		total += float64(nta.Population) * nta.intensity
		weights[i] = total
	}
	out := make([]Arrest, n)
	for i := 0; i < n; i++ {
		w := r.Float64() * total
		lo, hi := 0, len(weights)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if weights[mid] < w {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		nta := c.NTAs[lo]
		minX, minY, maxX, maxY := nta.Boundary.BBox()
		a := Arrest{
			ID:      year*1000000 + i,
			Date:    fmt.Sprintf("%04d-%02d-%02d", year, 1+r.Intn(12), 1+r.Intn(28)),
			X:       r.Range(minX, maxX),
			Y:       r.Range(minY, maxY),
			Offense: offenses[r.Intn(len(offenses))],
		}
		if r.Bernoulli(corruption) {
			if r.Bernoulli(0.5) {
				a.X, a.Y = 0, 0 // null island
			} else {
				a.Date = ""
			}
		}
		out[i] = a
	}
	return out
}

// TrueRatePer100k returns the expected arrests per 100k residents for each
// NTA given the generator's weights and a total event count — the ground
// truth the pipeline's output is validated against.
func (c *City) TrueRatePer100k(totalEvents int) map[string]float64 {
	total := 0.0
	for _, nta := range c.NTAs {
		total += float64(nta.Population) * nta.intensity
	}
	out := make(map[string]float64, len(c.NTAs))
	for _, nta := range c.NTAs {
		expected := float64(totalEvents) * float64(nta.Population) * nta.intensity / total
		out[nta.ID] = expected / float64(nta.Population) * 100000
	}
	return out
}

// ---------- CSV serialisation ----------

// WriteArrestsCSV writes "id,date,x,y,offense" rows with a header.
func WriteArrestsCSV(w io.Writer, arrests []Arrest) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "arrest_id,date,longitude,latitude,offense")
	for _, a := range arrests {
		fmt.Fprintf(bw, "%d,%s,%g,%g,%s\n", a.ID, a.Date, a.X, a.Y, a.Offense)
	}
	return bw.Flush()
}

// ParseArrest parses one CSV row (returns false for the header or for
// rows with the wrong field count; corrupted-but-parseable rows are
// returned as-is for the cleaning stage to judge).
func ParseArrest(line string) (Arrest, bool) {
	f := strings.Split(line, ",")
	if len(f) != 5 {
		return Arrest{}, false
	}
	id, err := strconv.Atoi(f[0])
	if err != nil {
		return Arrest{}, false
	}
	x, err1 := strconv.ParseFloat(f[2], 64)
	y, err2 := strconv.ParseFloat(f[3], 64)
	if err1 != nil || err2 != nil {
		return Arrest{}, false
	}
	return Arrest{ID: id, Date: f[1], X: x, Y: y, Offense: f[4]}, true
}

// Valid reports whether an arrest row survives cleaning: real coordinates
// and a non-empty date.
func (a Arrest) Valid() bool {
	return a.Date != "" && !(a.X == 0 && a.Y == 0)
}

// WriteBoundariesCSV writes "nta_id,name,wkt" rows, where wkt is a
// semicolon-separated "x y" vertex list.
func (c *City) WriteBoundariesCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "nta_id,name,boundary")
	for _, n := range c.NTAs {
		var sb strings.Builder
		for i, v := range n.Boundary.Verts {
			if i > 0 {
				sb.WriteByte(';')
			}
			fmt.Fprintf(&sb, "%g %g", v.X, v.Y)
		}
		fmt.Fprintf(bw, "%s,%s,%s\n", n.ID, n.Name, sb.String())
	}
	return bw.Flush()
}

// ParseBoundary parses one boundaries CSV row into (id, polygon).
func ParseBoundary(line string) (string, geo.Polygon, bool) {
	f := strings.Split(line, ",")
	if len(f) != 3 || f[0] == "nta_id" {
		return "", geo.Polygon{}, false
	}
	var poly geo.Polygon
	for _, pair := range strings.Split(f[2], ";") {
		xy := strings.Fields(pair)
		if len(xy) != 2 {
			return "", geo.Polygon{}, false
		}
		x, err1 := strconv.ParseFloat(xy[0], 64)
		y, err2 := strconv.ParseFloat(xy[1], 64)
		if err1 != nil || err2 != nil {
			return "", geo.Polygon{}, false
		}
		poly.Verts = append(poly.Verts, geo.Point{X: x, Y: y})
	}
	return f[0], poly, true
}

// WritePopulationCSV writes "nta_id,name,population" rows.
func (c *City) WritePopulationCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "nta_id,name,population")
	for _, n := range c.NTAs {
		fmt.Fprintf(bw, "%s,%s,%d\n", n.ID, n.Name, n.Population)
	}
	return bw.Flush()
}

// ParsePopulation parses one population CSV row into (id, population).
func ParsePopulation(line string) (string, int, bool) {
	f := strings.Split(line, ",")
	if len(f) != 3 || f[0] == "nta_id" {
		return "", 0, false
	}
	pop, err := strconv.Atoi(f[2])
	if err != nil {
		return "", 0, false
	}
	return f[0], pop, true
}

// ExportAll writes the four dataset files into dir: arrests_historic.csv,
// arrests_current.csv, nta_boundaries.csv, nta_population.csv. It returns
// the file paths in that order.
func (c *City) ExportAll(dir string, seed uint64, historicN, currentN int, corruption float64) ([]string, error) {
	paths := []string{
		dir + "/arrests_historic.csv",
		dir + "/arrests_current.csv",
		dir + "/nta_boundaries.csv",
		dir + "/nta_population.csv",
	}
	historic := c.GenerateArrests(seed+1, historicN, 2020, corruption)
	current := c.GenerateArrests(seed+2, currentN, 2021, corruption)
	writers := []func(io.Writer) error{
		func(w io.Writer) error { return WriteArrestsCSV(w, historic) },
		func(w io.Writer) error { return WriteArrestsCSV(w, current) },
		c.WriteBoundariesCSV,
		c.WritePopulationCSV,
	}
	for i, path := range paths {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := writers[i](f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	return paths, nil
}
