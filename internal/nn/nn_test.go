package nn

import (
	"math"
	"testing"

	"repro/internal/dataio"
	"repro/internal/linalg"
	"repro/internal/mnistgen"
)

// twoBlobs builds a linearly separable, standardized 2-class problem.
func twoBlobs(n int) *dataio.Dataset {
	return dataio.GaussianMixture(42, n, 2, 2, 3.0).Standardize()
}

func TestLearnsLinearlySeparable(t *testing.T) {
	ds := twoBlobs(400)
	train, test := ds.Split(300)
	net := New(2, 2, Config{Hidden: []int{8}, Act: ReLU, LR: 0.05, Epochs: 30, Batch: 16, Seed: 1})
	net.Fit(train)
	if acc := net.Evaluate(test); acc < 0.95 {
		t.Errorf("accuracy %v on separable blobs", acc)
	}
}

func TestLossDecreases(t *testing.T) {
	ds := twoBlobs(200)
	net := New(2, 2, Config{Hidden: []int{8}, Act: Tanh, LR: 0.05, Epochs: 1, Batch: 20, Seed: 2})
	x := linalg.FromRows(ds.Points)
	first := net.TrainBatch(x, ds.Labels)
	var last float64
	for i := 0; i < 40; i++ {
		last = net.TrainBatch(x, ds.Labels)
	}
	if last >= first {
		t.Errorf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestGradientCheck(t *testing.T) {
	// Numerical gradient check on a tiny network.
	cfg := Config{Hidden: []int{3}, Act: Tanh, LR: 0, Momentum: 0, Batch: 1, Epochs: 1, Seed: 3}
	x := linalg.FromRows([][]float64{{0.5, -0.3}})
	labels := []int{1}

	loss := func(net *Network) float64 {
		logits := net.forward(x, false)
		p := make([]float64, logits.Cols)
		linalg.Softmax(p, logits.Row(0))
		return -math.Log(p[labels[0]])
	}

	// Analytic gradient: clone weights, run TrainBatch with lr=1 and
	// momentum=0; dW = old - new.
	netA := New(2, 2, cfg)
	netB := New(2, 2, cfg)
	netB.cfg.LR = 1
	before := netB.layers[0].w.Clone()
	netB.TrainBatch(x, labels)
	after := netB.layers[0].w

	const eps = 1e-5
	for i := range netA.layers[0].w.Data {
		orig := netA.layers[0].w.Data[i]
		netA.layers[0].w.Data[i] = orig + eps
		lp := loss(netA)
		netA.layers[0].w.Data[i] = orig - eps
		lm := loss(netA)
		netA.layers[0].w.Data[i] = orig
		numGrad := (lp - lm) / (2 * eps)
		anaGrad := before.Data[i] - after.Data[i]
		if math.Abs(numGrad-anaGrad) > 1e-4 {
			t.Fatalf("grad mismatch at %d: numeric %v analytic %v", i, numGrad, anaGrad)
		}
	}
}

func TestDeterministicFromSeed(t *testing.T) {
	ds := twoBlobs(100)
	cfg := Config{Hidden: []int{4}, LR: 0.1, Epochs: 3, Batch: 10, Seed: 7}
	a := New(2, 2, cfg)
	b := New(2, 2, cfg)
	a.Fit(ds)
	b.Fit(ds)
	pa := a.ProbsOne(ds.Points[0])
	pb := b.ProbsOne(ds.Points[0])
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed, different model")
		}
	}
	c := New(2, 2, Config{Hidden: []int{4}, LR: 0.1, Epochs: 3, Batch: 10, Seed: 8})
	c.Fit(ds)
	pc := c.ProbsOne(ds.Points[0])
	if pa[0] == pc[0] && pa[1] == pc[1] {
		t.Error("different seeds, identical model")
	}
}

func TestProbsSumToOne(t *testing.T) {
	net := New(5, 4, Config{Hidden: []int{6}, Seed: 9})
	x := linalg.FromRows([][]float64{{1, 2, 3, 4, 5}, {0, 0, 0, 0, 0}})
	p := net.Probs(x)
	for i := 0; i < p.Rows; i++ {
		sum := 0.0
		for _, v := range p.Row(i) {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
}

func TestMomentumAcceleratesConvergence(t *testing.T) {
	ds := twoBlobs(200)
	run := func(mom float64) float64 {
		net := New(2, 2, Config{Hidden: []int{8}, LR: 0.005, Momentum: mom, Epochs: 5, Batch: 20, Seed: 10})
		return net.Fit(ds)
	}
	plain := run(0)
	fast := run(0.9)
	if fast >= plain {
		t.Errorf("momentum did not reduce final loss: %v vs %v", fast, plain)
	}
}

func TestLinearModelNoHidden(t *testing.T) {
	ds := twoBlobs(300)
	net := New(2, 2, Config{Hidden: nil, LR: 0.05, Epochs: 20, Batch: 16, Seed: 11})
	net.Fit(ds)
	if acc := net.Evaluate(ds); acc < 0.9 {
		t.Errorf("linear model accuracy %v", acc)
	}
}

func TestLearnsSyntheticDigits(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	ds := mnistgen.Generate(21, 1500)
	train, test := ds.Split(1200)
	net := New(mnistgen.Pixels, 10, Config{Hidden: []int{32}, Act: ReLU, LR: 0.1, Momentum: 0.9, Epochs: 8, Batch: 32, Seed: 12})
	net.Fit(train)
	if acc := net.Evaluate(test); acc < 0.85 {
		t.Errorf("digit accuracy %v, want >= 0.85", acc)
	}
}

func TestParamCount(t *testing.T) {
	net := New(10, 3, Config{Hidden: []int{7}, Seed: 1})
	// 10*7+7 + 7*3+3 = 77 + 24 = 101
	if got := net.ParamCount(); got != 101 {
		t.Errorf("params %d", got)
	}
}

func TestValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("bad dims", func() { New(0, 2, Config{}) })
	mustPanic("one class", func() { New(2, 1, Config{}) })
	mustPanic("batch mismatch", func() {
		net := New(2, 2, Config{Seed: 1})
		net.TrainBatch(linalg.FromRows([][]float64{{1, 2}}), []int{0, 1})
	})
	mustPanic("dataset dim", func() {
		net := New(3, 2, Config{Seed: 1})
		net.Fit(twoBlobs(10))
	})
}

func TestActivationNames(t *testing.T) {
	if ReLU.String() != "relu" || Tanh.String() != "tanh" || Sigmoid.String() != "sigmoid" {
		t.Error("activation names")
	}
	if Activation(9).String() != "unknown" {
		t.Error("unknown activation name")
	}
}

func TestConfigString(t *testing.T) {
	s := Config{Hidden: []int{4}, LR: 0.1}.String()
	if s == "" {
		t.Error("empty config string")
	}
}

func TestEvaluateEmpty(t *testing.T) {
	net := New(2, 2, Config{Seed: 1})
	empty := &dataio.Dataset{Dim: 2, Classes: 2}
	if net.Evaluate(empty) != 0 {
		t.Error("empty evaluate")
	}
}

func BenchmarkTrainBatch(b *testing.B) {
	ds := mnistgen.Generate(1, 64)
	net := New(mnistgen.Pixels, 10, Config{Hidden: []int{32}, Seed: 1})
	x := linalg.FromRows(ds.Points)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.TrainBatch(x, ds.Labels)
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	ds := twoBlobs(300)
	norm := func(wd float64) float64 {
		net := New(2, 2, Config{Hidden: []int{8}, LR: 0.05, WeightDecay: wd, Epochs: 20, Batch: 16, Seed: 14})
		net.Fit(ds)
		s := 0.0
		for _, l := range net.layers {
			for _, v := range l.w.Data {
				s += v * v
			}
		}
		return s
	}
	plain := norm(0)
	decayed := norm(0.01)
	if decayed >= plain {
		t.Errorf("weight decay did not shrink weights: %v vs %v", decayed, plain)
	}
	// And the regularised model must still classify well.
	net := New(2, 2, Config{Hidden: []int{8}, LR: 0.05, WeightDecay: 0.01, Epochs: 20, Batch: 16, Seed: 14})
	net.Fit(ds)
	if acc := net.Evaluate(ds); acc < 0.95 {
		t.Errorf("regularised accuracy %v", acc)
	}
}
