package nn

import (
	"bytes"
	"testing"
)

// FuzzDecode hardens the model reader against corrupt files.
func FuzzDecode(f *testing.F) {
	var seed bytes.Buffer
	net := New(3, 2, Config{Hidden: []int{4}, Seed: 1})
	_ = net.Encode(&seed)
	f.Add(seed.Bytes())
	f.Add([]byte("PEACHNN\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted models must be usable.
		probe := make([]float64, m.InputDim())
		p := m.ProbsOne(probe)
		if len(p) != m.Classes() {
			t.Fatal("accepted model is inconsistent")
		}
	})
}
