// Package nn is a from-scratch fully-connected neural network with
// softmax cross-entropy training — the model substrate of the
// hyper-parameter-optimisation assignment (paper §7). It supports
// configurable hidden layers and activations, SGD with momentum,
// mini-batch training, and deterministic Xavier initialisation from a
// seed, so every ensemble member is reproducible.
package nn

import (
	"fmt"
	"math"

	"repro/internal/dataio"
	"repro/internal/linalg"
	"repro/internal/prng"
)

// Activation selects a hidden-layer nonlinearity.
type Activation int

const (
	// ReLU is max(0, x).
	ReLU Activation = iota
	// Tanh is the hyperbolic tangent.
	Tanh
	// Sigmoid is the logistic function.
	Sigmoid
)

// String names the activation.
func (a Activation) String() string {
	switch a {
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	case Sigmoid:
		return "sigmoid"
	}
	return "unknown"
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Tanh:
		return math.Tanh(x)
	default:
		return 1 / (1 + math.Exp(-x))
	}
}

// derivFromOutput returns the activation derivative expressed in terms of
// the activation output y.
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	default:
		return y * (1 - y)
	}
}

// Config is a hyper-parameter assignment for one network — the object the
// HPO grid enumerates.
type Config struct {
	// Hidden lists hidden-layer widths (may be empty for a linear model).
	Hidden []int
	// Act is the hidden activation.
	Act Activation
	// LR is the SGD learning rate.
	LR float64
	// Momentum is the SGD momentum coefficient (0 disables).
	Momentum float64
	// WeightDecay is the L2 regularisation coefficient applied to
	// weights (not biases); 0 disables.
	WeightDecay float64
	// Batch is the mini-batch size.
	Batch int
	// Epochs is how many passes to train.
	Epochs int
	// Seed initialises weights and shuffling.
	Seed uint64
}

// String renders the config compactly for reports.
func (c Config) String() string {
	return fmt.Sprintf("h=%v act=%s lr=%g mom=%g batch=%d ep=%d seed=%d",
		c.Hidden, c.Act, c.LR, c.Momentum, c.Batch, c.Epochs, c.Seed)
}

// dense is one fully-connected layer with momentum buffers.
type dense struct {
	w, b   *linalg.Matrix // w: in x out; b: 1 x out
	vw, vb *linalg.Matrix // momentum velocities

	// Scratch for backward.
	lastIn  *linalg.Matrix
	lastOut *linalg.Matrix
}

// Network is a trained or trainable MLP classifier.
type Network struct {
	cfg    Config
	in     int
	out    int
	layers []*dense
}

// New builds a network for inputs of dimension in and out classes, with
// weights initialised deterministically from cfg.Seed (Xavier uniform).
func New(in, out int, cfg Config) *Network {
	if in < 1 || out < 2 {
		panic("nn: need in >= 1 and out >= 2")
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 32
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.1
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 5
	}
	r := prng.New(cfg.Seed)
	sizes := append([]int{in}, cfg.Hidden...)
	sizes = append(sizes, out)
	n := &Network{cfg: cfg, in: in, out: out}
	for l := 0; l < len(sizes)-1; l++ {
		fanIn, fanOut := sizes[l], sizes[l+1]
		limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
		d := &dense{
			w:  linalg.NewMatrix(fanIn, fanOut),
			b:  linalg.NewMatrix(1, fanOut),
			vw: linalg.NewMatrix(fanIn, fanOut),
			vb: linalg.NewMatrix(1, fanOut),
		}
		for i := range d.w.Data {
			d.w.Data[i] = r.Range(-limit, limit)
		}
		n.layers = append(n.layers, d)
	}
	return n
}

// Config returns the network's hyper-parameters.
func (n *Network) Config() Config { return n.cfg }

// InputDim returns the expected input dimension.
func (n *Network) InputDim() int { return n.in }

// Classes returns the number of output classes.
func (n *Network) Classes() int { return n.out }

// forward runs a batch through the network, caching intermediates for
// backward when train is true. Returns the logits.
func (n *Network) forward(x *linalg.Matrix, train bool) *linalg.Matrix {
	cur := x
	for li, l := range n.layers {
		out := linalg.NewMatrix(cur.Rows, l.w.Cols)
		linalg.MatMul(out, cur, l.w)
		linalg.AddRowVec(out, l.b.Row(0))
		if li < len(n.layers)-1 {
			for i := range out.Data {
				out.Data[i] = n.cfg.Act.apply(out.Data[i])
			}
		}
		if train {
			l.lastIn = cur
			l.lastOut = out
		}
		cur = out
	}
	return cur
}

// Probs returns the softmax class probabilities for a batch (rows are
// samples).
func (n *Network) Probs(x *linalg.Matrix) *linalg.Matrix {
	logits := n.forward(x, false)
	for i := 0; i < logits.Rows; i++ {
		linalg.Softmax(logits.Row(i), logits.Row(i))
	}
	return logits
}

// ProbsOne returns class probabilities for a single sample.
func (n *Network) ProbsOne(x []float64) []float64 {
	m := linalg.FromRows([][]float64{x})
	return n.Probs(m).Row(0)
}

// Predict returns the argmax class per batch row.
func (n *Network) Predict(x *linalg.Matrix) []int {
	logits := n.forward(x, false)
	out := make([]int, logits.Rows)
	for i := range out {
		out[i] = linalg.Argmax(logits.Row(i))
	}
	return out
}

// TrainBatch performs one SGD step on a batch and returns the mean
// cross-entropy loss before the step.
func (n *Network) TrainBatch(x *linalg.Matrix, labels []int) float64 {
	if x.Rows != len(labels) {
		panic("nn: batch size mismatch")
	}
	logits := n.forward(x, true)
	batch := float64(x.Rows)

	// Softmax + CE and its gradient.
	loss := 0.0
	grad := linalg.NewMatrix(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		p := grad.Row(i)
		linalg.Softmax(p, logits.Row(i))
		li := p[labels[i]]
		if li < 1e-12 {
			li = 1e-12
		}
		loss -= math.Log(li)
		p[labels[i]] -= 1
		linalg.Scale(1/batch, p)
	}
	loss /= batch

	// Backprop through layers.
	delta := grad
	for li := len(n.layers) - 1; li >= 0; li-- {
		l := n.layers[li]
		if li < len(n.layers)-1 {
			// Apply activation derivative of this layer's output.
			out := l.lastOut
			for i := range delta.Data {
				delta.Data[i] *= n.cfg.Act.derivFromOutput(out.Data[i])
			}
		}
		dw := linalg.NewMatrix(l.w.Rows, l.w.Cols)
		linalg.MatMulATB(dw, l.lastIn, delta)
		db := linalg.NewMatrix(1, l.b.Cols)
		for i := 0; i < delta.Rows; i++ {
			linalg.Axpy(1, delta.Row(i), db.Row(0))
		}
		var next *linalg.Matrix
		if li > 0 {
			next = linalg.NewMatrix(delta.Rows, l.w.Rows)
			linalg.MatMulABT(next, delta, l.w)
		}
		// Momentum update with L2 decay: v = mom*v - lr*(g + wd*w).
		for i := range l.w.Data {
			g := dw.Data[i] + n.cfg.WeightDecay*l.w.Data[i]
			l.vw.Data[i] = n.cfg.Momentum*l.vw.Data[i] - n.cfg.LR*g
			l.w.Data[i] += l.vw.Data[i]
		}
		for i := range l.b.Data {
			l.vb.Data[i] = n.cfg.Momentum*l.vb.Data[i] - n.cfg.LR*db.Data[i]
			l.b.Data[i] += l.vb.Data[i]
		}
		delta = next
	}
	return loss
}

// Fit trains on the dataset for cfg.Epochs epochs of shuffled mini-batches
// and returns the final epoch's mean loss.
func (n *Network) Fit(ds *dataio.Dataset) float64 {
	return n.FitWithCallback(ds, nil)
}

// FitWithCallback is Fit with a per-epoch hook — the assignment's
// "check the accuracy of the model at regular intervals" variation
// (paper §7). after(epoch, meanLoss) runs after each epoch; returning
// false stops training early.
func (n *Network) FitWithCallback(ds *dataio.Dataset, after func(epoch int, meanLoss float64) bool) float64 {
	if ds.Dim != n.in {
		panic(fmt.Sprintf("nn: dataset dim %d, network expects %d", ds.Dim, n.in))
	}
	r := prng.New(n.cfg.Seed ^ 0xfeedface)
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	lastLoss := 0.0
	for ep := 0; ep < n.cfg.Epochs; ep++ {
		prng.Shuffle(r, idx)
		sum, batches := 0.0, 0
		for lo := 0; lo < len(idx); lo += n.cfg.Batch {
			hi := lo + n.cfg.Batch
			if hi > len(idx) {
				hi = len(idx)
			}
			rows := make([][]float64, hi-lo)
			labels := make([]int, hi-lo)
			for i := lo; i < hi; i++ {
				rows[i-lo] = ds.Points[idx[i]]
				labels[i-lo] = ds.Labels[idx[i]]
			}
			sum += n.TrainBatch(linalg.FromRows(rows), labels)
			batches++
		}
		if batches > 0 {
			lastLoss = sum / float64(batches)
		}
		if after != nil && !after(ep, lastLoss) {
			break
		}
	}
	return lastLoss
}

// Evaluate returns classification accuracy on the dataset.
func (n *Network) Evaluate(ds *dataio.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	pred := n.Predict(linalg.FromRows(ds.Points))
	hits := 0
	for i, p := range pred {
		if p == ds.Labels[i] {
			hits++
		}
	}
	return float64(hits) / float64(ds.Len())
}

// ParamCount returns the number of trainable parameters.
func (n *Network) ParamCount() int {
	total := 0
	for _, l := range n.layers {
		total += len(l.w.Data) + len(l.b.Data)
	}
	return total
}
