package nn

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/linalg"
)

// Model files are self-describing binary containers (same spirit as
// heat's field files): magic, version, architecture, then layer weights.
//
//	magic   [8]byte  "PEACHNN\n"
//	version uint32   (1)
//	in      uint32
//	out     uint32
//	act     uint32
//	nHidden uint32
//	hidden  nHidden * uint32
//	per layer: w (in*out float64), b (out float64)
var modelMagic = [8]byte{'P', 'E', 'A', 'C', 'H', 'N', 'N', '\n'}

// Encode serialises the trained network (weights only; optimiser state
// and training hyper-parameters are not persisted).
func (n *Network) Encode(w io.Writer) error {
	if _, err := w.Write(modelMagic[:]); err != nil {
		return err
	}
	header := []uint32{1, uint32(n.in), uint32(n.out), uint32(n.cfg.Act), uint32(len(n.cfg.Hidden))}
	for _, h := range n.cfg.Hidden {
		header = append(header, uint32(h))
	}
	if err := binary.Write(w, binary.LittleEndian, header); err != nil {
		return err
	}
	for _, l := range n.layers {
		if err := binary.Write(w, binary.LittleEndian, l.w.Data); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, l.b.Data); err != nil {
			return err
		}
	}
	return nil
}

// Decode deserialises a network written by Encode. The returned network
// predicts identically to the saved one; training it further starts from
// fresh optimiser state.
func Decode(r io.Reader) (*Network, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("nn: reading magic: %w", err)
	}
	if magic != modelMagic {
		return nil, fmt.Errorf("nn: bad magic %q", magic)
	}
	var fixed [5]uint32
	if err := binary.Read(r, binary.LittleEndian, &fixed); err != nil {
		return nil, fmt.Errorf("nn: reading header: %w", err)
	}
	if fixed[0] != 1 {
		return nil, fmt.Errorf("nn: unsupported version %d", fixed[0])
	}
	in, out, act, nHidden := int(fixed[1]), int(fixed[2]), Activation(fixed[3]), int(fixed[4])
	const maxWidth = 1 << 20
	if in < 1 || in > maxWidth || out < 2 || out > maxWidth || nHidden > 64 {
		return nil, fmt.Errorf("nn: implausible architecture in=%d out=%d hidden=%d", in, out, nHidden)
	}
	if in*out > 1<<26 {
		return nil, fmt.Errorf("nn: implausible layer size %dx%d", in, out)
	}
	hidden := make([]uint32, nHidden)
	if nHidden > 0 {
		if err := binary.Read(r, binary.LittleEndian, hidden); err != nil {
			return nil, fmt.Errorf("nn: reading hidden sizes: %w", err)
		}
	}
	cfg := Config{Act: act}
	for _, h := range hidden {
		if h < 1 || h > 1<<20 {
			return nil, fmt.Errorf("nn: implausible hidden width %d", h)
		}
		cfg.Hidden = append(cfg.Hidden, int(h))
	}
	n := New(in, out, cfg)
	for li, l := range n.layers {
		if err := binary.Read(r, binary.LittleEndian, l.w.Data); err != nil {
			return nil, fmt.Errorf("nn: layer %d weights: %w", li, err)
		}
		if err := binary.Read(r, binary.LittleEndian, l.b.Data); err != nil {
			return nil, fmt.Errorf("nn: layer %d bias: %w", li, err)
		}
	}
	return n, nil
}

// GobEncode implements gob.GobEncoder using the model file format, so a
// trained network can cross process boundaries (a taskfarm result on the
// cluster net device) without exposing the internal layer representation.
func (n *Network) GobEncode() ([]byte, error) {
	var b bytes.Buffer
	if err := n.Encode(&b); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// GobDecode implements gob.GobDecoder. Like Decode, the result predicts
// identically to the encoded network but starts from fresh optimiser
// state and default training hyper-parameters.
func (n *Network) GobDecode(data []byte) error {
	dec, err := Decode(bytes.NewReader(data))
	if err != nil {
		return err
	}
	*n = *dec
	return nil
}

// Save writes the network to a file.
func (n *Network) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return n.Encode(f)
}

// Load reads a network from a file.
func Load(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// equalPredictions is a test helper surface: report whether two networks
// produce identical probabilities on a probe batch.
func equalPredictions(a, b *Network, probe *linalg.Matrix) bool {
	pa := a.Probs(probe.Clone())
	pb := b.Probs(probe.Clone())
	for i := range pa.Data {
		if pa.Data[i] != pb.Data[i] {
			return false
		}
	}
	return true
}
