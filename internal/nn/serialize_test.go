package nn

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/linalg"
	"repro/internal/mnistgen"
)

func trainedNet(t *testing.T) *Network {
	t.Helper()
	ds := twoBlobs(200)
	net := New(2, 2, Config{Hidden: []int{6, 4}, Act: Tanh, LR: 0.05, Epochs: 5, Batch: 16, Seed: 3})
	net.Fit(ds)
	return net
}

func TestModelRoundTrip(t *testing.T) {
	net := trainedNet(t)
	var buf bytes.Buffer
	if err := net.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	probe := linalg.FromRows(twoBlobs(30).Points)
	if !equalPredictions(net, got, probe) {
		t.Error("round-tripped model predicts differently")
	}
	if got.InputDim() != 2 || got.Classes() != 2 || got.ParamCount() != net.ParamCount() {
		t.Error("architecture lost")
	}
}

func TestModelFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.nn")
	net := trainedNet(t)
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	probe := linalg.FromRows(twoBlobs(30).Points)
	if !equalPredictions(net, got, probe) {
		t.Error("file round trip mismatch")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestModelRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("NOTNNNN\n"),
		[]byte("PEACHNN\n\x02\x00\x00\x00"), // bad version needs full header
		append([]byte("PEACHNN\n"), make([]byte, 20)...),                                        // version 0
		append([]byte("PEACHNN\n"), 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0), // in=0
	}
	for i, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestModelRejectsTruncatedWeights(t *testing.T) {
	net := trainedNet(t)
	var buf bytes.Buffer
	if err := net.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-8]
	if _, err := Decode(bytes.NewReader(cut)); err == nil {
		t.Error("truncated weights accepted")
	}
}

func TestFitWithCallbackReportsEveryEpoch(t *testing.T) {
	ds := twoBlobs(100)
	net := New(2, 2, Config{Hidden: []int{4}, LR: 0.05, Epochs: 7, Batch: 16, Seed: 4})
	var epochs []int
	var losses []float64
	net.FitWithCallback(ds, func(ep int, loss float64) bool {
		epochs = append(epochs, ep)
		losses = append(losses, loss)
		return true
	})
	if len(epochs) != 7 || epochs[0] != 0 || epochs[6] != 6 {
		t.Fatalf("epochs %v", epochs)
	}
	if losses[6] >= losses[0] {
		t.Errorf("loss did not decrease across epochs: %v", losses)
	}
}

func TestFitWithCallbackEarlyStop(t *testing.T) {
	ds := twoBlobs(100)
	net := New(2, 2, Config{Hidden: []int{4}, LR: 0.05, Epochs: 50, Batch: 16, Seed: 5})
	count := 0
	net.FitWithCallback(ds, func(ep int, _ float64) bool {
		count++
		return ep < 2 // stop after the third epoch
	})
	if count != 3 {
		t.Errorf("callback ran %d times, want 3", count)
	}
}

func TestSavedDigitModelStillAccurate(t *testing.T) {
	ds := mnistgen.Generate(33, 800)
	train, test := ds.Split(600)
	net := New(mnistgen.Pixels, 10, Config{Hidden: []int{24}, LR: 0.1, Momentum: 0.9, Epochs: 5, Batch: 32, Seed: 6})
	net.Fit(train)
	want := net.Evaluate(test)

	var buf bytes.Buffer
	if err := net.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Evaluate(test); got != want {
		t.Errorf("loaded accuracy %v, want %v", got, want)
	}
}
