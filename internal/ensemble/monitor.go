package ensemble

import (
	"repro/internal/dataio"
	"repro/internal/nn"
	"repro/internal/par"
)

// Trajectory records a member's validation accuracy after every epoch —
// the assignment's "check the accuracy of the model at regular intervals"
// variation (paper §7).
type Trajectory struct {
	Cfg nn.Config
	// ValAccuracy[e] is the accuracy after epoch e.
	ValAccuracy []float64
	// Loss[e] is the mean training loss of epoch e.
	Loss []float64
}

// FinalAccuracy returns the last recorded accuracy (0 if none).
func (t Trajectory) FinalAccuracy() float64 {
	if len(t.ValAccuracy) == 0 {
		return 0
	}
	return t.ValAccuracy[len(t.ValAccuracy)-1]
}

// TrainWithMonitor trains every config while recording per-epoch
// validation accuracy, and optionally stops a member early once its
// accuracy reaches target (target <= 0 disables early stopping). Returns
// the ensemble and the per-member trajectories.
func TrainWithMonitor(train, val *dataio.Dataset, cfgs []nn.Config, workers int, target float64) (*Ensemble, []Trajectory) {
	members := make([]Member, len(cfgs))
	trajectories := make([]Trajectory, len(cfgs))
	par.For(len(cfgs), workers, func(i int) {
		cfg := cfgs[i]
		net := nn.New(train.Dim, train.Classes, cfg)
		traj := Trajectory{Cfg: cfg}
		loss := net.FitWithCallback(train, func(epoch int, meanLoss float64) bool {
			acc := net.Evaluate(val)
			traj.ValAccuracy = append(traj.ValAccuracy, acc)
			traj.Loss = append(traj.Loss, meanLoss)
			return target <= 0 || acc < target
		})
		members[i] = Member{Cfg: cfg, Net: net, TrainLoss: loss, ValAccuracy: traj.FinalAccuracy()}
		trajectories[i] = traj
	})
	return &Ensemble{Members: members}, trajectories
}
