package ensemble

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dataio"
	"repro/internal/mnistgen"
	"repro/internal/nn"
	"repro/internal/prng"
)

// digitData returns small train/val/test splits of synthetic digits.
func digitData(t *testing.T) (train, val *dataio.Dataset) {
	t.Helper()
	ds := mnistgen.Generate(100, 900)
	train, val = ds.Split(700)
	return train, val
}

func smallGrid(m int) []nn.Config {
	cfgs := Grid([][]int{{16}, {24}}, []float64{0.1, 0.05}, []float64{0.9, 0.5}, 3, 32, 7)
	return cfgs[:m]
}

func TestGridSize(t *testing.T) {
	cfgs := Grid([][]int{{8}, {16}, {32}}, []float64{0.1, 0.01}, []float64{0, 0.9}, 5, 32, 1)
	if len(cfgs) != 12 {
		t.Fatalf("grid size %d", len(cfgs))
	}
	seeds := map[uint64]bool{}
	for _, c := range cfgs {
		if seeds[c.Seed] {
			t.Fatal("duplicate seed in grid")
		}
		seeds[c.Seed] = true
		if c.Epochs != 5 || c.Batch != 32 {
			t.Error("epochs/batch not applied")
		}
	}
}

func TestTrainAndEvaluate(t *testing.T) {
	train, val := digitData(t)
	e := Train(train, val, smallGrid(4), 2)
	if len(e.Members) != 4 {
		t.Fatalf("members %d", len(e.Members))
	}
	for i, m := range e.Members {
		if m.Net == nil {
			t.Fatalf("member %d untrained", i)
		}
		if m.ValAccuracy < 0.5 {
			t.Errorf("member %d val accuracy %v", i, m.ValAccuracy)
		}
	}
	if acc := e.Evaluate(val); acc < 0.7 {
		t.Errorf("ensemble accuracy %v", acc)
	}
}

func TestEnsembleAtLeastAsGoodAsWorstMember(t *testing.T) {
	train, val := digitData(t)
	e := Train(train, val, smallGrid(4), 2)
	worst := 1.0
	for _, m := range e.Members {
		if m.ValAccuracy < worst {
			worst = m.ValAccuracy
		}
	}
	if acc := e.Evaluate(val); acc < worst-0.05 {
		t.Errorf("ensemble %v much worse than worst member %v", acc, worst)
	}
}

func TestProbsAverageToDistribution(t *testing.T) {
	train, val := digitData(t)
	e := Train(train, val, smallGrid(3), 2)
	p := e.Probs(val.Points[0])
	sum := 0.0
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatal("probability out of range")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probs sum %v", sum)
	}
}

func TestTopAndBest(t *testing.T) {
	e := &Ensemble{Members: []Member{
		{ValAccuracy: 0.5}, {ValAccuracy: 0.9}, {ValAccuracy: 0.7},
	}}
	if b := e.Best(); b.ValAccuracy != 0.9 {
		t.Errorf("best %v", b.ValAccuracy)
	}
	top := e.Top(2)
	if len(top.Members) != 2 || top.Members[0].ValAccuracy != 0.9 || top.Members[1].ValAccuracy != 0.7 {
		t.Errorf("top2 %v", top.Members)
	}
	if len(e.Top(10).Members) != 3 {
		t.Error("Top over-clamp")
	}
}

func TestUncertaintySeparatesOOD(t *testing.T) {
	// C9: corrupted inputs must carry higher predictive entropy than
	// clean ones.
	train, val := digitData(t)
	e := Train(train, val, smallGrid(4), 2)
	clean := mnistgen.Generate(555, 150)
	ood := mnistgen.GenerateOOD(555, 150)
	uClean := e.MeanUncertainty(clean)
	uOOD := e.MeanUncertainty(ood)
	if uOOD <= uClean {
		t.Errorf("OOD uncertainty %v not above clean %v", uOOD, uClean)
	}
}

func TestAmbiguousInputMoreUncertain(t *testing.T) {
	// Figure 4: a 4/9 blend must be more uncertain than a clean digit.
	train, val := digitData(t)
	e := Train(train, val, smallGrid(4), 2)
	r := prng.New(9)
	var ambig, clean float64
	const trials = 20
	for i := 0; i < trials; i++ {
		_, ua := e.Predict(mnistgen.Ambiguous(4, 9, r))
		_, uc := e.Predict(mnistgen.Render(7, r))
		ambig += ua / trials
		clean += uc / trials
	}
	if ambig <= clean {
		t.Errorf("ambiguous %v not above clean %v", ambig, clean)
	}
}

func TestTrainDistributedMatchesLocal(t *testing.T) {
	train, val := digitData(t)
	cfgs := smallGrid(5)
	local := Train(train, val, cfgs, 2)
	for _, p := range []int{1, 3, 4} {
		for _, dynamic := range []bool{false, true} {
			world := cluster.NewWorld(p)
			dist, rep, err := TrainDistributed(world, train, val, cfgs, dynamic)
			if err != nil {
				t.Fatal(err)
			}
			if len(dist.Members) != len(cfgs) {
				t.Fatalf("P=%d dyn=%v members %d", p, dynamic, len(dist.Members))
			}
			total := 0
			for _, n := range rep.PerRank {
				total += n
			}
			if total != len(cfgs) {
				t.Errorf("P=%d dyn=%v report total %d", p, dynamic, total)
			}
			// Training is deterministic per config, so accuracies match
			// regardless of which rank trained which model.
			for i := range cfgs {
				if dist.Members[i].ValAccuracy != local.Members[i].ValAccuracy {
					t.Errorf("P=%d dyn=%v member %d accuracy differs", p, dynamic, i)
				}
			}
		}
	}
}

func TestTrainWithCulling(t *testing.T) {
	train, val := digitData(t)
	cfgs := smallGrid(6)
	e := TrainWithCulling(train, val, cfgs, 2, 1, 0.5)
	if len(e.Members) != 3 {
		t.Fatalf("survivors %d, want 3", len(e.Members))
	}
	for _, m := range e.Members {
		if m.Cfg.Epochs != cfgs[0].Epochs {
			t.Error("survivor not retrained with full epochs")
		}
	}
	if acc := e.Evaluate(val); acc < 0.6 {
		t.Errorf("culled ensemble accuracy %v", acc)
	}
}

func TestEmptyEnsemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty ensemble Probs did not panic")
		}
	}()
	(&Ensemble{}).Probs([]float64{1})
}

func TestMeanUncertaintyEmptyDataset(t *testing.T) {
	e := &Ensemble{Members: []Member{{}}}
	if e.MeanUncertainty(&dataio.Dataset{}) != 0 {
		t.Error("empty dataset uncertainty")
	}
}

func TestTrainWithMonitorTrajectories(t *testing.T) {
	train, val := digitData(t)
	cfgs := smallGrid(3)
	e, trajs := TrainWithMonitor(train, val, cfgs, 2, 0)
	if len(trajs) != 3 || len(e.Members) != 3 {
		t.Fatalf("sizes %d %d", len(trajs), len(e.Members))
	}
	for i, tr := range trajs {
		if len(tr.ValAccuracy) != cfgs[i].Epochs {
			t.Errorf("member %d recorded %d epochs, want %d", i, len(tr.ValAccuracy), cfgs[i].Epochs)
		}
		if tr.FinalAccuracy() != e.Members[i].ValAccuracy {
			t.Errorf("member %d trajectory final %v != member accuracy %v",
				i, tr.FinalAccuracy(), e.Members[i].ValAccuracy)
		}
		// Accuracy should broadly improve from first to last epoch.
		if tr.ValAccuracy[len(tr.ValAccuracy)-1] < tr.ValAccuracy[0]-0.05 {
			t.Errorf("member %d accuracy regressed: %v", i, tr.ValAccuracy)
		}
	}
}

func TestTrainWithMonitorEarlyStop(t *testing.T) {
	train, val := digitData(t)
	cfgs := smallGrid(2)
	// A reachable target must cut training short for at least one member.
	_, trajs := TrainWithMonitor(train, val, cfgs, 2, 0.8)
	stopped := false
	for i, tr := range trajs {
		if len(tr.ValAccuracy) < cfgs[i].Epochs {
			stopped = true
			if tr.FinalAccuracy() < 0.8 {
				t.Errorf("member %d stopped below target: %v", i, tr.FinalAccuracy())
			}
		}
	}
	if !stopped {
		t.Log("no member reached 0.8 early; acceptable but unexpected")
	}
}

func TestTrajectoryEmpty(t *testing.T) {
	if (Trajectory{}).FinalAccuracy() != 0 {
		t.Error("empty trajectory accuracy")
	}
}
