// Package ensemble implements the hyper-parameter-optimisation assignment
// (paper §7): M neural networks are trained independently — the free
// by-product of an HPO sweep — and their softmax outputs are averaged into
// a deep ensemble whose predictive entropy quantifies uncertainty. The
// training tasks are distributed over cluster ranks with the taskfarm
// (static or dynamic), exercising the assignment's PDC concept of mapping
// M tasks onto P nodes when P does not divide M.
package ensemble

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/dataio"
	"repro/internal/linalg"
	"repro/internal/nn"
	"repro/internal/par"
	"repro/internal/stats"
	"repro/internal/taskfarm"
)

// Member is one trained ensemble member with its HPO metrics.
type Member struct {
	Cfg         nn.Config
	Net         *nn.Network
	TrainLoss   float64
	ValAccuracy float64
}

// Ensemble is a set of trained members whose predictions are aggregated
// by averaging predicted probabilities (the paper's aggregation rule).
type Ensemble struct {
	Members []Member
}

// Grid enumerates the hyper-parameter grid: the cross product of hidden
// layouts, learning rates and momenta, with seeds derived from baseSeed so
// every member differs. Epochs and batch apply to all configs.
func Grid(hidden [][]int, lrs, moms []float64, epochs, batch int, baseSeed uint64) []nn.Config {
	var out []nn.Config
	i := uint64(0)
	for _, h := range hidden {
		for _, lr := range lrs {
			for _, m := range moms {
				out = append(out, nn.Config{
					Hidden: h, Act: nn.ReLU, LR: lr, Momentum: m,
					Batch: batch, Epochs: epochs, Seed: baseSeed + 1000*i,
				})
				i++
			}
		}
	}
	return out
}

// trainOne fits one config and scores it on the validation set.
func trainOne(train, val *dataio.Dataset, cfg nn.Config) Member {
	net := nn.New(train.Dim, train.Classes, cfg)
	loss := net.Fit(train)
	return Member{Cfg: cfg, Net: net, TrainLoss: loss, ValAccuracy: net.Evaluate(val)}
}

// Train fits every config in parallel with shared-memory workers and
// returns the ensemble ordered as given.
func Train(train, val *dataio.Dataset, cfgs []nn.Config, workers int) *Ensemble {
	members := make([]Member, len(cfgs))
	par.For(len(cfgs), workers, func(i int) {
		members[i] = trainOne(train, val, cfgs[i])
	})
	return &Ensemble{Members: members}
}

// TrainDistributed fits the configs as independent tasks over the ranks
// of world (the MPI4Py formulation). mode Static uses block assignment;
// Dynamic uses the manager-worker farm. The ensemble and the per-rank
// load report are returned (valid on the caller; the world is run
// internally). In a launched multi-process world, only the rank-0
// process receives the ensemble; other ranks get (nil, zero report, nil)
// and should skip result reporting.
func TrainDistributed(world *cluster.World, train, val *dataio.Dataset, cfgs []nn.Config, dynamic bool) (*Ensemble, taskfarm.Report, error) {
	var members []Member
	var report taskfarm.Report
	err := world.Run(func(c *cluster.Comm) {
		exec := func(task int) Member { return trainOne(train, val, cfgs[task]) }
		var res []Member
		var rep taskfarm.Report
		if dynamic {
			res, rep = taskfarm.RunDynamic(c, len(cfgs), exec)
		} else {
			res, rep = taskfarm.RunStatic(c, len(cfgs), taskfarm.Block, exec)
		}
		if c.Rank() == 0 {
			members = res
			report = rep
		}
	})
	if err != nil {
		return nil, taskfarm.Report{}, err
	}
	if members == nil {
		if world.Launched() && !world.Lead() {
			// Multi-process world: the farm gathers to rank 0, which lives
			// in another process. A nil ensemble tells the caller this
			// rank has no results to report.
			return nil, taskfarm.Report{}, nil
		}
		return nil, taskfarm.Report{}, fmt.Errorf("ensemble: no results gathered")
	}
	return &Ensemble{Members: members}, report, nil
}

// Top returns a new ensemble of the m members with the best validation
// accuracy — "we use the best-performing models".
func (e *Ensemble) Top(m int) *Ensemble {
	sorted := append([]Member(nil), e.Members...)
	sort.SliceStable(sorted, func(a, b int) bool {
		return sorted[a].ValAccuracy > sorted[b].ValAccuracy
	})
	if m > len(sorted) {
		m = len(sorted)
	}
	return &Ensemble{Members: sorted[:m]}
}

// Best returns the member with the highest validation accuracy — the HPO
// winner.
func (e *Ensemble) Best() Member {
	best := e.Members[0]
	for _, m := range e.Members[1:] {
		if m.ValAccuracy > best.ValAccuracy {
			best = m
		}
	}
	return best
}

// Probs returns the ensemble's averaged class probabilities for input x.
func (e *Ensemble) Probs(x []float64) []float64 {
	if len(e.Members) == 0 {
		panic("ensemble: empty ensemble")
	}
	var avg []float64
	for _, m := range e.Members {
		p := m.Net.ProbsOne(x)
		if avg == nil {
			avg = make([]float64, len(p))
		}
		for i, v := range p {
			avg[i] += v
		}
	}
	for i := range avg {
		avg[i] /= float64(len(e.Members))
	}
	return avg
}

// Predict returns the ensemble's class and its predictive entropy (nats):
// the uncertainty value Figure 4 reports next to each prediction.
func (e *Ensemble) Predict(x []float64) (class int, uncertainty float64) {
	p := e.Probs(x)
	return linalg.Argmax(p), stats.Entropy(p)
}

// Evaluate returns the ensemble's accuracy on a dataset.
func (e *Ensemble) Evaluate(ds *dataio.Dataset) float64 {
	pred := make([]int, ds.Len())
	for i, x := range ds.Points {
		pred[i], _ = e.Predict(x)
	}
	return stats.Accuracy(pred, ds.Labels)
}

// MeanUncertainty returns the average predictive entropy over a dataset —
// the statistic that separates in-distribution from OOD inputs (C9).
func (e *Ensemble) MeanUncertainty(ds *dataio.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range ds.Points {
		_, u := e.Predict(x)
		sum += u
	}
	return sum / float64(ds.Len())
}

// TrainWithCulling is the assignment's suggested variation: train every
// config for probeEpochs, kill the worst cullFrac fraction (reassigning
// their resources), then continue the survivors for the remaining epochs.
// Returns the surviving ensemble.
func TrainWithCulling(train, val *dataio.Dataset, cfgs []nn.Config, workers, probeEpochs int, cullFrac float64) *Ensemble {
	if probeEpochs < 1 {
		probeEpochs = 1
	}
	// Phase 1: probe.
	probeCfgs := make([]nn.Config, len(cfgs))
	for i, c := range cfgs {
		c.Epochs = probeEpochs
		probeCfgs[i] = c
	}
	probe := Train(train, val, probeCfgs, workers)

	// Cull: keep the best (1-cullFrac) fraction.
	keep := len(cfgs) - int(float64(len(cfgs))*cullFrac)
	if keep < 1 {
		keep = 1
	}
	survivors := probe.Top(keep)

	// Phase 2: retrain survivors with full budgets (fresh fit keeps each
	// member reproducible from its config alone).
	finalCfgs := make([]nn.Config, len(survivors.Members))
	for i, m := range survivors.Members {
		c := m.Cfg
		c.Epochs = cfgs[0].Epochs
		finalCfgs[i] = c
	}
	return Train(train, val, finalCfgs, workers)
}
