// Package mnistgen procedurally generates MNIST-like digit images: the
// offline stand-in for the MNIST dataset the hyper-parameter-optimisation
// assignment trains on (paper §7). Digits are rendered from seven-segment
// strokes onto a 14x14 grid with per-sample jitter (translation, stroke
// intensity, pixel noise), which gives a classification task that small
// fully-connected networks learn well but not perfectly. Out-of-
// distribution corruptions (occlusion "graffiti", inversion, heavy noise)
// and ambiguous two-digit blends drive the uncertainty experiments of
// Figure 4.
package mnistgen

import (
	"math"

	"repro/internal/dataio"
	"repro/internal/prng"
)

// Side is the image edge length; images are Side*Side float64s in [0, 1].
const Side = 14

// Pixels is the flattened image size.
const Pixels = Side * Side

// segment bitmasks (standard seven-segment layout).
const (
	segA = 1 << iota // top
	segB             // top right
	segC             // bottom right
	segD             // bottom
	segE             // bottom left
	segF             // top left
	segG             // middle
)

// digitSegments maps each digit to its lit segments.
var digitSegments = [10]int{
	segA | segB | segC | segD | segE | segF,        // 0
	segB | segC,                                    // 1
	segA | segB | segG | segE | segD,               // 2
	segA | segB | segG | segC | segD,               // 3
	segF | segG | segB | segC,                      // 4
	segA | segF | segG | segC | segD,               // 5
	segA | segF | segG | segE | segC | segD,        // 6
	segA | segB | segC,                             // 7
	segA | segB | segC | segD | segE | segF | segG, // 8
	segA | segB | segC | segD | segF | segG,        // 9
}

// segment endpoints on a unit box (x0,y0,x1,y1), y grows downward.
var segLines = map[int][4]float64{
	segA: {0, 0, 1, 0},
	segB: {1, 0, 1, 0.5},
	segC: {1, 0.5, 1, 1},
	segD: {0, 1, 1, 1},
	segE: {0, 0.5, 0, 1},
	segF: {0, 0, 0, 0.5},
	segG: {0, 0.5, 1, 0.5},
}

// Render draws digit (0-9) with the given jitter source. Returned pixels
// are in [0, 1].
func Render(digit int, r *prng.Rand) []float64 {
	if digit < 0 || digit > 9 {
		panic("mnistgen: digit out of range")
	}
	img := make([]float64, Pixels)
	// Jittered box placement, stroke and rotation.
	ox := 3.5 + r.Range(-1, 1)
	oy := 2.0 + r.Range(-1, 1)
	w := 7.0 + r.Range(-0.8, 0.8)
	h := 10.0 + r.Range(-0.8, 0.8)
	intensity := r.Range(0.75, 1.0)
	thick := r.Range(0.55, 0.85)
	angle := r.Range(-0.12, 0.12)
	sin, cos := math.Sin(angle), math.Cos(angle)
	cx, cy := ox+w/2, oy+h/2
	rot := func(x, y float64) (float64, float64) {
		dx, dy := x-cx, y-cy
		return cx + dx*cos - dy*sin, cy + dx*sin + dy*cos
	}

	segs := digitSegments[digit]
	for seg, ln := range segLines {
		if segs&seg == 0 {
			continue
		}
		x0, y0 := rot(ox+ln[0]*w, oy+ln[1]*h)
		x1, y1 := rot(ox+ln[2]*w, oy+ln[3]*h)
		drawLine(img, x0, y0, x1, y1, thick, intensity)
	}
	// Background noise.
	for i := range img {
		img[i] += r.Range(0, 0.08)
		if img[i] > 1 {
			img[i] = 1
		}
	}
	return img
}

// drawLine stamps an anti-aliased thick segment onto the image.
func drawLine(img []float64, x0, y0, x1, y1, thick, intensity float64) {
	steps := 2 * Side
	for s := 0; s <= steps; s++ {
		t := float64(s) / float64(steps)
		cx := x0 + (x1-x0)*t
		cy := y0 + (y1-y0)*t
		lo := int(-thick - 1)
		hi := int(thick + 1)
		for dy := lo; dy <= hi; dy++ {
			for dx := lo; dx <= hi; dx++ {
				px, py := int(cx)+dx, int(cy)+dy
				if px < 0 || px >= Side || py < 0 || py >= Side {
					continue
				}
				ddx := float64(px) + 0.5 - cx
				ddy := float64(py) + 0.5 - cy
				d2 := ddx*ddx + ddy*ddy
				if d2 <= thick*thick {
					idx := py*Side + px
					if img[idx] < intensity {
						img[idx] = intensity
					}
				}
			}
		}
	}
}

// Generate builds a labelled dataset of n digit images (uniform class
// mix). The dataio.Dataset has Dim=Pixels and Classes=10.
func Generate(seed uint64, n int) *dataio.Dataset {
	r := prng.New(seed)
	ds := &dataio.Dataset{Dim: Pixels, Classes: 10,
		Points: make([][]float64, n), Labels: make([]int, n)}
	for i := 0; i < n; i++ {
		d := r.Intn(10)
		ds.Points[i] = Render(d, r)
		ds.Labels[i] = d
	}
	return ds
}

// Corruption is an out-of-distribution transformation.
type Corruption int

const (
	// Occlude stamps an opaque block over a third of the image — the
	// "graffitied stop sign" failure mode.
	Occlude Corruption = iota
	// Invert flips every pixel.
	Invert
	// Noise replaces 60% of pixels with uniform noise.
	Noise
)

// Corrupt applies an OOD transformation in place and returns the image.
func Corrupt(img []float64, c Corruption, r *prng.Rand) []float64 {
	switch c {
	case Occlude:
		bx := r.Intn(Side - 5)
		by := r.Intn(Side - 5)
		for y := by; y < by+5; y++ {
			for x := bx; x < bx+5; x++ {
				img[y*Side+x] = 1
			}
		}
	case Invert:
		for i := range img {
			img[i] = 1 - img[i]
		}
	case Noise:
		for i := range img {
			if r.Bernoulli(0.6) {
				img[i] = r.Float64()
			}
		}
	}
	return img
}

// GenerateOOD builds n corrupted digit images (labels retained, cycling
// through corruption kinds) for the uncertainty-separation experiment.
func GenerateOOD(seed uint64, n int) *dataio.Dataset {
	r := prng.New(seed)
	ds := &dataio.Dataset{Dim: Pixels, Classes: 10,
		Points: make([][]float64, n), Labels: make([]int, n)}
	for i := 0; i < n; i++ {
		d := r.Intn(10)
		img := Render(d, r)
		Corrupt(img, Corruption(i%3), r)
		ds.Points[i] = img
		ds.Labels[i] = d
	}
	return ds
}

// Ambiguous renders a 50/50 pixel-wise blend of digits a and b — the
// "confusing even for humans" input of Figure 4a.
func Ambiguous(a, b int, r *prng.Rand) []float64 {
	ia := Render(a, r)
	ib := Render(b, r)
	out := make([]float64, Pixels)
	for i := range out {
		out[i] = (ia[i] + ib[i]) / 2
	}
	return out
}

// Ascii renders an image as Side lines of density characters (for the
// textual Figure 4 exhibit).
func Ascii(img []float64) string {
	ramp := []byte(" .:-=+*#%@")
	out := make([]byte, 0, (Side+1)*Side)
	for y := 0; y < Side; y++ {
		for x := 0; x < Side; x++ {
			v := img[y*Side+x]
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			out = append(out, ramp[int(v*float64(len(ramp)-1))])
		}
		out = append(out, '\n')
	}
	return string(out)
}
