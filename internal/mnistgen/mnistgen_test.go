package mnistgen

import (
	"strings"
	"testing"

	"repro/internal/linalg"
	"repro/internal/prng"
)

func TestRenderShapeAndRange(t *testing.T) {
	r := prng.New(1)
	for d := 0; d <= 9; d++ {
		img := Render(d, r)
		if len(img) != Pixels {
			t.Fatalf("digit %d: %d pixels", d, len(img))
		}
		lit := 0
		for _, v := range img {
			if v < 0 || v > 1 {
				t.Fatalf("digit %d: pixel %v out of range", d, v)
			}
			if v > 0.5 {
				lit++
			}
		}
		if lit < 8 {
			t.Errorf("digit %d: only %d lit pixels", d, lit)
		}
	}
}

func TestRenderPanicsOnBadDigit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Render(10) did not panic")
		}
	}()
	Render(10, prng.New(1))
}

func TestDigitsAreDistinguishable(t *testing.T) {
	// Mean images of different digits must differ more than jittered
	// samples of the same digit.
	mean := func(d int, seed uint64) []float64 {
		r := prng.New(seed)
		m := make([]float64, Pixels)
		const n = 30
		for i := 0; i < n; i++ {
			img := Render(d, r)
			for j, v := range img {
				m[j] += v / n
			}
		}
		return m
	}
	m1a, m1b := mean(1, 1), mean(1, 2)
	m8 := mean(8, 3)
	same := linalg.SqDist(m1a, m1b)
	diff := linalg.SqDist(m1a, m8)
	if diff < 4*same {
		t.Errorf("digit separation weak: same=%v diff=%v", same, diff)
	}
}

func TestGenerateDataset(t *testing.T) {
	ds := Generate(5, 300)
	if ds.Len() != 300 || ds.Dim != Pixels || ds.Classes != 10 {
		t.Fatalf("shape %d %d %d", ds.Len(), ds.Dim, ds.Classes)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deterministic per seed.
	ds2 := Generate(5, 300)
	for i := range ds.Points {
		if linalg.SqDist(ds.Points[i], ds2.Points[i]) != 0 {
			t.Fatal("same seed differs")
		}
	}
}

func TestCorruptions(t *testing.T) {
	r := prng.New(7)
	base := Render(3, r)

	occ := Corrupt(append([]float64(nil), base...), Occlude, prng.New(8))
	if linalg.SqDist(base, occ) == 0 {
		t.Error("occlusion changed nothing")
	}

	inv := Corrupt(append([]float64(nil), base...), Invert, prng.New(8))
	for i := range base {
		if inv[i] != 1-base[i] {
			t.Fatal("invert wrong")
		}
	}

	noisy := Corrupt(append([]float64(nil), base...), Noise, prng.New(8))
	changed := 0
	for i := range base {
		if noisy[i] != base[i] {
			changed++
		}
	}
	if changed < Pixels/3 {
		t.Errorf("noise changed only %d pixels", changed)
	}
}

func TestGenerateOOD(t *testing.T) {
	ood := GenerateOOD(9, 90)
	if ood.Len() != 90 {
		t.Fatal("OOD size")
	}
	if err := ood.Validate(); err != nil {
		t.Fatal(err)
	}
	// OOD images must differ substantially from clean ones on average.
	clean := Generate(9, 90)
	var d float64
	for i := range ood.Points {
		d += linalg.SqDist(ood.Points[i], clean.Points[i])
	}
	if d == 0 {
		t.Error("OOD identical to clean")
	}
}

func TestAmbiguousIsBetween(t *testing.T) {
	amb := Ambiguous(4, 9, prng.New(11))
	if len(amb) != Pixels {
		t.Fatal("ambiguous size")
	}
	for _, v := range amb {
		if v < 0 || v > 1 {
			t.Fatal("ambiguous pixel out of range")
		}
	}
}

func TestAscii(t *testing.T) {
	img := Render(0, prng.New(13))
	s := Ascii(img)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != Side {
		t.Fatalf("ascii lines %d", len(lines))
	}
	for _, ln := range lines {
		if len(ln) != Side {
			t.Fatalf("ascii width %d", len(ln))
		}
	}
	if !strings.ContainsAny(s, "#%@") {
		t.Error("ascii render has no dark pixels")
	}
}
