package dataio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/linalg"
	"repro/internal/prng"
)

func TestGaussianMixtureShape(t *testing.T) {
	ds := GaussianMixture(1, 500, 4, 3, 2.0)
	if ds.Len() != 500 || ds.Dim != 4 || ds.Classes != 3 {
		t.Fatalf("shape %d %d %d", ds.Len(), ds.Dim, ds.Classes)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGaussianMixtureDeterministic(t *testing.T) {
	a := GaussianMixture(9, 100, 3, 2, 1.0)
	b := GaussianMixture(9, 100, 3, 2, 1.0)
	for i := range a.Points {
		if linalg.SqDist(a.Points[i], b.Points[i]) != 0 || a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed differs")
		}
	}
	c := GaussianMixture(10, 100, 3, 2, 1.0)
	same := true
	for i := range a.Points {
		if linalg.SqDist(a.Points[i], c.Points[i]) != 0 {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds identical")
	}
}

func TestGaussianMixtureClustersSeparate(t *testing.T) {
	// With tiny spread, points should be far closer to their own cluster
	// mates than to other clusters on average.
	ds := GaussianMixture(4, 300, 2, 3, 0.5)
	var intra, inter float64
	var ni, nx int
	for i := 0; i < ds.Len(); i += 5 {
		for j := i + 1; j < ds.Len(); j += 7 {
			d := linalg.SqDist(ds.Points[i], ds.Points[j])
			if ds.Labels[i] == ds.Labels[j] {
				intra += d
				ni++
			} else {
				inter += d
				nx++
			}
		}
	}
	if ni == 0 || nx == 0 {
		t.Skip("degenerate sampling")
	}
	if intra/float64(ni) >= inter/float64(nx) {
		t.Error("clusters do not separate")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := GaussianMixture(2, 50, 3, 4, 1.0)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 50 || got.Dim != 3 || got.Classes != 4 {
		t.Fatalf("round trip shape %d %d %d", got.Len(), got.Dim, got.Classes)
	}
	for i := range ds.Points {
		if linalg.SqDist(ds.Points[i], got.Points[i]) > 1e-18 || ds.Labels[i] != got.Labels[i] {
			t.Fatal("round trip data mismatch")
		}
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	in := "1.5,2.5,0\n3.5,4.5,1\n"
	ds, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 || ds.Dim != 2 || ds.Classes != 2 {
		t.Fatalf("shape %d %d %d", ds.Len(), ds.Dim, ds.Classes)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"a,b,label\n1.0,bad,0\n",  // bad float mid-file
		"1.0,2.0,0\n1.0,2.0,-1\n", // negative label
		"1.0,2.0,0\n1.0,0\n",      // ragged dims
		"justonecolumn\n",         // too few columns
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestReadCSVBlankLines(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader("1,2,0\n\n3,4,1\n\n"))
	if err != nil || ds.Len() != 2 {
		t.Fatalf("blank lines mishandled: %v %d", err, ds.Len())
	}
}

func TestSplit(t *testing.T) {
	ds := GaussianMixture(3, 100, 2, 2, 1.0)
	train, test := ds.Split(70)
	if train.Len() != 70 || test.Len() != 30 {
		t.Errorf("split sizes %d %d", train.Len(), test.Len())
	}
	train2, test2 := ds.Split(1000)
	if train2.Len() != 100 || test2.Len() != 0 {
		t.Error("oversized split not clamped")
	}
}

func TestShufflePreservesPairs(t *testing.T) {
	ds := GaussianMixture(5, 200, 2, 3, 0.1)
	// With tiny spread, labels are recoverable from position; verify the
	// pairing survives shuffling by re-checking intra-cluster proximity.
	orig := make(map[int][]float64)
	for i, p := range ds.Points {
		key := ds.Labels[i]
		if orig[key] == nil {
			orig[key] = p
		}
	}
	ds.Shuffle(prng.New(1))
	for i, p := range ds.Points {
		ref := orig[ds.Labels[i]]
		if linalg.SqDist(p, ref) > 100 {
			t.Fatal("shuffle broke point-label pairing")
		}
	}
}

func TestSaveLoadCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.csv")
	ds := GaussianMixture(6, 20, 2, 2, 1.0)
	if err := ds.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 20 {
		t.Error("file round trip lost rows")
	}
	if _, err := LoadCSV(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file did not error")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	ds := GaussianMixture(7, 10, 2, 2, 1.0)
	ds.Labels[3] = 99
	if err := ds.Validate(); err == nil {
		t.Error("bad label not caught")
	}
	ds = GaussianMixture(7, 10, 2, 2, 1.0)
	ds.Points[0] = []float64{1}
	if err := ds.Validate(); err == nil {
		t.Error("bad dim not caught")
	}
	ds = GaussianMixture(7, 10, 2, 2, 1.0)
	ds.Labels = ds.Labels[:5]
	if err := ds.Validate(); err == nil {
		t.Error("length mismatch not caught")
	}
}
