// Package dataio handles the datasets the assignments consume: labelled
// d-dimensional point sets in CSV form (the datahub.io classification
// instances the kNN assignment points at), and seeded synthetic
// Gaussian-mixture generators that stand in for them offline.
package dataio

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/prng"
)

// Dataset is a labelled point set: n points in d dimensions, each with an
// integer class in [0, Classes).
type Dataset struct {
	Dim     int
	Classes int
	Points  [][]float64
	Labels  []int
}

// Len returns the number of points.
func (d *Dataset) Len() int { return len(d.Points) }

// Validate checks internal consistency and returns a descriptive error.
func (d *Dataset) Validate() error {
	if len(d.Points) != len(d.Labels) {
		return fmt.Errorf("dataio: %d points but %d labels", len(d.Points), len(d.Labels))
	}
	for i, p := range d.Points {
		if len(p) != d.Dim {
			return fmt.Errorf("dataio: point %d has dim %d, want %d", i, len(p), d.Dim)
		}
	}
	for i, l := range d.Labels {
		if l < 0 || l >= d.Classes {
			return fmt.Errorf("dataio: label %d out of range at %d", l, i)
		}
	}
	return nil
}

// Split partitions the dataset into a training set of n points and a test
// set of the rest, preserving order (callers shuffle first if desired).
func (d *Dataset) Split(n int) (train, test *Dataset) {
	if n > d.Len() {
		n = d.Len()
	}
	train = &Dataset{Dim: d.Dim, Classes: d.Classes, Points: d.Points[:n], Labels: d.Labels[:n]}
	test = &Dataset{Dim: d.Dim, Classes: d.Classes, Points: d.Points[n:], Labels: d.Labels[n:]}
	return train, test
}

// Shuffle permutes points and labels together using the given generator.
func (d *Dataset) Shuffle(r *prng.Rand) {
	for i := d.Len() - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		d.Points[i], d.Points[j] = d.Points[j], d.Points[i]
		d.Labels[i], d.Labels[j] = d.Labels[j], d.Labels[i]
	}
}

// Standardize shifts and scales every dimension in place to zero mean and
// unit variance (constant dimensions are left centered). Returns the
// receiver for chaining. Neural-network training expects standardized
// inputs.
func (d *Dataset) Standardize() *Dataset {
	n := d.Len()
	if n == 0 {
		return d
	}
	for j := 0; j < d.Dim; j++ {
		mean := 0.0
		for _, p := range d.Points {
			mean += p[j]
		}
		mean /= float64(n)
		variance := 0.0
		for _, p := range d.Points {
			diff := p[j] - mean
			variance += diff * diff
		}
		std := math.Sqrt(variance / float64(n))
		for _, p := range d.Points {
			p[j] -= mean
			if std > 0 {
				p[j] /= std
			}
		}
	}
	return d
}

// GaussianMixture generates n points in dim dimensions from k Gaussian
// clusters with the given spread; point i's label is its generating
// cluster. Cluster centers are drawn uniformly in [0, 100)^dim. It is the
// offline stand-in for the assignment's "input point clouds of different
// sizes and dimensions" (paper §3) and classification instances (§2).
func GaussianMixture(seed uint64, n, dim, k int, spread float64) *Dataset {
	r := prng.New(seed)
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = r.Range(0, 100)
		}
	}
	ds := &Dataset{Dim: dim, Classes: k,
		Points: make([][]float64, n), Labels: make([]int, n)}
	for i := 0; i < n; i++ {
		c := r.Intn(k)
		p := make([]float64, dim)
		for j := range p {
			p[j] = r.Norm(centers[c][j], spread)
		}
		ds.Points[i] = p
		ds.Labels[i] = c
	}
	return ds
}

// WriteCSV serialises the dataset as "x1,...,xd,label" rows with a header.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for j := 0; j < d.Dim; j++ {
		fmt.Fprintf(bw, "x%d,", j)
	}
	fmt.Fprintln(bw, "label")
	for i, p := range d.Points {
		for _, v := range p {
			fmt.Fprintf(bw, "%g,", v)
		}
		fmt.Fprintf(bw, "%d\n", d.Labels[i])
	}
	return bw.Flush()
}

// ReadCSV parses a dataset written by WriteCSV (or any CSV whose final
// column is an integer class and whose other columns are floats). A first
// row that fails to parse as numbers is treated as a header.
func ReadCSV(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	ds := &Dataset{}
	line := 0
	maxLabel := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 2 {
			return nil, fmt.Errorf("dataio: line %d: need at least 2 columns", line)
		}
		vals := make([]float64, len(fields)-1)
		ok := true
		for j := 0; j < len(fields)-1; j++ {
			v, err := strconv.ParseFloat(strings.TrimSpace(fields[j]), 64)
			if err != nil {
				ok = false
				break
			}
			vals[j] = v
		}
		label := 0
		if ok {
			l, err := strconv.Atoi(strings.TrimSpace(fields[len(fields)-1]))
			if err != nil {
				ok = false
			}
			label = l
		}
		if !ok {
			if len(ds.Points) == 0 && line == 1 {
				continue // header
			}
			return nil, fmt.Errorf("dataio: line %d: unparseable row %q", line, text)
		}
		if ds.Dim == 0 {
			ds.Dim = len(vals)
		} else if len(vals) != ds.Dim {
			return nil, fmt.Errorf("dataio: line %d: dim %d, want %d", line, len(vals), ds.Dim)
		}
		if label < 0 {
			return nil, fmt.Errorf("dataio: line %d: negative label", line)
		}
		if label > maxLabel {
			maxLabel = label
		}
		ds.Points = append(ds.Points, vals)
		ds.Labels = append(ds.Labels, label)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	ds.Classes = maxLabel + 1
	return ds, nil
}

// SaveCSV writes the dataset to a file.
func (d *Dataset) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return d.WriteCSV(f)
}

// LoadCSV reads a dataset from a file.
func LoadCSV(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}
