package dataio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/par"
)

// LoadCSVParallel reads a dataset CSV with `readers` concurrent readers,
// each parsing a byte range of the file aligned to line boundaries — the
// parallel-IO pattern the kNN assignment highlights ("multiple MPI ranks
// perform IO in MapReduce MPI", §2). The result is identical to LoadCSV,
// rows in file order.
//
// Alignment rule: a reader whose range starts mid-line skips to the next
// newline (that line belongs to the previous reader), and every reader
// finishes the line that straddles its end offset.
func LoadCSVParallel(path string, readers int) (*Dataset, error) {
	if readers < 1 {
		readers = 1
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		return &Dataset{}, nil
	}
	if int64(readers) > size {
		readers = int(size)
	}

	type chunk struct {
		ds  *Dataset
		err error
	}
	chunks := make([]chunk, readers)
	par.For(readers, readers, func(r int) {
		start := size * int64(r) / int64(readers)
		end := size * int64(r+1) / int64(readers)
		ds, err := readCSVRange(path, start, end, r == 0)
		chunks[r] = chunk{ds, err}
	})

	out := &Dataset{}
	for r, c := range chunks {
		if c.err != nil {
			return nil, fmt.Errorf("dataio: reader %d: %w", r, c.err)
		}
		if c.ds.Len() == 0 {
			continue
		}
		if out.Dim == 0 {
			out.Dim = c.ds.Dim
		} else if c.ds.Dim != out.Dim {
			return nil, fmt.Errorf("dataio: reader %d saw dim %d, others %d", r, c.ds.Dim, out.Dim)
		}
		out.Points = append(out.Points, c.ds.Points...)
		out.Labels = append(out.Labels, c.ds.Labels...)
		if c.ds.Classes > out.Classes {
			out.Classes = c.ds.Classes
		}
	}
	return out, nil
}

// readCSVRange parses the lines of [start, end) per the alignment rule.
// first indicates the reader owning the file head (which may hold the
// header row).
func readCSVRange(path string, start, end int64, first bool) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// A line belongs to the reader whose range contains its first byte.
	// Seek to start-1 and consume through the next newline: if the byte
	// at start-1 is itself a newline, nothing but that byte is skipped
	// and the line starting exactly at start stays with this reader;
	// otherwise the skipped text is the tail of a line owned by the
	// previous reader.
	seekTo := start
	if start > 0 {
		seekTo = start - 1
	}
	if _, err := f.Seek(seekTo, io.SeekStart); err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(f, 1<<16)
	offset := seekTo
	if start > 0 {
		skipped, err := br.ReadString('\n')
		if err == io.EOF {
			return &Dataset{}, nil
		}
		if err != nil {
			return nil, err
		}
		offset += int64(len(skipped))
	}

	ds := &Dataset{}
	headerAllowed := first
	for offset < end {
		line, err := br.ReadString('\n')
		if len(line) > 0 {
			offset += int64(len(line))
			if perr := parseCSVLine(ds, line, headerAllowed); perr != nil {
				return nil, perr
			}
			headerAllowed = false
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// parseCSVLine appends one data row to ds; a first-line parse failure is
// tolerated as a header when headerAllowed.
func parseCSVLine(ds *Dataset, line string, headerAllowed bool) error {
	text := strings.TrimSpace(line)
	if text == "" {
		return nil
	}
	fields := strings.Split(text, ",")
	if len(fields) < 2 {
		if headerAllowed {
			return nil
		}
		return fmt.Errorf("need at least 2 columns in %q", text)
	}
	vals := make([]float64, len(fields)-1)
	for j := 0; j < len(fields)-1; j++ {
		v, err := strconv.ParseFloat(strings.TrimSpace(fields[j]), 64)
		if err != nil {
			if headerAllowed {
				return nil
			}
			return fmt.Errorf("unparseable row %q", text)
		}
		vals[j] = v
	}
	label, err := strconv.Atoi(strings.TrimSpace(fields[len(fields)-1]))
	if err != nil || label < 0 {
		if headerAllowed && err != nil {
			return nil
		}
		return fmt.Errorf("bad label in %q", text)
	}
	if ds.Dim == 0 {
		ds.Dim = len(vals)
	} else if len(vals) != ds.Dim {
		return fmt.Errorf("dim %d, want %d", len(vals), ds.Dim)
	}
	ds.Points = append(ds.Points, vals)
	ds.Labels = append(ds.Labels, label)
	if label+1 > ds.Classes {
		ds.Classes = label + 1
	}
	return nil
}
