package dataio

import (
	"os"
	"strings"
	"testing"
)

// FuzzReadCSV exercises the CSV parser with arbitrary input: it must never
// panic, and any dataset it accepts must be internally consistent.
func FuzzReadCSV(f *testing.F) {
	f.Add("x0,x1,label\n1.5,2.5,0\n3.5,4.5,1\n")
	f.Add("1,2,0\n")
	f.Add("")
	f.Add("a,b\n")
	f.Add("1,2,0\n\n3,4,1\n")
	f.Add("1e308,2e-308,3\n")
	f.Add("nan,inf,0\n")
	f.Add(strings.Repeat("9,", 100) + "1\n")
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := ds.Validate(); verr != nil {
			t.Fatalf("accepted inconsistent dataset: %v\ninput: %q", verr, input)
		}
	})
}

// FuzzParallelMatchesSerial feeds both loaders the same bytes; wherever
// both succeed they must agree on the row count.
func FuzzParallelMatchesSerial(f *testing.F) {
	f.Add("1,2,0\n3,4,1\n5,6,0\n", uint8(3))
	f.Add("x,y,label\n1,2,0\n", uint8(2))
	f.Fuzz(func(t *testing.T, input string, readers uint8) {
		dir := t.TempDir()
		path := dir + "/f.csv"
		if err := writeFile(path, input); err != nil {
			t.Skip()
		}
		serial, serr := LoadCSV(path)
		par, perr := LoadCSVParallel(path, int(readers%8)+1)
		if (serr == nil) != (perr == nil) {
			// The serial reader's header heuristic is position-based, so
			// the two loaders may disagree on acceptance of pathological
			// first lines; they must never both accept and then differ.
			return
		}
		if serr == nil && serial.Len() != par.Len() {
			t.Fatalf("row counts differ: %d vs %d for %q", serial.Len(), par.Len(), input)
		}
	})
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
