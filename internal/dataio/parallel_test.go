package dataio

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func TestLoadCSVParallelMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "big.csv")
	ds := GaussianMixture(8, 2000, 5, 4, 2.0)
	if err := ds.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	serial, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, readers := range []int{1, 2, 3, 7, 16} {
		par, err := LoadCSVParallel(path, readers)
		if err != nil {
			t.Fatalf("readers=%d: %v", readers, err)
		}
		if par.Len() != serial.Len() || par.Dim != serial.Dim || par.Classes != serial.Classes {
			t.Fatalf("readers=%d shape %d/%d/%d vs %d/%d/%d", readers,
				par.Len(), par.Dim, par.Classes, serial.Len(), serial.Dim, serial.Classes)
		}
		for i := range serial.Points {
			if linalg.SqDist(par.Points[i], serial.Points[i]) != 0 || par.Labels[i] != serial.Labels[i] {
				t.Fatalf("readers=%d row %d differs", readers, i)
			}
		}
	}
}

func TestLoadCSVParallelProperty(t *testing.T) {
	// Any reader count yields the same dataset as serial for any size.
	dir := t.TempDir()
	f := func(n uint8, readers uint8) bool {
		nn := int(n%50) + 1
		rr := int(readers%9) + 1
		path := filepath.Join(dir, "p.csv")
		ds := GaussianMixture(uint64(n)+1, nn, 3, 2, 1.0)
		if err := ds.SaveCSV(path); err != nil {
			return false
		}
		a, err := LoadCSV(path)
		if err != nil {
			return false
		}
		b, err := LoadCSVParallel(path, rr)
		if err != nil {
			return false
		}
		if a.Len() != b.Len() {
			return false
		}
		for i := range a.Points {
			if a.Labels[i] != b.Labels[i] || linalg.SqDist(a.Points[i], b.Points[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLoadCSVParallelEdgeCases(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.csv")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadCSVParallel(empty, 4)
	if err != nil || ds.Len() != 0 {
		t.Errorf("empty file: %v len %d", err, ds.Len())
	}

	noNL := filepath.Join(dir, "nonl.csv")
	if err := os.WriteFile(noNL, []byte("1,2,0"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err = LoadCSVParallel(noNL, 3)
	if err != nil || ds.Len() != 1 {
		t.Errorf("no trailing newline: %v len %d", err, ds.Len())
	}

	if _, err := LoadCSVParallel(filepath.Join(dir, "missing.csv"), 2); err == nil {
		t.Error("missing file not reported")
	}

	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("1,2,0\nnot,a,row\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCSVParallel(bad, 2); err == nil {
		t.Error("bad row not reported")
	}
}

func TestLoadCSVParallelMoreReadersThanBytes(t *testing.T) {
	dir := t.TempDir()
	tiny := filepath.Join(dir, "tiny.csv")
	if err := os.WriteFile(tiny, []byte("5,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadCSVParallel(tiny, 64)
	if err != nil || ds.Len() != 1 {
		t.Errorf("tiny file: %v len %d", err, ds.Len())
	}
}
