package viz

import (
	"bytes"
	"image/png"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGraySetAt(t *testing.T) {
	g := NewGray(4, 3)
	g.Set(1, 2, 7)
	if g.At(1, 2) != 7 {
		t.Error("Set/At mismatch")
	}
	// Out of bounds must be silently ignored.
	g.Set(-1, 0, 1)
	g.Set(4, 0, 1)
	g.Set(0, 3, 1)
}

func TestPGMHeader(t *testing.T) {
	g := NewGray(2, 2)
	var buf bytes.Buffer
	if err := g.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P5\n2 2\n255\n") {
		t.Errorf("bad header: %q", buf.String()[:12])
	}
	if buf.Len() != len("P5\n2 2\n255\n")+4 {
		t.Errorf("bad payload size %d", buf.Len())
	}
}

func TestPPMHeader(t *testing.T) {
	r := NewRGB(3, 2)
	r.Set(0, 0, 1, 2, 3)
	cr, cg, cb := r.At(0, 0)
	if cr != 1 || cg != 2 || cb != 3 {
		t.Error("RGB Set/At mismatch")
	}
	var buf bytes.Buffer
	if err := r.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P6\n3 2\n255\n") {
		t.Error("bad PPM header")
	}
}

func TestSaveRaster(t *testing.T) {
	dir := t.TempDir()
	if err := SaveRaster(filepath.Join(dir, "a.pgm"), NewGray(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := SaveRaster(filepath.Join(dir, "a.ppm"), NewRGB(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := SaveRaster(filepath.Join(dir, "a.x"), 42); err == nil {
		t.Error("unsupported type accepted")
	}
	fi, err := os.Stat(filepath.Join(dir, "a.ppm"))
	if err != nil || fi.Size() == 0 {
		t.Error("ppm not written")
	}
}

func TestHeatColorEndpoints(t *testing.T) {
	r0, _, b0 := HeatColor(0)
	if r0 != 0 || b0 != 255 {
		t.Error("t=0 should be blue")
	}
	r1, g1, b1 := HeatColor(1)
	if r1 != 255 || g1 != 0 || b1 != 0 {
		t.Error("t=1 should be red")
	}
	// Clamping and NaN safety.
	HeatColor(-5)
	HeatColor(5)
	cr, cg, cb := HeatColor(math.NaN())
	if cr != 128 || cg != 128 || cb != 128 {
		t.Error("NaN should be gray")
	}
}

func TestPaletteDistinct(t *testing.T) {
	pal := Palette(8)
	seen := map[[3]uint8]bool{}
	for _, c := range pal {
		if seen[c] {
			t.Fatalf("palette repeats %v", c)
		}
		seen[c] = true
	}
	if len(Palette(20)) != 20 {
		t.Error("palette length")
	}
}

func TestAsciiHeat(t *testing.T) {
	s := AsciiHeat([][]float64{{0, 1}, {math.NaN(), 0.5}})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 || len([]rune(lines[0])) != 2 {
		t.Fatalf("shape wrong: %q", s)
	}
	if lines[0][0] != ' ' || lines[0][1] != '@' {
		t.Errorf("ramp endpoints wrong: %q", lines[0])
	}
	if lines[1][0] != ' ' {
		t.Error("NaN should render blank")
	}
}

func TestAsciiHeatUniform(t *testing.T) {
	// All-equal values must not divide by zero.
	s := AsciiHeat([][]float64{{2, 2}, {2, 2}})
	if len(s) == 0 {
		t.Error("empty render")
	}
}

func TestAsciiHeatEmpty(t *testing.T) {
	if AsciiHeat(nil) != "" {
		t.Error("nil input should render empty")
	}
}

func TestScatterRGB(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{0, 1, 0}
	img := ScatterRGB(50, 40, xs, ys, []int{0, 1, 2}, 3)
	if img.W != 50 || img.H != 40 {
		t.Error("dimensions")
	}
	// Some pixel must be non-white.
	colored := false
	for i := 0; i < len(img.Pix); i += 3 {
		if img.Pix[i] != 255 || img.Pix[i+1] != 255 || img.Pix[i+2] != 255 {
			colored = true
			break
		}
	}
	if !colored {
		t.Error("scatter drew nothing")
	}
	// Degenerate ranges must not crash.
	ScatterRGB(10, 10, []float64{1, 1}, []float64{2, 2}, []int{0, 0}, 1)
	ScatterRGB(10, 10, nil, nil, nil, 1)
}

func TestLineChart(t *testing.T) {
	img := LineChart(100, 60, []Series{
		{Name: "a", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 4, 9}, Shade: 0},
	})
	if img.W != 100 || img.H != 60 {
		t.Fatal("dimensions")
	}
	dark := 0
	for _, v := range img.Pix {
		if v < 100 {
			dark++
		}
	}
	if dark < 10 {
		t.Errorf("chart drew only %d dark pixels", dark)
	}
	// Degenerate inputs must not crash or draw garbage.
	LineChart(50, 50, nil)
	LineChart(50, 50, []Series{{X: []float64{1}, Y: []float64{1}}})
	LineChart(50, 50, []Series{{X: []float64{1, 1}, Y: []float64{2, 2}}})
	LineChart(50, 50, []Series{{X: []float64{0, 1}, Y: []float64{3, 3}}})
}

func TestPNGOutput(t *testing.T) {
	dir := t.TempDir()
	g := NewGray(8, 6)
	g.Set(2, 2, 0)
	if err := SaveRaster(filepath.Join(dir, "g.png"), g); err != nil {
		t.Fatal(err)
	}
	r := NewRGB(8, 6)
	r.Set(1, 1, 255, 0, 0)
	if err := SaveRaster(filepath.Join(dir, "r.png"), r); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"g.png", "r.png"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil || len(data) < 8 {
			t.Fatalf("%s unwritten", name)
		}
		if string(data[1:4]) != "PNG" {
			t.Errorf("%s lacks PNG signature", name)
		}
	}
	// Round-trip through the stdlib decoder.
	f, err := os.Open(filepath.Join(dir, "r.png"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	img, err := png.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 8 || img.Bounds().Dy() != 6 {
		t.Error("decoded dimensions wrong")
	}
	cr, _, _, _ := img.At(1, 1).RGBA()
	if cr != 0xffff {
		t.Error("red pixel lost")
	}
}
