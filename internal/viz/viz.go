// Package viz renders the paper's visual exhibits without any external
// imaging dependency: grayscale PGM and color PPM rasters, ASCII heat maps
// and scatter plots. Figure 1 (K-means clusters), Figure 2 (NTA heat map)
// and Figure 3 (traffic space-time diagram) are all emitted through it.
package viz

import (
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// Gray is a grayscale raster with values in [0, 255].
type Gray struct {
	W, H int
	Pix  []uint8
}

// NewGray allocates a white (255) raster.
func NewGray(w, h int) *Gray {
	g := &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
	for i := range g.Pix {
		g.Pix[i] = 255
	}
	return g
}

// Set writes pixel (x, y); out-of-bounds writes are ignored.
func (g *Gray) Set(x, y int, v uint8) {
	if x < 0 || x >= g.W || y < 0 || y >= g.H {
		return
	}
	g.Pix[y*g.W+x] = v
}

// At reads pixel (x, y).
func (g *Gray) At(x, y int) uint8 { return g.Pix[y*g.W+x] }

// WritePGM serialises the raster in binary PGM (P5).
func (g *Gray) WritePGM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", g.W, g.H); err != nil {
		return err
	}
	_, err := w.Write(g.Pix)
	return err
}

// RGB is a 24-bit color raster.
type RGB struct {
	W, H int
	Pix  []uint8 // 3 bytes per pixel
}

// NewRGB allocates a white raster.
func NewRGB(w, h int) *RGB {
	r := &RGB{W: w, H: h, Pix: make([]uint8, 3*w*h)}
	for i := range r.Pix {
		r.Pix[i] = 255
	}
	return r
}

// Set writes pixel (x, y); out-of-bounds writes are ignored.
func (r *RGB) Set(x, y int, cr, cg, cb uint8) {
	if x < 0 || x >= r.W || y < 0 || y >= r.H {
		return
	}
	i := 3 * (y*r.W + x)
	r.Pix[i], r.Pix[i+1], r.Pix[i+2] = cr, cg, cb
}

// At reads pixel (x, y).
func (r *RGB) At(x, y int) (uint8, uint8, uint8) {
	i := 3 * (y*r.W + x)
	return r.Pix[i], r.Pix[i+1], r.Pix[i+2]
}

// WritePPM serialises the raster in binary PPM (P6).
func (r *RGB) WritePPM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", r.W, r.H); err != nil {
		return err
	}
	_, err := w.Write(r.Pix)
	return err
}

// SaveRaster writes a Gray or RGB raster to path: PNG when the path ends
// in .png, otherwise the raster's native binary PGM/PPM format.
func SaveRaster(path string, img any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch v := img.(type) {
	case *Gray:
		if wantsPNG(path) {
			return v.WritePNG(f)
		}
		return v.WritePGM(f)
	case *RGB:
		if wantsPNG(path) {
			return v.WritePNG(f)
		}
		return v.WritePPM(f)
	default:
		return fmt.Errorf("viz: unsupported raster type %T", img)
	}
}

// HeatColor maps t in [0, 1] onto a blue→yellow→red heat ramp.
func HeatColor(t float64) (uint8, uint8, uint8) {
	if math.IsNaN(t) {
		return 128, 128, 128
	}
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	switch {
	case t < 0.5: // blue -> yellow
		u := t * 2
		return uint8(255 * u), uint8(64 + 191*u), uint8(255 * (1 - u))
	default: // yellow -> red
		u := (t - 0.5) * 2
		return 255, uint8(255 * (1 - u)), 0
	}
}

// Palette returns k visually distinct colors (used for cluster scatter
// plots like Figure 1).
func Palette(k int) [][3]uint8 {
	base := [][3]uint8{
		{214, 69, 65}, {65, 131, 215}, {38, 166, 91}, {244, 179, 80},
		{142, 68, 173}, {0, 181, 204}, {243, 104, 224}, {120, 120, 120},
	}
	out := make([][3]uint8, k)
	for i := 0; i < k; i++ {
		c := base[i%len(base)]
		// Darken repeats so large k stays distinguishable.
		shade := 1.0 - 0.35*float64(i/len(base))
		if shade < 0.3 {
			shade = 0.3
		}
		out[i] = [3]uint8{uint8(float64(c[0]) * shade), uint8(float64(c[1]) * shade), uint8(float64(c[2]) * shade)}
	}
	return out
}

// AsciiHeat renders a matrix of values as an ASCII heat map using a
// density ramp, one row per line. NaN cells render as spaces.
func AsciiHeat(vals [][]float64) string {
	ramp := []rune(" .:-=+*#%@")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range vals {
		for _, v := range row {
			if math.IsNaN(v) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if lo > hi {
		return ""
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	var b strings.Builder
	for _, row := range vals {
		for _, v := range row {
			if math.IsNaN(v) {
				b.WriteRune(' ')
				continue
			}
			idx := int((v - lo) / span * float64(len(ramp)-1))
			b.WriteRune(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ScatterRGB plots 2D points colored by class onto a raster. xs and ys are
// point coordinates; class[i] selects the palette color; marks are 3x3
// squares. Bounds are computed from the data with 5% padding.
func ScatterRGB(w, h int, xs, ys []float64, class []int, k int) *RGB {
	img := NewRGB(w, h)
	if len(xs) == 0 {
		return img
	}
	minX, maxX := minMax(xs)
	minY, maxY := minMax(ys)
	padX, padY := 0.05*(maxX-minX), 0.05*(maxY-minY)
	if padX == 0 {
		padX = 1
	}
	if padY == 0 {
		padY = 1
	}
	minX, maxX = minX-padX, maxX+padX
	minY, maxY = minY-padY, maxY+padY
	pal := Palette(k)
	for i := range xs {
		px := int((xs[i] - minX) / (maxX - minX) * float64(w-1))
		py := int((maxY - ys[i]) / (maxY - minY) * float64(h-1))
		c := pal[class[i]%k]
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				img.Set(px+dx, py+dy, c[0], c[1], c[2])
			}
		}
	}
	return img
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
