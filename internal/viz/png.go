package viz

import (
	"image"
	"image/color"
	"image/png"
	"io"
	"strings"
)

// ColorModel implements image.Image.
func (g *Gray) ColorModel() color.Model { return color.GrayModel }

// Bounds implements image.Image.
func (g *Gray) Bounds() image.Rectangle { return image.Rect(0, 0, g.W, g.H) }

// AtColor implements image.Image's At (named to avoid clashing with the
// existing pixel accessor).
func (g *Gray) AtColor(x, y int) color.Color { return color.Gray{Y: g.At(x, y)} }

// WritePNG encodes the raster as PNG.
func (g *Gray) WritePNG(w io.Writer) error {
	return png.Encode(w, grayAdapter{g})
}

// grayAdapter bridges the At-name clash with image.Image.
type grayAdapter struct{ g *Gray }

func (a grayAdapter) ColorModel() color.Model { return color.GrayModel }
func (a grayAdapter) Bounds() image.Rectangle { return a.g.Bounds() }
func (a grayAdapter) At(x, y int) color.Color { return color.Gray{Y: a.g.At(x, y)} }

// ColorModel implements image.Image.
func (r *RGB) ColorModel() color.Model { return color.RGBAModel }

// Bounds implements image.Image.
func (r *RGB) Bounds() image.Rectangle { return image.Rect(0, 0, r.W, r.H) }

// WritePNG encodes the raster as PNG.
func (r *RGB) WritePNG(w io.Writer) error {
	return png.Encode(w, rgbAdapter{r})
}

type rgbAdapter struct{ r *RGB }

func (a rgbAdapter) ColorModel() color.Model { return color.RGBAModel }
func (a rgbAdapter) Bounds() image.Rectangle { return a.r.Bounds() }
func (a rgbAdapter) At(x, y int) color.Color {
	cr, cg, cb := a.r.At(x, y)
	return color.RGBA{R: cr, G: cg, B: cb, A: 255}
}

// saveByExtension routes SaveRaster by file extension: .png gets PNG
// encoding, anything else the raster's native PGM/PPM format.
func wantsPNG(path string) bool {
	return strings.HasSuffix(strings.ToLower(path), ".png")
}
