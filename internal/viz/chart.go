package viz

import "math"

// Series is one named line in a chart.
type Series struct {
	Name   string
	X, Y   []float64
	Shade  uint8 // grayscale intensity of the line (0 = black)
	marker bool
}

// LineChart rasterises one or more series onto a w x h grayscale canvas
// with light axes — enough to eyeball the shape of a sweep (fundamental
// diagrams, elbow curves) without any plotting dependency.
func LineChart(w, h int, series []Series) *Gray {
	img := NewGray(w, h)
	const margin = 8
	// Bounds over all series.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) || maxX == minX {
		return img
	}
	if maxY == minY {
		maxY = minY + 1
	}
	px := func(x float64) int {
		return margin + int((x-minX)/(maxX-minX)*float64(w-2*margin-1))
	}
	py := func(y float64) int {
		return h - margin - 1 - int((y-minY)/(maxY-minY)*float64(h-2*margin-1))
	}
	// Axes.
	for x := margin; x < w-margin; x++ {
		img.Set(x, h-margin-1, 200)
	}
	for y := margin; y < h-margin; y++ {
		img.Set(margin, y, 200)
	}
	// Lines.
	for _, s := range series {
		for i := 1; i < len(s.X); i++ {
			drawSeg(img, px(s.X[i-1]), py(s.Y[i-1]), px(s.X[i]), py(s.Y[i]), s.Shade)
		}
		// Point markers.
		for i := range s.X {
			x, y := px(s.X[i]), py(s.Y[i])
			for dx := -1; dx <= 1; dx++ {
				for dy := -1; dy <= 1; dy++ {
					img.Set(x+dx, y+dy, s.Shade)
				}
			}
		}
	}
	return img
}

// drawSeg draws a line segment with integer Bresenham.
func drawSeg(img *Gray, x0, y0, x1, y1 int, shade uint8) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		img.Set(x0, y0, shade)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
