package locale

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestDomainBasics(t *testing.T) {
	d := Dom(2, 10)
	if d.Size() != 8 {
		t.Errorf("size %d", d.Size())
	}
	if !d.Contains(2) || d.Contains(10) || d.Contains(1) {
		t.Error("Contains wrong")
	}
	in := d.Interior(1)
	if in.Lo != 3 || in.Hi != 9 {
		t.Errorf("interior %v", in)
	}
	if Dom(5, 3).Size() != 0 {
		t.Error("inverted domain should be empty")
	}
	if d.String() != "{2..<10}" {
		t.Errorf("string %q", d.String())
	}
}

func TestBlockDistPartition(t *testing.T) {
	sys := NewSystem(3, 2)
	b := sys.Block(Dom(0, 10))
	// Sizes 4,3,3.
	sizes := []int{4, 3, 3}
	prev := 0
	for loc := 0; loc < 3; loc++ {
		ld := b.LocalDomain(loc)
		if ld.Size() != sizes[loc] {
			t.Errorf("locale %d size %d want %d", loc, ld.Size(), sizes[loc])
		}
		if ld.Lo != prev {
			t.Errorf("locale %d lo %d want %d", loc, ld.Lo, prev)
		}
		prev = ld.Hi
	}
	if prev != 10 {
		t.Error("blocks do not cover domain")
	}
}

func TestLocaleOfConsistentWithLocalDomain(t *testing.T) {
	f := func(n uint8, p uint8, off int8) bool {
		nn := int(n)%200 + 1
		pp := int(p)%7 + 1
		lo := int(off)
		sys := NewSystem(pp, 1)
		b := sys.Block(Dom(lo, lo+nn))
		for i := lo; i < lo+nn; i++ {
			loc := b.LocaleOf(i)
			if !b.LocalDomain(loc).Contains(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLocaleOfPanicsOutside(t *testing.T) {
	sys := NewSystem(2, 1)
	b := sys.Block(Dom(0, 4))
	defer func() {
		if recover() == nil {
			t.Error("out-of-domain LocaleOf did not panic")
		}
	}()
	b.LocaleOf(4)
}

func TestForallVisitsEachOnce(t *testing.T) {
	sys := NewSystem(2, 3)
	const n = 500
	seen := make([]int32, n)
	sys.Forall(Dom(0, n), func(i int) { atomic.AddInt32(&seen[i], 1) })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
	// Empty domain is a no-op.
	sys.Forall(Dom(3, 3), func(i int) { t.Error("called on empty domain") })
}

func TestForallBlockOwnership(t *testing.T) {
	sys := NewSystem(4, 2)
	b := sys.Block(Dom(0, 103))
	var total int64
	b.ForallBlock(func(loc *Locale, local Domain) {
		atomic.AddInt64(&total, int64(local.Size()))
		if b.LocaleOf(local.Lo) != loc.ID {
			t.Errorf("locale %d got foreign block %v", loc.ID, local)
		}
	})
	if total != 103 {
		t.Errorf("blocks cover %d indices", total)
	}
}

func TestCoforallSpawnsExactlyN(t *testing.T) {
	var ids sync.Map
	Coforall(17, func(tid int) { ids.Store(tid, true) })
	count := 0
	ids.Range(func(_, _ any) bool { count++; return true })
	if count != 17 {
		t.Errorf("saw %d distinct tids", count)
	}
}

func TestOnEachRunsPerLocale(t *testing.T) {
	sys := NewSystem(5, 1)
	var mask int64
	sys.OnEach(func(l *Locale) { atomic.AddInt64(&mask, 1<<l.ID) })
	if mask != 31 {
		t.Errorf("mask %b", mask)
	}
}

func TestBarrierPhases(t *testing.T) {
	const parties, rounds = 4, 50
	b := NewBarrier(parties)
	var counter int64
	errs := make(chan string, parties)
	Coforall(parties, func(tid int) {
		for r := 0; r < rounds; r++ {
			atomic.AddInt64(&counter, 1)
			b.Wait()
			// After the barrier, every party of this round has
			// incremented.
			if c := atomic.LoadInt64(&counter); c < int64((r+1)*parties) {
				errs <- "barrier released early"
				return
			}
			b.Wait()
		}
	})
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if counter != parties*rounds {
		t.Errorf("counter %d", counter)
	}
}

func TestBarrierValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}

func TestBlockArrayGlobalIndexing(t *testing.T) {
	sys := NewSystem(3, 1)
	b := sys.Block(Dom(0, 10))
	a := b.NewArray()
	for i := 0; i < 10; i++ {
		a.Set(i, float64(i*i))
	}
	for i := 0; i < 10; i++ {
		if a.At(i) != float64(i*i) {
			t.Fatalf("At(%d) = %v", i, a.At(i))
		}
	}
	s := a.ToSlice()
	if len(s) != 10 || s[7] != 49 {
		t.Errorf("ToSlice %v", s)
	}
}

func TestBlockArrayLocalAliases(t *testing.T) {
	sys := NewSystem(2, 1)
	b := sys.Block(Dom(0, 6))
	a := b.NewArray()
	a.Local(1)[0] = 42 // global index 3
	if a.At(3) != 42 {
		t.Error("Local chunk does not alias storage")
	}
}

func TestBlockArraySwap(t *testing.T) {
	sys := NewSystem(2, 1)
	b := sys.Block(Dom(0, 4))
	u, un := b.NewArray(), b.NewArray()
	u.Set(0, 1)
	un.Set(0, 2)
	u.Swap(un)
	if u.At(0) != 2 || un.At(0) != 1 {
		t.Error("swap failed")
	}
	other := sys.Block(Dom(0, 4))
	defer func() {
		if recover() == nil {
			t.Error("cross-dist swap did not panic")
		}
	}()
	u.Swap(other.NewArray())
}

func TestSystemValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSystem(0,0) did not panic")
		}
	}()
	NewSystem(0, 0)
}

func TestTotalCores(t *testing.T) {
	if NewSystem(3, 4).TotalCores() != 12 {
		t.Error("TotalCores wrong")
	}
}

func BenchmarkForallVsCoforallSpawn(b *testing.B) {
	sys := NewSystem(4, 2)
	d := Dom(0, 10000)
	b.Run("ForallPerCall", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys.Forall(d, func(int) {})
		}
	})
	b.Run("CoforallPersistent", func(b *testing.B) {
		// One spawn, b.N barrier-synchronised rounds.
		parties := sys.NumLocales()
		bar := NewBarrier(parties)
		done := make(chan struct{})
		b.ResetTimer()
		Coforall(parties, func(tid int) {
			for i := 0; i < b.N; i++ {
				lo := tid * d.Size() / parties
				hi := (tid + 1) * d.Size() / parties
				_ = lo
				_ = hi
				bar.Wait()
			}
			if tid == 0 {
				close(done)
			}
		})
		<-done
	})
}

func BenchmarkBarrier(b *testing.B) {
	bar := NewBarrier(1)
	for i := 0; i < b.N; i++ {
		bar.Wait()
	}
}

func TestCyclicDistCoverage(t *testing.T) {
	sys := NewSystem(3, 1)
	c := sys.Cyclic(Dom(10, 30))
	seen := map[int]int{}
	total := 0
	for loc := 0; loc < 3; loc++ {
		owned := c.OwnedBy(loc)
		if len(owned) != c.LocalSize(loc) {
			t.Errorf("locale %d owns %d, LocalSize says %d", loc, len(owned), c.LocalSize(loc))
		}
		for _, i := range owned {
			seen[i]++
			if c.LocaleOf(i) != loc {
				t.Errorf("index %d: LocaleOf %d, owner %d", i, c.LocaleOf(i), loc)
			}
		}
		total += len(owned)
	}
	if total != 20 {
		t.Errorf("covered %d of 20", total)
	}
	for i := 10; i < 30; i++ {
		if seen[i] != 1 {
			t.Errorf("index %d seen %d times", i, seen[i])
		}
	}
}

func TestCyclicBalancesBetterThanBlockForTriangularWork(t *testing.T) {
	// Work(i) = i: block gives the last locale far more work; cyclic
	// nearly equalises.
	sys := NewSystem(4, 1)
	n := 1000
	work := func(indices []int) int {
		s := 0
		for _, i := range indices {
			s += i
		}
		return s
	}
	blockMax, cycMax := 0, 0
	b := sys.Block(Dom(0, n))
	for loc := 0; loc < 4; loc++ {
		ld := b.LocalDomain(loc)
		var idx []int
		for i := ld.Lo; i < ld.Hi; i++ {
			idx = append(idx, i)
		}
		if w := work(idx); w > blockMax {
			blockMax = w
		}
	}
	cd := sys.Cyclic(Dom(0, n))
	for loc := 0; loc < 4; loc++ {
		if w := work(cd.OwnedBy(loc)); w > cycMax {
			cycMax = w
		}
	}
	if cycMax >= blockMax {
		t.Errorf("cyclic max work %d not below block max %d", cycMax, blockMax)
	}
}

func TestCyclicLocaleOfPanics(t *testing.T) {
	sys := NewSystem(2, 1)
	c := sys.Cyclic(Dom(0, 4))
	defer func() {
		if recover() == nil {
			t.Error("out-of-domain accepted")
		}
	}()
	c.LocaleOf(4)
}

func TestForallCyclic(t *testing.T) {
	sys := NewSystem(3, 1)
	c := sys.Cyclic(Dom(0, 10))
	var count int64
	c.ForallCyclic(func(l *Locale, idx []int) {
		atomic.AddInt64(&count, int64(len(idx)))
	})
	if count != 10 {
		t.Errorf("visited %d", count)
	}
}

func TestCyclicOwnershipPartitionProperty(t *testing.T) {
	f := func(n uint8, p uint8, off int8) bool {
		nn := int(n)%150 + 1
		pp := int(p)%6 + 1
		lo := int(off)
		sys := NewSystem(pp, 1)
		c := sys.Cyclic(Dom(lo, lo+nn))
		seen := map[int]int{}
		for loc := 0; loc < pp; loc++ {
			for _, i := range c.OwnedBy(loc) {
				if c.LocaleOf(i) != loc {
					return false
				}
				seen[i]++
			}
		}
		if len(seen) != nn {
			return false
		}
		for _, count := range seen {
			if count != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
