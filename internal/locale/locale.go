// Package locale is a miniature Chapel-style runtime: the substrate for
// the 1D heat equation assignment (paper §6). It models a machine as a set
// of locales (compute nodes, each with a core count), provides domains and
// Block distributions over them, a Forall loop (high-level data
// parallelism: fresh tasks each call, work split over all locales and
// cores), a Coforall loop (exactly one task per iteration, as in part 2 of
// the assignment), on-statement-style locale placement, and a reusable
// cyclic barrier for persistent-task synchronisation.
package locale

import (
	"fmt"
	"sync"
)

// Locale models one compute node.
type Locale struct {
	// ID is the locale's index in the system.
	ID int
	// Cores is how many tasks the locale can run truly concurrently.
	Cores int
}

// System is the set of locales a program runs across (Chapel's Locales
// array).
type System struct {
	locales []*Locale
}

// NewSystem builds a system of n locales with the given core count each.
func NewSystem(n, coresPerLocale int) *System {
	if n < 1 || coresPerLocale < 1 {
		panic("locale: need at least one locale and one core")
	}
	s := &System{locales: make([]*Locale, n)}
	for i := range s.locales {
		s.locales[i] = &Locale{ID: i, Cores: coresPerLocale}
	}
	return s
}

// NumLocales returns the locale count.
func (s *System) NumLocales() int { return len(s.locales) }

// Locales returns the locales slice (do not mutate).
func (s *System) Locales() []*Locale { return s.locales }

// TotalCores returns the sum of cores over all locales.
func (s *System) TotalCores() int {
	n := 0
	for _, l := range s.locales {
		n += l.Cores
	}
	return n
}

// OnEach runs body once per locale, concurrently — the Chapel idiom
// `coforall loc in Locales do on loc { ... }`.
func (s *System) OnEach(body func(loc *Locale)) {
	var wg sync.WaitGroup
	wg.Add(len(s.locales))
	for _, l := range s.locales {
		go func(l *Locale) {
			defer wg.Done()
			body(l)
		}(l)
	}
	wg.Wait()
}

// Domain is a half-open 1D index range [Lo, Hi), Chapel's {Lo..<Hi}.
type Domain struct {
	Lo, Hi int
}

// Dom builds the domain {lo..<hi}.
func Dom(lo, hi int) Domain {
	if hi < lo {
		hi = lo
	}
	return Domain{lo, hi}
}

// Size returns the number of indices.
func (d Domain) Size() int { return d.Hi - d.Lo }

// Interior shrinks the domain by pad on both ends (the Ω̂ ⊂ Ω of the heat
// assignment, excluding boundary points).
func (d Domain) Interior(pad int) Domain {
	return Dom(d.Lo+pad, d.Hi-pad)
}

// Contains reports whether i lies in the domain.
func (d Domain) Contains(i int) bool { return i >= d.Lo && i < d.Hi }

// String renders the domain Chapel-style.
func (d Domain) String() string { return fmt.Sprintf("{%d..<%d}", d.Lo, d.Hi) }

// BlockDist maps a domain across a system's locales in contiguous
// near-equal blocks — Chapel's Block.createDomain.
type BlockDist struct {
	sys *System
	dom Domain
}

// Block distributes dom across the system.
func (s *System) Block(dom Domain) *BlockDist {
	return &BlockDist{sys: s, dom: dom}
}

// Domain returns the distributed (global) domain.
func (b *BlockDist) Domain() Domain { return b.dom }

// System returns the owning system.
func (b *BlockDist) System() *System { return b.sys }

// LocalDomain returns the sub-domain owned by locale loc.
func (b *BlockDist) LocalDomain(loc int) Domain {
	n := b.dom.Size()
	p := b.sys.NumLocales()
	q, r := n/p, n%p
	lo := loc*q + min(loc, r)
	hi := lo + q
	if loc < r {
		hi++
	}
	return Dom(b.dom.Lo+lo, b.dom.Lo+hi)
}

// LocaleOf returns which locale owns global index i.
func (b *BlockDist) LocaleOf(i int) int {
	if !b.dom.Contains(i) {
		panic(fmt.Sprintf("locale: index %d outside %v", i, b.dom))
	}
	off := i - b.dom.Lo
	n := b.dom.Size()
	p := b.sys.NumLocales()
	q, r := n/p, n%p
	// First r blocks have size q+1.
	if off < r*(q+1) {
		return off / (q + 1)
	}
	return r + (off-r*(q+1))/q
}

// Forall is the high-level data-parallel loop: it splits the domain over
// every core of every locale, spawning a fresh task per core each call
// (the per-step overhead that part 2 of the assignment eliminates).
func (s *System) Forall(d Domain, body func(i int)) {
	n := d.Size()
	if n <= 0 {
		return
	}
	tasks := s.TotalCores()
	if tasks > n {
		tasks = n
	}
	var wg sync.WaitGroup
	wg.Add(tasks)
	for t := 0; t < tasks; t++ {
		lo := d.Lo + t*n/tasks
		hi := d.Lo + (t+1)*n/tasks
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForallBlock runs body once per locale, concurrently, passing each locale
// its owned sub-domain — the distributed forall over a Block-distributed
// array, where each locale iterates only its local block.
func (b *BlockDist) ForallBlock(body func(loc *Locale, local Domain)) {
	b.sys.OnEach(func(l *Locale) {
		body(l, b.LocalDomain(l.ID))
	})
}

// Coforall spawns exactly one task per iteration and waits for all of
// them — Chapel's coforall, used to create persistent per-task workers.
func Coforall(n int, body func(tid int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for t := 0; t < n; t++ {
		go func(t int) {
			defer wg.Done()
			body(t)
		}(t)
	}
	wg.Wait()
}

// Barrier is a reusable cyclic barrier for a fixed number of parties,
// matching Chapel's Barrier type. Each Wait blocks until all parties have
// called it, then all are released and the barrier resets.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	phase   uint64
}

// NewBarrier creates a barrier for parties tasks.
func NewBarrier(parties int) *Barrier {
	if parties < 1 {
		panic("locale: barrier needs at least one party")
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all parties arrive.
func (b *Barrier) Wait() {
	b.mu.Lock()
	phase := b.phase
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.phase++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// BlockArray is a float64 array distributed per LocalDomain chunks, with
// global indexed access that routes to the owning locale's chunk (the
// communication a real Chapel Block array would perform).
type BlockArray struct {
	dist   *BlockDist
	chunks [][]float64
	// RemoteReads counts accesses that crossed locale boundaries relative
	// to an accessor's home locale (when accessed via LocalView).
}

// NewArray allocates a distributed array over the block distribution.
func (b *BlockDist) NewArray() *BlockArray {
	a := &BlockArray{dist: b, chunks: make([][]float64, b.sys.NumLocales())}
	for i := range a.chunks {
		a.chunks[i] = make([]float64, b.LocalDomain(i).Size())
	}
	return a
}

// Dist returns the array's distribution.
func (a *BlockArray) Dist() *BlockDist { return a.dist }

// At reads global index i.
func (a *BlockArray) At(i int) float64 {
	loc := a.dist.LocaleOf(i)
	return a.chunks[loc][i-a.dist.LocalDomain(loc).Lo]
}

// Set writes global index i.
func (a *BlockArray) Set(i int, v float64) {
	loc := a.dist.LocaleOf(i)
	a.chunks[loc][i-a.dist.LocalDomain(loc).Lo] = v
}

// Local returns locale loc's chunk, aliasing the storage; index 0 of the
// chunk is global index LocalDomain(loc).Lo.
func (a *BlockArray) Local(loc int) []float64 { return a.chunks[loc] }

// Swap exchanges the storage of two arrays over the same distribution —
// the u/un pointer swap of the heat solver's time loop.
func (a *BlockArray) Swap(other *BlockArray) {
	if a.dist != other.dist {
		panic("locale: Swap across different distributions")
	}
	a.chunks, other.chunks = other.chunks, a.chunks
}

// ToSlice gathers the distributed array into one local slice.
func (a *BlockArray) ToSlice() []float64 {
	out := make([]float64, 0, a.dist.dom.Size())
	for _, c := range a.chunks {
		out = append(out, c...)
	}
	return out
}
