package locale

import "fmt"

// CyclicDist deals a domain's indices round-robin over the locales —
// Chapel's Cyclic distribution, the natural choice when work per index is
// irregular and block decomposition would imbalance.
type CyclicDist struct {
	sys *System
	dom Domain
}

// Cyclic distributes dom across the system round-robin.
func (s *System) Cyclic(dom Domain) *CyclicDist {
	return &CyclicDist{sys: s, dom: dom}
}

// Domain returns the distributed (global) domain.
func (c *CyclicDist) Domain() Domain { return c.dom }

// LocaleOf returns which locale owns global index i.
func (c *CyclicDist) LocaleOf(i int) int {
	if !c.dom.Contains(i) {
		panic(fmt.Sprintf("locale: index %d outside %v", i, c.dom))
	}
	return (i - c.dom.Lo) % c.sys.NumLocales()
}

// OwnedBy returns the global indices locale loc owns, in ascending order.
func (c *CyclicDist) OwnedBy(loc int) []int {
	p := c.sys.NumLocales()
	var out []int
	for i := c.dom.Lo + loc; i < c.dom.Hi; i += p {
		out = append(out, i)
	}
	return out
}

// LocalSize returns how many indices locale loc owns.
func (c *CyclicDist) LocalSize(loc int) int {
	n := c.dom.Size()
	p := c.sys.NumLocales()
	q, r := n/p, n%p
	if loc < r {
		return q + 1
	}
	return q
}

// ForallCyclic runs body once per locale, concurrently, handing each its
// owned index list.
func (c *CyclicDist) ForallCyclic(body func(loc *Locale, indices []int)) {
	c.sys.OnEach(func(l *Locale) {
		body(l, c.OwnedBy(l.ID))
	})
}
