// Package knn implements the k-Nearest-Neighbor classification assignment
// (paper §2): a database of n preclassified d-dimensional points answers q
// query classifications by majority vote among the k nearest points.
//
// Variants mirror the assignment's arc:
//
//   - SequentialSort:  Θ(q·n·d + q·n·log n) — sort all distances.
//   - SequentialHeap:  Θ(q·n·(d + log k)) — the CLRS bounded-heap trick.
//   - Parallel:        queries split over goroutines (the OpenMP adaptation).
//   - KDTree:          space-partitioning acceleration (the Data Structures
//     variation).
//   - MapReduce:       the assignment's target formulation on MapReduce-MPI:
//     map tasks parse database shards and emit per-query candidates, local
//     combiners perform the per-rank reduction the assignment highlights,
//     and reducers merge candidates and vote.
package knn

import (
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/dataio"
	"repro/internal/heapk"
	"repro/internal/linalg"
	"repro/internal/mapreduce"
	"repro/internal/par"
	"repro/internal/spatial"
)

// Candidate is one potential neighbour: its squared distance and class.
type Candidate struct {
	Dist  float64
	Class int
}

// Vote returns the majority class among candidates, assumed to be the k
// nearest. Ties break toward the smaller class label so every variant
// agrees deterministically.
func Vote(cands []Candidate) int {
	// Class labels are small non-negative ints in every dataset variant;
	// count them in a stack array when they fit and only fall back to a
	// map for exotic label spaces.
	const stackClasses = 64
	fits := len(cands) > 0
	for _, c := range cands {
		if c.Class < 0 || c.Class >= stackClasses {
			fits = false
			break
		}
	}
	if fits {
		var counts [stackClasses]int
		maxClass := 0
		for _, c := range cands {
			counts[c.Class]++
			if c.Class > maxClass {
				maxClass = c.Class
			}
		}
		best, bestN := -1, -1
		for class := maxClass; class >= 0; class-- {
			if counts[class] >= bestN {
				best, bestN = class, counts[class]
			}
		}
		return best
	}
	counts := map[int]int{}
	for _, c := range cands {
		counts[c.Class]++
	}
	best, bestN := -1, -1
	for class, n := range counts {
		if n > bestN || (n == bestN && class < best) {
			best, bestN = class, n
		}
	}
	return best
}

// kNearestHeap returns the k nearest candidates to q using a bounded heap.
func kNearestHeap(db *dataio.Dataset, q []float64, k int) []Candidate {
	h := heapk.New[int](k)
	for i, p := range db.Points {
		bound := h.Bound()
		if d := linalg.SqDistBounded(q, p, bound); d < bound {
			h.Offer(d, db.Labels[i])
		}
	}
	items := h.Sorted()
	out := make([]Candidate, len(items))
	for i, it := range items {
		out[i] = Candidate{it.Priority, it.Value}
	}
	return out
}

// SequentialSort classifies queries by fully sorting the n distances per
// query — the Θ(n log n) baseline the assignment starts from.
func SequentialSort(db *dataio.Dataset, queries [][]float64, k int) []int {
	out := make([]int, len(queries))
	dists := make([]Candidate, db.Len())
	for qi, q := range queries {
		for i, p := range db.Points {
			dists[i] = Candidate{linalg.SqDist(q, p), db.Labels[i]}
		}
		sort.Slice(dists, func(a, b int) bool { return dists[a].Dist < dists[b].Dist })
		kk := k
		if kk > len(dists) {
			kk = len(dists)
		}
		out[qi] = Vote(dists[:kk])
	}
	return out
}

// SequentialHeap classifies queries with the Θ(n log k) bounded-heap
// selection.
func SequentialHeap(db *dataio.Dataset, queries [][]float64, k int) []int {
	out := make([]int, len(queries))
	for qi, q := range queries {
		out[qi] = Vote(kNearestHeap(db, q, k))
	}
	return out
}

// Parallel classifies queries with the heap selection, splitting the query
// set over workers goroutines — the shared-memory adaptation the paper
// suggests.
func Parallel(db *dataio.Dataset, queries [][]float64, k, workers int) []int {
	out := make([]int, len(queries))
	par.For(len(queries), workers, func(qi int) {
		out[qi] = Vote(kNearestHeap(db, queries[qi], k))
	})
	return out
}

// KDTree classifies queries against a pre-built k-d tree, in parallel over
// queries.
func KDTree(tree *spatial.KDTree, queries [][]float64, k, workers int) []int {
	out := make([]int, len(queries))
	par.For(len(queries), workers, func(qi int) {
		labels, dists := tree.Nearest(queries[qi], k, nil)
		cands := make([]Candidate, len(labels))
		for i := range labels {
			cands[i] = Candidate{dists[i], labels[i]}
		}
		out[qi] = Vote(cands)
	})
	return out
}

// dbShard is the map input: a contiguous slice of database rows. Every
// rank holds the full query set (the assignment assumes queries are small
// and replicated).
type dbShard struct {
	Points [][]float64
	Labels []int
}

// annulusPivots is the number of vantage pivots the annulus index keeps.
// The first orders the scan; the rest only filter.
const annulusPivots = 3

// annulusIndex accelerates exact k-nearest scans over a fixed point set
// with vantage-point pruning. Points are sorted by distance ("radius")
// to a corner pivot — chosen by the farthest-point heuristic so that
// clustered data lands in well-separated radius bands (a centroid pivot
// would see all clusters at similar radii and prune nothing). A query
// scans outward from its own radius in both directions; the triangle
// inequality gives d(q,p) >= |d(q,v) - d(p,v)| for any pivot v, so a
// direction stops permanently once its gap to the first pivot reaches
// the current heap bound, and the remaining pivots veto individual
// candidates before the full distance is computed. Results are identical
// to a full scan (every bound is conservative); only candidate-visit
// order changes.
type annulusIndex struct {
	order  []int                    // point indices by ascending first-pivot radius
	radius [annulusPivots][]float64 // per-pivot radii, in order[] order
	pivots [annulusPivots][]float64 // the pivot points
}

func newAnnulusIndex(points [][]float64) *annulusIndex {
	np := len(points)
	ann := &annulusIndex{order: make([]int, np)}
	if np == 0 {
		return ann
	}
	centroid := make([]float64, len(points[0]))
	for _, p := range points {
		for d, v := range p {
			centroid[d] += v
		}
	}
	for d := range centroid {
		centroid[d] /= float64(np)
	}
	// Farthest-point chain: pivot 0 is the point farthest from the
	// centroid, each next pivot the point farthest from the previous —
	// extremes that end up in distinct clusters when the data has them.
	farthest := func(from []float64) []float64 {
		best, bestD := 0, -1.0
		for i, p := range points {
			if d := linalg.SqDist(p, from); d > bestD {
				best, bestD = i, d
			}
		}
		return points[best]
	}
	prev := centroid
	for j := range ann.pivots {
		ann.pivots[j] = farthest(prev)
		prev = ann.pivots[j]
	}
	byPoint := make([]float64, np)
	for i, p := range points {
		byPoint[i] = math.Sqrt(linalg.SqDist(p, ann.pivots[0]))
		ann.order[i] = i
	}
	sort.Slice(ann.order, func(a, b int) bool {
		ra, rb := byPoint[ann.order[a]], byPoint[ann.order[b]]
		if ra != rb {
			return ra < rb
		}
		return ann.order[a] < ann.order[b] // deterministic on radius ties
	})
	for j := range ann.radius {
		ann.radius[j] = make([]float64, np)
	}
	for s, i := range ann.order {
		ann.radius[0][s] = byPoint[i]
		for j := 1; j < annulusPivots; j++ {
			ann.radius[j][s] = math.Sqrt(linalg.SqDist(points[i], ann.pivots[j]))
		}
	}
	return ann
}

// kNearest offers the query's k nearest shard points to h (which the
// caller has Reset to the desired k).
func (ann *annulusIndex) kNearest(q []float64, shard dbShard, h *heapk.Heap[int]) {
	np := len(ann.order)
	if np == 0 {
		return
	}
	var rq [annulusPivots]float64
	for j := range rq {
		rq[j] = math.Sqrt(linalg.SqDist(q, ann.pivots[j]))
	}
	r0 := ann.radius[0]
	hi := sort.SearchFloat64s(r0, rq[0])
	lo := hi - 1
	visit := func(s int, bound float64) {
		for j := 1; j < annulusPivots; j++ {
			if g := rq[j] - ann.radius[j][s]; g*g >= bound {
				return
			}
		}
		i := ann.order[s]
		if d := linalg.SqDistBounded(q, shard.Points[i], bound); d < bound {
			h.Offer(d, shard.Labels[i])
		}
	}
	for lo >= 0 || hi < np {
		bound := h.Bound()
		if lo >= 0 {
			if g := rq[0] - r0[lo]; g*g >= bound {
				lo = -1
			}
		}
		if hi < np {
			if g := r0[hi] - rq[0]; g*g >= bound {
				hi = np
			}
		}
		switch {
		case lo >= 0 && (hi >= np || rq[0]-r0[lo] <= r0[hi]-rq[0]):
			visit(lo, bound)
			lo--
		case hi < np:
			visit(hi, bound)
			hi++
		}
	}
}

// MapReduce classifies queries on a cluster.World using the MapReduce
// formulation. The database is sharded across ranks; each map task scans
// its shard against all queries. With useCombiner, each rank first merges
// its local candidate lists down to k per query — the "local reductions at
// each rank [that] noticeably improve the communication cost". Reduce
// merges candidate lists and votes. Predictions are returned indexed by
// query.
func MapReduce(world *cluster.World, db *dataio.Dataset, queries [][]float64, k int, useCombiner bool) ([]int, error) {
	shards := make([]dbShard, world.Size())
	pointParts := cluster.SplitEven(db.Points, world.Size())
	labelParts := cluster.SplitEven(db.Labels, world.Size())
	for r := range shards {
		shards[r] = dbShard{pointParts[r], labelParts[r]}
	}

	job := &mapreduce.Job[dbShard, int, []Candidate, int]{
		Map: func(shard dbShard, emit func(int, []Candidate)) {
			if !useCombiner {
				// The per-point baseline the combiner experiment
				// compares against: every candidate crosses the wire.
				for qi, q := range queries {
					for i, p := range shard.Points {
						emit(qi, []Candidate{{linalg.SqDist(q, p), shard.Labels[i]}})
					}
				}
				return
			}
			// Per-shard annulus index, built once and amortised over
			// the query sweep (Map runs once per rank, so all of this
			// state is goroutine-local): points sorted by distance to
			// the shard centroid. By the triangle inequality
			// d(q,p) >= |d(q,c) - d(p,c)|, so scanning outward from
			// the query's own radius lets a side stop as soon as its
			// annulus gap squared reaches the heap bound — and the
			// gaps only grow from there. Scanning near-radius points
			// first also tightens the bound much faster than shard
			// order.
			ann := newAnnulusIndex(shard.Points)
			h := heapk.New[int](k)
			for qi, q := range queries {
				h.Reset()
				ann.kNearest(q, shard, h)
				// The combiner re-selects with its own heap, so
				// emission order is irrelevant; Items avoids Sorted's
				// destructive re-sift, and one backing array serves
				// all k singleton emissions.
				items := h.Items()
				arr := make([]Candidate, len(items))
				for i, it := range items {
					arr[i] = Candidate{it.Priority, it.Value}
				}
				for i := range arr {
					emit(qi, arr[i:i+1])
				}
			}
		},
		Reduce: func(_ int, lists [][]Candidate) int {
			h := heapk.New[int](k)
			for _, list := range lists {
				for _, c := range list {
					h.Offer(c.Dist, c.Class)
				}
			}
			// Vote is order-independent, so skip Sorted's re-sift.
			items := h.Items()
			cands := make([]Candidate, len(items))
			for i, it := range items {
				cands[i] = Candidate{it.Priority, it.Value}
			}
			return Vote(cands)
		},
		PairBytes: 16,
	}
	if useCombiner {
		job.Combine = func(_ int, lists [][]Candidate) []Candidate {
			h := heapk.New[int](k)
			for _, list := range lists {
				for _, c := range list {
					h.Offer(c.Dist, c.Class)
				}
			}
			items := h.Sorted()
			out := make([]Candidate, len(items))
			for i, it := range items {
				out[i] = Candidate{it.Priority, it.Value}
			}
			return out
		}
		job.PairBytes = 16 * k
	}

	preds := make([]int, len(queries))
	err := world.Run(func(c *cluster.Comm) {
		merged := job.RunToRoot(c, []dbShard{shards[c.Rank()]})
		if c.Rank() == 0 {
			for qi, class := range merged {
				preds[qi] = class
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return preds, nil
}

// Accuracy scores predictions against true labels.
func Accuracy(pred, labels []int) float64 {
	if len(pred) == 0 {
		return 0
	}
	hits := 0
	for i, p := range pred {
		if p == labels[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(pred))
}
