// Package knn implements the k-Nearest-Neighbor classification assignment
// (paper §2): a database of n preclassified d-dimensional points answers q
// query classifications by majority vote among the k nearest points.
//
// Variants mirror the assignment's arc:
//
//   - SequentialSort:  Θ(q·n·d + q·n·log n) — sort all distances.
//   - SequentialHeap:  Θ(q·n·(d + log k)) — the CLRS bounded-heap trick.
//   - Parallel:        queries split over goroutines (the OpenMP adaptation).
//   - KDTree:          space-partitioning acceleration (the Data Structures
//     variation).
//   - MapReduce:       the assignment's target formulation on MapReduce-MPI:
//     map tasks parse database shards and emit per-query candidates, local
//     combiners perform the per-rank reduction the assignment highlights,
//     and reducers merge candidates and vote.
package knn

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/dataio"
	"repro/internal/heapk"
	"repro/internal/linalg"
	"repro/internal/mapreduce"
	"repro/internal/par"
	"repro/internal/spatial"
)

// Candidate is one potential neighbour: its squared distance and class.
type Candidate struct {
	Dist  float64
	Class int
}

// Vote returns the majority class among candidates, assumed to be the k
// nearest. Ties break toward the smaller class label so every variant
// agrees deterministically.
func Vote(cands []Candidate) int {
	counts := map[int]int{}
	for _, c := range cands {
		counts[c.Class]++
	}
	best, bestN := -1, -1
	for class, n := range counts {
		if n > bestN || (n == bestN && class < best) {
			best, bestN = class, n
		}
	}
	return best
}

// kNearestHeap returns the k nearest candidates to q using a bounded heap.
func kNearestHeap(db *dataio.Dataset, q []float64, k int) []Candidate {
	h := heapk.New[int](k)
	for i, p := range db.Points {
		h.Offer(linalg.SqDist(q, p), db.Labels[i])
	}
	items := h.Sorted()
	out := make([]Candidate, len(items))
	for i, it := range items {
		out[i] = Candidate{it.Priority, it.Value}
	}
	return out
}

// SequentialSort classifies queries by fully sorting the n distances per
// query — the Θ(n log n) baseline the assignment starts from.
func SequentialSort(db *dataio.Dataset, queries [][]float64, k int) []int {
	out := make([]int, len(queries))
	dists := make([]Candidate, db.Len())
	for qi, q := range queries {
		for i, p := range db.Points {
			dists[i] = Candidate{linalg.SqDist(q, p), db.Labels[i]}
		}
		sort.Slice(dists, func(a, b int) bool { return dists[a].Dist < dists[b].Dist })
		kk := k
		if kk > len(dists) {
			kk = len(dists)
		}
		out[qi] = Vote(dists[:kk])
	}
	return out
}

// SequentialHeap classifies queries with the Θ(n log k) bounded-heap
// selection.
func SequentialHeap(db *dataio.Dataset, queries [][]float64, k int) []int {
	out := make([]int, len(queries))
	for qi, q := range queries {
		out[qi] = Vote(kNearestHeap(db, q, k))
	}
	return out
}

// Parallel classifies queries with the heap selection, splitting the query
// set over workers goroutines — the shared-memory adaptation the paper
// suggests.
func Parallel(db *dataio.Dataset, queries [][]float64, k, workers int) []int {
	out := make([]int, len(queries))
	par.For(len(queries), workers, func(qi int) {
		out[qi] = Vote(kNearestHeap(db, queries[qi], k))
	})
	return out
}

// KDTree classifies queries against a pre-built k-d tree, in parallel over
// queries.
func KDTree(tree *spatial.KDTree, queries [][]float64, k, workers int) []int {
	out := make([]int, len(queries))
	par.For(len(queries), workers, func(qi int) {
		labels, dists := tree.Nearest(queries[qi], k, nil)
		cands := make([]Candidate, len(labels))
		for i := range labels {
			cands[i] = Candidate{dists[i], labels[i]}
		}
		out[qi] = Vote(cands)
	})
	return out
}

// dbShard is the map input: a contiguous slice of database rows. Every
// rank holds the full query set (the assignment assumes queries are small
// and replicated).
type dbShard struct {
	Points [][]float64
	Labels []int
}

// MapReduce classifies queries on a cluster.World using the MapReduce
// formulation. The database is sharded across ranks; each map task scans
// its shard against all queries. With useCombiner, each rank first merges
// its local candidate lists down to k per query — the "local reductions at
// each rank [that] noticeably improve the communication cost". Reduce
// merges candidate lists and votes. Predictions are returned indexed by
// query.
func MapReduce(world *cluster.World, db *dataio.Dataset, queries [][]float64, k int, useCombiner bool) ([]int, error) {
	shards := make([]dbShard, world.Size())
	pointParts := cluster.SplitEven(db.Points, world.Size())
	labelParts := cluster.SplitEven(db.Labels, world.Size())
	for r := range shards {
		shards[r] = dbShard{pointParts[r], labelParts[r]}
	}

	job := &mapreduce.Job[dbShard, int, []Candidate, int]{
		Map: func(shard dbShard, emit func(int, []Candidate)) {
			for qi, q := range queries {
				if useCombiner {
					// Per-point emission would be wasteful here
					// anyway; emit per-shard singletons so the
					// combiner has real work but the map stays
					// O(n log k).
					h := heapk.New[int](k)
					for i, p := range shard.Points {
						h.Offer(linalg.SqDist(q, p), shard.Labels[i])
					}
					for _, it := range h.Sorted() {
						emit(qi, []Candidate{{it.Priority, it.Value}})
					}
				} else {
					for i, p := range shard.Points {
						emit(qi, []Candidate{{linalg.SqDist(q, p), shard.Labels[i]}})
					}
				}
			}
		},
		Reduce: func(_ int, lists [][]Candidate) int {
			h := heapk.New[int](k)
			for _, list := range lists {
				for _, c := range list {
					h.Offer(c.Dist, c.Class)
				}
			}
			items := h.Sorted()
			cands := make([]Candidate, len(items))
			for i, it := range items {
				cands[i] = Candidate{it.Priority, it.Value}
			}
			return Vote(cands)
		},
		PairBytes: 16,
	}
	if useCombiner {
		job.Combine = func(_ int, lists [][]Candidate) []Candidate {
			h := heapk.New[int](k)
			for _, list := range lists {
				for _, c := range list {
					h.Offer(c.Dist, c.Class)
				}
			}
			items := h.Sorted()
			out := make([]Candidate, len(items))
			for i, it := range items {
				out[i] = Candidate{it.Priority, it.Value}
			}
			return out
		}
		job.PairBytes = 16 * k
	}

	preds := make([]int, len(queries))
	err := world.Run(func(c *cluster.Comm) {
		merged := job.RunToRoot(c, []dbShard{shards[c.Rank()]})
		if c.Rank() == 0 {
			for qi, class := range merged {
				preds[qi] = class
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return preds, nil
}

// Accuracy scores predictions against true labels.
func Accuracy(pred, labels []int) float64 {
	if len(pred) == 0 {
		return 0
	}
	hits := 0
	for i, p := range pred {
		if p == labels[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(pred))
}
