package knn

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dataio"
	"repro/internal/spatial"
)

func testData(seed uint64, n, q, dim, classes int) (*dataio.Dataset, [][]float64, []int) {
	ds := dataio.GaussianMixture(seed, n+q, dim, classes, 2.0)
	db, queries := ds.Split(n)
	return db, queries.Points, queries.Labels
}

func TestVoteMajorityAndTies(t *testing.T) {
	if v := Vote([]Candidate{{1, 2}, {2, 2}, {3, 0}}); v != 2 {
		t.Errorf("majority vote %d", v)
	}
	// Tie between classes 1 and 3 -> smaller label wins.
	if v := Vote([]Candidate{{1, 3}, {2, 1}}); v != 1 {
		t.Errorf("tie vote %d", v)
	}
	if v := Vote(nil); v != -1 {
		t.Errorf("empty vote %d", v)
	}
}

func TestHeapMatchesSort(t *testing.T) {
	db, queries, _ := testData(1, 400, 60, 5, 3)
	a := SequentialSort(db, queries, 7)
	b := SequentialHeap(db, queries, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d: sort %d heap %d", i, a[i], b[i])
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	db, queries, _ := testData(2, 300, 80, 4, 4)
	want := SequentialHeap(db, queries, 5)
	for _, w := range []int{1, 2, 4, 7} {
		got := Parallel(db, queries, 5, w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d query %d differs", w, i)
			}
		}
	}
}

func TestKDTreeMatchesSequential(t *testing.T) {
	db, queries, _ := testData(3, 500, 50, 3, 3)
	want := SequentialHeap(db, queries, 5)
	tree := spatial.NewKDTree(db.Points, db.Labels)
	got := KDTree(tree, queries, 5, 4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d: kdtree %d want %d", i, got[i], want[i])
		}
	}
}

func TestMapReduceMatchesSequential(t *testing.T) {
	db, queries, _ := testData(4, 300, 40, 4, 3)
	want := SequentialHeap(db, queries, 5)
	for _, p := range []int{1, 2, 3, 5} {
		for _, combiner := range []bool{true, false} {
			world := cluster.NewWorld(p)
			got, err := MapReduce(world, db, queries, 5, combiner)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("P=%d combiner=%v query %d: %d want %d",
						p, combiner, i, got[i], want[i])
				}
			}
		}
	}
}

func TestCombinerCutsShuffleBytes(t *testing.T) {
	db, queries, _ := testData(5, 600, 30, 4, 3)
	run := func(combiner bool) int64 {
		world := cluster.NewWorld(4)
		if _, err := MapReduce(world, db, queries, 5, combiner); err != nil {
			t.Fatal(err)
		}
		return world.TotalBytes()
	}
	on, off := run(true), run(false)
	if on*4 > off {
		t.Errorf("combiner saved too little: on=%d off=%d", on, off)
	}
}

func TestClassificationAccuracyOnSeparableData(t *testing.T) {
	db, queries, labels := testData(6, 1000, 200, 8, 4)
	pred := SequentialHeap(db, queries, 9)
	if acc := Accuracy(pred, labels); acc < 0.97 {
		t.Errorf("accuracy %v on well-separated Gaussians", acc)
	}
}

func TestKLargerThanDatabase(t *testing.T) {
	db := &dataio.Dataset{Dim: 1, Classes: 2,
		Points: [][]float64{{0}, {1}, {2}}, Labels: []int{0, 1, 1}}
	pred := SequentialSort(db, [][]float64{{0.1}}, 10)
	if pred[0] != 1 {
		t.Errorf("k>n vote %d (classes 0:1, 1:2 -> majority 1)", pred[0])
	}
	pred = SequentialHeap(db, [][]float64{{0.1}}, 10)
	if pred[0] != 1 {
		t.Errorf("heap k>n vote %d", pred[0])
	}
}

func TestAccuracyEmpty(t *testing.T) {
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy")
	}
}

func TestK1NearestPointWins(t *testing.T) {
	db := &dataio.Dataset{Dim: 2, Classes: 3,
		Points: [][]float64{{0, 0}, {10, 10}, {20, 20}}, Labels: []int{0, 1, 2}}
	pred := SequentialHeap(db, [][]float64{{9, 9}, {1, 1}, {19, 19}}, 1)
	if pred[0] != 1 || pred[1] != 0 || pred[2] != 2 {
		t.Errorf("k=1 predictions %v", pred)
	}
}

func BenchmarkVariants(b *testing.B) {
	db, queries, _ := testData(7, 2000, 100, 10, 4)
	b.Run("SequentialSort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SequentialSort(db, queries, 15)
		}
	})
	b.Run("SequentialHeap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SequentialHeap(db, queries, 15)
		}
	})
	b.Run("KDTree", func(b *testing.B) {
		tree := spatial.NewKDTree(db.Points, db.Labels)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			KDTree(tree, queries, 15, 0)
		}
	})
}

func TestMetrics(t *testing.T) {
	a, b := []float64{1, 0}, []float64{0, 1}
	if d := Euclidean.Distance(a, b); d != 2 {
		t.Errorf("euclidean (squared) %v", d)
	}
	if d := Manhattan.Distance(a, b); d != 2 {
		t.Errorf("manhattan %v", d)
	}
	if d := Cosine.Distance(a, b); d != 1 {
		t.Errorf("orthogonal cosine %v", d)
	}
	if d := Cosine.Distance(a, a); d > 1e-12 {
		t.Errorf("self cosine %v", d)
	}
	if d := Cosine.Distance([]float64{0, 0}, a); d != 2 {
		t.Errorf("zero-vector cosine %v", d)
	}
	for m, want := range map[Metric]string{Euclidean: "euclidean", Manhattan: "manhattan", Cosine: "cosine", Metric(9): "unknown"} {
		if m.String() != want {
			t.Errorf("metric name %q", m.String())
		}
	}
}

func TestClassifyOptsEuclideanMatchesHeap(t *testing.T) {
	db, queries, _ := testData(11, 300, 50, 4, 3)
	want := SequentialHeap(db, queries, 5)
	got := ClassifyOpts(db, queries, Options{K: 5})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d differs", i)
		}
	}
}

func TestClassifyOptsOtherMetricsReasonable(t *testing.T) {
	db, queries, labels := testData(12, 800, 150, 6, 3)
	for _, m := range []Metric{Manhattan, Cosine} {
		pred := ClassifyOpts(db, queries, Options{K: 7, Metric: m})
		if acc := Accuracy(pred, labels); acc < 0.9 {
			t.Errorf("metric %v accuracy %v", m, acc)
		}
	}
}

func TestVoteWeighted(t *testing.T) {
	// One very close class-1 point outweighs two distant class-0 points.
	cands := []Candidate{{0.01, 1}, {10, 0}, {10, 0}}
	if v := VoteWeighted(cands); v != 1 {
		t.Errorf("weighted vote %d", v)
	}
	// Plain majority would pick 0 here.
	if v := Vote(cands); v != 0 {
		t.Errorf("majority vote %d", v)
	}
	// Exact match dominates everything.
	cands = []Candidate{{0, 2}, {0.001, 1}, {0.001, 1}, {0.001, 1}}
	if v := VoteWeighted(cands); v != 2 {
		t.Errorf("exact-match vote %d", v)
	}
}

func TestWeightedVoteAccuracy(t *testing.T) {
	db, queries, labels := testData(13, 800, 150, 5, 4)
	pred := ClassifyOpts(db, queries, Options{K: 9, Weighted: true})
	if acc := Accuracy(pred, labels); acc < 0.95 {
		t.Errorf("weighted accuracy %v", acc)
	}
}
