package knn

import (
	"math"

	"repro/internal/dataio"
	"repro/internal/heapk"
	"repro/internal/par"
)

// Metric selects the distance function — the datahub.io instances the
// assignment points at span domains where different metrics shine.
type Metric int

const (
	// Euclidean compares by squared L2 distance (the default everywhere
	// else in this package).
	Euclidean Metric = iota
	// Manhattan compares by L1 distance.
	Manhattan
	// Cosine compares by 1 - cosine similarity (zero vectors are treated
	// as maximally distant).
	Cosine
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case Euclidean:
		return "euclidean"
	case Manhattan:
		return "manhattan"
	case Cosine:
		return "cosine"
	}
	return "unknown"
}

// Distance computes the metric between two points.
func (m Metric) Distance(a, b []float64) float64 {
	switch m {
	case Manhattan:
		s := 0.0
		for i, v := range a {
			s += math.Abs(v - b[i])
		}
		return s
	case Cosine:
		var dot, na, nb float64
		for i, v := range a {
			dot += v * b[i]
			na += v * v
			nb += b[i] * b[i]
		}
		if na == 0 || nb == 0 {
			return 2 // maximal: 1 - (-1)
		}
		return 1 - dot/math.Sqrt(na*nb)
	default:
		s := 0.0
		for i, v := range a {
			d := v - b[i]
			s += d * d
		}
		return s
	}
}

// VoteWeighted returns the class with the largest inverse-distance weight
// among the candidates — the classic weighted-kNN extension; exact-match
// candidates (distance 0) dominate. Ties break toward the smaller label.
func VoteWeighted(cands []Candidate) int {
	// Exact matches short-circuit.
	exact := map[int]int{}
	for _, c := range cands {
		if c.Dist == 0 {
			exact[c.Class]++
		}
	}
	if len(exact) > 0 {
		best, bestN := -1, -1
		for class, n := range exact {
			if n > bestN || (n == bestN && class < best) {
				best, bestN = class, n
			}
		}
		return best
	}
	weights := map[int]float64{}
	for _, c := range cands {
		weights[c.Class] += 1 / c.Dist
	}
	best, bestW := -1, math.Inf(-1)
	for class, w := range weights {
		if w > bestW || (w == bestW && class < best) {
			best, bestW = class, w
		}
	}
	return best
}

// Options configures ClassifyOpts.
type Options struct {
	// K is the neighbour count (default 5).
	K int
	// Metric selects the distance (default Euclidean).
	Metric Metric
	// Weighted selects inverse-distance voting instead of majority.
	Weighted bool
	// Workers is the parallel width (<= 0: GOMAXPROCS).
	Workers int
}

// ClassifyOpts classifies queries with the configured metric and voting
// rule, in parallel over queries.
func ClassifyOpts(db *dataio.Dataset, queries [][]float64, opts Options) []int {
	if opts.K <= 0 {
		opts.K = 5
	}
	out := make([]int, len(queries))
	par.For(len(queries), opts.Workers, func(qi int) {
		h := heapk.New[int](opts.K)
		for i, p := range db.Points {
			h.Offer(opts.Metric.Distance(queries[qi], p), db.Labels[i])
		}
		items := h.Sorted()
		cands := make([]Candidate, len(items))
		for i, it := range items {
			cands[i] = Candidate{it.Priority, it.Value}
		}
		if opts.Weighted {
			out[qi] = VoteWeighted(cands)
		} else {
			out[qi] = Vote(cands)
		}
	})
	return out
}
