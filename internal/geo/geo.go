// Package geo provides the computational geometry the data-science
// pipeline needs (paper §4, Figure 2): polygons with ray-casting
// point-in-polygon tests, and a bounding-box-filtered spatial index that
// assigns event coordinates (arrests) to containing regions (NTAs).
package geo

import "fmt"

// Point is a 2D coordinate (lon/lat order: X east, Y north).
type Point struct {
	X, Y float64
}

// Polygon is a simple polygon; the vertex ring is implicitly closed.
type Polygon struct {
	Verts []Point
}

// BBox returns the axis-aligned bounding box.
func (p Polygon) BBox() (minX, minY, maxX, maxY float64) {
	if len(p.Verts) == 0 {
		return 0, 0, 0, 0
	}
	minX, maxX = p.Verts[0].X, p.Verts[0].X
	minY, maxY = p.Verts[0].Y, p.Verts[0].Y
	for _, v := range p.Verts[1:] {
		if v.X < minX {
			minX = v.X
		}
		if v.X > maxX {
			maxX = v.X
		}
		if v.Y < minY {
			minY = v.Y
		}
		if v.Y > maxY {
			maxY = v.Y
		}
	}
	return minX, minY, maxX, maxY
}

// Contains reports whether pt is inside the polygon (ray casting; points
// exactly on an edge may land on either side, which is acceptable for
// aggregation work).
func (p Polygon) Contains(pt Point) bool {
	n := len(p.Verts)
	if n < 3 {
		return false
	}
	inside := false
	j := n - 1
	for i := 0; i < n; i++ {
		vi, vj := p.Verts[i], p.Verts[j]
		if (vi.Y > pt.Y) != (vj.Y > pt.Y) {
			xCross := (vj.X-vi.X)*(pt.Y-vi.Y)/(vj.Y-vi.Y) + vi.X
			if pt.X < xCross {
				inside = !inside
			}
		}
		j = i
	}
	return inside
}

// Area returns the polygon's area (shoelace formula, absolute value).
func (p Polygon) Area() float64 {
	n := len(p.Verts)
	if n < 3 {
		return 0
	}
	s := 0.0
	j := n - 1
	for i := 0; i < n; i++ {
		s += (p.Verts[j].X + p.Verts[i].X) * (p.Verts[j].Y - p.Verts[i].Y)
		j = i
	}
	if s < 0 {
		s = -s
	}
	return s / 2
}

// Centroid returns the vertex-average centroid (adequate for label
// placement on near-convex regions).
func (p Polygon) Centroid() Point {
	var c Point
	if len(p.Verts) == 0 {
		return c
	}
	for _, v := range p.Verts {
		c.X += v.X
		c.Y += v.Y
	}
	c.X /= float64(len(p.Verts))
	c.Y /= float64(len(p.Verts))
	return c
}

// Rect builds the rectangle polygon [x0,x1] x [y0,y1].
func Rect(x0, y0, x1, y1 float64) Polygon {
	return Polygon{Verts: []Point{{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}}}
}

// Region is a named polygon in an index.
type Region struct {
	ID   string
	Poly Polygon
}

// Index locates points in a set of regions using a bounding-box prefilter.
type Index struct {
	regions []Region
	bboxes  [][4]float64
}

// NewIndex builds an index over regions.
func NewIndex(regions []Region) *Index {
	ix := &Index{regions: regions, bboxes: make([][4]float64, len(regions))}
	for i, r := range regions {
		minX, minY, maxX, maxY := r.Poly.BBox()
		ix.bboxes[i] = [4]float64{minX, minY, maxX, maxY}
	}
	return ix
}

// Len returns the number of regions.
func (ix *Index) Len() int { return len(ix.regions) }

// Regions returns the indexed regions.
func (ix *Index) Regions() []Region { return ix.regions }

// Locate returns the ID of the first region containing pt, or "" and
// false when no region contains it.
func (ix *Index) Locate(pt Point) (string, bool) {
	for i, bb := range ix.bboxes {
		if pt.X < bb[0] || pt.X > bb[2] || pt.Y < bb[1] || pt.Y > bb[3] {
			continue
		}
		if ix.regions[i].Poly.Contains(pt) {
			return ix.regions[i].ID, true
		}
	}
	return "", false
}

// String renders a point for logs and CSV.
func (pt Point) String() string { return fmt.Sprintf("(%g, %g)", pt.X, pt.Y) }
