package geo

import (
	"testing"
	"testing/quick"
)

func TestRectContains(t *testing.T) {
	r := Rect(0, 0, 10, 5)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 2}, true},
		{Point{-1, 2}, false},
		{Point{11, 2}, false},
		{Point{5, 6}, false},
		{Point{5, -1}, false},
		{Point{0.001, 0.001}, true},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v want %v", c.p, got, c.want)
		}
	}
}

func TestTriangleContains(t *testing.T) {
	tri := Polygon{Verts: []Point{{0, 0}, {10, 0}, {5, 10}}}
	if !tri.Contains(Point{5, 3}) {
		t.Error("centroid-ish point not inside triangle")
	}
	if tri.Contains(Point{1, 9}) {
		t.Error("outside corner reported inside")
	}
}

func TestConcavePolygon(t *testing.T) {
	// A "U" shape: the notch must be outside.
	u := Polygon{Verts: []Point{{0, 0}, {10, 0}, {10, 10}, {7, 10}, {7, 3}, {3, 3}, {3, 10}, {0, 10}}}
	if !u.Contains(Point{1, 5}) || !u.Contains(Point{9, 5}) {
		t.Error("arms of U not inside")
	}
	if u.Contains(Point{5, 5}) {
		t.Error("notch of U reported inside")
	}
}

func TestDegeneratePolygon(t *testing.T) {
	if (Polygon{}).Contains(Point{0, 0}) {
		t.Error("empty polygon contains point")
	}
	line := Polygon{Verts: []Point{{0, 0}, {1, 1}}}
	if line.Contains(Point{0.5, 0.5}) {
		t.Error("2-vertex polygon contains point")
	}
	if (Polygon{}).Area() != 0 {
		t.Error("empty polygon area")
	}
}

func TestAreaAndCentroid(t *testing.T) {
	r := Rect(0, 0, 4, 3)
	if a := r.Area(); a != 12 {
		t.Errorf("area %v", a)
	}
	c := r.Centroid()
	if c.X != 2 || c.Y != 1.5 {
		t.Errorf("centroid %v", c)
	}
	// Winding order must not flip the sign.
	rev := Polygon{Verts: []Point{{0, 3}, {4, 3}, {4, 0}, {0, 0}}}
	if rev.Area() != 12 {
		t.Errorf("reversed area %v", rev.Area())
	}
}

func TestBBox(t *testing.T) {
	p := Polygon{Verts: []Point{{3, 1}, {-2, 5}, {7, -4}}}
	minX, minY, maxX, maxY := p.BBox()
	if minX != -2 || minY != -4 || maxX != 7 || maxY != 5 {
		t.Errorf("bbox %v %v %v %v", minX, minY, maxX, maxY)
	}
}

func TestRectContainsProperty(t *testing.T) {
	f := func(xRaw, yRaw uint16) bool {
		x := float64(xRaw)/65535*20 - 5
		y := float64(yRaw)/65535*20 - 5
		r := Rect(0, 0, 10, 10)
		inside := x > 0 && x < 10 && y > 0 && y < 10
		onEdge := x == 0 || x == 10 || y == 0 || y == 10
		if onEdge {
			return true // edge behaviour unspecified
		}
		return r.Contains(Point{x, y}) == inside
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexLocate(t *testing.T) {
	ix := NewIndex([]Region{
		{ID: "A", Poly: Rect(0, 0, 10, 10)},
		{ID: "B", Poly: Rect(10, 0, 20, 10)},
	})
	if ix.Len() != 2 {
		t.Error("index size")
	}
	if id, ok := ix.Locate(Point{5, 5}); !ok || id != "A" {
		t.Errorf("locate A: %q %v", id, ok)
	}
	if id, ok := ix.Locate(Point{15, 5}); !ok || id != "B" {
		t.Errorf("locate B: %q %v", id, ok)
	}
	if _, ok := ix.Locate(Point{25, 5}); ok {
		t.Error("located point outside all regions")
	}
	if len(ix.Regions()) != 2 {
		t.Error("Regions accessor")
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{1.5, -2}).String(); got != "(1.5, -2)" {
		t.Errorf("got %q", got)
	}
}
