package spatial

// QuadTree is a 2D point quadtree with leaf buckets — the space
// partitioning structure the assignment suggests for a Data Structures
// course (paper §2). It supports k-nearest queries with the same box
// lower-bound pruning as the k-d tree, and axis-aligned range queries.
type QuadTree struct {
	root *quadNode
	size int
}

type quadNode struct {
	// Box bounds.
	x0, y0, x1, y1 float64
	// Leaf storage until it overflows.
	px, py []float64
	labels []int
	kids   *[4]*quadNode
}

const quadBucket = 16

// NewQuadTree creates a tree covering the box [x0,x1] x [y0,y1].
func NewQuadTree(x0, y0, x1, y1 float64) *QuadTree {
	if x1 <= x0 || y1 <= y0 {
		panic("spatial: quadtree needs a non-empty box")
	}
	return &QuadTree{root: &quadNode{x0: x0, y0: y0, x1: x1, y1: y1}}
}

// Len returns the number of inserted points.
func (t *QuadTree) Len() int { return t.size }

// Insert adds a point with a label; points outside the root box are
// clamped onto its boundary.
func (t *QuadTree) Insert(x, y float64, label int) {
	if x < t.root.x0 {
		x = t.root.x0
	}
	if x > t.root.x1 {
		x = t.root.x1
	}
	if y < t.root.y0 {
		y = t.root.y0
	}
	if y > t.root.y1 {
		y = t.root.y1
	}
	t.root.insert(x, y, label, 0)
	t.size++
}

const quadMaxDepth = 32

func (n *quadNode) insert(x, y float64, label, depth int) {
	if n.kids == nil {
		if len(n.px) < quadBucket || depth >= quadMaxDepth {
			n.px = append(n.px, x)
			n.py = append(n.py, y)
			n.labels = append(n.labels, label)
			return
		}
		n.split(depth)
	}
	n.kids[n.quadrant(x, y)].insert(x, y, label, depth+1)
}

func (n *quadNode) quadrant(x, y float64) int {
	mx, my := (n.x0+n.x1)/2, (n.y0+n.y1)/2
	q := 0
	if x > mx {
		q |= 1
	}
	if y > my {
		q |= 2
	}
	return q
}

func (n *quadNode) split(depth int) {
	mx, my := (n.x0+n.x1)/2, (n.y0+n.y1)/2
	n.kids = &[4]*quadNode{
		{x0: n.x0, y0: n.y0, x1: mx, y1: my},
		{x0: mx, y0: n.y0, x1: n.x1, y1: my},
		{x0: n.x0, y0: my, x1: mx, y1: n.y1},
		{x0: mx, y0: my, x1: n.x1, y1: n.y1},
	}
	for i := range n.px {
		n.kids[n.quadrant(n.px[i], n.py[i])].insert(n.px[i], n.py[i], n.labels[i], depth+1)
	}
	n.px, n.py, n.labels = nil, nil, nil
}

// Range calls visit for every point inside [x0,x1] x [y0,y1].
func (t *QuadTree) Range(x0, y0, x1, y1 float64, visit func(x, y float64, label int)) {
	t.root.rangeQuery(x0, y0, x1, y1, visit)
}

func (n *quadNode) rangeQuery(x0, y0, x1, y1 float64, visit func(x, y float64, label int)) {
	if n.x1 < x0 || n.x0 > x1 || n.y1 < y0 || n.y0 > y1 {
		return
	}
	if n.kids != nil {
		for _, k := range n.kids {
			k.rangeQuery(x0, y0, x1, y1, visit)
		}
		return
	}
	for i := range n.px {
		if n.px[i] >= x0 && n.px[i] <= x1 && n.py[i] >= y0 && n.py[i] <= y1 {
			visit(n.px[i], n.py[i], n.labels[i])
		}
	}
}

// Nearest returns labels and squared distances of the k nearest points to
// (qx, qy), ascending.
func (t *QuadTree) Nearest(qx, qy float64, k int) (labels []int, dists []float64) {
	type best struct {
		d     float64
		label int
	}
	var found []best
	worst := func() (float64, bool) {
		if len(found) < k {
			return 0, false
		}
		w := found[0].d
		for _, b := range found[1:] {
			if b.d > w {
				w = b.d
			}
		}
		return w, true
	}
	offer := func(d float64, label int) {
		if len(found) < k {
			found = append(found, best{d, label})
			return
		}
		wi := 0
		for i := 1; i < len(found); i++ {
			if found[i].d > found[wi].d {
				wi = i
			}
		}
		if d < found[wi].d {
			found[wi] = best{d, label}
		}
	}
	var walk func(n *quadNode)
	walk = func(n *quadNode) {
		if n == nil {
			return
		}
		if w, full := worst(); full {
			lb := boxLowerBound([]float64{qx, qy}, []float64{n.x0, n.y0}, []float64{n.x1, n.y1})
			if lb >= w {
				return
			}
		}
		if n.kids != nil {
			// Visit the child containing the query first.
			first := n.quadrant(qx, qy)
			walk(n.kids[first])
			for i, kid := range n.kids {
				if i != first {
					walk(kid)
				}
			}
			return
		}
		for i := range n.px {
			dx, dy := n.px[i]-qx, n.py[i]-qy
			offer(dx*dx+dy*dy, n.labels[i])
		}
	}
	walk(t.root)
	// Sort ascending (k is small).
	for i := 1; i < len(found); i++ {
		for j := i; j > 0 && found[j].d < found[j-1].d; j-- {
			found[j], found[j-1] = found[j-1], found[j]
		}
	}
	labels = make([]int, len(found))
	dists = make([]float64, len(found))
	for i, b := range found {
		labels[i] = b.label
		dists[i] = b.d
	}
	return labels, dists
}
