package spatial

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/prng"
)

func randomPoints(seed uint64, n, dim int) ([][]float64, []int) {
	r := prng.New(seed)
	pts := make([][]float64, n)
	labels := make([]int, n)
	for i := range pts {
		p := make([]float64, dim)
		for d := range p {
			p[d] = r.Range(0, 100)
		}
		pts[i] = p
		labels[i] = i
	}
	return pts, labels
}

// bruteNearest returns the k nearest labels/dists by exhaustive scan.
func bruteNearest(pts [][]float64, labels []int, q []float64, k int) ([]int, []float64) {
	type c struct {
		d float64
		l int
	}
	cs := make([]c, len(pts))
	for i, p := range pts {
		cs[i] = c{linalg.SqDist(q, p), labels[i]}
	}
	sort.Slice(cs, func(a, b int) bool { return cs[a].d < cs[b].d })
	if len(cs) > k {
		cs = cs[:k]
	}
	ls := make([]int, len(cs))
	ds := make([]float64, len(cs))
	for i, cc := range cs {
		ls[i] = cc.l
		ds[i] = cc.d
	}
	return ls, ds
}

func TestKDTreeMatchesBruteForce(t *testing.T) {
	pts, labels := randomPoints(1, 500, 3)
	tree := NewKDTree(pts, labels)
	r := prng.New(2)
	for trial := 0; trial < 50; trial++ {
		q := []float64{r.Range(0, 100), r.Range(0, 100), r.Range(0, 100)}
		gotL, gotD := tree.Nearest(q, 7, nil)
		_, wantD := bruteNearest(pts, labels, q, 7)
		if len(gotD) != len(wantD) {
			t.Fatalf("count %d vs %d", len(gotD), len(wantD))
		}
		for i := range wantD {
			if gotD[i] != wantD[i] {
				t.Fatalf("trial %d pos %d: dist %v want %v", trial, i, gotD[i], wantD[i])
			}
		}
		_ = gotL
	}
}

func TestKDTreeProperty(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		pts, labels := randomPoints(seed, 120, 2)
		tree := NewKDTree(pts, labels)
		q := []float64{50, 50}
		_, gotD := tree.Nearest(q, k, nil)
		_, wantD := bruteNearest(pts, labels, q, k)
		for i := range wantD {
			if gotD[i] != wantD[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestKDTreePruningReducesWork(t *testing.T) {
	pts, labels := randomPoints(3, 5000, 2)
	tree := NewKDTree(pts, labels)
	var stats SearchStats
	tree.Nearest([]float64{50, 50}, 5, &stats)
	if stats.PointsExamined >= 5000/2 {
		t.Errorf("pruning examined %d of 5000 points", stats.PointsExamined)
	}
	if stats.NodesPruned == 0 {
		t.Error("nothing pruned")
	}
}

func TestKDTreeParallelMatchesSerial(t *testing.T) {
	pts, labels := randomPoints(4, 3000, 3)
	serial := NewKDTree(pts, labels)
	parallel := NewKDTreeParallel(append([][]float64(nil), pts...), append([]int(nil), labels...), 4)
	r := prng.New(5)
	for trial := 0; trial < 20; trial++ {
		q := []float64{r.Range(0, 100), r.Range(0, 100), r.Range(0, 100)}
		_, d1 := serial.Nearest(q, 5, nil)
		_, d2 := parallel.Nearest(q, 5, nil)
		for i := range d1 {
			if d1[i] != d2[i] {
				t.Fatal("parallel build gives different neighbours")
			}
		}
	}
}

func TestKDTreeEmptyAndTiny(t *testing.T) {
	empty := NewKDTree(nil, nil)
	if empty.Len() != 0 {
		t.Error("empty len")
	}
	ls, ds := empty.Nearest([]float64{1}, 3, nil)
	if len(ls) != 0 || len(ds) != 0 {
		t.Error("empty tree returned neighbours")
	}
	one := NewKDTree([][]float64{{1, 2}}, []int{42})
	ls, _ = one.Nearest([]float64{0, 0}, 5, nil)
	if len(ls) != 1 || ls[0] != 42 {
		t.Errorf("single-point tree %v", ls)
	}
}

func TestKDTreeMismatchedInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on mismatched input")
		}
	}()
	NewKDTree([][]float64{{1}}, []int{1, 2})
}

func TestBoxLowerBound(t *testing.T) {
	lo, hi := []float64{0, 0}, []float64{10, 10}
	if d := boxLowerBound([]float64{5, 5}, lo, hi); d != 0 {
		t.Errorf("inside %v", d)
	}
	if d := boxLowerBound([]float64{13, 14}, lo, hi); d != 9+16 {
		t.Errorf("outside %v", d)
	}
	if d := boxLowerBound([]float64{-3, 5}, lo, hi); d != 9 {
		t.Errorf("left %v", d)
	}
}

func TestQuadTreeMatchesBruteForce(t *testing.T) {
	r := prng.New(6)
	qt := NewQuadTree(0, 0, 100, 100)
	var pts [][]float64
	var labels []int
	for i := 0; i < 800; i++ {
		x, y := r.Range(0, 100), r.Range(0, 100)
		qt.Insert(x, y, i)
		pts = append(pts, []float64{x, y})
		labels = append(labels, i)
	}
	for trial := 0; trial < 30; trial++ {
		q := []float64{r.Range(0, 100), r.Range(0, 100)}
		_, gotD := qt.Nearest(q[0], q[1], 5)
		_, wantD := bruteNearest(pts, labels, q, 5)
		for i := range wantD {
			if gotD[i] != wantD[i] {
				t.Fatalf("trial %d: %v want %v", trial, gotD, wantD)
			}
		}
	}
}

func TestQuadTreeRange(t *testing.T) {
	qt := NewQuadTree(0, 0, 10, 10)
	qt.Insert(1, 1, 1)
	qt.Insert(5, 5, 2)
	qt.Insert(9, 9, 3)
	var got []int
	qt.Range(4, 4, 10, 10, func(_, _ float64, label int) { got = append(got, label) })
	sort.Ints(got)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("range %v", got)
	}
}

func TestQuadTreeClampsOutside(t *testing.T) {
	qt := NewQuadTree(0, 0, 10, 10)
	qt.Insert(-5, 50, 7)
	if qt.Len() != 1 {
		t.Error("clamped insert lost")
	}
	ls, _ := qt.Nearest(0, 10, 1)
	if len(ls) != 1 || ls[0] != 7 {
		t.Error("clamped point not findable")
	}
}

func TestQuadTreeDeepDuplicates(t *testing.T) {
	// Identical points can never be separated by splitting; the depth
	// cap must prevent infinite recursion.
	qt := NewQuadTree(0, 0, 1, 1)
	for i := 0; i < 200; i++ {
		qt.Insert(0.5, 0.5, i)
	}
	if qt.Len() != 200 {
		t.Error("duplicate inserts lost")
	}
	ls, _ := qt.Nearest(0.5, 0.5, 10)
	if len(ls) != 10 {
		t.Errorf("got %d of duplicate neighbours", len(ls))
	}
}

func TestQuadTreeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty box accepted")
		}
	}()
	NewQuadTree(5, 5, 5, 5)
}

func BenchmarkKDTreeVsBrute(b *testing.B) {
	pts, labels := randomPoints(9, 5000, 2)
	tree := NewKDTree(pts, labels)
	q := []float64{33, 66}
	b.Run("KDTree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree.Nearest(q, 15, nil)
		}
	})
	b.Run("Brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bruteNearest(pts, labels, q, 15)
		}
	})
}
