// Package spatial provides space-partitioning indexes — a k-d tree for
// arbitrary dimension and a 2D quadtree — with bounding-box lower-bound
// pruning for nearest-neighbour search. This is the "Data Structures"
// variation of the kNN assignment (paper §2): for a box of the search
// space, compute a lower bound on the distance from its points to a query
// and skip the box when the bound cannot beat the current k-th best.
package spatial

import (
	"sort"

	"repro/internal/heapk"
	"repro/internal/linalg"
	"repro/internal/par"
)

// KDTree indexes d-dimensional points with integer payloads (class labels
// or ids).
type KDTree struct {
	dim    int
	points [][]float64
	labels []int
	root   *kdNode
}

type kdNode struct {
	// axis is the split dimension; idx is the index of the median point
	// stored at this node.
	axis        int
	idx         int
	left, right *kdNode
	// lo, hi bound all points in this subtree per dimension.
	lo, hi []float64
}

// NewKDTree builds a balanced k-d tree over points (median splits).
// The points and labels slices are captured, not copied.
func NewKDTree(points [][]float64, labels []int) *KDTree {
	if len(points) != len(labels) {
		panic("spatial: points/labels length mismatch")
	}
	t := &KDTree{points: points, labels: labels}
	if len(points) == 0 {
		return t
	}
	t.dim = len(points[0])
	idxs := make([]int, len(points))
	for i := range idxs {
		idxs[i] = i
	}
	t.root = t.build(idxs, 0)
	return t
}

// NewKDTreeParallel builds the left and right subtrees of the root split
// concurrently, then recursively (down to a grain of 1024 points) — the
// "more challenging: build the tree in parallel" extension.
func NewKDTreeParallel(points [][]float64, labels []int, workers int) *KDTree {
	if len(points) != len(labels) {
		panic("spatial: points/labels length mismatch")
	}
	t := &KDTree{points: points, labels: labels}
	if len(points) == 0 {
		return t
	}
	t.dim = len(points[0])
	idxs := make([]int, len(points))
	for i := range idxs {
		idxs[i] = i
	}
	t.root = t.buildParallel(idxs, 0, workers)
	return t
}

func (t *KDTree) bounds(idxs []int) (lo, hi []float64) {
	lo = make([]float64, t.dim)
	hi = make([]float64, t.dim)
	copy(lo, t.points[idxs[0]])
	copy(hi, t.points[idxs[0]])
	for _, i := range idxs[1:] {
		for d, v := range t.points[i] {
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	return lo, hi
}

func (t *KDTree) build(idxs []int, depth int) *kdNode {
	if len(idxs) == 0 {
		return nil
	}
	lo, hi := t.bounds(idxs)
	axis := depth % t.dim
	sort.Slice(idxs, func(a, b int) bool {
		return t.points[idxs[a]][axis] < t.points[idxs[b]][axis]
	})
	mid := len(idxs) / 2
	n := &kdNode{axis: axis, idx: idxs[mid], lo: lo, hi: hi}
	n.left = t.build(idxs[:mid], depth+1)
	n.right = t.build(idxs[mid+1:], depth+1)
	return n
}

func (t *KDTree) buildParallel(idxs []int, depth, workers int) *kdNode {
	if len(idxs) < 1024 || workers <= 1 {
		return t.build(idxs, depth)
	}
	lo, hi := t.bounds(idxs)
	axis := depth % t.dim
	sort.Slice(idxs, func(a, b int) bool {
		return t.points[idxs[a]][axis] < t.points[idxs[b]][axis]
	})
	mid := len(idxs) / 2
	n := &kdNode{axis: axis, idx: idxs[mid], lo: lo, hi: hi}
	par.Do(
		func() { n.left = t.buildParallel(idxs[:mid], depth+1, workers/2) },
		func() { n.right = t.buildParallel(idxs[mid+1:], depth+1, workers-workers/2) },
	)
	return n
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.points) }

// boxLowerBound returns the squared distance from q to the axis-aligned
// box [lo, hi] — zero when q is inside.
func boxLowerBound(q, lo, hi []float64) float64 {
	s := 0.0
	for d, v := range q {
		if v < lo[d] {
			diff := lo[d] - v
			s += diff * diff
		} else if v > hi[d] {
			diff := v - hi[d]
			s += diff * diff
		}
	}
	return s
}

// Nearest returns the labels and squared distances of the k nearest
// indexed points to q, ordered by ascending distance. Stats, when non-nil,
// receives the number of points actually examined (for the pruning
// ablation).
func (t *KDTree) Nearest(q []float64, k int, stats *SearchStats) (labels []int, dists []float64) {
	h := heapk.New[int](k)
	t.search(t.root, q, h, stats)
	items := h.Sorted()
	labels = make([]int, len(items))
	dists = make([]float64, len(items))
	for i, it := range items {
		labels[i] = it.Value
		dists[i] = it.Priority
	}
	return labels, dists
}

// SearchStats counts work done during Nearest.
type SearchStats struct {
	// PointsExamined is how many stored points had their distance
	// computed.
	PointsExamined int
	// NodesPruned is how many subtrees the box lower bound eliminated.
	NodesPruned int
}

func (t *KDTree) search(n *kdNode, q []float64, h *heapk.Heap[int], stats *SearchStats) {
	if n == nil {
		return
	}
	if worst, full := h.Max(); full {
		if boxLowerBound(q, n.lo, n.hi) >= worst {
			if stats != nil {
				stats.NodesPruned++
			}
			return
		}
	}
	d := linalg.SqDist(q, t.points[n.idx])
	if stats != nil {
		stats.PointsExamined++
	}
	h.Offer(d, t.labels[n.idx])

	// Descend the near side first for tighter early bounds.
	near, far := n.left, n.right
	if q[n.axis] > t.points[n.idx][n.axis] {
		near, far = far, near
	}
	t.search(near, q, h, stats)
	t.search(far, q, h, stats)
}
